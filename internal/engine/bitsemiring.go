package engine

import (
	"fmt"

	"repro/internal/relation"
)

// This file implements the bitvector semirings behind batched
// multi-subinstance evaluation (EvalBatch): annotations are bitmasks with
// one bit per candidate subinstance, so a single engine pass over the full
// database evaluates a query over K candidate subinstances at once.
//
// Soundness: ⊕ = OR, ⊗ = AND and the Section-6 difference rule l ∧ ¬r act
// independently on every bit position, and bit k of a base tuple's Leaf
// annotation is exactly its set-semantics annotation on candidate k (⊤ iff
// the candidate contains the tuple). Every bit position therefore replays
// the Boolean SetSemiring evaluation on that candidate subinstance: bit k of
// an output tuple's annotation is set iff the tuple is in the query result
// on candidate k. Aggregation is the one operator that is not per-bit sound
// (γ collapses the support, which differs per candidate), so both semirings
// report Aggregates() == false and plans containing GroupBy fail with
// ErrNoAggregates, which batch callers use to fall back to per-candidate
// evaluation.

// BitSemiring is the bitvector semiring for batches of up to 64 candidate
// subinstances: annotations are single uint64 words, so every semiring
// operation is one machine instruction and annotations never allocate.
// Instances are per-batch (Leaf depends on the candidate sets); build one
// with NewBitSemiring.
type BitSemiring struct {
	k    int
	ones uint64
	// Leaf masks are stored flat, indexed by TupleID, when the id space is
	// dense enough (the common case: identifiers are assigned sequentially
	// at Insert). Every base scan of a batched evaluation probes Leaf once
	// per database tuple, so the difference between a slice load and a map
	// lookup is the difference between the batch pass being bound by the
	// scan or by hashing. leafMap is the fallback for sparse/huge ids.
	leafDense []uint64
	leafMap   map[relation.TupleID]uint64
}

// denseLeafLimit bounds the flat leaf table: at 64 annotation bits per id,
// 1<<22 entries is 32 MB — generous for the paper's instance sizes (≤ 1M
// tuples) while refusing pathological id spaces.
const denseLeafLimit = 1 << 22

// maxCandidateID returns the largest id across candidates, or -1.
func maxCandidateID(candidates [][]relation.TupleID) int {
	max := -1
	for _, cand := range candidates {
		for _, id := range cand {
			if int(id) > max {
				max = int(id)
			}
		}
	}
	return max
}

// NewBitSemiring builds the semiring for the given candidate subinstances,
// each a set of base-tuple identifiers. It errors when there are more than
// 64 candidates (use NewWideBitSemiring, or let EvalBatch choose).
func NewBitSemiring(candidates [][]relation.TupleID) (*BitSemiring, error) {
	k := len(candidates)
	if k > 64 {
		return nil, fmt.Errorf("engine: BitSemiring holds at most 64 candidates, got %d", k)
	}
	s := &BitSemiring{k: k}
	if k == 64 {
		s.ones = ^uint64(0)
	} else {
		s.ones = 1<<uint(k) - 1
	}
	if maxID := maxCandidateID(candidates); maxID < denseLeafLimit {
		s.leafDense = make([]uint64, maxID+1)
		for i, cand := range candidates {
			bit := uint64(1) << uint(i)
			for _, id := range cand {
				if id >= 0 {
					s.leafDense[id] |= bit
				}
			}
		}
		return s, nil
	}
	s.leafMap = make(map[relation.TupleID]uint64)
	for i, cand := range candidates {
		bit := uint64(1) << uint(i)
		for _, id := range cand {
			s.leafMap[id] |= bit
		}
	}
	return s, nil
}

// K returns the number of candidates in the batch.
func (s *BitSemiring) K() int { return s.k }

// Zero implements Semiring: absent from every candidate's result.
func (s *BitSemiring) Zero() uint64 { return 0 }

// One implements Semiring: present for every candidate.
func (s *BitSemiring) One() uint64 { return s.ones }

// Plus implements Semiring: per-candidate ∨.
func (s *BitSemiring) Plus(a, b uint64) uint64 { return a | b }

// Times implements Semiring: per-candidate ∧.
func (s *BitSemiring) Times(a, b uint64) uint64 { return a & b }

// Minus implements Semiring: the per-candidate difference rule l ∧ ¬r.
func (s *BitSemiring) Minus(l, r uint64) uint64 { return l &^ r }

// IsZero implements Semiring. A zero mask means the tuple appears in no
// candidate's result, so it is pruned from operator outputs.
func (s *BitSemiring) IsZero(a uint64) bool { return a == 0 }

// Leaf implements Semiring: the mask of candidates containing the base
// tuple. Tuples outside every candidate get the zero mask (and are pruned
// at scan time), exactly as if they were absent from the subinstances.
func (s *BitSemiring) Leaf(id relation.TupleID) (uint64, error) {
	if id == relation.InvalidTupleID {
		return 0, fmt.Errorf("engine: batched evaluation requires base tuple identifiers")
	}
	if s.leafDense != nil {
		if int(id) < len(s.leafDense) && id >= 0 {
			return s.leafDense[id], nil
		}
		return 0, nil
	}
	return s.leafMap[id], nil
}

// Aggregates implements Semiring: γ is not per-bit sound.
func (s *BitSemiring) Aggregates() bool { return false }

// Name implements Semiring.
func (s *BitSemiring) Name() string { return "bit" }

// Bits is a little-endian multi-word bitmask: candidate k lives at bit k%64
// of word k/64. The nil slice is the canonical zero (absent from every
// candidate); operator results are freshly allocated, never mutated in
// place, so masks may be shared freely between annotations.
type Bits []uint64

// Get reports bit k.
func (b Bits) Get(k int) bool {
	w := k / 64
	if w >= len(b) {
		return false
	}
	return b[w]>>(uint(k)%64)&1 != 0
}

// isZero reports whether every bit is clear.
func (b Bits) isZero() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// WideBitSemiring is the bitvector semiring for batches of more than 64
// candidate subinstances: annotations are Bits ([]uint64) masks of
// ⌈K/64⌉ words. Operations allocate one slice per result, so prefer the
// word-sized BitSemiring (or chunk the batch) when K ≤ 64.
type WideBitSemiring struct {
	k     int
	words int
	// Like BitSemiring, leaf masks live in a flat id-indexed table when the
	// id space is dense (leafDense[id*words : (id+1)*words]); Leaf returns
	// aliasing views into it, which is safe because annotation operations
	// never mutate their operands.
	leafDense []uint64
	leafMap   map[relation.TupleID]Bits
}

// NewWideBitSemiring builds the wide semiring for the given candidate
// subinstances.
func NewWideBitSemiring(candidates [][]relation.TupleID) *WideBitSemiring {
	k := len(candidates)
	s := &WideBitSemiring{k: k, words: (k + 63) / 64}
	if maxID := maxCandidateID(candidates); (maxID+1)*s.words < denseLeafLimit {
		s.leafDense = make([]uint64, (maxID+1)*s.words)
		for i, cand := range candidates {
			for _, id := range cand {
				if id >= 0 {
					s.leafDense[int(id)*s.words+i/64] |= 1 << (uint(i) % 64)
				}
			}
		}
		return s
	}
	s.leafMap = make(map[relation.TupleID]Bits)
	for i, cand := range candidates {
		for _, id := range cand {
			m := s.leafMap[id]
			if m == nil {
				m = make(Bits, s.words)
				s.leafMap[id] = m
			}
			m[i/64] |= 1 << (uint(i) % 64)
		}
	}
	return s
}

// K returns the number of candidates in the batch.
func (s *WideBitSemiring) K() int { return s.k }

// Zero implements Semiring; nil is the canonical zero mask.
func (s *WideBitSemiring) Zero() Bits { return nil }

// One implements Semiring: all K candidate bits set.
func (s *WideBitSemiring) One() Bits {
	m := make(Bits, s.words)
	for i := range m {
		m[i] = ^uint64(0)
	}
	if r := uint(s.k) % 64; r != 0 {
		m[s.words-1] = 1<<r - 1
	}
	return m
}

// Plus implements Semiring: wordwise OR.
func (s *WideBitSemiring) Plus(a, b Bits) Bits {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(Bits, s.words)
	for i := range out {
		out[i] = a[i] | b[i]
	}
	return out
}

// Times implements Semiring: wordwise AND.
func (s *WideBitSemiring) Times(a, b Bits) Bits {
	if a == nil || b == nil {
		return nil
	}
	out := make(Bits, s.words)
	for i := range out {
		out[i] = a[i] & b[i]
	}
	return out
}

// Minus implements Semiring: wordwise l &^ r.
func (s *WideBitSemiring) Minus(l, r Bits) Bits {
	if l == nil || r == nil {
		return l
	}
	out := make(Bits, s.words)
	for i := range out {
		out[i] = l[i] &^ r[i]
	}
	return out
}

// IsZero implements Semiring.
func (s *WideBitSemiring) IsZero(a Bits) bool { return a.isZero() }

// Leaf implements Semiring.
func (s *WideBitSemiring) Leaf(id relation.TupleID) (Bits, error) {
	if id == relation.InvalidTupleID {
		return nil, fmt.Errorf("engine: batched evaluation requires base tuple identifiers")
	}
	if s.leafDense != nil {
		if lo := int(id) * s.words; id >= 0 && lo+s.words <= len(s.leafDense) {
			return Bits(s.leafDense[lo : lo+s.words]), nil
		}
		return nil, nil
	}
	return s.leafMap[id], nil
}

// Aggregates implements Semiring: γ is not per-bit sound.
func (s *WideBitSemiring) Aggregates() bool { return false }

// Name implements Semiring.
func (s *WideBitSemiring) Name() string { return "wide-bit" }
