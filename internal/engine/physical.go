package engine

import (
	"fmt"

	"repro/internal/ra"
	"repro/internal/relation"
)

// This file is the physical operator layer: hash equi-join (driven by the
// keys EquiJoinPlan extracts), hash-based union/difference/intersection and
// duplicate merging, and the nested-loop fallbacks used for residual-only
// θ-conditions and as a benchmark baseline.

// join dispatches a theta or natural join.
func (e *exec[T]) join(l, r *Rel[T], cond ra.Expr) (*Rel[T], error) {
	if cond == nil {
		return e.naturalJoin(l, r)
	}
	outSchema := l.Schema.Concat(r.Schema)
	lKeys, rKeys := []int(nil), []int(nil)
	residual := cond
	if !e.opts.ForceNestedLoop {
		lKeys, rKeys, residual = EquiJoinPlan(cond, l.Schema, r.Schema)
	}
	var pred ra.CompiledExpr
	if residual != nil {
		var err error
		pred, err = ra.CompileExpr(residual, outSchema, e.params)
		if err != nil {
			return nil, err
		}
	}
	out := NewRel[T](outSchema)
	// combine builds the output tuple for a candidate pair, applying the
	// residual θ-condition; it is shared by the serial and parallel paths
	// (the compiled predicate closures are stateless and safe to share).
	combine := func(li, ri int) (relation.Tuple, bool, error) {
		t := l.Tuples[li].Concat(r.Tuples[ri])
		if pred != nil {
			v, err := pred(t)
			if err != nil {
				return nil, false, err
			}
			if !ra.Truthy(v) {
				return nil, false, nil
			}
		}
		return t, true, nil
	}
	var pairs int
	emit := func(li, ri int) error {
		// Stride-poll the stop hook: emit sees every probed pair (the
		// θ-predicate runs inside combine), so this bounds a deadline
		// overshoot inside one join to stopPollStride pairs.
		if pairs++; pairs%stopPollStride == 0 {
			if err := e.opts.poll(); err != nil {
				return err
			}
		}
		t, ok, err := combine(li, ri)
		if err != nil || !ok {
			return err
		}
		// Definitely-zero ⊗-products are pruned (bitvector annotations of
		// disjoint candidate sets AND to zero) and do not count against the
		// row budget. The product is computed only after the θ-predicate
		// passes: Times can be expensive (why-provenance allocates an And
		// node), so rejected pairs — the bulk of a nested-loop θ-join —
		// must not pay for it.
		ann := e.s.Times(l.Anns[li], r.Anns[ri])
		if e.s.IsZero(ann) {
			return nil
		}
		if out.Len() >= e.opts.rowBudget() {
			return ErrRowBudget
		}
		// Distinct pairs of distinct inputs concatenate to distinct tuples.
		out.appendDistinct(t, ann)
		return nil
	}
	if len(lKeys) > 0 {
		if w := e.opts.workerCount(l.Len() + r.Len()); w > 1 {
			return out, parallelHashJoin(e.s, l, r, lKeys, rKeys, w, e.opts.rowBudget(), e.opts.Stop, combine, out)
		}
		return out, hashJoin(l, r, lKeys, rKeys, emit)
	}
	for li := range l.Tuples {
		for ri := range r.Tuples {
			if err := emit(li, ri); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// hashJoin builds a hash table over the right input's key columns and probes
// it with the left input's, invoking emit for every key match. Tuples with
// NULLs in any key column never join (SQL equality semantics).
func hashJoin[T any](l, r *Rel[T], lKeys, rKeys []int, emit func(li, ri int) error) error {
	idx := make(map[string][]int, r.Len())
	for i, rt := range r.Tuples {
		k := rt.Project(rKeys)
		if hasNullValue(k) {
			continue
		}
		idx[k.Key()] = append(idx[k.Key()], i)
	}
	for li, lt := range l.Tuples {
		k := lt.Project(lKeys)
		if hasNullValue(k) {
			continue
		}
		for _, ri := range idx[k.Key()] {
			if err := emit(li, ri); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *exec[T]) naturalJoin(l, r *Rel[T]) (*Rel[T], error) {
	shared, rOnly := ra.NaturalJoinCols(l.Schema, r.Schema)
	attrs := make([]relation.Attribute, 0, len(l.Schema.Attrs)+len(rOnly))
	attrs = append(attrs, l.Schema.Attrs...)
	for _, j := range rOnly {
		attrs = append(attrs, r.Schema.Attrs[j])
	}
	out := NewRel[T](relation.Schema{Attrs: attrs})
	combine := func(li, ri int) (relation.Tuple, bool, error) {
		return l.Tuples[li].Concat(r.Tuples[ri].Project(rOnly)), true, nil
	}
	var pairs int
	emit := func(li, ri int) error {
		if pairs++; pairs%stopPollStride == 0 {
			if err := e.opts.poll(); err != nil {
				return err
			}
		}
		// Unlike the θ-join emit there is no predicate to wait for (every
		// matched pair emits), so the zero-product prune runs first and
		// saves the output tuple construction for pruned pairs.
		ann := e.s.Times(l.Anns[li], r.Anns[ri])
		if e.s.IsZero(ann) {
			return nil
		}
		if out.Len() >= e.opts.rowBudget() {
			return ErrRowBudget
		}
		t, _, _ := combine(li, ri)
		// Distinct: a matching pair agrees on the shared columns, so two
		// pairs producing the same output tuple would be identical inputs.
		out.appendDistinct(t, ann)
		return nil
	}
	if len(shared) == 0 {
		// Cross product.
		if crossExceedsBudget(l.Len(), r.Len(), e.opts.rowBudget()) {
			return nil, ErrRowBudget
		}
		for li := range l.Tuples {
			for ri := range r.Tuples {
				if err := emit(li, ri); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}
	lCols := make([]int, len(shared))
	rCols := make([]int, len(shared))
	for i, p := range shared {
		lCols[i], rCols[i] = p[0], p[1]
	}
	if e.opts.ForceNestedLoop {
		for li, lt := range l.Tuples {
			k := lt.Project(lCols)
			if hasNullValue(k) {
				continue
			}
			for ri, rt := range r.Tuples {
				rk := rt.Project(rCols)
				if hasNullValue(rk) || !k.Identical(rk) {
					continue
				}
				if err := emit(li, ri); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}
	if w := e.opts.workerCount(l.Len() + r.Len()); w > 1 {
		return out, parallelHashJoin(e.s, l, r, lCols, rCols, w, e.opts.rowBudget(), e.opts.Stop, combine, out)
	}
	return out, hashJoin(l, r, lCols, rCols, emit)
}

// union hash-merges both inputs, ⊕-combining annotations of identical
// tuples. Above the parallel threshold the merge is partitioned by tuple
// hash; identical tuples land in the same shard and merge in left-then-
// right order, matching the serial result annotation-for-annotation.
func (e *exec[T]) union(l, r *Rel[T]) *Rel[T] {
	out := NewRel[T](l.Schema)
	nl := l.Len()
	if w := e.opts.workerCount(nl + r.Len()); w > 1 {
		tupleAt := func(i int) relation.Tuple {
			if i < nl {
				return l.Tuples[i]
			}
			return r.Tuples[i-nl]
		}
		annAt := func(i int) (T, error) {
			if i < nl {
				return l.Anns[i], nil
			}
			return r.Anns[i-nl], nil
		}
		// annAt never fails, so neither does the build.
		_ = parallelBuild(e.s, w, nl+r.Len(), tupleAt, annAt, out)
		return out
	}
	for i, t := range l.Tuples {
		out.Add(e.s, t, l.Anns[i])
	}
	for i, t := range r.Tuples {
		out.Add(e.s, t, r.Anns[i])
	}
	return out
}

// diffSerial is the serial hash difference body, shared with the
// nested-loop fallback.
func (e *exec[T]) diffSerial(l, r *Rel[T]) *Rel[T] {
	out := NewRelCap[T](l.Schema, l.Len())
	for i, t := range l.Tuples {
		rAnn := e.s.Zero()
		if e.opts.ForceNestedLoop {
			for j, rt := range r.Tuples {
				if rt.Identical(t) {
					rAnn = r.Anns[j]
					break
				}
			}
		} else if j := r.Lookup(t); j >= 0 {
			rAnn = r.Anns[j]
		}
		ann := e.s.Minus(l.Anns[i], rAnn)
		if e.s.IsZero(ann) {
			continue
		}
		// Output is a subset of the distinct left input.
		out.appendDistinct(t, ann)
	}
	return out
}

// diff applies the semiring's Minus across L − R, probing R's hash index
// for the matching right annotation. Tuples whose combined annotation is
// (definitely) zero are pruned: under the set and counting semirings that
// is the classical set difference, while why-provenance keeps every left
// tuple annotated PrvL ∧ ¬PrvR (Section 6). Above the parallel threshold
// both sides are partitioned by full-tuple hash (matching tuples are
// identical, so they land in the same shard) and the shards are differenced
// concurrently.
func (e *exec[T]) diff(l, r *Rel[T]) *Rel[T] {
	if !e.opts.ForceNestedLoop {
		if w := e.opts.workerCount(l.Len() + r.Len()); w > 1 {
			return parallelDiff(e.s, l, r, w)
		}
	}
	return e.diffSerial(l, r)
}

// Intersect is the hash intersection L ∩ R: tuples present in both inputs,
// annotated with the ⊗-product of their annotations. The relational algebra
// of the paper has no intersection operator (q1 ∩ q2 ≡ q1 − (q1 − q2)), so
// the evaluator never emits this; it completes the physical set-operator
// family for engine clients.
func Intersect[T any](s Semiring[T], l, r *Rel[T]) (*Rel[T], error) {
	if !l.Schema.UnionCompatible(r.Schema) {
		return nil, fmt.Errorf("engine: intersection of incompatible schemas %s, %s", l.Schema, r.Schema)
	}
	out := NewRel[T](l.Schema)
	for i, t := range l.Tuples {
		j := r.Lookup(t)
		if j < 0 {
			continue
		}
		ann := s.Times(l.Anns[i], r.Anns[j])
		if s.IsZero(ann) {
			continue
		}
		out.appendDistinct(t, ann)
	}
	return out, nil
}

// crossExceedsBudget reports whether l*r > budget without computing the
// product, which can overflow int for two large inputs (and a wrapped
// product could slip past the budget check).
func crossExceedsBudget(l, r, budget int) bool {
	return l > 0 && r > budget/l
}

func hasNullValue(t relation.Tuple) bool {
	for _, v := range t {
		if v.IsNull() {
			return true
		}
	}
	return false
}
