// Package engine_test benchmarks the batched multi-subinstance evaluation
// against the per-candidate path it replaces. It lives in the external test
// package so it can drive the batch layer through core and the enumeration
// workload through course (both of which import engine).
package engine_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/course"
	"repro/internal/relation"
)

// benchWorkload is the enumeration-shaped candidate-checking workload: a
// pair of disagreeing SPJUD queries (with difference operators) over a
// course instance, plus K witness-sized candidate subinstances to
// accept/reject — what Enumerate and the polytime odometer spend their
// time on.
func benchWorkload(k int) (core.Problem, [][]int) {
	// 5000 tuples sits in the middle of the paper's Table 3 instance sizes
	// (1k–100k); the per-candidate path pays one full-database subinstance
	// construction per candidate, the batched path two engine passes total.
	db := course.GenerateDB(5000, 7)
	qs := course.Questions()
	// q4 ("CS but not ECON") vs q6 ("only CS"): same output schema,
	// different answers, both containing difference operators.
	p := core.Problem{Q1: qs[3].Correct, Q2: qs[5].Correct, DB: db}
	all := db.AllIDs()
	rng := rand.New(rand.NewSource(1))
	idSets := make([][]int, k)
	for i := range idSets {
		for j := 0; j < 6; j++ {
			idSets[i] = append(idSets[i], int(all[rng.Intn(len(all))]))
		}
	}
	return p, idSets
}

// perCandidateCheck is the pre-batch path: materialize each candidate as a
// database and evaluate both queries on it.
func perCandidateCheck(b *testing.B, p core.Problem, idSets [][]int) []bool {
	out := make([]bool, len(idSets))
	for i, ids := range idSets {
		keep := make(map[relation.TupleID]bool, len(ids))
		for _, id := range ids {
			keep[relation.TupleID(id)] = true
		}
		sub := p.DB.Subinstance(keep)
		differs, _, _, err := core.Disagrees(p.Q1, p.Q2, sub, p.Params)
		if err != nil {
			b.Fatal(err)
		}
		out[i] = differs
	}
	return out
}

// BenchmarkBatchCandidateCheck compares batched and per-candidate
// accept/reject at K ∈ {8, 32, 64} — the acceptance benchmark for the
// bitvector batch layer (target: ≥5× at K = 64). Timings are exported to
// BENCH_batch.json via the BENCH_BATCH_JSON env var.
func BenchmarkBatchCandidateCheck(b *testing.B) {
	type row struct {
		K               int     `json:"k"`
		BatchedNsPerOp  float64 `json:"batched_ns_per_op"`
		PerCandNsPerOp  float64 `json:"per_candidate_ns_per_op"`
		SpeedupBatchVs1 float64 `json:"speedup"`
	}
	var rows []row
	for _, k := range []int{8, 32, 64} {
		p, idSets := benchWorkload(k)
		// Equivalence guard: the two paths must agree before being timed.
		want := perCandidateCheck(b, p, idSets)
		got, err := core.DisagreeBatch(p, idSets)
		if err != nil {
			b.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				b.Fatalf("K=%d candidate %d: batched=%v per-candidate=%v", k, i, got[i], want[i])
			}
		}
		r := row{K: k}
		b.Run(fmt.Sprintf("batched/K=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DisagreeBatch(p, idSets); err != nil {
					b.Fatal(err)
				}
			}
			r.BatchedNsPerOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		})
		b.Run(fmt.Sprintf("per-candidate/K=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				perCandidateCheck(b, p, idSets)
			}
			r.PerCandNsPerOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		})
		if r.BatchedNsPerOp > 0 {
			r.SpeedupBatchVs1 = r.PerCandNsPerOp / r.BatchedNsPerOp
		}
		rows = append(rows, r)
	}
	if path := os.Getenv("BENCH_BATCH_JSON"); path != "" {
		out := map[string]any{
			"workload": "course q4-vs-q6 candidate checking, |D|=5000, 6-tuple candidates",
			"results":  rows,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchEnumerate times the end-to-end EnumerateSmallest on a
// disagreeing course query pair, whose candidate verification now runs
// through the batch layer.
func BenchmarkBatchEnumerate(b *testing.B) {
	p, _ := benchWorkload(1)
	p.Constraints = course.Constraints()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EnumerateSmallest(p, 16); err != nil {
			b.Fatal(err)
		}
	}
}
