// Package engine is the unified query execution engine: a single relational
// algebra evaluator parameterized by an annotation semiring, with hash-based
// physical operators (hash equi-join, hash union/difference/dedup) driven by
// the equi-join keys the optimizer extracts.
//
// # Semirings
//
// Every logical operator (σ, π, ⋈, ∪, −, ρ, γ) is written once against
// [Semiring]: a commutative semiring (⊕, ⊗, 0, 1) over the annotation type
// T, extended with the Section-6 difference rule and a base-tuple leaf
// annotation. The shipped instantiations are
//
//   - [Set] — plain set semantics, behind [Eval] / [EvalOpts];
//   - [Why] — Boolean how-provenance over base tuple identifiers, behind
//     [EvalProv] / [EvalProvOpts] (γ is rejected: aggregate provenance goes
//     through eval.EvalAggProv);
//   - [Count] — derivation counting with saturating arithmetic, behind
//     [CountDistinct] / [CountDistinctOpts];
//   - [BitSemiring] / [WideBitSemiring] — the batch semirings below.
//
// New annotation domains (lineage sets, tropical costs, …) only need a
// Semiring implementation; the logical and physical operators are shared.
// Invariant: operators never mutate their inputs, so relations — including
// the caller's database — may be shared across concurrent evaluations.
//
// # Batched evaluation
//
// [EvalBatch] evaluates one query over K candidate subinstances of the same
// database in a single pass: bit k of every annotation replays the
// set-semantics evaluation on candidate k (⊕ = OR, ⊗ = AND, Minus = AND
// NOT), with definite-zero annotations pruned at scans and join emits.
// [EvalBatchDiffs] does both directions of Q1 − Q2 with shared base scans.
// Plans containing γ fail with an error wrapping [ErrNoAggregates]
// (aggregation is not per-bit sound); callers detect it with errors.Is and
// fall back to per-candidate evaluation.
//
// # Delta-incremental evaluation
//
// [PrepareDiff] evaluates Q1 and Q2 once under the counting semiring and
// retains per-operator state (scan position maps, both join-side hash
// tables, indexed set-operation outputs, γ group membership, derivation
// counts). [PreparedDiff.ApplyDelta] propagates one signed update —
// deletions plus insertions, updates expressed as delete+insert — through
// the retained state in time proportional to the delta;
// [PreparedDiff.EvalDelta] is the deletion-only special case, and
// [DeltaResult.Commit] rebases the retained state (assigning fresh
// TupleIDs to committed insertions in deterministic order) for sequential
// shrink loops and live sessions. Invariants: a prepared state answers
// deltas only against its current base (stale commits fail with
// [ErrStaleDelta]); derivation counts are kept exact and below a safe
// bound — a plan or delta that would saturate them is refused with
// [ErrNotIncremental] before any state mutates (saturation is not
// invertible, so signed delta arithmetic over it would be unsound), and
// the prepared state stays usable. Because committing insertions mutates
// the underlying database, a prepared object whose callers insert must
// own a private clone of its instance.
//
// # Budgets and parallelism
//
// Every evaluation is bounded by the intermediate-row budget — the
// process-wide [MaxIntermediateRows], optionally tightened per evaluation
// via [Options].MaxRows — and fails with [ErrRowBudget] when exceeded.
// [Options].Parallelism enables the hash-partitioned parallel operator
// forms; results are identical to serial evaluation with deterministic
// tuple order for a fixed setting.
package engine
