package engine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/ra"
	"repro/internal/relation"
)

// forceParallel lowers the row threshold so the parallel operators engage
// on the tiny differential-test inputs, restoring it on cleanup.
func forceParallel(t testing.TB) Options {
	t.Helper()
	saved := ParallelRowThreshold
	ParallelRowThreshold = 0
	t.Cleanup(func() { ParallelRowThreshold = saved })
	return Options{Parallelism: 4}
}

// TestParallelMatchesSerialSet: partitioned join/build ≡ serial engine
// under set semantics over random SPJUD plans.
func TestParallelMatchesSerialSet(t *testing.T) {
	popts := forceParallel(t)
	rng := rand.New(rand.NewSource(20260730))
	for trial := 0; trial < 200; trial++ {
		db := randomDB(rng)
		q := randomPlan(rng)
		serial, err := Run[bool](Set, q, db, nil)
		if err != nil {
			t.Fatalf("trial %d: serial: %v\n%s", trial, err, q)
		}
		par, err := RunOpts[bool](Set, q, db, nil, popts)
		if err != nil {
			t.Fatalf("trial %d: parallel: %v\n%s", trial, err, q)
		}
		if !sameKeySets(keySet(serial.Tuples), keySet(par.Tuples)) {
			t.Fatalf("trial %d: parallel vs serial set results differ\nquery: %s\nserial %v\nparallel %v",
				trial, q, serial.Tuples, par.Tuples)
		}
	}
}

// TestParallelMatchesSerialCount: derivation counts agree tuple-by-tuple
// between the parallel and serial paths.
func TestParallelMatchesSerialCount(t *testing.T) {
	popts := forceParallel(t)
	rng := rand.New(rand.NewSource(6502))
	for trial := 0; trial < 200; trial++ {
		db := randomDB(rng)
		q := randomPlan(rng)
		serial, err := Run[Count](Counting, q, db, nil)
		if err != nil {
			t.Fatalf("trial %d: serial: %v\n%s", trial, err, q)
		}
		par, err := RunOpts[Count](Counting, q, db, nil, popts)
		if err != nil {
			t.Fatalf("trial %d: parallel: %v\n%s", trial, err, q)
		}
		if par.Len() != serial.Len() {
			t.Fatalf("trial %d: support sizes differ: serial %d parallel %d\nquery: %s",
				trial, serial.Len(), par.Len(), q)
		}
		for i, tup := range serial.Tuples {
			j := par.Lookup(tup)
			if j < 0 {
				t.Fatalf("trial %d: parallel missing %v\nquery: %s", trial, tup, q)
			}
			if par.Anns[j] != serial.Anns[i] {
				t.Fatalf("trial %d: count of %v: serial %d parallel %d\nquery: %s",
					trial, tup, serial.Anns[i], par.Anns[j], q)
			}
		}
	}
}

// TestParallelMatchesSerialWhy: provenance expressions from the parallel
// engine are logically equivalent to the serial engine's (checked on
// random assignments).
func TestParallelMatchesSerialWhy(t *testing.T) {
	popts := forceParallel(t)
	rng := rand.New(rand.NewSource(1541))
	for trial := 0; trial < 100; trial++ {
		db := randomDB(rng)
		q := randomPlan(rng)
		serial, err := Run(Why, q, db, nil)
		if err != nil {
			t.Fatalf("trial %d: serial: %v\n%s", trial, err, q)
		}
		par, err := RunOpts(Why, q, db, nil, popts)
		if err != nil {
			t.Fatalf("trial %d: parallel: %v\n%s", trial, err, q)
		}
		if par.Len() != serial.Len() {
			t.Fatalf("trial %d: tuple sets differ: serial %d parallel %d\nquery: %s",
				trial, serial.Len(), par.Len(), q)
		}
		allIDs := db.AllIDs()
		for k := 0; k < 16; k++ {
			assign := map[int]bool{}
			for _, id := range allIDs {
				assign[int(id)] = rng.Intn(2) == 0
			}
			fn := func(id int) bool { return assign[id] }
			for i, tup := range serial.Tuples {
				j := par.Lookup(tup)
				if j < 0 {
					t.Fatalf("trial %d: parallel missing %v\nquery: %s", trial, tup, q)
				}
				if serial.Anns[i].Eval(fn) != par.Anns[j].Eval(fn) {
					t.Fatalf("trial %d: provenance of %v inequivalent\nserial: %s\nparallel: %s\nquery: %s",
						trial, tup, serial.Anns[i], par.Anns[j], q)
				}
			}
		}
	}
}

// TestParallelDeterministic: for a fixed Parallelism the parallel engine
// produces the same tuples in the same order on every run (shard
// assignment uses a fixed hash; shard outputs concatenate in shard order).
func TestParallelDeterministic(t *testing.T) {
	popts := forceParallel(t)
	rng := rand.New(rand.NewSource(90125))
	for trial := 0; trial < 40; trial++ {
		db := randomDB(rng)
		q := randomPlan(rng)
		a, err := RunOpts[Count](Counting, q, db, nil, popts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunOpts[Count](Counting, q, db, nil, popts)
		if err != nil {
			t.Fatal(err)
		}
		if a.Len() != b.Len() {
			t.Fatalf("trial %d: lengths differ across runs: %d vs %d", trial, a.Len(), b.Len())
		}
		for i := range a.Tuples {
			if !a.Tuples[i].Identical(b.Tuples[i]) || a.Anns[i] != b.Anns[i] {
				t.Fatalf("trial %d: position %d differs across runs: %v vs %v",
					trial, i, a.Tuples[i], b.Tuples[i])
			}
		}
	}
}

// TestParallelDiffMatchesSerial: the hash-partitioned parallel difference
// (the last operator to gain a parallel path) produces the serial result,
// annotation for annotation, on plans topped with Diff — including left
// tuples with NULLs, which the full-tuple-key partitioning must route to
// the same shard as their identical right counterparts.
func TestParallelDiffMatchesSerial(t *testing.T) {
	popts := forceParallel(t)
	rng := rand.New(rand.NewSource(20260731))
	for trial := 0; trial < 200; trial++ {
		db := randomDB(rng)
		q := &ra.Diff{L: randomCompat(rng, 2), R: randomCompat(rng, 2)}
		serial, err := Run[Count](Counting, q, db, nil)
		if err != nil {
			t.Fatalf("trial %d: serial: %v\n%s", trial, err, q)
		}
		par, err := RunOpts[Count](Counting, q, db, nil, popts)
		if err != nil {
			t.Fatalf("trial %d: parallel: %v\n%s", trial, err, q)
		}
		if par.Len() != serial.Len() {
			t.Fatalf("trial %d: sizes differ: serial %d parallel %d\nquery: %s",
				trial, serial.Len(), par.Len(), q)
		}
		for i, tup := range serial.Tuples {
			j := par.Lookup(tup)
			if j < 0 {
				t.Fatalf("trial %d: parallel diff missing %v\nquery: %s", trial, tup, q)
			}
			if par.Anns[j] != serial.Anns[i] {
				t.Fatalf("trial %d: annotation of %v: serial %d parallel %d\nquery: %s",
					trial, tup, serial.Anns[i], par.Anns[j], q)
			}
		}
		// Why-provenance difference keeps every left tuple (IsZero is
		// conservative); sizes matching is the regression of interest.
		sWhy, err := Run(Why, q, db, nil)
		if err != nil {
			t.Fatal(err)
		}
		pWhy, err := RunOpts(Why, q, db, nil, popts)
		if err != nil {
			t.Fatal(err)
		}
		if sWhy.Len() != pWhy.Len() {
			t.Fatalf("trial %d: why-diff sizes differ: serial %d parallel %d", trial, sWhy.Len(), pWhy.Len())
		}
	}
}

// TestParallelDiffDeterministic: repeated parallel differences produce
// identical tuple order (fixed hash, shard-order concatenation).
func TestParallelDiffDeterministic(t *testing.T) {
	popts := forceParallel(t)
	rng := rand.New(rand.NewSource(314))
	for trial := 0; trial < 30; trial++ {
		db := randomDB(rng)
		q := &ra.Diff{L: randomCompat(rng, 2), R: randomCompat(rng, 2)}
		a, err := RunOpts[bool](Set, q, db, nil, popts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunOpts[bool](Set, q, db, nil, popts)
		if err != nil {
			t.Fatal(err)
		}
		if a.Len() != b.Len() {
			t.Fatalf("trial %d: lengths differ across runs", trial)
		}
		for i := range a.Tuples {
			if !a.Tuples[i].Identical(b.Tuples[i]) {
				t.Fatalf("trial %d: position %d differs across runs", trial, i)
			}
		}
	}
}

// TestParallelJoinRowBudget: the atomic global row budget aborts a
// partitioned join that exceeds MaxIntermediateRows.
func TestParallelJoinRowBudget(t *testing.T) {
	popts := forceParallel(t)
	savedRows := MaxIntermediateRows
	MaxIntermediateRows = 10
	t.Cleanup(func() { MaxIntermediateRows = savedRows })
	db := joinDB(200)
	q := &ra.Join{
		L:    &ra.Rename{As: "x", In: &ra.Rel{Name: "L"}},
		R:    &ra.Rename{As: "y", In: &ra.Rel{Name: "R"}},
		Cond: ra.Eq("x.k", "y.k"),
	}
	_, err := RunOpts[bool](Set, q, db, nil, popts)
	if !errors.Is(err, ErrRowBudget) {
		t.Fatalf("err = %v, want ErrRowBudget", err)
	}
}

// TestCountSemiringSaturates: the counting semiring saturates instead of
// wrapping (a wrapped-to-zero count would prune a live tuple).
func TestCountSemiringSaturates(t *testing.T) {
	if got := Counting.Plus(math.MaxInt64, 5); got != math.MaxInt64 {
		t.Errorf("Plus overflow: got %d", got)
	}
	if got := Counting.Times(3<<40, 3<<40); got != math.MaxInt64 {
		t.Errorf("Times overflow: got %d", got)
	}
	if got := Counting.Times(0, math.MaxInt64); got != 0 {
		t.Errorf("Times zero: got %d", got)
	}
	if got := Counting.Plus(2, 3); got != 5 {
		t.Errorf("Plus small: got %d", got)
	}
	if got := Counting.Times(6, 7); got != 42 {
		t.Errorf("Times small: got %d", got)
	}
}

// TestCountOverflowKeepsSupport is the end-to-end regression: a 65-way
// cross product of a tuple with 2 derivations has 2^65 derivations, which
// wraps int64 to exactly 0 — before saturation the tuple was pruned from
// the support as "zero count".
func TestCountOverflowKeepsSupport(t *testing.T) {
	db := relation.NewDatabase()
	db.CreateRelation("R", relation.NewSchema(relation.Attr("a", relation.KindString)))
	db.Insert("R", relation.NewTuple(relation.String("x")))
	db.Insert("R", relation.NewTuple(relation.String("x")))
	q := ra.Node(&ra.Rename{As: "r1", In: &ra.Rel{Name: "R"}})
	for i := 2; i <= 65; i++ {
		q = &ra.Join{L: q, R: &ra.Rename{As: fmt.Sprintf("r%d", i), In: &ra.Rel{Name: "R"}}}
	}
	r, err := Run[Count](Counting, q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("support size = %d, want 1 (overflow pruned the tuple?)", r.Len())
	}
	if r.Anns[0] != math.MaxInt64 {
		t.Errorf("count = %d, want saturation at MaxInt64", r.Anns[0])
	}
}

// TestRenameCopyOnWrite is the regression for the aliasing bug: the output
// of Rename shared the input's tuple/annotation slices at full capacity and
// its hash index, so an Add on the renamed relation could scribble on the
// input's backing arrays and corrupt its index under a different schema.
func TestRenameCopyOnWrite(t *testing.T) {
	in := NewRel[Count](relation.NewSchema(relation.Attr("a", relation.KindInt)))
	in.Add(Counting, relation.NewTuple(relation.Int(1)), 1)
	in.Add(Counting, relation.NewTuple(relation.Int(2)), 1)

	out := renameRel(in, "x")
	if got := out.Schema.Attrs[0].Name; got != "x.a" {
		t.Fatalf("renamed schema attr = %q, want x.a", got)
	}
	// ⊕-merge first: Add overwrites the annotation slot in place, so this
	// must not write through to the input's annotation array.
	out.Add(Counting, relation.NewTuple(relation.Int(2)), 5)
	if i := in.Lookup(relation.NewTuple(relation.Int(2))); in.Anns[i] != 1 {
		t.Errorf("merge on the renamed relation mutated the input's annotation: %v", in.Anns)
	}
	out.Add(Counting, relation.NewTuple(relation.Int(3)), 1)

	if in.Len() != 2 {
		t.Fatalf("input length changed to %d after mutating the rename", in.Len())
	}
	if in.Lookup(relation.NewTuple(relation.Int(3))) >= 0 {
		t.Error("tuple added to the renamed relation leaked into the input's index")
	}
	if i := in.Lookup(relation.NewTuple(relation.Int(2))); i != 1 || in.Anns[i] != 1 {
		t.Errorf("input annotation mutated: pos %d anns %v", i, in.Anns)
	}
	if out.Len() != 3 {
		t.Errorf("renamed relation length = %d, want 3", out.Len())
	}
	if j := out.Lookup(relation.NewTuple(relation.Int(2))); j != 1 || out.Anns[j] != 6 {
		t.Errorf("renamed relation merge wrong: pos %d anns %v", j, out.Anns)
	}
}

// TestCrossExceedsBudget checks the overflow-proof cross-product budget
// test, including sizes whose product overflows int.
func TestCrossExceedsBudget(t *testing.T) {
	const big = math.MaxInt / 2
	cases := []struct {
		l, r, budget int
		want         bool
	}{
		{0, big, 1_000_000, false},
		{big, 0, 1_000_000, false},
		{1000, 1000, 1_000_000, false},
		{1000, 1001, 1_000_000, true},
		{big, big, 1_000_000, true}, // l*r would overflow int
		{big, 2, math.MaxInt, false},
		{big, 3, math.MaxInt, true}, // product overflows int itself
		{1, 1_000_000, 1_000_000, false},
		{2, 1_000_000, 1_000_000, true},
	}
	for _, c := range cases {
		if got := crossExceedsBudget(c.l, c.r, c.budget); got != c.want {
			t.Errorf("crossExceedsBudget(%d, %d, %d) = %v, want %v", c.l, c.r, c.budget, got, c.want)
		}
	}
}
