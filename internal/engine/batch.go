package engine

import (
	"fmt"

	"repro/internal/ra"
	"repro/internal/relation"
)

// BatchResult is the outcome of one batched evaluation: the union support
// (every tuple in the result for at least one candidate subinstance) and a
// per-candidate presence mask per tuple. Candidate k's result is the set of
// tuples whose bit k is set.
type BatchResult struct {
	// Schema is the result schema (shared by all candidates).
	Schema relation.Schema
	// Tuples is the union support across candidates.
	Tuples []relation.Tuple
	// K is the number of candidates in the batch.
	K int

	words int
	bits  []uint64 // tuple i's mask occupies bits[i*words : (i+1)*words]
	any   Bits     // OR over all tuple masks: which candidates have a nonempty result
}

// Len returns the size of the union support.
func (b *BatchResult) Len() int { return len(b.Tuples) }

// Has reports whether tuple i is in candidate k's result.
func (b *BatchResult) Has(i, k int) bool {
	return b.bits[i*b.words+k/64]>>(uint(k)%64)&1 != 0
}

// NonEmpty reports whether candidate k's result contains any tuple.
func (b *BatchResult) NonEmpty(k int) bool { return b.any.Get(k) }

// ResultFor materializes candidate k's result tuples (a subsequence of the
// union support, preserving its order).
func (b *BatchResult) ResultFor(k int) []relation.Tuple {
	var out []relation.Tuple
	for i := range b.Tuples {
		if b.Has(i, k) {
			out = append(out, b.Tuples[i])
		}
	}
	return out
}

// assemble64 converts a word-annotated relation into a BatchResult,
// dropping tuples outside every candidate's result.
func assemble64(rel *Rel[uint64], k int) *BatchResult {
	out := &BatchResult{Schema: rel.Schema, K: k, words: 1, any: make(Bits, 1)}
	out.Tuples = make([]relation.Tuple, 0, rel.Len())
	out.bits = make([]uint64, 0, rel.Len())
	for i, ann := range rel.Anns {
		if ann == 0 {
			continue // in no candidate's result: not part of the support
		}
		out.Tuples = append(out.Tuples, rel.Tuples[i])
		out.bits = append(out.bits, ann)
		out.any[0] |= ann
	}
	return out
}

// assembleWide is assemble64 for multi-word masks.
func assembleWide(rel *Rel[Bits], k int) *BatchResult {
	words := (k + 63) / 64
	out := &BatchResult{Schema: rel.Schema, K: k, words: words, any: make(Bits, words)}
	out.Tuples = make([]relation.Tuple, 0, rel.Len())
	out.bits = make([]uint64, 0, rel.Len()*words)
	for i, ann := range rel.Anns {
		if ann.isZero() {
			continue
		}
		out.Tuples = append(out.Tuples, rel.Tuples[i])
		for w := 0; w < words; w++ {
			out.bits = append(out.bits, ann[w])
			out.any[w] |= ann[w]
		}
	}
	return out
}

// EvalBatch evaluates q once over the full database and answers, for each
// of the K candidate subinstances (sets of base-tuple identifiers), which
// tuples q produces on that subinstance — one engine pass under a bitvector
// semiring instead of K per-candidate database constructions and
// evaluations. Set semantics only; the per-candidate results equal
// independent Eval runs on db.Subinstance of each candidate.
//
// Batches of up to 64 candidates run with word-sized (uint64) annotations;
// larger batches use multi-word masks. Plans containing GroupBy return an
// error wrapping ErrNoAggregates (γ is not per-bit sound); callers fall
// back to per-candidate evaluation, detected via errors.Is.
func EvalBatch(q ra.Node, db *relation.Database, params map[string]relation.Value, candidates [][]relation.TupleID, opts Options) (*BatchResult, error) {
	k := len(candidates)
	if k == 0 {
		return &BatchResult{words: 1}, nil
	}
	if k <= 64 {
		s, err := NewBitSemiring(candidates)
		if err != nil {
			return nil, err
		}
		rel, err := RunOpts[uint64](s, q, db, params, opts)
		if err != nil {
			return nil, err
		}
		return assemble64(rel, k), nil
	}
	s := NewWideBitSemiring(candidates)
	rel, err := RunOpts[Bits](s, q, db, params, opts)
	if err != nil {
		return nil, err
	}
	return assembleWide(rel, k), nil
}

// evalPairDiffs evaluates q1 and q2 once each in a shared exec (base scans
// and their Leaf annotations are computed once for both queries) and
// returns the two physical differences q1 − q2 and q2 − q1.
func evalPairDiffs[T any](s Semiring[T], q1, q2 ra.Node, db *relation.Database, params map[string]relation.Value, opts Options) (*Rel[T], *Rel[T], error) {
	e := newExec(s, db, params, opts)
	if !opts.NoOptimize {
		cat := Catalog{DB: db}
		q1 = Optimize(q1, cat)
		q2 = Optimize(q2, cat)
	}
	if !opts.NoPlan {
		var err error
		if q1, err = planWith(q1, db, opts, true); err != nil {
			return nil, nil, err
		}
		if q2, err = planWith(q2, db, opts, true); err != nil {
			return nil, nil, err
		}
	}
	e.markShared(q1)
	e.markShared(q2)
	r1, err := e.node(q1)
	if err != nil {
		return nil, nil, err
	}
	r2, err := e.node(q2)
	if err != nil {
		return nil, nil, err
	}
	if !r1.Schema.UnionCompatible(r2.Schema) {
		return nil, nil, fmt.Errorf("engine: difference of incompatible schemas %s, %s", r1.Schema, r2.Schema)
	}
	return e.diff(r1, r2), e.diff(r2, r1), nil
}

// EvalBatchDiffs answers, for each candidate subinstance, which tuples
// Q1 − Q2 and Q2 − Q1 produce on it. It is EvalBatch for both difference
// directions at once, sharing the query evaluations: Q1 and Q2 are each
// evaluated a single time (with base scans shared between them) instead of
// twice as two independent &ra.Diff plans would. This is the engine half of
// the batched Verify: candidate k is a counterexample iff either direction
// is nonempty at bit k.
func EvalBatchDiffs(q1, q2 ra.Node, db *relation.Database, params map[string]relation.Value, candidates [][]relation.TupleID, opts Options) (*BatchResult, *BatchResult, error) {
	k := len(candidates)
	if k == 0 {
		return &BatchResult{words: 1}, &BatchResult{words: 1}, nil
	}
	if k <= 64 {
		s, err := NewBitSemiring(candidates)
		if err != nil {
			return nil, nil, err
		}
		d12, d21, err := evalPairDiffs[uint64](s, q1, q2, db, params, opts)
		if err != nil {
			return nil, nil, err
		}
		return assemble64(d12, k), assemble64(d21, k), nil
	}
	s := NewWideBitSemiring(candidates)
	d12, d21, err := evalPairDiffs[Bits](s, q1, q2, db, params, opts)
	if err != nil {
		return nil, nil, err
	}
	return assembleWide(d12, k), assembleWide(d21, k), nil
}
