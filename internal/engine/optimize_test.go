package engine

import (
	"strings"
	"testing"

	"repro/internal/ra"
	"repro/internal/raparser"
	"repro/internal/relation"
	"repro/internal/testdb"
)

// evalUnoptimized evaluates without the Optimize pass, as the ground truth.
func evalUnoptimized(q ra.Node, db *relation.Database) (*relation.Relation, error) {
	r, err := RunOpts(Set, q, db, nil, Options{NoOptimize: true})
	if err != nil {
		return nil, err
	}
	return r.Relation("res"), nil
}

func TestOptimizePreservesSemantics(t *testing.T) {
	db := testdb.Example1DB()
	queries := []string{
		"select[dept = 'CS'](Student join Registration)",
		"project[name, major](select[dept = 'CS' and grade >= 90](Student join Registration))",
		"select[s.name = r1.name and r1.dept = 'CS'](rename[s](Student) cross rename[r1](Registration))",
		"select[s.name = r1.name and s.name = r2.name and r1.course <> r2.course and r1.dept = 'CS' and r2.dept = 'CS'](rename[s](Student) cross rename[r1](Registration) cross rename[r2](Registration))",
		"project[name](select[grade >= 90](Student join Registration)) union project[name](select[dept = 'ECON'](Registration))",
		"project[name](Student) diff project[name](select[dept = 'ECON'](Registration))",
		"select[grade > 80](select[dept = 'CS'](Registration))",
		"select[name = 'Mary'](project[name, major](Student join Registration))",
		"select[avg_grade >= 90](groupby[name; avg(grade) -> avg_grade](Registration))",
		"select[major = 'CS'](rename[s](Student))",
	}
	cat := Catalog{DB: db}
	for _, src := range queries {
		q := raparser.MustParse(src)
		want, err := evalUnoptimized(q, db)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		opt := Optimize(q, cat)
		got, err := evalUnoptimized(opt, db)
		if err != nil {
			t.Fatalf("%s (optimized %s): %v", src, opt, err)
		}
		if !want.SetEqual(got) {
			t.Errorf("optimization changed results for %s\noptimized: %s\nwant %v\ngot %v",
				src, opt, want.Sorted().Tuples, got.Sorted().Tuples)
		}
	}
}

func TestOptimizePreservesProvenance(t *testing.T) {
	// Provenance annotations must be logically equivalent before and after
	// optimization: check by evaluating both on sampled subinstances.
	db := testdb.Example1DB()
	queries := []string{
		"project[name, major](select[dept = 'CS'](Student join Registration))",
		"select[s.name = r1.name and r1.dept = 'CS'](rename[s](Student) cross rename[r1](Registration))",
		"project[name](Student) diff project[name](select[dept = 'ECON'](Registration))",
	}
	for _, src := range queries {
		q := raparser.MustParse(src)
		ann, err := EvalProv(q, db, nil) // optimized internally
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		for mask := 0; mask < 32; mask++ {
			keep := map[relation.TupleID]bool{1: true, 2: mask&16 != 0, 3: true}
			ids := map[int]bool{1: true, 3: true}
			if mask&16 != 0 {
				ids[2] = true
			}
			for b := 0; b < 4; b++ {
				if mask&(1<<b) != 0 {
					keep[relation.TupleID(4+b)] = true
					ids[4+b] = true
				}
			}
			sub := db.Subinstance(keep)
			res, err := Eval(q, sub, nil)
			if err != nil {
				t.Fatal(err)
			}
			inRes := map[string]bool{}
			for _, tup := range res.Tuples {
				inRes[tup.Key()] = true
			}
			for i, tup := range ann.Tuples {
				got := ann.Anns[i].Eval(func(id int) bool { return ids[id] })
				if got != inRes[tup.Key()] {
					t.Fatalf("%s: provenance wrong for %v on %v", src, tup, ids)
				}
			}
		}
	}
}

func TestOptimizePushesThroughProject(t *testing.T) {
	db := testdb.Example1DB()
	cat := Catalog{DB: db}
	q := raparser.MustParse("select[name = 'Mary'](project[name, major](Student))")
	opt := Optimize(q, cat)
	// The selection must end up below the projection.
	p, ok := opt.(*ra.Project)
	if !ok {
		t.Fatalf("top should be projection, got %T (%s)", opt, opt)
	}
	if _, ok := p.In.(*ra.Select); !ok {
		t.Errorf("selection not pushed below projection: %s", opt)
	}
}

func TestOptimizeSplitsJoinConjuncts(t *testing.T) {
	db := testdb.Example1DB()
	cat := Catalog{DB: db}
	q := raparser.MustParse(
		"select[s.name = r.name and r.dept = 'CS' and s.major = 'CS'](rename[s](Student) cross rename[r](Registration))")
	opt := Optimize(q, cat)
	// No Select should remain at the top: all conjuncts distribute.
	if _, ok := opt.(*ra.Select); ok {
		t.Errorf("selection stayed at top: %s", opt)
	}
	// Both sides should have received their one-sided filters.
	s := opt.String()
	if !strings.Contains(s, "r.dept = 'CS'") || !strings.Contains(s, "s.major = 'CS'") {
		t.Errorf("one-sided conjuncts not pushed: %s", s)
	}
}

func TestEquiJoinPlanExtraction(t *testing.T) {
	l := relation.NewSchema(relation.Attr("a.x", relation.KindInt), relation.Attr("a.y", relation.KindInt))
	r := relation.NewSchema(relation.Attr("b.x", relation.KindInt), relation.Attr("b.z", relation.KindInt))
	cond := raparser.MustParse("select[a.x = b.x and a.y < b.z](R)").(*ra.Select).Pred
	lk, rk, res := EquiJoinPlan(cond, l, r)
	if len(lk) != 1 || lk[0] != 0 || len(rk) != 1 || rk[0] != 0 {
		t.Errorf("keys = %v %v", lk, rk)
	}
	if res == nil {
		t.Error("residual missing")
	}
	// Mirrored orientation.
	cond2 := raparser.MustParse("select[b.x = a.x](R)").(*ra.Select).Pred
	lk2, rk2, res2 := EquiJoinPlan(cond2, l, r)
	if len(lk2) != 1 || res2 != nil {
		t.Errorf("mirrored extraction failed: %v %v %v", lk2, rk2, res2)
	}
}

func TestRowBudget(t *testing.T) {
	old := MaxIntermediateRows
	MaxIntermediateRows = 100
	defer func() { MaxIntermediateRows = old }()
	db := testdb.Example1DB()
	// 3 × 8 × 8 = 192 > 100 rows.
	q := raparser.MustParse("rename[a](Student) cross rename[b](Registration) cross rename[c](Registration)")
	if _, err := Eval(q, db, nil); err == nil {
		t.Error("row budget should trip")
	}
	if _, err := EvalProv(q, db, nil); err == nil {
		t.Error("row budget should trip in provenance mode")
	}
}
