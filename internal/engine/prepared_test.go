package engine

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/ra"
	"repro/internal/relation"
)

// This file differentially tests the delta-incremental subsystem:
// PreparedDiff.EvalDelta over random plan pairs (including Diff towers, NULL
// join keys, θ-joins with residuals, and γ plans exercising the group-level
// re-aggregation) must agree with a full EvalDiffs-style evaluation on the
// materialized subinstance, for independent deltas (empty, singleton, half,
// full) and for committed delta chains.

// randomPairKind picks the shape of a (q1, q2) pair: plain SPJUD-compatible
// plans, θ-equi-join-wrapped plans (NULL join keys, residual conditions), or
// γ plans (group-level incremental re-aggregation).
func randomDiffPair(rng *rand.Rand) (ra.Node, ra.Node) {
	switch rng.Intn(5) {
	case 0: // θ-join wrapped, shared projection so the pair stays compatible
		wrap := func(q ra.Node) ra.Node {
			cond := ra.Expr(&ra.Cmp{Op: ra.EQ, L: &ra.AttrRef{Name: "u.a"}, R: &ra.AttrRef{Name: "v.a"}})
			if rng.Intn(2) == 0 {
				cond = &ra.And{Kids: []ra.Expr{cond,
					&ra.Cmp{Op: ra.EQ, L: &ra.AttrRef{Name: "u.b"}, R: &ra.AttrRef{Name: "v.b"}}}}
			}
			if rng.Intn(2) == 0 {
				cond = &ra.And{Kids: []ra.Expr{cond,
					&ra.Cmp{Op: ra.LE, L: &ra.AttrRef{Name: "u.b"}, R: &ra.AttrRef{Name: "v.a"}}}}
			}
			return &ra.Project{Cols: []string{"u.a", "v.c"}, In: &ra.Join{
				L:    &ra.Rename{As: "u", In: q},
				R:    &ra.Rename{As: "v", In: randomCompat(rng, 1)},
				Cond: cond,
			}}
		}
		return wrap(randomCompat(rng, 2)), wrap(randomCompat(rng, 2))
	case 1: // γ over random (possibly Diff-containing) inputs
		gb := func(q ra.Node) ra.Node {
			return &ra.GroupBy{
				GroupCols: []string{"a"},
				Aggs: []ra.AggSpec{
					{Func: ra.Count, As: "n"},
					{Func: ra.Sum, Attr: "b", As: "s"},
					{Func: ra.Min, Attr: "c", As: "m"},
				},
				In: q,
			}
		}
		return gb(randomCompat(rng, 2)), gb(randomCompat(rng, 2))
	case 2: // explicit Diff towers on both sides
		return &ra.Diff{L: randomCompat(rng, 2), R: randomCompat(rng, 2)},
			&ra.Diff{L: randomCompat(rng, 2), R: randomCompat(rng, 2)}
	default:
		return randomCompat(rng, 2), randomCompat(rng, 2)
	}
}

// subDiffs computes the ground truth: both difference directions of the
// pair on the materialized subinstance, via the full engine.
func subDiffs(t *testing.T, q1, q2 ra.Node, sub *relation.Database) (map[string]bool, map[string]bool) {
	t.Helper()
	r1, err := Eval(q1, sub, nil)
	if err != nil {
		t.Fatalf("ground truth q1: %v", err)
	}
	r2, err := Eval(q2, sub, nil)
	if err != nil {
		t.Fatalf("ground truth q2: %v", err)
	}
	return keySet(r1.SetDiff(r2).Tuples), keySet(r2.SetDiff(r1).Tuples)
}

func checkDelta(t *testing.T, trial int, q1, q2 ra.Node, db *relation.Database, res *DeltaResult, keep map[relation.TupleID]bool) {
	t.Helper()
	sub := db.Subinstance(keep)
	want12, want21 := subDiffs(t, q1, q2, sub)
	d12, err := res.Diff12()
	if err != nil {
		t.Fatalf("trial %d: Diff12: %v", trial, err)
	}
	d21, err := res.Diff21()
	if err != nil {
		t.Fatalf("trial %d: Diff21: %v", trial, err)
	}
	got12 := keySet(d12.Tuples)
	got21 := keySet(d21.Tuples)
	if !sameKeySets(want12, got12) || len(want12) != res.Size12() {
		t.Fatalf("trial %d: Q1−Q2 mismatch: want %d tuples, got %d (Size12=%d)\nq1: %s\nq2: %s",
			trial, len(want12), len(got12), res.Size12(), q1, q2)
	}
	if !sameKeySets(want21, got21) || len(want21) != res.Size21() {
		t.Fatalf("trial %d: Q2−Q1 mismatch: want %d tuples, got %d (Size21=%d)\nq1: %s\nq2: %s",
			trial, len(want21), len(got21), res.Size21(), q1, q2)
	}
	if res.Disagrees() != (len(want12) > 0 || len(want21) > 0) {
		t.Fatalf("trial %d: Disagrees mismatch", trial)
	}
}

// TestPreparedDiffDifferential: EvalDelta ≡ full evaluation on the
// materialized subinstance over ≥200 random plan pairs and deltas of every
// size class, evaluated independently (no commits).
func TestPreparedDiffDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	prepared := 0
	for trial := 0; trial < 220; trial++ {
		db := randomDB(rng)
		q1, q2 := randomDiffPair(rng)
		p, err := PrepareDiff(q1, q2, db, nil, Options{})
		if err != nil {
			// Row-budget plans are legitimately unpreparable; anything else
			// would also fail a full evaluation.
			continue
		}
		prepared++
		all := db.AllIDs()
		deltas := [][]relation.TupleID{
			nil,     // empty delta: the base instance itself
			all[:1], // singleton
			all,     // full delta: everything deleted
			randomIDSubset(rng, all, len(all)/2),
			randomIDSubset(rng, all, 1+rng.Intn(len(all))),
		}
		for _, removed := range deltas {
			res, err := p.EvalDelta(removed)
			if err != nil {
				t.Fatalf("trial %d: EvalDelta: %v\nq1: %s\nq2: %s", trial, err, q1, q2)
			}
			keep := map[relation.TupleID]bool{}
			gone := map[relation.TupleID]bool{}
			for _, id := range removed {
				gone[id] = true
			}
			for _, id := range all {
				if !gone[id] {
					keep[id] = true
				}
			}
			checkDelta(t, trial, q1, q2, db, res, keep)
		}
	}
	if prepared < 200 {
		t.Fatalf("only %d/220 random plan pairs prepared; differential coverage too thin", prepared)
	}
}

// TestPreparedDiffCommitChain: committed deltas accumulate — each
// subsequent EvalDelta is relative to the shrunk base — and the final state
// matches a fresh evaluation of the remaining subinstance.
func TestPreparedDiffCommitChain(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 80; trial++ {
		db := randomDB(rng)
		q1, q2 := randomDiffPair(rng)
		p, err := PrepareDiff(q1, q2, db, nil, Options{})
		if err != nil {
			continue
		}
		all := db.AllIDs()
		gone := map[relation.TupleID]bool{}
		for step := 0; step < 6 && len(gone) < len(all); step++ {
			removed := randomIDSubset(rng, all, 1+rng.Intn(3))
			res, err := p.EvalDelta(removed)
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			for _, id := range removed {
				gone[id] = true
			}
			keep := map[relation.TupleID]bool{}
			for _, id := range all {
				if !gone[id] {
					keep[id] = true
				}
			}
			checkDelta(t, trial, q1, q2, db, res, keep)
			if err := res.Commit(); err != nil {
				t.Fatalf("trial %d step %d: commit: %v", trial, step, err)
			}
			if p.BaseSize() != len(keep) {
				t.Fatalf("trial %d step %d: BaseSize %d, want %d", trial, step, p.BaseSize(), len(keep))
			}
			// The committed base diffs must also match the subinstance.
			want12, want21 := subDiffs(t, q1, q2, db.Subinstance(keep))
			d12, d21 := p.Diffs()
			if !sameKeySets(want12, keySet(d12.Tuples)) || !sameKeySets(want21, keySet(d21.Tuples)) {
				t.Fatalf("trial %d step %d: committed base diffs diverge", trial, step)
			}
		}
	}
}

// TestPreparedDiffStaleCommit: a DeltaResult computed before another commit
// advanced the base refuses to commit.
func TestPreparedDiffStaleCommit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := randomDB(rng)
	q1, q2 := randomCompat(rng, 2), randomCompat(rng, 2)
	p, err := PrepareDiff(q1, q2, db, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	all := db.AllIDs()
	a, err := p.EvalDelta(all[:1])
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.EvalDelta(all[1:2])
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); !errors.Is(err, ErrStaleDelta) {
		t.Fatalf("stale commit: got %v, want ErrStaleDelta", err)
	}
	// A committed result materializes the (now folded-in) base; a superseded
	// one refuses rather than double-applying its delta.
	if d, err := a.Diff12(); err != nil {
		t.Fatalf("committed Diff12: %v", err)
	} else if base12, _ := p.Diffs(); !sameKeySets(keySet(d.Tuples), keySet(base12.Tuples)) {
		t.Fatal("committed Diff12 diverges from the base diffs")
	}
	if _, err := b.Diff12(); !errors.Is(err, ErrStaleDelta) {
		t.Fatalf("stale Diff12: got %v, want ErrStaleDelta", err)
	}
	// Removing an already-removed id is a no-op, not a double decrement.
	c, err := p.EvalDelta(all[:1])
	if err != nil {
		t.Fatal(err)
	}
	base12, _ := p.Diffs()
	if c.Size12() != base12.Len() {
		t.Fatalf("re-removing a dead id changed the result: %d vs %d", c.Size12(), base12.Len())
	}
}

// TestPreparedDiffInterleavedWithBatch: uncommitted EvalDelta results and
// batch-layer evaluations of the same (Q1, Q2, D) never share state — the
// prepared base-scan cache must stay valid across interleaved EvalBatchDiffs
// calls (regression guard for the witness loops, where one enumeration mixes
// both paths).
func TestPreparedDiffInterleavedWithBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		db := randomDB(rng)
		q1, q2 := randomDiffPair(rng)
		p, err := PrepareDiff(q1, q2, db, nil, Options{})
		if err != nil {
			continue
		}
		all := db.AllIDs()
		removed := randomIDSubset(rng, all, len(all)/3)
		keep := complementIDs(all, removed)
		before, err := p.EvalDelta(removed)
		if err != nil {
			t.Fatal(err)
		}
		// Batch evaluation of the same candidate in between.
		var cand []relation.TupleID
		for id := range keep {
			cand = append(cand, id)
		}
		sort.Slice(cand, func(a, b int) bool { return cand[a] < cand[b] })
		d12b, d21b, err := EvalBatchDiffs(q1, q2, db, nil, [][]relation.TupleID{cand}, Options{})
		batchOK := err == nil
		after, err := p.EvalDelta(removed)
		if err != nil {
			t.Fatal(err)
		}
		if before.Size12() != after.Size12() || before.Size21() != after.Size21() {
			t.Fatalf("trial %d: batch evaluation perturbed prepared state: (%d,%d) vs (%d,%d)",
				trial, before.Size12(), before.Size21(), after.Size12(), after.Size21())
		}
		checkDelta(t, trial, q1, q2, db, after, keep)
		if batchOK {
			if got, want := d12b.NonEmpty(0), after.Size12() > 0; got != want {
				t.Fatalf("trial %d: batch and delta disagree on Q1−Q2 emptiness", trial)
			}
			if got, want := d21b.NonEmpty(0), after.Size21() > 0; got != want {
				t.Fatalf("trial %d: batch and delta disagree on Q2−Q1 emptiness", trial)
			}
		}
	}
}

func randomIDSubset(rng *rand.Rand, all []relation.TupleID, n int) []relation.TupleID {
	perm := rng.Perm(len(all))
	if n > len(all) {
		n = len(all)
	}
	out := make([]relation.TupleID, 0, n)
	for _, i := range perm[:n] {
		out = append(out, all[i])
	}
	return out
}

func complementIDs(all, removed []relation.TupleID) map[relation.TupleID]bool {
	gone := map[relation.TupleID]bool{}
	for _, id := range removed {
		gone[id] = true
	}
	keep := map[relation.TupleID]bool{}
	for _, id := range all {
		if !gone[id] {
			keep[id] = true
		}
	}
	return keep
}
