package engine

import (
	"hash/fnv"
	"math/rand"

	"repro/internal/relation"
)

// This file computes the per-instance cardinality statistics that drive the
// cost-based join planner: per-relation row counts and per-column distinct
// counts and NULL fractions. Small relations are scanned exactly — the
// distinct count of column i is the support cardinality |π_i(R)| under the
// counting semiring, computed here as the same hash dedup the counting
// evaluator performs, without materializing a result relation. Relations
// above StatsSampleThreshold are estimated from a uniform row sample
// instead. Statistics are cached on the Database itself (its opaque derived
// slot) keyed by its version counter, so every evaluation against a shared
// instance — including the server's instance-LRU residents — pays for them
// once.

// StatsSampleThreshold is the row count above which column statistics come
// from a sample instead of an exact scan.
var StatsSampleThreshold = 65_536

// StatsSampleSize is how many rows the sampled estimator inspects.
var StatsSampleSize = 4096

// ColStats describes one column of a base relation.
type ColStats struct {
	// Distinct estimates the number of distinct non-NULL values.
	Distinct float64
	// NullFrac is the fraction of rows that are NULL in this column.
	NullFrac float64
}

// RelStats describes one base relation.
type RelStats struct {
	Rows    int
	Cols    []ColStats
	Sampled bool
}

// Stats holds per-relation statistics for one database instance.
type Stats struct {
	version int64
	rels    map[string]*RelStats
}

// Rel returns the statistics for a base relation, or nil when unknown
// (statistics-free planning falls back to default estimates).
func (s *Stats) Rel(name string) *RelStats {
	if s == nil {
		return nil
	}
	return s.rels[name]
}

// StatsOf returns the (possibly cached) statistics for an instance. A nil
// database yields empty statistics — the statistics-free fallback used for
// planning without an instance at hand. The cache lives on the database, so
// its lifetime (and sharing) follows the instance: concurrent evaluations
// against the same shared instance compute statistics once, and a database
// mutated after the fact recomputes on next use via the version check.
func StatsOf(db *relation.Database) *Stats {
	if db == nil {
		return &Stats{}
	}
	if cached, ok := db.Derived().(*Stats); ok && cached.version == db.Version() {
		return cached
	}
	s := ComputeStats(db)
	db.SetDerived(s)
	return s
}

// ComputeStats scans an instance and builds fresh statistics.
func ComputeStats(db *relation.Database) *Stats {
	s := &Stats{version: db.Version(), rels: map[string]*RelStats{}}
	for _, name := range db.Names() {
		r := db.Relation(name)
		if r.Len() <= StatsSampleThreshold {
			s.rels[name] = exactRelStats(r)
		} else {
			s.rels[name] = sampledRelStats(name, r)
		}
	}
	return s
}

func exactRelStats(r *relation.Relation) *RelStats {
	rs := &RelStats{Rows: r.Len(), Cols: make([]ColStats, r.Schema.Arity())}
	for c := range rs.Cols {
		seen := make(map[relation.Value]struct{})
		nulls := 0
		for _, t := range r.Tuples {
			if t[c].IsNull() {
				nulls++
				continue
			}
			seen[t[c]] = struct{}{}
		}
		rs.Cols[c] = ColStats{Distinct: float64(len(seen)), NullFrac: frac(nulls, r.Len())}
	}
	return rs
}

// sampledRelStats estimates column statistics from a uniform sample of
// StatsSampleSize rows (Floyd's algorithm: a without-replacement sample in
// O(k), equivalent to a reservoir pass given the known row count). Distinct
// counts scale up with the Chao1 estimator, except that a near-unique
// sample is promoted to "key column" and estimated at the full row count.
// The sample is seeded from the relation name, so plans are deterministic
// per instance.
func sampledRelStats(name string, r *relation.Relation) *RelStats {
	n := r.Len()
	k := StatsSampleSize
	if k > n {
		k = n
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	rng := rand.New(rand.NewSource(int64(h.Sum64()) ^ 0x5eed))
	idx := make(map[int]struct{}, k)
	for j := n - k; j < n; j++ {
		t := rng.Intn(j + 1)
		if _, taken := idx[t]; taken {
			idx[j] = struct{}{}
		} else {
			idx[t] = struct{}{}
		}
	}
	rs := &RelStats{Rows: n, Cols: make([]ColStats, r.Schema.Arity()), Sampled: true}
	for c := range rs.Cols {
		counts := make(map[relation.Value]int)
		nulls := 0
		for i := range idx {
			v := r.Tuples[i][c]
			if v.IsNull() {
				nulls++
				continue
			}
			counts[v]++
		}
		nonNull := k - nulls
		d := len(counts)
		f1, f2 := 0, 0
		for _, cnt := range counts {
			switch cnt {
			case 1:
				f1++
			case 2:
				f2++
			}
		}
		nullFrac := frac(nulls, k)
		est := float64(d) + float64(f1)*float64(f1-1)/(2*float64(f2+1))
		if nonNull > 0 && float64(d) >= 0.95*float64(nonNull) {
			// Nearly every sampled value was distinct: treat as a key.
			est = float64(n) * (1 - nullFrac)
		}
		if max := float64(n) * (1 - nullFrac); est > max {
			est = max
		}
		rs.Cols[c] = ColStats{Distinct: est, NullFrac: nullFrac}
	}
	return rs
}

func frac(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
