package engine

import (
	"errors"
	"fmt"

	"repro/internal/boolexpr"
	"repro/internal/faults"
	"repro/internal/ra"
	"repro/internal/relation"
)

// MaxIntermediateRows bounds the size of any intermediate result. Queries
// exceeding it fail with ErrRowBudget instead of exhausting memory — the
// same pragmatic cut the paper applied ("we had to drop two overly
// complicated student queries that involved massive cross products").
var MaxIntermediateRows = 1_000_000

// ErrRowBudget is returned when a query's intermediate result exceeds the
// row budget in effect — the process-wide MaxIntermediateRows, or the
// tighter per-evaluation Options.MaxRows. The message deliberately names
// no number: the effective bound is per-evaluation.
var ErrRowBudget = errors.New("engine: intermediate result exceeds the row budget")

// ErrNoAggregates is wrapped by the error returned when a plan contains
// GroupBy but the semiring does not support aggregation (Aggregates() is
// false). Batch callers detect it with errors.Is and fall back to
// per-candidate evaluation.
var ErrNoAggregates = errors.New("engine: semiring does not support aggregation")

// Catalog adapts a Database to ra.Catalog.
type Catalog struct{ DB *relation.Database }

// RelationSchema implements ra.Catalog.
func (c Catalog) RelationSchema(name string) (relation.Schema, bool) {
	r := c.DB.Relation(name)
	if r == nil {
		return relation.Schema{}, false
	}
	return r.Schema, true
}

// Options tune a single evaluation.
type Options struct {
	// NoOptimize skips the logical rewrite pass (selection pushdown,
	// equi-join extraction). Used by tests that compare plans.
	NoOptimize bool
	// NoPlan skips the cost-based join planner (reordering and semi-join
	// reduction). Used by differential tests and as a benchmark baseline.
	NoPlan bool
	// Stats, when non-nil, overrides the planner's cardinality statistics
	// (normally the instance's cached StatsOf result).
	Stats *Stats
	// Observer, when non-nil, collects the planner's decisions and the
	// actual join cardinalities observed during execution.
	Observer *PlanReport
	// ForceNestedLoop disables the hash physical operators: joins run as
	// nested loops and the difference probes linearly. Only useful as a
	// benchmark baseline.
	ForceNestedLoop bool
	// Parallelism is the number of worker goroutines the physical operators
	// may fan out to (hash-partitioned equi-join, partitioned base-scan and
	// union builds). Values <= 1 keep every operator serial, as do inputs
	// below ParallelRowThreshold; NumWorkers() is the natural setting for
	// CPU-bound plans. Results are identical to serial evaluation up to
	// tuple order, which remains deterministic for a fixed Parallelism.
	Parallelism int
	// MaxRows, when > 0, tightens the intermediate-result row budget for
	// this evaluation below the process-wide MaxIntermediateRows (it can
	// never loosen it). Long-lived callers (the serving layer) use it to
	// bound a single request's memory without touching the global.
	MaxRows int
	// Stop, when non-nil, is polled during evaluation — once per operator
	// and on an output-pair stride inside the join loops — and a non-nil
	// return aborts the evaluation with exactly that error. It is how
	// request-scoped deadlines reach into a single long evaluation (the
	// stride bounds the overshoot after expiry to stopPollStride join
	// pairs).
	Stop func() error
}

// stopPollStride is how many join pairs may be emitted between two Stop
// polls.
const stopPollStride = 8192

// poll invokes the Stop hook, if any.
func (o Options) poll() error {
	if o.Stop == nil {
		return nil
	}
	return o.Stop()
}

// rowBudget is the effective intermediate-row bound for one evaluation:
// the per-evaluation MaxRows when set and tighter, else the global default.
func (o Options) rowBudget() int {
	if o.MaxRows > 0 && o.MaxRows < MaxIntermediateRows {
		return o.MaxRows
	}
	return MaxIntermediateRows
}

// Eval evaluates a query under set semantics. params binds the query's
// @-parameters (may be nil).
func Eval(q ra.Node, db *relation.Database, params map[string]relation.Value) (*relation.Relation, error) {
	return EvalOpts(q, db, params, Options{})
}

// EvalOpts is Eval with explicit evaluation options.
func EvalOpts(q ra.Node, db *relation.Database, params map[string]relation.Value, opts Options) (*relation.Relation, error) {
	r, err := RunOpts(Set, q, db, params, opts)
	if err != nil {
		return nil, err
	}
	return r.Relation(opName(q)), nil
}

// EvalProv evaluates a SPJUD query with how-provenance annotation. GroupBy
// nodes are rejected: aggregate queries go through eval.EvalAggProv
// (Section 5).
func EvalProv(q ra.Node, db *relation.Database, params map[string]relation.Value) (*ProvRel, error) {
	return Run[*boolexpr.Expr](Why, q, db, params)
}

// EvalProvOpts is EvalProv with explicit evaluation options.
func EvalProvOpts(q ra.Node, db *relation.Database, params map[string]relation.Value, opts Options) (*ProvRel, error) {
	return RunOpts[*boolexpr.Expr](Why, q, db, params, opts)
}

// CountDistinct evaluates a query under the counting semiring and returns
// the cardinality of its support — the number of distinct result tuples
// under set semantics — without building provenance or a result relation.
// The witness-search algorithms use it as a cheap membership/emptiness
// pre-check on pushed-down queries.
func CountDistinct(q ra.Node, db *relation.Database, params map[string]relation.Value) (int, error) {
	return CountDistinctOpts(q, db, params, Options{})
}

// CountDistinctOpts is CountDistinct with explicit evaluation options.
func CountDistinctOpts(q ra.Node, db *relation.Database, params map[string]relation.Value, opts Options) (int, error) {
	r, err := RunOpts[Count](Counting, q, db, params, opts)
	if err != nil {
		return 0, err
	}
	return r.Len(), nil
}

// Run evaluates a query under an arbitrary annotation semiring, applying
// the optimizer first.
func Run[T any](s Semiring[T], q ra.Node, db *relation.Database, params map[string]relation.Value) (*Rel[T], error) {
	return RunOpts(s, q, db, params, Options{})
}

// RunOpts is Run with explicit evaluation options.
func RunOpts[T any](s Semiring[T], q ra.Node, db *relation.Database, params map[string]relation.Value, opts Options) (*Rel[T], error) {
	faults.Inject(faults.EngineEval)
	e := newExec(s, db, params, opts)
	if !opts.NoOptimize {
		q = Optimize(q, Catalog{DB: db})
	}
	if !opts.NoPlan {
		var err error
		q, err = planWith(q, db, opts, true)
		if err != nil {
			return nil, err
		}
	}
	e.markShared(q)
	return e.node(q)
}

// exec carries the per-query evaluation state.
type exec[T any] struct {
	s      Semiring[T]
	db     *relation.Database
	params map[string]relation.Value
	opts   Options
	// scans caches base-relation scan results by name: a plan (or a pair of
	// plans sharing one exec, as in the batch layer) referencing the same
	// relation twice — self-joins, Q and its copy inside Q1 − Q2 — pays for
	// the scan, the Leaf annotations and the dedup hashing once. Safe
	// because operators never mutate their inputs.
	scans map[string]*Rel[T]
	// refs counts how many parents reference each node (>1 only in the
	// DAG-shaped plans the Yannakakis reducer emits, where a fully-reduced
	// parent appears in every child's semi-join chain); memo caches results
	// of exactly those shared nodes, so a DAG evaluates each node once
	// without pinning every intermediate of a tree-shaped plan in memory.
	refs map[ra.Node]int
	memo map[ra.Node]*Rel[T]
}

func newExec[T any](s Semiring[T], db *relation.Database, params map[string]relation.Value, opts Options) *exec[T] {
	return &exec[T]{s: s, db: db, params: params, opts: opts, scans: map[string]*Rel[T]{},
		refs: map[ra.Node]int{}, memo: map[ra.Node]*Rel[T]{}}
}

// markShared counts node references without re-descending already-visited
// pointers (a naive walk of a reduction DAG is exponential).
func (e *exec[T]) markShared(q ra.Node) {
	if e.refs[q]++; e.refs[q] > 1 {
		return
	}
	for _, c := range q.Children() {
		e.markShared(c)
	}
}

func (e *exec[T]) node(q ra.Node) (*Rel[T], error) {
	if e.refs[q] > 1 {
		if r, ok := e.memo[q]; ok {
			return r, nil
		}
	}
	r, err := e.eval(q)
	if err != nil {
		return nil, err
	}
	if e.refs[q] > 1 {
		e.memo[q] = r
	}
	return r, nil
}

func (e *exec[T]) eval(q ra.Node) (*Rel[T], error) {
	if err := e.opts.poll(); err != nil {
		return nil, err
	}
	switch x := q.(type) {
	case *ra.Rel:
		return e.base(x)
	case *ra.Select:
		in, err := e.node(x.In)
		if err != nil {
			return nil, err
		}
		return e.selectOp(x, in)
	case *ra.Project:
		in, err := e.node(x.In)
		if err != nil {
			return nil, err
		}
		return e.project(x, in)
	case *ra.Join:
		l, err := e.node(x.L)
		if err != nil {
			return nil, err
		}
		r, err := e.node(x.R)
		if err != nil {
			return nil, err
		}
		return e.join(l, r, x.Cond)
	case *ra.Union:
		l, err := e.node(x.L)
		if err != nil {
			return nil, err
		}
		r, err := e.node(x.R)
		if err != nil {
			return nil, err
		}
		if !l.Schema.UnionCompatible(r.Schema) {
			return nil, fmt.Errorf("engine: union of incompatible schemas %s, %s", l.Schema, r.Schema)
		}
		return e.union(l, r), nil
	case *ra.Diff:
		l, err := e.node(x.L)
		if err != nil {
			return nil, err
		}
		r, err := e.node(x.R)
		if err != nil {
			return nil, err
		}
		if !l.Schema.UnionCompatible(r.Schema) {
			return nil, fmt.Errorf("engine: difference of incompatible schemas %s, %s", l.Schema, r.Schema)
		}
		return e.diff(l, r), nil
	case *ra.Rename:
		in, err := e.node(x.In)
		if err != nil {
			return nil, err
		}
		return renameRel(in, x.As), nil
	case *ra.GroupBy:
		if !e.s.Aggregates() {
			return nil, fmt.Errorf("%w (%s semiring); use eval.EvalAggProv", ErrNoAggregates, e.s.Name())
		}
		in, err := e.node(x.In)
		if err != nil {
			return nil, err
		}
		return e.groupBy(x, in)
	case *ra.EquiJoin:
		l, err := e.node(x.L)
		if err != nil {
			return nil, err
		}
		r, err := e.node(x.R)
		if err != nil {
			return nil, err
		}
		res, err := e.equiJoin(x, l, r)
		if err != nil {
			return nil, err
		}
		e.opts.Observer.observe(x, res.Len())
		return res, nil
	case *ra.Semi:
		l, err := e.node(x.L)
		if err != nil {
			return nil, err
		}
		r, err := e.node(x.R)
		if err != nil {
			return nil, err
		}
		return e.semiJoin(x, l, r)
	case *ra.Permute:
		in, err := e.node(x.In)
		if err != nil {
			return nil, err
		}
		return e.permute(x, in), nil
	}
	return nil, fmt.Errorf("engine: unknown node type %T", q)
}

// renameRel requalifies a relation's schema without copying tuple data:
// the tuple slice is shared but capacity-clipped (tuples are only ever
// appended, never overwritten, so an append on the rename reallocates
// instead of scribbling on the input's backing array). Annotations ARE
// overwritten in place when Add ⊕-merges a duplicate, so the annotation
// slice must be copied; and the hash index is not shared — an Add on the
// renamed relation would otherwise mutate the input's index under a
// different schema.
func renameRel[T any](in *Rel[T], as string) *Rel[T] {
	anns := make([]T, len(in.Anns))
	copy(anns, in.Anns)
	return &Rel[T]{
		Schema: in.Schema.Qualify(as),
		Tuples: in.Tuples[:len(in.Tuples):len(in.Tuples)],
		Anns:   anns,
	}
}

// base scans a stored relation, annotating each tuple with its Leaf
// annotation and ⊕-merging duplicates. Tuples whose leaf annotation is
// definitely zero are pruned at the scan: under the bitvector batch
// semirings that shrinks the scan from the full database to the union of
// the candidate subinstances (set, counting and why leaves are never zero,
// so nothing changes for them). Large scans under a parallel Options fan
// the deduplicating build out across tuple-hash partitions.
func (e *exec[T]) base(x *ra.Rel) (*Rel[T], error) {
	if cached, ok := e.scans[x.Name]; ok {
		return cached, nil
	}
	r := e.db.Relation(x.Name)
	if r == nil {
		return nil, fmt.Errorf("engine: unknown relation %q", x.Name)
	}
	out := NewRel[T](r.Schema)
	if w := e.opts.workerCount(r.Len()); w > 1 {
		err := parallelBuild(e.s, w, r.Len(),
			func(i int) relation.Tuple { return r.Tuples[i] },
			func(i int) (T, error) {
				ann, err := e.s.Leaf(r.ID(i))
				if err != nil {
					return ann, fmt.Errorf("%w (relation %q)", err, x.Name)
				}
				return ann, nil
			}, out)
		if err != nil {
			return nil, err
		}
		e.scans[x.Name] = out
		return out, nil
	}
	for i, t := range r.Tuples {
		ann, err := e.s.Leaf(r.ID(i))
		if err != nil {
			return nil, fmt.Errorf("%w (relation %q)", err, x.Name)
		}
		if e.s.IsZero(ann) {
			continue
		}
		out.Add(e.s, t, ann)
	}
	e.scans[x.Name] = out
	return out, nil
}

func (e *exec[T]) selectOp(x *ra.Select, in *Rel[T]) (*Rel[T], error) {
	pred, err := ra.CompileExpr(x.Pred, in.Schema, e.params)
	if err != nil {
		return nil, err
	}
	out := NewRelCap[T](in.Schema, in.Len())
	for i, t := range in.Tuples {
		v, err := pred(t)
		if err != nil {
			return nil, err
		}
		if ra.Truthy(v) {
			// Input tuples are distinct, so filtered output stays distinct.
			out.appendDistinct(t, in.Anns[i])
		}
	}
	return out, nil
}

func (e *exec[T]) project(x *ra.Project, in *Rel[T]) (*Rel[T], error) {
	idxs, outSchema, err := projectPlan(x, in.Schema)
	if err != nil {
		return nil, err
	}
	out := NewRel[T](outSchema)
	for i, t := range in.Tuples {
		out.Add(e.s, t.Project(idxs), in.Anns[i])
	}
	return out, nil
}

func projectPlan(p *ra.Project, in relation.Schema) ([]int, relation.Schema, error) {
	idxs := make([]int, len(p.Cols))
	attrs := make([]relation.Attribute, len(p.Cols))
	for i, c := range p.Cols {
		j, err := in.Resolve(c)
		if err != nil {
			return nil, relation.Schema{}, err
		}
		idxs[i] = j
		attrs[i] = relation.Attribute{Name: c, Type: in.Attrs[j].Type}
	}
	return idxs, relation.Schema{Attrs: attrs}, nil
}

// opName mirrors the display names the legacy evaluator gave its results.
func opName(q ra.Node) string {
	switch x := q.(type) {
	case *ra.Rel:
		return x.Name
	case *ra.Select:
		return "σ"
	case *ra.Project:
		return "π"
	case *ra.Join:
		return "⋈"
	case *ra.Union:
		return "∪"
	case *ra.Diff:
		return "−"
	case *ra.Rename:
		return x.As
	case *ra.GroupBy:
		return "γ"
	}
	return "result"
}
