package engine

import (
	"errors"
	"fmt"
	"maps"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ra"
	"repro/internal/relation"
)

// This file differentially tests the cost-based join planner: for every
// semiring, evaluation with the planner enabled (join reordering, transitive
// key propagation, Yannakakis semi-join reduction) must agree — tuples and
// annotations — with evaluation under Options{NoPlan: true}, over random
// plans biased toward multi-way join regions: natural join chains, θ-chains
// and stars with renamed self-joins, NULL join keys, Diff towers over and
// under regions, and γ barriers. It also covers the planner's interaction
// with EvalBatchDiffs, PrepareDiff/EvalDelta and the parallel operators, and
// unit-tests the GYO reduction, the statistics provider, the join-graph
// extraction, and the pre-execution row-budget refusal.

// naturalChainPlan builds a k-way natural join chain of union-compatible
// subplans. Every input shares the (a, b, c) schema, so each join matches on
// all three columns (NULLs never join) and leaves may themselves contain
// unions, differences and selections — barrier leaves inside the region.
func naturalChainPlan(rng *rand.Rand, k int) ra.Node {
	q := randomCompat(rng, 1)
	for i := 1; i < k; i++ {
		q = &ra.Join{L: q, R: randomCompat(rng, 1)}
	}
	return q
}

// thetaChainPlan builds a k-way θ-equi-join over renamed (often self-joined)
// base relations. Each new leaf joins a random earlier leaf — producing
// chains and stars — on a or on the NULLable b; the final join sometimes
// closes a cycle back to u0, exercising the cyclic (non-Yannakakis) path.
func thetaChainPlan(rng *rand.Rand, k int) ra.Node {
	names := []string{"R", "S", "T"}
	leaf := func(i int) ra.Node {
		return &ra.Rename{As: fmt.Sprintf("u%d", i), In: &ra.Rel{Name: names[rng.Intn(3)]}}
	}
	q := leaf(0)
	for i := 1; i < k; i++ {
		prev := fmt.Sprintf("u%d", rng.Intn(i))
		col := []string{"a", "b"}[rng.Intn(2)]
		cond := ra.Expr(&ra.Cmp{Op: ra.EQ,
			L: &ra.AttrRef{Name: prev + "." + col},
			R: &ra.AttrRef{Name: fmt.Sprintf("u%d.%s", i, col)}})
		if i == k-1 && i >= 2 && rng.Intn(2) == 0 {
			cond = &ra.And{Kids: []ra.Expr{cond, &ra.Cmp{Op: ra.EQ,
				L: &ra.AttrRef{Name: "u0.b"},
				R: &ra.AttrRef{Name: fmt.Sprintf("u%d.b", i)}}}}
		}
		q = &ra.Join{L: q, R: leaf(i), Cond: cond}
	}
	if rng.Intn(2) == 0 {
		q = &ra.Project{Cols: []string{"u0.a", fmt.Sprintf("u%d.c", k-1)}, In: q}
	}
	return q
}

func plannerGroupBy(q ra.Node) ra.Node {
	return &ra.GroupBy{
		GroupCols: []string{"a"},
		Aggs: []ra.AggSpec{
			{Func: ra.Count, As: "n"},
			{Func: ra.Sum, Attr: "b", As: "s"},
			{Func: ra.Min, Attr: "c", As: "m"},
		},
		In: q,
	}
}

// randomPlannerPlan generates a plan containing at least one multi-way join
// region. gamma permits a γ cap (only sound for aggregating semirings).
func randomPlannerPlan(rng *rand.Rand, gamma bool) ra.Node {
	k := 3 + rng.Intn(3)
	switch rng.Intn(4) {
	case 0:
		return thetaChainPlan(rng, k)
	case 1: // region with an optional Diff tower and γ on top
		q := naturalChainPlan(rng, k)
		if rng.Intn(2) == 0 {
			q = &ra.Diff{L: q, R: randomCompat(rng, 2)}
		}
		if gamma && rng.Intn(3) == 0 {
			q = plannerGroupBy(q)
		}
		return q
	case 2: // region under selection/projection
		q := &ra.Select{Pred: randomPred(rng, ""), In: naturalChainPlan(rng, k)}
		if rng.Intn(2) == 0 {
			return &ra.Project{Cols: []string{"a", "c"}, In: q}
		}
		return q
	default: // Diff/Union tower over two regions
		return &ra.Diff{
			L: naturalChainPlan(rng, k),
			R: &ra.Union{L: naturalChainPlan(rng, 2), R: randomCompat(rng, 1)},
		}
	}
}

// planOnOff evaluates q with and without the planner and fails the test
// unless the two runs agree on outcome and support; annotation comparison is
// the caller's.
func planOnOff[T any](t *testing.T, trial int, s Semiring[T], q ra.Node, db *relation.Database) (on, off *Rel[T]) {
	t.Helper()
	on, errOn := RunOpts(s, q, db, nil, Options{})
	off, errOff := RunOpts(s, q, db, nil, Options{NoPlan: true})
	if (errOn == nil) != (errOff == nil) {
		t.Fatalf("trial %d: planner changed the outcome: on=%v off=%v\nquery: %s", trial, errOn, errOff, q)
	}
	if errOn != nil {
		return nil, nil
	}
	if !sameKeySets(keySet(on.Tuples), keySet(off.Tuples)) {
		t.Fatalf("trial %d: planned support differs\nquery: %s\non:  %v\noff: %v\n%s",
			trial, q, on.Tuples, off.Tuples, db)
	}
	return on, off
}

// TestPlannerDifferentialSet: planner-on ≡ planner-off under set semantics.
func TestPlannerDifferentialSet(t *testing.T) {
	rng := rand.New(rand.NewSource(4201))
	for trial := 0; trial < 250; trial++ {
		db := randomDB(rng)
		q := randomPlannerPlan(rng, true)
		planOnOff(t, trial, Set, q, db)
	}
}

// TestPlannerDifferentialCount: derivation counts survive reordering — the
// planner may only rebracket ⊗, never duplicate or drop a derivation.
func TestPlannerDifferentialCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4202))
	for trial := 0; trial < 250; trial++ {
		db := randomDB(rng)
		q := randomPlannerPlan(rng, true)
		on, off := planOnOff(t, trial, Counting, q, db)
		if on == nil {
			continue
		}
		for i, tup := range off.Tuples {
			j := on.Lookup(tup)
			if j < 0 || on.Anns[j] != off.Anns[i] {
				t.Fatalf("trial %d: count of %v: want %d\nquery: %s", trial, tup, off.Anns[i], q)
			}
		}
	}
}

// TestPlannerDifferentialBit: per-candidate bitmasks survive planning (the
// semi-join reduction must behave as a filter — pure ⊕-preserving — for
// non-aggregating semirings too).
func TestPlannerDifferentialBit(t *testing.T) {
	rng := rand.New(rand.NewSource(4203))
	for trial := 0; trial < 200; trial++ {
		db := randomDB(rng)
		q := randomPlannerPlan(rng, false)
		allIDs := db.AllIDs()
		cands := make([][]relation.TupleID, 6)
		for k := range cands {
			for _, id := range allIDs {
				if rng.Intn(2) == 0 {
					cands[k] = append(cands[k], id)
				}
			}
		}
		s, err := NewBitSemiring(cands)
		if err != nil {
			t.Fatal(err)
		}
		on, off := planOnOff[uint64](t, trial, s, q, db)
		if on == nil {
			continue
		}
		for i, tup := range off.Tuples {
			j := on.Lookup(tup)
			if j < 0 || on.Anns[j] != off.Anns[i] {
				t.Fatalf("trial %d: mask of %v: want %b got %b\nquery: %s",
					trial, tup, off.Anns[i], on.Anns[j], q)
			}
		}
	}
}

// TestPlannerDifferentialWhy: provenance expressions stay logically
// equivalent under planning, checked on random assignments.
func TestPlannerDifferentialWhy(t *testing.T) {
	rng := rand.New(rand.NewSource(4204))
	for trial := 0; trial < 200; trial++ {
		db := randomDB(rng)
		q := randomPlannerPlan(rng, false)
		on, off := planOnOff(t, trial, Why, q, db)
		if on == nil {
			continue
		}
		allIDs := db.AllIDs()
		for k := 0; k < 12; k++ {
			assign := map[int]bool{}
			for _, id := range allIDs {
				assign[int(id)] = rng.Intn(2) == 0
			}
			fn := func(id int) bool { return assign[id] }
			for i, tup := range off.Tuples {
				j := on.Lookup(tup)
				if j < 0 {
					t.Fatalf("trial %d: planned run missing %v\nquery: %s", trial, tup, q)
				}
				if on.Anns[j].Eval(fn) != off.Anns[i].Eval(fn) {
					t.Fatalf("trial %d: provenance of %v inequivalent\non:  %s\noff: %s\nquery: %s",
						trial, tup, on.Anns[j], off.Anns[i], q)
				}
			}
		}
	}
}

func batchMasks(b *BatchResult) map[string]string {
	m := make(map[string]string, len(b.Tuples))
	for i, t := range b.Tuples {
		mask := make([]byte, b.K)
		for k := 0; k < b.K; k++ {
			mask[k] = '0'
			if b.Has(i, k) {
				mask[k] = '1'
			}
		}
		m[t.Key()] = string(mask)
	}
	return m
}

// TestPlannerBatchDiffs: EvalBatchDiffs with the planner ≡ without, for both
// difference directions, including wide (>64 candidate) masks.
func TestPlannerBatchDiffs(t *testing.T) {
	rng := rand.New(rand.NewSource(4205))
	for trial := 0; trial < 100; trial++ {
		db := randomDB(rng)
		q1, q2 := randomDiffPair(rng)
		allIDs := db.AllIDs()
		k := 5
		if trial%10 == 9 {
			k = 70 // wide-mask path
		}
		cands := make([][]relation.TupleID, k)
		for c := range cands {
			for _, id := range allIDs {
				if rng.Intn(2) == 0 {
					cands[c] = append(cands[c], id)
				}
			}
		}
		on12, on21, errOn := EvalBatchDiffs(q1, q2, db, nil, cands, Options{})
		off12, off21, errOff := EvalBatchDiffs(q1, q2, db, nil, cands, Options{NoPlan: true})
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("trial %d: planner changed the outcome: on=%v off=%v", trial, errOn, errOff)
		}
		if errOn != nil {
			continue // γ pairs reject batching identically on both sides
		}
		if !maps.Equal(batchMasks(on12), batchMasks(off12)) ||
			!maps.Equal(batchMasks(on21), batchMasks(off21)) {
			t.Fatalf("trial %d: batched diffs differ with planner\nq1: %s\nq2: %s", trial, q1, q2)
		}
	}
}

// TestPlannerPreparedDiff: the delta-incremental path plans (join order
// only; semi-joins are disabled there) and must agree with the unplanned
// prepared state on every delta.
func TestPlannerPreparedDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(4206))
	for trial := 0; trial < 80; trial++ {
		db := randomDB(rng)
		q1, q2 := randomDiffPair(rng)
		pOn, errOn := PrepareDiff(q1, q2, db, nil, Options{})
		pOff, errOff := PrepareDiff(q1, q2, db, nil, Options{NoPlan: true})
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("trial %d: planner changed preparability: on=%v off=%v\nq1: %s\nq2: %s",
				trial, errOn, errOff, q1, q2)
		}
		if errOn != nil {
			continue
		}
		allIDs := db.AllIDs()
		for d := 0; d < 3; d++ {
			var removed []relation.TupleID
			for _, id := range allIDs {
				if rng.Intn(3) == 0 {
					removed = append(removed, id)
				}
			}
			rOn, err := pOn.EvalDelta(removed)
			if err != nil {
				t.Fatalf("trial %d: planned EvalDelta: %v", trial, err)
			}
			rOff, err := pOff.EvalDelta(removed)
			if err != nil {
				t.Fatalf("trial %d: unplanned EvalDelta: %v", trial, err)
			}
			on12, err1 := rOn.Diff12()
			on21, err2 := rOn.Diff21()
			off12, err3 := rOff.Diff12()
			off21, err4 := rOff.Diff21()
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				t.Fatalf("trial %d: diff materialization: %v %v %v %v", trial, err1, err2, err3, err4)
			}
			if !sameKeySets(keySet(on12.Tuples), keySet(off12.Tuples)) ||
				!sameKeySets(keySet(on21.Tuples), keySet(off21.Tuples)) {
				t.Fatalf("trial %d: delta diffs differ with planner\nq1: %s\nq2: %s", trial, q1, q2)
			}
		}
	}
}

// TestPlannerParallelAgrees: planned parallel evaluation ≡ unplanned serial
// evaluation (threshold forced to 0 so the partitioned operators engage on
// the small random instances).
func TestPlannerParallelAgrees(t *testing.T) {
	saved := ParallelRowThreshold
	ParallelRowThreshold = 0
	t.Cleanup(func() { ParallelRowThreshold = saved })
	rng := rand.New(rand.NewSource(4207))
	for trial := 0; trial < 100; trial++ {
		db := randomDB(rng)
		q := randomPlannerPlan(rng, true)
		par, errOn := RunOpts(Set, q, db, nil, Options{Parallelism: 4})
		ser, errOff := RunOpts(Set, q, db, nil, Options{NoPlan: true})
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("trial %d: outcome differs: parallel=%v serial=%v\nquery: %s", trial, errOn, errOff, q)
		}
		if errOn != nil {
			continue
		}
		if !sameKeySets(keySet(par.Tuples), keySet(ser.Tuples)) {
			t.Fatalf("trial %d: planned parallel differs from unplanned serial\nquery: %s", trial, q)
		}
	}
}

// gyoClasses builds synthetic join classes from leaf spans.
func gyoClasses(spans ...[]int) []jclass {
	cs := make([]jclass, len(spans))
	for i, span := range spans {
		for _, l := range span {
			cs[i].leafMask |= 1 << l
		}
	}
	return cs
}

func TestGYOJoinTree(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		classes []jclass
		acyclic bool
	}{
		{"chain", 3, gyoClasses([]int{0, 1}, []int{1, 2}), true},
		{"star", 4, gyoClasses([]int{0, 1}, []int{0, 2}, []int{0, 3}), true},
		{"triangle", 3, gyoClasses([]int{0, 1}, []int{1, 2}, []int{0, 2}), false},
		{"cycle4", 4, gyoClasses([]int{0, 1}, []int{1, 2}, []int{2, 3}, []int{3, 0}), false},
		{"shared-class", 3, gyoClasses([]int{0, 1, 2}), true},
		{"cycle-with-tail", 4, gyoClasses([]int{0, 1}, []int{1, 2}, []int{0, 2}, []int{2, 3}), false},
	}
	for _, tc := range cases {
		order, ok := gyoJoinTree(tc.n, tc.classes)
		if ok != tc.acyclic {
			t.Errorf("%s: acyclic = %v, want %v", tc.name, ok, tc.acyclic)
		}
		if ok && len(order) != tc.n-1 {
			t.Errorf("%s: join tree has %d edges, want %d", tc.name, len(order), tc.n-1)
		}
	}
}

func TestFlattenJoinShapes(t *testing.T) {
	db := randomDB(rand.New(rand.NewSource(1)))
	cat := Catalog{DB: db}
	rel := func(n string) ra.Node { return &ra.Rel{Name: n} }

	// Natural 3-chain: 3 leaves, every original column in the global space,
	// each of the two joins contributing one equality per shared column.
	j := &ra.Join{L: &ra.Join{L: rel("R"), R: rel("S")}, R: rel("T")}
	g, ok := ra.FlattenJoin(j, cat)
	if !ok {
		t.Fatal("natural chain did not flatten")
	}
	if len(g.Leaves) != 3 || len(g.Cols) != 9 || len(g.Eqs) != 6 || len(g.Out) != 3 {
		t.Fatalf("natural chain: leaves=%d cols=%d eqs=%d out=%d",
			len(g.Leaves), len(g.Cols), len(g.Eqs), len(g.Out))
	}

	// θ-join with a residual inequality is not a pure equi-join region.
	resid := &ra.Join{
		L: &ra.Rename{As: "u", In: rel("R")},
		R: &ra.Rename{As: "v", In: rel("S")},
		Cond: &ra.And{Kids: []ra.Expr{
			&ra.Cmp{Op: ra.EQ, L: &ra.AttrRef{Name: "u.a"}, R: &ra.AttrRef{Name: "v.a"}},
			&ra.Cmp{Op: ra.LE, L: &ra.AttrRef{Name: "u.b"}, R: &ra.AttrRef{Name: "v.a"}},
		}},
	}
	if _, ok := ra.FlattenJoin(resid, cat); ok {
		t.Fatal("residual θ-join flattened as a pure equi-join region")
	}

	// Disjoint renamed schemas with no condition: a cross product, also not
	// a reorderable region.
	cross := &ra.Join{
		L: &ra.Rename{As: "u", In: rel("R")},
		R: &ra.Rename{As: "v", In: rel("S")},
	}
	if _, ok := ra.FlattenJoin(cross, cat); ok {
		t.Fatal("cross product flattened as an equi-join region")
	}

	// A union is a barrier: it becomes a single leaf, not a flattened input.
	barrier := &ra.Join{L: &ra.Union{L: rel("R"), R: rel("S")}, R: &ra.Join{L: rel("S"), R: rel("T")}}
	g, ok = ra.FlattenJoin(barrier, cat)
	if !ok || len(g.Leaves) != 3 {
		t.Fatalf("barrier region: ok=%v leaves=%d, want 3 (∪ as one leaf)", ok, len(g.Leaves))
	}
}

func TestStatsExactAndCached(t *testing.T) {
	db := relation.NewDatabase()
	schema := relation.NewSchema(relation.Attr("a", relation.KindInt), relation.Attr("b", relation.KindInt))
	db.CreateRelation("X", schema)
	for _, v := range []int64{1, 1, 2, 3, 3} {
		db.Insert("X", relation.NewTuple(relation.Int(v), relation.Null()))
	}
	db.Insert("X", relation.NewTuple(relation.Int(4), relation.Int(7)))

	st := StatsOf(db)
	xs := st.Rel("X")
	if xs == nil || xs.Sampled {
		t.Fatalf("expected exact stats, got %+v", xs)
	}
	if xs.Rows != 6 || xs.Cols[0].Distinct != 4 || xs.Cols[0].NullFrac != 0 {
		t.Fatalf("column a stats wrong: %+v", xs.Cols[0])
	}
	if xs.Cols[1].Distinct != 1 || xs.Cols[1].NullFrac != 5.0/6 {
		t.Fatalf("column b stats wrong: %+v", xs.Cols[1])
	}
	if st.Rel("missing") != nil {
		t.Fatal("unknown relation should have nil stats")
	}

	// Cached until the instance version changes.
	if StatsOf(db) != st {
		t.Fatal("second StatsOf did not hit the instance cache")
	}
	db.Insert("X", relation.NewTuple(relation.Int(9), relation.Int(9)))
	st2 := StatsOf(db)
	if st2 == st {
		t.Fatal("mutation did not invalidate cached stats")
	}
	if st2.Rel("X").Rows != 7 {
		t.Fatalf("stale row count after invalidation: %d", st2.Rel("X").Rows)
	}
}

func TestStatsSampled(t *testing.T) {
	savedThresh, savedSize := StatsSampleThreshold, StatsSampleSize
	StatsSampleThreshold, StatsSampleSize = 64, 48
	t.Cleanup(func() { StatsSampleThreshold, StatsSampleSize = savedThresh, savedSize })

	db := relation.NewDatabase()
	schema := relation.NewSchema(relation.Attr("a", relation.KindInt), relation.Attr("b", relation.KindInt))
	db.CreateRelation("Z", schema)
	const n = 1000
	for i := 0; i < n; i++ {
		db.Insert("Z", relation.NewTuple(relation.Int(int64(i%10)), relation.Int(int64(i))))
	}
	zs := StatsOf(db).Rel("Z")
	if zs == nil || !zs.Sampled || zs.Rows != n {
		t.Fatalf("expected sampled stats over %d rows, got %+v", n, zs)
	}
	// Low-cardinality column: Chao1 stays near the true 10.
	if d := zs.Cols[0].Distinct; d < 5 || d > 40 {
		t.Fatalf("distinct(a) = %v, want near 10", d)
	}
	// Unique column: the all-distinct sample promotes to a key estimate.
	if d := zs.Cols[1].Distinct; d < n/2 {
		t.Fatalf("distinct(b) = %v, want key-promoted toward %d", d, n)
	}
}

// TestPlannerRefusesBudget: when every join order over a cyclic region is
// estimated to blow the row budget, evaluation fails with the structured
// ErrRowBudget from the planner's preflight check, before any join runs.
func TestPlannerRefusesBudget(t *testing.T) {
	db := relation.NewDatabase()
	schema := relation.NewSchema(
		relation.Attr("a", relation.KindInt),
		relation.Attr("b", relation.KindInt),
		relation.Attr("c", relation.KindString))
	for _, name := range []string{"R", "S", "T"} {
		db.CreateRelation(name, schema)
		for i := 0; i < 30; i++ {
			db.Insert(name, relation.NewTuple(
				relation.Int(int64(i%3)), relation.Int(int64(i%2)), relation.String("x")))
		}
	}
	// Cyclic triangle u0 —a— u1 —b— u2 —c— u0: no Yannakakis fast path, so
	// the preflight estimate applies.
	q := &ra.Join{
		L: &ra.Join{
			L:    &ra.Rename{As: "u0", In: &ra.Rel{Name: "R"}},
			R:    &ra.Rename{As: "u1", In: &ra.Rel{Name: "S"}},
			Cond: &ra.Cmp{Op: ra.EQ, L: &ra.AttrRef{Name: "u0.a"}, R: &ra.AttrRef{Name: "u1.a"}},
		},
		R: &ra.Rename{As: "u2", In: &ra.Rel{Name: "T"}},
		Cond: &ra.And{Kids: []ra.Expr{
			&ra.Cmp{Op: ra.EQ, L: &ra.AttrRef{Name: "u1.b"}, R: &ra.AttrRef{Name: "u2.b"}},
			&ra.Cmp{Op: ra.EQ, L: &ra.AttrRef{Name: "u0.c"}, R: &ra.AttrRef{Name: "u2.c"}},
		}},
	}
	_, err := RunOpts(Set, q, db, nil, Options{MaxRows: 4})
	if !errors.Is(err, ErrRowBudget) {
		t.Fatalf("want ErrRowBudget, got %v", err)
	}
	if !strings.Contains(err.Error(), "planner estimates") {
		t.Fatalf("budget error did not come from the planner preflight: %v", err)
	}
	// A workable budget evaluates fine, and planned ≡ unplanned on it.
	on, err := RunOpts(Set, q, db, nil, Options{})
	if err != nil {
		t.Fatalf("unbudgeted planned run: %v", err)
	}
	off, err := RunOpts(Set, q, db, nil, Options{NoPlan: true})
	if err != nil {
		t.Fatalf("unbudgeted unplanned run: %v", err)
	}
	if !sameKeySets(keySet(on.Tuples), keySet(off.Tuples)) {
		t.Fatal("triangle query: planned and unplanned results differ")
	}
}
