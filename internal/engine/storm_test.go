package engine

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/ra"
	"repro/internal/relation"
)

// This file is the update-storm differential suite for full IVM: random plan
// pairs (θ-joins with NULL-able keys, Diff towers, γ plans with group
// birth/death, planner on and off) are driven through random interleaved
// insert/delete/update sequences, and after every ApplyDelta the uncommitted
// result — and after every Commit the retained state — must agree with a
// from-scratch evaluation of the materialized instance, including the batch
// layer (EvalBatchDiffs) over narrow and wide (K > 64) candidate sets.

// stormRels matches randomDB's schema: three relations over (a int, b int
// NULL-able, c string NULL-able).
var stormRels = []string{"R", "S", "T"}

// randomStormTuple draws a tuple for randomDB's schema. The value ranges
// deliberately overlap randomDB's (so inserts merge with existing tuples,
// exercising count increments on live and zombie entries) and occasionally
// exceed them (a ∈ {5, 6} births γ groups that never existed; NULLs
// exercise null join keys on the insert path).
func randomStormTuple(rng *rand.Rand) relation.Tuple {
	a := int64(rng.Intn(5))
	if rng.Intn(8) == 0 {
		a = 5 + int64(rng.Intn(2))
	}
	b := relation.Null()
	if rng.Intn(5) != 0 {
		b = relation.Int(int64(rng.Intn(3)))
	}
	c := relation.Null()
	if rng.Intn(7) != 0 {
		c = relation.String([]string{"x", "y", "z", "w"}[rng.Intn(4)])
	}
	return relation.NewTuple(relation.Int(a), b, c)
}

// stormOp is one step of an update storm: deletions, insertions, and
// updates already lowered to delete+insert.
type stormOp struct {
	removed  []relation.TupleID
	inserted []Insert
}

// randomStormOp draws one interleaved update against the current live set:
// 0–2 deletions, 0–2 insertions, and 0–1 single-tuple updates (delete a
// live tuple, insert a mutated copy into the same relation).
func randomStormOp(rng *rand.Rand, db *relation.Database, live []relation.TupleID) stormOp {
	var op stormOp
	for i := rng.Intn(3); i > 0 && len(live) > 0; i-- {
		op.removed = append(op.removed, live[rng.Intn(len(live))])
	}
	for i := rng.Intn(3); i > 0; i-- {
		op.inserted = append(op.inserted, Insert{
			Rel:   stormRels[rng.Intn(len(stormRels))],
			Tuple: randomStormTuple(rng),
		})
	}
	if rng.Intn(2) == 0 && len(live) > 0 {
		id := live[rng.Intn(len(live))]
		if rel, t, ok := db.Lookup(id); ok {
			mut := t.Clone()
			mut[0] = relation.Int(int64(rng.Intn(6)))
			op.removed = append(op.removed, id)
			op.inserted = append(op.inserted, Insert{Rel: rel, Tuple: mut})
		}
	}
	return op
}

// stormGroundTruth materializes the instance the op would produce (current
// live tuples minus op.removed, plus op.inserted) and evaluates both
// difference directions from scratch.
func stormGroundTruth(t *testing.T, q1, q2 ra.Node, db *relation.Database, live []relation.TupleID, op stormOp) (map[string]bool, map[string]bool) {
	t.Helper()
	gone := map[relation.TupleID]bool{}
	for _, id := range op.removed {
		gone[id] = true
	}
	keep := map[relation.TupleID]bool{}
	for _, id := range live {
		if !gone[id] {
			keep[id] = true
		}
	}
	sub := db.Subinstance(keep)
	for _, ins := range op.inserted {
		sub.Insert(ins.Rel, ins.Tuple)
	}
	return subDiffs(t, q1, q2, sub)
}

// checkStormResult compares an uncommitted DeltaResult against ground truth.
func checkStormResult(t *testing.T, trial, step int, q1, q2 ra.Node, res *DeltaResult, want12, want21 map[string]bool) {
	t.Helper()
	d12, err := res.Diff12()
	if err != nil {
		t.Fatalf("trial %d step %d: Diff12: %v", trial, step, err)
	}
	d21, err := res.Diff21()
	if err != nil {
		t.Fatalf("trial %d step %d: Diff21: %v", trial, step, err)
	}
	if !sameKeySets(want12, keySet(d12.Tuples)) || res.Size12() != len(want12) {
		t.Fatalf("trial %d step %d: Q1−Q2 mismatch: want %d, got %d (Size12=%d)\nq1: %s\nq2: %s",
			trial, step, len(want12), d12.Len(), res.Size12(), q1, q2)
	}
	if !sameKeySets(want21, keySet(d21.Tuples)) || res.Size21() != len(want21) {
		t.Fatalf("trial %d step %d: Q2−Q1 mismatch: want %d, got %d (Size21=%d)\nq1: %s\nq2: %s",
			trial, step, len(want21), d21.Len(), res.Size21(), q1, q2)
	}
	if res.Disagrees() != (len(want12) > 0 || len(want21) > 0) {
		t.Fatalf("trial %d step %d: Disagrees mismatch", trial, step)
	}
}

// checkBatchAgrees cross-checks the committed prepared state against the
// from-scratch batch layer on the same live set — the "ApplyDelta+Commit
// chain ≡ EvalBatchDiffs" half of the storm invariant. With wideK > 0 the
// candidate list is padded past 64 entries so the multi-word Bits semiring
// runs instead of the uint64 fast path.
func checkBatchAgrees(t *testing.T, trial, step int, q1, q2 ra.Node, db *relation.Database, live []relation.TupleID, want12, want21 map[string]bool, opts Options, wideK int) {
	t.Helper()
	candidates := [][]relation.TupleID{live}
	for k := 0; k < wideK; k++ {
		candidates = append(candidates, randomIDSubset(rand.New(rand.NewSource(int64(trial*1000+k))), live, len(live)/2))
	}
	b12, b21, err := EvalBatchDiffs(q1, q2, db, nil, candidates, opts)
	if errors.Is(err, ErrNoAggregates) {
		return // γ plans are delta-maintainable but not batchable
	}
	if err != nil {
		t.Fatalf("trial %d step %d: EvalBatchDiffs: %v", trial, step, err)
	}
	if !sameKeySets(want12, keySet(b12.ResultFor(0))) {
		t.Fatalf("trial %d step %d: batch Q1−Q2 disagrees with delta chain (K=%d)\nq1: %s\nq2: %s",
			trial, step, len(candidates), q1, q2)
	}
	if !sameKeySets(want21, keySet(b21.ResultFor(0))) {
		t.Fatalf("trial %d step %d: batch Q2−Q1 disagrees with delta chain (K=%d)\nq1: %s\nq2: %s",
			trial, step, len(candidates), q1, q2)
	}
}

// TestUpdateStormDifferential is the main storm suite: ≥250 prepared random
// plan pairs, each driven through a random interleaved insert/delete/update
// sequence with the full uncommitted-vs-scratch and committed-vs-scratch
// checks at every step.
func TestUpdateStormDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	prepared := 0
	for trial := 0; trial < 300; trial++ {
		db := randomDB(rng)
		q1, q2 := randomDiffPair(rng)
		opts := Options{}
		if trial%2 == 1 {
			opts.NoPlan = true // planner off: exercise the unplanned operator shapes
		}
		p, err := PrepareDiff(q1, q2, db, nil, opts)
		if err != nil {
			continue // row-budget / oversized-count plans legitimately fall back
		}
		prepared++
		steps := 3 + rng.Intn(4)
		for step := 0; step < steps; step++ {
			live := p.LiveIDs()
			op := randomStormOp(rng, db, live)
			want12, want21 := stormGroundTruth(t, q1, q2, db, live, op)

			res, err := p.ApplyDelta(op.removed, op.inserted)
			if err != nil {
				t.Fatalf("trial %d step %d: ApplyDelta: %v\nq1: %s\nq2: %s", trial, step, err, q1, q2)
			}
			checkStormResult(t, trial, step, q1, q2, res, want12, want21)

			// Occasionally race an independent same-epoch candidate: it must
			// see its own state, and committing it after res must fail stale.
			var rival *DeltaResult
			if rng.Intn(4) == 0 && len(live) > 0 {
				rOp := stormOp{removed: live[:1]}
				r12, r21 := stormGroundTruth(t, q1, q2, db, live, rOp)
				rival, err = p.EvalDelta(rOp.removed)
				if err != nil {
					t.Fatalf("trial %d step %d: rival EvalDelta: %v", trial, step, err)
				}
				checkStormResult(t, trial, step, q1, q2, rival, r12, r21)
			}

			if err := res.Commit(); err != nil {
				t.Fatalf("trial %d step %d: Commit: %v", trial, step, err)
			}
			if rival != nil {
				if err := rival.Commit(); !errors.Is(err, ErrStaleDelta) {
					t.Fatalf("trial %d step %d: stale rival Commit: got %v, want ErrStaleDelta", trial, step, err)
				}
			}
			if got := res.InsertedIDs(); len(got) != len(op.inserted) {
				t.Fatalf("trial %d step %d: InsertedIDs: got %d ids for %d inserts", trial, step, len(got), len(op.inserted))
			}
			for i, id := range res.InsertedIDs() {
				rel, tup, ok := db.Lookup(id)
				if !ok || rel != op.inserted[i].Rel || !tup.Identical(op.inserted[i].Tuple) {
					t.Fatalf("trial %d step %d: InsertedIDs[%d] does not resolve to the inserted tuple", trial, step, i)
				}
			}

			// Committed state ≡ from-scratch on the new live set.
			liveNow := p.LiveIDs()
			if p.BaseSize() != len(liveNow) {
				t.Fatalf("trial %d step %d: BaseSize %d != |LiveIDs| %d", trial, step, p.BaseSize(), len(liveNow))
			}
			keep := map[relation.TupleID]bool{}
			for _, id := range liveNow {
				keep[id] = true
			}
			cw12, cw21 := subDiffs(t, q1, q2, db.Subinstance(keep))
			g12, g21 := p.Diffs()
			if !sameKeySets(cw12, keySet(g12.Tuples)) || !sameKeySets(cw21, keySet(g21.Tuples)) {
				t.Fatalf("trial %d step %d: committed state mismatch\nq1: %s\nq2: %s", trial, step, q1, q2)
			}
			if p.Disagrees() != (len(cw12) > 0 || len(cw21) > 0) {
				t.Fatalf("trial %d step %d: committed Disagrees mismatch", trial, step)
			}

			// From-scratch batch layer on the same instance; final step of
			// every 7th trial pads to K > 64 for the wide-bit semiring.
			wideK := 0
			if trial%7 == 0 && step == steps-1 {
				wideK = 66
			}
			checkBatchAgrees(t, trial, step, q1, q2, db, liveNow, cw12, cw21, opts, wideK)
		}
	}
	if prepared < 250 {
		t.Fatalf("storm coverage collapsed: only %d plan pairs prepared (want ≥ 250)", prepared)
	}
}

// selfJoinTower builds n nested natural self-joins of R — every level
// squares the derivation count of R's (single) distinct tuple, so counts
// reach dupes^(2^n).
func selfJoinTower(n int) ra.Node {
	var q ra.Node = &ra.Rel{Name: "R"}
	for i := 0; i < n; i++ {
		q = &ra.Join{L: q, R: q}
	}
	return q
}

// dupDB builds a database whose single relation R holds dupes identical
// single-column tuples (derivation count dupes for one distinct tuple).
func dupDB(dupes int) *relation.Database {
	db := relation.NewDatabase()
	db.CreateRelation("R", relation.NewSchema(relation.Attr("a", relation.KindInt)))
	for i := 0; i < dupes; i++ {
		db.Insert("R", relation.NewTuple(relation.Int(1)))
	}
	return db
}

// TestPrepareDiffRefusesOversizedCounts: a plan whose base derivation
// counts exceed the exact-arithmetic bound must be refused with
// ErrNotIncremental at prepare time (count-saturated plan refusal).
func TestPrepareDiffRefusesOversizedCounts(t *testing.T) {
	db := dupDB(2)
	// 2^(2^5) = 2^32 > maxSafeCount.
	q := selfJoinTower(5)
	_, err := PrepareDiff(q, &ra.Rel{Name: "R"}, db, nil, Options{NoOptimize: true, NoPlan: true})
	if !errors.Is(err, ErrNotIncremental) {
		t.Fatalf("PrepareDiff on saturating tower: got %v, want ErrNotIncremental", err)
	}
	// One level lower (2^16) is fine.
	if _, err := PrepareDiff(selfJoinTower(4), &ra.Rel{Name: "R"}, db, nil, Options{NoOptimize: true, NoPlan: true}); err != nil {
		t.Fatalf("PrepareDiff on safe tower: %v", err)
	}
}

// TestApplyDeltaRefusesOversizedCounts: an insertion delta that would push
// retained counts past the exact-arithmetic bound is refused with
// ErrNotIncremental, and the prepared state stays consistent and usable.
func TestApplyDeltaRefusesOversizedCounts(t *testing.T) {
	db := dupDB(2)
	// Base count at the top: 2^16. Two duplicate insertions make the scan
	// count 4, so the top candidate count is 4^16 = 2^32 > maxSafeCount.
	p, err := PrepareDiff(selfJoinTower(4), &ra.Rel{Name: "R"}, db, nil, Options{NoOptimize: true, NoPlan: true})
	if err != nil {
		t.Fatalf("PrepareDiff: %v", err)
	}
	dup := Insert{Rel: "R", Tuple: relation.NewTuple(relation.Int(1))}
	_, err = p.ApplyDelta(nil, []Insert{dup, dup})
	if !errors.Is(err, ErrNotIncremental) {
		t.Fatalf("saturating ApplyDelta: got %v, want ErrNotIncremental", err)
	}
	if p.Epoch() != 0 {
		t.Fatalf("failed ApplyDelta advanced the epoch to %d", p.Epoch())
	}
	// The prepared object must remain usable: a safe delta (one insertion,
	// top count 3^16 < 2^30) still evaluates and commits.
	res, err := p.ApplyDelta(nil, []Insert{dup})
	if err != nil {
		t.Fatalf("safe ApplyDelta after refusal: %v", err)
	}
	if err := res.Commit(); err != nil {
		t.Fatalf("Commit after refusal: %v", err)
	}
	if p.BaseSize() != 3 {
		t.Fatalf("BaseSize after insert: got %d, want 3", p.BaseSize())
	}
}

// TestApplyDeltaValidation: insertions into unknown relations or with the
// wrong arity fail cleanly — no panic, no state change — and a result
// computed before the failed call still commits (a failed ApplyDelta must
// not advance or corrupt the epoch).
func TestApplyDeltaValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := randomDB(rng)
	q1, q2 := randomCompat(rng, 2), randomCompat(rng, 2)
	p, err := PrepareDiff(q1, q2, db, nil, Options{})
	if err != nil {
		t.Fatalf("PrepareDiff: %v", err)
	}
	good, err := p.ApplyDelta(nil, []Insert{{Rel: "R", Tuple: randomStormTuple(rng)}})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if _, err := p.ApplyDelta(nil, []Insert{{Rel: "nope", Tuple: randomStormTuple(rng)}}); err == nil {
		t.Fatal("insert into unknown relation succeeded")
	}
	if _, err := p.ApplyDelta(nil, []Insert{{Rel: "R", Tuple: relation.NewTuple(relation.Int(1))}}); err == nil {
		t.Fatal("arity-mismatched insert succeeded")
	}
	if p.Epoch() != 0 {
		t.Fatalf("failed ApplyDelta advanced the epoch to %d", p.Epoch())
	}
	// The pre-failure result is not stale: the failures changed nothing.
	if err := good.Commit(); err != nil {
		t.Fatalf("Commit after failed ApplyDelta calls: %v", err)
	}
	// Re-committing it against the advanced epoch must fail stale.
	if err := good.Commit(); !errors.Is(err, ErrStaleDelta) {
		t.Fatalf("double Commit: got %v, want ErrStaleDelta", err)
	}
}
