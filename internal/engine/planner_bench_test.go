// Cost-based planner benchmarks: the same multi-way join evaluated with the
// planner (join reordering + Yannakakis semi-join reduction) against the
// syntactic left-deep order (Options{NoPlan: true}), on two workloads — a
// TPC-H 4-way join whose only selective input sits in the worst syntactic
// position, and an adversarial 4-way self-join (length-3 paths in a random
// graph, anchored at one endpoint). This is the acceptance benchmark for the
// planner (target: ≥5× on both); timings are exported to BENCH_planner.json
// via the BENCH_PLANNER_JSON env var. PLANNER_BENCH_SF scales both workloads
// (default 0.05, the CI smoke size; the recorded run uses 1).
package engine_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/engine"
	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/tpch"
)

func plannerBenchSF() float64 {
	if s := os.Getenv("PLANNER_BENCH_SF"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.05
}

func eqAttrs(l, r string) ra.Expr {
	return &ra.Cmp{Op: ra.EQ, L: &ra.AttrRef{Name: l}, R: &ra.AttrRef{Name: r}}
}

// tpchPlannerQuery asks for pairs of orders by the same customer, for the
// ~20 filtered customers, with the customer's nation: orders ⋈ orders ⋈
// σ(customer) ⋈ nation, the selective input in the worst syntactic
// position. The unplanned left-deep evaluation materializes every order
// pair of every customer (Σ n_i² ≈ 16M rows at SF 1, an order of magnitude
// past the largest base relation) before the filter applies; the planner
// semi-join reduces both orders scans down to the filtered customers'
// orders first, so its joins never exceed the final result size.
func tpchPlannerQuery() ra.Node {
	return &ra.Join{
		L: &ra.Join{
			L: &ra.Join{
				L:    &ra.Rename{As: "o1", In: &ra.Rel{Name: "orders"}},
				R:    &ra.Rename{As: "o2", In: &ra.Rel{Name: "orders"}},
				Cond: eqAttrs("o1.o_custkey", "o2.o_custkey"),
			},
			R: &ra.Select{
				Pred: &ra.Cmp{Op: ra.LT, L: &ra.AttrRef{Name: "c_custkey"}, R: &ra.Const{Val: relation.Int(20)}},
				In:   &ra.Rel{Name: "customer"},
			},
			Cond: eqAttrs("o1.o_custkey", "c_custkey"),
		},
		R:    &ra.Rel{Name: "nation"},
		Cond: eqAttrs("c_nationkey", "n_nationkey"),
	}
}

// selfJoinDB is a random directed graph E(x, y) with out-degree 6, sized by
// the scale factor.
func selfJoinDB(sf float64) *relation.Database {
	n := int(600 + 2400*sf)
	const deg = 6
	db := relation.NewDatabase()
	db.CreateRelation("E", relation.NewSchema(
		relation.Attr("x", relation.KindInt),
		relation.Attr("y", relation.KindInt)))
	rng := rand.New(rand.NewSource(11))
	for u := 0; u < n; u++ {
		for d := 0; d < deg; d++ {
			db.Insert("E", relation.NewTuple(relation.Int(int64(u)), relation.Int(int64(rng.Intn(n)))))
		}
	}
	return db
}

// selfJoinQuery is the adversarial 4-way self-join: length-3 paths
// e1→e2→e3→e4 whose final edge ends at node 0. Unplanned, the path join
// fans out by the graph degree at every step; planned, the anchor filter
// propagates backward through the Yannakakis reduction and every join stays
// near the final result size.
func selfJoinQuery() ra.Node {
	e := func(i int) ra.Node { return &ra.Rename{As: fmt.Sprintf("e%d", i), In: &ra.Rel{Name: "E"}} }
	q := ra.Node(&ra.Join{L: e(1), R: e(2), Cond: eqAttrs("e1.y", "e2.x")})
	q = &ra.Join{L: q, R: e(3), Cond: eqAttrs("e2.y", "e3.x")}
	q = &ra.Join{L: q, R: e(4), Cond: eqAttrs("e3.y", "e4.x")}
	return &ra.Select{
		Pred: &ra.Cmp{Op: ra.EQ, L: &ra.AttrRef{Name: "e4.y"}, R: &ra.Const{Val: relation.Int(0)}},
		In:   q,
	}
}

type plannerBenchRow struct {
	Workload      string  `json:"workload"`
	SF            float64 `json:"sf"`
	ResultRows    int     `json:"result_rows"`
	PlannedNsOp   float64 `json:"planned_ns_per_op"`
	UnplannedNsOp float64 `json:"unplanned_ns_per_op"`
	Speedup       float64 `json:"speedup"`
}

func benchKeys(r *engine.Rel[bool]) map[string]bool {
	m := make(map[string]bool, r.Len())
	for _, t := range r.Tuples {
		m[t.Key()] = true
	}
	return m
}

func BenchmarkPlanner(b *testing.B) {
	sf := plannerBenchSF()
	// The unplanned baselines materialize intermediates proportional to
	// |lineitem| (resp. the path-3 count), far past the default budget the
	// planner keeps plans under; the benchmark measures them anyway.
	savedMax := engine.MaxIntermediateRows
	engine.MaxIntermediateRows = 200_000_000
	b.Cleanup(func() { engine.MaxIntermediateRows = savedMax })

	workloads := []struct {
		name string
		db   *relation.Database
		q    ra.Node
	}{
		{"tpch-4way", tpch.Generate(sf, 1), tpchPlannerQuery()},
		{"selfjoin-path4", selfJoinDB(sf), selfJoinQuery()},
	}
	var rows []*plannerBenchRow
	for _, w := range workloads {
		row := &plannerBenchRow{Workload: w.name, SF: sf}
		rows = append(rows, row)
		var planned, unplanned map[string]bool
		b.Run(w.name+"/planned", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := engine.RunOpts(engine.Set, w.q, w.db, nil, engine.Options{})
				if err != nil {
					b.Fatal(err)
				}
				planned = benchKeys(res)
			}
			row.PlannedNsOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		})
		b.Run(w.name+"/unplanned", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := engine.RunOpts(engine.Set, w.q, w.db, nil, engine.Options{NoPlan: true})
				if err != nil {
					b.Fatal(err)
				}
				unplanned = benchKeys(res)
			}
			row.UnplannedNsOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		})
		// Equivalence guard: the timed runs must have produced identical
		// results, or the speedup is meaningless. Skipped when -bench
		// filtering ran only one side.
		if planned != nil && unplanned != nil {
			if len(planned) != len(unplanned) {
				b.Fatalf("%s: planned (%d rows) and unplanned (%d rows) results differ",
					w.name, len(planned), len(unplanned))
			}
			for k := range planned {
				if !unplanned[k] {
					b.Fatalf("%s: planned result contains a tuple the unplanned run lacks", w.name)
				}
			}
			row.ResultRows = len(planned)
		}
		if row.PlannedNsOp > 0 && row.UnplannedNsOp > 0 {
			row.Speedup = row.UnplannedNsOp / row.PlannedNsOp
		}
	}
	if path := os.Getenv("BENCH_PLANNER_JSON"); path != "" {
		out := map[string]any{
			"workloads": rows,
			"note":      "planned = default Options (cost-based reorder + Yannakakis); unplanned = Options{NoPlan: true} syntactic left-deep order; both post-Optimize",
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
