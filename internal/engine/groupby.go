package engine

import (
	"fmt"

	"repro/internal/ra"
	"repro/internal/relation"
)

// groupPlan resolves γ's group and aggregate columns against the input
// schema and derives the output schema. It is shared by the serial and
// parallel evaluators and by the prepared (delta-incremental) operator.
func groupPlan(g *ra.GroupBy, in relation.Schema) (gIdx, aIdx []int, out relation.Schema, err error) {
	gIdx = make([]int, len(g.GroupCols))
	for i, c := range g.GroupCols {
		j, err := in.Resolve(c)
		if err != nil {
			return nil, nil, relation.Schema{}, err
		}
		gIdx[i] = j
	}
	aIdx = make([]int, len(g.Aggs))
	for i, a := range g.Aggs {
		if a.Attr == "" {
			if a.Func != ra.Count {
				return nil, nil, relation.Schema{}, fmt.Errorf("engine: %s requires an attribute", a.Func)
			}
			aIdx[i] = -1
			continue
		}
		j, err := in.Resolve(a.Attr)
		if err != nil {
			return nil, nil, relation.Schema{}, err
		}
		aIdx[i] = j
	}
	attrs := make([]relation.Attribute, 0, len(gIdx)+len(g.Aggs))
	for i, j := range gIdx {
		attrs = append(attrs, relation.Attribute{Name: g.GroupCols[i], Type: in.Attrs[j].Type})
	}
	for i, a := range g.Aggs {
		typ := relation.KindFloat
		if a.Func == ra.Count {
			typ = relation.KindInt
		} else if aIdx[i] >= 0 && (a.Func == ra.Sum || a.Func == ra.Min || a.Func == ra.Max) {
			typ = in.Attrs[aIdx[i]].Type
		}
		attrs = append(attrs, relation.Attribute{Name: a.As, Type: typ})
	}
	return gIdx, aIdx, relation.Schema{Attrs: attrs}, nil
}

// groupBy evaluates γ over the support of the input (the distinct tuples),
// hash-partitioning into groups. Output rows are annotated One; the
// semiring gate in exec.node restricts this to semirings whose annotations
// carry no per-subinstance information (set, counting). Above the parallel
// threshold the groups are hash-partitioned by group key across workers
// (a group lives entirely in one shard, so each shard aggregates its groups
// independently over members in input order) and the shard outputs
// concatenate in shard order — deterministic for a fixed Parallelism.
func (e *exec[T]) groupBy(g *ra.GroupBy, in *Rel[T]) (*Rel[T], error) {
	gIdx, aIdx, outSchema, err := groupPlan(g, in.Schema)
	if err != nil {
		return nil, err
	}
	if w := e.opts.workerCount(in.Len()); w > 1 {
		return parallelGroupBy(e.s, g, in, gIdx, aIdx, outSchema, w)
	}
	out := NewRel[T](outSchema)

	groups := map[string][]relation.Tuple{}
	var order []string
	keyTuples := map[string]relation.Tuple{}
	for _, t := range in.Tuples {
		k := t.Project(gIdx)
		ks := k.Key()
		if _, ok := groups[ks]; !ok {
			order = append(order, ks)
			keyTuples[ks] = k
		}
		groups[ks] = append(groups[ks], t)
	}
	for _, ks := range order {
		members := groups[ks]
		row := keyTuples[ks].Clone()
		for i, a := range g.Aggs {
			v, err := computeAgg(a.Func, aIdx[i], members)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		// One output row per distinct group key.
		out.appendDistinct(row, e.s.One())
	}
	return out, nil
}

func computeAgg(f ra.AggFunc, col int, members []relation.Tuple) (relation.Value, error) {
	if f == ra.Count {
		if col < 0 {
			return relation.Int(int64(len(members))), nil
		}
		n := 0
		for _, t := range members {
			if !t[col].IsNull() {
				n++
			}
		}
		return relation.Int(int64(n)), nil
	}
	var vals []relation.Value
	for _, t := range members {
		if !t[col].IsNull() {
			vals = append(vals, t[col])
		}
	}
	if len(vals) == 0 {
		return relation.Null(), nil
	}
	switch f {
	case ra.Sum, ra.Avg:
		acc := vals[0]
		for _, v := range vals[1:] {
			var err error
			acc, err = relation.Add(acc, v)
			if err != nil {
				return relation.Null(), err
			}
		}
		if f == ra.Sum {
			return acc, nil
		}
		return relation.Div(acc, relation.Int(int64(len(vals))))
	case ra.Min, ra.Max:
		best := vals[0]
		for _, v := range vals[1:] {
			c, ok := v.Compare(best)
			if !ok {
				return relation.Null(), fmt.Errorf("engine: incomparable values in %s", f)
			}
			if (f == ra.Min && c < 0) || (f == ra.Max && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return relation.Null(), fmt.Errorf("engine: unknown aggregate %v", f)
}
