package engine

import (
	"testing"

	"repro/internal/ra"
	"repro/internal/raparser"
	"repro/internal/relation"
	"repro/internal/tpch"
)

// joinDB builds two relations with a shared key column of 97 distinct
// values: an equi-join-heavy workload where the hash join's advantage over
// the quadratic nested loop is the whole story.
func joinDB(n int) *relation.Database {
	db := relation.NewDatabase()
	db.CreateRelation("L", relation.NewSchema(
		relation.Attr("k", relation.KindInt), relation.Attr("a", relation.KindInt)))
	db.CreateRelation("R", relation.NewSchema(
		relation.Attr("k", relation.KindInt), relation.Attr("b", relation.KindInt)))
	for i := 0; i < n; i++ {
		db.Insert("L", relation.NewTuple(relation.Int(int64(i%97)), relation.Int(int64(i))))
		db.Insert("R", relation.NewTuple(relation.Int(int64(i%97)), relation.Int(int64(i))))
	}
	return db
}

// BenchmarkEquiJoin compares the hash equi-join against the nested-loop
// baseline on the same plan (the acceptance benchmark for the engine's
// physical layer).
func BenchmarkEquiJoin(b *testing.B) {
	db := joinDB(2000)
	q := raparser.MustParse("rename[x](L) join[x.k = y.k] rename[y](R)")
	for _, bc := range []struct {
		name string
		opts Options
	}{
		{"hash", Options{}},
		{"nested-loop", Options{ForceNestedLoop: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunOpts[bool](Set, q, db, nil, bc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEquiJoinProv is the same comparison under the why-provenance
// semiring, the hot path of witness search.
func BenchmarkEquiJoinProv(b *testing.B) {
	db := joinDB(1000)
	q := raparser.MustParse("rename[x](L) join[x.k = y.k] rename[y](R)")
	for _, bc := range []struct {
		name string
		opts Options
	}{
		{"hash", Options{}},
		{"nested-loop", Options{ForceNestedLoop: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunOpts(Why, q, db, nil, bc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTPCH compares hash vs nested-loop on a customer ⋈ orders
// equi-join at TPC-H SF 0.01 (the nested loop is quadratic in ~16.5k rows;
// the three-way join below is hash-only because its nested-loop baseline
// needs ~10⁹ pair evaluations).
func BenchmarkTPCH(b *testing.B) {
	db := tpch.Generate(0.01, 1)
	two := raparser.MustParse(
		"rename[c](customer) join[c.c_custkey = o.o_custkey] rename[o](orders)")
	three := raparser.MustParse(`
		rename[c](customer)
		join[c.c_custkey = o.o_custkey] rename[o](orders)
		join[o.o_orderkey = l.l_orderkey] rename[l](lineitem)`)
	for _, bc := range []struct {
		name string
		q    ra.Node
		opts Options
	}{
		{"customer-orders/hash", two, Options{}},
		{"customer-orders/nested-loop", two, Options{ForceNestedLoop: true}},
		{"customer-orders/parallel", two, Options{Parallelism: NumWorkers()}},
		{"customer-orders-lineitem/hash", three, Options{}},
		{"customer-orders-lineitem/parallel", three, Options{Parallelism: NumWorkers()}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunOpts[bool](Set, bc.q, db, nil, bc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDiff compares the hash-probed difference against the linear
// probe on a wide difference (the Q1 − Q2 shape of the core loop).
func BenchmarkDiff(b *testing.B) {
	db := joinDB(4000)
	q := raparser.MustParse("project[k, a](L) diff project[k, b](R)")
	for _, bc := range []struct {
		name string
		opts Options
	}{
		{"hash", Options{}},
		{"nested-loop", Options{ForceNestedLoop: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunOpts[bool](Set, q, db, nil, bc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCountDistinct measures the counting-semiring cardinality path
// against full provenance on the same query (the witness-search pre-check).
func BenchmarkCountDistinct(b *testing.B) {
	db := joinDB(2000)
	q := raparser.MustParse("project[x.k](rename[x](L) join[x.k = y.k] rename[y](R))")
	b.Run("count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := CountDistinct(q, db, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prov", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := EvalProv(q, db, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelJoin compares the hash-partitioned parallel equi-join
// against the serial hash join on a join wide enough to clear the parallel
// row threshold (the acceptance benchmark for the parallel physical layer;
// the parallel series only wins wall-clock on a multi-core runner).
func BenchmarkParallelJoin(b *testing.B) {
	// 1:1 key join over 150k rows per side (joinDB's 97-value key domain
	// would blow the row budget at this scale).
	db := relation.NewDatabase()
	db.CreateRelation("L", relation.NewSchema(
		relation.Attr("k", relation.KindInt), relation.Attr("a", relation.KindInt)))
	db.CreateRelation("R", relation.NewSchema(
		relation.Attr("k", relation.KindInt), relation.Attr("b", relation.KindInt)))
	for i := 0; i < 150_000; i++ {
		db.Insert("L", relation.NewTuple(relation.Int(int64(i)), relation.Int(int64(i))))
		db.Insert("R", relation.NewTuple(relation.Int(int64(i)), relation.Int(int64(i))))
	}
	q := raparser.MustParse("rename[x](L) join[x.k = y.k] rename[y](R)")
	for _, bc := range []struct {
		name string
		opts Options
	}{
		{"serial", Options{}},
		{"parallel", Options{Parallelism: NumWorkers()}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunOpts[bool](Set, q, db, nil, bc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
