package engine

import (
	"repro/internal/ra"
	"repro/internal/relation"
)

// This file executes the physical nodes the cost-based planner emits:
// positional hash equi-join, the semi-join filter of the Yannakakis
// reduction, and the column permutation that restores a reordered region's
// original output schema.

// equiJoin executes a planner-emitted positional equi-join. It is the
// θ-join's hash path minus condition compilation: keys are column indices,
// there is never a residual predicate, and the full concatenation is kept
// (the trailing Permute drops and reorders columns).
func (e *exec[T]) equiJoin(x *ra.EquiJoin, l, r *Rel[T]) (*Rel[T], error) {
	out := NewRel[T](l.Schema.Concat(r.Schema))
	combine := func(li, ri int) (relation.Tuple, bool, error) {
		return l.Tuples[li].Concat(r.Tuples[ri]), true, nil
	}
	var pairs int
	emit := func(li, ri int) error {
		if pairs++; pairs%stopPollStride == 0 {
			if err := e.opts.poll(); err != nil {
				return err
			}
		}
		ann := e.s.Times(l.Anns[li], r.Anns[ri])
		if e.s.IsZero(ann) {
			return nil
		}
		if out.Len() >= e.opts.rowBudget() {
			return ErrRowBudget
		}
		t, _, _ := combine(li, ri)
		// Distinct pairs of distinct inputs concatenate to distinct tuples.
		out.appendDistinct(t, ann)
		return nil
	}
	if e.opts.ForceNestedLoop {
		for li, lt := range l.Tuples {
			k := lt.Project(x.LKeys)
			if hasNullValue(k) {
				continue
			}
			for ri, rt := range r.Tuples {
				rk := rt.Project(x.RKeys)
				if hasNullValue(rk) || !k.Identical(rk) {
					continue
				}
				if err := emit(li, ri); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}
	if w := e.opts.workerCount(l.Len() + r.Len()); w > 1 {
		return out, parallelHashJoin(e.s, l, r, x.LKeys, x.RKeys, w, e.opts.rowBudget(), e.opts.Stop, combine, out)
	}
	return out, hashJoin(l, r, x.LKeys, x.RKeys, emit)
}

// semiJoin executes L ⋉ R: left tuples with at least one key match on the
// right survive with their annotation untouched — a pure filter, sound for
// every semiring. Left tuples with NULL key columns are dropped (they could
// never survive the eventual equi-join on the same columns).
func (e *exec[T]) semiJoin(x *ra.Semi, l, r *Rel[T]) (*Rel[T], error) {
	out := NewRelCap[T](l.Schema, l.Len())
	if e.opts.ForceNestedLoop {
		for i, t := range l.Tuples {
			k := t.Project(x.LKeys)
			if hasNullValue(k) {
				continue
			}
			for _, rt := range r.Tuples {
				rk := rt.Project(x.RKeys)
				if !hasNullValue(rk) && k.Identical(rk) {
					out.appendDistinct(t, l.Anns[i])
					break
				}
			}
		}
		return out, nil
	}
	keys := make(map[string]struct{}, r.Len())
	for _, rt := range r.Tuples {
		k := rt.Project(x.RKeys)
		if hasNullValue(k) {
			continue
		}
		keys[k.Key()] = struct{}{}
	}
	var probed int
	for i, t := range l.Tuples {
		if probed++; probed%stopPollStride == 0 {
			if err := e.opts.poll(); err != nil {
				return nil, err
			}
		}
		k := t.Project(x.LKeys)
		if hasNullValue(k) {
			continue
		}
		if _, ok := keys[k.Key()]; !ok {
			continue
		}
		// Output is a subset of the distinct left input.
		out.appendDistinct(t, l.Anns[i])
	}
	return out, nil
}

// permute reorders (and possibly drops) columns positionally. The planner
// only drops columns that are join-enforced equal to kept ones, so the
// mapping is injective on its input; Add still ⊕-merges defensively.
func (e *exec[T]) permute(x *ra.Permute, in *Rel[T]) *Rel[T] {
	out := NewRel[T](in.Schema.Project(x.Idxs))
	for i, t := range in.Tuples {
		out.Add(e.s, t.Project(x.Idxs), in.Anns[i])
	}
	return out
}
