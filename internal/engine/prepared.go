package engine

import (
	"errors"
	"fmt"

	"repro/internal/ra"
	"repro/internal/relation"
)

// This file is the delta-incremental evaluation subsystem: PrepareDiff
// evaluates Q1 and Q2 once on the full database under the counting semiring
// and retains per-operator state — base-scan relations with a TupleID →
// position map, join hash tables partitioned by join key, the output (with
// its lazily-built tuple index) of every union/difference node, and per-group
// membership for γ. PreparedDiff.ApplyDelta (delta.go) then answers "what do
// Q1 − Q2 and Q2 − Q1 look like after this update" — deletions, insertions,
// and updates expressed as delete+insert — by propagating only the signed
// delta up the operator DAG:
//
//   - scans translate removed ids into per-tuple count decrements and
//     inserted tuples into increments,
//   - joins probe the retained hash table of the *other* side
//     (Δ(L⋈R) = ΔL⋈R + L⋈ΔR + ΔL⋈ΔR over signed counts),
//   - unions add the child deltas,
//   - differences re-derive only the tuples whose left or right count
//     changed, from the retained child outputs (the Section-6 rule is not
//     linear, so the delta consults old and new counts),
//   - γ re-aggregates only the groups whose support intersects the delta.
//
// Derivation counts are the bookkeeping that makes deletion cheap: a deleted
// input tuple decrements the counts it contributed to, and an output tuple
// leaves the result exactly when its count reaches zero — no recomputation.
// Because Diff nodes can also *resurrect* tuples (deleting right-side
// derivations un-suppresses a left tuple), deltas are signed and retained
// outputs may gain tuples on Commit.
//
// A DeltaResult is evaluated against the prepared object's current base
// instance (initially D). Commit folds the delta into the retained state, so
// a shrink loop pays O(|step delta|) per iteration instead of re-evaluating
// the whole query; uncommitted results are independent, which is what the
// candidate accept/reject checks need.

// ErrNotIncremental is returned by PrepareDiff — and by ApplyDelta for
// updates that would break the invariant afterwards — when the plan or its
// evaluation state cannot be maintained incrementally (currently: derivation
// counts beyond maxSafeCount, where exact count arithmetic could overflow).
// Callers fall back to the batch or per-candidate path, or re-prepare.
var ErrNotIncremental = errors.New("engine: plan is not delta-incrementalizable")

// ErrStaleDelta is returned by DeltaResult.Commit when the prepared state
// advanced (another result was committed) after this result was computed.
// Committing a stale delta would corrupt the retained per-operator state.
var ErrStaleDelta = errors.New("engine: delta result is stale: prepared state has advanced")

// zsum is the ring ℤ used for update deltas: signed count changes merge by
// plain addition. No saturation is needed — PrepareDiff and ApplyDelta keep
// every retained count within maxSafeCount, which bounds every delta product
// and partial sum inside int64.
type zsumRing struct{}

func (zsumRing) Zero() Count                          { return 0 }
func (zsumRing) One() Count                           { return 1 }
func (zsumRing) Plus(a, b Count) Count                { return exactAdd(a, b) }
func (zsumRing) Times(a, b Count) Count               { return exactMul(a, b) }
func (zsumRing) Minus(l, r Count) Count               { return l - r }
func (zsumRing) IsZero(a Count) bool                  { return a == 0 }
func (zsumRing) Leaf(relation.TupleID) (Count, error) { return 1, nil }
func (zsumRing) Aggregates() bool                     { return false }
func (zsumRing) Name() string                         { return "zsum" }

var zsum zsumRing

// exactAdd and exactMul are the delta subsystem's ℤ-ring count arithmetic.
// Unlike Counting.Plus/Times they do not saturate — deliberately: signed
// delta arithmetic must be invertible, and it cannot overflow because
// PrepareDiff and ApplyDelta keep every retained count within maxSafeCount,
// which bounds every product and partial sum the delta rules form.

func exactAdd(a, b Count) Count {
	//lint:saturated exact ℤ-ring delta arithmetic; the maxSafeCount invariant bounds operands, so no overflow
	return a + b
}

func exactMul(a, b Count) Count {
	//lint:saturated exact ℤ-ring delta arithmetic; the maxSafeCount invariant bounds operands, so no overflow
	return a * b
}

// deltaCtx carries one ApplyDelta computation: the (sorted, deduplicated,
// still-live) removed ids, the inserted tuples bucketed by base relation,
// and the per-node memoized deltas. Nodes are shared between the two
// difference directions and between Q1 and Q2 (base scans), so memoization
// keeps every node's delta computed exactly once per call.
type deltaCtx struct {
	removed  []relation.TupleID
	inserted map[string][]relation.Tuple
	poll     func() error // budget stop hook, polled via pollStep
	ops      int
	memo     map[pnode]*Rel[Count]
	aux      map[pnode][]groupChange
}

// pnode is one prepared operator: retained base output plus delta/commit.
type pnode interface {
	// rel is the retained output on the current base instance. It may
	// contain zombie entries (count 0) left behind by committed deletions;
	// consumers must read counts, never assume presence implies membership.
	rel() *Rel[Count]
	// delta computes the signed count changes this operator's output
	// undergoes for ctx's update (removed ids + inserted tuples), memoized
	// in ctx.
	delta(ctx *deltaCtx) (*Rel[Count], error)
	// commit folds the memoized delta of ctx into the retained state.
	commit(ctx *deltaCtx)
}

// countOf reads a tuple's retained count (0 when absent or zombie).
func countOf(r *Rel[Count], t relation.Tuple) Count {
	if i := r.Lookup(t); i >= 0 {
		return r.Anns[i]
	}
	return 0
}

// deltaOf reads a tuple's signed delta (0 when untouched).
func deltaOf(d *Rel[Count], t relation.Tuple) Count {
	if d == nil {
		return 0
	}
	if i := d.Lookup(t); i >= 0 {
		return d.Anns[i]
	}
	return 0
}

// applyDelta folds signed count changes into a retained output. Tuples whose
// count reaches zero stay as zombies (removing them would shift positions
// out from under the retained join/group indexes); tuples entering the
// output are appended and indexed.
func applyDelta(base *Rel[Count], d *Rel[Count]) {
	for i, t := range d.Tuples {
		c := d.Anns[i]
		if c == 0 {
			continue
		}
		if j := base.Lookup(t); j >= 0 {
			base.Anns[j] = exactAdd(base.Anns[j], c)
			continue
		}
		base.Add(zsum, t, c)
	}
}

// pscan is a retained base-relation scan: the deduplicated annotated scan
// output plus the id → output-position map deletions are translated
// through. Insertions enter here as +1 count increments; Commit registers
// their freshly-assigned ids in pos.
type pscan struct {
	name string
	out  *Rel[Count]
	pos  map[relation.TupleID]int
}

func (n *pscan) rel() *Rel[Count] { return n.out }

func (n *pscan) delta(ctx *deltaCtx) (*Rel[Count], error) {
	if d, ok := ctx.memo[n]; ok {
		return d, nil
	}
	d := NewRel[Count](n.out.Schema)
	for _, id := range ctx.removed {
		p, ok := n.pos[id]
		if !ok {
			continue // a tuple of some other relation
		}
		d.Add(zsum, n.out.Tuples[p], -1)
	}
	for _, t := range ctx.inserted[n.name] {
		d.Add(zsum, t, 1)
	}
	ctx.memo[n] = d
	return d, nil
}

func (n *pscan) commit(ctx *deltaCtx) { applyDelta(n.out, ctx.memo[n]) }

// pselect filters the child delta through the retained compiled predicate.
type pselect struct {
	in   pnode
	pred ra.CompiledExpr
	out  *Rel[Count]
}

func (n *pselect) rel() *Rel[Count] { return n.out }

func (n *pselect) delta(ctx *deltaCtx) (*Rel[Count], error) {
	if d, ok := ctx.memo[n]; ok {
		return d, nil
	}
	din, err := n.in.delta(ctx)
	if err != nil {
		return nil, err
	}
	d := NewRel[Count](n.out.Schema)
	for i, t := range din.Tuples {
		c := din.Anns[i]
		if c == 0 {
			continue
		}
		v, err := n.pred(t)
		if err != nil {
			return nil, err
		}
		if ra.Truthy(v) {
			d.Add(zsum, t, c)
		}
	}
	ctx.memo[n] = d
	return d, nil
}

func (n *pselect) commit(ctx *deltaCtx) { applyDelta(n.out, ctx.memo[n]) }

// pproject projects the child delta, merging counts of collapsing tuples.
type pproject struct {
	in   pnode
	idxs []int
	out  *Rel[Count]
}

func (n *pproject) rel() *Rel[Count] { return n.out }

func (n *pproject) delta(ctx *deltaCtx) (*Rel[Count], error) {
	if d, ok := ctx.memo[n]; ok {
		return d, nil
	}
	din, err := n.in.delta(ctx)
	if err != nil {
		return nil, err
	}
	d := NewRel[Count](n.out.Schema)
	for i, t := range din.Tuples {
		if c := din.Anns[i]; c != 0 {
			d.Add(zsum, t.Project(n.idxs), c)
		}
	}
	ctx.memo[n] = d
	return d, nil
}

func (n *pproject) commit(ctx *deltaCtx) { applyDelta(n.out, ctx.memo[n]) }

// prename requalifies the child delta's schema; tuple values are unchanged,
// so the delta aliases the child's (deltas are read-only once built).
type prename struct {
	in  pnode
	out *Rel[Count]
}

func (n *prename) rel() *Rel[Count] { return n.out }

func (n *prename) delta(ctx *deltaCtx) (*Rel[Count], error) {
	if d, ok := ctx.memo[n]; ok {
		return d, nil
	}
	din, err := n.in.delta(ctx)
	if err != nil {
		return nil, err
	}
	d := &Rel[Count]{Schema: n.out.Schema, Tuples: din.Tuples, Anns: din.Anns, index: din.index}
	ctx.memo[n] = d
	return d, nil
}

func (n *prename) commit(ctx *deltaCtx) { applyDelta(n.out, ctx.memo[n]) }

// punion adds the two child deltas.
type punion struct {
	l, r pnode
	out  *Rel[Count]
}

func (n *punion) rel() *Rel[Count] { return n.out }

func (n *punion) delta(ctx *deltaCtx) (*Rel[Count], error) {
	if d, ok := ctx.memo[n]; ok {
		return d, nil
	}
	dl, err := n.l.delta(ctx)
	if err != nil {
		return nil, err
	}
	dr, err := n.r.delta(ctx)
	if err != nil {
		return nil, err
	}
	d := NewRel[Count](n.out.Schema)
	for i, t := range dl.Tuples {
		if c := dl.Anns[i]; c != 0 {
			d.Add(zsum, t, c)
		}
	}
	for i, t := range dr.Tuples {
		if c := dr.Anns[i]; c != 0 {
			d.Add(zsum, t, c)
		}
	}
	ctx.memo[n] = d
	return d, nil
}

func (n *punion) commit(ctx *deltaCtx) { applyDelta(n.out, ctx.memo[n]) }

// pjoin retains both children's join-key hash tables and expands
// Δ(L⋈R) = ΔL⋈R + L⋈ΔR + ΔL⋈ΔR: each delta side probes the *other* side's
// retained table, and the cross term pairs the two (small) deltas. With no
// equi keys (cross products, residual-only θ-joins) the probes degrade to a
// scan of the other side's retained output — still proportional to one
// side's size, not the whole plan.
type pjoin struct {
	l, r         pnode
	lKeys, rKeys []int // equi-join key columns; empty → no hash keys
	natural      bool
	rOnly        []int           // natural join: right-side columns appended
	pred         ra.CompiledExpr // residual θ-condition over the concat, or nil
	out          *Rel[Count]
	lIdx, rIdx   map[string][]int
	lSynced      int // child output positions already indexed
	rSynced      int
}

func (n *pjoin) rel() *Rel[Count] { return n.out }

// sync indexes child output positions appended by commits since the last
// delta (tuples resurrected through a Diff keep their old, already-indexed
// position; only genuinely new tuples appear past the watermark).
func (n *pjoin) sync() {
	if len(n.lKeys) == 0 {
		return
	}
	lrel, rrel := n.l.rel(), n.r.rel()
	for i := n.lSynced; i < lrel.Len(); i++ {
		k := lrel.Tuples[i].Project(n.lKeys)
		if !hasNullValue(k) {
			n.lIdx[k.Key()] = append(n.lIdx[k.Key()], i)
		}
	}
	n.lSynced = lrel.Len()
	for i := n.rSynced; i < rrel.Len(); i++ {
		k := rrel.Tuples[i].Project(n.rKeys)
		if !hasNullValue(k) {
			n.rIdx[k.Key()] = append(n.rIdx[k.Key()], i)
		}
	}
	n.rSynced = rrel.Len()
}

// outTuple builds the output tuple for a matched pair.
func (n *pjoin) outTuple(lt, rt relation.Tuple) relation.Tuple {
	if n.natural {
		return lt.Concat(rt.Project(n.rOnly))
	}
	return lt.Concat(rt)
}

// emitDelta adds one pair's signed contribution, applying the residual
// θ-condition. It polls the budget stop hook: the pair loops are the delta
// propagation's only superlinear work (an inserted tuple can match
// everything on the other side), so this is where a wide delta must stay
// interruptible.
func (n *pjoin) emitDelta(ctx *deltaCtx, d *Rel[Count], lt, rt relation.Tuple, c Count) error {
	if err := ctx.pollStep(); err != nil {
		return err
	}
	if c == 0 {
		return nil
	}
	if n.pred != nil {
		v, err := n.pred(lt.Concat(rt))
		if err != nil {
			return err
		}
		if !ra.Truthy(v) {
			return nil
		}
	}
	d.Add(zsum, n.outTuple(lt, rt), c)
	return nil
}

func (n *pjoin) delta(ctx *deltaCtx) (*Rel[Count], error) {
	if d, ok := ctx.memo[n]; ok {
		return d, nil
	}
	dl, err := n.l.delta(ctx)
	if err != nil {
		return nil, err
	}
	dr, err := n.r.delta(ctx)
	if err != nil {
		return nil, err
	}
	n.sync()
	d := NewRel[Count](n.out.Schema)
	lrel, rrel := n.l.rel(), n.r.rel()
	keyed := len(n.lKeys) > 0
	// ΔL ⋈ R (retained right state).
	for i, lt := range dl.Tuples {
		c := dl.Anns[i]
		if c == 0 {
			continue
		}
		if keyed {
			k := lt.Project(n.lKeys)
			if hasNullValue(k) {
				continue
			}
			for _, ri := range n.rIdx[k.Key()] {
				if err := n.emitDelta(ctx, d, lt, rrel.Tuples[ri], exactMul(c, rrel.Anns[ri])); err != nil {
					return nil, err
				}
			}
			continue
		}
		for ri := range rrel.Tuples {
			if err := n.emitDelta(ctx, d, lt, rrel.Tuples[ri], exactMul(c, rrel.Anns[ri])); err != nil {
				return nil, err
			}
		}
	}
	// L (retained left state) ⋈ ΔR.
	for j, rt := range dr.Tuples {
		c := dr.Anns[j]
		if c == 0 {
			continue
		}
		if keyed {
			k := rt.Project(n.rKeys)
			if hasNullValue(k) {
				continue
			}
			for _, li := range n.lIdx[k.Key()] {
				if err := n.emitDelta(ctx, d, lrel.Tuples[li], rt, exactMul(lrel.Anns[li], c)); err != nil {
					return nil, err
				}
			}
			continue
		}
		for li := range lrel.Tuples {
			if err := n.emitDelta(ctx, d, lrel.Tuples[li], rt, exactMul(lrel.Anns[li], c)); err != nil {
				return nil, err
			}
		}
	}
	// ΔL ⋈ ΔR: both sides changed; the product of two (negative) deletions
	// adds back the doubly-subtracted pairs.
	for i, lt := range dl.Tuples {
		ci := dl.Anns[i]
		if ci == 0 {
			continue
		}
		var lk relation.Tuple
		if keyed {
			lk = lt.Project(n.lKeys)
			if hasNullValue(lk) {
				continue
			}
		}
		for j, rt := range dr.Tuples {
			cj := dr.Anns[j]
			if cj == 0 {
				continue
			}
			if keyed {
				rk := rt.Project(n.rKeys)
				if hasNullValue(rk) || !lk.Identical(rk) {
					continue
				}
			}
			if err := n.emitDelta(ctx, d, lt, rt, exactMul(ci, cj)); err != nil {
				return nil, err
			}
		}
	}
	ctx.memo[n] = d
	return d, nil
}

func (n *pjoin) commit(ctx *deltaCtx) { applyDelta(n.out, ctx.memo[n]) }

// pdiff applies the counting-semiring Section-6 difference rule
// out(t) = L(t) if R(t) == 0 else 0. The rule is not linear, so the delta
// re-derives exactly the tuples whose left or right count changed, reading
// old counts from the retained child outputs. live tracks the support size
// so emptiness checks are O(1).
type pdiff struct {
	l, r pnode
	out  *Rel[Count]
	live int
}

func (n *pdiff) rel() *Rel[Count] { return n.out }

func (n *pdiff) delta(ctx *deltaCtx) (*Rel[Count], error) {
	if d, ok := ctx.memo[n]; ok {
		return d, nil
	}
	dl, err := n.l.delta(ctx)
	if err != nil {
		return nil, err
	}
	dr, err := n.r.delta(ctx)
	if err != nil {
		return nil, err
	}
	d := NewRel[Count](n.out.Schema)
	lrel, rrel := n.l.rel(), n.r.rel()
	seen := map[string]bool{}
	process := func(t relation.Tuple) {
		k := t.Key()
		if seen[k] {
			return
		}
		seen[k] = true
		oldL := countOf(lrel, t)
		oldR := countOf(rrel, t)
		newL := exactAdd(oldL, deltaOf(dl, t))
		newR := exactAdd(oldR, deltaOf(dr, t))
		oldOut, newOut := oldL, newL
		if oldR != 0 {
			oldOut = 0
		}
		if newR != 0 {
			newOut = 0
		}
		if ch := newOut - oldOut; ch != 0 {
			d.Add(zsum, t, ch)
		}
	}
	for _, t := range dl.Tuples {
		process(t)
	}
	for _, t := range dr.Tuples {
		process(t)
	}
	ctx.memo[n] = d
	return d, nil
}

func (n *pdiff) commit(ctx *deltaCtx) {
	d := ctx.memo[n]
	for i, t := range d.Tuples {
		ch := d.Anns[i]
		if ch == 0 {
			continue
		}
		old := countOf(n.out, t)
		now := exactAdd(old, ch)
		switch {
		case old == 0 && now != 0:
			n.live++
		case old != 0 && now == 0:
			n.live--
		}
	}
	applyDelta(n.out, d)
}

// groupChange records one affected group for commit: the key and its new
// output row (nil when the group's support emptied).
type groupChange struct {
	key string
	row relation.Tuple
}

// pgroup retains γ's group membership (group key → input output positions)
// and the current output row per live group. A delta re-aggregates only the
// groups whose support intersects the changed input tuples; untouched groups
// keep their retained rows.
type pgroup struct {
	in        pnode
	aggs      []ra.AggSpec
	gIdx      []int
	aIdx      []int
	out       *Rel[Count]
	groups    map[string][]int
	keyTuples map[string]relation.Tuple
	rows      map[string]relation.Tuple
	inSynced  int
}

func (n *pgroup) rel() *Rel[Count] { return n.out }

// sync assigns input positions appended since the last delta to groups.
func (n *pgroup) sync() {
	inrel := n.in.rel()
	for p := n.inSynced; p < inrel.Len(); p++ {
		key := inrel.Tuples[p].Project(n.gIdx)
		ks := key.Key()
		if _, ok := n.keyTuples[ks]; !ok {
			n.keyTuples[ks] = key
		}
		n.groups[ks] = append(n.groups[ks], p)
	}
	n.inSynced = inrel.Len()
}

func (n *pgroup) delta(ctx *deltaCtx) (*Rel[Count], error) {
	if d, ok := ctx.memo[n]; ok {
		return d, nil
	}
	din, err := n.in.delta(ctx)
	if err != nil {
		return nil, err
	}
	n.sync()
	inrel := n.in.rel()
	d := NewRel[Count](n.out.Schema)
	var changes []groupChange
	var affected []string
	seenKey := map[string]bool{}
	// One pass over the input delta collects the affected group keys and
	// buckets fresh tuples — delta tuples entering the input for the first
	// time (possible when a Diff below resurrects a tuple) — per key, so the
	// per-group work below is linear in the delta instead of rescanning the
	// whole delta once per affected group.
	fresh := map[string][]relation.Tuple{}
	for i, t := range din.Tuples {
		key := t.Project(n.gIdx)
		ks := key.Key()
		if !seenKey[ks] {
			seenKey[ks] = true
			affected = append(affected, ks)
			if _, ok := n.keyTuples[ks]; !ok {
				n.keyTuples[ks] = key
			}
		}
		if din.Anns[i] > 0 && inrel.Lookup(t) < 0 {
			fresh[ks] = append(fresh[ks], t)
		}
	}
	for _, ks := range affected {
		// Current support of the group: retained members whose new count
		// stays positive, plus the fresh tuples bucketed above.
		var members []relation.Tuple
		for _, p := range n.groups[ks] {
			if err := ctx.pollStep(); err != nil {
				return nil, err
			}
			t := inrel.Tuples[p]
			if exactAdd(inrel.Anns[p], deltaOf(din, t)) > 0 {
				members = append(members, t)
			}
		}
		members = append(members, fresh[ks]...)
		var newRow relation.Tuple
		if len(members) > 0 {
			row := n.keyTuples[ks].Clone()
			for i, a := range n.aggs {
				v, err := computeAgg(a.Func, n.aIdx[i], members)
				if err != nil {
					return nil, err
				}
				row = append(row, v)
			}
			newRow = row
		}
		oldRow := n.rows[ks]
		if oldRow == nil && newRow == nil {
			continue
		}
		if oldRow != nil && newRow != nil && oldRow.Identical(newRow) {
			continue
		}
		if oldRow != nil {
			d.Add(zsum, oldRow, -1)
		}
		if newRow != nil {
			d.Add(zsum, newRow, 1)
		}
		changes = append(changes, groupChange{key: ks, row: newRow})
	}
	ctx.memo[n] = d
	ctx.aux[n] = changes
	return d, nil
}

func (n *pgroup) commit(ctx *deltaCtx) {
	applyDelta(n.out, ctx.memo[n])
	for _, ch := range ctx.aux[n] {
		if ch.row == nil {
			delete(n.rows, ch.key)
			continue
		}
		n.rows[ch.key] = ch.row
	}
}

// pbuilder constructs the prepared operator DAG and its base evaluation.
// Base scans are cached by relation name, so Q1 and Q2 (and self-joins)
// share one retained scan per relation — the same sharing the batch layer's
// per-exec scan cache provides, but persistent.
type pbuilder struct {
	db     *relation.Database
	params map[string]relation.Value
	opts   Options
	scans  map[string]*pscan
	nodes  []pnode // children before parents (commit order is irrelevant,
	// but a deterministic walk keeps Commit reproducible)
}

func (b *pbuilder) add(n pnode) pnode {
	b.nodes = append(b.nodes, n)
	return n
}

func (b *pbuilder) build(q ra.Node) (pnode, error) {
	if err := b.opts.poll(); err != nil {
		return nil, err
	}
	switch x := q.(type) {
	case *ra.Rel:
		return b.buildScan(x)
	case *ra.Select:
		in, err := b.build(x.In)
		if err != nil {
			return nil, err
		}
		return b.buildSelect(x, in)
	case *ra.Project:
		in, err := b.build(x.In)
		if err != nil {
			return nil, err
		}
		return b.buildProject(x, in)
	case *ra.Rename:
		in, err := b.build(x.In)
		if err != nil {
			return nil, err
		}
		return b.add(&prename{in: in, out: renameRel(in.rel(), x.As)}), nil
	case *ra.Join:
		l, err := b.build(x.L)
		if err != nil {
			return nil, err
		}
		r, err := b.build(x.R)
		if err != nil {
			return nil, err
		}
		return b.buildJoin(x, l, r)
	case *ra.Union:
		l, err := b.build(x.L)
		if err != nil {
			return nil, err
		}
		r, err := b.build(x.R)
		if err != nil {
			return nil, err
		}
		if !l.rel().Schema.UnionCompatible(r.rel().Schema) {
			return nil, fmt.Errorf("engine: union of incompatible schemas %s, %s", l.rel().Schema, r.rel().Schema)
		}
		n := &punion{l: l, r: r, out: NewRel[Count](l.rel().Schema)}
		for i, t := range l.rel().Tuples {
			n.out.Add(Counting, t, l.rel().Anns[i])
		}
		for i, t := range r.rel().Tuples {
			n.out.Add(Counting, t, r.rel().Anns[i])
		}
		return b.add(n), nil
	case *ra.Diff:
		l, err := b.build(x.L)
		if err != nil {
			return nil, err
		}
		r, err := b.build(x.R)
		if err != nil {
			return nil, err
		}
		if !l.rel().Schema.UnionCompatible(r.rel().Schema) {
			return nil, fmt.Errorf("engine: difference of incompatible schemas %s, %s", l.rel().Schema, r.rel().Schema)
		}
		return b.buildDiff(l, r), nil
	case *ra.GroupBy:
		in, err := b.build(x.In)
		if err != nil {
			return nil, err
		}
		return b.buildGroupBy(x, in)
	case *ra.EquiJoin:
		l, err := b.build(x.L)
		if err != nil {
			return nil, err
		}
		r, err := b.build(x.R)
		if err != nil {
			return nil, err
		}
		return b.buildEquiJoin(x, l, r)
	case *ra.Permute:
		in, err := b.build(x.In)
		if err != nil {
			return nil, err
		}
		// A positional permutation is a pproject whose indices were never
		// resolved by name.
		n := &pproject{in: in, idxs: x.Idxs, out: NewRel[Count](in.rel().Schema.Project(x.Idxs))}
		for i, t := range in.rel().Tuples {
			n.out.Add(Counting, t.Project(x.Idxs), in.rel().Anns[i])
		}
		return b.add(n), nil
	}
	return nil, fmt.Errorf("engine: unknown node type %T", q)
}

func (b *pbuilder) buildScan(x *ra.Rel) (pnode, error) {
	if n, ok := b.scans[x.Name]; ok {
		return n, nil
	}
	r := b.db.Relation(x.Name)
	if r == nil {
		return nil, fmt.Errorf("engine: unknown relation %q", x.Name)
	}
	n := &pscan{name: x.Name, out: NewRel[Count](r.Schema), pos: make(map[relation.TupleID]int, r.Len())}
	for i, t := range r.Tuples {
		n.out.Add(Counting, t, 1)
		n.pos[r.ID(i)] = n.out.Lookup(t)
	}
	b.scans[x.Name] = n
	b.add(n)
	return n, nil
}

func (b *pbuilder) buildSelect(x *ra.Select, in pnode) (pnode, error) {
	pred, err := ra.CompileExpr(x.Pred, in.rel().Schema, b.params)
	if err != nil {
		return nil, err
	}
	n := &pselect{in: in, pred: pred, out: NewRelCap[Count](in.rel().Schema, in.rel().Len())}
	for i, t := range in.rel().Tuples {
		v, err := pred(t)
		if err != nil {
			return nil, err
		}
		if ra.Truthy(v) {
			n.out.appendDistinct(t, in.rel().Anns[i])
		}
	}
	return b.add(n), nil
}

func (b *pbuilder) buildProject(x *ra.Project, in pnode) (pnode, error) {
	idxs, outSchema, err := projectPlan(x, in.rel().Schema)
	if err != nil {
		return nil, err
	}
	n := &pproject{in: in, idxs: idxs, out: NewRel[Count](outSchema)}
	for i, t := range in.rel().Tuples {
		n.out.Add(Counting, t.Project(idxs), in.rel().Anns[i])
	}
	return b.add(n), nil
}

func (b *pbuilder) buildJoin(x *ra.Join, l, r pnode) (pnode, error) {
	lrel, rrel := l.rel(), r.rel()
	n := &pjoin{l: l, r: r, lIdx: map[string][]int{}, rIdx: map[string][]int{}}
	var outSchema relation.Schema
	if x.Cond == nil {
		shared, rOnly := ra.NaturalJoinCols(lrel.Schema, rrel.Schema)
		attrs := make([]relation.Attribute, 0, len(lrel.Schema.Attrs)+len(rOnly))
		attrs = append(attrs, lrel.Schema.Attrs...)
		for _, j := range rOnly {
			attrs = append(attrs, rrel.Schema.Attrs[j])
		}
		outSchema = relation.Schema{Attrs: attrs}
		n.natural = true
		n.rOnly = rOnly
		n.lKeys = make([]int, len(shared))
		n.rKeys = make([]int, len(shared))
		for i, p := range shared {
			n.lKeys[i], n.rKeys[i] = p[0], p[1]
		}
		if len(shared) == 0 && crossExceedsBudget(lrel.Len(), rrel.Len(), b.opts.rowBudget()) {
			return nil, ErrRowBudget
		}
	} else {
		outSchema = lrel.Schema.Concat(rrel.Schema)
		var residual ra.Expr
		n.lKeys, n.rKeys, residual = EquiJoinPlan(x.Cond, lrel.Schema, rrel.Schema)
		if residual != nil {
			pred, err := ra.CompileExpr(residual, outSchema, b.params)
			if err != nil {
				return nil, err
			}
			n.pred = pred
		}
	}
	n.out = NewRel[Count](outSchema)
	n.sync()
	// Base evaluation: probe the retained right table in left order (the
	// serial hash join's order) or fall back to nested loops.
	var pairs int
	emit := func(li, ri int) error {
		if pairs++; pairs%stopPollStride == 0 {
			if err := b.opts.poll(); err != nil {
				return err
			}
		}
		c := Counting.Times(lrel.Anns[li], rrel.Anns[ri])
		if c == 0 {
			return nil
		}
		lt, rt := lrel.Tuples[li], rrel.Tuples[ri]
		if n.pred != nil {
			v, err := n.pred(lt.Concat(rt))
			if err != nil {
				return err
			}
			if !ra.Truthy(v) {
				return nil
			}
		}
		if n.out.Len() >= b.opts.rowBudget() {
			return ErrRowBudget
		}
		n.out.appendDistinct(n.outTuple(lt, rt), c)
		return nil
	}
	if len(n.lKeys) > 0 {
		for li, lt := range lrel.Tuples {
			k := lt.Project(n.lKeys)
			if hasNullValue(k) {
				continue
			}
			for _, ri := range n.rIdx[k.Key()] {
				if err := emit(li, ri); err != nil {
					return nil, err
				}
			}
		}
	} else {
		for li := range lrel.Tuples {
			for ri := range rrel.Tuples {
				if err := emit(li, ri); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.add(n), nil
}

// buildEquiJoin is buildJoin for a planner-emitted positional equi-join:
// always keyed, never a residual predicate, full concatenation kept.
func (b *pbuilder) buildEquiJoin(x *ra.EquiJoin, l, r pnode) (pnode, error) {
	lrel, rrel := l.rel(), r.rel()
	n := &pjoin{
		l: l, r: r, lIdx: map[string][]int{}, rIdx: map[string][]int{},
		lKeys: append([]int(nil), x.LKeys...),
		rKeys: append([]int(nil), x.RKeys...),
	}
	n.out = NewRel[Count](lrel.Schema.Concat(rrel.Schema))
	n.sync()
	var pairs int
	emit := func(li, ri int) error {
		if pairs++; pairs%stopPollStride == 0 {
			if err := b.opts.poll(); err != nil {
				return err
			}
		}
		c := Counting.Times(lrel.Anns[li], rrel.Anns[ri])
		if c == 0 {
			return nil
		}
		if n.out.Len() >= b.opts.rowBudget() {
			return ErrRowBudget
		}
		n.out.appendDistinct(n.outTuple(lrel.Tuples[li], rrel.Tuples[ri]), c)
		return nil
	}
	for li, lt := range lrel.Tuples {
		k := lt.Project(n.lKeys)
		if hasNullValue(k) {
			continue
		}
		for _, ri := range n.rIdx[k.Key()] {
			if err := emit(li, ri); err != nil {
				return nil, err
			}
		}
	}
	return b.add(n), nil
}

func (b *pbuilder) buildDiff(l, r pnode) pnode {
	lrel, rrel := l.rel(), r.rel()
	n := &pdiff{l: l, r: r, out: NewRelCap[Count](lrel.Schema, lrel.Len())}
	for i, t := range lrel.Tuples {
		ann := Counting.Minus(lrel.Anns[i], countOf(rrel, t))
		if ann == 0 {
			continue
		}
		n.out.appendDistinct(t, ann)
	}
	n.live = n.out.Len()
	b.add(n)
	return n
}

func (b *pbuilder) buildGroupBy(x *ra.GroupBy, in pnode) (pnode, error) {
	gIdx, aIdx, outSchema, err := groupPlan(x, in.rel().Schema)
	if err != nil {
		return nil, err
	}
	n := &pgroup{
		in: in, aggs: x.Aggs, gIdx: gIdx, aIdx: aIdx,
		out:    NewRel[Count](outSchema),
		groups: map[string][]int{}, keyTuples: map[string]relation.Tuple{},
		rows: map[string]relation.Tuple{},
	}
	inrel := in.rel()
	var order []string
	for p, t := range inrel.Tuples {
		key := t.Project(gIdx)
		ks := key.Key()
		if _, ok := n.keyTuples[ks]; !ok {
			n.keyTuples[ks] = key
			order = append(order, ks)
		}
		n.groups[ks] = append(n.groups[ks], p)
	}
	n.inSynced = inrel.Len()
	for _, ks := range order {
		members := make([]relation.Tuple, 0, len(n.groups[ks]))
		for _, p := range n.groups[ks] {
			members = append(members, inrel.Tuples[p])
		}
		row := n.keyTuples[ks].Clone()
		for i, a := range x.Aggs {
			v, err := computeAgg(a.Func, aIdx[i], members)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		n.out.appendDistinct(row, 1)
		n.rows[ks] = row
	}
	return b.add(n), nil
}

// PreparedDiff is the retained evaluation of Q1 − Q2 and Q2 − Q1 over a base
// instance, ready to answer signed update deltas (deletions, insertions,
// updates as delete+insert; see ApplyDelta in delta.go). It is NOT safe for
// concurrent use: ApplyDelta mutates lazily-synced indexes and Commit
// mutates retained outputs and — when insertions are involved — the base
// Database itself, which the prepared object must therefore own.
type PreparedDiff struct {
	db       *relation.Database
	d12, d21 *pdiff
	nodes    []pnode
	scans    map[string]*pscan
	opts     Options
	removed  map[relation.TupleID]bool
	epoch    int
	liveSize int
}

// PrepareDiff evaluates q1 and q2 once on db under the counting semiring
// (sharing base scans between the two queries) and retains the per-operator
// state needed to propagate deletion deltas. It returns ErrNotIncremental
// (wrapped) when the retained state cannot support delta arithmetic; other
// errors mirror a full evaluation's (unknown relations, row budget,
// incompatible schemas).
func PrepareDiff(q1, q2 ra.Node, db *relation.Database, params map[string]relation.Value, opts Options) (*PreparedDiff, error) {
	cat := Catalog{DB: db}
	if !opts.NoOptimize {
		q1 = Optimize(q1, cat)
		q2 = Optimize(q2, cat)
	}
	if !opts.NoPlan {
		// Join reordering is shared with the one-shot path, but the
		// Yannakakis semi-join pass is not: a deletion elsewhere can turn a
		// retained tuple dangling, so a semi-join-reduced retained state
		// cannot be maintained by local deltas.
		var err error
		if q1, err = planWith(q1, db, opts, false); err != nil {
			return nil, err
		}
		if q2, err = planWith(q2, db, opts, false); err != nil {
			return nil, err
		}
	}
	b := &pbuilder{db: db, params: params, opts: opts, scans: map[string]*pscan{}}
	n1, err := b.build(q1)
	if err != nil {
		return nil, err
	}
	n2, err := b.build(q2)
	if err != nil {
		return nil, err
	}
	if !n1.rel().Schema.UnionCompatible(n2.rel().Schema) {
		return nil, fmt.Errorf("engine: difference of incompatible schemas %s, %s", n1.rel().Schema, n2.rel().Schema)
	}
	d12 := b.buildDiff(n1, n2)
	d21 := b.buildDiff(n2, n1)
	// Oversized derivation counts would make the signed delta arithmetic
	// unsound: saturation is not invertible, and delta products of counts
	// near the int64 range overflow silently. maxSafeCount keeps every
	// product and partial sum the delta rules can form exactly
	// representable; plans beyond it fall back.
	for _, n := range b.nodes {
		for _, c := range n.rel().Anns {
			if c > maxSafeCount {
				return nil, fmt.Errorf("%w: derivation counts too large for exact delta arithmetic", ErrNotIncremental)
			}
		}
	}
	return &PreparedDiff{
		db: db, d12: d12.(*pdiff), d21: d21.(*pdiff), nodes: b.nodes,
		scans: b.scans, opts: opts,
		removed: map[relation.TupleID]bool{}, liveSize: db.Size(),
	}, nil
}

// Epoch counts committed deltas; it identifies the base instance version.
func (p *PreparedDiff) Epoch() int { return p.epoch }

// BaseSize is the number of tuples in the current base instance.
func (p *PreparedDiff) BaseSize() int { return p.liveSize }

// Disagrees reports whether Q1 and Q2 differ on the current base instance.
func (p *PreparedDiff) Disagrees() bool { return p.d12.live > 0 || p.d21.live > 0 }

// LiveIDs returns the identifiers of the current base instance, sorted.
func (p *PreparedDiff) LiveIDs() []relation.TupleID {
	out := make([]relation.TupleID, 0, p.liveSize)
	for _, id := range p.db.AllIDs() {
		if !p.removed[id] {
			out = append(out, id)
		}
	}
	return out
}

// Diffs materializes Q1 − Q2 and Q2 − Q1 on the current base instance.
func (p *PreparedDiff) Diffs() (*relation.Relation, *relation.Relation) {
	return materializeDiff(p.d12.out, nil), materializeDiff(p.d21.out, nil)
}

func materializeDiff(base *Rel[Count], d *Rel[Count]) *relation.Relation {
	out := relation.NewRelation("−", base.Schema)
	//lint:budgeted one pass over an already-materialized output; deltaOf is an O(1) annotation lookup, not delta propagation
	for i, t := range base.Tuples {
		if exactAdd(base.Anns[i], deltaOf(d, t)) > 0 {
			out.Append(t)
		}
	}
	if d != nil {
		for i, t := range d.Tuples {
			if d.Anns[i] > 0 && base.Lookup(t) < 0 {
				out.Append(t)
			}
		}
	}
	return out
}

// DeltaResult is the effect of one signed update delta on the two
// difference directions, relative to the prepared base instance at the
// epoch it was computed. Multiple uncommitted results from the same epoch
// are independent candidates; Commit folds one of them into the base.
type DeltaResult struct {
	p              *PreparedDiff
	epoch          int
	ctx            *deltaCtx
	inserts        []Insert
	insertedIDs    []relation.TupleID // assigned at Commit, caller order
	size12, size21 int
	committed      bool
}

// supportShift counts how many tuples enter minus leave a retained output
// under a signed delta.
func supportShift(base *Rel[Count], d *Rel[Count]) int {
	shift := 0
	for i, t := range d.Tuples {
		ch := d.Anns[i]
		if ch == 0 {
			continue
		}
		old := countOf(base, t)
		now := exactAdd(old, ch)
		switch {
		case old == 0 && now != 0:
			shift++
		case old != 0 && now == 0:
			shift--
		}
	}
	return shift
}

// Size12 is |Q1 − Q2| on the delta's subinstance; Size21 the reverse.
func (r *DeltaResult) Size12() int { return r.size12 }

// Size21 is |Q2 − Q1| on the delta's subinstance.
func (r *DeltaResult) Size21() int { return r.size21 }

// Disagrees reports whether the queries differ on the delta's subinstance.
func (r *DeltaResult) Disagrees() bool { return r.size12 > 0 || r.size21 > 0 }

// Diff12 materializes Q1 − Q2 on the delta's subinstance. After this
// result was committed its delta is already folded into the base, so the
// base materializes as-is; a result superseded by another commit returns
// ErrStaleDelta (re-applying its delta against the advanced base would
// double-count the changes).
func (r *DeltaResult) Diff12() (*relation.Relation, error) {
	return r.materialize(r.p.d12)
}

// Diff21 materializes Q2 − Q1 on the delta's subinstance.
func (r *DeltaResult) Diff21() (*relation.Relation, error) {
	return r.materialize(r.p.d21)
}

func (r *DeltaResult) materialize(n *pdiff) (*relation.Relation, error) {
	if r.committed {
		return materializeDiff(n.out, nil), nil
	}
	if r.epoch != r.p.epoch {
		return nil, ErrStaleDelta
	}
	return materializeDiff(n.out, r.ctx.memo[n]), nil
}

// Commit folds the delta into the retained state: the delta's updated
// instance becomes the new base, and subsequent ApplyDelta calls are
// relative to it. Insertions are folded into the base Database, assigning
// fresh TupleIDs in the order they were passed to ApplyDelta (see
// InsertedIDs), and registered with the retained scan position maps so
// later deltas can delete them by id. A result computed before another
// Commit advanced the state returns ErrStaleDelta — committing it would
// apply changes against the wrong base.
func (r *DeltaResult) Commit() error {
	if r.epoch != r.p.epoch {
		return ErrStaleDelta
	}
	for _, n := range r.p.nodes {
		n.commit(r.ctx)
	}
	for _, id := range r.ctx.removed {
		r.p.removed[id] = true
	}
	if len(r.inserts) > 0 {
		r.insertedIDs = make([]relation.TupleID, 0, len(r.inserts))
		for _, ins := range r.inserts {
			id := r.p.db.Insert(ins.Rel, ins.Tuple)
			r.insertedIDs = append(r.insertedIDs, id)
			if sc, ok := r.p.scans[ins.Rel]; ok {
				sc.pos[id] = sc.out.Lookup(ins.Tuple)
			}
		}
	}
	r.p.liveSize += len(r.inserts) - len(r.ctx.removed)
	r.p.epoch++
	r.committed = true
	return nil
}
