package engine

import (
	"fmt"
	"math"
	"math/bits"
	"strings"

	"repro/internal/ra"
	"repro/internal/relation"
)

// This file is the cost-based join planner that sits between Optimize and
// the physical operators. It finds maximal conjunctive join regions (pure
// Join subtrees; unions, differences, γ and residual θ-predicates are
// planning barriers), flattens each into a join hypergraph, estimates
// intermediate sizes with the classic distinct-count formula
// |A ⋈ B| = |A|·|B| / ∏ max(d_A, d_B), and reorders the region — exact DP
// over connected subsets up to PlanDPMaxLeaves inputs, greedy above that —
// into a bushy tree of positional EquiJoin nodes, closed off by a Permute
// restoring the original output columns. When the hypergraph GYO-reduces to
// a join tree (α-acyclic), a Yannakakis pass first semi-join reduces the
// leaves along that tree, so no join input carries tuples that cannot reach
// the output. The planner only reorders and filters — it never changes
// which input pairs ⊗-combine into which output tuples — so annotations are
// preserved for every semiring.

// planMinLeaves is the smallest join region worth reordering: with two
// inputs there is only one join (up to commutation the hash join does not
// care about).
const planMinLeaves = 3

// planMaxLeaves caps region size (leaf sets are bitmasks).
const planMaxLeaves = 64

// PlanDPMaxLeaves bounds the exact dynamic program over connected subsets
// (~3^n subset splits); larger regions use the greedy min-intermediate
// heuristic.
var PlanDPMaxLeaves = 10

// PlanRefuseFactor guards the pre-execution budget check: the planner
// refuses to execute only when its best order's estimated peak intermediate
// exceeds the row budget by this factor, leaving headroom for estimation
// error (a misestimate must not reject a feasible query).
var PlanRefuseFactor = 8.0

// Statistics-free defaults (unknown base relations, leaves the estimator
// cannot peel to a base relation, planning without an instance).
const (
	defaultLeafRows = 1000.0
	defaultDistinct = 100.0
)

// PlanReport collects what the planner decided — per join region: the leaf
// inputs, the chosen order, per-join cardinality estimates, whether the
// acyclic (Yannakakis) path fired — and, when the planned tree is then
// executed with the same report attached as Options.Observer, the actual
// join cardinalities.
type PlanReport struct {
	Regions []*RegionReport

	byNode map[ra.Node]*JoinReport
}

// RegionReport describes one join region.
type RegionReport struct {
	// Leaves labels the region's inputs in original (parser) order.
	Leaves []string
	// Order is the chosen join tree, e.g. "((customer ⋈ orders) ⋈ lineitem)".
	Order string
	// Planned is false when the region was left in its original shape;
	// Reason says why.
	Planned bool
	Reason  string
	// Acyclic reports whether the GYO reduction succeeded and the
	// Yannakakis semi-join pass was applied; SemiJoins counts the emitted
	// semi-join operators (2·(n−1) for a full reduction).
	Acyclic   bool
	SemiJoins int
	// EstPeakRows is the largest estimated intermediate of the chosen tree.
	EstPeakRows float64
	// Joins lists the region's joins bottom-up (left subtree first).
	Joins []*JoinReport
}

// JoinReport is one join of a planned region.
type JoinReport struct {
	// Expr renders the join's subtree, e.g. "(customer ⋈ orders)".
	Expr string
	// EstRows is the planner's cardinality estimate for this join's output.
	EstRows float64
	// ActualRows is the observed output cardinality, filled in when the
	// planned tree executes under an Options.Observer; -1 until then.
	ActualRows int64
}

func (r *PlanReport) noteJoin(n ra.Node, jr *JoinReport) {
	if r.byNode == nil {
		r.byNode = map[ra.Node]*JoinReport{}
	}
	r.byNode[n] = jr
}

// observe records an executed join node's actual output cardinality.
func (r *PlanReport) observe(n ra.Node, rows int) {
	if r == nil || r.byNode == nil {
		return
	}
	if jr, ok := r.byNode[n]; ok {
		jr.ActualRows = int64(rows)
	}
}

// Plan applies the cost-based join planner to an (already optimized) query
// against an instance. Statistics come from opts.Stats when set, else from
// the instance's cached statistics (StatsOf). The returned tree evaluates
// to exactly the same annotated result as q under every semiring; the only
// error is a pre-execution ErrRowBudget when even the best join order's
// estimated peak intermediate overshoots the row budget by
// PlanRefuseFactor. Planning a nil database, or an already planned tree, is
// a no-op.
func Plan(q ra.Node, db *relation.Database, opts Options) (ra.Node, error) {
	return planWith(q, db, opts, true)
}

// ExplainPlan optimizes and plans a query, returning the planned tree and
// its report. Executing the returned tree with Options{NoOptimize: true,
// NoPlan: true, Observer: report} fills in the actual cardinalities.
func ExplainPlan(q ra.Node, db *relation.Database, opts Options) (ra.Node, *PlanReport, error) {
	report := &PlanReport{}
	opts.Observer = report
	if !opts.NoOptimize {
		q = Optimize(q, Catalog{DB: db})
	}
	planned, err := planWith(q, db, opts, true)
	return planned, report, err
}

// planWith is the planner entry point. allowSemi gates the Yannakakis
// semi-join pass: the delta-incremental prepared path must plan without it
// (a semi-join-reduced retained state is not sound under deletions — a
// deletion elsewhere can turn a retained tuple dangling, but never the
// other way around, so the reduction cannot be maintained by local deltas).
// The join order itself is shared by every path.
func planWith(q ra.Node, db *relation.Database, opts Options, allowSemi bool) (ra.Node, error) {
	if db == nil {
		return q, nil
	}
	st := opts.Stats
	if st == nil {
		st = StatsOf(db)
	}
	p := &planner{
		cat:       Catalog{DB: db},
		stats:     st,
		budget:    opts.rowBudget(),
		allowSemi: allowSemi,
		report:    opts.Observer,
	}
	return p.walk(q)
}

type planner struct {
	cat       Catalog
	stats     *Stats
	budget    int
	allowSemi bool
	report    *PlanReport
}

// walk rebuilds the tree, planning every maximal join region it meets.
// Nodes the planner itself emits (EquiJoin, Semi, Permute) are returned
// unchanged, which makes planning idempotent.
func (p *planner) walk(n ra.Node) (ra.Node, error) {
	switch x := n.(type) {
	case *ra.Join:
		return p.region(x)
	case *ra.Select:
		in, err := p.walk(x.In)
		if err != nil {
			return nil, err
		}
		if in == x.In {
			return x, nil
		}
		return &ra.Select{Pred: x.Pred, In: in}, nil
	case *ra.Project:
		in, err := p.walk(x.In)
		if err != nil {
			return nil, err
		}
		if in == x.In {
			return x, nil
		}
		return &ra.Project{Cols: x.Cols, In: in}, nil
	case *ra.Rename:
		in, err := p.walk(x.In)
		if err != nil {
			return nil, err
		}
		if in == x.In {
			return x, nil
		}
		return &ra.Rename{As: x.As, In: in}, nil
	case *ra.Union:
		l, err := p.walk(x.L)
		if err != nil {
			return nil, err
		}
		r, err := p.walk(x.R)
		if err != nil {
			return nil, err
		}
		if l == x.L && r == x.R {
			return x, nil
		}
		return &ra.Union{L: l, R: r}, nil
	case *ra.Diff:
		l, err := p.walk(x.L)
		if err != nil {
			return nil, err
		}
		r, err := p.walk(x.R)
		if err != nil {
			return nil, err
		}
		if l == x.L && r == x.R {
			return x, nil
		}
		return &ra.Diff{L: l, R: r}, nil
	case *ra.GroupBy:
		in, err := p.walk(x.In)
		if err != nil {
			return nil, err
		}
		if in == x.In {
			return x, nil
		}
		return &ra.GroupBy{GroupCols: x.GroupCols, Aggs: x.Aggs, In: in}, nil
	}
	return n, nil
}

// region plans the maximal join region rooted at j, or keeps its shape
// (still planning nested regions inside the join's subtrees) when the
// region is not a reorderable conjunctive equi-join component.
func (p *planner) region(j *ra.Join) (ra.Node, error) {
	g, ok := ra.FlattenJoin(j, p.cat)
	if !ok {
		return p.keepJoin(j, "not a pure conjunctive equi-join region (residual θ-predicate or cross product)")
	}
	if len(g.Leaves) < planMinLeaves {
		return p.keepJoin(j, "")
	}
	if len(g.Leaves) > planMaxLeaves {
		return p.keepJoin(j, fmt.Sprintf("region has %d inputs; planner cap is %d", len(g.Leaves), planMaxLeaves))
	}
	return p.planRegion(j, g)
}

// keepJoin leaves a join node's shape alone but recurses into its subtrees
// (they may contain plannable regions below barriers or failed conditions).
// A non-empty reason is reported for observability.
func (p *planner) keepJoin(j *ra.Join, reason string) (ra.Node, error) {
	if reason != "" && p.report != nil {
		p.report.Regions = append(p.report.Regions, &RegionReport{
			Planned: false,
			Reason:  reason,
			Order:   opName(j),
		})
	}
	l, err := p.walk(j.L)
	if err != nil {
		return nil, err
	}
	r, err := p.walk(j.R)
	if err != nil {
		return nil, err
	}
	if l == j.L && r == j.R {
		return j, nil
	}
	return &ra.Join{L: l, R: r, Cond: j.Cond}, nil
}

func (p *planner) planRegion(orig *ra.Join, g *ra.JoinGraph) (ra.Node, error) {
	n := len(g.Leaves)
	// Plan inside each leaf first: a barrier leaf (π, ∪, −, γ over further
	// joins) may contain nested regions of its own.
	leafNodes := make([]ra.Node, n)
	for i, lf := range g.Leaves {
		ln, err := p.walk(lf.Node)
		if err != nil {
			return nil, err
		}
		leafNodes[i] = ln
	}
	info := p.leafInfos(g)
	classes := buildClasses(g, info)
	var tree *ptree
	if n <= PlanDPMaxLeaves {
		tree = dpOrder(n, info, classes)
	} else {
		tree = greedyOrder(n, info, classes)
	}
	if tree == nil {
		// FlattenJoin guarantees a connected hypergraph, so this is a
		// defensive fallback only.
		return p.keepJoin(orig, "no connected join order found")
	}

	// Acyclic fast path: GYO-reduce; when a join tree exists, Yannakakis
	// semi-join reduce the leaves along it (children into parents bottom-up,
	// parents into children top-down — a full reducer).
	acyclic := false
	semis := 0
	reduced := leafNodes
	if p.allowSemi {
		if order, ok := gyoJoinTree(n, classes); ok {
			acyclic = true
			reduced, semis = yannakakisReduce(leafNodes, g, classes, order)
		}
	}

	// Pre-execution budget check (satellite fix): when even the cheapest
	// order is estimated to blow the row budget by PlanRefuseFactor, fail
	// with the structured budget error now instead of mid-join. Skipped on
	// the acyclic path: the semi-join reduction can shrink inputs far below
	// anything the unreduced estimates predict.
	peak := treePeak(tree)
	if !acyclic && peak > PlanRefuseFactor*float64(p.budget) {
		return nil, fmt.Errorf("%w: planner estimates a %.3g-row intermediate for the best join order (budget %d rows)", ErrRowBudget, peak, p.budget)
	}

	var rr *RegionReport
	if p.report != nil {
		labels := make([]string, n)
		for i, lf := range g.Leaves {
			labels[i] = leafLabel(lf.Node)
		}
		rr = &RegionReport{
			Leaves:      labels,
			Order:       orderString(tree, g),
			Planned:     true,
			Acyclic:     acyclic,
			SemiJoins:   semis,
			EstPeakRows: peak,
		}
		p.report.Regions = append(p.report.Regions, rr)
	}

	a := &assembler{g: g, leaves: reduced, classes: classes, enforced: make([]bool, len(g.Eqs)), rr: rr, report: p.report}
	root, cols, err := a.build(tree)
	if err != nil {
		return nil, err
	}
	for ei := range g.Eqs {
		if !a.enforced[ei] {
			// Every original equality has both columns inside the full
			// region, so assembly must have enforced it; anything else is a
			// planner bug — keep the original tree rather than risk a wrong
			// result.
			return p.keepJoin(orig, "internal: join constraint not covered by the reordered tree")
		}
	}
	// Restore the original output columns (and column order).
	pos := make(map[int]int, len(cols))
	for i, c := range cols {
		pos[c] = i
	}
	idxs := make([]int, len(g.Out))
	identity := len(cols) == len(g.Out)
	for i, c := range g.Out {
		idxs[i] = pos[c]
		if idxs[i] != i {
			identity = false
		}
	}
	if identity {
		return root, nil
	}
	return &ra.Permute{In: root, Idxs: idxs}, nil
}

// leafInfo is the planner's estimate of one leaf input: row count and
// per-column distinct counts (≥ 1, ≤ rows after clamping).
type leafInfo struct {
	rows float64
	dist []float64
}

func (p *planner) leafInfos(g *ra.JoinGraph) []leafInfo {
	out := make([]leafInfo, len(g.Leaves))
	for i, lf := range g.Leaves {
		rows, dist := p.leafStats(lf.Node)
		if rows < 1 {
			rows = 1
		}
		if len(dist) != lf.Schema.Arity() {
			dist = fillDist(lf.Schema.Arity(), defaultDistinct)
		}
		for c := range dist {
			if dist[c] > rows {
				dist[c] = rows
			}
			if dist[c] < 1 {
				dist[c] = 1
			}
		}
		out[i] = leafInfo{rows: rows, dist: dist}
	}
	return out
}

// leafStats estimates a leaf's cardinality by peeling the wrappers the
// optimizer leaves on base relations — renames preserve positions,
// projections remap them (and deduplicate under set semantics), selections
// scale rows by per-conjunct selectivities. Anything else (a barrier
// operator) falls back to the statistics-free defaults.
func (p *planner) leafStats(n ra.Node) (float64, []float64) {
	switch x := n.(type) {
	case *ra.Rel:
		rs := p.stats.Rel(x.Name)
		if rs == nil {
			if schema, err := ra.OutSchema(n, p.cat); err == nil {
				return defaultLeafRows, fillDist(schema.Arity(), defaultDistinct)
			}
			return defaultLeafRows, nil
		}
		rows := float64(rs.Rows)
		dist := make([]float64, len(rs.Cols))
		for c, cs := range rs.Cols {
			dist[c] = cs.Distinct
		}
		return rows, dist
	case *ra.Rename:
		return p.leafStats(x.In)
	case *ra.Project:
		rows, dist := p.leafStats(x.In)
		childSchema, err := ra.OutSchema(x.In, p.cat)
		if err != nil || len(dist) != childSchema.Arity() {
			break
		}
		idxs, _, err := projectPlan(x, childSchema)
		if err != nil {
			break
		}
		out := make([]float64, len(idxs))
		prod := 1.0
		for i, j := range idxs {
			out[i] = dist[j]
			if prod < rows {
				prod *= math.Max(dist[j], 1)
			}
		}
		// Set-semantics projection deduplicates: at most the product of the
		// kept columns' distinct counts survives.
		if prod < rows {
			rows = prod
		}
		return rows, out
	case *ra.Select:
		rows, dist := p.leafStats(x.In)
		schema, err := ra.OutSchema(x.In, p.cat)
		if err != nil || len(dist) != schema.Arity() {
			break
		}
		for _, c := range conjuncts(x.Pred) {
			sel, eqCol := selectivityOf(c, schema, dist)
			rows *= sel
			if eqCol >= 0 {
				dist[eqCol] = 1
			}
		}
		if rows < 1 {
			rows = 1
		}
		return rows, dist
	}
	if schema, err := ra.OutSchema(n, p.cat); err == nil {
		return defaultLeafRows, fillDist(schema.Arity(), defaultDistinct)
	}
	return defaultLeafRows, nil
}

// selectivityOf estimates one conjunct's selectivity: column = literal
// keeps 1/distinct of the rows (and collapses the column to one value,
// reported via eqCol), range comparisons keep a third, everything else
// half. Parameters count as literals — their value is unknown but the
// shape of the estimate is the same.
func selectivityOf(e ra.Expr, schema relation.Schema, dist []float64) (sel float64, eqCol int) {
	eqCol = -1
	c, ok := e.(*ra.Cmp)
	if !ok {
		return 0.5, -1
	}
	attr := attrCol(c.L, schema)
	other := c.R
	if attr < 0 {
		attr = attrCol(c.R, schema)
		other = c.L
	}
	if attr < 0 {
		return 0.5, -1
	}
	switch other.(type) {
	case *ra.Const, *ra.Param:
	default:
		// column-vs-column or computed comparand
		if c.Op == ra.EQ {
			return 1 / math.Max(dist[attr], 1), -1
		}
		return 1.0 / 3, -1
	}
	switch c.Op {
	case ra.EQ:
		return 1 / math.Max(dist[attr], 1), attr
	case ra.NE:
		return 1, -1
	case ra.LT, ra.LE, ra.GT, ra.GE:
		return 1.0 / 3, -1
	}
	return 0.5, -1
}

func attrCol(e ra.Expr, schema relation.Schema) int {
	a, ok := e.(*ra.AttrRef)
	if !ok {
		return -1
	}
	i, err := schema.Resolve(a.Name)
	if err != nil {
		return -1
	}
	return i
}

func fillDist(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// jclass is one equivalence class of join columns (a hypergraph vertex):
// the global columns the region's equalities force equal, the set of leaves
// touched, and the per-leaf minimum distinct count of its member columns.
type jclass struct {
	cols     []int
	leafMask uint64
	dist     []float64
}

// buildClasses unions the equality pairs into equivalence classes. Every
// class spans at least two leaves (equalities always cross leaves).
func buildClasses(g *ra.JoinGraph, info []leafInfo) []jclass {
	parent := make([]int, len(g.Cols))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	for _, eq := range g.Eqs {
		a, b := find(eq[0]), find(eq[1])
		if a != b {
			parent[b] = a
		}
	}
	idx := map[int]int{}
	var classes []jclass
	for col := range g.Cols {
		// Only columns that appear in some equality belong to a class.
		if !colInEqs(g, col) {
			continue
		}
		root := find(col)
		ci, ok := idx[root]
		if !ok {
			idx[root] = len(classes)
			classes = append(classes, jclass{dist: fillDist(len(g.Leaves), math.Inf(1))})
			ci = idx[root]
		}
		leaf := g.LeafOf(col)
		c := &classes[ci]
		c.cols = append(c.cols, col)
		c.leafMask |= 1 << leaf
		d := info[leaf].dist[col-g.Leaves[leaf].Off]
		if d < c.dist[leaf] {
			c.dist[leaf] = d
		}
	}
	return classes
}

func colInEqs(g *ra.JoinGraph, col int) bool {
	for _, eq := range g.Eqs {
		if eq[0] == col || eq[1] == col {
			return true
		}
	}
	return false
}

// classDistinct estimates the distinct count of a class within a subplan:
// the smallest member-column distinct among the subplan's leaves, capped by
// the subplan's estimated rows.
func classDistinct(c *jclass, mask uint64, rows float64) float64 {
	d := math.Inf(1)
	m := c.leafMask & mask
	for m != 0 {
		i := bits.TrailingZeros64(m)
		m &= m - 1
		if c.dist[i] < d {
			d = c.dist[i]
		}
	}
	if rows < d {
		d = rows
	}
	if d < 1 || math.IsInf(d, 1) {
		d = 1
	}
	return d
}

// estimateJoin is the classic distinct-count formula over every class
// spanning the two sides.
func estimateJoin(classes []jclass, a, b uint64, aRows, bRows float64) float64 {
	rows := aRows * bRows
	for i := range classes {
		c := &classes[i]
		if c.leafMask&a != 0 && c.leafMask&b != 0 {
			da := classDistinct(c, a, aRows)
			db := classDistinct(c, b, bRows)
			rows /= math.Max(da, db)
		}
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

func joinableMasks(classes []jclass, a, b uint64) bool {
	for i := range classes {
		if classes[i].leafMask&a != 0 && classes[i].leafMask&b != 0 {
			return true
		}
	}
	return false
}

// ptree is a join order: a binary tree over leaf indices with per-subtree
// cardinality estimates.
type ptree struct {
	leaf int // leaf index; -1 for internal nodes
	l, r *ptree
	mask uint64
	rows float64
}

func leafTree(i int, info []leafInfo) *ptree {
	return &ptree{leaf: i, mask: 1 << i, rows: info[i].rows}
}

// dpOrder is the exact dynamic program: best[mask] is the cheapest bushy
// tree joining the leaves of mask, where cost is the sum of estimated
// intermediate sizes and only connected splits (some class spans both
// halves) are considered. Submask enumeration is canonicalized by requiring
// the half containing mask's lowest bit to be the left side.
func dpOrder(n int, info []leafInfo, classes []jclass) *ptree {
	full := uint64(1)<<n - 1
	type entry struct {
		rows, cost float64
		l, r       uint64
	}
	best := make([]entry, full+1)
	for m := range best {
		best[m].cost = math.Inf(1)
	}
	for i := 0; i < n; i++ {
		best[1<<i] = entry{rows: info[i].rows}
	}
	for mask := uint64(3); mask <= full; mask++ {
		if bits.OnesCount64(mask) < 2 {
			continue
		}
		lsb := mask & -mask
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			if sub&lsb == 0 {
				continue
			}
			other := mask ^ sub
			if math.IsInf(best[sub].cost, 1) || math.IsInf(best[other].cost, 1) {
				continue
			}
			if !joinableMasks(classes, sub, other) {
				continue
			}
			est := estimateJoin(classes, sub, other, best[sub].rows, best[other].rows)
			cost := best[sub].cost + best[other].cost + est
			if cost < best[mask].cost {
				best[mask] = entry{rows: est, cost: cost, l: sub, r: other}
			}
		}
	}
	if math.IsInf(best[full].cost, 1) {
		return nil
	}
	var toTree func(mask uint64) *ptree
	toTree = func(mask uint64) *ptree {
		if bits.OnesCount64(mask) == 1 {
			return leafTree(bits.TrailingZeros64(mask), info)
		}
		e := best[mask]
		return &ptree{leaf: -1, l: toTree(e.l), r: toTree(e.r), mask: mask, rows: e.rows}
	}
	return toTree(full)
}

// greedyOrder repeatedly merges the joinable pair of subplans with the
// smallest estimated join output — the fallback above PlanDPMaxLeaves.
func greedyOrder(n int, info []leafInfo, classes []jclass) *ptree {
	act := make([]*ptree, n)
	for i := range act {
		act[i] = leafTree(i, info)
	}
	for len(act) > 1 {
		bi, bj, bEst := -1, -1, math.Inf(1)
		for i := 0; i < len(act); i++ {
			for j := i + 1; j < len(act); j++ {
				if !joinableMasks(classes, act[i].mask, act[j].mask) {
					continue
				}
				est := estimateJoin(classes, act[i].mask, act[j].mask, act[i].rows, act[j].rows)
				if est < bEst {
					bi, bj, bEst = i, j, est
				}
			}
		}
		if bi < 0 {
			return nil // disconnected (cannot happen for flattened regions)
		}
		merged := &ptree{leaf: -1, l: act[bi], r: act[bj], mask: act[bi].mask | act[bj].mask, rows: bEst}
		act[bi] = merged
		act = append(act[:bj], act[bj+1:]...)
	}
	return act[0]
}

// treePeak is the largest estimated intermediate of a join tree.
func treePeak(t *ptree) float64 {
	if t.leaf >= 0 {
		return 0
	}
	peak := t.rows
	if lp := treePeak(t.l); lp > peak {
		peak = lp
	}
	if rp := treePeak(t.r); rp > peak {
		peak = rp
	}
	return peak
}

// gyoJoinTree runs the GYO reduction on the region's hyperedges (one edge
// per leaf, vertices are the join classes): repeatedly drop vertices that
// occur in a single remaining edge, then remove any edge whose remaining
// vertices are covered by another edge, recording (removed edge, witness)
// as a join-tree edge. The hypergraph is α-acyclic exactly when one edge
// remains; the recorded pairs then form a join tree rooted at the survivor,
// in child-before-parent removal order.
func gyoJoinTree(n int, classes []jclass) ([][2]int, bool) {
	edges := make([]map[int]bool, n)
	for e := range edges {
		edges[e] = map[int]bool{}
	}
	for ci := range classes {
		m := classes[ci].leafMask
		for m != 0 {
			e := bits.TrailingZeros64(m)
			m &= m - 1
			edges[e][ci] = true
		}
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	aliveCount := n
	var order [][2]int
	for aliveCount > 1 {
		changed := false
		for ci := range classes {
			cnt, last := 0, -1
			for e := 0; e < n; e++ {
				if alive[e] && edges[e][ci] {
					cnt++
					last = e
				}
			}
			if cnt == 1 {
				delete(edges[last], ci)
				changed = true
			}
		}
		for e := 0; e < n && aliveCount > 1; e++ {
			if !alive[e] {
				continue
			}
			for w := 0; w < n; w++ {
				if w == e || !alive[w] {
					continue
				}
				if subsetOf(edges[e], edges[w]) {
					alive[e] = false
					aliveCount--
					order = append(order, [2]int{e, w})
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	return order, aliveCount == 1
}

func subsetOf(a, b map[int]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// yannakakisReduce emits the full-reducer semi-join program over the join
// tree: in removal order every removed child filters its witness parent
// (bottom-up), then in reverse order every fully-reduced parent filters its
// children (top-down). Reduced leaves are shared as a DAG — a parent's
// reduced form appears in each child's chain and in the final join tree —
// which the evaluator de-duplicates by node identity.
func yannakakisReduce(leafNodes []ra.Node, g *ra.JoinGraph, classes []jclass, order [][2]int) ([]ra.Node, int) {
	red := append([]ra.Node(nil), leafNodes...)
	semis := 0
	semi := func(l ra.Node, lLeaf int, r ra.Node, rLeaf int) ra.Node {
		var lk, rk []int
		for ci := range classes {
			c := &classes[ci]
			if c.leafMask&(1<<lLeaf) != 0 && c.leafMask&(1<<rLeaf) != 0 {
				lk = append(lk, repCol(c, lLeaf, g))
				rk = append(rk, repCol(c, rLeaf, g))
			}
		}
		if len(lk) == 0 {
			return l
		}
		semis++
		return &ra.Semi{L: l, R: r, LKeys: lk, RKeys: rk}
	}
	for _, p := range order {
		e, w := p[0], p[1]
		red[w] = semi(red[w], w, red[e], e)
	}
	for i := len(order) - 1; i >= 0; i-- {
		e, w := order[i][0], order[i][1]
		red[e] = semi(red[e], e, red[w], w)
	}
	return red, semis
}

// repCol returns a class's representative column within a leaf, as a
// position in the leaf's schema.
func repCol(c *jclass, leaf int, g *ra.JoinGraph) int {
	for _, col := range c.cols {
		if g.LeafOf(col) == leaf {
			return col - g.Leaves[leaf].Off
		}
	}
	return -1 // unreachable: callers check c.leafMask first
}

// assembler turns a join order into EquiJoin nodes, threading the original
// equality constraints: every equality is enforced as a hash-key pair at
// the lowest tree node where both its columns are available (they always
// land on opposite sides there), and classes spanning a node without a
// crossing original equality contribute a transitively-implied
// representative pair so every join has keys.
type assembler struct {
	g        *ra.JoinGraph
	leaves   []ra.Node
	classes  []jclass
	enforced []bool
	rr       *RegionReport
	report   *PlanReport
}

func (a *assembler) build(t *ptree) (ra.Node, []int, error) {
	if t.leaf >= 0 {
		lf := a.g.Leaves[t.leaf]
		cols := make([]int, lf.Schema.Arity())
		for i := range cols {
			cols[i] = lf.Off + i
		}
		return a.leaves[t.leaf], cols, nil
	}
	ln, lcols, err := a.build(t.l)
	if err != nil {
		return nil, nil, err
	}
	rn, rcols, err := a.build(t.r)
	if err != nil {
		return nil, nil, err
	}
	lpos := make(map[int]int, len(lcols))
	for i, c := range lcols {
		lpos[c] = i
	}
	rpos := make(map[int]int, len(rcols))
	for i, c := range rcols {
		rpos[c] = i
	}
	var lk, rk []int
	crossed := make(map[int]bool) // class index → keyed at this node
	classAt := func(col int) int {
		for ci := range a.classes {
			for _, c := range a.classes[ci].cols {
				if c == col {
					return ci
				}
			}
		}
		return -1
	}
	for ei, eq := range a.g.Eqs {
		if a.enforced[ei] {
			continue
		}
		pa, aInL := lpos[eq[0]]
		pb, bInR := rpos[eq[1]]
		if aInL && bInR {
			lk = append(lk, pa)
			rk = append(rk, pb)
			a.enforced[ei] = true
			crossed[classAt(eq[0])] = true
			continue
		}
		pa2, aInR := rpos[eq[0]]
		pb2, bInL := lpos[eq[1]]
		if bInL && aInR {
			lk = append(lk, pb2)
			rk = append(rk, pa2)
			a.enforced[ei] = true
			crossed[classAt(eq[0])] = true
		}
	}
	for ci := range a.classes {
		c := &a.classes[ci]
		if crossed[ci] || c.leafMask&t.l.mask == 0 || c.leafMask&t.r.mask == 0 {
			continue
		}
		// Transitively implied: the class spans both sides but none of its
		// original equalities cross here. Every member column is equal in
		// the final result, so filtering early on representatives is sound.
		lc, rc := -1, -1
		for _, col := range c.cols {
			if p, ok := lpos[col]; ok && lc < 0 {
				lc = p
			}
			if p, ok := rpos[col]; ok && rc < 0 {
				rc = p
			}
		}
		if lc >= 0 && rc >= 0 {
			lk = append(lk, lc)
			rk = append(rk, rc)
		}
	}
	node := &ra.EquiJoin{L: ln, R: rn, LKeys: lk, RKeys: rk}
	cols := make([]int, 0, len(lcols)+len(rcols))
	cols = append(cols, lcols...)
	cols = append(cols, rcols...)
	if a.rr != nil {
		jr := &JoinReport{Expr: orderString(t, a.g), EstRows: t.rows, ActualRows: -1}
		a.rr.Joins = append(a.rr.Joins, jr)
		a.report.noteJoin(node, jr)
	}
	return node, cols, nil
}

// orderString renders a join tree over leaf labels.
func orderString(t *ptree, g *ra.JoinGraph) string {
	if t.leaf >= 0 {
		return leafLabel(g.Leaves[t.leaf].Node)
	}
	return "(" + orderString(t.l, g) + " ⋈ " + orderString(t.r, g) + ")"
}

// leafLabel is a compact label for a region input.
func leafLabel(n ra.Node) string {
	switch x := n.(type) {
	case *ra.Rel:
		return x.Name
	case *ra.Rename:
		return x.As + "=" + leafLabel(x.In)
	case *ra.Select:
		return "σ(" + leafLabel(x.In) + ")"
	case *ra.Project:
		return "π(" + leafLabel(x.In) + ")"
	}
	if s := opName(n); s != "result" {
		return s
	}
	return strings.TrimPrefix(fmt.Sprintf("%T", n), "*ra.")
}
