package engine

import (
	"fmt"
	"math"

	"repro/internal/boolexpr"
	"repro/internal/relation"
)

// Semiring is an annotation domain for query evaluation: a commutative
// semiring (⊕, ⊗, 0, 1) over T, extended with the difference rule of
// Section 6 (a "minus" combinator) and a base-tuple annotation.
//
// ⊕ (Plus) merges alternative derivations of the same tuple (union,
// duplicate elimination); ⊗ (Times) combines joint derivations (join).
type Semiring[T any] interface {
	// Zero is the ⊕-identity: the annotation of an absent tuple.
	Zero() T
	// One is the ⊗-identity: the annotation of an unconditionally present
	// tuple.
	One() T
	// Plus is ⊕.
	Plus(a, b T) T
	// Times is ⊗.
	Times(a, b T) T
	// Minus combines annotations across L − R: l is the left tuple's
	// annotation, r the matching right tuple's (Zero when absent). The set
	// semiring drops the tuple when r is nonzero; the why-provenance
	// semiring returns l ∧ ¬r (the paper's difference rule, Section 6).
	Minus(l, r T) T
	// IsZero reports whether an annotation is definitely the zero of the
	// semiring; zero-annotated tuples are pruned from operator outputs.
	// Conservatively returning false is allowed (the why-provenance
	// semiring never prunes, preserving tuples whose presence depends on
	// the chosen subinstance).
	IsZero(a T) bool
	// Leaf annotates one base tuple; id is InvalidTupleID when the tuple
	// carries no identifier (derived data). Semirings that need identities
	// (provenance) return an error in that case.
	Leaf(id relation.TupleID) (T, error)
	// Aggregates reports whether γ (GroupBy) is supported. Aggregation is
	// evaluated over the support of the input and each output row is
	// annotated One; that is only sound when annotations carry no
	// per-subinstance information (set, counting). How-provenance for
	// aggregates goes through eval.EvalAggProv instead (Section 5).
	Aggregates() bool
	// Name identifies the semiring in error messages.
	Name() string
}

// SetSemiring is plain set-semantics evaluation: the Boolean semiring
// ({⊥,⊤}, ∨, ∧). Every retained tuple is annotated ⊤.
type SetSemiring struct{}

// Zero implements Semiring.
func (SetSemiring) Zero() bool { return false }

// One implements Semiring.
func (SetSemiring) One() bool { return true }

// Plus implements Semiring.
func (SetSemiring) Plus(a, b bool) bool { return a || b }

// Times implements Semiring.
func (SetSemiring) Times(a, b bool) bool { return a && b }

// Minus implements Semiring: a tuple survives the difference iff it is
// present on the left and absent on the right.
func (SetSemiring) Minus(l, r bool) bool { return l && !r }

// IsZero implements Semiring.
func (SetSemiring) IsZero(a bool) bool { return !a }

// Leaf implements Semiring.
func (SetSemiring) Leaf(relation.TupleID) (bool, error) { return true, nil }

// Aggregates implements Semiring.
func (SetSemiring) Aggregates() bool { return true }

// Name implements Semiring.
func (SetSemiring) Name() string { return "set" }

// Count is a derivation count: the annotation domain of the counting
// semiring. It is a defined type (not a bare int64) so that raw arithmetic
// on counts is visible to review and to the saturatedarith analyzer: counts
// saturate at math.MaxInt64, so `+`/`*` on Count values belongs inside
// Counting.Plus/Times (or another guarded helper), never inline — a count
// wrapped to zero by overflow would prune a live tuple from the support.
type Count int64

// Saturated reports whether the count hit the saturation ceiling and no
// longer carries a precise value (its nonzero-ness is still exact).
func (c Count) Saturated() bool { return c == math.MaxInt64 }

// CountSemiring counts derivations: the natural-numbers semiring (ℕ, +, ×).
// The count of an output tuple is its number of derivations from base
// tuples; the support (tuples with nonzero count) equals the set-semantics
// result, which makes the counting engine a cardinality-only fast path.
//
// Counts saturate at math.MaxInt64 instead of wrapping: deep cross products
// overflow int64, and a count wrapped to zero would prune a live tuple from
// the support. Saturation keeps the support exact (a saturated count is
// still nonzero) at the cost of the count's precise value.
type CountSemiring struct{}

// Zero implements Semiring.
func (CountSemiring) Zero() Count { return 0 }

// One implements Semiring.
func (CountSemiring) One() Count { return 1 }

// Plus implements Semiring. Counts are nonnegative; the sum saturates at
// math.MaxInt64.
func (CountSemiring) Plus(a, b Count) Count {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// Times implements Semiring. Counts are nonnegative; the product saturates
// at math.MaxInt64.
func (CountSemiring) Times(a, b Count) Count {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// Minus implements Semiring: presence on the right annihilates the tuple
// (set-semantics difference on the support).
func (CountSemiring) Minus(l, r Count) Count {
	if r != 0 {
		return 0
	}
	return l
}

// IsZero implements Semiring.
func (CountSemiring) IsZero(a Count) bool { return a == 0 }

// Leaf implements Semiring.
func (CountSemiring) Leaf(relation.TupleID) (Count, error) { return 1, nil }

// Aggregates implements Semiring.
func (CountSemiring) Aggregates() bool { return true }

// Name implements Semiring.
func (CountSemiring) Name() string { return "count" }

// WhySemiring is Boolean how-provenance (Section 2.3): each tuple is
// annotated with a Boolean expression over base tuple identifiers that
// holds exactly on the subinstances producing the tuple.
type WhySemiring struct{}

// Zero implements Semiring.
func (WhySemiring) Zero() *boolexpr.Expr { return boolexpr.False() }

// One implements Semiring.
func (WhySemiring) One() *boolexpr.Expr { return boolexpr.True() }

// Plus implements Semiring.
func (WhySemiring) Plus(a, b *boolexpr.Expr) *boolexpr.Expr { return boolexpr.Or(a, b) }

// Times implements Semiring.
func (WhySemiring) Times(a, b *boolexpr.Expr) *boolexpr.Expr { return boolexpr.And(a, b) }

// Minus implements Semiring: the Section 6 difference rule
// Prv(t) = PrvL(t) ∧ ¬PrvR(t); with r = ⊥ (absent) this simplifies to
// PrvL(t).
func (WhySemiring) Minus(l, r *boolexpr.Expr) *boolexpr.Expr {
	return boolexpr.And(l, boolexpr.Not(r))
}

// IsZero implements Semiring. It always reports false: a tuple whose
// annotation mentions variables may be present on some subinstance, and even
// constant-⊥ tuples are kept so results stay positionally faithful to the
// legacy provenance evaluator.
func (WhySemiring) IsZero(*boolexpr.Expr) bool { return false }

// Leaf implements Semiring.
func (WhySemiring) Leaf(id relation.TupleID) (*boolexpr.Expr, error) {
	if id == relation.InvalidTupleID {
		return nil, fmt.Errorf("engine: provenance evaluation requires base tuple identifiers")
	}
	return boolexpr.Var(int(id)), nil
}

// Aggregates implements Semiring.
func (WhySemiring) Aggregates() bool { return false }

// Name implements Semiring.
func (WhySemiring) Name() string { return "why" }

// The canonical semiring instances.
var (
	Set      SetSemiring
	Counting CountSemiring
	Why      WhySemiring
)
