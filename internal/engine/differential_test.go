package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ra"
	"repro/internal/relation"
)

// This file differentially tests the hash-based engine against an
// independent reference evaluator that uses only nested loops and linear
// scans and never optimizes, over random instances (with NULLs) and random
// SPJUD plans, for all three semirings.

// refRel is the reference evaluator's annotated relation: no index, linear
// probes only.
type refRel[T any] struct {
	schema relation.Schema
	tuples []relation.Tuple
	anns   []T
}

func (r *refRel[T]) add(s Semiring[T], t relation.Tuple, ann T) {
	for i, u := range r.tuples {
		if u.Identical(t) {
			r.anns[i] = s.Plus(r.anns[i], ann)
			return
		}
	}
	r.tuples = append(r.tuples, t)
	r.anns = append(r.anns, ann)
}

func (r *refRel[T]) lookup(t relation.Tuple) int {
	for i, u := range r.tuples {
		if u.Identical(t) {
			return i
		}
	}
	return -1
}

// refEval evaluates q naively: nested-loop joins, linear duplicate merging,
// no optimizer rewrites.
func refEval[T any](s Semiring[T], q ra.Node, db *relation.Database, params map[string]relation.Value) (*refRel[T], error) {
	switch x := q.(type) {
	case *ra.Rel:
		rel := db.Relation(x.Name)
		if rel == nil {
			return nil, fmt.Errorf("ref: unknown relation %q", x.Name)
		}
		out := &refRel[T]{schema: rel.Schema}
		for i, t := range rel.Tuples {
			ann, err := s.Leaf(rel.ID(i))
			if err != nil {
				return nil, err
			}
			out.add(s, t, ann)
		}
		return out, nil
	case *ra.Select:
		in, err := refEval(s, x.In, db, params)
		if err != nil {
			return nil, err
		}
		pred, err := ra.CompileExpr(x.Pred, in.schema, params)
		if err != nil {
			return nil, err
		}
		out := &refRel[T]{schema: in.schema}
		for i, t := range in.tuples {
			v, err := pred(t)
			if err != nil {
				return nil, err
			}
			if ra.Truthy(v) {
				out.add(s, t, in.anns[i])
			}
		}
		return out, nil
	case *ra.Project:
		in, err := refEval(s, x.In, db, params)
		if err != nil {
			return nil, err
		}
		idxs, outSchema, err := projectPlan(x, in.schema)
		if err != nil {
			return nil, err
		}
		out := &refRel[T]{schema: outSchema}
		for i, t := range in.tuples {
			out.add(s, t.Project(idxs), in.anns[i])
		}
		return out, nil
	case *ra.Join:
		l, err := refEval(s, x.L, db, params)
		if err != nil {
			return nil, err
		}
		r, err := refEval(s, x.R, db, params)
		if err != nil {
			return nil, err
		}
		if x.Cond != nil {
			outSchema := l.schema.Concat(r.schema)
			pred, err := ra.CompileExpr(x.Cond, outSchema, params)
			if err != nil {
				return nil, err
			}
			out := &refRel[T]{schema: outSchema}
			for li, lt := range l.tuples {
				for ri, rt := range r.tuples {
					t := lt.Concat(rt)
					v, err := pred(t)
					if err != nil {
						return nil, err
					}
					if ra.Truthy(v) {
						out.add(s, t, s.Times(l.anns[li], r.anns[ri]))
					}
				}
			}
			return out, nil
		}
		shared, rOnly := ra.NaturalJoinCols(l.schema, r.schema)
		attrs := append([]relation.Attribute{}, l.schema.Attrs...)
		for _, j := range rOnly {
			attrs = append(attrs, r.schema.Attrs[j])
		}
		out := &refRel[T]{schema: relation.Schema{Attrs: attrs}}
		for li, lt := range l.tuples {
			for ri, rt := range r.tuples {
				match := true
				for _, p := range shared {
					lv, rv := lt[p[0]], rt[p[1]]
					// NULLs never join.
					if lv.IsNull() || rv.IsNull() || !lv.Identical(rv) {
						match = false
						break
					}
				}
				if match {
					out.add(s, lt.Concat(rt.Project(rOnly)), s.Times(l.anns[li], r.anns[ri]))
				}
			}
		}
		return out, nil
	case *ra.Union:
		l, err := refEval(s, x.L, db, params)
		if err != nil {
			return nil, err
		}
		r, err := refEval(s, x.R, db, params)
		if err != nil {
			return nil, err
		}
		out := &refRel[T]{schema: l.schema}
		for i, t := range l.tuples {
			out.add(s, t, l.anns[i])
		}
		for i, t := range r.tuples {
			out.add(s, t, r.anns[i])
		}
		return out, nil
	case *ra.Diff:
		l, err := refEval(s, x.L, db, params)
		if err != nil {
			return nil, err
		}
		r, err := refEval(s, x.R, db, params)
		if err != nil {
			return nil, err
		}
		out := &refRel[T]{schema: l.schema}
		for i, t := range l.tuples {
			rAnn := s.Zero()
			if j := r.lookup(t); j >= 0 {
				rAnn = r.anns[j]
			}
			ann := s.Minus(l.anns[i], rAnn)
			if s.IsZero(ann) {
				continue
			}
			out.add(s, t, ann)
		}
		return out, nil
	case *ra.Rename:
		in, err := refEval(s, x.In, db, params)
		if err != nil {
			return nil, err
		}
		return &refRel[T]{schema: in.schema.Qualify(x.As), tuples: in.tuples, anns: in.anns}, nil
	}
	return nil, fmt.Errorf("ref: unsupported node %T", q)
}

// randomDB builds three union-compatible relations with small value domains
// (to force joins and duplicates) and ~15% NULLs.
func randomDB(rng *rand.Rand) *relation.Database {
	db := relation.NewDatabase()
	schema := relation.NewSchema(
		relation.Attr("a", relation.KindInt),
		relation.Attr("b", relation.KindInt),
		relation.Attr("c", relation.KindString))
	strs := []string{"x", "y", "z"}
	for _, name := range []string{"R", "S", "T"} {
		db.CreateRelation(name, schema)
		n := 3 + rng.Intn(8)
		for i := 0; i < n; i++ {
			b := relation.Null()
			if rng.Intn(7) != 0 {
				b = relation.Int(int64(rng.Intn(3)))
			}
			c := relation.Null()
			if rng.Intn(7) != 0 {
				c = relation.String(strs[rng.Intn(len(strs))])
			}
			db.Insert(name, relation.NewTuple(relation.Int(int64(rng.Intn(4))), b, c))
		}
	}
	return db
}

// randomCompat generates a random plan whose output schema stays (a, b, c),
// so union/difference operands are always compatible.
func randomCompat(rng *rand.Rand, depth int) ra.Node {
	if depth <= 0 || rng.Intn(3) == 0 {
		return &ra.Rel{Name: []string{"R", "S", "T"}[rng.Intn(3)]}
	}
	switch rng.Intn(4) {
	case 0:
		return &ra.Select{Pred: randomPred(rng, ""), In: randomCompat(rng, depth-1)}
	case 1:
		return &ra.Union{L: randomCompat(rng, depth-1), R: randomCompat(rng, depth-1)}
	case 2:
		return &ra.Diff{L: randomCompat(rng, depth-1), R: randomCompat(rng, depth-1)}
	default:
		// Natural join of identically-named schemas: joins on every column.
		return &ra.Join{L: randomCompat(rng, depth-1), R: randomCompat(rng, depth-1)}
	}
}

// randomPred builds a comparison over the (a, b, c) columns, optionally
// qualified.
func randomPred(rng *rand.Rand, qual string) ra.Expr {
	col := func(name string) *ra.AttrRef {
		if qual != "" {
			name = qual + "." + name
		}
		return &ra.AttrRef{Name: name}
	}
	ops := []ra.CmpOp{ra.EQ, ra.NE, ra.LT, ra.LE, ra.GT, ra.GE}
	switch rng.Intn(4) {
	case 0:
		return &ra.Cmp{Op: ops[rng.Intn(len(ops))], L: col("a"), R: &ra.Const{Val: relation.Int(int64(rng.Intn(4)))}}
	case 1:
		return &ra.Cmp{Op: ops[rng.Intn(len(ops))], L: col("b"), R: &ra.Const{Val: relation.Int(int64(rng.Intn(3)))}}
	case 2:
		return &ra.Cmp{Op: ra.EQ, L: col("c"), R: &ra.Const{Val: relation.String([]string{"x", "y", "z"}[rng.Intn(3)])}}
	default:
		return &ra.Cmp{Op: ops[rng.Intn(len(ops))], L: col("a"), R: col("b")}
	}
}

// randomPlan optionally tops a compatible plan with a theta equi-join
// (exercising the hash equi-join path, including NULL join keys and
// residual conditions) and/or a projection.
func randomPlan(rng *rand.Rand) ra.Node {
	q := randomCompat(rng, 2)
	switch rng.Intn(3) {
	case 0:
		cond := ra.Expr(&ra.Cmp{Op: ra.EQ, L: &ra.AttrRef{Name: "u.a"}, R: &ra.AttrRef{Name: "v.a"}})
		if rng.Intn(2) == 0 {
			// Add a second equi-key on a NULLable column.
			cond = &ra.And{Kids: []ra.Expr{cond,
				&ra.Cmp{Op: ra.EQ, L: &ra.AttrRef{Name: "u.b"}, R: &ra.AttrRef{Name: "v.b"}}}}
		}
		if rng.Intn(2) == 0 {
			// Residual θ-condition forcing the hybrid hash+filter path.
			cond = &ra.And{Kids: []ra.Expr{cond,
				&ra.Cmp{Op: ra.LE, L: &ra.AttrRef{Name: "u.b"}, R: &ra.AttrRef{Name: "v.a"}}}}
		}
		q = &ra.Join{
			L:    &ra.Rename{As: "u", In: q},
			R:    &ra.Rename{As: "v", In: randomCompat(rng, 1)},
			Cond: cond,
		}
		if rng.Intn(2) == 0 {
			q = &ra.Project{Cols: []string{"u.a", "v.c"}, In: q}
		}
	case 1:
		q = &ra.Project{Cols: []string{"a", "c"}, In: q}
	}
	return q
}

func keySet(tuples []relation.Tuple) map[string]bool {
	m := make(map[string]bool, len(tuples))
	for _, t := range tuples {
		m[t.Key()] = true
	}
	return m
}

func sameKeySets(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestDifferentialSetSemiring: hash engine ≡ nested-loop reference under
// set semantics.
func TestDifferentialSetSemiring(t *testing.T) {
	rng := rand.New(rand.NewSource(20190701))
	for trial := 0; trial < 300; trial++ {
		db := randomDB(rng)
		q := randomPlan(rng)
		want, err := refEval[bool](Set, q, db, nil)
		if err != nil {
			t.Fatalf("trial %d: ref: %v\n%s", trial, err, q)
		}
		got, err := Eval(q, db, nil)
		if err != nil {
			t.Fatalf("trial %d: engine: %v\n%s", trial, err, q)
		}
		if !sameKeySets(keySet(want.tuples), keySet(got.Tuples)) {
			t.Fatalf("trial %d: set results differ\nquery: %s\nwant %v\ngot %v\n%s",
				trial, q, want.tuples, got.Tuples, db)
		}
	}
}

// TestDifferentialCountSemiring: derivation counts agree tuple-by-tuple.
func TestDifferentialCountSemiring(t *testing.T) {
	rng := rand.New(rand.NewSource(8086))
	for trial := 0; trial < 300; trial++ {
		db := randomDB(rng)
		q := randomPlan(rng)
		want, err := refEval[Count](Counting, q, db, nil)
		if err != nil {
			t.Fatalf("trial %d: ref: %v\n%s", trial, err, q)
		}
		got, err := Run[Count](Counting, q, db, nil)
		if err != nil {
			t.Fatalf("trial %d: engine: %v\n%s", trial, err, q)
		}
		if got.Len() != len(want.tuples) {
			t.Fatalf("trial %d: support sizes differ: want %d got %d\nquery: %s",
				trial, len(want.tuples), got.Len(), q)
		}
		for i, tup := range want.tuples {
			j := got.Lookup(tup)
			if j < 0 {
				t.Fatalf("trial %d: engine missing %v\nquery: %s", trial, tup, q)
			}
			if got.Anns[j] != want.anns[i] {
				t.Fatalf("trial %d: count of %v: want %d got %d\nquery: %s",
					trial, tup, want.anns[i], got.Anns[j], q)
			}
		}
	}
}

// TestDifferentialWhySemiring: provenance expressions are logically
// equivalent between engine and reference (checked on random assignments),
// and agree with ground truth: prov(t) holds on a subinstance iff t is in
// the query result there.
func TestDifferentialWhySemiring(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 150; trial++ {
		db := randomDB(rng)
		q := randomPlan(rng)
		want, err := refEval(Why, q, db, nil)
		if err != nil {
			t.Fatalf("trial %d: ref: %v\n%s", trial, err, q)
		}
		got, err := EvalProv(q, db, nil)
		if err != nil {
			t.Fatalf("trial %d: engine: %v\n%s", trial, err, q)
		}
		if got.Len() != len(want.tuples) {
			t.Fatalf("trial %d: tuple sets differ: want %d got %d\nquery: %s\nwant %v\ngot %v",
				trial, len(want.tuples), got.Len(), q, want.tuples, got.Tuples)
		}
		allIDs := db.AllIDs()
		// Random-assignment equivalence between the two provenance exprs.
		for k := 0; k < 32; k++ {
			assign := map[int]bool{}
			for _, id := range allIDs {
				assign[int(id)] = rng.Intn(2) == 0
			}
			fn := func(id int) bool { return assign[id] }
			for i, tup := range want.tuples {
				j := got.Lookup(tup)
				if j < 0 {
					t.Fatalf("trial %d: engine missing %v\nquery: %s", trial, tup, q)
				}
				if want.anns[i].Eval(fn) != got.Anns[j].Eval(fn) {
					t.Fatalf("trial %d: provenance of %v inequivalent\nref: %s\nengine: %s\nquery: %s",
						trial, tup, want.anns[i], got.Anns[j], q)
				}
			}
		}
		// Ground truth on random subinstances, using the reference
		// set-semantics evaluator as the oracle.
		for k := 0; k < 6; k++ {
			keep := map[relation.TupleID]bool{}
			ids := map[int]bool{}
			for _, id := range allIDs {
				if rng.Intn(2) == 0 {
					keep[id] = true
					ids[int(id)] = true
				}
			}
			sub := db.Subinstance(keep)
			res, err := refEval[bool](Set, q, sub, nil)
			if err != nil {
				t.Fatal(err)
			}
			inRes := keySet(res.tuples)
			fn := func(id int) bool { return ids[id] }
			for j, tup := range got.Tuples {
				if got.Anns[j].Eval(fn) != inRes[tup.Key()] {
					t.Fatalf("trial %d: provenance of %v wrong on subinstance %v\nprov: %s\nquery: %s",
						trial, tup, ids, got.Anns[j], q)
				}
			}
		}
	}
}

// TestForceNestedLoopAgrees exercises the nested-loop physical fallbacks
// against the hash operators on the same plans.
func TestForceNestedLoopAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5150))
	for trial := 0; trial < 100; trial++ {
		db := randomDB(rng)
		q := randomPlan(rng)
		hash, err := Run[bool](Set, q, db, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		nl, err := RunOpts[bool](Set, q, db, nil, Options{ForceNestedLoop: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !sameKeySets(keySet(hash.Tuples), keySet(nl.Tuples)) {
			t.Fatalf("trial %d: hash vs nested-loop differ\nquery: %s", trial, q)
		}
	}
}

// TestIntersect covers the physical hash intersection operator.
func TestIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		db := randomDB(rng)
		l, err := Run[Count](Counting, &ra.Rel{Name: "R"}, db, nil)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run[Count](Counting, &ra.Rel{Name: "S"}, db, nil)
		if err != nil {
			t.Fatal(err)
		}
		both, err := Intersect[Count](Counting, l, r)
		if err != nil {
			t.Fatal(err)
		}
		for i, tup := range l.Tuples {
			j := r.Lookup(tup)
			k := both.Lookup(tup)
			if (j >= 0) != (k >= 0) {
				t.Fatalf("trial %d: intersection membership wrong for %v", trial, tup)
			}
			if j >= 0 && both.Anns[k] != Counting.Times(l.Anns[i], r.Anns[j]) {
				t.Fatalf("trial %d: intersection count wrong for %v", trial, tup)
			}
		}
		for _, tup := range both.Tuples {
			if l.Lookup(tup) < 0 || r.Lookup(tup) < 0 {
				t.Fatalf("trial %d: phantom tuple %v", trial, tup)
			}
		}
	}
}
