package engine

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/ra"
	"repro/internal/relation"
)

// randomCandidates draws k random subsets of the database's tuple ids
// (including occasional empty and full candidates).
func randomCandidates(rng *rand.Rand, db *relation.Database, k int) [][]relation.TupleID {
	all := db.AllIDs()
	out := make([][]relation.TupleID, k)
	for i := range out {
		switch rng.Intn(8) {
		case 0: // empty subinstance
		case 1: // full instance
			out[i] = append([]relation.TupleID(nil), all...)
		default:
			for _, id := range all {
				if rng.Intn(2) == 0 {
					out[i] = append(out[i], id)
				}
			}
		}
	}
	return out
}

func keepSet(cand []relation.TupleID) map[relation.TupleID]bool {
	m := make(map[relation.TupleID]bool, len(cand))
	for _, id := range cand {
		m[id] = true
	}
	return m
}

// TestDifferentialBatch: EvalBatch over K candidates ≡ K independent
// engine.Eval runs on the per-candidate subinstances, over random SPJUD
// plans (including Diff operators and NULL join keys) for both the
// word-sized (K ≤ 64) and wide (K > 64) bitvector paths.
func TestDifferentialBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	for trial := 0; trial < 220; trial++ {
		db := randomDB(rng)
		q := randomPlan(rng)
		k := 1 + rng.Intn(6)
		if trial%10 == 0 {
			k = 65 + rng.Intn(8) // exercise the wide ([]uint64) semiring
		}
		cands := randomCandidates(rng, db, k)
		got, err := EvalBatch(q, db, nil, cands, Options{})
		if err != nil {
			t.Fatalf("trial %d: EvalBatch: %v\n%s", trial, err, q)
		}
		if got.K != k {
			t.Fatalf("trial %d: K = %d, want %d", trial, got.K, k)
		}
		for c := 0; c < k; c++ {
			sub := db.Subinstance(keepSet(cands[c]))
			want, err := Eval(q, sub, nil)
			if err != nil {
				t.Fatalf("trial %d cand %d: per-candidate Eval: %v\n%s", trial, c, err, q)
			}
			if !sameKeySets(keySet(want.Tuples), keySet(got.ResultFor(c))) {
				t.Fatalf("trial %d cand %d/%d: batched ≠ per-candidate\nquery: %s\nwant %v\ngot %v\ncandidate %v",
					trial, c, k, q, want.Tuples, got.ResultFor(c), cands[c])
			}
			if got.NonEmpty(c) != (want.Len() > 0) {
				t.Fatalf("trial %d cand %d: NonEmpty = %v but per-candidate result has %d tuples",
					trial, c, got.NonEmpty(c), want.Len())
			}
		}
		// The union support carries no tuple outside every candidate.
		for i := range got.Tuples {
			anyBit := false
			for c := 0; c < k && !anyBit; c++ {
				anyBit = got.Has(i, c)
			}
			if !anyBit {
				t.Fatalf("trial %d: support tuple %v has an all-zero mask", trial, got.Tuples[i])
			}
		}
	}
}

// TestDifferentialBatchDiffs: the shared-scan pair entry (both directions
// of Q1 − Q2 in one pass) agrees with per-candidate evaluation of the two
// difference plans.
func TestDifferentialBatchDiffs(t *testing.T) {
	rng := rand.New(rand.NewSource(77177))
	for trial := 0; trial < 120; trial++ {
		db := randomDB(rng)
		q1 := randomCompat(rng, 2)
		q2 := randomCompat(rng, 2)
		k := 1 + rng.Intn(6)
		if trial%9 == 0 {
			k = 65 + rng.Intn(8)
		}
		cands := randomCandidates(rng, db, k)
		d12, d21, err := EvalBatchDiffs(q1, q2, db, nil, cands, Options{})
		if err != nil {
			t.Fatalf("trial %d: EvalBatchDiffs: %v", trial, err)
		}
		for c := 0; c < k; c++ {
			sub := db.Subinstance(keepSet(cands[c]))
			w12, err := Eval(&ra.Diff{L: q1, R: q2}, sub, nil)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			w21, err := Eval(&ra.Diff{L: q2, R: q1}, sub, nil)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !sameKeySets(keySet(w12.Tuples), keySet(d12.ResultFor(c))) {
				t.Fatalf("trial %d cand %d: d12 batched ≠ per-candidate\nq1: %s\nq2: %s",
					trial, c, q1, q2)
			}
			if !sameKeySets(keySet(w21.Tuples), keySet(d21.ResultFor(c))) {
				t.Fatalf("trial %d cand %d: d21 batched ≠ per-candidate\nq1: %s\nq2: %s",
					trial, c, q1, q2)
			}
		}
	}
}

// TestScanCacheSelfJoin: the per-exec base-scan cache returns the same
// relation object for repeated references without corrupting self-joins or
// self-differences.
func TestScanCacheSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	db := randomDB(rng)
	// R ⋈ R (self natural join on all columns ≡ R), R − R (empty), and
	// (R ∪ R) ≡ R, all referencing the same cached scan.
	r, err := Eval(&ra.Rel{Name: "R"}, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	selfJoin, err := Eval(&ra.Join{L: &ra.Rel{Name: "R"}, R: &ra.Rel{Name: "R"}}, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	// NULLs never join, so the self natural join keeps exactly the
	// NULL-free tuples of R.
	var nullFree []relation.Tuple
	for _, tup := range r.Tuples {
		if !hasNullValue(tup) {
			nullFree = append(nullFree, tup)
		}
	}
	if !sameKeySets(keySet(nullFree), keySet(selfJoin.Tuples)) {
		t.Errorf("R ⋈ R ≠ NULL-free R under the scan cache")
	}
	selfDiff, err := Eval(&ra.Diff{L: &ra.Rel{Name: "R"}, R: &ra.Rel{Name: "R"}}, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if selfDiff.Len() != 0 {
		t.Errorf("R − R = %d tuples, want 0", selfDiff.Len())
	}
	selfUnion, err := Eval(&ra.Union{L: &ra.Rel{Name: "R"}, R: &ra.Rel{Name: "R"}}, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameKeySets(keySet(r.Tuples), keySet(selfUnion.Tuples)) {
		t.Errorf("R ∪ R ≠ R under the scan cache")
	}
}

// TestBatchParallelMatchesSerial: the batched evaluation composes with the
// parallel physical operators (hash-partitioned join/build/diff) without
// changing any candidate's result.
func TestBatchParallelMatchesSerial(t *testing.T) {
	popts := forceParallel(t)
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 80; trial++ {
		db := randomDB(rng)
		q := randomPlan(rng)
		k := 1 + rng.Intn(64)
		cands := randomCandidates(rng, db, k)
		serial, err := EvalBatch(q, db, nil, cands, Options{})
		if err != nil {
			t.Fatalf("trial %d: serial: %v", trial, err)
		}
		par, err := EvalBatch(q, db, nil, cands, popts)
		if err != nil {
			t.Fatalf("trial %d: parallel: %v", trial, err)
		}
		for c := 0; c < k; c++ {
			if !sameKeySets(keySet(serial.ResultFor(c)), keySet(par.ResultFor(c))) {
				t.Fatalf("trial %d cand %d: parallel batch ≠ serial batch\nquery: %s", trial, c, q)
			}
		}
	}
}

// TestBatchGroupByFallsBack: plans containing γ are rejected with an error
// wrapping ErrNoAggregates — the signal batch callers use to fall back to
// per-candidate evaluation.
func TestBatchGroupByFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := randomDB(rng)
	q := &ra.GroupBy{
		GroupCols: []string{"a"},
		Aggs:      []ra.AggSpec{{Func: ra.Count, As: "n"}},
		In:        &ra.Rel{Name: "R"},
	}
	cands := randomCandidates(rng, db, 3)
	_, err := EvalBatch(q, db, nil, cands, Options{})
	if !errors.Is(err, ErrNoAggregates) {
		t.Fatalf("EvalBatch on a γ plan: err = %v, want ErrNoAggregates", err)
	}
	// The set semiring still aggregates: the gate is per-semiring, not
	// per-plan.
	if _, err := Eval(q, db, nil); err != nil {
		t.Fatalf("set-semiring γ evaluation broke: %v", err)
	}
}

// TestBatchEmpty: a zero-candidate batch is a well-formed empty result.
func TestBatchEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	db := randomDB(rng)
	res, err := EvalBatch(&ra.Rel{Name: "R"}, db, nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 0 || res.Len() != 0 {
		t.Fatalf("empty batch: K=%d len=%d", res.K, res.Len())
	}
}

// TestBitSemiringLaws spot-checks the semiring structure of both mask
// widths: identities, idempotence and the difference rule, including the
// partial last word of a non-multiple-of-64 wide batch.
func TestBitSemiringLaws(t *testing.T) {
	cands := [][]relation.TupleID{{1, 2}, {2, 3}, {3}}
	s, err := NewBitSemiring(cands)
	if err != nil {
		t.Fatal(err)
	}
	if s.One() != 0b111 {
		t.Errorf("One = %b, want 111", s.One())
	}
	l2, _ := s.Leaf(2)
	if l2 != 0b011 {
		t.Errorf("Leaf(2) = %b, want 011 (candidates 0 and 1)", l2)
	}
	l9, _ := s.Leaf(9)
	if l9 != 0 || !s.IsZero(l9) {
		t.Errorf("Leaf of an uncovered id should be zero, got %b", l9)
	}
	if _, err := s.Leaf(relation.InvalidTupleID); err == nil {
		t.Error("Leaf(InvalidTupleID) should error")
	}
	if got := s.Minus(0b110, 0b010); got != 0b100 {
		t.Errorf("Minus = %b, want 100", got)
	}

	wide := make([][]relation.TupleID, 70)
	for i := range wide {
		wide[i] = []relation.TupleID{relation.TupleID(i % 5)}
	}
	w := NewWideBitSemiring(wide)
	one := w.One()
	if len(one) != 2 || one[0] != ^uint64(0) || one[1] != 1<<6-1 {
		t.Errorf("wide One = %v, want 64+6 bits", one)
	}
	leaf, _ := w.Leaf(3)
	if w.IsZero(leaf) || !leaf.Get(3) || !leaf.Get(68) {
		t.Errorf("wide Leaf(3) = %v: want bits 3, 8, ..., 68", leaf)
	}
	if got := w.Times(one, leaf); !sameBits(got, leaf) {
		t.Errorf("One ⊗ a ≠ a: %v vs %v", got, leaf)
	}
	if got := w.Plus(w.Zero(), leaf); !sameBits(got, leaf) {
		t.Errorf("Zero ⊕ a ≠ a: %v vs %v", got, leaf)
	}
	if got := w.Minus(leaf, leaf); !w.IsZero(got) {
		t.Errorf("a − a ≠ 0: %v", got)
	}
}

func sameBits(a, b Bits) bool {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n*64; i++ {
		if a.Get(i) != b.Get(i) {
			return false
		}
	}
	return true
}
