package engine

import (
	"repro/internal/boolexpr"
	"repro/internal/relation"
)

// Rel is an annotated relation: a schema, distinct tuples, and a parallel
// slice of semiring annotations. A hash index from encoded tuple to
// position is built lazily: operators that preserve distinctness
// (selection, join) append without hashing, while duplicate-merging
// operators (base scan, projection, union) and probes (difference, Lookup)
// pay for the index only when they need it. This replaces the linear scans
// of the legacy evaluators with O(1) probes without taxing the operators
// that never probe.
type Rel[T any] struct {
	Schema relation.Schema
	Tuples []relation.Tuple
	Anns   []T

	index map[string]int
}

// ProvRel is the result of how-provenance evaluation.
type ProvRel = Rel[*boolexpr.Expr]

// NewRel creates an empty annotated relation.
func NewRel[T any](schema relation.Schema) *Rel[T] {
	return &Rel[T]{Schema: schema}
}

// NewRelCap creates an empty annotated relation with capacity for n tuples.
// Operators that know an output bound preallocate through this: repeated
// slice growth copies the annotation array as well as the tuple array, and
// annotations can be wide (the batch semirings' multi-word masks), so
// avoiding regrowth matters most exactly when annotations are biggest.
func NewRelCap[T any](schema relation.Schema, n int) *Rel[T] {
	return &Rel[T]{
		Schema: schema,
		Tuples: make([]relation.Tuple, 0, n),
		Anns:   make([]T, 0, n),
	}
}

// Len returns the number of distinct tuples.
func (r *Rel[T]) Len() int { return len(r.Tuples) }

// ensureIndex builds the tuple-key hash index if it is missing. Rel tuples
// are always distinct, so the build is collision-free.
func (r *Rel[T]) ensureIndex() {
	if r.index != nil {
		return
	}
	r.index = make(map[string]int, len(r.Tuples))
	for i, t := range r.Tuples {
		r.index[t.Key()] = i
	}
}

// Add inserts a tuple, ⊕-merging its annotation if an identical tuple is
// already present.
func (r *Rel[T]) Add(s Semiring[T], t relation.Tuple, ann T) {
	r.ensureIndex()
	k := t.Key()
	if i, ok := r.index[k]; ok {
		r.Anns[i] = s.Plus(r.Anns[i], ann)
		return
	}
	r.index[k] = len(r.Tuples)
	r.Tuples = append(r.Tuples, t)
	r.Anns = append(r.Anns, ann)
}

// appendDistinct appends a tuple the caller guarantees is not already
// present (e.g. produced by a distinctness-preserving operator). It skips
// key hashing unless an index already exists.
func (r *Rel[T]) appendDistinct(t relation.Tuple, ann T) {
	if r.index != nil {
		r.index[t.Key()] = len(r.Tuples)
	}
	r.Tuples = append(r.Tuples, t)
	r.Anns = append(r.Anns, ann)
}

// Lookup returns the position of an identical tuple, or -1. It is a hash
// probe (the index is built on first use).
func (r *Rel[T]) Lookup(t relation.Tuple) int {
	r.ensureIndex()
	if i, ok := r.index[t.Key()]; ok {
		return i
	}
	return -1
}

// Index exposes the tuple-key index, building it if needed. Callers must
// treat it as read-only; it is shared so compatibility wrappers
// (eval.AnnRel) avoid rebuilding it.
func (r *Rel[T]) Index() map[string]int {
	r.ensureIndex()
	return r.index
}

// Relation strips annotations, returning a plain relation.
func (r *Rel[T]) Relation(name string) *relation.Relation {
	out := relation.NewRelation(name, r.Schema)
	out.Tuples = append(out.Tuples, r.Tuples...)
	return out
}
