package engine

import (
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/relation"
)

// This file is the update half of the delta subsystem: ApplyDelta generalizes
// EvalDelta (deletions only, PR 4) to full incremental view maintenance over
// signed counting-semiring deltas — deletions, insertions, and updates
// expressed as delete+insert — in the style of Berkholz–Keppeler–Schweikardt's
// FO+MOD-under-updates maintenance. The per-operator delta rules in
// prepared.go were already signed (a Diff can resurrect tuples, so deletions
// alone force bidirectional propagation); what insertion adds is:
//
//   - base scans emit +1 for inserted tuples alongside −1 for removed ids,
//   - Commit folds insertions into the base Database (assigning fresh
//     TupleIDs in caller order, so replay is deterministic) and registers the
//     new ids with the retained scan position maps,
//   - retained outputs may now grow without bound across commits, so every
//     ApplyDelta re-checks the maxSafeCount invariant that PrepareDiff
//     established: a delta that would push any retained count past the
//     exact-arithmetic bound is refused with ErrNotIncremental before any
//     state changes, and the prepared object remains usable.
//
// A failed ApplyDelta (validation, budget, saturation) never mutates retained
// state: deltas are computed into a per-call memo and only Commit folds them
// in. Committing insertions mutates the underlying *relation.Database — the
// prepared object must own its instance (clone it first) when insertions are
// in play; deletion-only users (the core checker, ShrinkGreedy) share
// read-only instances as before.

// Insert is one tuple insertion for ApplyDelta: the base relation name and
// the tuple value. The fresh TupleID is assigned at Commit (see
// DeltaResult.InsertedIDs).
type Insert struct {
	Rel   string
	Tuple relation.Tuple
}

// maxSafeCount bounds every retained derivation count so the exact ℤ-ring
// delta arithmetic cannot overflow int64: with counts ≤ 2³⁰, per-tuple
// delta magnitudes stay ≤ 2³¹, the join rule's pairwise products stay
// ≤ 2⁶², and every partial sum the accumulation loops can form stays well
// inside the int64 range. PrepareDiff establishes the invariant (plans
// beyond it fall back to batch evaluation) and ApplyDelta re-checks it
// before any delta may be committed.
const maxSafeCount = 1 << 30

// pollStep is the delta propagation loops' budget poll: every
// stopPollStride delta pairs/members, check the prepared Options' stop
// hook so a storm of wide deltas stays interruptible.
func (c *deltaCtx) pollStep() error {
	if c.ops++; c.ops%stopPollStride != 0 || c.poll == nil {
		return nil
	}
	return c.poll()
}

// SetStop rebinds the budget stop hook consulted by subsequent ApplyDelta
// calls (and their delta-propagation polls). Long-lived sessions call this
// per request so a prepared object built under one request's budget does not
// keep polling that request's expired context.
func (p *PreparedDiff) SetStop(stop func() error) { p.opts.Stop = stop }

// EvalDelta propagates the deletion of the given base tuples through the
// retained operator DAG; it is ApplyDelta with no insertions.
func (p *PreparedDiff) EvalDelta(removed []relation.TupleID) (*DeltaResult, error) {
	return p.ApplyDelta(removed, nil)
}

// ApplyDelta propagates one signed update — deleting the given base tuples
// and inserting the given new ones — through the retained operator DAG and
// reports the resulting state of Q1 − Q2 and Q2 − Q1. Updates are expressed
// as delete+insert of the same relation. Ids already removed by committed
// deltas, unknown ids and duplicates are ignored; insertions into unknown
// relations or with the wrong arity are errors. The work is proportional to
// the delta's footprint in each operator, not to the database or plan size.
//
// The result is relative to the current epoch: multiple uncommitted results
// are independent what-if candidates, and Commit folds exactly one of them
// into the base (assigning TupleIDs to its insertions). A delta that would
// saturate a retained derivation count is refused with ErrNotIncremental,
// leaving the prepared state untouched and usable.
func (p *PreparedDiff) ApplyDelta(removed []relation.TupleID, inserted []Insert) (*DeltaResult, error) {
	faults.Inject(faults.EngineEval)
	ids := make([]relation.TupleID, 0, len(removed))
	seen := make(map[relation.TupleID]bool, len(removed))
	for _, id := range removed {
		if seen[id] || p.removed[id] {
			continue
		}
		if _, _, ok := p.db.Lookup(id); !ok {
			continue
		}
		seen[id] = true
		ids = append(ids, id)
	}
	// Sorted ids make every delta's tuple order — and therefore committed
	// append order — deterministic; insertions keep caller order so the
	// TupleIDs Commit assigns are deterministic too.
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	byRel := make(map[string][]relation.Tuple)
	for _, ins := range inserted {
		r := p.db.Relation(ins.Rel)
		if r == nil {
			return nil, fmt.Errorf("engine: insert into unknown relation %q", ins.Rel)
		}
		if len(ins.Tuple) != r.Schema.Arity() {
			return nil, fmt.Errorf("engine: arity mismatch inserting into %q: got %d want %d",
				ins.Rel, len(ins.Tuple), r.Schema.Arity())
		}
		byRel[ins.Rel] = append(byRel[ins.Rel], ins.Tuple)
	}
	ctx := &deltaCtx{
		removed:  ids,
		inserted: byRel,
		poll:     p.opts.poll,
		memo:     make(map[pnode]*Rel[Count], len(p.nodes)),
		aux:      map[pnode][]groupChange{},
	}
	d12, err := p.d12.delta(ctx)
	if err != nil {
		return nil, err
	}
	d21, err := p.d21.delta(ctx)
	if err != nil {
		return nil, err
	}
	// Insertions grow counts, so the PrepareDiff-time maxSafeCount invariant
	// must be re-established before this delta may ever be committed.
	// p.nodes orders children before parents, which makes the check sound
	// even though all deltas are already computed: an operator's delta
	// arithmetic can only overflow if some child's candidate count already
	// exceeds maxSafeCount, and that child is inspected — with exact values
	// — before its parent's garbage could be believed.
	for _, n := range p.nodes {
		d, ok := ctx.memo[n]
		if !ok {
			continue
		}
		base := n.rel()
		for i, t := range d.Tuples {
			ch := d.Anns[i]
			if ch <= 0 {
				continue
			}
			if exactAdd(countOf(base, t), ch) > maxSafeCount {
				return nil, fmt.Errorf("%w: delta would push derivation counts past the exact-arithmetic bound", ErrNotIncremental)
			}
		}
	}
	return &DeltaResult{
		p: p, epoch: p.epoch, ctx: ctx,
		inserts: append([]Insert(nil), inserted...),
		size12:  p.d12.live + supportShift(p.d12.out, d12),
		size21:  p.d21.live + supportShift(p.d21.out, d21),
	}, nil
}

// InsertedIDs returns the TupleIDs Commit assigned to this result's
// insertions, in the order they were passed to ApplyDelta. It is nil before
// Commit.
func (r *DeltaResult) InsertedIDs() []relation.TupleID {
	return r.insertedIDs
}
