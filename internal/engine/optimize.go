package engine

import (
	"repro/internal/ra"
	"repro/internal/relation"
)

// Optimize rewrites a query for efficient evaluation without changing its
// set-semantics result (or its provenance annotations): selection conjuncts
// are pushed through projections, renames and selects, and into the
// matching side(s) of joins; conjuncts spanning a join become join
// conditions, which the evaluator executes as hash equi-joins.
//
// This plays the role of the SQL optimizer in the paper's implementation
// (Section 6 relies on SQL Server to push the Optσ selection down).
func Optimize(n ra.Node, cat ra.Catalog) ra.Node {
	switch x := n.(type) {
	case *ra.Rel:
		return x
	case *ra.Select:
		in := Optimize(x.In, cat)
		return pushSelect(conjuncts(x.Pred), in, cat)
	case *ra.Project:
		return &ra.Project{Cols: x.Cols, In: Optimize(x.In, cat)}
	case *ra.Rename:
		return &ra.Rename{As: x.As, In: Optimize(x.In, cat)}
	case *ra.Join:
		j := &ra.Join{L: Optimize(x.L, cat), R: Optimize(x.R, cat), Cond: x.Cond}
		if j.Cond == nil {
			return j
		}
		// Distribute one-sided conjuncts of the join condition.
		return distributeJoinCond(j, cat)
	case *ra.Union:
		return &ra.Union{L: Optimize(x.L, cat), R: Optimize(x.R, cat)}
	case *ra.Diff:
		return &ra.Diff{L: Optimize(x.L, cat), R: Optimize(x.R, cat)}
	case *ra.GroupBy:
		return &ra.GroupBy{GroupCols: x.GroupCols, Aggs: x.Aggs, In: Optimize(x.In, cat)}
	}
	return n
}

// conjuncts flattens a predicate into its top-level conjuncts.
func conjuncts(e ra.Expr) []ra.Expr {
	if a, ok := e.(*ra.And); ok {
		var out []ra.Expr
		for _, k := range a.Kids {
			out = append(out, conjuncts(k)...)
		}
		return out
	}
	return []ra.Expr{e}
}

func andOf(es []ra.Expr) ra.Expr {
	switch len(es) {
	case 0:
		return nil
	case 1:
		return es[0]
	}
	return &ra.And{Kids: es}
}

// exprResolvable reports whether every attribute reference in e resolves
// unambiguously in the schema.
func exprResolvable(e ra.Expr, s relation.Schema) bool {
	ok := true
	var walk func(ra.Expr)
	walk = func(x ra.Expr) {
		if !ok {
			return
		}
		switch y := x.(type) {
		case *ra.AttrRef:
			if _, err := s.Resolve(y.Name); err != nil {
				ok = false
			}
		case *ra.Cmp:
			walk(y.L)
			walk(y.R)
		case *ra.And:
			for _, k := range y.Kids {
				walk(k)
			}
		case *ra.Or:
			for _, k := range y.Kids {
				walk(k)
			}
		case *ra.Not:
			walk(y.Kid)
		case *ra.Arith:
			walk(y.L)
			walk(y.R)
		}
	}
	walk(e)
	return ok
}

// pushSelect pushes selection conjuncts into the operator tree as far as
// they go; conjuncts that cannot be pushed stay in a Select above `in`.
func pushSelect(preds []ra.Expr, in ra.Node, cat ra.Catalog) ra.Node {
	if len(preds) == 0 {
		return in
	}
	switch x := in.(type) {
	case *ra.Select:
		// Merge and retry below.
		return pushSelect(append(preds, conjuncts(x.Pred)...), x.In, cat)
	case *ra.Project:
		// Projection column names are references into the child schema, so
		// the predicates (which type-check against the projection output)
		// also type-check against the child.
		childSchema, err := ra.OutSchema(x.In, cat)
		if err == nil {
			var pushable, blocked []ra.Expr
			for _, p := range preds {
				if exprResolvable(p, childSchema) {
					pushable = append(pushable, p)
				} else {
					blocked = append(blocked, p)
				}
			}
			if len(pushable) > 0 {
				out := ra.Node(&ra.Project{Cols: x.Cols, In: pushSelect(pushable, x.In, cat)})
				if len(blocked) > 0 {
					out = &ra.Select{Pred: andOf(blocked), In: out}
				}
				return out
			}
		}
	case *ra.Rename:
		childSchema, err := ra.OutSchema(x.In, cat)
		if err == nil {
			var pushable, blocked []ra.Expr
			for _, p := range preds {
				if exprResolvable(p, childSchema) {
					pushable = append(pushable, p)
				} else {
					blocked = append(blocked, p)
				}
			}
			if len(pushable) > 0 {
				out := ra.Node(&ra.Rename{As: x.As, In: pushSelect(pushable, x.In, cat)})
				if len(blocked) > 0 {
					out = &ra.Select{Pred: andOf(blocked), In: out}
				}
				return out
			}
		}
	case *ra.Join:
		lSchema, errL := ra.OutSchema(x.L, cat)
		rSchema, errR := ra.OutSchema(x.R, cat)
		if errL == nil && errR == nil {
			var toL, toR, toCond, blocked []ra.Expr
			for _, p := range preds {
				inL := exprResolvable(p, lSchema)
				inR := exprResolvable(p, rSchema)
				switch {
				case inL && inR:
					// Shared (natural-join) attributes: either side works;
					// push left and keep correctness via the join itself.
					toL = append(toL, p)
				case inL:
					toL = append(toL, p)
				case inR:
					toR = append(toR, p)
				default:
					// Spans both sides: attach to the join condition when
					// the join is a theta join; for a natural join the
					// concatenated schema may rename shared columns, so
					// keep it above unless resolvable on the concatenated
					// schema.
					joinSchema, err := ra.OutSchema(x, cat)
					if err == nil && exprResolvable(p, joinSchema) {
						toCond = append(toCond, p)
					} else {
						blocked = append(blocked, p)
					}
				}
			}
			nl := x.L
			if len(toL) > 0 {
				nl = pushSelect(toL, x.L, cat)
			}
			nr := x.R
			if len(toR) > 0 {
				nr = pushSelect(toR, x.R, cat)
			}
			cond := x.Cond
			if len(toCond) > 0 {
				if x.Cond == nil {
					// Turning a natural join into a theta join would change
					// the schema; keep the predicates above instead.
					blocked = append(blocked, toCond...)
				} else {
					cond = andOf(append([]ra.Expr{x.Cond}, toCond...))
				}
			}
			out := ra.Node(&ra.Join{L: nl, R: nr, Cond: cond})
			if len(blocked) > 0 {
				out = &ra.Select{Pred: andOf(blocked), In: out}
			}
			return out
		}
	}
	return &ra.Select{Pred: andOf(preds), In: in}
}

// distributeJoinCond pushes one-sided conjuncts of a theta-join condition
// into the corresponding side.
func distributeJoinCond(j *ra.Join, cat ra.Catalog) ra.Node {
	lSchema, errL := ra.OutSchema(j.L, cat)
	rSchema, errR := ra.OutSchema(j.R, cat)
	if errL != nil || errR != nil {
		return j
	}
	var toL, toR, keep []ra.Expr
	for _, p := range conjuncts(j.Cond) {
		inL := exprResolvable(p, lSchema)
		inR := exprResolvable(p, rSchema)
		switch {
		case inL && !inR:
			toL = append(toL, p)
		case inR && !inL:
			toR = append(toR, p)
		default:
			keep = append(keep, p)
		}
	}
	if len(toL) == 0 && len(toR) == 0 {
		return j
	}
	nl, nr := j.L, j.R
	if len(toL) > 0 {
		nl = pushSelect(toL, j.L, cat)
	}
	if len(toR) > 0 {
		nr = pushSelect(toR, j.R, cat)
	}
	cond := andOf(keep)
	if cond == nil {
		// All conjuncts moved: keep a vacuous condition to preserve the
		// theta-join (concatenated) schema.
		cond = &ra.Cmp{Op: ra.EQ, L: &ra.Const{Val: relation.Int(1)}, R: &ra.Const{Val: relation.Int(1)}}
	}
	return &ra.Join{L: nl, R: nr, Cond: cond}
}

// EquiJoinPlan extracts hash-join key pairs from a theta-join condition:
// equality conjuncts whose two attribute references resolve on opposite
// sides. It returns the key column indices and the residual predicate (nil
// if none).
func EquiJoinPlan(cond ra.Expr, lSchema, rSchema relation.Schema) (lKeys, rKeys []int, residual ra.Expr) {
	var rest []ra.Expr
	for _, p := range conjuncts(cond) {
		if c, ok := p.(*ra.Cmp); ok && c.Op == ra.EQ {
			la, lok := c.L.(*ra.AttrRef)
			rb, rok := c.R.(*ra.AttrRef)
			if lok && rok {
				li, lerr := lSchema.Resolve(la.Name)
				ri, rerr := rSchema.Resolve(rb.Name)
				if lerr == nil && rerr == nil && !resolvesIn(rb.Name, lSchema) && !resolvesIn(la.Name, rSchema) {
					lKeys = append(lKeys, li)
					rKeys = append(rKeys, ri)
					continue
				}
				// Try the mirrored orientation.
				li2, lerr2 := lSchema.Resolve(rb.Name)
				ri2, rerr2 := rSchema.Resolve(la.Name)
				if lerr2 == nil && rerr2 == nil && !resolvesIn(la.Name, lSchema) && !resolvesIn(rb.Name, rSchema) {
					lKeys = append(lKeys, li2)
					rKeys = append(rKeys, ri2)
					continue
				}
			}
		}
		rest = append(rest, p)
	}
	return lKeys, rKeys, andOf(rest)
}

func resolvesIn(name string, s relation.Schema) bool {
	_, err := s.Resolve(name)
	return err == nil
}
