// Delta-incremental evaluation benchmarks: the course-workload sequential
// shrink loop — remove one tuple per step, re-check Q1 − Q2 after every
// removal — evaluated with the retained-state PreparedDiff (one EvalDelta +
// Commit per step) against per-candidate EvalBatchDiffs re-evaluation (one
// full bitvector engine pass per step; the steps are sequential, so they
// cannot be batched together). This is the acceptance benchmark for the
// delta subsystem (target: ≥5×); timings are exported to BENCH_delta.json
// via the BENCH_DELTA_JSON env var.
package engine_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"

	"repro/internal/course"
	"repro/internal/engine"
	"repro/internal/relation"
)

// shrinkWorkload is the delta benchmark's input: the |D|=5000 course
// instance (the q4-vs-q6 disagreeing pair, both containing difference
// operators, comes from course.Questions) and a fixed pseudo-random
// deletion order.
func shrinkWorkload() (db *relation.Database, order []relation.TupleID) {
	db = course.GenerateDB(5000, 7)
	all := db.AllIDs()
	rng := rand.New(rand.NewSource(3))
	perm := rng.Perm(len(all))
	order = make([]relation.TupleID, len(all))
	for i, j := range perm {
		order[i] = all[j]
	}
	return db, order
}

type deltaBenchRow struct {
	Steps           int     `json:"steps"`
	PreparedNsPerOp float64 `json:"prepared_ns_per_op"`
	BatchNsPerOp    float64 `json:"batch_ns_per_op"`
	Speedup         float64 `json:"speedup"`
}

var deltaBenchRows = map[int]*deltaBenchRow{}

func deltaBenchRowFor(steps int) *deltaBenchRow {
	if r, ok := deltaBenchRows[steps]; ok {
		return r
	}
	r := &deltaBenchRow{Steps: steps}
	deltaBenchRows[steps] = r
	return r
}

var deltaShrinkSteps = []int{64, 256, 1024}

// BenchmarkPreparedDiff times the shrink loop on the retained state: one
// PrepareDiff, then per step one single-tuple EvalDelta plus Commit.
func BenchmarkPreparedDiff(b *testing.B) {
	db, order := shrinkWorkload()
	q1, q2 := course.Questions()[3].Correct, course.Questions()[5].Correct
	// Equivalence guard before timing: the delta decisions must match a
	// fresh batched evaluation of the same kept set.
	p, err := engine.PrepareDiff(q1, q2, db, nil, engine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	kept := map[relation.TupleID]bool{}
	for _, id := range db.AllIDs() {
		kept[id] = true
	}
	for i := 0; i < 256; i++ {
		kept[order[i]] = false
		res, err := p.EvalDelta(order[i : i+1])
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Commit(); err != nil {
			b.Fatal(err)
		}
		if i%32 != 0 {
			continue
		}
		var cand []relation.TupleID
		for id, live := range kept {
			if live {
				cand = append(cand, id)
			}
		}
		sort.Slice(cand, func(a, b int) bool { return cand[a] < cand[b] })
		d12, d21, err := engine.EvalBatchDiffs(q1, q2, db, nil, [][]relation.TupleID{cand}, engine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Disagrees() != (d12.NonEmpty(0) || d21.NonEmpty(0)) {
			b.Fatalf("step %d: delta and batch disagree", i)
		}
	}
	for _, steps := range deltaShrinkSteps {
		row := deltaBenchRowFor(steps)
		b.Run(fmt.Sprintf("shrink/steps=%d", steps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := engine.PrepareDiff(q1, q2, db, nil, engine.Options{})
				if err != nil {
					b.Fatal(err)
				}
				for s := 0; s < steps; s++ {
					res, err := p.EvalDelta(order[s : s+1])
					if err != nil {
						b.Fatal(err)
					}
					if err := res.Commit(); err != nil {
						b.Fatal(err)
					}
				}
			}
			row.PreparedNsPerOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		})
	}
}

// BenchmarkApplyDelta times the bidirectional update path: per step one
// single-tuple update (delete + reinsert with a changed attribute) applied
// through ApplyDelta + Commit on retained state. Because Commit folds
// insertions into the underlying database, each iteration prepares over a
// private clone.
func BenchmarkApplyDelta(b *testing.B) {
	db, order := shrinkWorkload()
	q1, q2 := course.Questions()[3].Correct, course.Questions()[5].Correct
	const steps = 256
	tuples := make([]relation.Tuple, steps)
	rels := make([]string, steps)
	for s := 0; s < steps; s++ {
		rel, t, ok := db.Lookup(order[s])
		if !ok {
			b.Fatalf("workload id %d not in instance", order[s])
		}
		nt := append(relation.Tuple{}, t...)
		if len(nt) > 3 {
			nt[3] = relation.Int(int64(40 + s%61))
		}
		rels[s], tuples[s] = rel, nt
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := engine.PrepareDiff(q1, q2, db.Clone(), nil, engine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < steps; s++ {
			res, err := p.ApplyDelta(order[s:s+1], []engine.Insert{{Rel: rels[s], Tuple: tuples[s]}})
			if err != nil {
				b.Fatal(err)
			}
			if err := res.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEvalBatchDiffs times the same shrink loop without retained
// state: every step re-evaluates Q1 − Q2 / Q2 − Q1 on the current kept set
// with one EvalBatchDiffs pass (K = 1; the steps are sequential — step s+1
// depends on step s's answer — so they cannot share a batch).
func BenchmarkEvalBatchDiffs(b *testing.B) {
	db, order := shrinkWorkload()
	q1, q2 := course.Questions()[3].Correct, course.Questions()[5].Correct
	all := db.AllIDs()
	for _, steps := range deltaShrinkSteps {
		row := deltaBenchRowFor(steps)
		b.Run(fmt.Sprintf("shrink/steps=%d", steps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gone := make(map[relation.TupleID]bool, steps)
				for s := 0; s < steps; s++ {
					gone[order[s]] = true
					kept := make([]relation.TupleID, 0, len(all)-s-1)
					for _, id := range all {
						if !gone[id] {
							kept = append(kept, id)
						}
					}
					_, _, err := engine.EvalBatchDiffs(q1, q2, db, nil, [][]relation.TupleID{kept}, engine.Options{})
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			row.BatchNsPerOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		})
	}
	if path := os.Getenv("BENCH_DELTA_JSON"); path != "" {
		var rows []deltaBenchRow
		for _, steps := range deltaShrinkSteps {
			r := *deltaBenchRows[steps]
			if r.PreparedNsPerOp > 0 {
				r.Speedup = r.BatchNsPerOp / r.PreparedNsPerOp
			}
			rows = append(rows, r)
		}
		out := map[string]any{
			"workload": "course q4-vs-q6 sequential shrink loop, |D|=5000, one deletion per step",
			"results":  rows,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
