package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ra"
	"repro/internal/relation"
)

// randomGroupBy builds γ over a random compatible plan, mixing group-key
// arities (including the single whole-input group) and aggregate functions.
func randomGroupBy(rng *rand.Rand) *ra.GroupBy {
	var cols []string
	switch rng.Intn(3) {
	case 0:
		cols = []string{"a"}
	case 1:
		cols = []string{"a", "c"}
	}
	return &ra.GroupBy{
		GroupCols: cols,
		Aggs: []ra.AggSpec{
			{Func: ra.Count, As: "n"},
			{Func: ra.Sum, Attr: "b", As: "s"},
			{Func: ra.Min, Attr: "c", As: "mn"},
			{Func: ra.Max, Attr: "a", As: "mx"},
			{Func: ra.Count, Attr: "b", As: "nb"},
		},
		In: randomCompat(rng, 2),
	}
}

// TestParallelGroupByMatchesSerial: hash-partitioned γ produces exactly the
// serial rows (same group keys, same aggregate values), as a set.
func TestParallelGroupByMatchesSerial(t *testing.T) {
	popts := forceParallel(t)
	rng := rand.New(rand.NewSource(2718))
	for trial := 0; trial < 200; trial++ {
		db := randomDB(rng)
		q := randomGroupBy(rng)
		serial, err := Run[bool](Set, q, db, nil)
		if err != nil {
			t.Fatalf("trial %d: serial: %v\n%s", trial, err, q)
		}
		par, err := RunOpts[bool](Set, q, db, nil, popts)
		if err != nil {
			t.Fatalf("trial %d: parallel: %v\n%s", trial, err, q)
		}
		if !sameKeySets(keySet(serial.Tuples), keySet(par.Tuples)) {
			t.Fatalf("trial %d: parallel γ differs from serial\nquery: %s\nserial %v\nparallel %v",
				trial, q, serial.Tuples, par.Tuples)
		}
	}
}

// TestParallelGroupByDeterministic: the parallel row order is identical
// across runs for a fixed Parallelism.
func TestParallelGroupByDeterministic(t *testing.T) {
	popts := forceParallel(t)
	rng := rand.New(rand.NewSource(314))
	for trial := 0; trial < 40; trial++ {
		db := randomDB(rng)
		q := randomGroupBy(rng)
		first, err := RunOpts[bool](Set, q, db, nil, popts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for run := 0; run < 3; run++ {
			again, err := RunOpts[bool](Set, q, db, nil, popts)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if again.Len() != first.Len() {
				t.Fatalf("trial %d run %d: row count changed", trial, run)
			}
			for i := range first.Tuples {
				if !first.Tuples[i].Identical(again.Tuples[i]) {
					t.Fatalf("trial %d run %d: row %d order changed: %v vs %v",
						trial, run, i, first.Tuples[i], again.Tuples[i])
				}
			}
		}
	}
}

// TestParallelGroupByThreshold: below ParallelRowThreshold γ stays serial
// (row order matches the serial evaluator exactly).
func TestParallelGroupByThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	db := randomDB(rng)
	q := randomGroupBy(rng)
	serial, err := Run[bool](Set, q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Parallelism requested, but the input is far below the threshold.
	par, err := RunOpts[bool](Set, q, db, nil, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(par.Tuples) != fmt.Sprint(serial.Tuples) {
		t.Fatalf("small-input γ took the parallel path: %v vs %v", par.Tuples, serial.Tuples)
	}
}

// TestParallelGroupByLarge runs γ on an input wide enough to genuinely
// engage multiple shards with the production threshold, checking counts.
func TestParallelGroupByLarge(t *testing.T) {
	db := relation.NewDatabase()
	db.CreateRelation("L", relation.NewSchema(
		relation.Attr("a", relation.KindInt),
		relation.Attr("b", relation.KindInt),
		relation.Attr("c", relation.KindString)))
	rng := rand.New(rand.NewSource(8080))
	for i := 0; i < 3*ParallelRowThreshold; i++ {
		db.Insert("L", relation.NewTuple(
			relation.Int(int64(rng.Intn(500))),
			relation.Int(int64(i)),
			relation.String(fmt.Sprintf("g%d", rng.Intn(50)))))
	}
	q := &ra.GroupBy{
		GroupCols: []string{"c"},
		Aggs: []ra.AggSpec{
			{Func: ra.Count, As: "n"},
			{Func: ra.Sum, Attr: "b", As: "s"},
		},
		In: &ra.Rel{Name: "L"},
	}
	serial, err := Run[bool](Set, q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunOpts[bool](Set, q, db, nil, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sameKeySets(keySet(serial.Tuples), keySet(par.Tuples)) {
		t.Fatalf("large parallel γ differs: %d vs %d rows", serial.Len(), par.Len())
	}
}
