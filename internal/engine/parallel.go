package engine

import (
	"runtime"
	"sync/atomic"

	"repro/internal/pool"
	"repro/internal/ra"
	"repro/internal/relation"
)

// This file is the parallel physical layer: a hash-partitioned parallel
// equi-join and a partitioned parallel build (deduplicating ⊕-merge) used
// by base scans and unions. Both rest on the same property: partitioning
// by the hash of the relevant key (join key, or whole tuple) makes the
// shards independent — every pair of joinable tuples, and every pair of
// duplicate tuples, lands in the same shard — so shards can be processed
// concurrently with no shared mutable state and their outputs concatenated.
// Shard assignment uses a fixed hash (FNV-1a) and shard outputs are
// concatenated in shard order, so results are deterministic across runs.

// ParallelRowThreshold is the minimum combined input size (in rows) at
// which a physical operator fans out; smaller inputs stay serial because
// partitioning and goroutine overhead dominates. It is a variable so tests
// can force the parallel path on tiny inputs.
var ParallelRowThreshold = 4096

// NumWorkers returns the engine's natural parallelism: one worker per
// available CPU.
func NumWorkers() int { return runtime.GOMAXPROCS(0) }

// workerCount decides how many workers an operator over rows input rows
// may use: 1 (serial) unless parallelism was requested and the input is
// large enough to amortize fan-out overhead.
func (o Options) workerCount(rows int) int {
	if o.Parallelism <= 1 || rows < ParallelRowThreshold {
		return 1
	}
	return o.Parallelism
}

// fnvShard maps a key encoding to a shard in [0, shards) with FNV-1a.
// maphash would be faster but is randomly seeded per process; a fixed hash
// keeps shard assignment — and therefore output tuple order — deterministic
// across runs.
func fnvShard(key string, shards int) int {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(shards))
}

// shardByKey computes each tuple's join-key encoding in parallel and groups
// tuple positions by key shard. Tuples with a NULL in any key column never
// join (SQL equality semantics) and are dropped here, exactly as the serial
// hash join skips them.
func shardByKey[T any](rel *Rel[T], keyCols []int, shards, workers int) (pos [][]int, keys []string) {
	n := rel.Len()
	keys = make([]string, n)
	null := make([]bool, n)
	parallelRanges(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			k := rel.Tuples[i].Project(keyCols)
			if hasNullValue(k) {
				null[i] = true
				continue
			}
			keys[i] = k.Key()
		}
	})
	pos = make([][]int, shards)
	for i := 0; i < n; i++ {
		if null[i] {
			continue
		}
		s := fnvShard(keys[i], shards)
		pos[s] = append(pos[s], i)
	}
	return pos, keys
}

// parallelRanges splits [0, n) into one contiguous chunk per worker and
// processes the chunks concurrently.
func parallelRanges(workers, n int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	// fn never errors, so a non-nil result can only be a recovered worker
	// panic; swallowing it would return partial shards as if complete, so
	// resurface it in the calling goroutine (the request-level recovery
	// boundary handles it there).
	if err := pool.ForEach(workers, workers, func(w int) error {
		fn(w*n/workers, (w+1)*n/workers)
		return nil
	}); err != nil {
		panic(err)
	}
}

// parallelHashJoin joins l and r on the given key columns across `workers`
// hash partitions: both inputs are partitioned by join-key hash, each shard
// builds a hash table over its right partition and probes it with its left
// partition, and the shard outputs are concatenated in shard order. combine
// builds the output tuple for a candidate pair, reporting false when the
// residual θ-condition rejects it. The row budget is enforced globally with
// an atomic counter. Output tuples are distinct because the inputs are
// (distinct pairs concatenate to distinct tuples), so the result needs no
// ⊕-merge.
func parallelHashJoin[T any](s Semiring[T], l, r *Rel[T], lKeys, rKeys []int, workers, maxRows int, stop func() error, combine func(li, ri int) (relation.Tuple, bool, error), out *Rel[T]) error {
	lPos, lKeyStr := shardByKey(l, lKeys, workers, workers)
	rPos, rKeyStr := shardByKey(r, rKeys, workers, workers)

	locals := make([]*Rel[T], workers)
	var rows int64
	err := pool.ForEach(workers, workers, func(w int) error {
		build := make(map[string][]int, len(rPos[w]))
		for _, ri := range rPos[w] {
			k := rKeyStr[ri]
			build[k] = append(build[k], ri)
		}
		local := NewRel[T](out.Schema)
		var pairs int
		for _, li := range lPos[w] {
			for _, ri := range build[lKeyStr[li]] {
				if pairs++; stop != nil && pairs%stopPollStride == 0 {
					if err := stop(); err != nil {
						return err
					}
				}
				t, ok, err := combine(li, ri)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				// As in the serial emit: prune definite-zero products after
				// the θ-predicate, before the budget.
				ann := s.Times(l.Anns[li], r.Anns[ri])
				if s.IsZero(ann) {
					continue
				}
				if atomic.AddInt64(&rows, 1) > int64(maxRows) {
					return ErrRowBudget
				}
				local.appendDistinct(t, ann)
			}
		}
		locals[w] = local
		return nil
	})
	if err != nil {
		return err
	}
	concatShards(locals, out)
	return nil
}

// parallelBuild constructs a deduplicated annotated relation from n
// (tuple, annotation) pairs by partitioning on the hash of the full tuple
// encoding: all duplicates of a tuple land in the same shard, each shard
// ⊕-merges its pairs in ascending input order (so merged annotations are
// identical to the serial build's), and the shard outputs concatenate in
// shard order. It backs the parallel base-scan and union paths.
func parallelBuild[T any](s Semiring[T], workers, n int, tupleAt func(i int) relation.Tuple, annAt func(i int) (T, error), out *Rel[T]) error {
	keys := make([]string, n)
	parallelRanges(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			keys[i] = tupleAt(i).Key()
		}
	})
	shards := make([][]int, workers)
	for i := 0; i < n; i++ {
		s := fnvShard(keys[i], workers)
		shards[s] = append(shards[s], i)
	}
	locals := make([]*Rel[T], workers)
	err := pool.ForEach(workers, workers, func(w int) error {
		local := NewRel[T](out.Schema)
		local.index = make(map[string]int, len(shards[w]))
		for _, i := range shards[w] {
			ann, err := annAt(i)
			if err != nil {
				return err
			}
			if s.IsZero(ann) {
				// Mirror the serial base scan's zero-leaf pruning (union
				// inputs are never zero, so only base scans are affected).
				continue
			}
			k := keys[i]
			if j, ok := local.index[k]; ok {
				local.Anns[j] = s.Plus(local.Anns[j], ann)
				continue
			}
			local.index[k] = len(local.Tuples)
			local.Tuples = append(local.Tuples, tupleAt(i))
			local.Anns = append(local.Anns, ann)
		}
		locals[w] = local
		return nil
	})
	if err != nil {
		return err
	}
	concatShards(locals, out)
	return nil
}

// parallelDiff is the hash difference L − R across `workers` partitions:
// both sides are sharded by the hash of the full tuple encoding (an
// identical right tuple — the only kind that affects a left tuple — lands
// in the same shard), each shard indexes its right partition and probes it
// with its left partition in left order, and shard outputs concatenate in
// shard order. NULLs are not special here: the difference matches tuples by
// full-encoding identity, exactly like the serial probe. Deterministic for
// a fixed Parallelism.
func parallelDiff[T any](s Semiring[T], l, r *Rel[T], workers int) *Rel[T] {
	nl, nr := l.Len(), r.Len()
	lKeys := make([]string, nl)
	parallelRanges(workers, nl, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			lKeys[i] = l.Tuples[i].Key()
		}
	})
	rKeys := make([]string, nr)
	parallelRanges(workers, nr, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rKeys[i] = r.Tuples[i].Key()
		}
	})
	lPos := make([][]int, workers)
	for i := 0; i < nl; i++ {
		w := fnvShard(lKeys[i], workers)
		lPos[w] = append(lPos[w], i)
	}
	rPos := make([][]int, workers)
	for i := 0; i < nr; i++ {
		w := fnvShard(rKeys[i], workers)
		rPos[w] = append(rPos[w], i)
	}
	out := NewRel[T](l.Schema)
	locals := make([]*Rel[T], workers)
	// Shards share no mutable state and annAt never fails, so a non-nil
	// result can only be a recovered worker panic; resurface it rather
	// than concatenate partial shards (see parallelRanges).
	err := pool.ForEach(workers, workers, func(w int) error {
		idx := make(map[string]int, len(rPos[w]))
		for _, ri := range rPos[w] {
			idx[rKeys[ri]] = ri // right tuples are distinct: no collisions
		}
		local := NewRelCap[T](l.Schema, len(lPos[w]))
		for _, li := range lPos[w] {
			rAnn := s.Zero()
			if ri, ok := idx[lKeys[li]]; ok {
				rAnn = r.Anns[ri]
			}
			ann := s.Minus(l.Anns[li], rAnn)
			if s.IsZero(ann) {
				continue
			}
			local.appendDistinct(l.Tuples[li], ann)
		}
		locals[w] = local
		return nil
	})
	if err != nil {
		panic(err)
	}
	concatShards(locals, out)
	return out
}

// parallelGroupBy is γ across `workers` hash partitions of the group key:
// every member of a group shares the key, so a group lives entirely in one
// shard and each shard aggregates its groups independently, visiting members
// in input order (so order-sensitive aggregates match the serial result
// row-for-row). Shards emit rows in first-occurrence order of their group
// keys and the shard outputs concatenate in shard order — deterministic for
// a fixed Parallelism, like the other parallel operators.
func parallelGroupBy[T any](s Semiring[T], g *ra.GroupBy, in *Rel[T], gIdx, aIdx []int, outSchema relation.Schema, workers int) (*Rel[T], error) {
	n := in.Len()
	keyTuples := make([]relation.Tuple, n)
	keys := make([]string, n)
	parallelRanges(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			keyTuples[i] = in.Tuples[i].Project(gIdx)
			keys[i] = keyTuples[i].Key()
		}
	})
	shards := make([][]int, workers)
	for i := 0; i < n; i++ {
		w := fnvShard(keys[i], workers)
		shards[w] = append(shards[w], i)
	}
	out := NewRel[T](outSchema)
	locals := make([]*Rel[T], workers)
	err := pool.ForEach(workers, workers, func(w int) error {
		groups := map[string][]relation.Tuple{}
		var order []string
		first := map[string]int{}
		for _, i := range shards[w] {
			ks := keys[i]
			if _, ok := groups[ks]; !ok {
				order = append(order, ks)
				first[ks] = i
			}
			groups[ks] = append(groups[ks], in.Tuples[i])
		}
		local := NewRelCap[T](outSchema, len(order))
		for _, ks := range order {
			row := keyTuples[first[ks]].Clone()
			for i, a := range g.Aggs {
				v, err := computeAgg(a.Func, aIdx[i], groups[ks])
				if err != nil {
					return err
				}
				row = append(row, v)
			}
			local.appendDistinct(row, s.One())
		}
		locals[w] = local
		return nil
	})
	if err != nil {
		return nil, err
	}
	concatShards(locals, out)
	return out, nil
}

// concatShards appends the shard-local relations to out in shard order. The
// merged index is left nil and rebuilt lazily on first probe.
func concatShards[T any](locals []*Rel[T], out *Rel[T]) {
	total := 0
	for _, l := range locals {
		total += l.Len()
	}
	out.Tuples = make([]relation.Tuple, 0, total)
	out.Anns = make([]T, 0, total)
	for _, l := range locals {
		out.Tuples = append(out.Tuples, l.Tuples...)
		out.Anns = append(out.Anns, l.Anns...)
	}
}
