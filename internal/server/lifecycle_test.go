package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// withFaults enables a fault plan for the test and disables injection on
// cleanup. Fault-injection state is process-global, so these tests must
// not run in parallel with each other.
func withFaults(t *testing.T, seed int64, rules map[faults.Point]faults.Rule) *faults.Plan {
	t.Helper()
	plan := faults.NewPlan(seed, rules)
	faults.Enable(plan)
	t.Cleanup(faults.Disable)
	return plan
}

func TestHealthzProbes(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	var body map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &body); code != http.StatusOK {
		t.Fatalf("ready healthz = %d, want 200", code)
	}
	if body["state"] != "ready" {
		t.Fatalf("state = %v, want ready", body["state"])
	}

	srv.BeginDrain()
	if code := getJSON(t, ts.URL+"/healthz", &body); code != http.StatusServiceUnavailable {
		t.Fatalf("draining readiness probe = %d, want 503", code)
	}
	if body["state"] != "draining" || body["status"] != "draining" {
		t.Fatalf("draining body = %v", body)
	}
	// Liveness stays green while draining: the process is healthy, it just
	// refuses new work.
	if code := getJSON(t, ts.URL+"/healthz?probe=live", &body); code != http.StatusOK {
		t.Fatalf("draining liveness probe = %d, want 200", code)
	}
}

// A draining server refuses new explain/grade requests with a structured
// 503 + Retry-After and counts them, without touching the search pipeline.
func TestDrainRefusesNewRequests(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	srv.BeginDrain()

	var resp ExplainResponse
	code := postJSON(t, ts.URL+"/explain", ExplainRequest{
		Q1: refQ, Q2: wrongQ, Instance: courseSpec(300),
	}, &resp)
	if code != http.StatusServiceUnavailable || resp.Status != StatusDraining {
		t.Fatalf("drained explain = %d / %q, want 503 / draining", code, resp.Status)
	}
	if resp.RetryAfterS <= 0 {
		t.Fatalf("draining response carries no retry_after_s: %+v", resp)
	}
	if n := srv.drainRefused.Load(); n != 1 {
		t.Fatalf("drainRefused = %d, want 1", n)
	}
}

// The Retry-After header must mirror retry_after_s on refusals.
func TestDrainSetsRetryAfterHeader(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	srv.BeginDrain()
	resp, err := http.Post(ts.URL+"/explain", "application/json",
		jsonBody(t, ExplainRequest{Q1: refQ, Q2: refQ, Instance: courseSpec(300)}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("no Retry-After header on a draining refusal")
	}
}

// Retry-After is adaptive, not a constant: it scales with the latency
// EWMA and the queue depth (queue-ahead x service-time / slots), clamped
// to [1s, 60s], so a backed-up server pushes clients out far enough that
// their retries don't re-amplify the overload.
func TestAdaptiveRetryAfter(t *testing.T) {
	srv := mustNew(t, Config{MaxConcurrent: 2, DefaultTimeout: 10 * time.Second})

	// Cold server, empty queue: no latency signal yet, so a quarter of the
	// default budget (2.5s) stands in per request -> ceil(2.5/2) = 2s.
	if got := srv.retryAfterS(); got != 2 {
		t.Fatalf("cold retryAfterS = %d, want 2", got)
	}

	// Fast requests, empty queue: "come right back" (the 1s floor).
	for i := 0; i < 100; i++ {
		srv.observeLatency(100)
	}
	if got := srv.retryAfterS(); got != 1 {
		t.Fatalf("fast+idle retryAfterS = %d, want 1", got)
	}

	// Same latency, deep queue: 100 queued ahead at ~100ms each over 2
	// slots -> ceil(100 * 101 / 2 / 1000) = 6s. The backlog alone moved it.
	srv.waiting.Store(100)
	if got := srv.retryAfterS(); got != 6 {
		t.Fatalf("fast+backlog retryAfterS = %d, want 6", got)
	}

	// Slow requests and a deep queue: clamped at the 60s ceiling rather
	// than quoting minutes.
	for i := 0; i < 200; i++ {
		srv.observeLatency(10_000)
	}
	if got := srv.retryAfterS(); got != 60 {
		t.Fatalf("slow+backlog retryAfterS = %d, want 60", got)
	}
	srv.waiting.Store(0)

	// The live value is what refusals quote: a draining server's 503
	// carries the adaptive number, header and body agreeing.
	srv2, ts := newTestServer(t, Config{MaxConcurrent: 2})
	for i := 0; i < 100; i++ {
		srv2.observeLatency(4_000) // ~4s per request observed
	}
	srv2.BeginDrain()
	resp, err := http.Post(ts.URL+"/explain", "application/json",
		jsonBody(t, ExplainRequest{Q1: refQ, Q2: refQ, Instance: courseSpec(300)}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body ExplainResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	want := srv2.retryAfterS()
	if body.RetryAfterS != want {
		t.Fatalf("draining retry_after_s = %d, want the adaptive %d", body.RetryAfterS, want)
	}
	if h := resp.Header.Get("Retry-After"); h != fmt.Sprint(want) {
		t.Fatalf("Retry-After header = %q, want %d", h, want)
	}
	if want < 2 {
		t.Fatalf("adaptive Retry-After = %d under 4s-latency load; the signal is not being used", want)
	}
}

// CancelInFlight during a slow request must budget-cancel it: the request
// returns a structured 200 budget_exceeded, not a hang or a dropped
// connection. The stall fault keeps the request in the engine long enough
// for the drain to land (SIGTERM during solver-heavy explain, in effect).
func TestDrainCancelsInFlight(t *testing.T) {
	withFaults(t, 1, map[faults.Point]faults.Rule{
		faults.EngineEval: {StallEvery: 1, Stall: 100 * time.Millisecond},
	})
	srv, ts := newTestServer(t, Config{})

	type result struct {
		code int
		resp ExplainResponse
	}
	done := make(chan result, 1)
	go func() {
		var r result
		r.code = postJSON(t, ts.URL+"/explain", ExplainRequest{
			Q1: refQ, Q2: wrongQ, Instance: courseSpec(500), TimeoutMS: 30_000,
		}, &r.resp)
		done <- r
	}()

	// Let the request reach the engine, then drain hard.
	time.Sleep(50 * time.Millisecond)
	srv.BeginDrain()
	srv.CancelInFlight()

	select {
	case r := <-done:
		if r.code != http.StatusOK || r.resp.Status != StatusBudgetExceeded {
			t.Fatalf("cancelled in-flight request = %d / %q (%s), want 200 / budget_exceeded",
				r.code, r.resp.Status, r.resp.Error)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request did not finish after CancelInFlight")
	}
}

// A recovered panic must leave the process and its caches fully serviceable:
// the same request succeeds right after, still hitting the warmed caches.
func TestCachesSurviveRecoveredPanic(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	req := ExplainRequest{Q1: refQ, Q2: wrongQ, Instance: courseSpec(500)}

	// Warm the caches.
	var warm ExplainResponse
	if code := postJSON(t, ts.URL+"/explain", req, &warm); code != http.StatusOK || warm.Status != StatusOK {
		t.Fatalf("warm-up = %d / %q (%s)", code, warm.Status, warm.Error)
	}

	// Panic on every engine evaluation: the request must fail structurally.
	withFaults(t, 1, map[faults.Point]faults.Rule{
		faults.EngineEval: {PanicEvery: 1},
	})
	var boom ExplainResponse
	if code := postJSON(t, ts.URL+"/explain", req, &boom); code != http.StatusInternalServerError || boom.Status != StatusError {
		t.Fatalf("injected panic = %d / %q (%s), want 500 / error", code, boom.Status, boom.Error)
	}
	if n := srv.panicsRecovered.Load(); n == 0 {
		t.Fatal("panicsRecovered counter did not move")
	}
	faults.Disable()

	// The process survived with its caches intact: the same request succeeds
	// and reports cache hits for both the plans and the instance.
	var after ExplainResponse
	if code := postJSON(t, ts.URL+"/explain", req, &after); code != http.StatusOK || after.Status != StatusOK {
		t.Fatalf("post-panic request = %d / %q (%s), want 200 / ok", code, after.Status, after.Error)
	}
	if after.Cache == nil || after.Cache.Instance != "hit" || after.Cache.PlanQ1 != "hit" {
		t.Fatalf("caches did not survive the panic: %+v", after.Cache)
	}
	var health map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz after panic = %d, want 200", code)
	}
}

// The ladder levels follow the queue-depth thresholds and the latency EWMA.
func TestDegradeLevels(t *testing.T) {
	srv := mustNew(t, Config{MaxConcurrent: 2}) // thresholds 4 / 8 / 16
	set := func(waiting int64) int {
		srv.waiting.Store(waiting)
		return srv.degradeLevel()
	}
	if lvl := set(0); lvl != degradeNone {
		t.Fatalf("idle level = %d, want none", lvl)
	}
	if lvl := set(4); lvl != degradeClamped {
		t.Fatalf("level at clamp threshold = %d, want clamped", lvl)
	}
	if lvl := set(8); lvl != degradeSolverFree {
		t.Fatalf("level at solver-free threshold = %d, want solver_free", lvl)
	}
	if lvl := set(16); lvl != degradeShed {
		t.Fatalf("level at shed threshold = %d, want shed", lvl)
	}
	// Latency alone (queue empty) triggers clamping once the EWMA passes
	// 3/4 of the default budget.
	srv.waiting.Store(0)
	for i := 0; i < 100; i++ {
		srv.observeLatency(float64(srv.cfg.DefaultTimeout.Milliseconds()))
	}
	if lvl := srv.degradeLevel(); lvl != degradeClamped {
		t.Fatalf("latency-driven level = %d, want clamped", lvl)
	}
}

func TestClampBudgets(t *testing.T) {
	srv := mustNew(t, Config{DefaultTimeout: 8 * time.Second}) // degraded: 2s / 20000
	b, c := srv.clampBudgets(8*time.Second, 0)
	if b != 2*time.Second || c != 20_000 {
		t.Fatalf("clamp(8s, 0) = %v, %d", b, c)
	}
	b, c = srv.clampBudgets(time.Second, 500)
	if b != time.Second || c != 500 {
		t.Fatalf("clamp(1s, 500) = %v, %d (tighter-than-clamp values must pass through)", b, c)
	}
}

// At the solver-free level the request still gets a verified counterexample
// (greedy shrink), labelled as degraded.
func TestDegradedSolverFree(t *testing.T) {
	srv := mustNew(t, Config{DegradeSolverFreeQueue: 1, DegradeShedQueue: 100})
	srv.waiting.Store(2)
	code, resp := srv.explain(context.Background(), &ExplainRequest{
		Q1: refQ, Q2: wrongQ, Instance: courseSpec(500),
	}, "t")
	if code != http.StatusOK || resp.Status != StatusOK {
		t.Fatalf("degraded explain = %d / %q (%s), want 200 / ok", code, resp.Status, resp.Error)
	}
	if resp.Degraded != "solver_free" {
		t.Fatalf("degraded = %q, want solver_free", resp.Degraded)
	}
	if resp.Stats == nil || resp.Stats.Algorithm != "ShrinkGreedy" {
		t.Fatalf("stats = %+v, want the ShrinkGreedy algorithm", resp.Stats)
	}
	if resp.Counterexample == nil || resp.Counterexample.Size == 0 {
		t.Fatal("no counterexample from the solver-free path")
	}
}

// Past the shed threshold requests get a structured 429.
func TestDegradedShed(t *testing.T) {
	srv := mustNew(t, Config{DegradeShedQueue: 1})
	srv.waiting.Store(1)
	code, resp := srv.explain(context.Background(), &ExplainRequest{
		Q1: refQ, Q2: refQ, Instance: courseSpec(300),
	}, "t")
	if code != http.StatusTooManyRequests || resp.Status != StatusShed {
		t.Fatalf("shed explain = %d / %q, want 429 / shed", code, resp.Status)
	}
	if resp.RetryAfterS <= 0 {
		t.Fatal("shed response carries no retry_after_s")
	}
	if n := srv.shedResponses.Load(); n != 1 {
		t.Fatalf("shedResponses = %d, want 1", n)
	}
}

// The per-tenant token bucket throttles one tenant without touching others.
func TestTenantRateLimit(t *testing.T) {
	srv, ts := newTestServer(t, Config{TenantRate: 0.01, TenantBurst: 1})
	post := func(tenant string) (int, string, ExplainResponse) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/explain",
			jsonBody(t, ExplainRequest{Q1: refQ, Q2: refQ, Instance: courseSpec(300)}))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body ExplainResponse
		decodeBody(t, resp, &body)
		return resp.StatusCode, resp.Header.Get("Retry-After"), body
	}

	if code, _, body := post("alice"); code != http.StatusOK {
		t.Fatalf("alice #1 = %d (%s), want 200", code, body.Error)
	}
	code, retry, body := post("alice")
	if code != http.StatusTooManyRequests || body.Status != StatusShed {
		t.Fatalf("alice #2 = %d / %q, want 429 / shed", code, body.Status)
	}
	if retry == "" || body.RetryAfterS <= 0 {
		t.Fatalf("rate-limited response has no Retry-After (header %q, body %d)", retry, body.RetryAfterS)
	}
	// A different tenant has its own bucket.
	if code, _, b := post("bob"); code != http.StatusOK {
		t.Fatalf("bob = %d (%s), want 200", code, b.Error)
	}
	if n := srv.rateLimited.Load(); n != 1 {
		t.Fatalf("rateLimited = %d, want 1", n)
	}
}

// Freed slots rotate round-robin across tenants with queued waiters, so a
// tenant with a deep queue cannot starve the others.
func TestFairQueueRoundRobin(t *testing.T) {
	q := NewFairQueue(1)
	if !q.Acquire(context.Background(), "main") {
		t.Fatal("initial acquire failed")
	}

	order := make(chan string, 3)
	var wg sync.WaitGroup
	queued := 0
	start := func(label, tenant string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if q.Acquire(context.Background(), tenant) {
				order <- label
				q.Release()
			}
		}()
		// Wait until the waiter is actually queued so the enqueue order —
		// and therefore the expected grant order — is deterministic.
		queued++
		for {
			q.mu.Lock()
			var n int
			for _, ws := range q.queues {
				n += len(ws)
			}
			q.mu.Unlock()
			if n >= queued {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	start("a1", "a")
	start("a2", "a")
	start("b1", "b")

	q.Release() // main's slot: a1 → (a1 releases) b1 → (b1 releases) a2
	wg.Wait()
	close(order)
	var got []string
	for l := range order {
		got = append(got, l)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order = %v, want %v (round-robin across tenants)", got, want)
		}
	}
}

// A waiter whose context dies while queued must be skipped by the grant
// path, not granted a slot nobody will release.
func TestFairQueueCanceledWaiter(t *testing.T) {
	q := NewFairQueue(1)
	if !q.Acquire(context.Background(), "a") {
		t.Fatal("initial acquire failed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() { done <- q.Acquire(ctx, "b") }()
	for {
		q.mu.Lock()
		n := len(q.queues["b"])
		q.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if ok := <-done; ok {
		t.Fatal("canceled waiter was admitted")
	}
	q.Release()
	// The slot must be free again despite the dead waiter in the queue.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if !q.Acquire(ctx2, "c") {
		t.Fatal("slot lost to a canceled waiter")
	}
	q.Release()
}
