package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/course"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/pool"
	"repro/internal/ra"
	"repro/internal/raparser"
	"repro/internal/relation"
)

// Config tunes a Server. The zero value is usable; Normalize fills in the
// defaults below.
type Config struct {
	// PlanCacheSize bounds the LRU cache of parsed query plans, keyed by
	// whitespace-normalized RA text (default 256 entries).
	PlanCacheSize int
	// InstanceCacheSize bounds the LRU cache of generated course/TPC-H
	// instances (default 8; instances dominate the server's memory, so the
	// cap is deliberately small).
	InstanceCacheSize int
	// SessionCacheSize bounds how many live-grading sessions stay resident
	// (default 64). Creating past the cap evicts the least recently used
	// session; its subsequent revisions answer structured 404s.
	SessionCacheSize int
	// MaxConcurrent bounds how many explanations run at once; further
	// requests queue until a slot frees or their deadline passes. The
	// default is one slot per pool worker divided by nothing — i.e.
	// pool.DefaultWorkers — because each explanation may itself fan out
	// over the worker pool; admission keeps the multiplied parallelism
	// bounded instead of oversubscribing the machine.
	MaxConcurrent int
	// DefaultTimeout is the per-request wall-clock budget when the request
	// does not set one (default 10s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the budget a request may ask for (default 60s).
	MaxTimeout time.Duration
	// MaxInstanceTuples caps the size of any instance the server will
	// generate or accept inline (default 200000 tuples).
	MaxInstanceTuples int
	// MaxBodyBytes caps a request body (default 8 MiB — inline instances
	// can be large).
	MaxBodyBytes int64

	// Degradation ladder thresholds (see degrade.go). The queue depths are
	// absolute waiting-request counts; Normalize defaults them to 2×, 4×
	// and 8× MaxConcurrent.
	DegradeClampQueue      int
	DegradeSolverFreeQueue int
	DegradeShedQueue       int
	// DegradedTimeout is the wall-clock budget cap applied at ladder level
	// 1+ (default DefaultTimeout/4).
	DegradedTimeout time.Duration
	// DegradedMaxConflicts is the per-SAT-call conflict cap applied at
	// ladder level 1+ (default 20000).
	DegradedMaxConflicts int64

	// TenantRate enables per-tenant token-bucket rate limiting: sustained
	// requests/second per tenant (0 disables). TenantBurst is the bucket
	// capacity (default 1 when rate limiting is on).
	TenantRate  float64
	TenantBurst int

	// AuditPath appends a JSONL audit record per /explain//grade outcome
	// to this file (see audit.go). AuditWriter overrides it with an
	// arbitrary writer (tests); empty/nil disables auditing.
	AuditPath   string
	AuditWriter io.Writer
}

// Normalize fills unset fields with their defaults.
func (c Config) Normalize() Config {
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 256
	}
	if c.InstanceCacheSize == 0 {
		c.InstanceCacheSize = 8
	}
	if c.SessionCacheSize == 0 {
		c.SessionCacheSize = 64
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = pool.DefaultWorkers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxInstanceTuples <= 0 {
		c.MaxInstanceTuples = 200_000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.DegradeClampQueue <= 0 {
		c.DegradeClampQueue = 2 * c.MaxConcurrent
	}
	if c.DegradeSolverFreeQueue <= 0 {
		c.DegradeSolverFreeQueue = 4 * c.MaxConcurrent
	}
	if c.DegradeShedQueue <= 0 {
		c.DegradeShedQueue = 8 * c.MaxConcurrent
	}
	if c.DegradedTimeout <= 0 {
		c.DegradedTimeout = c.DefaultTimeout / 4
	}
	if c.DegradedMaxConflicts <= 0 {
		c.DegradedMaxConflicts = 20_000
	}
	return c
}

// Server is the long-lived RATest service: it keeps parsed query plans and
// generated instances resident across requests, bounds concurrent
// explanations with an admission semaphore, and enforces per-request
// wall-clock/row/conflict budgets. All handler state is either immutable
// after construction or guarded (LRU mutexes, atomics), so one Server
// serves concurrent requests.
type Server struct {
	cfg       Config
	plans     *lru[string, *plannedQuery]
	instances *lru[string, *instance]
	sessions  *lru[string, *session]
	admission *FairQueue
	limiter   *TenantLimiter
	audit     *auditLog
	started   time.Time

	// Lifecycle: ready/draining state plus the hard-cancel signal fanned
	// out to every in-flight request context (see lifecycle.go).
	state      atomic.Int32
	hardCtx    context.Context
	hardCancel context.CancelFunc

	// latEWMA holds math.Float64bits of the request-latency EWMA (ms).
	latEWMA atomic.Uint64

	// Counters. Typed atomics: /stats reads them while handlers write, so
	// plain ints would tear under -race (and on 32-bit, in fact).
	explainReqs     atomic.Int64
	gradeReqs       atomic.Int64
	okResponses     atomic.Int64
	agreeResponses  atomic.Int64
	budgetExceeded  atomic.Int64
	errorResponses  atomic.Int64
	shedResponses   atomic.Int64
	drainRefused    atomic.Int64
	panicsRecovered atomic.Int64
	rateLimited     atomic.Int64
	inFlight        atomic.Int64
	waiting         atomic.Int64

	// Live-grading session state (see session.go).
	sessionSeq       atomic.Int64
	sessionReqs      atomic.Int64
	sessionsCreated  atomic.Int64
	sessionsEvicted  atomic.Int64
	sessionsDeleted  atomic.Int64
	sessionsPoisoned atomic.Int64
	sessionsNotFound atomic.Int64
	revIncremental   atomic.Int64
	revReprepare     atomic.Int64
	revFallback      atomic.Int64
}

// New builds a Server from the configuration. It fails only on audit-log
// setup (an unopenable path).
func New(cfg Config) (*Server, error) {
	cfg = cfg.Normalize()
	audit, err := newAuditLog(cfg.AuditPath, cfg.AuditWriter)
	if err != nil {
		return nil, err
	}
	hardCtx, hardCancel := context.WithCancel(context.Background())
	srv := &Server{
		cfg:        cfg,
		plans:      newLRU[string, *plannedQuery](cfg.PlanCacheSize),
		instances:  newLRU[string, *instance](cfg.InstanceCacheSize),
		sessions:   newLRU[string, *session](cfg.SessionCacheSize),
		admission:  NewFairQueue(cfg.MaxConcurrent),
		limiter:    NewTenantLimiter(cfg.TenantRate, cfg.TenantBurst),
		audit:      audit,
		started:    time.Now(),
		hardCtx:    hardCtx,
		hardCancel: hardCancel,
	}
	srv.sessions.onEvict = srv.evictSession
	return srv, nil
}

// Handler returns the server's HTTP routing table. Every handler runs
// under the panic-isolation wrapper: a panic anywhere in the request path
// becomes a structured 500 with the stack in the audit log, and the
// process — with its caches — stays up.
func (srv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/explain", srv.wrap("/explain", srv.handleExplain))
	mux.HandleFunc("/grade", srv.wrap("/grade", srv.handleGrade))
	mux.HandleFunc("/healthz", srv.wrap("/healthz", srv.handleHealthz))
	mux.HandleFunc("/stats", srv.wrap("/stats", srv.handleStats))
	srv.sessionRoutes(mux)
	return mux
}

// wrap is the per-request panic-isolation boundary for everything the
// handler goroutine runs directly (the pool recovers its own workers and
// surfaces their panics as *pool.PanicError returns instead).
func (srv *Server) wrap(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				srv.panicsRecovered.Add(1)
				srv.errorResponses.Add(1)
				srv.audit.append(&AuditEntry{
					Endpoint:   endpoint,
					HTTPStatus: http.StatusInternalServerError,
					Status:     StatusError,
					Error:      "panic recovered in handler",
					Panic:      fmt.Sprint(rec),
					Stack:      string(debug.Stack()),
				})
				writeJSON(w, http.StatusInternalServerError, &ExplainResponse{
					Status: StatusError,
					Error:  fmt.Sprintf("internal error (recovered): %v", rec),
				})
			}
		}()
		faults.Inject(faults.Handler)
		h(w, r)
	}
}

// Request statuses.
const (
	StatusOK             = "ok"              // counterexample found
	StatusAgree          = "agree"           // queries agree on the instance
	StatusBudgetExceeded = "budget_exceeded" // wall-clock budget ran out
	StatusError          = "error"           // malformed request or failed search
	StatusShed           = "shed"            // 429: overload shed or tenant over rate limit
	StatusDraining       = "draining"        // 503: server is shutting down
	StatusUnavailable    = "unavailable"     // 503: no worker replica could serve (cluster frontend)
	StatusDeleted        = "deleted"         // session released by DELETE /session/{id}
)

// Cluster propagation headers: the frontend assigns a request id and a
// 1-based attempt counter per try; the worker echoes the id and reports
// the degradation level it applied, so the frontend and worker audit logs
// join on the id and the frontend can account degraded answers without
// re-parsing bodies.
const (
	HeaderRequestID = "X-Ratest-Request-Id"
	HeaderAttempt   = "X-Ratest-Attempt"
	HeaderDegraded  = "X-Ratest-Degraded"
)

// requestIDOf reads the frontend-assigned cluster headers off a request.
func requestIDOf(r *http.Request) (string, int) {
	attempt, _ := strconv.Atoi(r.Header.Get(HeaderAttempt))
	return r.Header.Get(HeaderRequestID), attempt
}

// writeClusterHeaders echoes the request id and reports the applied
// degradation level on the response.
func writeClusterHeaders(w http.ResponseWriter, reqID, degraded string) {
	if reqID != "" {
		w.Header().Set(HeaderRequestID, reqID)
	}
	if degraded != "" {
		w.Header().Set(HeaderDegraded, degraded)
	}
}

// ExplainRequest is the body of POST /explain.
type ExplainRequest struct {
	// Q1 is the reference (correct) query, Q2 the query under test, both
	// in the textual RA syntax.
	Q1 string `json:"q1"`
	Q2 string `json:"q2"`
	// Instance names the database instance to explain against.
	Instance InstanceSpec `json:"instance"`
	// Algorithm picks a specific algorithm (ratest.Options.Algorithm);
	// empty means automatic dispatch.
	Algorithm string `json:"algorithm,omitempty"`
	// Params binds @-parameters; values are parsed like instance literals.
	Params map[string]string `json:"params,omitempty"`
	// TimeoutMS is the wall-clock budget in milliseconds (0 = the server
	// default; capped at the server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxRows tightens the intermediate-row budget for this request.
	MaxRows int `json:"max_rows,omitempty"`
	// MaxConflicts bounds each SAT call's conflicts for this request.
	MaxConflicts int64 `json:"max_conflicts,omitempty"`
	// NoConstraints drops the instance's integrity constraints (foreign
	// keys stop being enforced on counterexamples).
	NoConstraints bool `json:"no_constraints,omitempty"`
	// ExplainPlan opts into the "plan" response field: what the cost-based
	// join planner decided for each query against this instance.
	ExplainPlan bool `json:"explain_plan,omitempty"`
	// Tenant identifies the requesting tenant for rate limiting and fair
	// queueing (the X-Tenant header is the fallback; empty means the
	// shared anonymous bucket).
	Tenant string `json:"tenant,omitempty"`
}

// PlanJoinJSON is one join of a planned region: the subtree it computes and
// the planner's cardinality estimate. ActualRows is -1: the search pipeline
// evaluates queries many times over many subinstances, so there is no
// single "actual" to report (the experiments CLI's -plan flag measures one).
type PlanJoinJSON struct {
	Expr       string  `json:"expr"`
	EstRows    float64 `json:"est_rows"`
	ActualRows int64   `json:"actual_rows"`
}

// PlanRegionJSON is one join region of a planned query.
type PlanRegionJSON struct {
	Leaves      []string       `json:"leaves,omitempty"`
	Order       string         `json:"order,omitempty"`
	Planned     bool           `json:"planned"`
	Reason      string         `json:"reason,omitempty"`
	Acyclic     bool           `json:"acyclic"`
	SemiJoins   int            `json:"semi_joins"`
	EstPeakRows float64        `json:"est_peak_rows"`
	Joins       []PlanJoinJSON `json:"joins,omitempty"`
}

// PlanJSON is the opt-in /explain "plan" field: the join planner's
// decisions for both queries against the request's instance.
type PlanJSON struct {
	Q1 []PlanRegionJSON `json:"q1,omitempty"`
	Q2 []PlanRegionJSON `json:"q2,omitempty"`
}

// CERelation is one relation of a counterexample, rendered for JSON.
type CERelation struct {
	Name    string     `json:"name"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// CEJSON renders a counterexample.
type CEJSON struct {
	Size      int               `json:"size"`
	Relations []CERelation      `json:"relations"`
	IDs       []int             `json:"ids"`
	Witness   []string          `json:"witness,omitempty"`
	Params    map[string]string `json:"params,omitempty"`
	Rendered  string            `json:"rendered"`
}

// StatsJSON carries the per-request timing breakdown (core.Stats). On a
// budget-exceeded response only Algorithm and SolverStatus ("unknown") are
// meaningful; the timings are the partial elapsed values.
type StatsJSON struct {
	Algorithm    string  `json:"algorithm"`
	TotalMS      float64 `json:"total_ms"`
	RawEvalMS    float64 `json:"raw_eval_ms"`
	ProvEvalMS   float64 `json:"prov_eval_ms"`
	SolverMS     float64 `json:"solver_ms"`
	ModelsTried  int     `json:"models_tried"`
	WitnessSize  int     `json:"witness_size"`
	Optimal      bool    `json:"optimal"`
	SolverStatus string  `json:"solver_status"`
}

// CacheJSON reports which caches a request hit.
type CacheJSON struct {
	PlanQ1   string `json:"plan_q1,omitempty"`
	PlanQ2   string `json:"plan_q2,omitempty"`
	Instance string `json:"instance,omitempty"`
}

// ExplainResponse is the body of a POST /explain response. Budget
// exhaustion is a 200 with Status "budget_exceeded" and partial stats — a
// slow request is a service outcome, not a server failure.
type ExplainResponse struct {
	Status         string     `json:"status"`
	Counterexample *CEJSON    `json:"counterexample,omitempty"`
	Stats          *StatsJSON `json:"stats,omitempty"`
	Cache          *CacheJSON `json:"cache,omitempty"`
	Plan           *PlanJSON  `json:"plan,omitempty"`
	// Degraded names the overload-ladder level applied to this request
	// ("clamped", "solver_free"); empty means a full-fidelity answer.
	Degraded string `json:"degraded,omitempty"`
	// RetryAfterS, when > 0, is mirrored into the Retry-After header (shed
	// and draining responses).
	RetryAfterS int     `json:"retry_after_s,omitempty"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	Error       string  `json:"error,omitempty"`

	// Recovered-panic forensics for the audit log; never serialized to
	// clients.
	panicValue string
	panicStack string
}

// GradeRequest is the body of POST /grade: grade a submitted query against
// one of the course assignment questions (the instance defaults to the
// course workload and must be course or inline kind).
type GradeRequest struct {
	// Question is the course question id (q1..q8).
	Question string `json:"question"`
	// Q is the submitted query in the textual RA syntax.
	Q string `json:"q"`
	// Tenant identifies the requesting student for rate limiting and fair
	// queueing (X-Tenant header is the fallback).
	Tenant string `json:"tenant,omitempty"`
	// Instance defaults to {kind: course, size: 1000, seed: 1}.
	Instance     InstanceSpec      `json:"instance,omitempty"`
	Params       map[string]string `json:"params,omitempty"`
	TimeoutMS    int64             `json:"timeout_ms,omitempty"`
	MaxRows      int               `json:"max_rows,omitempty"`
	MaxConflicts int64             `json:"max_conflicts,omitempty"`
}

// GradeResponse is the body of a POST /grade response. Grade is "pass"
// when the submission agrees with the reference on the instance, "fail"
// when a counterexample demonstrates the difference, and "unknown" when
// the budget ran out before either was established.
type GradeResponse struct {
	ExplainResponse
	Question string `json:"question"`
	Grade    string `json:"grade,omitempty"`
}

// cacheStats is one cache's /stats entry.
type cacheStats struct {
	Len    int   `json:"len"`
	Cap    int   `json:"cap"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

func statsFor[K comparable, V any](c *lru[K, V], cap int) cacheStats {
	h, m := c.Counters()
	return cacheStats{Len: c.Len(), Cap: cap, Hits: h, Misses: m}
}

func (srv *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	auditSeq, auditDropped := srv.audit.counters()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_s": time.Since(srv.started).Seconds(),
		"state":    srv.StateName(),
		"requests": map[string]int64{
			"explain": srv.explainReqs.Load(),
			"grade":   srv.gradeReqs.Load(),
			"session": srv.sessionReqs.Load(),
		},
		"responses": map[string]int64{
			"ok":              srv.okResponses.Load(),
			"agree":           srv.agreeResponses.Load(),
			"budget_exceeded": srv.budgetExceeded.Load(),
			"error":           srv.errorResponses.Load(),
			"shed":            srv.shedResponses.Load(),
			"draining":        srv.drainRefused.Load(),
		},
		"plan_cache":     statsFor(srv.plans, srv.cfg.PlanCacheSize),
		"instance_cache": statsFor(srv.instances, srv.cfg.InstanceCacheSize),
		"sessions": map[string]any{
			"active":    srv.sessions.Len(),
			"cap":       srv.cfg.SessionCacheSize,
			"created":   srv.sessionsCreated.Load(),
			"evicted":   srv.sessionsEvicted.Load(),
			"deleted":   srv.sessionsDeleted.Load(),
			"poisoned":  srv.sessionsPoisoned.Load(),
			"not_found": srv.sessionsNotFound.Load(),
			"revisions": map[string]int64{
				"incremental": srv.revIncremental.Load(),
				"reprepare":   srv.revReprepare.Load(),
				"fallback":    srv.revFallback.Load(),
			},
		},
		"admission": map[string]int64{
			"limit":     int64(srv.cfg.MaxConcurrent),
			"in_flight": srv.inFlight.Load(),
			"waiting":   srv.waiting.Load(),
		},
		"faults": map[string]int64{
			"panics_recovered": srv.panicsRecovered.Load(),
			"rate_limited":     srv.rateLimited.Load(),
		},
		"latency_ewma_ms": srv.latency(),
		"audit": map[string]int64{
			"entries": auditSeq,
			"dropped": auditDropped,
		},
	})
}

func (srv *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	srv.explainReqs.Add(1)
	var req ExplainRequest
	if !srv.decode(w, r, &req) {
		return
	}
	tenant := TenantOf(req.Tenant, r.Header.Get("X-Tenant"))
	reqID, attempt := requestIDOf(r)
	status, resp := srv.explain(r.Context(), &req, tenant)
	e := auditOf("/explain", tenant, status, resp)
	e.Request = &req
	e.RequestID, e.Attempt = reqID, attempt
	srv.audit.append(e)
	writeClusterHeaders(w, reqID, resp.Degraded)
	writeResponse(w, status, resp.RetryAfterS, resp)
}

func (srv *Server) handleGrade(w http.ResponseWriter, r *http.Request) {
	srv.gradeReqs.Add(1)
	var req GradeRequest
	if !srv.decode(w, r, &req) {
		return
	}
	tenant := TenantOf(req.Tenant, r.Header.Get("X-Tenant"))
	reqID, attempt := requestIDOf(r)
	status, out := srv.grade(r.Context(), &req, tenant)
	e := auditOf("/grade", tenant, status, &out.ExplainResponse)
	e.GradeRequest = &req
	e.Grade = out.Grade
	e.RequestID, e.Attempt = reqID, attempt
	srv.audit.append(e)
	writeClusterHeaders(w, reqID, out.Degraded)
	writeResponse(w, status, out.RetryAfterS, out)
}

// grade runs a course-question grading request: resolve the reference
// query and delegate to the explain pipeline.
func (srv *Server) grade(ctx context.Context, req *GradeRequest, tenant string) (int, *GradeResponse) {
	fail := func(err error) (int, *GradeResponse) {
		srv.errorResponses.Add(1)
		return http.StatusBadRequest, &GradeResponse{
			ExplainResponse: ExplainResponse{Status: StatusError, Error: err.Error()},
			Question:        req.Question,
		}
	}
	var reference string
	for _, q := range course.Questions() {
		if q.ID == req.Question {
			reference = q.Correct.String()
		}
	}
	if reference == "" {
		return fail(fmt.Errorf("unknown course question %q (want q1..q8)", req.Question))
	}
	inst := req.Instance
	if inst.Kind == "" {
		inst = InstanceSpec{Kind: "course", Size: 1000, Seed: 1}
	}
	if inst.Kind == "tpch" {
		return fail(fmt.Errorf("grading runs on the course schema; instance kind %q does not carry it", inst.Kind))
	}
	status, resp := srv.explain(ctx, &ExplainRequest{
		Q1: reference, Q2: req.Q, Instance: inst, Params: req.Params,
		TimeoutMS: req.TimeoutMS, MaxRows: req.MaxRows, MaxConflicts: req.MaxConflicts,
	}, tenant)
	out := &GradeResponse{ExplainResponse: *resp, Question: req.Question}
	switch resp.Status {
	case StatusOK:
		out.Grade = "fail"
	case StatusAgree:
		out.Grade = "pass"
	case StatusBudgetExceeded:
		out.Grade = "unknown"
	}
	return status, out
}

// auditOf projects a response into an audit entry (request payload and
// grade filled in by the caller).
func auditOf(endpoint, tenant string, status int, resp *ExplainResponse) *AuditEntry {
	e := &AuditEntry{
		Endpoint:   endpoint,
		Tenant:     tenant,
		HTTPStatus: status,
		Status:     resp.Status,
		Degraded:   resp.Degraded,
		Error:      resp.Error,
		Panic:      resp.panicValue,
		Stack:      resp.panicStack,
		ElapsedMS:  resp.ElapsedMS,
	}
	if ce := resp.Counterexample; ce != nil {
		e.CESize = ce.Size
		e.CEIDs = ce.IDs
		e.Witness = ce.Witness
	}
	return e
}

// explain runs the full pipeline for one request: lifecycle and overload
// gates first (drain refusal, tenant rate limit, degradation ladder), then
// resolve the instance, look up or parse the plans, admit the request
// through the fair queue, and run the search under its (possibly clamped)
// budgets. It returns the HTTP status plus the response body.
func (srv *Server) explain(ctx context.Context, req *ExplainRequest, tenant string) (int, *ExplainResponse) {
	start := time.Now()
	finish := func(status int, resp *ExplainResponse) (int, *ExplainResponse) {
		resp.ElapsedMS = msSince(start)
		srv.countStatus(resp.Status)
		// Refusals are cheap and would drag the latency signal down right
		// when it matters; only served requests feed the EWMA.
		if resp.Status != StatusShed && resp.Status != StatusDraining {
			srv.observeLatency(resp.ElapsedMS)
		}
		return status, resp
	}
	errResp := func(status int, err error) (int, *ExplainResponse) {
		return finish(status, &ExplainResponse{Status: StatusError, Error: err.Error()})
	}

	// Lifecycle gate: a draining server admits nothing new.
	if srv.Draining() {
		return finish(http.StatusServiceUnavailable, &ExplainResponse{
			Status:      StatusDraining,
			RetryAfterS: srv.retryAfterS(),
			Error:       "server is draining; retry against another replica",
		})
	}
	// Per-tenant rate limit.
	if ok, wait := srv.limiter.Allow(tenant, time.Now()); !ok {
		srv.rateLimited.Add(1)
		return finish(http.StatusTooManyRequests, &ExplainResponse{
			Status:      StatusShed,
			RetryAfterS: int(wait/time.Second) + 1,
			Error:       fmt.Sprintf("tenant %q is over its request rate; retry later", tenant),
		})
	}
	// Degradation ladder (see degrade.go).
	level := srv.degradeLevel()
	if level == degradeShed {
		return finish(http.StatusTooManyRequests, &ExplainResponse{
			Status:      StatusShed,
			Degraded:    degradeName(level),
			RetryAfterS: srv.retryAfterS(),
			Error:       "server overloaded; request shed",
		})
	}
	budget := srv.budget(req.TimeoutMS)
	maxConflicts := req.MaxConflicts
	algorithm := req.Algorithm
	degraded := degradeName(level)
	if level >= degradeClamped {
		budget, maxConflicts = srv.clampBudgets(budget, maxConflicts)
	}
	if level >= degradeSolverFree {
		// Solver-free service: agree-check plus greedy shrink. Still a
		// verified counterexample, just not guaranteed minimal.
		algorithm = "shrinkgreedy"
	}

	// The budget clock starts immediately and admission comes first: cold-
	// cache work (instance generation, plan parsing) is real CPU that must
	// be charged to the request's budget and bounded by the concurrency
	// limit, not run unadmitted. A request that spends its whole budget
	// queued reports budget_exceeded rather than occupying a slot it can
	// no longer use.
	ctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	// Drain's hard-cancel signal reaches this request through its cancel
	// func: CancelInFlight turns stragglers into budget responses.
	unbind := srv.bindLifecycle(cancel)
	defer unbind()
	if ok := srv.admit(ctx, tenant); !ok {
		return finish(http.StatusOK, &ExplainResponse{
			Status:   StatusBudgetExceeded,
			Degraded: degraded,
			Stats:    &StatsJSON{SolverStatus: "unknown"},
			Error:    fmt.Sprintf("request spent its %v budget queued for admission", budget),
		})
	}
	defer srv.release()

	inst, instHit, err := srv.resolve(req.Instance)
	if err != nil {
		return errResp(http.StatusBadRequest, err)
	}
	instKey := req.Instance.CacheKey()
	p1, q1Hit, err := srv.plan(req.Q1, inst, instKey)
	if err != nil {
		return errResp(http.StatusBadRequest, fmt.Errorf("parsing q1: %w", err))
	}
	p2, q2Hit, err := srv.plan(req.Q2, inst, instKey)
	if err != nil {
		return errResp(http.StatusBadRequest, fmt.Errorf("parsing q2: %w", err))
	}
	q1, q2 := p1.parsed, p2.parsed
	params, err := parseParams(req.Params)
	if err != nil {
		return errResp(http.StatusBadRequest, err)
	}
	cache := &CacheJSON{PlanQ1: hitMiss(q1Hit), PlanQ2: hitMiss(q2Hit), Instance: hitMiss(instHit)}
	var plan *PlanJSON
	if req.ExplainPlan {
		plan = &PlanJSON{
			Q1: renderPlanRegions(planReportFor(p1, inst.db)),
			Q2: renderPlanRegions(planReportFor(p2, inst.db)),
		}
	}

	opts := &ratest.Options{
		Params:       params,
		Algorithm:    algorithm,
		MaxRows:      req.MaxRows,
		MaxConflicts: maxConflicts,
	}
	if !req.NoConstraints {
		opts.Constraints = inst.constraints
	}
	ce, stats, err := ratest.ExplainContext(ctx, q1, q2, inst.db, opts)
	var pe *pool.PanicError
	switch {
	case err == nil:
		return finish(http.StatusOK, &ExplainResponse{
			Status:         StatusOK,
			Counterexample: renderCE(q1, q2, ce, params),
			Stats:          renderStats(stats, "model"),
			Cache:          cache,
			Plan:           plan,
			Degraded:       degraded,
		})
	case errors.Is(err, core.ErrQueriesAgree):
		return finish(http.StatusOK, &ExplainResponse{Status: StatusAgree, Cache: cache, Plan: plan, Degraded: degraded})
	case errors.As(err, &pe):
		// A worker panicked mid-search (possibly injected). The pool
		// recovered it and ForEach surfaced it as an error; the request
		// fails structurally but the process and its caches stay up.
		srv.panicsRecovered.Add(1)
		return finish(http.StatusInternalServerError, &ExplainResponse{
			Status:     StatusError,
			Cache:      cache,
			Degraded:   degraded,
			Error:      fmt.Sprintf("internal panic (isolated): %v", pe.Value),
			panicValue: fmt.Sprint(pe.Value),
			panicStack: string(pe.Stack),
		})
	case errors.Is(err, core.ErrBudget) || ctx.Err() != nil:
		// Partial stats with an unknown solver status, not a 500: the
		// search was cut off, nothing is known about the problem.
		return finish(http.StatusOK, &ExplainResponse{
			Status: StatusBudgetExceeded, Cache: cache, Plan: plan, Degraded: degraded,
			Stats: &StatsJSON{
				Algorithm:    core.AlgorithmFor(core.Problem{Q1: q1, Q2: q2, DB: inst.db}),
				TotalMS:      msSince(start),
				SolverStatus: "unknown",
			},
			Error: err.Error(),
		})
	default:
		// A well-formed request whose search failed (e.g. the row budget,
		// or an unknown algorithm name): a client error, not a 500.
		return errResp(http.StatusUnprocessableEntity, err)
	}
}

// plannedQuery is a plan-cache entry: the parsed AST and, for cacheable
// (named) instances, the fully planned tree — optimized, join-reordered and
// semi-join reduced against the instance's cardinality statistics — with
// the planner's report. The planned tree and report serve observability
// (the explain_plan field); the search pipeline always starts from the
// parsed AST, because its algorithms rewrite queries structurally
// (selection pushdown per candidate tuple, query mutation) and the engine
// re-plans internally at each evaluation, with the statistics cached on the
// shared instance itself. Inline instances are request-private: their
// entries are keyed by query text alone and stay statistics-free (parsed
// only), since a positional plan computed against one inline instance's
// schema would be wrong for a different instance sharing the query text.
type plannedQuery struct {
	parsed  ra.Node
	planned ra.Node
	report  *engine.PlanReport
}

// plan parses RA text through the plan cache, keyed by whitespace-
// normalized source (formatting variants share an entry) plus the instance
// cache key when the instance is a shareable named one. Entries are
// immutable after construction, so they are shared across concurrent
// requests.
func (srv *Server) plan(src string, inst *instance, instKey string) (*plannedQuery, bool, error) {
	if strings.TrimSpace(src) == "" {
		return nil, false, fmt.Errorf("empty query")
	}
	key := strings.Join(strings.Fields(src), " ")
	if instKey != "" {
		key += "\x00" + instKey
	}
	if e, ok := srv.plans.Get(key); ok {
		return e, true, nil
	}
	q, err := raparser.Parse(src)
	if err != nil {
		return nil, false, err
	}
	e := &plannedQuery{parsed: q}
	if instKey != "" {
		// Planning can only fail with the planner's pre-execution
		// row-budget refusal; the entry then stays parse-only (its report
		// is still kept for explain_plan) and the same structured error
		// surfaces when the search evaluates the query.
		planned, report, perr := engine.ExplainPlan(q, inst.db, engine.Options{})
		e.report = report
		if perr == nil {
			e.planned = planned
		}
	}
	srv.plans.Add(key, e)
	return e, false, nil
}

// planReportFor returns a cache entry's planner report, computing one on
// the fly for request-private (inline) instances.
func planReportFor(e *plannedQuery, db *relation.Database) *engine.PlanReport {
	if e.report != nil {
		return e.report
	}
	_, report, _ := engine.ExplainPlan(e.parsed, db, engine.Options{})
	return report
}

func renderPlanRegions(r *engine.PlanReport) []PlanRegionJSON {
	if r == nil {
		return nil
	}
	out := make([]PlanRegionJSON, 0, len(r.Regions))
	for _, reg := range r.Regions {
		j := PlanRegionJSON{
			Leaves:      reg.Leaves,
			Order:       reg.Order,
			Planned:     reg.Planned,
			Reason:      reg.Reason,
			Acyclic:     reg.Acyclic,
			SemiJoins:   reg.SemiJoins,
			EstPeakRows: reg.EstPeakRows,
		}
		for _, jr := range reg.Joins {
			j.Joins = append(j.Joins, PlanJoinJSON{Expr: jr.Expr, EstRows: jr.EstRows, ActualRows: jr.ActualRows})
		}
		out = append(out, j)
	}
	return out
}

// countStatus feeds the /stats response counters, shared by the explain,
// grade, and session pipelines. A released session counts as ok.
func (srv *Server) countStatus(status string) {
	switch status {
	case StatusOK, StatusDeleted:
		srv.okResponses.Add(1)
	case StatusAgree:
		srv.agreeResponses.Add(1)
	case StatusBudgetExceeded:
		srv.budgetExceeded.Add(1)
	case StatusShed:
		srv.shedResponses.Add(1)
	case StatusDraining:
		srv.drainRefused.Add(1)
	default:
		srv.errorResponses.Add(1)
	}
}

// budget clamps a requested timeout to the server's bounds.
func (srv *Server) budget(timeoutMS int64) time.Duration {
	d := srv.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > srv.cfg.MaxTimeout {
		d = srv.cfg.MaxTimeout
	}
	return d
}

// admit blocks until the fair queue grants an execution slot or the
// context expires, reporting whether the request was admitted.
func (srv *Server) admit(ctx context.Context, tenant string) bool {
	srv.waiting.Add(1)
	ok := srv.admission.Acquire(ctx, tenant)
	srv.waiting.Add(-1)
	if ok {
		srv.inFlight.Add(1)
	}
	return ok
}

func (srv *Server) release() {
	srv.inFlight.Add(-1)
	srv.admission.Release()
}

// decode reads a JSON request body, enforcing method and size limits.
func (srv *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		srv.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("%s requires POST", r.URL.Path))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, srv.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		srv.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return false
	}
	return true
}

func (srv *Server) fail(w http.ResponseWriter, status int, err error) {
	srv.errorResponses.Add(1)
	writeJSON(w, status, &ExplainResponse{Status: StatusError, Error: err.Error()})
}

// writeResponse mirrors a response's retry_after_s into the Retry-After
// header (shed/draining) before writing the JSON body.
func writeResponse(w http.ResponseWriter, status, retryAfterS int, body any) {
	if retryAfterS > 0 {
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterS))
	}
	writeJSON(w, status, body)
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func parseParams(raw map[string]string) (map[string]relation.Value, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	out := make(map[string]relation.Value, len(raw))
	for k, v := range raw {
		out[k] = relation.ParseValue(v)
	}
	return out, nil
}

func hitMiss(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Microseconds()) / 1000 }

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func renderStats(s *core.Stats, solverStatus string) *StatsJSON {
	if s == nil {
		return nil
	}
	if s.Optimal {
		solverStatus = "optimal"
	}
	return &StatsJSON{
		Algorithm:    s.Algorithm,
		TotalMS:      ms(s.TotalTime),
		RawEvalMS:    ms(s.RawEvalTime),
		ProvEvalMS:   ms(s.ProvEvalTime),
		SolverMS:     ms(s.SolverTime),
		ModelsTried:  s.ModelsTried,
		WitnessSize:  s.WitnessSize,
		Optimal:      s.Optimal,
		SolverStatus: solverStatus,
	}
}

func renderCE(q1, q2 ra.Node, ce *core.Counterexample, params map[string]relation.Value) *CEJSON {
	out := &CEJSON{
		Size:     ce.Size(),
		IDs:      make([]int, len(ce.IDs)),
		Rendered: ratest.FormatCounterexample(q1, q2, ce, params),
	}
	for i, id := range ce.IDs {
		out.IDs[i] = int(id)
	}
	for _, name := range ce.DB.Names() {
		rel := ce.DB.Relation(name)
		if rel.Len() == 0 {
			continue
		}
		cr := CERelation{Name: name}
		for _, a := range rel.Schema.Attrs {
			cr.Columns = append(cr.Columns, a.Name)
		}
		for _, t := range rel.Tuples {
			row := make([]string, len(t))
			for i, v := range t {
				row[i] = v.String()
			}
			cr.Rows = append(cr.Rows, row)
		}
		out.Relations = append(out.Relations, cr)
	}
	for _, v := range ce.Witness {
		out.Witness = append(out.Witness, v.String())
	}
	if len(ce.Params) > 0 {
		out.Params = map[string]string{}
		for k, v := range ce.Params {
			out.Params[k] = v.String()
		}
	}
	return out
}
