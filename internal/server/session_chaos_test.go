package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/course"
	"repro/internal/faults"
	"repro/internal/ra"
	"repro/internal/raparser"
)

const wrongQ2 = `project[name, major](select[grade >= 90](Student join Registration))`

// sessionLedger is one client's record of the revisions its session
// actually committed (the server reports a commit by setting path), replayed
// locally after the storm to re-verify the server's resident state.
type sessionLedger struct {
	size    int
	id      string
	ops     []SessionReviseRequest
	final   SessionResponse
	alive   bool // final GET answered 200
	created bool
}

// TestSessionChaosSoak drives concurrent live-grading sessions through an
// update storm while seeded faults panic and stall inside the engine and the
// handlers, and a flood of extra creates forces mid-soak evictions from a
// tiny session cache. Invariants:
//
//   - every response is structured; a revision either commits (path set) or
//     provably does not (error/budget/404 without path);
//   - a panic mid-revision poisons the session (structured 404s after)
//     instead of serving half-mutated state;
//   - for every session that survives, replaying its committed revisions
//     locally from a regenerated instance reproduces the server's final
//     grade, epoch, and instance size exactly;
//   - the audit log of the whole storm replays with zero mismatches on a
//     fresh server.
func TestSessionChaosSoak(t *testing.T) {
	plan := withFaults(t, 20260808, map[faults.Point]faults.Rule{
		faults.EngineEval: {PanicEvery: 31, StallEvery: 45, Stall: time.Millisecond},
		faults.Handler:    {PanicEvery: 29},
	})
	var log syncBuffer
	srv, ts := newTestServer(t, Config{AuditWriter: &log, SessionCacheSize: 5, MaxConcurrent: 4})

	const (
		workers   = 6
		revisions = 12
	)
	ledgers := make([]*sessionLedger, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		led := &sessionLedger{size: 400 + 50*(g%2)}
		ledgers[g] = led
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var created SessionResponse
			code := postJSON(t, ts.URL+"/session", SessionCreateRequest{
				Q1: refQ, Q2: wrongQ, Instance: InstanceSpec{Kind: "course", Size: led.size, Seed: 1},
				Tenant: fmt.Sprintf("t%d", g%3), TimeoutMS: 30_000,
			}, &created)
			if code != http.StatusOK || created.SessionID == "" {
				return // refused or failed under faults; nothing to soak
			}
			led.created = true
			led.id = created.SessionID
			base := ts.URL + "/session/" + created.SessionID
			for i := 0; i < revisions; i++ {
				req := SessionReviseRequest{TimeoutMS: 30_000}
				switch i % 4 {
				case 0:
					req.Ops = []SessionOp{{Op: "delete", ID: (g*37 + i*11) % led.size}}
				case 1:
					req.Ops = []SessionOp{{Op: "insert", Rel: "Registration", Tuple: []string{
						fmt.Sprintf("'s%05d'", (g*5+i)%80), fmt.Sprintf("'CS%d'", 100+i), "'CS'", fmt.Sprint(60 + (g+i)%40),
					}}}
				case 2:
					req.Ops = []SessionOp{{Op: "update", ID: (g*13 + i*7) % led.size, Rel: "Registration", Tuple: []string{
						fmt.Sprintf("'s%05d'", (g*3+i)%80), fmt.Sprintf("'E%d'", i), "'ECON'", "95",
					}}}
				case 3:
					if i == 7 {
						req.Q2 = wrongQ2
					} else {
						req.Ops = []SessionOp{
							{Op: "delete", ID: (g + i*29) % led.size},
							{Op: "insert", Rel: "Registration", Tuple: []string{
								fmt.Sprintf("'s%05d'", (g+i)%80), fmt.Sprintf("'H%d'", i), "'HIST'", "70",
							}},
						}
					}
				}
				var resp SessionResponse
				postJSON(t, base+"/revise", req, &resp)
				if resp.Path != "" {
					// The server committed this revision (even when the grade
					// read after it ran out of budget).
					led.ops = append(led.ops, req)
				}
			}
			if code := getJSON(t, base, &led.final); code == http.StatusOK &&
				(led.final.Status == StatusOK || led.final.Status == StatusAgree) {
				led.alive = true
			}
		}(g)
	}
	// The flood: extra sessions against a 5-slot cache evict soaking
	// sessions out from under their owners mid-storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			time.Sleep(2 * time.Millisecond)
			var resp SessionResponse
			postJSON(t, ts.URL+"/session", SessionCreateRequest{
				Q1: refQ, Q2: wrongQ, Instance: courseSpec(300), Tenant: "flood", TimeoutMS: 30_000,
			}, &resp)
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("session soak hung")
	}
	faults.Disable()

	if plan.Fired(faults.EngineEval) == 0 && plan.Fired(faults.Handler) == 0 {
		t.Fatal("no faults fired; the soak exercised nothing")
	}
	if srv.sessionsEvicted.Load() == 0 {
		t.Fatal("the flood forced no evictions; the cache-pressure path went untested")
	}
	if srv.revIncremental.Load() == 0 {
		t.Fatal("no revision took the incremental path")
	}

	// Re-verify every surviving session: replay its committed revisions
	// locally from a regenerated instance and compare the end state.
	verified := 0
	ctx := context.Background()
	q1 := mustParse(t, refQ)
	for g, led := range ledgers {
		if !led.alive {
			continue
		}
		p := core.Problem{Q1: q1, Q2: mustParse(t, wrongQ), DB: course.GenerateDB(led.size, 1)}
		ls, err := core.NewLiveSession(p)
		if err != nil {
			t.Fatalf("worker %d: local session: %v", g, err)
		}
		for i, req := range led.ops {
			if req.Q2 != "" {
				_, err = ls.ReviseQuery(ctx, mustParse(t, req.Q2))
			} else {
				var up core.SessionUpdate
				up, err = lowerOps(req.Ops)
				if err == nil {
					_, err = ls.Update(ctx, up)
				}
			}
			if err != nil {
				t.Fatalf("worker %d: replaying committed revision %d locally: %v", g, i, err)
			}
		}
		g2, err := ls.Grade(ctx)
		if err != nil {
			t.Fatalf("worker %d: local grade: %v", g, err)
		}
		f := led.final
		if ls.Epoch() != f.Epoch || ls.BaseSize() != f.BaseSize ||
			g2.Agree != (f.Status == StatusAgree) || g2.Size12 != f.Size12 || g2.Size21 != f.Size21 {
			t.Fatalf("worker %d: server session diverged from its committed history:\n"+
				"server epoch=%d base=%d status=%q sizes=(%d,%d)\nlocal  epoch=%d base=%d agree=%v sizes=(%d,%d)",
				g, f.Epoch, f.BaseSize, f.Status, f.Size12, f.Size21,
				ls.Epoch(), ls.BaseSize(), g2.Agree, g2.Size12, g2.Size21)
		}
		verified++
	}
	if verified == 0 {
		t.Fatal("no session survived the storm; the fault plan is too aggressive to verify anything")
	}
	t.Logf("soak: %d/%d sessions survived and re-verified; evicted=%d poisoned=%d panics=%d",
		verified, workers, srv.sessionsEvicted.Load(), srv.sessionsPoisoned.Load(), srv.panicsRecovered.Load())

	// The server still serves sessions afterwards.
	var after SessionResponse
	if code := postJSON(t, ts.URL+"/session", SessionCreateRequest{
		Q1: refQ, Q2: wrongQ, Instance: courseSpec(500),
	}, &after); code != http.StatusOK {
		t.Fatalf("post-soak create = %d (%s)", code, after.Error)
	}

	// And the whole storm's audit log replays clean: poisoned/evicted
	// streams cut off at their first non-deterministic entry, everything
	// else reproduces byte-for-byte. The replay server keeps the default
	// session cap so replayed sessions are never evicted mid-stream.
	rep, err := Replay(bytes.NewReader(log.Bytes()), mustNew(t, Config{}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatched != 0 {
		t.Fatalf("session audit log does not replay: %+v\n%v", rep, rep.Errors)
	}
	if rep.Replayed == 0 {
		t.Fatal("replay asserted nothing")
	}
}

func mustParse(t *testing.T, src string) ra.Node {
	t.Helper()
	q, err := raparser.Parse(src)
	if err != nil {
		t.Fatalf("parsing %q: %v", src, err)
	}
	return q
}
