package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ra"
	"repro/internal/raparser"
	"repro/internal/relation"
)

// Stateful live-grading sessions: POST /session prepares a resident
// core.LiveSession (retained delta state over a private clone of the
// instance) and returns its id; POST /session/{id}/revise streams instance
// edits (insert/delete/update) or query edits at it, re-grading each one
// incrementally — ApplyDelta+Commit for instance edits, one re-prepare for
// query edits, full re-evaluation only for plan pairs the delta subsystem
// refuses. GET /session/{id} reads the current grade; DELETE /session/{id}
// releases the state. Sessions live in a bounded LRU: creating past the cap
// silently evicts the least recently used session, whose subsequent
// revisions answer structured 404s (clients re-create). All revision paths
// are audited and deterministically replayable in order (see audit.go).

// SessionCreateRequest is the body of POST /session.
type SessionCreateRequest struct {
	// Q1 is the reference query, Q2 the query under revision, in the
	// textual RA syntax.
	Q1 string `json:"q1"`
	Q2 string `json:"q2"`
	// Instance names the database instance; the session works on a private
	// copy (its revisions never affect other requests or sessions).
	Instance InstanceSpec `json:"instance"`
	// Params binds @-parameters for the session's lifetime.
	Params map[string]string `json:"params,omitempty"`
	// TimeoutMS bounds the preparation work (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxRows tightens the intermediate-row budget for the session.
	MaxRows int `json:"max_rows,omitempty"`
	// NoConstraints drops the instance's integrity constraints.
	NoConstraints bool `json:"no_constraints,omitempty"`
	// Tenant identifies the caller for rate limiting and fair queueing.
	Tenant string `json:"tenant,omitempty"`
}

// SessionOp is one instance edit inside a revision. Op is:
//
//   - "insert": add Tuple (value literals) to relation Rel;
//   - "delete": remove the tuple with id ID;
//   - "update": replace the tuple with id ID by Tuple in relation Rel
//     (lowered to delete+insert of the same revision).
type SessionOp struct {
	Op    string   `json:"op"`
	Rel   string   `json:"rel,omitempty"`
	ID    int      `json:"id,omitempty"`
	Tuple []string `json:"tuple,omitempty"`
}

// SessionReviseRequest is the body of POST /session/{id}/revise: either a
// batch of instance edits or a query edit (exactly one of Ops / Q2).
type SessionReviseRequest struct {
	Ops []SessionOp `json:"ops,omitempty"`
	// Q2 replaces the query under revision (a keystroke-level edit: the
	// session re-prepares once against its current instance).
	Q2        string `json:"q2,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	Tenant    string `json:"tenant,omitempty"`
}

// SessionResponse is the body of every /session endpoint response. Status
// is "ok" when the queries disagree on the session's live instance (the
// difference is the grade), "agree" when they agree.
type SessionResponse struct {
	Status    string `json:"status"`
	SessionID string `json:"session_id,omitempty"`
	// Path reports how the revision was graded: "incremental" (ApplyDelta
	// on retained state), "reprepare" (query edit), or "fallback" (full
	// re-evaluation; the plan pair is not incrementally maintainable).
	Path string `json:"path,omitempty"`
	// Epoch counts the session's applied revisions; Incremental reports
	// whether retained delta state is resident; BaseSize is the live
	// instance size.
	Epoch       int  `json:"epoch"`
	Incremental bool `json:"incremental"`
	BaseSize    int  `json:"base_size"`
	// Size12/Size21 are |Q1−Q2| and |Q2−Q1| on the live instance, with a
	// bounded witness sample per direction.
	Size12      int      `json:"size12"`
	Size21      int      `json:"size21"`
	Witness12   []string `json:"witness12,omitempty"`
	Witness21   []string `json:"witness21,omitempty"`
	RetryAfterS int      `json:"retry_after_s,omitempty"`
	ElapsedMS   float64  `json:"elapsed_ms"`
	Error       string   `json:"error,omitempty"`
}

// session is one resident live-grading session. The mutex serializes all
// access to the LiveSession (which is not concurrency-safe); closed marks a
// deleted or evicted session whose in-flight requests must 404 instead of
// reviving state the server already dropped.
type session struct {
	id      string
	tenant  string
	created time.Time

	mu     sync.Mutex
	ls     *core.LiveSession
	closed bool
}

// sessionRoutes registers the /session endpoints (Go 1.22 method+wildcard
// patterns; the id is r.PathValue("id")).
func (srv *Server) sessionRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /session", srv.wrap("/session", srv.handleSessionCreate))
	mux.HandleFunc("POST /session/{id}/revise", srv.wrap("/session/revise", srv.handleSessionRevise))
	mux.HandleFunc("GET /session/{id}", srv.wrap("/session/get", srv.handleSessionGet))
	mux.HandleFunc("DELETE /session/{id}", srv.wrap("/session/delete", srv.handleSessionDelete))
}

func (srv *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	srv.sessionReqs.Add(1)
	var req SessionCreateRequest
	if !srv.decode(w, r, &req) {
		return
	}
	tenant := TenantOf(req.Tenant, r.Header.Get("X-Tenant"))
	status, resp := srv.sessionCreate(r.Context(), &req, tenant)
	e := sessionAuditOf("/session", tenant, status, resp)
	e.SessionCreate = &req
	srv.audit.append(e)
	writeResponse(w, status, resp.RetryAfterS, resp)
}

func (srv *Server) handleSessionRevise(w http.ResponseWriter, r *http.Request) {
	srv.sessionReqs.Add(1)
	var req SessionReviseRequest
	if !srv.decode(w, r, &req) {
		return
	}
	tenant := TenantOf(req.Tenant, r.Header.Get("X-Tenant"))
	status, resp := srv.sessionRevise(r.Context(), r.PathValue("id"), &req, tenant)
	e := sessionAuditOf("/session/revise", tenant, status, resp)
	e.SessionRevise = &req
	e.SessionID = r.PathValue("id")
	srv.audit.append(e)
	writeResponse(w, status, resp.RetryAfterS, resp)
}

func (srv *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	srv.sessionReqs.Add(1)
	status, resp := srv.sessionGet(r.Context(), r.PathValue("id"))
	e := sessionAuditOf("/session/get", "", status, resp)
	e.SessionID = r.PathValue("id")
	srv.audit.append(e)
	writeResponse(w, status, resp.RetryAfterS, resp)
}

func (srv *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	srv.sessionReqs.Add(1)
	status, resp := srv.sessionDelete(r.PathValue("id"))
	e := sessionAuditOf("/session/delete", "", status, resp)
	e.SessionID = r.PathValue("id")
	srv.audit.append(e)
	writeResponse(w, status, resp.RetryAfterS, resp)
}

// sessionAuditOf projects a session response into an audit entry. The
// session-id the server assigned (create) or served rides along so replay
// can rebuild the id mapping; agree/disagree maps onto the same pass/fail
// grade vocabulary as /grade.
func sessionAuditOf(endpoint, tenant string, status int, resp *SessionResponse) *AuditEntry {
	e := &AuditEntry{
		Endpoint:    endpoint,
		Tenant:      tenant,
		HTTPStatus:  status,
		Status:      resp.Status,
		Error:       resp.Error,
		ElapsedMS:   resp.ElapsedMS,
		SessionID:   resp.SessionID,
		SessionPath: resp.Path,
	}
	switch resp.Status {
	case StatusOK:
		e.Grade = "fail"
		e.CESize = resp.Size12 + resp.Size21
		e.Witness = append(append([]string{}, resp.Witness12...), resp.Witness21...)
	case StatusAgree:
		e.Grade = "pass"
	}
	return e
}

// finishSession stamps elapsed time and feeds the shared status counters
// and latency signal.
func (srv *Server) finishSession(start time.Time, status int, resp *SessionResponse) (int, *SessionResponse) {
	resp.ElapsedMS = msSince(start)
	srv.countStatus(resp.Status)
	if resp.Status != StatusShed && resp.Status != StatusDraining {
		srv.observeLatency(resp.ElapsedMS)
	}
	return status, resp
}

// sessionGates runs the shared admission-side gates (drain refusal, tenant
// rate limit, shed level of the degradation ladder) and returns a non-nil
// refusal response when the request must not proceed.
func (srv *Server) sessionGates(tenant string) (int, *SessionResponse) {
	if srv.Draining() {
		return http.StatusServiceUnavailable, &SessionResponse{
			Status:      StatusDraining,
			RetryAfterS: srv.retryAfterS(),
			Error:       "server is draining; session state will not survive, re-create later",
		}
	}
	if ok, wait := srv.limiter.Allow(tenant, time.Now()); !ok {
		srv.rateLimited.Add(1)
		return http.StatusTooManyRequests, &SessionResponse{
			Status:      StatusShed,
			RetryAfterS: int(wait/time.Second) + 1,
			Error:       fmt.Sprintf("tenant %q is over its request rate; retry later", tenant),
		}
	}
	if srv.degradeLevel() == degradeShed {
		return http.StatusTooManyRequests, &SessionResponse{
			Status:      StatusShed,
			RetryAfterS: srv.retryAfterS(),
			Error:       "server overloaded; request shed",
		}
	}
	return 0, nil
}

// sessionBudget is the per-request wall-clock budget with the degradation
// ladder's clamp applied at level 1+.
func (srv *Server) sessionBudget(timeoutMS int64) time.Duration {
	budget := srv.budget(timeoutMS)
	if srv.degradeLevel() >= degradeClamped {
		budget, _ = srv.clampBudgets(budget, 0)
	}
	return budget
}

// fillGrade projects the session's current grade into a response.
func fillGrade(resp *SessionResponse, s *core.LiveSession, g *core.LiveGrade) {
	resp.Epoch = s.Epoch()
	resp.Incremental = s.Incremental()
	resp.BaseSize = s.BaseSize()
	resp.Size12, resp.Size21 = g.Size12, g.Size21
	resp.Witness12 = renderTuples(g.Witness12)
	resp.Witness21 = renderTuples(g.Witness21)
	if g.Agree {
		resp.Status = StatusAgree
	} else {
		resp.Status = StatusOK
	}
}

func renderTuples(ts []relation.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.String()
	}
	return out
}

// sessionCreate builds a resident session: resolve the instance, clone it
// (sessions mutate their instance), prepare the retained delta state, grade
// once, and park the session in the LRU (possibly evicting the oldest).
func (srv *Server) sessionCreate(ctx context.Context, req *SessionCreateRequest, tenant string) (int, *SessionResponse) {
	start := time.Now()
	if status, refusal := srv.sessionGates(tenant); refusal != nil {
		return srv.finishSession(start, status, refusal)
	}
	budget := srv.sessionBudget(req.TimeoutMS)
	ctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	unbind := srv.bindLifecycle(cancel)
	defer unbind()
	if ok := srv.admit(ctx, tenant); !ok {
		return srv.finishSession(start, http.StatusOK, &SessionResponse{
			Status: StatusBudgetExceeded,
			Error:  fmt.Sprintf("request spent its %v budget queued for admission", budget),
		})
	}
	defer srv.release()

	fail := func(status int, err error) (int, *SessionResponse) {
		return srv.finishSession(start, status, &SessionResponse{Status: StatusError, Error: err.Error()})
	}
	inst, _, err := srv.resolve(req.Instance)
	if err != nil {
		return fail(http.StatusBadRequest, err)
	}
	instKey := req.Instance.CacheKey()
	p1, _, err := srv.plan(req.Q1, inst, instKey)
	if err != nil {
		return fail(http.StatusBadRequest, fmt.Errorf("parsing q1: %w", err))
	}
	p2, _, err := srv.plan(req.Q2, inst, instKey)
	if err != nil {
		return fail(http.StatusBadRequest, fmt.Errorf("parsing q2: %w", err))
	}
	params, err := parseParams(req.Params)
	if err != nil {
		return fail(http.StatusBadRequest, err)
	}
	p := core.Problem{
		Q1: p1.parsed, Q2: p2.parsed,
		// The session owns its instance: committed insertions mutate the
		// database, and the cached copy is shared with every other request.
		DB:      inst.db.Clone(),
		Params:  params,
		Ctx:     ctx,
		MaxRows: req.MaxRows,
	}
	if !req.NoConstraints {
		p.Constraints = inst.constraints
	}
	ls, err := core.NewLiveSession(p)
	if errors.Is(err, core.ErrBudget) || (err != nil && ctx.Err() != nil) {
		return srv.finishSession(start, http.StatusOK, &SessionResponse{
			Status: StatusBudgetExceeded, Error: err.Error(),
		})
	}
	if err != nil {
		return fail(http.StatusUnprocessableEntity, err)
	}
	g, err := ls.Grade(ctx)
	if err != nil {
		if errors.Is(err, core.ErrBudget) || ctx.Err() != nil {
			return srv.finishSession(start, http.StatusOK, &SessionResponse{
				Status: StatusBudgetExceeded, Error: err.Error(),
			})
		}
		return fail(http.StatusUnprocessableEntity, err)
	}
	sess := &session{
		id:      fmt.Sprintf("s%06d", srv.sessionSeq.Add(1)),
		tenant:  tenant,
		created: time.Now(),
		ls:      ls,
	}
	srv.sessions.Add(sess.id, sess)
	srv.sessionsCreated.Add(1)
	resp := &SessionResponse{SessionID: sess.id}
	fillGrade(resp, ls, g)
	return srv.finishSession(start, http.StatusOK, resp)
}

// sessionLookup fetches a live session, answering the structured 404 shared
// by every per-id endpoint when it is unknown, evicted, or deleted.
func (srv *Server) sessionLookup(id string) (*session, *SessionResponse) {
	sess, ok := srv.sessions.Get(id)
	if !ok {
		srv.sessionsNotFound.Add(1)
		return nil, &SessionResponse{
			SessionID: id,
			Status:    StatusError,
			Error:     fmt.Sprintf("unknown session %q (expired, evicted, or never created); POST /session to start a new one", id),
		}
	}
	return sess, nil
}

// sessionRevise applies one revision — a batch of instance edits or a query
// edit — to a resident session and re-grades it.
func (srv *Server) sessionRevise(ctx context.Context, id string, req *SessionReviseRequest, tenant string) (int, *SessionResponse) {
	start := time.Now()
	if status, refusal := srv.sessionGates(tenant); refusal != nil {
		refusal.SessionID = id
		return srv.finishSession(start, status, refusal)
	}
	budget := srv.sessionBudget(req.TimeoutMS)
	ctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	unbind := srv.bindLifecycle(cancel)
	defer unbind()
	if ok := srv.admit(ctx, tenant); !ok {
		return srv.finishSession(start, http.StatusOK, &SessionResponse{
			SessionID: id, Status: StatusBudgetExceeded,
			Error: fmt.Sprintf("request spent its %v budget queued for admission", budget),
		})
	}
	defer srv.release()

	fail := func(status int, err error) (int, *SessionResponse) {
		return srv.finishSession(start, status, &SessionResponse{SessionID: id, Status: StatusError, Error: err.Error()})
	}
	if len(req.Ops) > 0 && req.Q2 != "" {
		return fail(http.StatusBadRequest, fmt.Errorf("a revision is either instance edits (ops) or a query edit (q2), not both"))
	}
	if len(req.Ops) == 0 && req.Q2 == "" {
		return fail(http.StatusBadRequest, fmt.Errorf("empty revision: set ops or q2"))
	}
	sess, notFound := srv.sessionLookup(id)
	if notFound != nil {
		return srv.finishSession(start, http.StatusNotFound, notFound)
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	// A panic mid-revision (isolated at the handler boundary) may leave the
	// LiveSession half-mutated; fail-stop the session rather than keep
	// serving possibly corrupted state. Runs before the unlock defer (LIFO),
	// so the poisoning is still under the session mutex.
	defer func() {
		if rec := recover(); rec != nil {
			sess.closed = true
			srv.sessions.Remove(id)
			srv.sessionsPoisoned.Add(1)
			panic(rec)
		}
	}()
	if sess.closed {
		srv.sessionsNotFound.Add(1)
		return srv.finishSession(start, http.StatusNotFound, &SessionResponse{
			SessionID: id, Status: StatusError,
			Error: fmt.Sprintf("session %q was evicted; POST /session to start a new one", id),
		})
	}

	var path string
	var err error
	if req.Q2 != "" {
		var q2 ra.Node
		q2, err = raparser.Parse(req.Q2)
		if err != nil {
			return fail(http.StatusBadRequest, fmt.Errorf("parsing q2: %w", err))
		}
		path, err = sess.ls.ReviseQuery(ctx, q2)
	} else {
		var up core.SessionUpdate
		up, err = lowerOps(req.Ops)
		if err != nil {
			return fail(http.StatusBadRequest, err)
		}
		path, err = sess.ls.Update(ctx, up)
	}
	if err != nil {
		if errors.Is(err, core.ErrBudget) || ctx.Err() != nil {
			return srv.finishSession(start, http.StatusOK, &SessionResponse{
				SessionID: id, Status: StatusBudgetExceeded, Error: err.Error(),
			})
		}
		return fail(http.StatusUnprocessableEntity, err)
	}
	switch path {
	case core.PathIncremental:
		srv.revIncremental.Add(1)
	case core.PathReprepare:
		srv.revReprepare.Add(1)
	case core.PathFallback:
		srv.revFallback.Add(1)
	}
	g, err := sess.ls.Grade(ctx)
	if err != nil {
		// The revision is committed; only this grade read ran out of budget.
		if errors.Is(err, core.ErrBudget) || ctx.Err() != nil {
			return srv.finishSession(start, http.StatusOK, &SessionResponse{
				SessionID: id, Status: StatusBudgetExceeded, Path: path, Error: err.Error(),
			})
		}
		return fail(http.StatusUnprocessableEntity, err)
	}
	resp := &SessionResponse{SessionID: id, Path: path}
	fillGrade(resp, sess.ls, g)
	return srv.finishSession(start, http.StatusOK, resp)
}

// lowerOps translates the wire ops into the core update: updates become
// delete+insert of the same revision, value literals parse like instance
// data.
func lowerOps(ops []SessionOp) (core.SessionUpdate, error) {
	var up core.SessionUpdate
	for i, op := range ops {
		switch op.Op {
		case "insert", "update":
			if op.Rel == "" {
				return core.SessionUpdate{}, fmt.Errorf("ops[%d]: %s needs rel", i, op.Op)
			}
			t := make(relation.Tuple, len(op.Tuple))
			for j, v := range op.Tuple {
				t[j] = relation.ParseValue(v)
			}
			if op.Op == "update" {
				up.Remove = append(up.Remove, relation.TupleID(op.ID))
			}
			up.Insert = append(up.Insert, engine.Insert{Rel: op.Rel, Tuple: t})
		case "delete":
			up.Remove = append(up.Remove, relation.TupleID(op.ID))
		default:
			return core.SessionUpdate{}, fmt.Errorf("ops[%d]: unknown op %q (want insert, delete, update)", i, op.Op)
		}
	}
	return up, nil
}

// sessionGet reads the current grade without revising.
func (srv *Server) sessionGet(ctx context.Context, id string) (int, *SessionResponse) {
	start := time.Now()
	sess, notFound := srv.sessionLookup(id)
	if notFound != nil {
		return srv.finishSession(start, http.StatusNotFound, notFound)
	}
	ctx, cancel := context.WithTimeout(ctx, srv.sessionBudget(0))
	defer cancel()
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		srv.sessionsNotFound.Add(1)
		return srv.finishSession(start, http.StatusNotFound, &SessionResponse{
			SessionID: id, Status: StatusError,
			Error: fmt.Sprintf("session %q was evicted; POST /session to start a new one", id),
		})
	}
	g, err := sess.ls.Grade(ctx)
	if err != nil {
		if errors.Is(err, core.ErrBudget) || ctx.Err() != nil {
			return srv.finishSession(start, http.StatusOK, &SessionResponse{
				SessionID: id, Status: StatusBudgetExceeded, Error: err.Error(),
			})
		}
		return srv.finishSession(start, http.StatusUnprocessableEntity,
			&SessionResponse{SessionID: id, Status: StatusError, Error: err.Error()})
	}
	resp := &SessionResponse{SessionID: id}
	fillGrade(resp, sess.ls, g)
	return srv.finishSession(start, http.StatusOK, resp)
}

// sessionDelete releases a session explicitly.
func (srv *Server) sessionDelete(id string) (int, *SessionResponse) {
	start := time.Now()
	sess, ok := srv.sessions.Remove(id)
	if !ok {
		srv.sessionsNotFound.Add(1)
		return srv.finishSession(start, http.StatusNotFound, &SessionResponse{
			SessionID: id, Status: StatusError,
			Error: fmt.Sprintf("unknown session %q", id),
		})
	}
	sess.mu.Lock()
	sess.closed = true
	sess.mu.Unlock()
	srv.sessionsDeleted.Add(1)
	return srv.finishSession(start, http.StatusOK, &SessionResponse{SessionID: id, Status: StatusDeleted})
}

// evictSession is the session LRU's pressure callback: mark the session
// closed so an in-flight revision holding the pointer cannot revive state
// the server already dropped.
func (srv *Server) evictSession(id string, sess *session) {
	sess.mu.Lock()
	sess.closed = true
	sess.mu.Unlock()
	srv.sessionsEvicted.Add(1)
}
