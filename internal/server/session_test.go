package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

func deleteJSON(t *testing.T, url string, into any) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode
}

// TestSessionLifecycle walks one session end to end: create, instance
// revisions down each path, a query edit, a read, and deletion.
func TestSessionLifecycle(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	var created SessionResponse
	code := postJSON(t, ts.URL+"/session", SessionCreateRequest{
		Q1: refQ, Q2: wrongQ, Instance: courseSpec(500), Tenant: "alice",
	}, &created)
	if code != http.StatusOK || created.Status != StatusOK {
		t.Fatalf("create = %d / %q (%s), want disagreeing session", code, created.Status, created.Error)
	}
	if created.SessionID == "" || !created.Incremental || created.Epoch != 0 {
		t.Fatalf("create response %+v: want id, incremental, epoch 0", created)
	}
	if created.Size12 != 0 || created.Size21 == 0 {
		t.Fatalf("refQ ⊆ wrongQ: want only size21 > 0, got (%d, %d)", created.Size12, created.Size21)
	}
	base := ts.URL + "/session/" + created.SessionID

	// Instance revision: insert a non-CS registration for a CS-registered
	// student — both queries keep their verdict, the grade updates in place.
	var revised SessionResponse
	code = postJSON(t, base+"/revise", SessionReviseRequest{
		Ops: []SessionOp{
			{Op: "insert", Rel: "Registration", Tuple: []string{"'s00000'", "'HIST101'", "'HIST'", "77"}},
		},
	}, &revised)
	if code != http.StatusOK || revised.Path != "incremental" {
		t.Fatalf("revise = %d path=%q (%s), want incremental", code, revised.Path, revised.Error)
	}
	if revised.Epoch != 1 || revised.BaseSize != created.BaseSize+1 {
		t.Fatalf("revise state: epoch %d, base %d (was %d)", revised.Epoch, revised.BaseSize, created.BaseSize)
	}

	// Deleting the inserted tuple restores the original grade. The id of
	// an insertion is deterministic: the database's next id (= base size of
	// the original instance since generation).
	var reverted SessionResponse
	postJSON(t, base+"/revise", SessionReviseRequest{
		Ops: []SessionOp{{Op: "delete", ID: created.BaseSize}},
	}, &reverted)
	if reverted.Size12 != created.Size12 || reverted.Size21 != created.Size21 {
		t.Fatalf("revert: sizes (%d,%d), want (%d,%d)", reverted.Size12, reverted.Size21, created.Size12, created.Size21)
	}

	// Query edit: submitting the reference itself re-prepares and agrees.
	var edited SessionResponse
	code = postJSON(t, base+"/revise", SessionReviseRequest{Q2: refQ}, &edited)
	if code != http.StatusOK || edited.Status != StatusAgree || edited.Path != "reprepare" {
		t.Fatalf("query edit = %d / %q path=%q (%s)", code, edited.Status, edited.Path, edited.Error)
	}

	var got SessionResponse
	if code := getJSON(t, base, &got); code != http.StatusOK || got.Status != StatusAgree || got.Epoch != 3 {
		t.Fatalf("get = %d / %q epoch=%d", code, got.Status, got.Epoch)
	}

	var deleted SessionResponse
	if code := deleteJSON(t, base, &deleted); code != http.StatusOK || deleted.Status != StatusDeleted {
		t.Fatalf("delete = %d / %q", code, deleted.Status)
	}
	var gone SessionResponse
	if code := getJSON(t, base, &gone); code != http.StatusNotFound || gone.Status != StatusError {
		t.Fatalf("get after delete = %d / %q, want structured 404", code, gone.Status)
	}

	inc, _, _ := sessionRevisionCounters(srv)
	if inc != 2 || srv.revReprepare.Load() != 1 {
		t.Fatalf("revision counters: incremental=%d reprepare=%d, want 2/1", inc, srv.revReprepare.Load())
	}
	if srv.sessionsCreated.Load() != 1 || srv.sessionsDeleted.Load() != 1 || srv.sessions.Len() != 0 {
		t.Fatalf("session accounting: created=%d deleted=%d active=%d",
			srv.sessionsCreated.Load(), srv.sessionsDeleted.Load(), srv.sessions.Len())
	}
}

func sessionRevisionCounters(srv *Server) (inc, rep, fb int64) {
	return srv.revIncremental.Load(), srv.revReprepare.Load(), srv.revFallback.Load()
}

// TestSessionValidation: malformed revisions answer structured 400s and
// leave the session state untouched.
func TestSessionValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var created SessionResponse
	postJSON(t, ts.URL+"/session", SessionCreateRequest{Q1: refQ, Q2: wrongQ, Instance: courseSpec(300)}, &created)
	base := ts.URL + "/session/" + created.SessionID

	for name, req := range map[string]SessionReviseRequest{
		"empty":       {},
		"both":        {Ops: []SessionOp{{Op: "delete", ID: 1}}, Q2: refQ},
		"unknown op":  {Ops: []SessionOp{{Op: "upsert", Rel: "Registration"}}},
		"unknown rel": {Ops: []SessionOp{{Op: "insert", Rel: "nope", Tuple: []string{"1"}}}},
		"bad arity":   {Ops: []SessionOp{{Op: "insert", Rel: "Registration", Tuple: []string{"1"}}}},
		"bad q2":      {Q2: "select[[("},
	} {
		var resp SessionResponse
		code := postJSON(t, base+"/revise", req, &resp)
		if code == http.StatusOK || resp.Status != StatusError {
			t.Errorf("%s revision = %d / %q, want a structured client error", name, code, resp.Status)
		}
	}
	var got SessionResponse
	if code := getJSON(t, base, &got); code != http.StatusOK || got.Epoch != 0 || got.BaseSize != created.BaseSize {
		t.Fatalf("failed revisions moved the session: %d epoch=%d base=%d", code, got.Epoch, got.BaseSize)
	}
}

// TestSessionEviction: creating past the session cap evicts the least
// recently used session, whose handle then answers structured 404s.
func TestSessionEviction(t *testing.T) {
	srv, ts := newTestServer(t, Config{SessionCacheSize: 2})
	ids := make([]string, 3)
	for i := range ids {
		var resp SessionResponse
		if code := postJSON(t, ts.URL+"/session", SessionCreateRequest{
			Q1: refQ, Q2: wrongQ, Instance: courseSpec(300),
		}, &resp); code != http.StatusOK {
			t.Fatalf("create %d = %d (%s)", i, code, resp.Error)
		}
		ids[i] = resp.SessionID
	}
	if srv.sessionsEvicted.Load() != 1 || srv.sessions.Len() != 2 {
		t.Fatalf("evicted=%d active=%d, want 1/2", srv.sessionsEvicted.Load(), srv.sessions.Len())
	}
	var resp SessionResponse
	code := postJSON(t, ts.URL+"/session/"+ids[0]+"/revise", SessionReviseRequest{
		Ops: []SessionOp{{Op: "delete", ID: 0}},
	}, &resp)
	if code != http.StatusNotFound || resp.Status != StatusError {
		t.Fatalf("revise on evicted session = %d / %q, want structured 404", code, resp.Status)
	}
	// The survivors still serve.
	var ok SessionResponse
	if code := getJSON(t, ts.URL+"/session/"+ids[2], &ok); code != http.StatusOK {
		t.Fatalf("survivor get = %d", code)
	}
}

// TestSessionDrainRefusal: a draining server refuses session creation and
// revision with 503 + Retry-After, like every other endpoint.
func TestSessionDrainRefusal(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	var created SessionResponse
	postJSON(t, ts.URL+"/session", SessionCreateRequest{Q1: refQ, Q2: wrongQ, Instance: courseSpec(300)}, &created)

	srv.BeginDrain()
	var refused SessionResponse
	if code := postJSON(t, ts.URL+"/session", SessionCreateRequest{
		Q1: refQ, Q2: wrongQ, Instance: courseSpec(300),
	}, &refused); code != http.StatusServiceUnavailable || refused.Status != StatusDraining {
		t.Fatalf("create while draining = %d / %q", code, refused.Status)
	}
	var revise SessionResponse
	if code := postJSON(t, ts.URL+"/session/"+created.SessionID+"/revise", SessionReviseRequest{
		Ops: []SessionOp{{Op: "delete", ID: 0}},
	}, &revise); code != http.StatusServiceUnavailable || revise.Status != StatusDraining {
		t.Fatalf("revise while draining = %d / %q", code, revise.Status)
	}
}

// TestSessionFallbackPath: a plan pair the delta subsystem refuses still
// gets a session — revisions take the fallback path and stay correct.
func TestSessionFallbackPath(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	// A self-join tower over a duplicate-heavy inline relation: derivation
	// counts blow past the exact-arithmetic bound at prepare time.
	tower := "R join R join R join R join R join R join R join R"
	tower = fmt.Sprintf("(%s) join (%s)", tower, tower)
	inline := InstanceSpec{Kind: "inline", Data: "relation R(a: int)\n" +
		"1\n1\n1\n1\n1\n1\n1\n1\n"}
	var created SessionResponse
	code := postJSON(t, ts.URL+"/session", SessionCreateRequest{Q1: tower, Q2: "R", Instance: inline}, &created)
	if code != http.StatusOK {
		t.Fatalf("fallback create = %d (%s)", code, created.Error)
	}
	if created.Incremental {
		t.Fatal("saturating tower prepared incrementally")
	}
	var revised SessionResponse
	code = postJSON(t, ts.URL+"/session/"+created.SessionID+"/revise", SessionReviseRequest{
		Ops: []SessionOp{{Op: "insert", Rel: "R", Tuple: []string{"2"}}},
	}, &revised)
	if code != http.StatusOK || revised.Path != "fallback" {
		t.Fatalf("fallback revise = %d path=%q (%s)", code, revised.Path, revised.Error)
	}
	if revised.Status != StatusAgree {
		// tower and R are set-equal on any instance (self-joins only).
		t.Fatalf("fallback grade = %q, want agree", revised.Status)
	}
	if fb := srv.revFallback.Load(); fb != 1 {
		t.Fatalf("fallback counter = %d", fb)
	}
}
