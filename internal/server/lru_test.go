package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := newLRU[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	// b is now least recently used; adding c evicts it.
	c.Add("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (a was touched more recently)")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d, %v; want 1, true", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("c = %d, %v; want 3, true", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRURefreshDoesNotGrow(t *testing.T) {
	c := newLRU[string, int](2)
	c.Add("a", 1)
	c.Add("a", 10)
	c.Add("b", 2)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("a = %d, want refreshed value 10", v)
	}
}

func TestLRUCounters(t *testing.T) {
	c := newLRU[string, int](4)
	c.Add("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("missing")
	h, m := c.Counters()
	if h != 2 || m != 1 {
		t.Fatalf("counters = (%d, %d), want (2, 1)", h, m)
	}
}

func TestLRUZeroCapDisables(t *testing.T) {
	c := newLRU[string, int](0)
	c.Add("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("zero-cap cache should never store")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

// The cache must survive concurrent mixed traffic (run under -race).
func TestLRUConcurrent(t *testing.T) {
	c := newLRU[string, int](8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g+i)%12)
				if v, ok := c.Get(k); ok && v != (g+i)%12 {
					t.Errorf("key %s holds %d", k, v)
				}
				c.Add(k, (g+i)%12)
			}
		}(g)
	}
	wg.Wait()
}
