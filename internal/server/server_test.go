package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/course"
)

const (
	refQ   = `project[name, major](select[dept = 'CS'](Student join Registration))`
	wrongQ = `project[name, major](Student join Registration)`
)

func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := mustNew(t, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any, into any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode
}

func courseSpec(size int) InstanceSpec {
	return InstanceSpec{Kind: "course", Size: size, Seed: 1}
}

// jsonBody marshals a request body for tests that need the raw
// *http.Response (headers, status line).
func jsonBody(t *testing.T, body any) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

func decodeBody(t *testing.T, resp *http.Response, into any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var body map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &body); code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", code)
	}
	if body["status"] != "ok" {
		t.Fatalf("healthz body = %v", body)
	}
}

// A found counterexample must verify against the same instance generated
// locally, and the response must carry the rendered relations.
func TestExplainFindsVerifiedCounterexample(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp ExplainResponse
	code := postJSON(t, ts.URL+"/explain", ExplainRequest{
		Q1: refQ, Q2: wrongQ, Instance: courseSpec(500),
	}, &resp)
	if code != http.StatusOK || resp.Status != StatusOK {
		t.Fatalf("explain = %d / %q (%s), want 200 / ok", code, resp.Status, resp.Error)
	}
	if resp.Counterexample == nil || resp.Counterexample.Size == 0 {
		t.Fatal("no counterexample in response")
	}
	if resp.Stats == nil || resp.Stats.Algorithm == "" {
		t.Fatal("no stats in response")
	}
	if len(resp.Counterexample.Relations) == 0 || resp.Counterexample.Rendered == "" {
		t.Fatal("counterexample not rendered")
	}

	// Rebuild the instance the server used and verify the id set server-side
	// decisions are real, not just well-formed JSON.
	db := course.GenerateDB(500, 1)
	keep := map[ratest.TupleID]bool{}
	for _, id := range resp.Counterexample.IDs {
		keep[ratest.TupleID(id)] = true
	}
	sub := db.Subinstance(keep)
	q1, q2 := ratest.MustParseQuery(refQ), ratest.MustParseQuery(wrongQ)
	eq, err := ratest.Equivalent(q1, q2, sub, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatalf("returned ids %v are not a counterexample", resp.Counterexample.IDs)
	}
}

// A repeated identical request must hit both the plan and instance caches,
// and /stats must expose the hit counts.
func TestRepeatRequestHitsCaches(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := ExplainRequest{Q1: refQ, Q2: wrongQ, Instance: courseSpec(500)}
	var first, second ExplainResponse
	postJSON(t, ts.URL+"/explain", req, &first)
	if first.Cache == nil || first.Cache.PlanQ1 != "miss" || first.Cache.Instance != "miss" {
		t.Fatalf("first request cache = %+v, want misses", first.Cache)
	}
	// Whitespace variants of the same query must share the plan entry.
	req.Q1 = "  " + strings.ReplaceAll(refQ, " ", "\n ")
	postJSON(t, ts.URL+"/explain", req, &second)
	if second.Cache == nil || second.Cache.PlanQ1 != "hit" || second.Cache.PlanQ2 != "hit" || second.Cache.Instance != "hit" {
		t.Fatalf("second request cache = %+v, want hits", second.Cache)
	}
	if second.Status != StatusOK {
		t.Fatalf("second request status = %q (%s)", second.Status, second.Error)
	}

	var stats struct {
		PlanCache     cacheStats `json:"plan_cache"`
		InstanceCache cacheStats `json:"instance_cache"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.PlanCache.Hits < 2 || stats.InstanceCache.Hits < 1 {
		t.Fatalf("stats = %+v, want recorded hits", stats)
	}
	if stats.PlanCache.Misses < 2 || stats.InstanceCache.Misses < 1 {
		t.Fatalf("stats = %+v, want recorded misses", stats)
	}
}

// Evicted plans must be transparently re-parsed: correctness never depends
// on cache residency.
func TestPlanCacheEvictionStaysCorrect(t *testing.T) {
	srv, ts := newTestServer(t, Config{PlanCacheSize: 2})
	pairs := [][2]string{
		{refQ, wrongQ},
		{`project[name](Student)`, `project[name](select[major = 'CS'](Student))`},
		{`project[course](Registration)`, `project[course](select[dept = 'CS'](Registration))`},
	}
	run := func(p [2]string) ExplainResponse {
		var resp ExplainResponse
		code := postJSON(t, ts.URL+"/explain", ExplainRequest{Q1: p[0], Q2: p[1], Instance: courseSpec(500)}, &resp)
		if code != http.StatusOK || resp.Status != StatusOK {
			t.Fatalf("explain(%q vs %q) = %d / %q (%s)", p[0], p[1], code, resp.Status, resp.Error)
		}
		return resp
	}
	first := run(pairs[0])
	for _, p := range pairs[1:] {
		run(p)
	}
	if srv.plans.Len() > 2 {
		t.Fatalf("plan cache grew past its cap: %d", srv.plans.Len())
	}
	// The first pair was evicted; rerunning it must miss and still answer
	// identically.
	again := run(pairs[0])
	if again.Cache.PlanQ1 != "miss" {
		t.Fatalf("expected evicted plan to miss, got %+v", again.Cache)
	}
	if fmt.Sprint(again.Counterexample.IDs) != fmt.Sprint(first.Counterexample.IDs) {
		t.Fatalf("eviction changed the answer: %v vs %v", again.Counterexample.IDs, first.Counterexample.IDs)
	}
}

func TestMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  ExplainRequest
	}{
		{"bad q1", ExplainRequest{Q1: "project[(", Q2: wrongQ, Instance: courseSpec(100)}},
		{"bad q2", ExplainRequest{Q1: refQ, Q2: "join join", Instance: courseSpec(100)}},
		{"empty q", ExplainRequest{Q1: refQ, Instance: courseSpec(100)}},
		{"no instance kind", ExplainRequest{Q1: refQ, Q2: wrongQ}},
		{"bad instance kind", ExplainRequest{Q1: refQ, Q2: wrongQ, Instance: InstanceSpec{Kind: "nope"}}},
		{"oversized instance", ExplainRequest{Q1: refQ, Q2: wrongQ, Instance: courseSpec(10_000_000)}},
		{"empty inline", ExplainRequest{Q1: refQ, Q2: wrongQ, Instance: InstanceSpec{Kind: "inline"}}},
	}
	for _, tc := range cases {
		var resp ExplainResponse
		code := postJSON(t, ts.URL+"/explain", tc.req, &resp)
		if code != http.StatusBadRequest || resp.Status != StatusError || resp.Error == "" {
			t.Errorf("%s: got %d / %q (%s), want 400 / error", tc.name, code, resp.Status, resp.Error)
		}
	}

	// Non-JSON body and wrong method.
	resp, err := http.Post(ts.URL+"/explain", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body = %d, want 400", resp.StatusCode)
	}
	get, err := http.Get(ts.URL + "/explain")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /explain = %d, want 405", get.StatusCode)
	}
}

func TestAgreeingQueries(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp ExplainResponse
	code := postJSON(t, ts.URL+"/explain", ExplainRequest{
		Q1: refQ, Q2: refQ, Instance: courseSpec(200),
	}, &resp)
	if code != http.StatusOK || resp.Status != StatusAgree {
		t.Fatalf("identical queries = %d / %q (%s), want 200 / agree", code, resp.Status, resp.Error)
	}
	if resp.Counterexample != nil {
		t.Fatal("agree response carries a counterexample")
	}
}

// A 50ms budget on a deliberately large instance must come back as a
// budget_exceeded JSON response (not a 500, not a hang) with partial stats
// and an unknown solver status.
func TestBudgetExceeded(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	q4 := `project[name, major](select[dept = 'CS'](Student join Registration)) diff project[name, major](select[dept = 'ECON'](Student join Registration))`
	q6 := `project[name, major](select[dept = 'CS'](Student join Registration)) diff project[name, major](select[dept <> 'CS'](Student join Registration))`
	var resp ExplainResponse
	done := make(chan int, 1)
	go func() {
		done <- postJSON(t, ts.URL+"/explain", ExplainRequest{
			Q1: q4, Q2: q6, Instance: courseSpec(100_000), TimeoutMS: 50,
		}, &resp)
	}()
	select {
	case code := <-done:
		if code != http.StatusOK {
			t.Fatalf("budget-exceeded request = %d, want 200", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("budgeted request hung")
	}
	if resp.Status != StatusBudgetExceeded {
		t.Fatalf("status = %q (%s), want budget_exceeded", resp.Status, resp.Error)
	}
	if resp.Stats == nil || resp.Stats.SolverStatus != "unknown" {
		t.Fatalf("stats = %+v, want partial stats with unknown solver status", resp.Stats)
	}
	if n := srvBudgetCount(srv); n != 1 {
		t.Fatalf("budget_exceeded counter = %d, want 1", n)
	}
}

func srvBudgetCount(srv *Server) int64 {
	return srv.budgetExceeded.Load()
}

func TestGrade(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	inst := courseSpec(500)

	var pass GradeResponse
	postJSON(t, ts.URL+"/grade", GradeRequest{Question: "q1", Q: refQ, Instance: inst}, &pass)
	if pass.Status != StatusAgree || pass.Grade != "pass" {
		t.Fatalf("correct submission = %q/%q (%s), want agree/pass", pass.Status, pass.Grade, pass.Error)
	}

	var fail GradeResponse
	postJSON(t, ts.URL+"/grade", GradeRequest{Question: "q1", Q: wrongQ, Instance: inst}, &fail)
	if fail.Status != StatusOK || fail.Grade != "fail" {
		t.Fatalf("wrong submission = %q/%q (%s), want ok/fail", fail.Status, fail.Grade, fail.Error)
	}
	if fail.Counterexample == nil || fail.Counterexample.Size == 0 {
		t.Fatal("failing grade carries no counterexample")
	}

	var bad GradeResponse
	if code := postJSON(t, ts.URL+"/grade", GradeRequest{Question: "q99", Q: refQ}, &bad); code != http.StatusBadRequest {
		t.Fatalf("unknown question = %d, want 400", code)
	}
	var tpch GradeResponse
	if code := postJSON(t, ts.URL+"/grade", GradeRequest{Question: "q1", Q: refQ, Instance: InstanceSpec{Kind: "tpch"}}, &tpch); code != http.StatusBadRequest {
		t.Fatalf("tpch grading = %d, want 400", code)
	}
}

// Concurrent clients mixing cached and uncached work must all get correct,
// independent answers (this is the -race coverage for the shared caches,
// admission and counters).
func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 4})
	type job struct {
		q1, q2 string
		want   string
	}
	jobs := []job{
		{refQ, wrongQ, StatusOK},
		{refQ, refQ, StatusAgree},
		{`project[name](Student)`, `project[name](select[major = 'CS'](Student))`, StatusOK},
		{wrongQ, wrongQ, StatusAgree},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				j := jobs[(g+i)%len(jobs)]
				var resp ExplainResponse
				code := postJSON(t, ts.URL+"/explain", ExplainRequest{
					Q1: j.q1, Q2: j.q2, Instance: courseSpec(500),
				}, &resp)
				if code != http.StatusOK || resp.Status != j.want {
					errs <- fmt.Errorf("goroutine %d: %q vs %q = %d/%q (%s), want %q",
						g, j.q1, j.q2, code, resp.Status, resp.Error, j.want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var stats struct {
		Admission map[string]int64 `json:"admission"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Admission["in_flight"] != 0 || stats.Admission["waiting"] != 0 {
		t.Fatalf("admission leaked: %+v", stats.Admission)
	}
}

// Admission must refuse a request whose budget expires while queued, and
// release slots exactly once.
func TestAdmission(t *testing.T) {
	srv := mustNew(t, Config{MaxConcurrent: 1})
	// Occupy the only slot.
	if !srv.admit(context.Background(), "a") {
		t.Fatal("admit failed with a free slot")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if srv.admit(ctx, "b") {
		t.Fatal("admit succeeded with the slot occupied and the deadline expiring")
	}
	srv.release()
	if !srv.admit(context.Background(), "b") {
		t.Fatal("admit failed after release")
	}
	srv.release()
	if n := srv.inFlight.Load(); n != 0 {
		t.Fatalf("in-flight leaked: %d", n)
	}
	if n := srv.waiting.Load(); n != 0 {
		t.Fatalf("waiting leaked: %d", n)
	}
}

func TestBudgetClamp(t *testing.T) {
	srv := mustNew(t, Config{DefaultTimeout: 10 * time.Second, MaxTimeout: 30 * time.Second})
	if d := srv.budget(0); d != 10*time.Second {
		t.Fatalf("default budget = %v", d)
	}
	if d := srv.budget(500); d != 500*time.Millisecond {
		t.Fatalf("explicit budget = %v", d)
	}
	if d := srv.budget(10 * 60 * 1000); d != 30*time.Second {
		t.Fatalf("clamped budget = %v", d)
	}
}

// Inline instances are request-private, parsed from the text format, and
// never cached.
func TestInlineInstance(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	data := `relation S(a: int)
1
2

relation T(a: int)
1
`
	var resp ExplainResponse
	code := postJSON(t, ts.URL+"/explain", ExplainRequest{
		Q1: "S", Q2: "T", Instance: InstanceSpec{Kind: "inline", Data: data},
	}, &resp)
	if code != http.StatusOK || resp.Status != StatusOK {
		t.Fatalf("inline explain = %d / %q (%s)", code, resp.Status, resp.Error)
	}
	if resp.Counterexample.Size != 1 {
		t.Fatalf("counterexample size = %d, want 1 (the tuple S(2))", resp.Counterexample.Size)
	}
	if srv.instances.Len() != 0 {
		t.Fatal("inline instance leaked into the cache")
	}
}

// The opt-in explain_plan field must carry the join planner's decisions:
// a three-leaf natural-join chain on the course schema is a planned,
// acyclic region with semi-joins, and plan-cache entries must be keyed per
// instance (the same query against a different instance is a fresh miss).
func TestExplainPlanField(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	q := `project[name](Student join Registration join Student)`
	var resp ExplainResponse
	code := postJSON(t, ts.URL+"/explain", ExplainRequest{
		Q1: q, Q2: q, Instance: courseSpec(300), ExplainPlan: true,
	}, &resp)
	if code != http.StatusOK || resp.Status != StatusAgree {
		t.Fatalf("explain = %d / %q (%s), want 200 / agree", code, resp.Status, resp.Error)
	}
	if resp.Plan == nil || len(resp.Plan.Q1) == 0 {
		t.Fatalf("explain_plan requested but plan missing: %+v", resp.Plan)
	}
	reg := resp.Plan.Q1[0]
	if !reg.Planned || len(reg.Leaves) != 3 {
		t.Fatalf("region = %+v, want a planned 3-leaf region", reg)
	}
	if !reg.Acyclic || reg.SemiJoins == 0 {
		t.Fatalf("region = %+v, want the acyclic semi-join path to fire", reg)
	}
	if len(reg.Joins) != 2 || reg.Joins[0].EstRows <= 0 {
		t.Fatalf("joins = %+v, want 2 joins with positive estimates", reg.Joins)
	}

	// Same query, different named instance: the plan cache must miss (entries
	// are keyed by instance), then hit on repeat.
	var resp2 ExplainResponse
	postJSON(t, ts.URL+"/explain", ExplainRequest{Q1: q, Q2: q, Instance: courseSpec(400)}, &resp2)
	if resp2.Cache.PlanQ1 != "miss" {
		t.Fatalf("plan cache for new instance = %q, want miss", resp2.Cache.PlanQ1)
	}
	postJSON(t, ts.URL+"/explain", ExplainRequest{Q1: q, Q2: q, Instance: courseSpec(400)}, &resp2)
	if resp2.Cache.PlanQ1 != "hit" {
		t.Fatalf("repeated plan cache lookup = %q, want hit", resp2.Cache.PlanQ1)
	}

	// Without explain_plan the field stays absent.
	var resp3 ExplainResponse
	postJSON(t, ts.URL+"/explain", ExplainRequest{Q1: q, Q2: q, Instance: courseSpec(300)}, &resp3)
	if resp3.Plan != nil {
		t.Fatalf("plan field present without explain_plan: %+v", resp3.Plan)
	}
}

// Inline instances are request-private: their plan-cache entries are keyed
// by query text alone and stay statistics-free, and explain_plan still
// works by planning per request against the inline data.
func TestExplainPlanInlineInstance(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	data := `
relation R(a: int, b: int)
1, 1
2, 2
relation S(b: int, c: int)
1, 10
2, 20
relation T(c: int, d: int)
10, 100
`
	q := `project[a](R join S join T)`
	var resp ExplainResponse
	code := postJSON(t, ts.URL+"/explain", ExplainRequest{
		Q1: q, Q2: q, Instance: InstanceSpec{Kind: "inline", Data: data}, ExplainPlan: true,
	}, &resp)
	if code != http.StatusOK || resp.Status != StatusAgree {
		t.Fatalf("explain = %d / %q (%s), want 200 / agree", code, resp.Status, resp.Error)
	}
	if resp.Plan == nil || len(resp.Plan.Q1) == 0 || !resp.Plan.Q1[0].Planned {
		t.Fatalf("inline explain_plan missing or unplanned: %+v", resp.Plan)
	}
}
