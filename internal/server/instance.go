package server

import (
	"fmt"
	"math"
	"strings"

	"repro"
	"repro/internal/course"
	"repro/internal/faults"
	"repro/internal/relation"
	"repro/internal/tpch"
)

// InstanceSpec names the database instance a request runs against. Kind is
// one of:
//
//   - "course": the Section 7.1 Student/Registration workload; Size is the
//     approximate total tuple count (default 1000), Seed the generator seed.
//   - "tpch": the TPC-H-style instance of Section 7.2; SF is the row-count
//     scale factor (default 0.001), Seed the generator seed.
//   - "inline": Data holds a full instance in the ratest.LoadDatabase text
//     format. Inline instances are request-private and never cached.
//
// Generated instances are deterministic in (kind, size/sf, seed), which is
// what makes them shareable across requests: two requests naming the same
// spec read the same immutable database.
type InstanceSpec struct {
	Kind string  `json:"kind"`
	Size int     `json:"size,omitempty"`
	Seed int64   `json:"seed,omitempty"`
	SF   float64 `json:"sf,omitempty"`
	Data string  `json:"data,omitempty"`
}

// instance is a resolved database with its integrity constraints.
type instance struct {
	db          *relation.Database
	constraints []relation.Constraint
}

// tpchTuplesPerSF approximates how many tuples a TPC-H instance holds per
// unit of scale factor (the sum of the official table cardinalities); the
// server uses it to map its tuple cap onto SF.
const tpchTuplesPerSF = 8_660_000

// CacheKey returns the instance-cache key for a spec, or "" when the spec
// is not cacheable (inline data).
func (s InstanceSpec) CacheKey() string {
	switch s.Kind {
	case "course":
		return fmt.Sprintf("course:%d:%d", s.sizeOrDefault(), s.Seed)
	case "tpch":
		return fmt.Sprintf("tpch:%g:%d", s.sfOrDefault(), s.Seed)
	}
	return ""
}

func (s InstanceSpec) sizeOrDefault() int {
	if s.Size <= 0 {
		return 1000
	}
	return s.Size
}

func (s InstanceSpec) sfOrDefault() float64 {
	if s.SF <= 0 {
		return 0.001
	}
	return s.SF
}

// resolve materializes a spec, consulting and populating the instance
// cache for the generated kinds. The returned instance's database must be
// treated as read-only: it may be shared with concurrent requests.
func (srv *Server) resolve(spec InstanceSpec) (*instance, bool, error) {
	switch spec.Kind {
	case "course":
		n := spec.sizeOrDefault()
		if n > srv.cfg.MaxInstanceTuples {
			return nil, false, fmt.Errorf("course instance size %d exceeds the server cap %d", n, srv.cfg.MaxInstanceTuples)
		}
		key := spec.CacheKey()
		if inst, ok := srv.instances.Get(key); ok {
			return inst, true, nil
		}
		faults.Inject(faults.InstanceGen)
		inst := &instance{db: course.GenerateDB(n, spec.Seed), constraints: course.Constraints()}
		srv.instances.Add(key, inst)
		return inst, false, nil
	case "tpch":
		sf := spec.sfOrDefault()
		// Compare in float: converting sf*tpchTuplesPerSF to int first
		// overflows for absurd sf values and would wave them through the
		// cap (and NaN compares false against everything, so reject it
		// explicitly).
		if math.IsNaN(sf) || sf*tpchTuplesPerSF > float64(srv.cfg.MaxInstanceTuples) {
			return nil, false, fmt.Errorf("tpch sf %g (≈%.0f tuples) exceeds the server cap %d tuples", sf, sf*tpchTuplesPerSF, srv.cfg.MaxInstanceTuples)
		}
		key := spec.CacheKey()
		if inst, ok := srv.instances.Get(key); ok {
			return inst, true, nil
		}
		faults.Inject(faults.InstanceGen)
		inst := &instance{db: tpch.Generate(sf, spec.Seed)}
		srv.instances.Add(key, inst)
		return inst, false, nil
	case "inline":
		if strings.TrimSpace(spec.Data) == "" {
			return nil, false, fmt.Errorf("inline instance needs non-empty data")
		}
		db, cons, err := ratest.LoadDatabase(strings.NewReader(spec.Data))
		if err != nil {
			return nil, false, fmt.Errorf("parsing inline instance: %w", err)
		}
		if db.Size() > srv.cfg.MaxInstanceTuples {
			return nil, false, fmt.Errorf("inline instance has %d tuples, exceeding the server cap %d", db.Size(), srv.cfg.MaxInstanceTuples)
		}
		return &instance{db: db, constraints: cons}, false, nil
	case "":
		return nil, false, fmt.Errorf("instance.kind is required (course, tpch or inline)")
	}
	return nil, false, fmt.Errorf("unknown instance kind %q (want course, tpch or inline)", spec.Kind)
}
