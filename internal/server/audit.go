package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"time"
)

// The audit log is an append-only JSONL record of every /explain and
// /grade outcome — including recovered panics with their stacks — so a
// crash, a dispute, or a regression can be replayed from what the server
// actually served (the reenactment idea of Arab et al.): feed the file
// back through Replay (cmd/ratestd -replay) and the deterministic fields
// of each outcome must reproduce byte-for-byte.
//
// Deterministic fields: status, grade, counterexample size/ids, witness.
// Non-deterministic fields (timings, seq, time, cache hits, degraded
// level, queue-position-dependent outcomes like budget_exceeded / shed /
// draining and recovered panics) are recorded for forensics but excluded
// from replay comparison.

// AuditEntry is one JSONL record.
type AuditEntry struct {
	Seq      int64     `json:"seq"`
	Time     time.Time `json:"time"`
	Endpoint string    `json:"endpoint"`
	Tenant   string    `json:"tenant,omitempty"`

	// The replayable request payload (exactly one is set, matching
	// Endpoint).
	Request      *ExplainRequest `json:"request,omitempty"`
	GradeRequest *GradeRequest   `json:"grade_request,omitempty"`

	// Outcome.
	HTTPStatus int      `json:"http_status"`
	Status     string   `json:"status"`
	Grade      string   `json:"grade,omitempty"`
	Degraded   string   `json:"degraded,omitempty"`
	CESize     int      `json:"ce_size,omitempty"`
	CEIDs      []int    `json:"ce_ids,omitempty"`
	Witness    []string `json:"witness,omitempty"`
	Error      string   `json:"error,omitempty"`
	Panic      string   `json:"panic,omitempty"`
	Stack      string   `json:"stack,omitempty"`
	ElapsedMS  float64  `json:"elapsed_ms"`
}

// auditLog serializes entries to one writer. A nil *auditLog is valid and
// discards everything, so the hot path never branches on configuration.
type auditLog struct {
	mu      sync.Mutex
	w       io.Writer
	f       *os.File // non-nil when we own the file (Sync/Close)
	seq     atomic.Int64
	dropped atomic.Int64 // entries lost to write errors
}

// newAuditLog builds the logger from the config: an explicit writer wins
// (tests), else a path is opened append-only, else logging is off.
func newAuditLog(cfg Config) (*auditLog, error) {
	if cfg.AuditWriter != nil {
		return &auditLog{w: cfg.AuditWriter}, nil
	}
	if cfg.AuditPath == "" {
		return nil, nil
	}
	f, err := os.OpenFile(cfg.AuditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("opening audit log: %w", err)
	}
	return &auditLog{w: f, f: f}, nil
}

// append writes one entry, stamping seq and time. Write failures drop the
// entry (and count it) rather than failing the request: the audit log is
// an observer, not a participant.
func (a *auditLog) append(e *AuditEntry) {
	if a == nil {
		return
	}
	e.Seq = a.seq.Add(1)
	e.Time = time.Now().UTC()
	line, err := json.Marshal(e)
	if err != nil {
		a.dropped.Add(1)
		return
	}
	line = append(line, '\n')
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, err := a.w.Write(line); err != nil {
		a.dropped.Add(1)
	}
}

// Flush forces the log to stable storage (no-op for non-file writers).
func (a *auditLog) Flush() error {
	if a == nil || a.f == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.f.Sync()
}

// Close flushes and closes the log.
func (a *auditLog) Close() error {
	if a == nil {
		return nil
	}
	if err := a.Flush(); err != nil {
		return err
	}
	if a.f != nil {
		return a.f.Close()
	}
	return nil
}

func (a *auditLog) counters() (seq, dropped int64) {
	if a == nil {
		return 0, 0
	}
	return a.seq.Load(), a.dropped.Load()
}

// replayOutcome is the deterministic projection of an entry that a replay
// must reproduce byte-for-byte.
type replayOutcome struct {
	Status  string   `json:"status"`
	Grade   string   `json:"grade,omitempty"`
	CESize  int      `json:"ce_size,omitempty"`
	CEIDs   []int    `json:"ce_ids,omitempty"`
	Witness []string `json:"witness,omitempty"`
}

func outcomeOf(e *AuditEntry) replayOutcome {
	return replayOutcome{Status: e.Status, Grade: e.Grade, CESize: e.CESize, CEIDs: e.CEIDs, Witness: e.Witness}
}

// replayable reports whether an entry's outcome is deterministic enough to
// assert on: load-dependent outcomes (budget exhaustion, shedding,
// draining refusals), injected/recovered panics and malformed requests
// replay as whatever they replay as.
func replayable(e *AuditEntry) bool {
	if e.Request == nil && e.GradeRequest == nil {
		return false
	}
	if e.Panic != "" || e.Stack != "" {
		return false
	}
	// A degraded outcome ran a different (clamped / solver-free) pipeline
	// than the recorded request describes; an unloaded replay server would
	// run the full one.
	if e.Degraded != "" {
		return false
	}
	switch e.Status {
	case StatusOK, StatusAgree:
		return true
	}
	return false
}

// ReplayReport summarizes a Replay run.
type ReplayReport struct {
	Total      int // entries read
	Replayed   int // deterministic entries re-run
	Matched    int
	Mismatched int
	Skipped    int // non-deterministic or non-request entries
	Errors     []string
}

// Replay re-runs an audit-log corpus against srv and compares each
// deterministic outcome byte-for-byte with the logged one. The server
// should be configured like the original (same instance caps; budgets
// only matter for entries that exhausted them, which are skipped). Returns
// an error only for corpus-level problems; per-entry mismatches are
// reported in the report.
func Replay(r io.Reader, srv *Server, progress io.Writer) (*ReplayReport, error) {
	rep := &ReplayReport{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		rep.Total++
		var e AuditEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			return rep, fmt.Errorf("audit line %d: %w", line, err)
		}
		if !replayable(&e) {
			rep.Skipped++
			continue
		}
		rep.Replayed++
		got := srv.replayEntry(&e)
		want := outcomeOf(&e)
		if reflect.DeepEqual(got, want) {
			rep.Matched++
			continue
		}
		rep.Mismatched++
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		rep.Errors = append(rep.Errors, fmt.Sprintf("seq %d (%s): got %s, want %s", e.Seq, e.Endpoint, gb, wb))
		if progress != nil {
			fmt.Fprintf(progress, "MISMATCH seq %d (%s):\n  got  %s\n  want %s\n", e.Seq, e.Endpoint, gb, wb)
		}
	}
	if err := sc.Err(); err != nil {
		return rep, fmt.Errorf("reading audit log: %w", err)
	}
	return rep, nil
}

// replayEntry re-runs one logged request through the same pipeline the
// handlers use (without HTTP or re-audit) and projects its outcome.
func (srv *Server) replayEntry(e *AuditEntry) replayOutcome {
	ctx := context.Background()
	var resp *ExplainResponse
	var grade string
	if e.GradeRequest != nil {
		_, g := srv.grade(ctx, e.GradeRequest, e.Tenant)
		resp, grade = &g.ExplainResponse, g.Grade
	} else {
		_, resp = srv.explain(ctx, e.Request, e.Tenant)
	}
	out := replayOutcome{Status: resp.Status, Grade: grade}
	if ce := resp.Counterexample; ce != nil {
		out.CESize = ce.Size
		out.CEIDs = ce.IDs
		out.Witness = ce.Witness
	}
	return out
}
