package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The audit log is an append-only JSONL record of every /explain and
// /grade outcome — including recovered panics with their stacks — so a
// crash, a dispute, or a regression can be replayed from what the server
// actually served (the reenactment idea of Arab et al.): feed the file
// back through Replay (cmd/ratestd -replay) and the deterministic fields
// of each outcome must reproduce byte-for-byte.
//
// Deterministic fields: status, grade, counterexample size/ids, witness.
// Non-deterministic fields (timings, seq, time, cache hits, degraded
// level, queue-position-dependent outcomes like budget_exceeded / shed /
// draining and recovered panics) are recorded for forensics but excluded
// from replay comparison.

// RoleFrontend marks audit entries written by the cluster frontend.
const RoleFrontend = "frontend"

// AuditEntry is one JSONL record.
type AuditEntry struct {
	Seq      int64     `json:"seq"`
	Time     time.Time `json:"time"`
	Endpoint string    `json:"endpoint"`
	Tenant   string    `json:"tenant,omitempty"`

	// Cluster provenance. Role is "" for a standalone or worker process and
	// "frontend" for the cluster frontend; RequestID is the frontend-
	// assigned X-Ratest-Request-Id joining the frontend's entry with the
	// worker entries for the same request; Attempt is the 1-based attempt
	// that produced a worker entry (or, on a frontend entry, the total
	// attempts spent); Worker is the worker that served a frontend entry.
	Role      string `json:"role,omitempty"`
	RequestID string `json:"request_id,omitempty"`
	Attempt   int    `json:"attempt,omitempty"`
	Worker    string `json:"worker,omitempty"`

	// The replayable request payload (exactly one is set, matching
	// Endpoint).
	Request      *ExplainRequest `json:"request,omitempty"`
	GradeRequest *GradeRequest   `json:"grade_request,omitempty"`

	// Session entries. SessionID is the id the request addressed (or the
	// id create assigned); SessionPath is the revision path the server
	// took; the payloads match the /session and /session/{id}/revise
	// endpoints. Session entries replay in log order through a per-log id
	// mapping (a replay server assigns fresh ids).
	SessionID     string                `json:"session_id,omitempty"`
	SessionPath   string                `json:"session_path,omitempty"`
	SessionCreate *SessionCreateRequest `json:"session_create,omitempty"`
	SessionRevise *SessionReviseRequest `json:"session_revise,omitempty"`

	// Outcome.
	HTTPStatus int      `json:"http_status"`
	Status     string   `json:"status"`
	Grade      string   `json:"grade,omitempty"`
	Degraded   string   `json:"degraded,omitempty"`
	CESize     int      `json:"ce_size,omitempty"`
	CEIDs      []int    `json:"ce_ids,omitempty"`
	Witness    []string `json:"witness,omitempty"`
	Error      string   `json:"error,omitempty"`
	Panic      string   `json:"panic,omitempty"`
	Stack      string   `json:"stack,omitempty"`
	ElapsedMS  float64  `json:"elapsed_ms"`
}

// auditLog serializes entries to one writer. A nil *auditLog is valid and
// discards everything, so the hot path never branches on configuration.
type auditLog struct {
	mu      sync.Mutex
	w       io.Writer
	f       *os.File // non-nil when we own the file (Sync/Close)
	seq     atomic.Int64
	dropped atomic.Int64 // entries lost to write errors
}

// newAuditLog builds the logger: an explicit writer wins (tests), else a
// path is opened append-only, else logging is off.
func newAuditLog(path string, w io.Writer) (*auditLog, error) {
	if w != nil {
		return &auditLog{w: w}, nil
	}
	if path == "" {
		return nil, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("opening audit log: %w", err)
	}
	return &auditLog{w: f, f: f}, nil
}

// AuditSink is the exported audit-log handle the cluster frontend writes
// through: the same JSONL format and drop-on-write-error semantics as the
// server's own log, so frontend and worker logs join cleanly in -replay. A
// nil *AuditSink discards everything.
type AuditSink struct{ log *auditLog }

// NewAuditSink opens an audit sink on a writer (which wins) or an
// append-only file path; both empty means a discarding sink.
func NewAuditSink(path string, w io.Writer) (*AuditSink, error) {
	l, err := newAuditLog(path, w)
	if err != nil {
		return nil, err
	}
	return &AuditSink{log: l}, nil
}

// Append writes one entry, stamping seq and time.
func (s *AuditSink) Append(e *AuditEntry) {
	if s == nil {
		return
	}
	s.log.append(e)
}

// Close flushes and closes the sink.
func (s *AuditSink) Close() error {
	if s == nil {
		return nil
	}
	return s.log.Close()
}

// Counters reports entries written and entries dropped to write errors.
func (s *AuditSink) Counters() (entries, dropped int64) {
	if s == nil {
		return 0, 0
	}
	return s.log.counters()
}

// append writes one entry, stamping seq and time. Write failures drop the
// entry (and count it) rather than failing the request: the audit log is
// an observer, not a participant.
func (a *auditLog) append(e *AuditEntry) {
	if a == nil {
		return
	}
	e.Seq = a.seq.Add(1)
	e.Time = time.Now().UTC()
	line, err := json.Marshal(e)
	if err != nil {
		a.dropped.Add(1)
		return
	}
	line = append(line, '\n')
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, err := a.w.Write(line); err != nil {
		a.dropped.Add(1)
	}
}

// Flush forces the log to stable storage (no-op for non-file writers).
func (a *auditLog) Flush() error {
	if a == nil || a.f == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.f.Sync()
}

// Close flushes and closes the log.
func (a *auditLog) Close() error {
	if a == nil {
		return nil
	}
	if err := a.Flush(); err != nil {
		return err
	}
	if a.f != nil {
		return a.f.Close()
	}
	return nil
}

func (a *auditLog) counters() (seq, dropped int64) {
	if a == nil {
		return 0, 0
	}
	return a.seq.Load(), a.dropped.Load()
}

// sessionReplayable reports whether a session entry's outcome is
// deterministic enough to assert on. Budget exhaustion, shedding, draining
// and panics are load-dependent — and for a revision, leave the original
// session's commit state ambiguous — so they poison the session instead.
func sessionReplayable(e *AuditEntry) bool {
	if e.Panic != "" || e.Stack != "" || e.Degraded != "" {
		return false
	}
	switch e.Endpoint {
	case "/session":
		return e.SessionCreate != nil && (e.Status == StatusOK || e.Status == StatusAgree)
	case "/session/revise":
		return e.SessionRevise != nil && (e.Status == StatusOK || e.Status == StatusAgree)
	case "/session/get":
		return e.Status == StatusOK || e.Status == StatusAgree
	case "/session/delete":
		return e.Status == StatusDeleted
	}
	return false
}

// sessionOutcomeOf mirrors sessionAuditOf's deterministic projection.
func sessionOutcomeOf(resp *SessionResponse) replayOutcome {
	out := replayOutcome{Status: resp.Status}
	switch resp.Status {
	case StatusOK:
		out.Grade = "fail"
		out.CESize = resp.Size12 + resp.Size21
		if w := append(append([]string{}, resp.Witness12...), resp.Witness21...); len(w) > 0 {
			out.Witness = w
		}
	case StatusAgree:
		out.Grade = "pass"
	}
	return out
}

// sessionReplayer re-runs session entries in log order: creates rebuild
// sessions on the replay server (which assigns fresh ids), an id map keyed
// by (source log, original id) translates every subsequent entry, and a
// non-replayable or mismatching entry poisons its session so the remaining
// entries for it are skipped instead of reported as cascade mismatches.
type sessionReplayer struct {
	srv      *Server
	idmap    map[string]string
	poisoned map[string]bool
}

func newSessionReplayer(srv *Server) *sessionReplayer {
	return &sessionReplayer{srv: srv, idmap: map[string]string{}, poisoned: map[string]bool{}}
}

func (sr *sessionReplayer) replay(logIdx int, e *AuditEntry, rep *ReplayReport,
	mismatch func(e *AuditEntry, kind string, got, want replayOutcome)) {
	ctx := context.Background()
	key := fmt.Sprintf("%d/%s", logIdx, e.SessionID)
	compare := func(resp *SessionResponse) bool {
		rep.Replayed++
		got, want := sessionOutcomeOf(resp), outcomeOf(e)
		if reflect.DeepEqual(got, want) {
			rep.Matched++
			return true
		}
		mismatch(e, "session", got, want)
		return false
	}
	if e.Endpoint == "/session" {
		if !sessionReplayable(e) {
			sr.poisoned[key] = true
			rep.Skipped++
			return
		}
		_, resp := sr.srv.sessionCreate(ctx, e.SessionCreate, e.Tenant)
		if resp.SessionID != "" {
			sr.idmap[key] = resp.SessionID
		}
		if !compare(resp) || resp.SessionID == "" {
			sr.poisoned[key] = true
		}
		return
	}
	if sr.poisoned[key] {
		rep.Skipped++
		return
	}
	newID, ok := sr.idmap[key]
	if !ok || !sessionReplayable(e) {
		sr.poisoned[key] = true
		rep.Skipped++
		return
	}
	var resp *SessionResponse
	switch e.Endpoint {
	case "/session/revise":
		_, resp = sr.srv.sessionRevise(ctx, newID, e.SessionRevise, e.Tenant)
	case "/session/get":
		_, resp = sr.srv.sessionGet(ctx, newID)
	case "/session/delete":
		_, resp = sr.srv.sessionDelete(newID)
		delete(sr.idmap, key)
	default:
		rep.Skipped++
		return
	}
	if !compare(resp) {
		sr.poisoned[key] = true
	}
}

// replayOutcome is the deterministic projection of an entry that a replay
// must reproduce byte-for-byte.
type replayOutcome struct {
	Status  string   `json:"status"`
	Grade   string   `json:"grade,omitempty"`
	CESize  int      `json:"ce_size,omitempty"`
	CEIDs   []int    `json:"ce_ids,omitempty"`
	Witness []string `json:"witness,omitempty"`
}

func outcomeOf(e *AuditEntry) replayOutcome {
	return replayOutcome{Status: e.Status, Grade: e.Grade, CESize: e.CESize, CEIDs: e.CEIDs, Witness: e.Witness}
}

// replayable reports whether an entry's outcome is deterministic enough to
// assert on: load-dependent outcomes (budget exhaustion, shedding,
// draining refusals), injected/recovered panics and malformed requests
// replay as whatever they replay as.
func replayable(e *AuditEntry) bool {
	if e.Request == nil && e.GradeRequest == nil {
		return false
	}
	if e.Panic != "" || e.Stack != "" {
		return false
	}
	// A degraded outcome ran a different (clamped / solver-free) pipeline
	// than the recorded request describes; an unloaded replay server would
	// run the full one.
	if e.Degraded != "" {
		return false
	}
	switch e.Status {
	case StatusOK, StatusAgree:
		return true
	}
	return false
}

// ReplayReport summarizes a Replay run.
type ReplayReport struct {
	Total      int // entries read
	Replayed   int // deterministic entries re-run
	Matched    int
	Mismatched int
	Skipped    int // non-deterministic or non-request entries
	Joined     int // frontend entries join-verified against worker entries
	Errors     []string
}

// ReadAuditLog parses one JSONL audit stream into entries (blank lines are
// skipped).
func ReadAuditLog(r io.Reader) ([]AuditEntry, error) {
	var out []AuditEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var e AuditEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			return out, fmt.Errorf("audit line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("reading audit log: %w", err)
	}
	return out, nil
}

// Replay re-runs an audit-log corpus against srv and compares each
// deterministic outcome byte-for-byte with the logged one. The server
// should be configured like the original (same instance caps; budgets
// only matter for entries that exhausted them, which are skipped). Returns
// an error only for corpus-level problems; per-entry mismatches are
// reported in the report.
func Replay(r io.Reader, srv *Server, progress io.Writer) (*ReplayReport, error) {
	return ReplayLogs([]io.Reader{r}, srv, progress)
}

// ReplayLogs replays a set of audit logs together — typically the cluster
// frontend's log plus the logs of the workers it routed to. Worker (and
// standalone) entries are re-run through srv exactly as in Replay. Every
// deterministic frontend entry is additionally join-verified: a worker
// entry with the same frontend-assigned request id must exist and carry
// the identical deterministic outcome, proving the frontend returned what
// some worker actually computed — regardless of which replica or retry
// attempt produced it. When only a frontend log is supplied (worker logs
// lost), its entries still carry the request payloads and are re-run
// directly instead of joined.
func ReplayLogs(logs []io.Reader, srv *Server, progress io.Writer) (*ReplayReport, error) {
	rep := &ReplayReport{}
	var frontend, workers []AuditEntry
	var workerLog []int // source log of each worker entry (session id scope)
	for i, r := range logs {
		entries, err := ReadAuditLog(r)
		if err != nil {
			return rep, fmt.Errorf("log %d: %w", i+1, err)
		}
		for _, e := range entries {
			if e.Role == RoleFrontend {
				frontend = append(frontend, e)
			} else {
				workers = append(workers, e)
				workerLog = append(workerLog, i)
			}
		}
	}
	rep.Total = len(frontend) + len(workers)

	mismatch := func(e *AuditEntry, kind string, got, want replayOutcome) {
		rep.Mismatched++
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		rep.Errors = append(rep.Errors, fmt.Sprintf("%s seq %d (%s): got %s, want %s", kind, e.Seq, e.Endpoint, gb, wb))
		if progress != nil {
			fmt.Fprintf(progress, "MISMATCH %s seq %d (%s):\n  got  %s\n  want %s\n", kind, e.Seq, e.Endpoint, gb, wb)
		}
	}
	rerun := func(e *AuditEntry, kind string) {
		if !replayable(e) {
			rep.Skipped++
			return
		}
		rep.Replayed++
		got, want := srv.replayEntry(e), outcomeOf(e)
		if reflect.DeepEqual(got, want) {
			rep.Matched++
		} else {
			mismatch(e, kind, got, want)
		}
	}

	// Session entries replay strictly in log order (state carries across
	// entries); stateless explain/grade entries re-run independently.
	sessions := newSessionReplayer(srv)
	for i := range workers {
		if strings.HasPrefix(workers[i].Endpoint, "/session") {
			sessions.replay(workerLog[i], &workers[i], rep, mismatch)
			continue
		}
		rerun(&workers[i], "worker")
	}

	if len(workers) == 0 {
		// Frontend log alone: no join possible, but the entries are
		// self-contained requests — replay them directly.
		for i := range frontend {
			rerun(&frontend[i], "frontend")
		}
		return rep, nil
	}

	// Join: index worker outcomes by request id, then verify each
	// deterministic frontend outcome against them.
	byID := map[string][]replayOutcome{}
	for _, e := range workers {
		if e.RequestID != "" {
			byID[e.RequestID] = append(byID[e.RequestID], outcomeOf(&e))
		}
	}
	for i := range frontend {
		e := &frontend[i]
		if !replayable(e) || e.RequestID == "" {
			rep.Skipped++
			continue
		}
		want := outcomeOf(e)
		matched := false
		for _, got := range byID[e.RequestID] {
			if reflect.DeepEqual(got, want) {
				matched = true
				break
			}
		}
		if matched {
			rep.Joined++
			rep.Matched++
		} else if len(byID[e.RequestID]) == 0 {
			rep.Mismatched++
			msg := fmt.Sprintf("join seq %d (%s): no worker entry for request id %s", e.Seq, e.Endpoint, e.RequestID)
			rep.Errors = append(rep.Errors, msg)
			if progress != nil {
				fmt.Fprintln(progress, "MISMATCH "+msg)
			}
		} else {
			mismatch(e, "join", byID[e.RequestID][0], want)
		}
	}
	return rep, nil
}

// replayEntry re-runs one logged request through the same pipeline the
// handlers use (without HTTP or re-audit) and projects its outcome.
func (srv *Server) replayEntry(e *AuditEntry) replayOutcome {
	ctx := context.Background()
	var resp *ExplainResponse
	var grade string
	if e.GradeRequest != nil {
		_, g := srv.grade(ctx, e.GradeRequest, e.Tenant)
		resp, grade = &g.ExplainResponse, g.Grade
	} else {
		_, resp = srv.explain(ctx, e.Request, e.Tenant)
	}
	out := replayOutcome{Status: resp.Status, Grade: grade}
	if ce := resp.Counterexample; ce != nil {
		out.CESize = ce.Size
		out.CEIDs = ce.IDs
		out.Witness = ce.Witness
	}
	return out
}
