package server

import (
	"context"
	"net/http"
	"time"
)

// Lifecycle states. A server is born ready; BeginDrain moves it to
// draining, from which it never returns (drain is for process shutdown).
const (
	stateReady int32 = iota
	stateDraining
)

// StateName reports the lifecycle state for /healthz and /stats.
func (srv *Server) StateName() string {
	if srv.state.Load() == stateDraining {
		return "draining"
	}
	return "ready"
}

// Draining reports whether the server has stopped admitting work.
func (srv *Server) Draining() bool { return srv.state.Load() == stateDraining }

// BeginDrain stops admitting new explain/grade requests (they get 503 +
// Retry-After) while in-flight requests keep their budgets and finish
// normally. Readiness probes start failing so load balancers stop routing
// here. Safe to call more than once.
func (srv *Server) BeginDrain() { srv.state.Store(stateDraining) }

// CancelInFlight budget-cancels every in-flight request: each one's
// context is canceled, so searches abort at their next poll and report a
// structured budget_exceeded response (HTTP 200), exactly like an expired
// per-request budget. The shutdown sequence calls it when the grace window
// is nearly spent so stragglers still produce well-formed responses before
// the listener closes.
func (srv *Server) CancelInFlight() { srv.hardCancel() }

// Close flushes and closes the audit log. Call after the HTTP listener has
// shut down; the server must not take requests afterwards.
func (srv *Server) Close() error { return srv.audit.Close() }

// handleHealthz distinguishes liveness from readiness:
//
//	GET /healthz?probe=live  → 200 while the process runs (even draining)
//	GET /healthz (or ?probe=ready) → 200 ready, 503 once draining
//
// The body always carries the lifecycle state.
func (srv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	state := srv.StateName()
	body := map[string]any{
		"status":   "ok",
		"state":    state,
		"uptime_s": time.Since(srv.started).Seconds(),
	}
	code := http.StatusOK
	if state == "draining" {
		body["status"] = "draining"
		if r.URL.Query().Get("probe") != "live" {
			code = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, code, body)
}

// bindLifecycle attaches a request's cancel func to the in-flight hard-
// cancel signal; the returned stop must be deferred.
func (srv *Server) bindLifecycle(cancel context.CancelFunc) func() bool {
	return context.AfterFunc(srv.hardCtx, cancel)
}
