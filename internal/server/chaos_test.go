package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/course"
	"repro/internal/faults"
)

// syncBuffer is a bytes.Buffer safe to read while the audit logger writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// Every explain/grade outcome lands in the audit log, and replaying the
// log against a fresh server reproduces the deterministic outcomes
// byte-for-byte.
func TestAuditAndReplay(t *testing.T) {
	var log syncBuffer
	_, ts := newTestServer(t, Config{AuditWriter: &log})

	var ok ExplainResponse
	postJSON(t, ts.URL+"/explain", ExplainRequest{Q1: refQ, Q2: wrongQ, Instance: courseSpec(500), Tenant: "alice"}, &ok)
	if ok.Status != StatusOK {
		t.Fatalf("seed request = %q (%s)", ok.Status, ok.Error)
	}
	var agree ExplainResponse
	postJSON(t, ts.URL+"/explain", ExplainRequest{Q1: refQ, Q2: refQ, Instance: courseSpec(500)}, &agree)
	if agree.Status != StatusAgree {
		t.Fatalf("agree request = %q (%s)", agree.Status, agree.Error)
	}
	var graded GradeResponse
	postJSON(t, ts.URL+"/grade", GradeRequest{Question: "q1", Q: wrongQ, Instance: courseSpec(500), Tenant: "bob"}, &graded)
	if graded.Grade != "fail" {
		t.Fatalf("grade = %q (%s)", graded.Grade, graded.Error)
	}
	var bad ExplainResponse
	postJSON(t, ts.URL+"/explain", ExplainRequest{Q1: "nonsense((", Q2: refQ, Instance: courseSpec(300)}, &bad)
	if bad.Status != StatusError {
		t.Fatalf("malformed request = %q", bad.Status)
	}

	lines := strings.Count(string(log.Bytes()), "\n")
	if lines != 4 {
		t.Fatalf("audit log has %d entries, want 4", lines)
	}

	replaySrv := mustNew(t, Config{})
	rep, err := Replay(bytes.NewReader(log.Bytes()), replaySrv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 4 || rep.Replayed != 3 || rep.Skipped != 1 {
		t.Fatalf("replay = %+v, want 3 of 4 replayed (the parse error is skipped)", rep)
	}
	if rep.Mismatched != 0 || rep.Matched != 3 {
		t.Fatalf("replay mismatches: %+v\n%v", rep, rep.Errors)
	}
}

// A panic recovered at the handler boundary must be fully recorded: the
// audit entry carries the panic value and stack, the client gets a
// structured 500, and the server keeps serving.
func TestAuditRecordsRecoveredPanic(t *testing.T) {
	var log syncBuffer
	_, ts := newTestServer(t, Config{AuditWriter: &log})
	withFaults(t, 1, map[faults.Point]faults.Rule{
		faults.Handler: {PanicEvery: 1},
	})

	var resp ExplainResponse
	code := postJSON(t, ts.URL+"/explain", ExplainRequest{Q1: refQ, Q2: refQ, Instance: courseSpec(300)}, &resp)
	if code != http.StatusInternalServerError || resp.Status != StatusError {
		t.Fatalf("panicking handler = %d / %q, want 500 / error", code, resp.Status)
	}
	faults.Disable()

	entry := string(log.Bytes())
	if !strings.Contains(entry, `"panic":"faults: injected panic at server.handler`) {
		t.Fatalf("audit entry has no panic value: %s", entry)
	}
	if !strings.Contains(entry, `"stack":"goroutine`) {
		t.Fatalf("audit entry has no stack: %s", entry)
	}
	// Panic entries are forensic only: a replay must skip them.
	rep, err := Replay(bytes.NewReader(log.Bytes()), mustNew(t, Config{}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 0 || rep.Skipped != 1 {
		t.Fatalf("panic entry was replayed: %+v", rep)
	}
}

// The chaos suite: drive the server concurrently under a seeded fault plan
// that panics and stalls across every layer (pool workers, engine entry,
// SAT restarts, instance generation, handlers) and assert the
// fault-tolerance invariants:
//
//   - the server answers every request with a structured response (no
//     hangs, no dropped connections, the process obviously survives),
//   - every "ok" response carries a counterexample that independently
//     verifies against the instance — faults never corrupt an answer,
//   - after the storm the caches still serve and the audit log replays
//     clean on a fresh server.
func TestChaos(t *testing.T) {
	plan := withFaults(t, 42, map[faults.Point]faults.Rule{
		faults.PoolWorker:  {PanicEvery: 50},
		faults.EngineEval:  {PanicEvery: 40, StallEvery: 97, Stall: 2 * time.Millisecond},
		faults.SATSolve:    {StallEvery: 5, Stall: time.Millisecond},
		faults.InstanceGen: {PanicEvery: 3},
		faults.Handler:     {PanicEvery: 17},
	})
	var log syncBuffer
	srv, ts := newTestServer(t, Config{AuditWriter: &log, MaxConcurrent: 4})

	const (
		workers      = 8
		perGoroutine = 8
	)
	type outcome struct {
		code int
		size int
		resp ExplainResponse
	}
	outcomes := make(chan outcome, workers*perGoroutine)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				q2 := wrongQ
				if (g+i)%3 == 0 {
					q2 = refQ
				}
				// Both sizes are instances on which refQ and wrongQ actually
				// disagree (small seeds can generate all-CS registrations,
				// on which the queries coincide).
				size := 500 + 100*(i%2)
				req := ExplainRequest{
					Q1: refQ, Q2: q2,
					Instance:  courseSpec(size),
					Tenant:    fmt.Sprintf("t%d", g%3),
					TimeoutMS: 20_000,
				}
				var o outcome
				o.size = size
				o.code = postJSON(t, ts.URL+"/explain", req, &o.resp)
				outcomes <- o
			}
		}(g)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("chaos workload hung")
	}
	close(outcomes)
	faults.Disable()

	known := map[string]bool{
		StatusOK: true, StatusAgree: true, StatusBudgetExceeded: true,
		StatusError: true, StatusShed: true,
	}
	type okResult struct {
		size int
		resp ExplainResponse
	}
	var oks []okResult
	for o := range outcomes {
		if !known[o.resp.Status] {
			t.Fatalf("unknown response status %q (code %d, error %s)", o.resp.Status, o.code, o.resp.Error)
		}
		if o.resp.Status == StatusOK {
			if o.resp.Counterexample == nil || o.resp.Counterexample.Size == 0 {
				t.Fatalf("ok response without a counterexample under faults")
			}
			oks = append(oks, okResult{size: o.size, resp: o.resp})
		}
	}
	if len(oks) == 0 {
		t.Fatal("chaos run produced no successful explanations; the fault plan is too aggressive to test anything")
	}
	if plan.Fired(faults.EngineEval) == 0 && plan.Fired(faults.Handler) == 0 {
		t.Fatal("no faults fired; the chaos plan did not exercise the recovery paths")
	}
	if srv.panicsRecovered.Load() == 0 {
		t.Fatal("no panics were recovered")
	}

	// Never an unverified counterexample: check every ok answer against a
	// locally generated copy of its instance (faults are off now, so the
	// verification itself runs clean).
	q1 := ratest.MustParseQuery(refQ)
	q2w := ratest.MustParseQuery(wrongQ)
	dbs := map[int]*ratest.Database{}
	for _, o := range oks {
		db, ok := dbs[o.size]
		if !ok {
			db = course.GenerateDB(o.size, 1)
			dbs[o.size] = db
		}
		keep := map[ratest.TupleID]bool{}
		for _, id := range o.resp.Counterexample.IDs {
			keep[ratest.TupleID(id)] = true
		}
		sub := db.Subinstance(keep)
		eq, err := ratest.Equivalent(q1, q2w, sub, nil)
		if err != nil {
			t.Fatalf("verifying chaos counterexample: %v", err)
		}
		if eq {
			t.Fatalf("unverified counterexample survived the chaos run: ids %v verify as agreement on the size-%d instance",
				o.resp.Counterexample.IDs, o.size)
		}
	}

	// The server is still fully serviceable afterwards.
	var after ExplainResponse
	if code := postJSON(t, ts.URL+"/explain", ExplainRequest{Q1: refQ, Q2: wrongQ, Instance: courseSpec(500)}, &after); code != http.StatusOK || after.Status != StatusOK {
		t.Fatalf("post-chaos request = %d / %q (%s)", code, after.Status, after.Error)
	}
	var health map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("post-chaos healthz = %d", code)
	}

	// And the audit log of the whole storm replays clean.
	rep, err := Replay(bytes.NewReader(log.Bytes()), mustNew(t, Config{}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatched != 0 {
		t.Fatalf("chaos audit log does not replay: %+v\n%v", rep, rep.Errors)
	}
}

// Regression for torn counter reads: hammer /stats while requests are in
// flight. Under -race this fails if any counter the handlers write is read
// without synchronization.
func TestStatsConcurrentWithRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				var resp ExplainResponse
				postJSON(t, ts.URL+"/explain", ExplainRequest{Q1: refQ, Q2: refQ, Instance: courseSpec(300)}, &resp)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var stats map[string]any
		if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
			t.Errorf("stats = %d", code)
			break
		}
	}
	cancel()
	wg.Wait()
}
