package server

import (
	"context"
	"sync"
	"time"
)

// Per-tenant admission: a token bucket bounds each tenant's request rate,
// and the admission semaphore is a fair queue — waiting requests are
// grouped by tenant and slots are granted round-robin across tenants — so
// one hot student hammering /grade cannot starve everyone else behind a
// single FIFO.

// anonTenant buckets requests that carry no tenant id.
const anonTenant = "anon"

// TenantOf picks the request's tenant id: the explicit request field wins,
// then the X-Tenant header, then the shared anonymous bucket.
func TenantOf(field, header string) string {
	if field != "" {
		return field
	}
	if header != "" {
		return header
	}
	return anonTenant
}

// bucket is one tenant's token bucket.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// TenantLimiter hands out request tokens per tenant: rate tokens/second,
// burst capacity. Buckets live in an LRU so a scan of one-off tenant ids
// cannot grow memory without bound (an evicted bucket refills on return,
// which only ever errs in the tenant's favor).
type TenantLimiter struct {
	rate    float64
	burst   float64
	buckets *lru[string, *bucket]
}

// tenantBucketCap bounds how many tenants' buckets stay resident.
const tenantBucketCap = 4096

func NewTenantLimiter(rate float64, burst int) *TenantLimiter {
	if rate <= 0 {
		return nil // rate limiting disabled
	}
	if burst <= 0 {
		burst = 1
	}
	return &TenantLimiter{rate: rate, burst: float64(burst), buckets: newLRU[string, *bucket](tenantBucketCap)}
}

// Allow takes one token from the tenant's bucket, reporting whether the
// request may proceed and, if not, how long until a token is available.
func (l *TenantLimiter) Allow(tenant string, now time.Time) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	b, ok := l.buckets.Get(tenant)
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets.Add(tenant, b)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	b.last = now
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// waiter is one queued admission request.
type waiter struct {
	ch       chan struct{}
	granted  bool
	canceled bool
}

// FairQueue is the admission semaphore with per-tenant fair queueing:
// slots slots, and when all are busy, arrivals queue per tenant and a
// freed slot is granted to the head of the next tenant's queue in
// round-robin order.
type FairQueue struct {
	mu     sync.Mutex
	free   int
	queues map[string][]*waiter
	ring   []string // tenants with live waiters, round-robin order
	next   int
}

func NewFairQueue(slots int) *FairQueue {
	return &FairQueue{free: slots, queues: map[string][]*waiter{}}
}

// Acquire blocks until a slot is granted or ctx expires. Fairness: a new
// arrival queues behind existing waiters even if a slot just freed — the
// grant path decides who runs next.
func (q *FairQueue) Acquire(ctx context.Context, tenant string) bool {
	q.mu.Lock()
	if q.free > 0 && len(q.queues) == 0 {
		q.free--
		q.mu.Unlock()
		return true
	}
	w := &waiter{ch: make(chan struct{})}
	q.queues[tenant] = append(q.queues[tenant], w)
	if len(q.queues[tenant]) == 1 {
		q.ring = append(q.ring, tenant)
	}
	q.mu.Unlock()
	select {
	case <-w.ch:
		return true
	case <-ctx.Done():
		q.mu.Lock()
		defer q.mu.Unlock()
		if w.granted {
			// The grant raced the deadline; we hold a slot after all.
			// Taking it is correct — the caller's budget check will bounce
			// the request immediately and release it.
			return true
		}
		w.canceled = true // reaped lazily by the grant path
		return false
	}
}

// Release returns a slot, handing it directly to the next waiter (round-
// robin across tenants) or back to the free pool.
func (q *FairQueue) Release() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.ring) > 0 {
		if q.next >= len(q.ring) {
			q.next = 0
		}
		tenant := q.ring[q.next]
		queue := q.queues[tenant]
		for len(queue) > 0 && queue[0].canceled {
			queue = queue[1:]
		}
		if len(queue) == 0 {
			delete(q.queues, tenant)
			q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
			continue
		}
		w := queue[0]
		queue = queue[1:]
		if len(queue) == 0 {
			delete(q.queues, tenant)
			q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
		} else {
			q.queues[tenant] = queue
			q.next++ // this tenant got the slot; the next grant looks at the next tenant
		}
		w.granted = true
		close(w.ch)
		return
	}
	q.free++
}
