package server

import (
	"math"
	"time"
)

// The degradation ladder: under overload the server steps requests down
// instead of refusing them outright. Levels are decided per request from
// two signals — the admission queue depth and an EWMA of recent request
// latency — against thresholds scaled off MaxConcurrent:
//
//	level 0  normal        full explain under the requested budgets
//	level 1  clamped       wall-clock budget clamped to DegradedTimeout,
//	                       SAT conflicts clamped to DegradedMaxConflicts
//	level 2  solver_free   level 1 clamps plus the solver-free path:
//	                       agree-check + greedy shrink (core.ShrinkGreedy),
//	                       which still yields a verified counterexample,
//	                       just not a guaranteed-minimal one
//	level 3  shed          429 with Retry-After — the queue is past saving
//
// Responses carry the applied level in the "degraded" field so clients and
// the audit log can tell a full answer from a degraded one.
const (
	degradeNone = iota
	degradeClamped
	degradeSolverFree
	degradeShed
)

// degradeName maps a ladder level to its response/docs name.
func degradeName(level int) string {
	switch level {
	case degradeClamped:
		return "clamped"
	case degradeSolverFree:
		return "solver_free"
	case degradeShed:
		return "shed"
	}
	return ""
}

// degradeLevel reads the overload signals and picks the ladder level for a
// newly arrived request.
func (srv *Server) degradeLevel() int {
	waiting := int(srv.waiting.Load())
	switch {
	case waiting >= srv.cfg.DegradeShedQueue:
		return degradeShed
	case waiting >= srv.cfg.DegradeSolverFreeQueue:
		return degradeSolverFree
	case waiting >= srv.cfg.DegradeClampQueue:
		return degradeClamped
	}
	// Latency signal: when recent requests are chewing most of the default
	// budget the server is compute-bound even if the queue is short (a few
	// heavy tenants rather than many light ones); start clamping early.
	if ewma := srv.latency(); ewma > 0.75*float64(srv.cfg.DefaultTimeout.Milliseconds()) {
		return degradeClamped
	}
	return degradeNone
}

// observeLatency folds one finished request's total latency into the EWMA
// (α = 0.1, i.e. roughly the last 10 requests dominate).
func (srv *Server) observeLatency(ms float64) {
	for {
		old := srv.latEWMA.Load()
		cur := math.Float64frombits(old)
		next := cur*0.9 + ms*0.1
		if srv.latEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// latency returns the current latency EWMA in milliseconds.
func (srv *Server) latency() float64 {
	return math.Float64frombits(srv.latEWMA.Load())
}

// retryAfterS derives Retry-After for 429 shed and 503 draining responses
// from live signals instead of a constant: the latency EWMA estimates
// per-request service time and the queue depth says how much backlog must
// drain before a returning client could be admitted — queue-ahead ×
// service-time ÷ slots, clamped to [1s, 60s]. Frontend backoff and client
// retry schedules thereby track real recovery time: an idle server says
// "come right back", a deeply backed-up one pushes clients out far enough
// that their retries don't re-amplify the overload.
func (srv *Server) retryAfterS() int {
	ewma := srv.latency()
	if ewma <= 0 {
		// Cold server, no latency signal yet: assume a quarter of the
		// default budget per queued request.
		ewma = float64(srv.cfg.DefaultTimeout.Milliseconds()) / 4
	}
	waiting := float64(srv.waiting.Load())
	s := int(math.Ceil(ewma * (waiting + 1) / float64(srv.cfg.MaxConcurrent) / 1000))
	if s < 1 {
		return 1
	}
	if s > 60 {
		return 60
	}
	return s
}

// clampBudgets applies the level-1+ budget clamps to a request's effective
// budget and conflict cap.
func (srv *Server) clampBudgets(budget time.Duration, maxConflicts int64) (time.Duration, int64) {
	if budget > srv.cfg.DegradedTimeout {
		budget = srv.cfg.DegradedTimeout
	}
	if maxConflicts <= 0 || maxConflicts > srv.cfg.DegradedMaxConflicts {
		maxConflicts = srv.cfg.DegradedMaxConflicts
	}
	return budget, maxConflicts
}
