package server

import (
	"container/list"
	"sync"
)

// lru is a concurrency-safe least-recently-used cache with hit/miss
// accounting. Both caches the server keeps — compiled query plans and
// generated instances — hold values that are immutable once inserted
// (plans are never mutated by evaluation, instance databases are only read),
// so Get hands the cached value out directly and concurrent readers share
// it without copying.
type lru[K comparable, V any] struct {
	mu     sync.Mutex
	cap    int
	order  *list.List // front = most recently used
	items  map[K]*list.Element
	hits   int64
	misses int64
	// onEvict, when set, observes capacity evictions (not explicit Removes).
	// It runs after the cache mutex is released, so it may call back into
	// the cache.
	onEvict func(K, V)
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// newLRU creates a cache bounded to cap entries; cap <= 0 disables caching
// (every Get misses, Add is a no-op).
func newLRU[K comparable, V any](cap int) *lru[K, V] {
	return &lru[K, V]{cap: cap, order: list.New(), items: map[K]*list.Element{}}
}

// Get returns the cached value and marks it most recently used.
func (c *lru[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Add inserts (or refreshes) a value, evicting the least recently used
// entry when the cache is full.
func (c *lru[K, V]) Add(key K, val V) {
	var evicted []*lruEntry[K, V]
	c.mu.Lock()
	if c.cap <= 0 {
		c.mu.Unlock()
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[K, V]).val = val
		c.order.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	for c.order.Len() >= c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		e := last.Value.(*lruEntry[K, V])
		delete(c.items, e.key)
		evicted = append(evicted, e)
	}
	c.items[key] = c.order.PushFront(&lruEntry[K, V]{key: key, val: val})
	c.mu.Unlock()
	if c.onEvict != nil {
		for _, e := range evicted {
			c.onEvict(e.key, e.val)
		}
	}
}

// Remove drops an entry, reporting whether it was present. The eviction
// callback does not fire (removal is the caller's own act, not pressure).
func (c *lru[K, V]) Remove(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.order.Remove(el)
	delete(c.items, key)
	return el.Value.(*lruEntry[K, V]).val, true
}

// Len returns the current number of entries.
func (c *lru[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Counters returns the cumulative hit/miss counts.
func (c *lru[K, V]) Counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
