// Package server is the long-lived HTTP serving layer over Explain — the
// resident deployment of the paper's RATest web service (Section 6), which
// students hit repeatedly during a course. Where the CLI re-parses queries
// and regenerates instances on every invocation, a [Server] amortizes that
// work across requests.
//
// # Endpoints
//
//   - POST /explain — find a smallest counterexample for a (q1, q2,
//     instance) triple; see [ExplainRequest] / [ExplainResponse].
//   - POST /grade — grade a submitted query against a course assignment
//     question: "pass" when it agrees with the reference on the instance,
//     "fail" with a counterexample otherwise; see [GradeRequest].
//   - POST /session, POST /session/{id}/revise, GET/DELETE /session/{id}
//     — stateful live-grading sessions: create prepares a resident
//     [core.LiveSession] (incremental state over a private instance
//     clone), revise applies instance updates or a replacement candidate
//     query and re-grades along the incremental / reprepare / fallback
//     path; see [SessionCreateRequest] / [SessionReviseRequest] /
//     [SessionResponse] and the "Sessions" section below.
//   - GET /healthz — liveness (?probe=live) and readiness probes;
//     readiness fails once the server is draining.
//   - GET /stats — request counters, cache sizes and hit rates, admission
//     gauges, recovered-panic and shed counts, session and revision-path
//     counters, the latency EWMA.
//
// # Caching
//
// Two LRU caches persist across requests. The plan cache maps
// (whitespace-normalized RA text, instance cache key) to the parsed query
// plus its fully planned form — optimized, join-reordered and semi-join
// reduced by the engine's cost-based planner against the instance's
// cardinality statistics — and the planner's report, surfaced by the
// opt-in explain_plan request field. Entries are immutable after
// construction, so concurrent requests share cached nodes without copying.
// Queries against inline (request-private) instances get parse-only,
// statistics-free entries keyed by query text alone: a positional plan
// computed against one inline instance would be wrong for another sharing
// the query text. The instance cache maps generated instance specs
// ("course:size:seed", "tpch:sf:seed") to their databases; generation is
// deterministic in the spec and evaluation never mutates a database, so
// instances are shared the same way — including the cardinality statistics
// the engine caches on each database, which therefore follow the
// instance's LRU lifetime. Inline instances are request-private and never
// cached. Invariant: cache hits change cost only, never answers — eviction
// is always safe.
//
// # Budgets and admission
//
// Every request runs under a wall-clock budget (request timeout_ms,
// clamped to the server maximum) threaded as a context through
// ratest.ExplainContext into the core search loops and solvers, plus
// optional per-request row and SAT-conflict caps. Budget exhaustion is a
// 200 response with status "budget_exceeded" and partial stats (solver
// status "unknown") — a slow request is a service outcome, not a server
// failure. An admission semaphore bounds concurrent explanations so that
// request-level concurrency multiplied by the engine's worker-pool
// parallelism cannot oversubscribe the machine; the budget clock covers
// queueing, so a request that spends its budget waiting is refused rather
// than run late. Admission is fair-queued per tenant (round-robin across
// tenants with waiters) with optional per-tenant token-bucket rate limits
// in front.
//
// # Sessions
//
// Sessions are the one deliberately stateful part of the server. Each
// holds a [core.LiveSession] — retained incremental evaluation state over
// a private clone of its instance (committed insertions mutate it, so
// sessions never share databases with the instance cache) — behind a
// per-session mutex; concurrent revisions to one session serialize.
// Sessions live in their own LRU ([Config].SessionCacheSize): creating
// past the cap evicts the least recently used session, and an evicted,
// deleted, or poisoned session answers structured 404s — the client
// contract is "recreate and replay your edits". Creation and revision
// pass the same admission, tenant-fairness, drain and degradation gates
// as /explain. A panic mid-revision fail-stops that session (it is
// removed and counted in stats) rather than leaving half-mutated state
// resident. Audit entries carry the session id and payloads; Replay
// re-runs each session's create/revise stream in log order, cutting the
// stream off at the first non-replayable entry instead of reporting
// false mismatches.
//
// # Fault tolerance
//
// The server is the process's fault boundary (docs/OPERATIONS.md is the
// runbook). Panics anywhere in a request — handler code, engine
// evaluation, pool workers (surfaced by pool.ForEach as *pool.PanicError
// values) — become structured 500s with the stack captured in the audit
// log; the process and its caches keep serving. BeginDrain /
// CancelInFlight implement graceful shutdown: new requests get 503 +
// Retry-After while in-flight ones finish under their budgets, then
// stragglers are budget-cancelled into structured 200s. Overload walks a
// degradation ladder (clamped budgets → solver-free greedy shrink →
// shed) decided per request from queue depth and a latency EWMA. Every
// outcome can be recorded to an append-only JSONL audit log whose
// deterministic fields must reproduce byte-for-byte under Replay; the
// internal/faults harness injects seeded panics and stalls across all of
// these layers for the chaos suite.
package server
