package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ra"
	"repro/internal/raparser"
	"repro/internal/relation"
)

// graph is an undirected graph with max degree 3 for the vertex-cover
// reductions of Theorems 3 and 8 (Appendix A).
type graph struct {
	n     int
	edges [][2]int // 1-based vertex ids
}

// figure11Graph is the example graph of Figure 11: 6 vertices, 7 edges,
// minimum vertex cover size 3.
func figure11Graph() graph {
	return graph{n: 6, edges: [][2]int{
		{1, 2}, {2, 3}, {3, 5}, {4, 5}, {5, 6}, {1, 4}, {2, 4},
	}}
}

// minVertexCover brute-forces the minimum vertex cover size.
func minVertexCover(g graph) int {
	best := g.n
	for mask := 0; mask < 1<<g.n; mask++ {
		ok := true
		for _, e := range g.edges {
			if mask&(1<<(e[0]-1)) == 0 && mask&(1<<(e[1]-1)) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		cnt := 0
		for v := 0; v < g.n; v++ {
			if mask&(1<<v) != 0 {
				cnt++
			}
		}
		if cnt < best {
			best = cnt
		}
	}
	return best
}

// vertexEdges returns the up-to-3 edge labels adjacent to vertex v, padded
// with "*".
func vertexEdges(g graph, v int) [3]string {
	out := [3]string{"*", "*", "*"}
	i := 0
	for ei, e := range g.edges {
		if e[0] == v || e[1] == v {
			if i < 3 {
				out[i] = fmt.Sprintf("e%d", ei+1)
				i++
			}
		}
	}
	return out
}

// theorem3Instance builds the PJ reduction of Theorem 3: the smallest
// witness for (z) w.r.t. Q1 − Q2 has size minVC + m.
func theorem3Instance(g graph) Problem {
	db := relation.NewDatabase()
	db.CreateRelation("R", relation.NewSchema(
		relation.Attr("A", relation.KindString),
		relation.Attr("Z", relation.KindString),
		relation.Attr("E1", relation.KindString),
		relation.Attr("E2", relation.KindString),
		relation.Attr("E3", relation.KindString)))
	for v := 1; v <= g.n; v++ {
		e := vertexEdges(g, v)
		db.Insert("R", relation.NewTuple(
			relation.String(fmt.Sprintf("v%d", v)), relation.String("z"),
			relation.String(e[0]), relation.String(e[1]), relation.String(e[2])))
	}
	for ei := range g.edges {
		name := fmt.Sprintf("S%d", ei+1)
		db.CreateRelation(name, relation.NewSchema(
			relation.Attr("E", relation.KindString),
			relation.Attr("W", relation.KindString)))
		db.Insert(name, relation.NewTuple(
			relation.String(fmt.Sprintf("e%d", ei+1)), relation.String("z")))
	}
	// Q1 = ⨝_i π_Z(R ⋈[Ej = E] S_i); all q_i share the single attribute Z,
	// so the top joins are natural joins on Z.
	var terms []string
	for ei := range g.edges {
		terms = append(terms, fmt.Sprintf(
			"project[Z](R join[E1 = S%d.E or E2 = S%d.E or E3 = S%d.E] rename[S%d](S%d))",
			ei+1, ei+1, ei+1, ei+1, ei+1))
	}
	q1 := raparser.MustParse(strings.Join(terms, " join "))
	// Q2 is empty and monotone: Z values differing from W = never.
	q2 := raparser.MustParse("project[Z](R join[Z <> S1.W] rename[S1](S1))")
	return Problem{Q1: q1, Q2: q2, DB: db}
}

func TestTheorem3ReductionOptimal(t *testing.T) {
	g := figure11Graph()
	p := theorem3Instance(g)
	ce, stats, err := OptSigma(p)
	if err != nil {
		t.Fatal(err)
	}
	want := minVertexCover(g) + len(g.edges)
	if ce.Size() != want {
		t.Errorf("witness size = %d, want minVC+m = %d", ce.Size(), want)
	}
	if !stats.Optimal {
		t.Error("optimizer should prove optimality on this instance")
	}
	// The witness's R-tuples must form a vertex cover.
	rKept := ce.DB.Relation("R")
	cover := map[int]bool{}
	for _, tup := range rKept.Tuples {
		var v int
		fmt.Sscanf(tup[0].AsString(), "v%d", &v)
		cover[v] = true
	}
	for _, e := range g.edges {
		if !cover[e[0]] && !cover[e[1]] {
			t.Errorf("edge %v not covered by witness", e)
		}
	}
}

func TestTheorem3SmallGraphs(t *testing.T) {
	graphs := []graph{
		{n: 2, edges: [][2]int{{1, 2}}},
		{n: 3, edges: [][2]int{{1, 2}, {2, 3}}},
		{n: 4, edges: [][2]int{{1, 2}, {2, 3}, {3, 4}, {4, 1}}},
		{n: 4, edges: [][2]int{{1, 2}, {1, 3}, {1, 4}}},
	}
	for i, g := range graphs {
		p := theorem3Instance(g)
		ce, _, err := OptSigma(p)
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		want := minVertexCover(g) + len(g.edges)
		if ce.Size() != want {
			t.Errorf("graph %d: size = %d, want %d", i, ce.Size(), want)
		}
	}
}

// theorem4Instance builds the JU reduction of Theorem 4: Q1 joins, over Z,
// one union R_j ∪ R_l per edge; the smallest witness is a minimum vertex
// cover.
func theorem4Instance(g graph) Problem {
	db := relation.NewDatabase()
	for v := 1; v <= g.n; v++ {
		name := fmt.Sprintf("R%d", v)
		db.CreateRelation(name, relation.NewSchema(relation.Attr("Z", relation.KindString)))
		db.Insert(name, relation.NewTuple(relation.String("z")))
	}
	// R0 is empty: Q2 = R0 is monotone and never contains (z).
	db.CreateRelation("R0", relation.NewSchema(relation.Attr("Z", relation.KindString)))
	var terms []string
	for _, e := range g.edges {
		terms = append(terms, fmt.Sprintf("(R%d union R%d)", e[0], e[1]))
	}
	q1 := raparser.MustParse(strings.Join(terms, " join "))
	q2 := raparser.MustParse("R0")
	return Problem{Q1: q1, Q2: q2, DB: db}
}

func TestTheorem4ReductionOptimal(t *testing.T) {
	g := figure11Graph()
	p := theorem4Instance(g)
	ce, _, err := OptSigma(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := minVertexCover(g); ce.Size() != want {
		t.Errorf("witness size = %d, want minVC = %d", ce.Size(), want)
	}
}

func TestTheorem4IsNotJUStar(t *testing.T) {
	// The reduction places unions below joins, outside the tractable JU*
	// class of Theorem 5 — this is exactly what makes it hard.
	g := figure11Graph()
	p := theorem4Instance(g)
	if ra.IsJUStar(p.Q1) {
		t.Error("Theorem 4 instance should not be JU*")
	}
}

// theorem8Instance builds the SPJUD reduction of Theorem 8 (hard even in
// data complexity): witness size = minVC + m.
func theorem8Instance(g graph) Problem {
	db := relation.NewDatabase()
	db.CreateRelation("R", relation.NewSchema(
		relation.Attr("A", relation.KindString),
		relation.Attr("Z", relation.KindString),
		relation.Attr("E1", relation.KindString),
		relation.Attr("E2", relation.KindString),
		relation.Attr("E3", relation.KindString)))
	for v := 1; v <= g.n; v++ {
		e := vertexEdges(g, v)
		db.Insert("R", relation.NewTuple(
			relation.String(fmt.Sprintf("v%d", v)), relation.String("z"),
			relation.String(e[0]), relation.String(e[1]), relation.String(e[2])))
	}
	db.CreateRelation("S", relation.NewSchema(
		relation.Attr("B", relation.KindString),
		relation.Attr("C", relation.KindString),
		relation.Attr("Z", relation.KindString)))
	m := len(g.edges)
	for ei := range g.edges {
		next := (ei+1)%m + 1
		db.Insert("S", relation.NewTuple(
			relation.String(fmt.Sprintf("e%d", ei+1)),
			relation.String(fmt.Sprintf("e%d", next)),
			relation.String("z")))
	}
	q1 := raparser.MustParse("project[Z](S)")
	// q3 = π_{s.C, s.Z}(S ⋈ R on C matching an adjacent edge).
	q3 := "project[s.C, s.Z](rename[s](S) join[s.C = r.E1 or s.C = r.E2 or s.C = r.E3] rename[r](R))"
	q2 := raparser.MustParse(fmt.Sprintf("project[Z](project[B, Z](S) diff %s)", q3))
	return Problem{Q1: q1, Q2: q2, DB: db}
}

func TestTheorem8ReductionOptimal(t *testing.T) {
	g := figure11Graph()
	p := theorem8Instance(g)
	ce, _, err := OptSigma(p)
	if err != nil {
		t.Fatal(err)
	}
	want := minVertexCover(g) + len(g.edges)
	if ce.Size() != want {
		t.Errorf("witness size = %d, want minVC+m = %d", ce.Size(), want)
	}
	// All S tuples must be kept (the cyclic-chain argument of the proof).
	if ce.DB.Relation("S").Len() != len(g.edges) {
		t.Errorf("kept %d S tuples, want %d", ce.DB.Relation("S").Len(), len(g.edges))
	}
}

func TestTheorem8SmallGraphs(t *testing.T) {
	graphs := []graph{
		{n: 2, edges: [][2]int{{1, 2}}},
		{n: 3, edges: [][2]int{{1, 2}, {2, 3}}},
		{n: 4, edges: [][2]int{{1, 2}, {2, 3}, {3, 4}, {4, 1}}},
	}
	for i, g := range graphs {
		p := theorem8Instance(g)
		ce, _, err := OptSigma(p)
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		want := minVertexCover(g) + len(g.edges)
		if ce.Size() != want {
			t.Errorf("graph %d: size = %d, want %d", i, ce.Size(), want)
		}
	}
}
