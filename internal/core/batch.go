package core

import (
	"errors"

	"repro/internal/engine"
	"repro/internal/relation"
)

// This file is the batched accept-reject layer used by the search
// algorithms: instead of materializing a fresh subinstance database and
// re-running Q1 − Q2 from scratch for every candidate witness, the
// candidates are checked together with one engine pass per difference
// direction under the bitvector semiring (engine.EvalBatch). Plans the
// bitvector semiring cannot evaluate — aggregates (γ is not per-bit sound)
// — and batches that blow the row budget fall back to the existing
// per-candidate path, so behaviour is unchanged, only faster.

// disagreeChunk bounds how many candidates one engine pass carries. Within
// a chunk of 64 the annotations are single machine words; wider chunks
// amortize the pass further at the cost of multi-word masks. 256 (4 words)
// balances the two for the enumeration workloads.
const disagreeChunk = 256

// DisagreeBatch reports, for every candidate subinstance (a set of base
// tuple identifiers over p.DB), whether Q1 and Q2 disagree on it — the
// engine-expensive core of Verify, batched. Parameters are the problem's:
// candidates needing their own λ settings must go through Verify.
func DisagreeBatch(p Problem, idSets [][]int) ([]bool, error) {
	out := make([]bool, len(idSets))
	if len(idSets) == 0 {
		return out, nil
	}
	cands := make([][]relation.TupleID, len(idSets))
	for i, ids := range idSets {
		c := make([]relation.TupleID, len(ids))
		for j, id := range ids {
			c[j] = relation.TupleID(id)
		}
		cands[i] = c
	}
	for lo := 0; lo < len(cands); lo += disagreeChunk {
		if err := p.interrupted(); err != nil {
			return nil, err
		}
		hi := lo + disagreeChunk
		if hi > len(cands) {
			hi = len(cands)
		}
		chunk := cands[lo:hi]
		d12, d21, err := engine.EvalBatchDiffs(p.Q1, p.Q2, p.DB, p.Params, chunk, p.engineOpts())
		if err != nil {
			if !errors.Is(err, engine.ErrNoAggregates) && !errors.Is(err, engine.ErrRowBudget) {
				return nil, err
			}
			// γ plans (or batches past the row budget): per-candidate
			// fallback via the existing evaluate-on-subinstance path.
			for k := lo; k < hi; k++ {
				sub, _ := subinstanceFromIDs(p.DB, idSets[k])
				differs, _, _, derr := p.disagrees(sub)
				if derr != nil {
					return nil, derr
				}
				out[k] = differs
			}
			continue
		}
		for k := lo; k < hi; k++ {
			out[k] = d12.NonEmpty(k-lo) || d21.NonEmpty(k-lo)
		}
	}
	return out, nil
}

// constraintsHold reports whether db satisfies every problem constraint.
func constraintsHold(p Problem, db *relation.Database) bool {
	for _, c := range p.Constraints {
		if err := c.Validate(db); err != nil {
			return false
		}
	}
	return true
}

// VerifyBatch verifies many candidate witnesses at once: it returns, for
// each id set, the verified Counterexample (DB and IDs populated; the
// caller attaches its Witness tuple) or nil when the candidate is rejected
// — the same accept/reject decisions as per-candidate Verify, but with the
// query evaluations batched. Subinstance databases are only materialized
// for candidates whose disagreement already checked out.
func VerifyBatch(p Problem, idSets [][]int) ([]*Counterexample, error) {
	return verifyBatchWith(p, nil, idSets)
}

// verifyBatchWith is VerifyBatch routed through a shared checker when the
// caller holds one: near-full candidates are then answered by the prepared
// delta state instead of a fresh batch pass.
func verifyBatchWith(p Problem, c *checker, idSets [][]int) ([]*Counterexample, error) {
	disagree, err := disagreeOn(p, c, idSets)
	if err != nil {
		return nil, err
	}
	out := make([]*Counterexample, len(idSets))
	for k, ids := range idSets {
		if !disagree[k] {
			continue
		}
		sub, tids := subinstanceFromIDs(p.DB, ids)
		if !sub.SubinstanceOf(p.DB) || !constraintsHold(p, sub) {
			continue
		}
		out[k] = &Counterexample{DB: sub, IDs: tids}
	}
	return out, nil
}

// disagreeOn dispatches a disagreement batch through the caller's checker
// when one is available (the delta/batch adaptive path) and DisagreeBatch
// otherwise.
func disagreeOn(p Problem, c *checker, idSets [][]int) ([]bool, error) {
	if c != nil {
		return c.disagree(idSets)
	}
	return DisagreeBatch(p, idSets)
}

// verifyCandidates reports Verify success for each prebuilt candidate
// counterexample. When every candidate shares the problem's queries and
// parameter setting, the disagreement checks run as one batch (through the
// shared checker when the caller holds one); candidates carrying their own
// Params or query rewrites (the parameterized aggregate algorithms) and γ
// plans fall back to per-candidate Verify.
func verifyCandidates(p Problem, c *checker, ces []*Counterexample) []bool {
	out := make([]bool, len(ces))
	batchable := len(ces) > 1
	for _, ce := range ces {
		if ce == nil || ce.Params != nil || ce.Q1 != nil || ce.Q2 != nil {
			batchable = false
			break
		}
	}
	if batchable {
		idSets := make([][]int, len(ces))
		for i, ce := range ces {
			idSets[i] = toIntIDs(ce.IDs)
		}
		if disagree, err := disagreeOn(p, c, idSets); err == nil {
			for i, ce := range ces {
				out[i] = disagree[i] && ce.DB.SubinstanceOf(p.DB) && constraintsHold(p, ce.DB)
			}
			return out
		}
		// A batch error (beyond the fallbacks DisagreeBatch already
		// handles) is not necessarily a per-candidate error: fall through.
	}
	for i, ce := range ces {
		// An expired budget rejects the remaining candidates; the callers'
		// no-result paths then surface the budget error.
		if p.interrupted() != nil {
			break
		}
		out[i] = ce != nil && Verify(p, ce) == nil
	}
	return out
}

func toIntIDs(ids []relation.TupleID) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}
