package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/ra"
	"repro/internal/relation"
)

// This file is the live-grading session: the paper's interactive use case (a
// student iterating on a wrong query against a fixed instance) held resident
// between requests. A LiveSession owns a private Problem — the instance MUST
// NOT be shared, because committed insertions mutate it — and keeps an
// engine.PreparedDiff retained across revisions, so instance updates
// (insert/delete/update) re-grade through ApplyDelta in time proportional to
// the delta, and query edits re-prepare once instead of re-evaluating per
// keystroke thereafter. Plan pairs the delta subsystem refuses
// (ErrNotIncremental: oversized derivation counts) degrade to a
// materialize-and-evaluate fallback that stays correct, just not fast.

// SessionUpdate is one instance revision: deletions by tuple id and
// insertions by relation + tuple, with updates expressed as delete+insert.
type SessionUpdate struct {
	Remove []relation.TupleID
	Insert []engine.Insert
}

// Update paths, reported per revision so callers (and /stats) can tell how
// much of the workload the incremental engine absorbed.
const (
	PathIncremental = "incremental" // ApplyDelta + Commit on retained state
	PathReprepare   = "reprepare"   // plan shape changed: PrepareDiff from scratch
	PathFallback    = "fallback"    // plan not incrementalizable: full evaluation
)

// LiveGrade is the session's current verdict: whether the queries agree on
// the live instance, the difference sizes, and a bounded witness sample per
// direction.
type LiveGrade struct {
	Agree                bool
	Size12, Size21       int
	Witness12, Witness21 []relation.Tuple
}

// witnessSample bounds the tuples a LiveGrade carries per direction.
const witnessSample = 5

// LiveSession is a stateful incremental grading session. It is NOT safe for
// concurrent use — callers serialize access (the server holds one mutex per
// session).
type LiveSession struct {
	p    Problem
	prep *engine.PreparedDiff // nil ⇒ fallback mode
	// removed holds fallback-mode tombstones (the prepared path tracks its
	// own inside PreparedDiff).
	removed map[relation.TupleID]bool
	epoch   int // applied revisions (updates + query edits)

	nIncremental, nReprepared, nFallback int
}

// NewLiveSession prepares a session over p. p.DB must be private to the
// session (clone shared instances first): committed insertions mutate it.
// A plan pair the delta subsystem cannot maintain falls back to full
// evaluation; a pair that cannot be evaluated at all is an error.
func NewLiveSession(p Problem) (*LiveSession, error) {
	s := &LiveSession{p: p, removed: map[relation.TupleID]bool{}}
	if err := s.prepare(); err != nil {
		return nil, err
	}
	return s, nil
}

// prepare (re)builds the retained state for the session's current Problem,
// entering fallback mode when the plan pair is unpreparable but evaluable.
func (s *LiveSession) prepare() error {
	prep, err := engine.PrepareDiff(s.p.Q1, s.p.Q2, s.p.DB, s.p.Params, s.p.engineOpts())
	if err == nil {
		s.prep = prep
		return nil
	}
	if errors.Is(err, ErrBudget) || s.p.interrupted() != nil {
		return fmt.Errorf("%w: %w", ErrBudget, err)
	}
	// Not incrementalizable (oversized counts, row-budget blowup): degrade
	// to fallback — but only if the pair evaluates at all; surface real
	// errors (unknown relations, incompatible schemas) to the caller.
	if _, _, _, everr := s.p.disagrees(s.p.DB); everr != nil {
		return everr
	}
	s.prep = nil
	return nil
}

// Incremental reports whether the session holds retained delta state (false
// in fallback mode).
func (s *LiveSession) Incremental() bool { return s.prep != nil }

// Epoch counts applied revisions (instance updates and query edits).
func (s *LiveSession) Epoch() int { return s.epoch }

// BaseSize is the number of live tuples in the session instance.
func (s *LiveSession) BaseSize() int {
	if s.prep != nil {
		return s.prep.BaseSize()
	}
	return s.p.DB.Size() - len(s.removed)
}

// Counters reports how many applied revisions took each path.
func (s *LiveSession) Counters() (incremental, reprepared, fallback int) {
	return s.nIncremental, s.nReprepared, s.nFallback
}

// Query2 returns the session's current candidate query.
func (s *LiveSession) Query2() ra.Node { return s.p.Q2 }

// bind points the session's budget at the current request's context: the
// Problem fields drive fallback evaluations and ShrinkGreedy, and the
// retained prepared state's stop hook must follow (it was built under the
// creating request's context, which has long expired).
func (s *LiveSession) bind(ctx context.Context) {
	s.p.Ctx = ctx
	if s.prep != nil {
		s.prep.SetStop(s.p.engineOpts().Stop)
	}
}

// CurrentDB materializes the live instance (committed inserts included,
// deletions dropped). The result preserves tuple identifiers, so
// counterexample ids remain meaningful across revisions.
func (s *LiveSession) CurrentDB() *relation.Database {
	keep := map[relation.TupleID]bool{}
	if s.prep != nil {
		for _, id := range s.prep.LiveIDs() {
			keep[id] = true
		}
	} else {
		for _, id := range s.p.DB.AllIDs() {
			if !s.removed[id] {
				keep[id] = true
			}
		}
	}
	return s.p.DB.Subinstance(keep)
}

// Update applies one instance revision under ctx's budget and reports which
// path graded it. Failed updates (validation, budget, refused deltas that
// cannot fall back) leave the session state unchanged.
func (s *LiveSession) Update(ctx context.Context, up SessionUpdate) (string, error) {
	s.bind(ctx)
	if s.prep == nil {
		if err := s.applyFallback(up); err != nil {
			return "", err
		}
		s.epoch++
		s.nFallback++
		return PathFallback, nil
	}
	res, err := s.prep.ApplyDelta(up.Remove, up.Insert)
	if errors.Is(err, engine.ErrNotIncremental) {
		// The update would outgrow exact delta arithmetic; re-preparing
		// cannot help (the counts are a property of the plan + instance),
		// so degrade this session to fallback mode and apply there.
		s.demote()
		if err := s.applyFallback(up); err != nil {
			return "", err
		}
		s.epoch++
		s.nFallback++
		return PathFallback, nil
	}
	if err != nil {
		return "", err
	}
	if err := res.Commit(); err != nil {
		return "", err
	}
	s.epoch++
	s.nIncremental++
	return PathIncremental, nil
}

// demote drops the retained state, converting its live set into fallback
// tombstones.
func (s *LiveSession) demote() {
	live := map[relation.TupleID]bool{}
	for _, id := range s.prep.LiveIDs() {
		live[id] = true
	}
	for _, id := range s.p.DB.AllIDs() {
		if !live[id] {
			s.removed[id] = true
		}
	}
	s.prep = nil
}

// applyFallback validates and applies an update directly to the session
// database (tombstoning deletions), mirroring ApplyDelta's contract:
// unknown/dead ids are ignored, bad insertions are errors, and nothing is
// applied unless everything validates.
func (s *LiveSession) applyFallback(up SessionUpdate) error {
	for _, ins := range up.Insert {
		r := s.p.DB.Relation(ins.Rel)
		if r == nil {
			return fmt.Errorf("core: insert into unknown relation %q", ins.Rel)
		}
		if len(ins.Tuple) != r.Schema.Arity() {
			return fmt.Errorf("core: arity mismatch inserting into %q: got %d want %d",
				ins.Rel, len(ins.Tuple), r.Schema.Arity())
		}
	}
	for _, id := range up.Remove {
		if _, _, ok := s.p.DB.Lookup(id); ok {
			s.removed[id] = true
		}
	}
	for _, ins := range up.Insert {
		s.p.DB.Insert(ins.Rel, ins.Tuple)
	}
	return nil
}

// ReviseQuery replaces the candidate query Q2 and re-prepares the retained
// state over the current live instance — the plan shape changed, so the
// per-operator state cannot be patched. The materialized instance keeps its
// tuple ids, so subsequent updates and counterexamples stay coherent.
func (s *LiveSession) ReviseQuery(ctx context.Context, q2 ra.Node) (string, error) {
	s.bind(ctx)
	old, oldRemoved, oldPrep := s.p, s.removed, s.prep
	s.p.DB = s.CurrentDB()
	s.p.Q2 = q2
	s.removed = map[relation.TupleID]bool{}
	if err := s.prepare(); err != nil {
		s.p, s.removed, s.prep = old, oldRemoved, oldPrep
		return "", err
	}
	s.epoch++
	s.nReprepared++
	return PathReprepare, nil
}

// Grade reports the session's current verdict under ctx's budget. The
// incremental path reads the retained difference state (no evaluation);
// fallback mode pays a full evaluation of the live instance.
func (s *LiveSession) Grade(ctx context.Context) (*LiveGrade, error) {
	s.bind(ctx)
	if s.prep != nil {
		d12, d21 := s.prep.Diffs()
		return &LiveGrade{
			Agree:     !s.prep.Disagrees(),
			Size12:    d12.Len(),
			Size21:    d21.Len(),
			Witness12: sampleTuples(d12.Tuples),
			Witness21: sampleTuples(d21.Tuples),
		}, nil
	}
	disagree, r12, r21, err := s.p.disagrees(s.CurrentDB())
	if err != nil {
		return nil, err
	}
	return &LiveGrade{
		Agree:     !disagree,
		Size12:    r12.Len(),
		Size21:    r21.Len(),
		Witness12: sampleTuples(r12.Tuples),
		Witness21: sampleTuples(r21.Tuples),
	}, nil
}

func sampleTuples(ts []relation.Tuple) []relation.Tuple {
	if len(ts) > witnessSample {
		ts = ts[:witnessSample]
	}
	return append([]relation.Tuple(nil), ts...)
}

// Minimize runs the solver-free greedy shrink on the current live instance,
// producing a verified minimal counterexample for the session's present
// state. The shrink works on a materialized copy; session state is
// untouched.
func (s *LiveSession) Minimize(ctx context.Context) (*Counterexample, *Stats, error) {
	s.bind(ctx)
	p := s.p
	p.DB = s.CurrentDB()
	return ShrinkGreedy(p)
}
