package core

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/testdb"
)

// randomIDSets draws n random subsets of the database's tuple ids.
func randomIDSets(rng *rand.Rand, db *relation.Database, n int) [][]int {
	all := db.AllIDs()
	out := make([][]int, n)
	for i := range out {
		for _, id := range all {
			if rng.Intn(2) == 0 {
				out[i] = append(out[i], int(id))
			}
		}
	}
	return out
}

// TestDisagreeBatchMatchesPerCandidate: the batched disagreement check
// agrees with evaluate-on-subinstance for random candidate sets of the
// running example, across both the word-sized and wide mask paths.
func TestDisagreeBatchMatchesPerCandidate(t *testing.T) {
	p := example1Problem()
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 7, 70} {
		idSets := randomIDSets(rng, p.DB, n)
		got, err := DisagreeBatch(p, idSets)
		if err != nil {
			t.Fatal(err)
		}
		for k, ids := range idSets {
			sub, _ := subinstanceFromIDs(p.DB, ids)
			want, _, _, err := Disagrees(p.Q1, p.Q2, sub, p.Params)
			if err != nil {
				t.Fatal(err)
			}
			if got[k] != want {
				t.Errorf("n=%d candidate %d (%v): batch=%v per-candidate=%v", n, k, ids, got[k], want)
			}
		}
	}
}

// TestDisagreeBatchAggregateFallback: plans containing γ cannot run under
// the bitvector semiring; DisagreeBatch must fall back to per-candidate
// evaluation and still produce correct answers.
func TestDisagreeBatchAggregateFallback(t *testing.T) {
	p := Problem{Q1: testdb.AggQ1(), Q2: testdb.AggQ2(), DB: testdb.Example1DB()}
	rng := rand.New(rand.NewSource(7))
	idSets := randomIDSets(rng, p.DB, 12)
	got, err := DisagreeBatch(p, idSets)
	if err != nil {
		t.Fatal(err)
	}
	for k, ids := range idSets {
		sub, _ := subinstanceFromIDs(p.DB, ids)
		want, _, _, err := Disagrees(p.Q1, p.Q2, sub, p.Params)
		if err != nil {
			t.Fatal(err)
		}
		if got[k] != want {
			t.Errorf("candidate %d (%v): batch=%v per-candidate=%v", k, ids, got[k], want)
		}
	}
}

// TestVerifyBatchMatchesVerify: batch accept/reject decisions equal
// per-candidate Verify, and accepted candidates come back as verified
// counterexamples.
func TestVerifyBatchMatchesVerify(t *testing.T) {
	p := example1Problem()
	p.Constraints = testdb.Constraints()
	rng := rand.New(rand.NewSource(99))
	idSets := randomIDSets(rng, p.DB, 40)
	// Include a known witness (Example 1: student t1 with registrations
	// t4, t5) and the empty set.
	idSets = append(idSets, []int{1, 4, 5}, nil)
	ces, err := VerifyBatch(p, idSets)
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for k, ids := range idSets {
		sub, tids := subinstanceFromIDs(p.DB, ids)
		want := Verify(p, &Counterexample{DB: sub, IDs: tids}) == nil
		if (ces[k] != nil) != want {
			t.Errorf("candidate %d (%v): batch accept=%v, Verify accept=%v", k, ids, ces[k] != nil, want)
		}
		if ces[k] != nil {
			accepted++
			if err := Verify(p, ces[k]); err != nil {
				t.Errorf("candidate %d: VerifyBatch returned an invalid counterexample: %v", k, err)
			}
		}
	}
	if accepted == 0 {
		t.Fatal("no candidate accepted — the known witness {1,4,5} should verify")
	}
}

// TestVerifyCandidatesFallback: candidates carrying their own parameter
// settings must go through per-candidate Verify (the batch layer cannot
// honour per-candidate λ), and the answers must match Verify exactly.
func TestVerifyCandidatesFallback(t *testing.T) {
	p := example1Problem()
	rng := rand.New(rand.NewSource(5))
	idSets := randomIDSets(rng, p.DB, 6)
	var ces []*Counterexample
	for _, ids := range idSets {
		sub, tids := subinstanceFromIDs(p.DB, ids)
		ces = append(ces, &Counterexample{DB: sub, IDs: tids,
			Params: map[string]relation.Value{}}) // forces the fallback
	}
	got := verifyCandidates(p, nil, ces)
	for i, ce := range ces {
		if want := Verify(p, ce) == nil; got[i] != want {
			t.Errorf("candidate %d: verifyCandidates=%v Verify=%v", i, got[i], want)
		}
	}
}
