package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/raparser"
	"repro/internal/relation"
	"repro/internal/testdb"
)

// courseProblem builds a disagreeing SPJUD pair over a course-shaped
// instance (the same Student/Registration schema and q4-vs-q6 query pair as
// internal/course, generated locally to avoid the core ↔ course import
// cycle) — the workload whose shrink loops the delta-incremental path
// targets.
func courseProblem(t testing.TB, size int) Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	db := relation.NewDatabase()
	db.CreateRelation("Student", relation.NewSchema(
		relation.Attr("name", relation.KindString),
		relation.Attr("major", relation.KindString)))
	db.CreateRelation("Registration", relation.NewSchema(
		relation.Attr("name", relation.KindString),
		relation.Attr("course", relation.KindString),
		relation.Attr("dept", relation.KindString),
		relation.Attr("grade", relation.KindInt)))
	depts := []string{"CS", "ECON", "MATH"}
	nStudents := size / 5
	if nStudents < 3 {
		nStudents = 3
	}
	for i := 0; i < nStudents; i++ {
		db.Insert("Student", relation.NewTuple(
			relation.String(fmt.Sprintf("s%04d", i)),
			relation.String(depts[rng.Intn(len(depts))])))
	}
	type regKey struct{ s, c string }
	seen := map[regKey]bool{}
	for total, i := nStudents, 0; total < size; i = (i + 1) % nStudents {
		name := fmt.Sprintf("s%04d", i)
		dept := depts[rng.Intn(len(depts))]
		course := fmt.Sprintf("%s%03d", dept, 100+rng.Intn(200))
		if seen[regKey{name, course}] {
			continue
		}
		seen[regKey{name, course}] = true
		db.Insert("Registration", relation.NewTuple(
			relation.String(name), relation.String(course), relation.String(dept),
			relation.Int(int64(60+rng.Intn(41)))))
		total++
	}
	// "CS but not ECON" vs "only CS": same schema, different answers.
	q1 := raparser.MustParse(`project[name, major](select[dept = 'CS'](Student join Registration))
		diff project[name, major](select[dept = 'ECON'](Student join Registration))`)
	q2 := raparser.MustParse(`project[name, major](select[dept = 'CS'](Student join Registration))
		diff project[name, major](select[dept <> 'CS'](Student join Registration))`)
	p := Problem{Q1: q1, Q2: q2, DB: db}
	differs, _, _, err := Disagrees(p.Q1, p.Q2, p.DB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !differs {
		t.Fatal("course-shaped q4 vs q6 should disagree")
	}
	return p
}

// courseConstraints mirrors course.Constraints for the local schema.
func courseConstraints() []relation.Constraint {
	return []relation.Constraint{
		relation.Key{Relation: "Student", Attrs: []string{"name"}},
		relation.Key{Relation: "Registration", Attrs: []string{"name", "course"}},
		relation.ForeignKey{ChildRel: "Registration", ChildAttrs: []string{"name"},
			ParentRel: "Student", ParentAttrs: []string{"name"}},
	}
}

// TestCheckerAdaptiveMatchesPerCandidate: the checker's adaptive routing —
// witness-sized candidates through the batch layer, near-full candidates
// through the prepared delta state — produces exactly the per-candidate
// accept/reject decisions, including when the two paths interleave within
// one call (the EnumerateSmallest coexistence scenario).
func TestCheckerAdaptiveMatchesPerCandidate(t *testing.T) {
	p := courseProblem(t, 300)
	chk, err := newChecker(p)
	if err != nil {
		t.Fatal(err)
	}
	if chk.prep == nil {
		t.Fatal("course SPJUD plans should be delta-incrementalizable")
	}
	all := p.DB.AllIDs()
	rng := rand.New(rand.NewSource(11))
	var idSets [][]int
	// Witness-sized candidates (batch path) interleaved with near-full ones
	// (delta path): drop a handful of random ids from D.
	for i := 0; i < 8; i++ {
		var small []int
		for j := 0; j < 5; j++ {
			small = append(small, int(all[rng.Intn(len(all))]))
		}
		idSets = append(idSets, small)
		gone := map[int]bool{}
		for j := 0; j < 1+rng.Intn(6); j++ {
			gone[int(all[rng.Intn(len(all))])] = true
		}
		var big []int
		for _, id := range all {
			if !gone[int(id)] {
				big = append(big, int(id))
			}
		}
		idSets = append(idSets, big)
	}
	// Repeated calls must not corrupt the shared prepared state.
	for round := 0; round < 3; round++ {
		got, err := chk.disagree(idSets)
		if err != nil {
			t.Fatal(err)
		}
		for k, ids := range idSets {
			sub, _ := subinstanceFromIDs(p.DB, ids)
			want, _, _, err := Disagrees(p.Q1, p.Q2, sub, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got[k] != want {
				t.Errorf("round %d candidate %d (|kept|=%d): checker=%v per-candidate=%v",
					round, k, len(ids), got[k], want)
			}
		}
	}
}

// TestCheckerBaseDiffsMatchDisagrees: the diffs the prepared evaluation
// hands the search algorithms equal the plain Disagrees evaluation's,
// tuple set and order included (the order feeds witness-case tie-breaks).
func TestCheckerBaseDiffsMatchDisagrees(t *testing.T) {
	for _, p := range []Problem{
		courseProblem(t, 300),
		example1Problem(),
	} {
		chk, err := newChecker(p)
		if err != nil {
			t.Fatal(err)
		}
		_, d12, d21, err := Disagrees(p.Q1, p.Q2, p.DB, p.Params)
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range []struct {
			name      string
			got, want *relation.Relation
		}{{"Q1−Q2", chk.d12, d12}, {"Q2−Q1", chk.d21, d21}} {
			if pair.got.Len() != pair.want.Len() {
				t.Fatalf("%s: %d tuples, want %d", pair.name, pair.got.Len(), pair.want.Len())
			}
			for i := range pair.want.Tuples {
				if !pair.got.Tuples[i].Identical(pair.want.Tuples[i]) {
					t.Fatalf("%s tuple %d: %v, want %v", pair.name, i, pair.got.Tuples[i], pair.want.Tuples[i])
				}
			}
		}
	}
}

// TestShrinkGreedy: the greedy delta-incremental shrink produces a verified,
// 1-minimal counterexample on the course workload.
func TestShrinkGreedy(t *testing.T) {
	p := courseProblem(t, 300)
	p.Constraints = courseConstraints()
	ce, stats, err := ShrinkGreedy(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, ce); err != nil {
		t.Fatalf("shrunk counterexample invalid: %v", err)
	}
	if ce.Size() >= p.DB.Size() {
		t.Fatalf("no shrinkage: %d of %d tuples kept", ce.Size(), p.DB.Size())
	}
	if stats.WitnessSize != ce.Size() {
		t.Fatalf("stats.WitnessSize=%d, ce.Size()=%d", stats.WitnessSize, ce.Size())
	}
	// 1-minimality: removing any single kept tuple breaks disagreement or
	// the constraints.
	keep := map[relation.TupleID]bool{}
	for _, id := range ce.IDs {
		keep[id] = true
	}
	for _, id := range ce.IDs {
		keep[id] = false
		sub := p.DB.Subinstance(keep)
		differs, _, _, err := Disagrees(p.Q1, p.Q2, sub, nil)
		if err == nil && differs && constraintsHold(p, sub) {
			t.Fatalf("not 1-minimal: tuple %v is removable", id)
		}
		keep[id] = true
	}
}

// TestShrinkGreedyRespectsForeignKeys: kept Registration tuples must keep
// their Student parents — the FK guard may never strand a child.
func TestShrinkGreedyRespectsForeignKeys(t *testing.T) {
	p := courseProblem(t, 250)
	p.Constraints = courseConstraints()
	ce, _, err := ShrinkGreedy(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Constraints {
		if err := c.Validate(ce.DB); err != nil {
			t.Fatalf("constraint %s violated: %v", c, err)
		}
	}
}

// TestShrinkGreedyMultiFK: a child constrained by two foreign keys needs a
// live parent under each of them — the guard must count parents per FK, not
// pooled (a pooled count of 2 would let the only parent under one FK go).
func TestShrinkGreedyMultiFK(t *testing.T) {
	db := relation.NewDatabase()
	db.CreateRelation("P1", relation.NewSchema(relation.Attr("k", relation.KindInt)))
	db.CreateRelation("P2", relation.NewSchema(relation.Attr("k", relation.KindInt)))
	db.CreateRelation("C", relation.NewSchema(
		relation.Attr("k1", relation.KindInt),
		relation.Attr("k2", relation.KindInt)))
	db.Insert("P1", relation.NewTuple(relation.Int(1)))
	db.Insert("P1", relation.NewTuple(relation.Int(2)))
	db.Insert("P2", relation.NewTuple(relation.Int(1)))
	db.Insert("C", relation.NewTuple(relation.Int(1), relation.Int(1)))
	p := Problem{
		// Disagree exactly while C is nonempty: deleting C's tuple is never
		// accepted, so its parents must stay pinned under both FKs.
		Q1: raparser.MustParse(`project[k1](C)`),
		Q2: raparser.MustParse(`project[k1](select[k1 < 0](C))`),
		DB: db,
		Constraints: []relation.Constraint{
			relation.ForeignKey{ChildRel: "C", ChildAttrs: []string{"k1"}, ParentRel: "P1", ParentAttrs: []string{"k"}},
			relation.ForeignKey{ChildRel: "C", ChildAttrs: []string{"k2"}, ParentRel: "P2", ParentAttrs: []string{"k"}},
		},
	}
	ce, _, err := ShrinkGreedy(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, ce); err != nil {
		t.Fatalf("invalid counterexample: %v", err)
	}
	// The child plus its parent under each FK must survive; the unused P1
	// tuple (id 2) must not.
	want := []relation.TupleID{1, 3, 4}
	if len(ce.IDs) != len(want) {
		t.Fatalf("kept %v, want %v", ce.IDs, want)
	}
	for i, id := range want {
		if ce.IDs[i] != id {
			t.Fatalf("kept %v, want %v", ce.IDs, want)
		}
	}
}

// TestShrinkGreedyFallbackMatches: the no-prepared-state fallback loop
// produces the same counterexample as the delta-incremental loop (both are
// deterministic first-fit greedy over ascending ids).
func TestShrinkGreedyFallbackMatches(t *testing.T) {
	p := Problem{Q1: testdb.Q1(), Q2: testdb.Q2(), DB: testdb.Example1DB(), Constraints: testdb.Constraints()}
	ce, _, err := ShrinkGreedy(p)
	if err != nil {
		t.Fatal(err)
	}
	guard, err := newFKGuard(p.DB, p.ForeignKeys())
	if err != nil {
		t.Fatal(err)
	}
	kept, _, err := shrinkGreedyFallback(p, guard)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != len(ce.IDs) {
		t.Fatalf("fallback kept %d tuples, delta loop kept %d", len(kept), len(ce.IDs))
	}
	for i, id := range kept {
		if ce.IDs[i] != id {
			t.Fatalf("kept id %d: fallback %v, delta loop %v", i, id, ce.IDs[i])
		}
	}
}

// TestEnumerateSmallestUnchangedByChecker: the checker rewiring must not
// change EnumerateSmallest's results on the running example (same smallest
// size, all verified).
func TestEnumerateSmallestUnchangedByChecker(t *testing.T) {
	p := example1Problem()
	p.Constraints = testdb.Constraints()
	ces, err := EnumerateSmallest(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(ces) == 0 {
		t.Fatal("no counterexamples enumerated")
	}
	size := ces[0].Size()
	for _, ce := range ces {
		if ce.Size() != size {
			t.Errorf("non-uniform smallest size: %d vs %d", ce.Size(), size)
		}
		if err := Verify(p, ce); err != nil {
			t.Errorf("invalid counterexample: %v", err)
		}
	}
}
