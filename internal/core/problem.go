package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/minones"
	"repro/internal/ra"
	"repro/internal/relation"
)

// ErrQueriesAgree is returned when the two queries agree on the full
// instance D: no counterexample exists within D, which callers (the CLI,
// the serving layer's grader) treat as a distinct, non-error outcome.
var ErrQueriesAgree = errors.New("core: queries agree on D; no counterexample exists within D")

// ErrBudget wraps every error the algorithms return because a per-request
// budget ran out (the problem's Ctx expired or was canceled) rather than
// because the problem itself is defective. Long-lived callers (the serving
// layer) detect it with errors.Is and report "budget exceeded" instead of a
// hard failure.
var ErrBudget = errors.New("core: request budget exceeded")

// Problem is an instance of SCP/SWP: two union-compatible queries that
// disagree on a database instance satisfying the constraints.
type Problem struct {
	Q1, Q2      ra.Node
	DB          *relation.Database
	Constraints []relation.Constraint
	// Params binds the queries' @-parameters (the original setting λ).
	Params map[string]relation.Value

	// Ctx, when non-nil, carries the request's wall-clock budget: its
	// deadline/cancellation is polled between loop iterations of the
	// search algorithms and inside the SAT/SMT solvers, so an expired
	// context aborts a solve in flight. Algorithms then fail with an error
	// wrapping ErrBudget and the context's error; they never return a
	// wrong counterexample (every result is verified before it is
	// returned). Nil means no budget.
	Ctx context.Context
	// MaxConflicts, when > 0, bounds every individual SAT call's conflict
	// count (minones.Options.MaxConflictsPerCall), turning runaway solves
	// into Unknown statuses.
	MaxConflicts int64
	// MaxRows, when > 0, tightens the engine's intermediate-row budget for
	// this problem's evaluations (engine.Options.MaxRows).
	MaxRows int
}

// interrupted reports the budget error to surface when the problem's
// context has expired, or nil while the budget still holds. Loops call it
// between iterations; the error wraps both ErrBudget and the context error
// (context.DeadlineExceeded / context.Canceled).
func (p Problem) interrupted() error {
	if p.Ctx == nil {
		return nil
	}
	if err := p.Ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrBudget, err)
	}
	return nil
}

// stopFunc returns the solver stop hook enforcing the context budget, or
// nil when the problem carries none.
func (p Problem) stopFunc() func() bool {
	if p.Ctx == nil {
		return nil
	}
	done := p.Ctx.Done()
	return func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
}

// solverOpts maps the problem's budget onto a minones solver configuration.
func (p Problem) solverOpts() minones.Options {
	return minones.Options{MaxConflictsPerCall: p.MaxConflicts, Stop: p.stopFunc()}
}

// engineOpts maps the problem's budget onto engine evaluation options:
// the row cap, plus the context budget as the engine's evaluation-time
// stop hook (so one long evaluation aborts mid-flight instead of only
// between phases).
func (p Problem) engineOpts() engine.Options {
	opts := engine.Options{MaxRows: p.MaxRows}
	if p.Ctx != nil {
		opts.Stop = p.interrupted
	}
	return opts
}

// disagrees is Disagrees under the problem's budgeted engine options,
// against an arbitrary (sub)instance.
func (p Problem) disagrees(db *relation.Database) (bool, *relation.Relation, *relation.Relation, error) {
	return disagreesOpts(p.Q1, p.Q2, db, p.Params, p.engineOpts())
}

// ForeignKeys returns the foreign-key constraints of the problem (the only
// constraint kind not closed under subinstances, Section 2.1).
func (p Problem) ForeignKeys() []relation.ForeignKey {
	var out []relation.ForeignKey
	for _, c := range p.Constraints {
		if fk, ok := c.(relation.ForeignKey); ok {
			out = append(out, fk)
		}
	}
	return out
}

// Counterexample is a subinstance D' ⊆ D with Q1(D') ≠ Q2(D').
type Counterexample struct {
	// DB is the counterexample subinstance.
	DB *relation.Database
	// IDs are the identifiers of the kept tuples, sorted.
	IDs []relation.TupleID
	// Witness, when non-nil, is the output tuple whose witness was
	// minimized (the SWP tuple t).
	Witness relation.Tuple
	// Params is the parameter setting λ' under which the counterexample
	// distinguishes the queries (SPCP, Definition 3); nil means the
	// problem's original parameters.
	Params map[string]relation.Value
	// Q1, Q2, when non-nil, are the parameterized rewrites of the
	// problem's queries that Params applies to (thresholds replaced by
	// @-parameters). Verification uses them in place of the originals.
	Q1, Q2 ra.Node
}

// Size returns the number of tuples in the counterexample.
func (c *Counterexample) Size() int { return c.DB.Size() }

// Stats records the per-component measurements the paper's experiments
// report (Figures 3, 4, 6). The per-component times (ProvEvalTime,
// SolverTime) are sums of per-task durations: under parallel execution
// (Workers > 1) they report aggregate work across the pool and can exceed
// the wall-clock TotalTime.
type Stats struct {
	Algorithm    string
	RawEvalTime  time.Duration // evaluating Q1, Q2 (and Q1−Q2) plainly
	ProvEvalTime time.Duration // provenance-annotated evaluation
	SolverTime   time.Duration // SAT/SMT solving
	TotalTime    time.Duration
	WitnessSize  int
	ModelsTried  int
	Optimal      bool
	TimedOut     bool
}

// Verify checks that ce is a genuine counterexample for the problem: a
// subinstance satisfying the constraints on which the queries disagree. The
// counterexample's parameter setting takes precedence over the problem's.
func Verify(p Problem, ce *Counterexample) error {
	if !ce.DB.SubinstanceOf(p.DB) {
		return fmt.Errorf("core: counterexample is not a subinstance of D")
	}
	for _, c := range p.Constraints {
		if err := c.Validate(ce.DB); err != nil {
			return fmt.Errorf("core: counterexample violates %s: %v", c, err)
		}
	}
	params := p.Params
	if ce.Params != nil {
		params = ce.Params
	}
	q1, q2 := p.Q1, p.Q2
	if ce.Q1 != nil && ce.Q2 != nil {
		q1, q2 = ce.Q1, ce.Q2
	}
	r1, err := engine.EvalOpts(q1, ce.DB, params, p.engineOpts())
	if err != nil {
		return err
	}
	r2, err := engine.EvalOpts(q2, ce.DB, params, p.engineOpts())
	if err != nil {
		return err
	}
	if r1.SetEqual(r2) {
		return fmt.Errorf("core: queries agree on the candidate counterexample")
	}
	return nil
}

// Disagrees evaluates both queries on db under params and reports whether
// their results differ, along with the difference tuples Q1\Q2 and Q2\Q1.
func Disagrees(q1, q2 ra.Node, db *relation.Database, params map[string]relation.Value) (bool, *relation.Relation, *relation.Relation, error) {
	return disagreesOpts(q1, q2, db, params, engine.Options{})
}

func disagreesOpts(q1, q2 ra.Node, db *relation.Database, params map[string]relation.Value, opts engine.Options) (bool, *relation.Relation, *relation.Relation, error) {
	r1, err := engine.EvalOpts(q1, db, params, opts)
	if err != nil {
		return false, nil, nil, err
	}
	r2, err := engine.EvalOpts(q2, db, params, opts)
	if err != nil {
		return false, nil, nil, err
	}
	d12 := r1.SetDiff(r2)
	d21 := r2.SetDiff(r1)
	return d12.Len() > 0 || d21.Len() > 0, d12, d21, nil
}

// subinstanceFromIDs builds a counterexample database from tuple ids. The
// returned ids are deduplicated and sorted, per the Counterexample.IDs
// contract (callers feed ids in solver-model order, which is not stable).
func subinstanceFromIDs(db *relation.Database, ids []int) (*relation.Database, []relation.TupleID) {
	keep := make(map[relation.TupleID]bool, len(ids))
	out := make([]relation.TupleID, 0, len(ids))
	for _, id := range ids {
		tid := relation.TupleID(id)
		if !keep[tid] {
			keep[tid] = true
			out = append(out, tid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	sub := db.Subinstance(keep)
	return sub, out
}
