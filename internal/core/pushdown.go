package core

import (
	"repro/internal/engine"
	"repro/internal/ra"
	"repro/internal/relation"
)

// PushDownTupleSelection implements the Optσ rewrite of Algorithm 2: given
// an output tuple t of query q, it builds σ_{A1=t.A1,...,Ak=t.Ak}(q) and
// pushes each equality as deep into the operator tree as it will go
// (through projections, renames, unions, differences and into the matching
// side(s) of joins). The SQL optimizer performs this pushdown in the
// paper's implementation; here it is an explicit tree rewrite that shrinks
// the intermediate results of the provenance evaluation.
func PushDownTupleSelection(q ra.Node, t relation.Tuple, db *relation.Database) ra.Node {
	out := q
	for col := len(t) - 1; col >= 0; col-- {
		out = pushEq(out, col, t[col], engine.Catalog{DB: db})
	}
	return out
}

// pushEq pushes the selection "output column col = v" into the tree.
// Columns are tracked positionally, which is robust to renaming and to
// union branches with differing attribute names.
func pushEq(q ra.Node, col int, v relation.Value, cat ra.Catalog) ra.Node {
	wrap := func(n ra.Node) ra.Node {
		schema, err := ra.OutSchema(n, cat)
		if err != nil || col >= schema.Arity() {
			return n // defensive: leave the tree unchanged
		}
		return &ra.Select{
			Pred: &ra.Cmp{Op: ra.EQ, L: &ra.AttrRef{Name: schema.Attrs[col].Name}, R: &ra.Const{Val: v}},
			In:   n,
		}
	}
	switch x := q.(type) {
	case *ra.Rel:
		return wrap(x)
	case *ra.Select:
		return &ra.Select{Pred: x.Pred, In: pushEq(x.In, col, v, cat)}
	case *ra.Project:
		// Output column col is x.Cols[col], a reference into the child
		// schema: push into the child at the referenced position.
		childSchema, err := ra.OutSchema(x.In, cat)
		if err != nil {
			return wrap(x)
		}
		j, err := childSchema.Resolve(x.Cols[col])
		if err != nil {
			return wrap(x)
		}
		return &ra.Project{Cols: x.Cols, In: pushEq(x.In, j, v, cat)}
	case *ra.Rename:
		return &ra.Rename{As: x.As, In: pushEq(x.In, col, v, cat)}
	case *ra.Union:
		return &ra.Union{L: pushEq(x.L, col, v, cat), R: pushEq(x.R, col, v, cat)}
	case *ra.Diff:
		// σ(L − R) = σL − σR.
		return &ra.Diff{L: pushEq(x.L, col, v, cat), R: pushEq(x.R, col, v, cat)}
	case *ra.Join:
		lSchema, err := ra.OutSchema(x.L, cat)
		if err != nil {
			return wrap(x)
		}
		if x.Cond != nil {
			// Theta join: output = L ++ R.
			if col < lSchema.Arity() {
				return &ra.Join{L: pushEq(x.L, col, v, cat), R: x.R, Cond: x.Cond}
			}
			return &ra.Join{L: x.L, R: pushEq(x.R, col-lSchema.Arity(), v, cat), Cond: x.Cond}
		}
		// Natural join: output = L ++ (R minus shared). Shared columns can
		// be pushed into both sides.
		rSchema, err := ra.OutSchema(x.R, cat)
		if err != nil {
			return wrap(x)
		}
		shared, rOnly := ra.NaturalJoinCols(lSchema, rSchema)
		if col < lSchema.Arity() {
			nl := pushEq(x.L, col, v, cat)
			nr := x.R
			for _, p := range shared {
				if p[0] == col {
					nr = pushEq(x.R, p[1], v, cat)
					break
				}
			}
			return &ra.Join{L: nl, R: nr}
		}
		rIdx := rOnly[col-lSchema.Arity()]
		return &ra.Join{L: x.L, R: pushEq(x.R, rIdx, v, cat)}
	case *ra.GroupBy:
		if col < len(x.GroupCols) {
			// Group-by columns can be filtered before grouping.
			childSchema, err := ra.OutSchema(x.In, cat)
			if err != nil {
				return wrap(x)
			}
			j, err := childSchema.Resolve(x.GroupCols[col])
			if err != nil {
				return wrap(x)
			}
			return &ra.GroupBy{GroupCols: x.GroupCols, Aggs: x.Aggs, In: pushEq(x.In, j, v, cat)}
		}
		// Selections on aggregate outputs cannot be pushed below γ.
		return wrap(x)
	}
	return wrap(q)
}
