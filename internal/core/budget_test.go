package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/testdb"
)

// A canceled context must abort every algorithm entry point with an error
// wrapping both ErrBudget and context.Canceled — never a counterexample.
func TestCanceledContextAborts(t *testing.T) {
	db := testdb.Example1DB()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Problem{Q1: testdb.Q1(), Q2: testdb.Q2(), DB: db, Ctx: ctx}

	algos := map[string]func() error{
		"Explain":     func() error { _, _, err := Explain(p); return err },
		"Basic":       func() error { _, _, err := Basic(p, 0); return err },
		"OptSigma":    func() error { _, _, err := OptSigma(p); return err },
		"OptSigmaAll": func() error { _, _, err := OptSigmaAll(p); return err },
		"ShrinkGreedy": func() error {
			_, _, err := ShrinkGreedy(p)
			return err
		},
		"EnumerateSmallest": func() error { _, err := EnumerateSmallest(p, 4); return err },
	}
	for name, run := range algos {
		err := run()
		if err == nil {
			t.Fatalf("%s: expected a budget error under a canceled context", name)
		}
		if !errors.Is(err, ErrBudget) {
			t.Errorf("%s: error %v does not wrap ErrBudget", name, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: error %v does not wrap context.Canceled", name, err)
		}
	}
}

// A deadline that expires mid-search must surface as a budget error, and
// the same problem without the deadline must still succeed (the plumbing
// must not leak budget state between runs).
func TestDeadlineMidSearch(t *testing.T) {
	db := testdb.Example1DB()
	p := Problem{Q1: testdb.Q1(), Q2: testdb.Q2(), DB: db}
	if _, _, err := Explain(p); err != nil {
		t.Fatalf("unbudgeted Explain failed: %v", err)
	}

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	p.Ctx = ctx
	_, _, err := Explain(p)
	if !errors.Is(err, ErrBudget) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected budget+deadline error, got %v", err)
	}
}

// Problem.MaxRows must tighten the engine's intermediate-row budget for the
// problem's own evaluations.
func TestMaxRowsBudget(t *testing.T) {
	db := testdb.Example1DB()
	p := Problem{Q1: testdb.Q1(), Q2: testdb.Q2(), DB: db, MaxRows: 2}
	_, _, err := Explain(p)
	if !errors.Is(err, engine.ErrRowBudget) {
		t.Fatalf("expected ErrRowBudget with MaxRows=2, got %v", err)
	}
	p.MaxRows = 0
	if _, _, err := Explain(p); err != nil {
		t.Fatalf("Explain without MaxRows failed: %v", err)
	}
}

// The agree outcome must be detectable with errors.Is across algorithms.
func TestErrQueriesAgreeSentinel(t *testing.T) {
	db := testdb.Example1DB()
	p := Problem{Q1: testdb.Q1(), Q2: testdb.Q1(), DB: db}
	if _, _, err := Explain(p); !errors.Is(err, ErrQueriesAgree) {
		t.Fatalf("Explain on equal queries: got %v, want ErrQueriesAgree", err)
	}
	if _, err := EnumerateSmallest(p, 4); !errors.Is(err, ErrQueriesAgree) {
		t.Fatalf("EnumerateSmallest on equal queries: got %v, want ErrQueriesAgree", err)
	}
	if _, _, err := ShrinkGreedy(p); !errors.Is(err, ErrQueriesAgree) {
		t.Fatalf("ShrinkGreedy on equal queries: got %v, want ErrQueriesAgree", err)
	}
}
