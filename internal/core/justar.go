package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/boolexpr"
	"repro/internal/engine"
	"repro/internal/ra"
)

// unionLeaves splits a query at its top-level unions (descending through
// renames), returning the union-free subqueries whose union the query
// denotes.
func unionLeaves(q ra.Node) []ra.Node {
	switch x := q.(type) {
	case *ra.Union:
		return append(unionLeaves(x.L), unionLeaves(x.R)...)
	case *ra.Rename:
		inner := unionLeaves(x.In)
		if len(inner) == 1 {
			return []ra.Node{q}
		}
		out := make([]ra.Node, len(inner))
		for i, n := range inner {
			out[i] = &ra.Rename{As: x.As, In: n}
		}
		return out
	default:
		return []ra.Node{q}
	}
}

// JUStarSWP implements the Theorem 5 algorithm for JU* queries (all unions
// above all joins): a differing tuple t must be produced by one of the
// union's join-only subqueries, so the smallest witness is the minimum over
// those subqueries of the smallest SJ-style witness (Theorem 1). This
// avoids constructing a DNF for the whole query.
func JUStarSWP(p Problem) (*Counterexample, *Stats, error) {
	if !ra.IsJUStar(p.Q1) || !ra.IsJUStar(p.Q2) {
		return nil, nil, fmt.Errorf("core: JUStarSWP requires JU* queries")
	}
	c1, c2 := ra.Classify(p.Q1), ra.Classify(p.Q2)
	if !c1.Monotone() || !c2.Monotone() {
		return nil, nil, fmt.Errorf("core: JUStarSWP requires monotone queries")
	}
	stats := &Stats{Algorithm: "JUStar"}
	start := time.Now()

	t0 := time.Now()
	differs, d12, d21, err := p.disagrees(p.DB)
	if err != nil {
		return nil, nil, err
	}
	stats.RawEvalTime = time.Since(t0)
	if !differs {
		return nil, nil, ErrQueriesAgree
	}
	qa := p.Q1
	diff := d12
	if diff.Len() == 0 {
		qa = p.Q2
		diff = d21
	}
	t := diff.Tuples[0]

	// Try every union leaf containing t and keep the smallest witness.
	t0 = time.Now()
	var bestIDs []int
	cat := engine.Catalog{DB: p.DB}
	for _, leaf := range unionLeaves(qa) {
		if err := p.interrupted(); err != nil {
			return nil, nil, err
		}
		schema, err := ra.OutSchema(leaf, cat)
		if err != nil || schema.Arity() != len(t) {
			continue
		}
		pushed := PushDownTupleSelection(leaf, t, p.DB)
		// Counting-semiring cardinality pre-check: t ∈ leaf(D) iff the
		// pushed-down selection has nonempty support. The count pass costs
		// a fraction of the provenance pass it skips for leaves that never
		// produce t (the common case: t originates from specific leaves);
		// errors mean the leaf is unevaluable, which — as before this
		// rewrite — disqualifies the leaf rather than the whole search.
		if n, err := engine.CountDistinctOpts(pushed, p.DB, p.Params, p.engineOpts()); err != nil || n == 0 {
			continue
		}
		ann, err := engine.EvalProvOpts(pushed, p.DB, p.Params, p.engineOpts())
		if err != nil {
			return nil, nil, err
		}
		i := ann.Lookup(t)
		if i < 0 {
			continue
		}
		dnf, err := boolexpr.MonotoneDNF(ann.Anns[i], 1<<16)
		if err != nil {
			return nil, nil, err
		}
		if m := dnf.Smallest(); m != nil && (bestIDs == nil || len(m) < len(bestIDs)) {
			bestIDs = []int(m)
		}
	}
	stats.ProvEvalTime = time.Since(t0)
	if bestIDs == nil {
		return nil, nil, fmt.Errorf("core: no union leaf produces the differing tuple")
	}
	ids, err := fkClose(bestIDs, p.DB, p.ForeignKeys())
	if err != nil {
		return nil, nil, err
	}
	sub, tids := subinstanceFromIDs(p.DB, ids)
	ce := &Counterexample{DB: sub, IDs: tids, Witness: t}
	stats.WitnessSize = ce.Size()
	stats.Optimal = true
	stats.TotalTime = time.Since(start)
	if err := Verify(p, ce); err != nil {
		// A budget expiry during the final verification is a budget
		// failure, not an algorithm bug.
		if errors.Is(err, ErrBudget) {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("core: JUStarSWP produced an invalid counterexample: %v", err)
	}
	return ce, stats, nil
}
