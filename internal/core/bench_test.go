package core

import (
	"testing"

	"repro/internal/testdb"
)

func BenchmarkOptSigmaExample1(b *testing.B) {
	p := Problem{Q1: testdb.Q1(), Q2: testdb.Q2(), DB: testdb.Example1DB()}
	for i := 0; i < b.N; i++ {
		if _, _, err := OptSigma(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBasicExample1(b *testing.B) {
	p := Problem{Q1: testdb.Q1(), Q2: testdb.Q2(), DB: testdb.Example1DB()}
	for i := 0; i < b.N; i++ {
		if _, _, err := Basic(p, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggOptExample4(b *testing.B) {
	p := Problem{Q1: testdb.AggQ1(), Q2: testdb.AggQ2(), DB: testdb.Example1DB()}
	for i := 0; i < b.N; i++ {
		if _, _, err := AggOpt(p, AggOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggParamExample6(b *testing.B) {
	p := Problem{Q1: testdb.HavingQ1(), Q2: testdb.HavingQ2(), DB: testdb.Example1DB()}
	for i := 0; i < b.N; i++ {
		if _, _, err := AggBasic(p, AggOptions{Parameterize: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTheorem3Reduction(b *testing.B) {
	p := theorem3Instance(figure11Graph())
	for i := 0; i < b.N; i++ {
		if _, _, err := OptSigma(p); err != nil {
			b.Fatal(err)
		}
	}
}
