package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/relation"
)

// This file wires the engine's delta-incremental subsystem into the witness
// search: a checker owns one engine.PreparedDiff per (Q1, Q2, D) problem and
// routes each candidate accept/reject question to whichever evaluation path is
// cheapest — the retained-state deletion delta for candidates close to the
// base instance, the bitvector batch layer for the witness-sized ones — and
// ShrinkGreedy turns the committed-delta mode into a solver-free
// counterexample minimizer (one O(|Δ|) evaluation per deletion attempt
// instead of a full re-evaluation).

// maxDeltaFraction bounds the delta path: a candidate whose deletion delta
// exceeds this fraction of the base instance pays more in delta propagation
// (O(|Δ| × operator fanout)) than a fresh batched evaluation would, so it
// falls back to the batch/per-candidate path.
const maxDeltaFraction = 0.25

// checker carries the per-problem evaluation state the search algorithms
// share across candidates: the base diffs of Q1 − Q2 / Q2 − Q1 on D (from
// the one-time prepared evaluation) and the prepared per-operator state for
// delta-incremental candidate checks. The prepared object is reserved for
// *uncommitted* candidate deltas here — its base must stay D, or the
// complement arithmetic below would silently check the wrong subinstance
// (ShrinkGreedy owns its own PreparedDiff precisely because it commits).
type checker struct {
	p       Problem
	prep    *engine.PreparedDiff
	allIDs  []relation.TupleID
	differs bool
	// d12, d21 are the difference tuples on the full database D.
	d12, d21 *relation.Relation
}

// newChecker evaluates the problem's queries once on D. When the plan pair
// is delta-incrementalizable the evaluation is retained as a PreparedDiff
// (so the diffs come from the prepared state, not a second evaluation);
// otherwise it degrades to the plain Disagrees evaluation.
func newChecker(p Problem) (*checker, error) {
	c := &checker{p: p}
	if prep, err := engine.PrepareDiff(p.Q1, p.Q2, p.DB, p.Params, p.engineOpts()); err == nil {
		c.prep = prep
		c.d12, c.d21 = prep.Diffs()
	} else {
		var derr error
		_, c.d12, c.d21, derr = p.disagrees(p.DB)
		if derr != nil {
			return nil, derr
		}
	}
	c.differs = c.d12.Len() > 0 || c.d21.Len() > 0
	return c, nil
}

// disagree reports, per candidate subinstance (a kept-id set over D),
// whether Q1 and Q2 disagree on it — DisagreeBatch's contract, with
// near-full candidates answered by the retained delta state instead of a
// fresh engine pass.
func (c *checker) disagree(idSets [][]int) ([]bool, error) {
	if c.prep == nil || c.prep.Epoch() != 0 {
		return DisagreeBatch(c.p, idSets)
	}
	out := make([]bool, len(idSets))
	base := c.prep.BaseSize()
	budget := int(maxDeltaFraction * float64(base))
	var batchIdx []int
	var batchSets [][]int
	kept := map[relation.TupleID]bool{}
	for i, ids := range idSets {
		// Each iteration can run a full delta evaluation; honor the
		// request budget between candidates.
		if err := c.p.interrupted(); err != nil {
			return nil, err
		}
		// Route on the deduplicated kept count: len(ids) over-counts
		// duplicates, which would under-estimate the removed set and let an
		// over-budget delta slip through to the delta path.
		for k := range kept {
			delete(kept, k)
		}
		for _, id := range ids {
			kept[relation.TupleID(id)] = true
		}
		if base-len(kept) > budget {
			batchIdx = append(batchIdx, i)
			batchSets = append(batchSets, ids)
			continue
		}
		res, err := c.prep.EvalDelta(c.complementSet(kept))
		if err != nil {
			// Delta-time evaluation errors (e.g. a predicate failing on a
			// resurrected tuple) are candidate-specific: fall back.
			batchIdx = append(batchIdx, i)
			batchSets = append(batchSets, ids)
			continue
		}
		out[i] = res.Disagrees()
	}
	if len(batchSets) > 0 {
		bs, err := DisagreeBatch(c.p, batchSets)
		if err != nil {
			return nil, err
		}
		for j, i := range batchIdx {
			out[i] = bs[j]
		}
	}
	return out, nil
}

// complementSet turns a kept-id set into the removed-id delta against D.
func (c *checker) complementSet(kept map[relation.TupleID]bool) []relation.TupleID {
	if c.allIDs == nil {
		c.allIDs = c.p.DB.AllIDs()
	}
	removed := make([]relation.TupleID, 0, len(c.allIDs)-len(kept))
	for _, id := range c.allIDs {
		if !kept[id] {
			removed = append(removed, id)
		}
	}
	return removed
}

// release drops the retained per-operator state, keeping only the base
// diffs. Callers that never check candidates through the checker (Basic,
// OptSigmaAll) release after construction so the evaluation-sized retained
// working set is not pinned for the whole solve phase.
func (c *checker) release() { c.prep = nil }

// fkGuard tracks foreign-key obligations during greedy deletion: a parent
// tuple may only be deleted while no live child still depends on it as its
// last live parent (FKs are the one constraint class not closed under
// subinstances, Section 2.1/4.3). Parent counts are tracked per (FK, child)
// pair: a child constrained by two foreign keys needs a live parent under
// *each* of them, so pooling the counts across FKs would let the last
// parent under one FK slip away while the other FK still has spares.
type fkGuard struct {
	// parentChildren maps a parent tuple to the (fk, child) edges that
	// depend on it.
	parentChildren map[relation.TupleID][]fkEdge
	// liveParents counts, per FK, each child's remaining live parents.
	liveParents []map[relation.TupleID]int
	removed     map[relation.TupleID]bool
}

type fkEdge struct {
	fk    int
	child relation.TupleID
}

func newFKGuard(db *relation.Database, fks []relation.ForeignKey) (*fkGuard, error) {
	g := &fkGuard{
		parentChildren: map[relation.TupleID][]fkEdge{},
		liveParents:    make([]map[relation.TupleID]int, len(fks)),
		removed:        map[relation.TupleID]bool{},
	}
	for i, fk := range fks {
		m, err := fk.ParentsOf(db)
		if err != nil {
			return nil, err
		}
		g.liveParents[i] = make(map[relation.TupleID]int, len(m))
		for child, parents := range m {
			g.liveParents[i][child] = len(parents)
			for _, p := range parents {
				g.parentChildren[p] = append(g.parentChildren[p], fkEdge{fk: i, child: child})
			}
		}
	}
	return g, nil
}

// removable reports whether deleting id keeps every live child supported
// under every foreign key.
func (g *fkGuard) removable(id relation.TupleID) bool {
	for _, e := range g.parentChildren[id] {
		if !g.removed[e.child] && g.liveParents[e.fk][e.child] <= 1 {
			return false
		}
	}
	return true
}

// remove records the deletion of id.
func (g *fkGuard) remove(id relation.TupleID) {
	g.removed[id] = true
	for _, e := range g.parentChildren[id] {
		g.liveParents[e.fk][e.child]--
	}
}

// shrinkFallbackLimit bounds the instance size the per-candidate fallback
// shrink loop accepts: without retained state every deletion attempt costs a
// full subinstance evaluation, which is only tolerable on small instances.
const shrinkFallbackLimit = 4096

// ShrinkGreedy computes a counterexample by greedy deletion: starting from
// the full instance D (on which the queries must disagree), it repeatedly
// deletes any tuple whose removal preserves both the disagreement and the
// foreign-key constraints, iterating to a fixpoint. The result is
// 1-minimal — no single remaining tuple can be deleted — though not
// necessarily the globally smallest witness; unlike the solver-based
// algorithms it needs no provenance, CNF or SAT budget.
//
// Each deletion attempt is answered by the prepared delta state in time
// proportional to the single-tuple delta; accepted deletions are committed,
// so one full pass over D costs O(|D|) delta propagations instead of the
// O(|D|) full re-evaluations the naive loop pays. Plans the engine cannot
// prepare fall back to that naive loop (bounded to small instances).
func ShrinkGreedy(p Problem) (*Counterexample, *Stats, error) {
	stats := &Stats{Algorithm: "ShrinkGreedy"}
	start := time.Now()
	if err := p.interrupted(); err != nil {
		return nil, nil, err
	}
	guard, err := newFKGuard(p.DB, p.ForeignKeys())
	if err != nil {
		return nil, nil, err
	}
	t0 := time.Now()
	prep, perr := engine.PrepareDiff(p.Q1, p.Q2, p.DB, p.Params, p.engineOpts())
	stats.RawEvalTime = time.Since(t0)
	var kept []relation.TupleID
	var witness relation.Tuple
	if perr == nil {
		if !prep.Disagrees() {
			return nil, nil, ErrQueriesAgree
		}
		if err := p.interrupted(); err != nil {
			return nil, nil, err
		}
		for {
			progress := false
			for _, id := range prep.LiveIDs() {
				if err := p.interrupted(); err != nil {
					return nil, nil, err
				}
				if !guard.removable(id) {
					continue
				}
				res, err := prep.EvalDelta([]relation.TupleID{id})
				if err != nil {
					// Delta-time evaluation errors are candidate-specific
					// (e.g. a predicate failing on a resurrected tuple):
					// treat the tuple as non-removable instead of abandoning
					// the whole minimization.
					continue
				}
				if !res.Disagrees() {
					continue
				}
				if err := res.Commit(); err != nil {
					return nil, nil, err
				}
				guard.remove(id)
				progress = true
			}
			if !progress {
				break
			}
		}
		kept = prep.LiveIDs()
		d12, d21 := prep.Diffs()
		if d12.Len() > 0 {
			witness = d12.Tuples[0]
		} else if d21.Len() > 0 {
			witness = d21.Tuples[0]
		}
	} else {
		kept, witness, err = shrinkGreedyFallback(p, guard)
		if err != nil {
			return nil, nil, err
		}
	}
	ids := make([]int, len(kept))
	for i, id := range kept {
		ids[i] = int(id)
	}
	sub, tids := subinstanceFromIDs(p.DB, ids)
	ce := &Counterexample{DB: sub, IDs: tids, Witness: witness}
	stats.WitnessSize = ce.Size()
	stats.TotalTime = time.Since(start)
	if err := Verify(p, ce); err != nil {
		// A budget expiry during the final verification is a budget
		// failure, not an algorithm bug.
		if errors.Is(err, ErrBudget) {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("core: ShrinkGreedy produced an invalid counterexample: %v", err)
	}
	return ce, stats, nil
}

// shrinkGreedyFallback is the no-retained-state loop: every deletion attempt
// materializes the candidate subinstance and re-evaluates both queries.
func shrinkGreedyFallback(p Problem, guard *fkGuard) ([]relation.TupleID, relation.Tuple, error) {
	if p.DB.Size() > shrinkFallbackLimit {
		return nil, nil, fmt.Errorf("core: plan is not delta-incrementalizable and |D|=%d exceeds the fallback shrink limit %d",
			p.DB.Size(), shrinkFallbackLimit)
	}
	live := map[relation.TupleID]bool{}
	for _, id := range p.DB.AllIDs() {
		live[id] = true
	}
	differs, d12, d21, err := p.disagrees(p.DB)
	if err != nil {
		return nil, nil, err
	}
	if !differs {
		return nil, nil, ErrQueriesAgree
	}
	var witness relation.Tuple
	if d12.Len() > 0 {
		witness = d12.Tuples[0]
	} else {
		witness = d21.Tuples[0]
	}
	for {
		progress := false
		for _, id := range p.DB.AllIDs() {
			if err := p.interrupted(); err != nil {
				return nil, nil, err
			}
			if !live[id] || !guard.removable(id) {
				continue
			}
			live[id] = false
			sub := p.DB.Subinstance(live)
			differs, nd12, nd21, err := p.disagrees(sub)
			if err != nil || !differs {
				live[id] = true
				continue
			}
			guard.remove(id)
			progress = true
			if nd12.Len() > 0 {
				witness = nd12.Tuples[0]
			} else {
				witness = nd21.Tuples[0]
			}
		}
		if !progress {
			break
		}
	}
	var kept []relation.TupleID
	for _, id := range p.DB.AllIDs() {
		if live[id] {
			kept = append(kept, id)
		}
	}
	return kept, witness, nil
}
