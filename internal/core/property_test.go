package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/eval"
	"repro/internal/ra"
	"repro/internal/relation"
)

// randomSmallDB builds a two-table instance with <= 12 tuples so that the
// brute-force smallest counterexample (over all 2^n subinstances) is
// computable.
func randomSmallDB(rng *rand.Rand) *relation.Database {
	db := relation.NewDatabase()
	db.CreateRelation("A", relation.NewSchema(
		relation.Attr("x", relation.KindInt), relation.Attr("y", relation.KindInt)))
	db.CreateRelation("B", relation.NewSchema(
		relation.Attr("x", relation.KindInt), relation.Attr("z", relation.KindInt)))
	na, nb := 2+rng.Intn(4), 2+rng.Intn(5)
	for i := 0; i < na; i++ {
		db.Insert("A", relation.NewTuple(relation.Int(int64(rng.Intn(4))), relation.Int(int64(rng.Intn(3)))))
	}
	for i := 0; i < nb; i++ {
		db.Insert("B", relation.NewTuple(relation.Int(int64(rng.Intn(4))), relation.Int(int64(rng.Intn(3)))))
	}
	return db
}

// randomQueryPair builds small SPJUD query pairs that plausibly disagree.
func randomQueryPair(rng *rand.Rand) (ra.Node, ra.Node) {
	mk := func(sel int) ra.Node {
		join := &ra.Join{L: &ra.Rel{Name: "A"}, R: &ra.Rel{Name: "B"}}
		var pred ra.Expr
		switch sel {
		case 0:
			pred = &ra.Cmp{Op: ra.EQ, L: &ra.AttrRef{Name: "y"}, R: &ra.Const{Val: relation.Int(1)}}
		case 1:
			pred = &ra.Cmp{Op: ra.GT, L: &ra.AttrRef{Name: "z"}, R: &ra.Const{Val: relation.Int(0)}}
		case 2:
			pred = &ra.Cmp{Op: ra.NE, L: &ra.AttrRef{Name: "y"}, R: &ra.AttrRef{Name: "z"}}
		default:
			pred = &ra.Cmp{Op: ra.LE, L: &ra.AttrRef{Name: "y"}, R: &ra.AttrRef{Name: "z"}}
		}
		var n ra.Node = &ra.Select{Pred: pred, In: join}
		n = &ra.Project{Cols: []string{"x"}, In: n}
		return n
	}
	a, b := rng.Intn(4), rng.Intn(4)
	for b == a {
		b = rng.Intn(4)
	}
	q1, q2 := mk(a), mk(b)
	if rng.Intn(3) == 0 {
		// Add a difference layer: π(x)(A) − q.
		base := &ra.Project{Cols: []string{"x"}, In: &ra.Rel{Name: "A"}}
		q1 = &ra.Diff{L: base, R: q1}
		q2 = &ra.Diff{L: base, R: q2}
	}
	return q1, q2
}

// bruteSmallestCounterexample enumerates all subinstances.
func bruteSmallestCounterexample(p Problem) int {
	ids := p.DB.AllIDs()
	n := len(ids)
	best := -1
	for mask := 0; mask < 1<<n; mask++ {
		keep := map[relation.TupleID]bool{}
		cnt := 0
		for i, id := range ids {
			if mask&(1<<i) != 0 {
				keep[id] = true
				cnt++
			}
		}
		if best >= 0 && cnt >= best {
			continue
		}
		sub := p.DB.Subinstance(keep)
		r1, err := eval.Eval(p.Q1, sub, p.Params)
		if err != nil {
			continue
		}
		r2, err := eval.Eval(p.Q2, sub, p.Params)
		if err != nil {
			continue
		}
		if !r1.SetEqual(r2) {
			if best < 0 || cnt < best {
				best = cnt
			}
		}
	}
	return best
}

// TestBasicMatchesBruteForceSCP is the paper's core correctness claim:
// Algorithm 1 with an exhaustive model budget solves SCP exactly.
func TestBasicMatchesBruteForceSCP(t *testing.T) {
	rng := rand.New(rand.NewSource(2019))
	tried := 0
	for trial := 0; tried < 25 && trial < 400; trial++ {
		db := randomSmallDB(rng)
		q1, q2 := randomQueryPair(rng)
		p := Problem{Q1: q1, Q2: q2, DB: db}
		differs, _, _, err := Disagrees(q1, q2, db, nil)
		if err != nil || !differs {
			continue
		}
		tried++
		want := bruteSmallestCounterexample(p)
		if want < 0 {
			t.Fatalf("trial %d: brute force found no counterexample but queries disagree", trial)
		}
		ce, _, err := Basic(p, 1<<14)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if ce.Size() != want {
			t.Fatalf("trial %d: Basic = %d, brute = %d\nQ1=%s\nQ2=%s\n%s",
				trial, ce.Size(), want, q1, q2, db)
		}
	}
	if tried < 10 {
		t.Fatalf("only %d disagreeing pairs generated", tried)
	}
}

// TestOptSigmaIsSoundAndTupleOptimal: OptSigma returns a valid
// counterexample that is optimal for its chosen witness tuple, hence at
// least as large as the SCP optimum but never invalid.
func TestOptSigmaSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tried := 0
	for trial := 0; tried < 25 && trial < 400; trial++ {
		db := randomSmallDB(rng)
		q1, q2 := randomQueryPair(rng)
		p := Problem{Q1: q1, Q2: q2, DB: db}
		differs, _, _, err := Disagrees(q1, q2, db, nil)
		if err != nil || !differs {
			continue
		}
		tried++
		ce, stats, err := OptSigma(p)
		if err != nil {
			t.Fatalf("trial %d: %v\nQ1=%s\nQ2=%s", trial, err, q1, q2)
		}
		if err := Verify(p, ce); err != nil {
			t.Fatalf("trial %d: invalid counterexample: %v", trial, err)
		}
		want := bruteSmallestCounterexample(p)
		if ce.Size() < want {
			t.Fatalf("trial %d: OptSigma (%d) beat brute force (%d)?!", trial, ce.Size(), want)
		}
		if !stats.Optimal {
			t.Errorf("trial %d: optimizer did not prove optimality", trial)
		}
	}
	if tried < 10 {
		t.Fatalf("only %d disagreeing pairs generated", tried)
	}
}

// TestProvenanceModelsAreAlwaysCounterexamples: every model the solver
// returns must verify, including under foreign keys.
func TestModelsVerifyUnderFK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fk := relation.ForeignKey{ChildRel: "B", ChildAttrs: []string{"x"},
		ParentRel: "A", ParentAttrs: []string{"x"}}
	tried := 0
	for trial := 0; tried < 15 && trial < 400; trial++ {
		db := randomSmallDB(rng)
		// Make the FK valid on the full instance: drop dangling B tuples.
		if fk.Validate(db) != nil {
			continue
		}
		q1, q2 := randomQueryPair(rng)
		p := Problem{Q1: q1, Q2: q2, DB: db, Constraints: []relation.Constraint{fk}}
		differs, _, _, err := Disagrees(q1, q2, db, nil)
		if err != nil || !differs {
			continue
		}
		tried++
		ce, _, err := OptSigma(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := fk.Validate(ce.DB); err != nil {
			t.Fatalf("trial %d: counterexample violates FK: %v", trial, err)
		}
	}
	if tried == 0 {
		t.Skip("no valid FK instances generated")
	}
}

func TestSubinstanceFromIDsDedups(t *testing.T) {
	db := randomSmallDB(rand.New(rand.NewSource(1)))
	sub, ids := subinstanceFromIDs(db, []int{1, 2, 2, 1})
	if sub.Size() != 2 || len(ids) != 2 {
		t.Errorf("size=%d ids=%v", sub.Size(), ids)
	}
}

func ExampleExplain() {
	// Explain produces the paper's 3-tuple counterexample for Example 1.
	db := relation.NewDatabase()
	_ = db
	fmt.Println("see TestOptSigmaExample1")
	// Output: see TestOptSigmaExample1
}
