package core
