package core

import (
	"testing"

	"repro/internal/ra"
	"repro/internal/raparser"
	"repro/internal/testdb"
)

func TestJUStarSWP(t *testing.T) {
	db := testdb.Example1DB()
	q1 := raparser.MustParse(
		"project[name](select[dept = 'CS'](Registration)) union project[name](select[dept = 'ECON'](Registration))")
	q2 := raparser.MustParse("project[name](select[dept = 'PHYS'](Registration))")
	p := Problem{Q1: q1, Q2: q2, DB: db}
	ce, stats, err := JUStarSWP(p)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Size() != 1 {
		t.Errorf("size = %d, want 1 (one registration suffices)", ce.Size())
	}
	if !stats.Optimal {
		t.Error("JU* algorithm is exact")
	}
	// Agreement with the general algorithms.
	ce2, _, err := OptSigma(p)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Size() != ce2.Size() {
		t.Errorf("JU* (%d) disagrees with OptSigma (%d)", ce.Size(), ce2.Size())
	}
	ce3, _, err := MonotoneSWP(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Size() != ce3.Size() {
		t.Errorf("JU* (%d) disagrees with MonotoneDNF (%d)", ce.Size(), ce3.Size())
	}
}

func TestJUStarSWPRejects(t *testing.T) {
	db := testdb.Example1DB()
	// Union below join: not JU*.
	q := &ra.Join{
		L: &ra.Union{
			L: raparser.MustParse("project[name](Student)"),
			R: raparser.MustParse("project[name](Registration)")},
		R: raparser.MustParse("project[name](Student)"),
	}
	p := Problem{Q1: q, Q2: raparser.MustParse("project[name](select[major = 'NONE'](Student))"), DB: db}
	if _, _, err := JUStarSWP(p); err == nil {
		t.Error("non-JU* query should be rejected")
	}
	// Non-monotone: rejected.
	p2 := Problem{Q1: testdb.Q1(), Q2: testdb.Q2(), DB: db}
	if _, _, err := JUStarSWP(p2); err == nil {
		t.Error("non-monotone query should be rejected")
	}
}

func TestUnionLeaves(t *testing.T) {
	q := raparser.MustParse("(A union B) union (C union D)")
	leaves := unionLeaves(q)
	if len(leaves) != 4 {
		t.Fatalf("leaves = %d, want 4", len(leaves))
	}
	names := []string{"A", "B", "C", "D"}
	for i, l := range leaves {
		if r, ok := l.(*ra.Rel); !ok || r.Name != names[i] {
			t.Errorf("leaf %d = %v", i, l)
		}
	}
	// Rename distributes over union leaves.
	q2 := raparser.MustParse("rename[x](A union B)")
	leaves2 := unionLeaves(q2)
	if len(leaves2) != 2 {
		t.Fatalf("rename leaves = %d", len(leaves2))
	}
	if _, ok := leaves2[0].(*ra.Rename); !ok {
		t.Error("rename should wrap each leaf")
	}
}
