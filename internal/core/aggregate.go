package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/boolexpr"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/sat"
	"repro/internal/smt"
)

// AggOptions configure the aggregate algorithms.
type AggOptions struct {
	// Parameterize keeps HAVING thresholds symbolic (Section 5.3.1,
	// Definition 3: smallest parameterized counterexample).
	Parameterize bool
	// MaxGroups bounds how many candidate groups are tried (smallest
	// first); 0 means 4.
	MaxGroups int
	// MaxNodes bounds the branch-and-bound solver (0 = package default).
	MaxNodes int64
	// MaxRetries bounds AggOpt's model re-enumeration loop (0 = 64).
	MaxRetries int
}

// AggBasic implements the provenance-for-aggregate-queries approach of
// Section 5.2: encode, for a candidate output group, "the group's presence
// differs between Q1 and Q2, or some aggregate value differs" as a symbolic
// constraint over the tuple variables (Table 2 / Listing 2) and minimize
// the number of kept tuples with the optimizing solver.
//
// With opts.Parameterize it solves the smallest parameterized
// counterexample problem instead (Section 5.3.1): HAVING thresholds become
// symbolic integer parameters chosen by the solver.
func AggBasic(p Problem, opts AggOptions) (*Counterexample, *Stats, error) {
	name := "Agg-Basic"
	if opts.Parameterize {
		name = "Agg-Param"
	}
	stats := &Stats{Algorithm: name}
	start := time.Now()
	if err := p.interrupted(); err != nil {
		return nil, nil, err
	}

	q1, q2 := p.Q1, p.Q2
	origParams := p.Params
	if opts.Parameterize {
		var o1, o2 map[string]relation.Value
		q1, o1 = ParameterizeHaving(q1)
		q2, o2 = ParameterizeHaving(q2)
		merged := map[string]relation.Value{}
		for k, v := range origParams {
			merged[k] = v
		}
		for k, v := range o1 {
			merged[k] = v
		}
		for k, v := range o2 {
			merged[k] = v
		}
		origParams = merged
	}

	t0 := time.Now()
	differs, d12, d21, err := disagreesOpts(q1, q2, p.DB, origParams, p.engineOpts())
	if err != nil {
		return nil, nil, err
	}
	stats.RawEvalTime = time.Since(t0)
	if !differs {
		return nil, nil, ErrQueriesAgree
	}
	if err := p.interrupted(); err != nil {
		return nil, nil, err
	}

	// Aggregate provenance. When parameterizing, the HAVING parameters are
	// withheld from the binding so they stay symbolic.
	provParams := origParams
	var paramNames []string
	if opts.Parameterize {
		provParams = map[string]relation.Value{}
		for k, v := range origParams {
			provParams[k] = v
		}
		for _, n := range append(ra.CollectParams(q1), ra.CollectParams(q2)...) {
			delete(provParams, n)
			paramNames = append(paramNames, n)
		}
	}
	t0 = time.Now()
	ap1, err := evalAggProvHaving(q1, p.DB, provParams, origParams)
	if err != nil {
		return nil, nil, err
	}
	ap2, err := evalAggProvHaving(q2, p.DB, provParams, origParams)
	if err != nil {
		return nil, nil, err
	}
	stats.ProvEvalTime = time.Since(t0)

	// Candidate groups: keys present in either side. Groups whose concrete
	// output rows already differ come first (they are certain to admit a
	// counterexample under the original parameters); within each class the
	// smallest group is tried first (the paper picks the group with the
	// fewest tuples for tractability).
	differKeys := map[string]bool{}
	for _, rel := range []*relation.Relation{d12, d21} {
		ap := ap1
		if rel == d21 {
			ap = ap2
		}
		keyCols := ap.GroupKeyCols()
		for _, tup := range rel.Tuples {
			// The output tuple's non-aggregate columns locate its group.
			key := make(relation.Tuple, 0, len(keyCols))
			for pos, c := range ap.OutCols {
				if !c.IsAgg && pos < len(tup) {
					key = append(key, tup[pos])
				}
			}
			// Map output key back to the full group key when the
			// projection kept all group columns in order; otherwise match
			// by scanning.
			for _, g := range ap.Groups {
				if projectedKey(g, ap).Key() == key.Key() {
					differKeys[g.Key.Key()] = true
				}
			}
		}
	}
	type cand struct {
		key     relation.Tuple
		size    int
		differs bool
	}
	var cands []cand
	seen := map[string]bool{}
	for _, ap := range []*eval.AggProvResult{ap1, ap2} {
		for _, g := range ap.Groups {
			ks := g.Key.Key()
			if seen[ks] {
				continue
			}
			seen[ks] = true
			size := g.Size
			if o := otherGroup(ap1, ap2, ap, g.Key); o != nil && o.Size > size {
				size = o.Size
			}
			cands = append(cands, cand{key: g.Key, size: size, differs: differKeys[ks]})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].differs != cands[j].differs {
			return cands[i].differs
		}
		return cands[i].size < cands[j].size
	})
	maxGroups := opts.MaxGroups
	if maxGroups <= 0 {
		maxGroups = 4
	}
	if len(cands) > maxGroups {
		cands = cands[:maxGroups]
	}

	var specs []smt.ParamSpec
	if opts.Parameterize {
		specs = paramSpecs(paramNames, origParams)
	}

	fks := p.ForeignKeys()
	t0 = time.Now()
	// Solve every candidate group first, then accept/reject the solved
	// candidates together through the batch layer. Aggregate plans (and
	// parameterized candidates) make verifyCandidates fall back to
	// per-candidate Verify — the γ fallback of the batched accept-reject —
	// so the decisions match the old one-at-a-time loop exactly.
	var pending []*Counterexample
	for _, c := range cands {
		if err := p.interrupted(); err != nil {
			return nil, nil, err
		}
		g1 := ap1.GroupByKey(c.key)
		g2 := ap2.GroupByKey(c.key)
		f := groupDisagreement(g1, g2, ap1, ap2)
		f = addFKFormulas(f, p.DB, fks)
		res := smt.Solve(smt.Problem{Formula: f, Params: specs, MaxNodes: opts.MaxNodes, Stop: p.stopFunc()})
		stats.ModelsTried++
		if res.Status != smt.Optimal && res.Status != smt.Feasible {
			if res.Status == smt.Unknown {
				stats.TimedOut = true
			}
			continue
		}
		stats.Optimal = res.Status == smt.Optimal
		var ids []int
		for v, val := range res.Assign {
			if val {
				ids = append(ids, v)
			}
		}
		sort.Ints(ids)
		ids, err := fkClose(ids, p.DB, fks)
		if err != nil {
			return nil, nil, err
		}
		sub, tids := subinstanceFromIDs(p.DB, ids)
		ce := &Counterexample{DB: sub, IDs: tids, Witness: c.key, Q1: q1, Q2: q2}
		if opts.Parameterize {
			ce.Params = map[string]relation.Value{}
			for k, v := range origParams {
				ce.Params[k] = v
			}
			for k, v := range res.Params {
				ce.Params[k] = floatValue(v)
			}
		} else if len(origParams) > 0 {
			ce.Params = origParams
		}
		pending = append(pending, ce)
	}
	// The rebuilt problem must keep the caller's budget fields, or the
	// verification phase would escape the request's deadline and caps.
	verifyProblem := Problem{Q1: q1, Q2: q2, DB: p.DB, Constraints: p.Constraints, Params: origParams,
		Ctx: p.Ctx, MaxConflicts: p.MaxConflicts, MaxRows: p.MaxRows}
	// The aggregate candidates carry their own parameter settings, which the
	// per-problem prepared state cannot answer: no shared checker here.
	oks := verifyCandidates(verifyProblem, nil, pending)
	var best *Counterexample
	for i, ce := range pending {
		if !oks[i] {
			continue
		}
		if best == nil || ce.Size() < best.Size() {
			best = ce
		}
	}
	stats.SolverTime = time.Since(t0)
	stats.TotalTime = time.Since(start)
	if best == nil {
		if err := p.interrupted(); err != nil {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("core: %s found no verifying counterexample", name)
	}
	stats.WitnessSize = best.Size()
	return best, stats, nil
}

// evalAggProvHaving computes aggregate provenance, using symParams for the
// symbolic HAVING translation while the inner query is evaluated under the
// full parameter binding when it needs parameters of its own.
func evalAggProvHaving(q ra.Node, db *relation.Database, symParams, fullParams map[string]relation.Value) (*eval.AggProvResult, error) {
	res, err := eval.EvalAggProv(q, db, symParams)
	if err == nil {
		return res, nil
	}
	// The inner query may reference withheld parameters; retry fully bound.
	return eval.EvalAggProv(q, db, fullParams)
}

// projectedKey returns a group's non-aggregate output columns (the values
// by which its output row is identified after projection).
func projectedKey(g *eval.AggGroup, ap *eval.AggProvResult) relation.Tuple {
	var out relation.Tuple
	for _, c := range ap.OutCols {
		if !c.IsAgg {
			out = append(out, g.Key[c.Idx])
		}
	}
	return out
}

func otherGroup(ap1, ap2, this *eval.AggProvResult, key relation.Tuple) *eval.AggGroup {
	if this == ap1 {
		return ap2.GroupByKey(key)
	}
	return ap1.GroupByKey(key)
}

// groupDisagreement builds the Listing 2 constraint for one group key:
// presence in exactly one result, or presence in both with some compared
// aggregate value differing.
func groupDisagreement(g1, g2 *eval.AggGroup, ap1, ap2 *eval.AggProvResult) smt.Formula {
	p1 := smt.Formula(&smt.FConst{Val: false})
	if g1 != nil {
		p1 = g1.Presence()
	}
	p2 := smt.Formula(&smt.FConst{Val: false})
	if g2 != nil {
		p2 = g2.Presence()
	}
	onlyOne := smt.Or(smt.And(p1, smt.Not(p2)), smt.And(smt.Not(p1), p2))
	if g1 == nil || g2 == nil {
		return onlyOne
	}
	// Pair aggregate output columns positionally.
	var diffs []smt.Formula
	n := len(ap1.OutCols)
	if len(ap2.OutCols) < n {
		n = len(ap2.OutCols)
	}
	for i := 0; i < n; i++ {
		c1, c2 := ap1.OutCols[i], ap2.OutCols[i]
		if !c1.IsAgg || !c2.IsAgg {
			continue
		}
		diffs = append(diffs, &smt.FCmp{Op: ra.NE, L: smt.AggOp(g1.Aggs[c1.Idx]), R: smt.AggOp(g2.Aggs[c2.Idx])})
	}
	if len(diffs) == 0 {
		return onlyOne
	}
	return smt.Or(onlyOne, smt.And(p1, p2, smt.Or(diffs...)))
}

// addFKFormulas conjoins child→parent implications for every tuple variable
// reachable in the formula (Section 4.3), to a fixpoint.
func addFKFormulas(f smt.Formula, db *relation.Database, fks []relation.ForeignKey) smt.Formula {
	if len(fks) == 0 {
		return f
	}
	parentMaps := make([]map[relation.TupleID][]relation.TupleID, len(fks))
	for i, fk := range fks {
		m, err := fk.ParentsOf(db)
		if err != nil {
			return f
		}
		parentMaps[i] = m
	}
	processed := map[int]bool{}
	out := f
	frontier := smt.FormulaVars(f)
	for len(frontier) > 0 {
		var next []int
		for _, id := range frontier {
			if processed[id] {
				continue
			}
			processed[id] = true
			for _, m := range parentMaps {
				if ps, ok := m[relation.TupleID(id)]; ok {
					kids := []*boolexpr.Expr{boolexpr.Not(boolexpr.Var(id))}
					for _, pid := range ps {
						kids = append(kids, boolexpr.Var(int(pid)))
						if !processed[int(pid)] {
							next = append(next, int(pid))
						}
					}
					out = smt.And(out, &smt.FProv{E: boolexpr.Or(kids...)})
				}
			}
		}
		frontier = next
	}
	return out
}

// ParameterizeHaving replaces constant thresholds compared against
// aggregate columns in HAVING predicates with named parameters, returning
// the rewritten query and the original parameter values. Parameter names
// are derived from the constant value so that identical thresholds in two
// queries unify (as with @numCS in Example 6).
func ParameterizeHaving(q ra.Node) (ra.Node, map[string]relation.Value) {
	spec, ok := ra.MatchTopAggregate(q)
	if !ok || len(spec.Havings) == 0 {
		return q, nil
	}
	aggNames := map[string]bool{}
	for _, a := range spec.Group.Aggs {
		aggNames[a.As] = true
	}
	orig := map[string]relation.Value{}
	var rewriteExpr func(e ra.Expr) ra.Expr
	rewriteExpr = func(e ra.Expr) ra.Expr {
		switch x := e.(type) {
		case *ra.Cmp:
			l, lAgg := x.L.(*ra.AttrRef)
			rc, rConst := x.R.(*ra.Const)
			if lAgg && rConst && aggNames[relation.BaseName(l.Name)] && rc.Val.IsNumeric() {
				name := fmt.Sprintf("p_%s", sanitize(rc.Val.String()))
				orig[name] = rc.Val
				return &ra.Cmp{Op: x.Op, L: x.L, R: &ra.Param{Name: name}}
			}
			lc, lConst := x.L.(*ra.Const)
			r, rAgg := x.R.(*ra.AttrRef)
			if lConst && rAgg && aggNames[relation.BaseName(r.Name)] && lc.Val.IsNumeric() {
				name := fmt.Sprintf("p_%s", sanitize(lc.Val.String()))
				orig[name] = lc.Val
				return &ra.Cmp{Op: x.Op, L: &ra.Param{Name: name}, R: x.R}
			}
			return x
		case *ra.And:
			kids := make([]ra.Expr, len(x.Kids))
			for i, k := range x.Kids {
				kids[i] = rewriteExpr(k)
			}
			return &ra.And{Kids: kids}
		case *ra.Or:
			kids := make([]ra.Expr, len(x.Kids))
			for i, k := range x.Kids {
				kids[i] = rewriteExpr(k)
			}
			return &ra.Or{Kids: kids}
		case *ra.Not:
			return &ra.Not{Kid: rewriteExpr(x.Kid)}
		}
		return e
	}

	// Rebuild the query with rewritten HAVING layers.
	var node ra.Node = spec.Group
	for i := len(spec.Havings) - 1; i >= 0; i-- {
		node = &ra.Select{Pred: rewriteExpr(spec.Havings[i].Pred), In: node}
	}
	if spec.Proj != nil {
		node = &ra.Project{Cols: spec.Proj.Cols, In: node}
	}
	if len(orig) == 0 {
		return q, nil
	}
	return node, orig
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			out = append(out, c)
		} else {
			out = append(out, '_')
		}
	}
	return string(out)
}

// paramSpecs derives the finite candidate domains of the parameterized
// thresholds: small values that let tiny groups pass the HAVING filter plus
// the original threshold (so the "no change" setting is always available).
func paramSpecs(names []string, orig map[string]relation.Value) []smt.ParamSpec {
	uniq := map[string]bool{}
	var specs []smt.ParamSpec
	for _, n := range names {
		if uniq[n] {
			continue
		}
		uniq[n] = true
		cands := []float64{0, 1, 2, 3}
		if v, ok := orig[n]; ok && v.IsNumeric() {
			cands = append(cands, v.AsFloat())
		}
		specs = append(specs, smt.ParamSpec{Name: n, Candidates: cands})
	}
	return specs
}

func floatValue(f float64) relation.Value {
	if f == float64(int64(f)) {
		return relation.Int(int64(f))
	}
	return relation.Float(f)
}

// AggOpt implements the heuristic Algorithm 3 (Agg-Opt): strip the
// aggregation, find a differing tuple of the pre-aggregation queries
// Q'1 − Q'2, minimize its witness with the SPJUD machinery, pick HAVING
// parameters that let the shrunken groups pass, and re-enumerate models
// until the original aggregate queries disagree on the candidate.
func AggOpt(p Problem, opts AggOptions) (*Counterexample, *Stats, error) {
	stats := &Stats{Algorithm: "Agg-Opt"}
	start := time.Now()
	if err := p.interrupted(); err != nil {
		return nil, nil, err
	}
	maxRetries := opts.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 64
	}

	// Parameterize constant HAVING thresholds so the heuristic may relax
	// them (Section 5.3.2).
	q1, o1 := ParameterizeHaving(p.Q1)
	q2, o2 := ParameterizeHaving(p.Q2)
	origParams := map[string]relation.Value{}
	for k, v := range p.Params {
		origParams[k] = v
	}
	for k, v := range o1 {
		origParams[k] = v
	}
	for k, v := range o2 {
		origParams[k] = v
	}

	spec1, ok1 := ra.MatchTopAggregate(q1)
	spec2, ok2 := ra.MatchTopAggregate(q2)
	if !ok1 || !ok2 {
		return nil, nil, fmt.Errorf("core: AggOpt requires both queries of shape π? σ* γ(Q')")
	}
	inner1, inner2 := spec1.Inner, spec2.Inner

	t0 := time.Now()
	r1, err := engine.EvalOpts(inner1, p.DB, origParams, p.engineOpts())
	if err != nil {
		return nil, nil, err
	}
	r2, err := engine.EvalOpts(inner2, p.DB, origParams, p.engineOpts())
	if err != nil {
		return nil, nil, err
	}
	stats.RawEvalTime = time.Since(t0)
	if err := p.interrupted(); err != nil {
		return nil, nil, err
	}

	d12 := r1.SetDiff(r2)
	d21 := r2.SetDiff(r1)
	qa, qb := inner1, inner2
	diff := d12
	if diff.Len() == 0 {
		qa, qb = inner2, inner1
		diff = d21
	}
	if diff.Len() == 0 {
		// The pre-aggregation queries agree; the disagreement comes from
		// grouping or HAVING alone. Fall back to the provenance-based
		// aggregate algorithm.
		ce, st, err := AggBasic(p, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("core: AggOpt fallback to AggBasic failed: %v", err)
		}
		st.Algorithm = "Agg-Opt(fallback)"
		return ce, st, err
	}
	t := diff.Tuples[0]

	t0 = time.Now()
	pushed := PushDownTupleSelection(&ra.Diff{L: qa, R: qb}, t, p.DB)
	ann, err := engine.EvalProvOpts(pushed, p.DB, origParams, p.engineOpts())
	if err != nil {
		return nil, nil, err
	}
	i := ann.Lookup(t)
	if i < 0 {
		return nil, nil, fmt.Errorf("core: tuple %v missing after pushdown", t)
	}
	prov := ann.Anns[i]
	stats.ProvEvalTime = time.Since(t0)

	fks := p.ForeignKeys()
	t0 = time.Now()
	b, counted, varToID, err := buildCNF(prov, p.DB, fks)
	if err != nil {
		return nil, nil, err
	}

	verifyProblem := Problem{Q1: q1, Q2: q2, DB: p.DB, Constraints: p.Constraints, Params: origParams,
		Ctx: p.Ctx, MaxConflicts: p.MaxConflicts, MaxRows: p.MaxRows}
	var result *Counterexample
	// The model loop stays adaptive — each candidate's acceptance decides
	// whether the solver enumerates another model, so verifying one at a
	// time (stopping at the first success) beats any batch width here.
	// Batching would not help anyway: every candidate carries its own
	// chosen HAVING parameters and query rewrites, the case the batch
	// layer's γ fallback hands back to per-candidate Verify.
	err = forEachWitnessModel(b, counted, varToID, maxRetries, p.stopFunc(), func(ids []int) bool {
		stats.ModelsTried++
		closed, ferr := fkClose(ids, p.DB, fks)
		if ferr != nil {
			return true
		}
		sub, tids := subinstanceFromIDs(p.DB, closed)
		ce := &Counterexample{DB: sub, IDs: tids, Witness: t, Q1: q1, Q2: q2}
		// Choose parameter values that let the shrunken groups pass the
		// HAVING thresholds (the paper's per-aggregate heuristic).
		ce.Params = chooseParams(p, q1, q2, sub, origParams)
		if Verify(verifyProblem, ce) == nil {
			result = ce
			return true
		}
		return false
	})
	stats.SolverTime = time.Since(t0)
	stats.TotalTime = time.Since(start)
	if err != nil {
		return nil, nil, err
	}
	if result == nil {
		if err := p.interrupted(); err != nil {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("core: AggOpt found no verifying counterexample within %d models", maxRetries)
	}
	stats.WitnessSize = result.Size()
	return result, stats, nil
}

// forEachWitnessModel yields witness models smallest-first: first the
// min-ones optimum, then successive distinct models by blocking clauses.
// yield returns true to stop; stop (may be nil) aborts the solver on
// budget expiry.
func forEachWitnessModel(b *boolexpr.CNFBuilder, counted []int, varToID map[int]int, max int, stop func() bool, yield func(ids []int) bool) error {
	s := sat.New()
	s.Stop = stop
	s.EnsureVars(b.NumVars)
	for _, c := range b.Clauses {
		if err := s.AddClause(c...); err != nil {
			return nil // formula inconsistent: no models
		}
	}
	nextModel := func() ([]int, bool) {
		if s.Solve() != sat.Sat {
			return nil, false
		}
		var ids []int
		for _, v := range counted {
			if s.Value(v) {
				ids = append(ids, varToID[v])
			}
		}
		return ids, true
	}
	for n := 0; n < max; n++ {
		ids, ok := nextModel()
		if !ok {
			return nil
		}
		if yield(ids) {
			return nil
		}
		// Block this projection on the counted variables.
		block := make([]int, 0, len(counted))
		for _, v := range counted {
			if s.Value(v) {
				block = append(block, -v)
			} else {
				block = append(block, v)
			}
		}
		if err := s.AddClause(block...); err != nil {
			return nil
		}
	}
	return nil
}

// chooseParams picks HAVING parameter values for a candidate subinstance:
// for each parameterized threshold it takes the smallest aggregate value
// realized by the candidate's groups, adjusted so the comparison passes
// (the COUNT/SUM/MIN/MAX/AVG heuristics of Section 5.3.2).
func chooseParams(p Problem, q1, q2 ra.Node, sub *relation.Database, orig map[string]relation.Value) map[string]relation.Value {
	out := map[string]relation.Value{}
	for k, v := range orig {
		out[k] = v
	}
	for _, q := range []ra.Node{q1, q2} {
		spec, ok := ra.MatchTopAggregate(q)
		if !ok {
			continue
		}
		// Aggregate the candidate instance without HAVING, under the
		// request budget: this runs once per solver model, so an unbudgeted
		// pass here could outlive the deadline on large candidates.
		grouped, err := engine.EvalOpts(spec.Group, sub, out, p.engineOpts())
		if err != nil || grouped.Len() == 0 {
			continue
		}
		aggPos := map[string]int{}
		for i, a := range spec.Group.Aggs {
			aggPos[a.As] = len(spec.Group.GroupCols) + i
		}
		for _, sel := range spec.Havings {
			assignParamsFromPred(sel.Pred, grouped, aggPos, out)
		}
	}
	return out
}

func assignParamsFromPred(e ra.Expr, grouped *relation.Relation, aggPos map[string]int, out map[string]relation.Value) {
	switch x := e.(type) {
	case *ra.And:
		for _, k := range x.Kids {
			assignParamsFromPred(k, grouped, aggPos, out)
		}
	case *ra.Or:
		for _, k := range x.Kids {
			assignParamsFromPred(k, grouped, aggPos, out)
		}
	case *ra.Not:
		assignParamsFromPred(x.Kid, grouped, aggPos, out)
	case *ra.Cmp:
		attr, pok := x.L.(*ra.AttrRef)
		param, qok := x.R.(*ra.Param)
		op := x.Op
		if !pok || !qok {
			param, qok = x.L.(*ra.Param)
			attr, pok = x.R.(*ra.AttrRef)
			op = op.Negate() // param op' agg  ≡  agg op param with flipped op... see below
			if !pok || !qok {
				return
			}
			// For param ⊙ agg we want agg ⊙' param with the mirrored
			// operator (e.g. p <= agg ≡ agg >= p).
			switch x.Op {
			case ra.LT:
				op = ra.GT
			case ra.LE:
				op = ra.GE
			case ra.GT:
				op = ra.LT
			case ra.GE:
				op = ra.LE
			default:
				op = x.Op
			}
		}
		pos, ok := aggPos[relation.BaseName(attr.Name)]
		if !ok || pos >= grouped.Schema.Arity() {
			return
		}
		// Smallest aggregate value across the candidate's groups.
		var best relation.Value
		for _, t := range grouped.Tuples {
			v := t[pos]
			if v.IsNull() || !v.IsNumeric() {
				continue
			}
			if best.IsNull() {
				best = v
				continue
			}
			if c, ok := v.Compare(best); ok && c < 0 {
				best = v
			}
		}
		if best.IsNull() {
			return
		}
		val := best.AsFloat()
		switch op {
		case ra.EQ, ra.GE, ra.LE:
			out[param.Name] = floatValue(val)
		case ra.GT:
			out[param.Name] = floatValue(val - 1)
		case ra.LT:
			out[param.Name] = floatValue(val + 1)
		case ra.NE:
			out[param.Name] = floatValue(val + 1)
		}
	}
}
