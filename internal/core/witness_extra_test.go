package core

import (
	"math/rand"
	"testing"

	"repro/internal/testdb"
)

func TestOptSigmaAllExample1(t *testing.T) {
	p := example1Problem()
	ce, stats, err := OptSigmaAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Size() != 3 {
		t.Errorf("size = %d, want 3", ce.Size())
	}
	if !stats.Optimal {
		t.Error("OptSigmaAll is exact")
	}
	if stats.ModelsTried == 0 {
		t.Error("no solver calls recorded")
	}
}

// OptSigmaAll solves SCP exactly: it must match the brute force optimum on
// random small instances, and always lower-bound OptSigma.
func TestOptSigmaAllMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tried := 0
	for trial := 0; tried < 20 && trial < 400; trial++ {
		db := randomSmallDB(rng)
		q1, q2 := randomQueryPair(rng)
		p := Problem{Q1: q1, Q2: q2, DB: db}
		differs, _, _, err := Disagrees(q1, q2, db, nil)
		if err != nil || !differs {
			continue
		}
		tried++
		want := bruteSmallestCounterexample(p)
		ceAll, _, err := OptSigmaAll(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if ceAll.Size() != want {
			t.Fatalf("trial %d: OptSigmaAll=%d brute=%d", trial, ceAll.Size(), want)
		}
		ceOne, _, err := OptSigma(p)
		if err != nil {
			t.Fatal(err)
		}
		if ceOne.Size() < ceAll.Size() {
			t.Fatalf("trial %d: single-tuple SWP beat global SCP", trial)
		}
	}
	if tried < 10 {
		t.Fatalf("only %d pairs", tried)
	}
}

func TestOptSigmaAllWithFKs(t *testing.T) {
	p := example1Problem()
	p.Constraints = testdb.Constraints()
	ce, _, err := OptSigmaAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, ce); err != nil {
		t.Errorf("invalid: %v", err)
	}
}
