package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/ra"
	"repro/internal/relation"
)

// randomSessionUpdate draws a small instance revision against the session's
// live ids: deletions, insertions into A/B, and updates as delete+insert.
func randomSessionUpdate(rng *rand.Rand, live []relation.TupleID) SessionUpdate {
	var up SessionUpdate
	for i := rng.Intn(2); i > 0 && len(live) > 0; i-- {
		up.Remove = append(up.Remove, live[rng.Intn(len(live))])
	}
	for i := rng.Intn(3); i > 0; i-- {
		if rng.Intn(2) == 0 {
			up.Insert = append(up.Insert, engine.Insert{Rel: "A", Tuple: relation.NewTuple(
				relation.Int(int64(rng.Intn(4))), relation.Int(int64(rng.Intn(3))))})
		} else {
			up.Insert = append(up.Insert, engine.Insert{Rel: "B", Tuple: relation.NewTuple(
				relation.Int(int64(rng.Intn(4))), relation.Int(int64(rng.Intn(3))))})
		}
	}
	return up
}

// checkSessionGrade compares the session's grade against a from-scratch
// evaluation of its materialized live instance.
func checkSessionGrade(t *testing.T, trial, step int, s *LiveSession, q1 ra.Node) {
	t.Helper()
	g, err := s.Grade(context.Background())
	if err != nil {
		t.Fatalf("trial %d step %d: Grade: %v", trial, step, err)
	}
	disagree, r12, r21, err := Disagrees(q1, s.Query2(), s.CurrentDB(), nil)
	if err != nil {
		t.Fatalf("trial %d step %d: scratch: %v", trial, step, err)
	}
	if g.Agree != !disagree || g.Size12 != r12.Len() || g.Size21 != r21.Len() {
		t.Fatalf("trial %d step %d: grade mismatch: got agree=%v sizes=(%d,%d), want agree=%v sizes=(%d,%d)",
			trial, step, g.Agree, g.Size12, g.Size21, !disagree, r12.Len(), r21.Len())
	}
	if s.BaseSize() != s.CurrentDB().Size() {
		t.Fatalf("trial %d step %d: BaseSize %d != materialized size %d", trial, step, s.BaseSize(), s.CurrentDB().Size())
	}
}

// TestLiveSessionDifferential drives random sessions through interleaved
// instance updates, query revisions, and minimizations, checking every
// grade against a from-scratch evaluation.
func TestLiveSessionDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	incremental := 0
	for trial := 0; trial < 50; trial++ {
		db := randomSmallDB(rng)
		q1, q2 := randomQueryPair(rng)
		s, err := NewLiveSession(Problem{Q1: q1, Q2: q2, DB: db})
		if err != nil {
			t.Fatalf("trial %d: NewLiveSession: %v", trial, err)
		}
		if s.Incremental() {
			incremental++
		}
		checkSessionGrade(t, trial, -1, s, q1)
		for step := 0; step < 6; step++ {
			prevEpoch := s.Epoch()
			if step == 3 {
				// Query edit: plan shape changes, state must re-prepare.
				_, alt := randomQueryPair(rng)
				path, err := s.ReviseQuery(context.Background(), alt)
				if err != nil {
					t.Fatalf("trial %d step %d: ReviseQuery: %v", trial, step, err)
				}
				if path != PathReprepare {
					t.Fatalf("trial %d step %d: ReviseQuery path %q", trial, step, path)
				}
			} else {
				up := randomSessionUpdate(rng, s.CurrentDB().AllIDs())
				path, err := s.Update(context.Background(), up)
				if err != nil {
					t.Fatalf("trial %d step %d: Update: %v", trial, step, err)
				}
				if s.Incremental() && path != PathIncremental {
					t.Fatalf("trial %d step %d: incremental session took path %q", trial, step, path)
				}
			}
			if s.Epoch() != prevEpoch+1 {
				t.Fatalf("trial %d step %d: epoch did not advance", trial, step)
			}
			checkSessionGrade(t, trial, step, s, q1)
		}
		// When the final state disagrees, the session minimizes to a
		// verified counterexample over its live instance.
		if g, _ := s.Grade(context.Background()); !g.Agree {
			ce, _, err := s.Minimize(context.Background())
			if err != nil {
				t.Fatalf("trial %d: Minimize: %v", trial, err)
			}
			p := Problem{Q1: q1, Q2: s.Query2(), DB: s.CurrentDB()}
			if err := Verify(p, ce); err != nil {
				t.Fatalf("trial %d: minimized counterexample failed verification: %v", trial, err)
			}
		}
	}
	if incremental < 40 {
		t.Fatalf("only %d/50 sessions took the incremental path", incremental)
	}
}

// TestLiveSessionFallback: a plan pair the delta subsystem refuses
// (derivation counts past the exact-arithmetic bound) still grades
// correctly through the fallback path.
func TestLiveSessionFallback(t *testing.T) {
	db := relation.NewDatabase()
	db.CreateRelation("R", relation.NewSchema(relation.Attr("a", relation.KindInt)))
	db.CreateRelation("S", relation.NewSchema(relation.Attr("a", relation.KindInt)))
	for i := 0; i < 2; i++ {
		db.Insert("R", relation.NewTuple(relation.Int(1)))
	}
	db.Insert("S", relation.NewTuple(relation.Int(1)))
	var tower ra.Node = &ra.Rel{Name: "R"}
	for i := 0; i < 5; i++ {
		tower = &ra.Join{L: tower, R: tower} // counts reach 2^32: refused
	}
	s, err := NewLiveSession(Problem{Q1: tower, Q2: &ra.Rel{Name: "S"}, DB: db})
	if err != nil {
		t.Fatalf("NewLiveSession: %v", err)
	}
	if s.Incremental() {
		t.Fatal("saturating tower unexpectedly prepared incrementally")
	}
	path, err := s.Update(context.Background(), SessionUpdate{
		Insert: []engine.Insert{{Rel: "R", Tuple: relation.NewTuple(relation.Int(2))}},
	})
	if err != nil || path != PathFallback {
		t.Fatalf("fallback Update: path=%q err=%v", path, err)
	}
	g, err := s.Grade(context.Background())
	if err != nil {
		t.Fatalf("Grade: %v", err)
	}
	if g.Agree {
		t.Fatal("tower and S agree after insert — expected disagreement")
	}
	if s.BaseSize() != 4 {
		t.Fatalf("BaseSize: got %d, want 4", s.BaseSize())
	}
	// Bad insertions are rejected without state change in fallback too.
	if _, err := s.Update(context.Background(), SessionUpdate{
		Insert: []engine.Insert{{Rel: "nope", Tuple: relation.NewTuple(relation.Int(0))}},
	}); err == nil {
		t.Fatal("insert into unknown relation succeeded in fallback mode")
	}
	if s.BaseSize() != 4 {
		t.Fatalf("failed update changed BaseSize to %d", s.BaseSize())
	}
}

// TestLiveSessionBudget: an expired context surfaces ErrBudget from the
// session's evaluation paths without corrupting state.
func TestLiveSessionBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randomSmallDB(rng)
	q1, q2 := randomQueryPair(rng)
	s, err := NewLiveSession(Problem{Q1: q1, Q2: q2, DB: db})
	if err != nil {
		t.Fatalf("NewLiveSession: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.Minimize(ctx); !errors.Is(err, ErrBudget) {
		t.Fatalf("Minimize under dead context: got %v, want ErrBudget", err)
	}
	// The session still works under a live context.
	if _, err := s.Grade(context.Background()); err != nil {
		t.Fatalf("Grade after budget failure: %v", err)
	}
}
