// Package core implements the paper's contribution: algorithms for the
// smallest counterexample problem (SCP) and smallest witness problem (SWP)
// of Section 2, including
//
//   - [Basic] (Algorithm 1): SAT-model enumeration over how-provenance;
//   - [OptSigma] (Algorithm 2): selection pushdown plus an optimizing
//     solver, and [OptSigmaAll], its exact whole-difference variant;
//   - poly-time algorithms for the tractable classes of Table 1
//     ([MonotoneSWP] for SJ/SPU/SPJU via DNF, [JUStarSWP], [SPJUDStarSWP]);
//   - the aggregate-query algorithms of Section 5: [AggBasic] (provenance
//     for aggregates), Agg-Param (smallest parameterized counterexample,
//     via AggOptions.Parameterize) and [AggOpt] (the heuristic
//     Algorithm 3);
//   - foreign-key constraint handling (Section 4.3) and automatic
//     algorithm dispatch ([Explain]).
//
// # Problems, budgets and outcomes
//
// Every algorithm takes a [Problem] — the query pair, the instance, its
// constraints and parameter bindings — and returns a verified
// [Counterexample] with [Stats], or an error. Two error sentinels separate
// outcomes callers handle specially from genuine failures:
// [ErrQueriesAgree] (the queries agree on D, so no counterexample exists
// within it) and [ErrBudget] (the problem's Ctx deadline or cancellation
// cut the search short). A Problem optionally carries per-request budgets:
// Ctx (wall clock, polled between loop iterations and inside the SAT/SMT
// solvers), MaxConflicts (per SAT call) and MaxRows (engine intermediate
// rows). Invariant: a budgeted search may fail early, but it never returns
// an unverified counterexample — every result passes [Verify] before it is
// returned.
//
// # Candidate checking
//
// The search algorithms funnel their "do Q1 and Q2 still disagree on this
// subinstance" questions through a per-problem checker that routes each
// candidate to the cheapest evaluation path: candidates whose deletion
// delta is at most a quarter of |D| (maxDeltaFraction) go through the
// retained-state delta evaluation (engine.PrepareDiff / EvalDelta);
// witness-sized candidates go through the batched bitvector layer
// ([DisagreeBatch] / [VerifyBatch], chunked at 256 candidates); γ plans
// and row-budget overruns fall back to per-candidate evaluation. The
// routing changes cost only — accept/reject decisions are identical on
// every path.
//
// Solvers live below this package: internal/sat (CDCL), internal/minones
// (min-ones enumeration/optimization), internal/smt (symbolic aggregate
// constraints).
package core
