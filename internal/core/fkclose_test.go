package core

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/relation"
)

// fkClose's output is fingerprinted (idsKey) and fed into dedup maps by
// the SPJUD* odometer, so two calls on the same id set must return the
// same slice regardless of input order. These are the regressions for the
// bug where the no-FK early return passed map-iteration order through,
// which made equal unions look distinct — duplicate solver work and a
// nondeterministic tie-break order among equal-size candidates.

func TestFKCloseSortedWithoutFKs(t *testing.T) {
	db := relation.NewDatabase()
	rng := rand.New(rand.NewSource(11))
	ids := []int{9, 3, 14, 0, 7, 21, 5}
	want, err := fkClose(append([]int(nil), ids...), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(want) {
		t.Fatalf("fkClose output not sorted: %v", want)
	}
	for trial := 0; trial < 10; trial++ {
		perm := append([]int(nil), ids...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got, err := fkClose(perm, db, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %v vs %v", trial, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: permuted input changed output: %v vs %v", trial, got, want)
			}
		}
	}
}

func TestFKClosePermutationInvariantKey(t *testing.T) {
	// With FKs, the closure must also be order-independent: same id set in
	// any order → same idsKey fingerprint.
	db := relation.NewDatabase()
	db.CreateRelation("P", relation.NewSchema(relation.Attr("k", relation.KindInt)))
	db.CreateRelation("C", relation.NewSchema(relation.Attr("k", relation.KindInt)))
	for i := 0; i < 4; i++ {
		db.Insert("P", relation.NewTuple(relation.Int(int64(i))))
		db.Insert("C", relation.NewTuple(relation.Int(int64(i))))
	}
	fks := []relation.ForeignKey{{ChildRel: "C", ChildAttrs: []string{"k"},
		ParentRel: "P", ParentAttrs: []string{"k"}}}

	// The C tuples' ids follow the P tuples'.
	var cids []int
	for _, id := range db.Relation("C").IDs {
		cids = append(cids, int(id))
	}
	base, err := fkClose(append([]int(nil), cids...), db, fks)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(base) {
		t.Fatalf("closure not sorted: %v", base)
	}
	wantKey := string(idsKey(base, nil))
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		perm := append([]int(nil), cids...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		closed, err := fkClose(perm, db, fks)
		if err != nil {
			t.Fatal(err)
		}
		if got := string(idsKey(closed, nil)); got != wantKey {
			t.Fatalf("trial %d: permuted input changed idsKey: %v vs %v", trial, closed, base)
		}
	}
}
