package core

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/testdb"
)

func TestAggBasicExample4(t *testing.T) {
	// Example 4: the witness-based view needs all of Mary's rows, but a
	// counterexample needs only 2 tuples (Mary + her ECON registration
	// makes Q2 return (Mary, 88) while Q1 returns nothing for her).
	p := Problem{Q1: testdb.AggQ1(), Q2: testdb.AggQ2(), DB: testdb.Example1DB()}
	ce, stats, err := AggBasic(p, AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, ce); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if ce.Size() > 2 {
		t.Errorf("size = %d, want <= 2", ce.Size())
	}
	if stats.Algorithm != "Agg-Basic" {
		t.Errorf("algorithm = %s", stats.Algorithm)
	}
}

func TestAggBasicExample5Having(t *testing.T) {
	// Example 5: with HAVING count >= 3 and fixed thresholds, the
	// counterexample must keep enough of Mary's rows (paper: all three
	// courses plus Mary → 4 tuples).
	p := Problem{Q1: testdb.HavingQ1(), Q2: testdb.HavingQ2(), DB: testdb.Example1DB()}
	ce, _, err := AggBasic(p, AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, ce); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if ce.Size() != 4 {
		t.Errorf("size = %d, want 4 (t1, t4, t5, t6)", ce.Size())
	}
}

func TestAggParamExample6(t *testing.T) {
	// Example 6: parameterizing @numCS lets the counterexample shrink to 2
	// tuples (t1, t6 with numCS = 1).
	p := Problem{Q1: testdb.HavingQ1(), Q2: testdb.HavingQ2(), DB: testdb.Example1DB()}
	ce, stats, err := AggBasic(p, AggOptions{Parameterize: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, ce); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if ce.Size() > 2 {
		t.Errorf("parameterized size = %d, want <= 2", ce.Size())
	}
	if ce.Params == nil {
		t.Error("parameterized counterexample must carry its parameter setting")
	}
	if stats.Algorithm != "Agg-Param" {
		t.Errorf("algorithm = %s", stats.Algorithm)
	}
	// The paper's Figure 7 shape: parameterization strictly reduces size.
	ceFixed, _, err := AggBasic(p, AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ce.Size() >= ceFixed.Size() {
		t.Errorf("parameterization did not shrink: %d vs %d", ce.Size(), ceFixed.Size())
	}
}

func TestAggParamPreboundParameters(t *testing.T) {
	// Queries already written with @numCS (Example 6's literal form).
	p := Problem{Q1: testdb.ParamQ1(), Q2: testdb.ParamQ2(), DB: testdb.Example1DB(),
		Params: map[string]relation.Value{"numCS": relation.Int(3)}}
	ce, _, err := AggBasic(p, AggOptions{Parameterize: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, ce); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if ce.Size() > 2 {
		t.Errorf("size = %d, want <= 2", ce.Size())
	}
	if v, ok := ce.Params["numCS"]; !ok || v.AsFloat() > 2 {
		t.Errorf("expected relaxed numCS, got %v", ce.Params)
	}
}

func TestAggOptExample4(t *testing.T) {
	// Algorithm 3 on Example 4/7: compare the pre-aggregation queries and
	// find a 2-tuple counterexample like {t1, t6}.
	p := Problem{Q1: testdb.AggQ1(), Q2: testdb.AggQ2(), DB: testdb.Example1DB()}
	ce, stats, err := AggOpt(p, AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, ce); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if ce.Size() > 2 {
		t.Errorf("size = %d, want <= 2", ce.Size())
	}
	if stats.Algorithm != "Agg-Opt" {
		t.Errorf("algorithm = %s", stats.Algorithm)
	}
}

func TestAggOptExample5WithHaving(t *testing.T) {
	// With HAVING, AggOpt parameterizes the thresholds (Section 5.3.2) and
	// still finds a small counterexample.
	p := Problem{Q1: testdb.HavingQ1(), Q2: testdb.HavingQ2(), DB: testdb.Example1DB()}
	ce, _, err := AggOpt(p, AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, ce); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if ce.Size() > 2 {
		t.Errorf("size = %d, want <= 2 with parameterization", ce.Size())
	}
}

func TestAggWithForeignKeys(t *testing.T) {
	p := Problem{Q1: testdb.AggQ1(), Q2: testdb.AggQ2(), DB: testdb.Example1DB(),
		Constraints: testdb.Constraints()}
	for _, run := range []struct {
		name string
		f    func() (*Counterexample, *Stats, error)
	}{
		{"AggBasic", func() (*Counterexample, *Stats, error) { return AggBasic(p, AggOptions{}) }},
		{"AggOpt", func() (*Counterexample, *Stats, error) { return AggOpt(p, AggOptions{}) }},
	} {
		ce, _, err := run.f()
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if err := Verify(p, ce); err != nil {
			t.Fatalf("%s: FK-constrained counterexample invalid: %v", run.name, err)
		}
	}
}

func TestParameterizeHaving(t *testing.T) {
	q := testdb.HavingQ1()
	pq, orig := ParameterizeHaving(q)
	if len(orig) != 1 {
		t.Fatalf("expected 1 parameter, got %v", orig)
	}
	for name, v := range orig {
		if !v.Identical(relation.Int(3)) {
			t.Errorf("original value of %s = %v, want 3", name, v)
		}
	}
	if pq.String() == q.String() {
		t.Error("query was not rewritten")
	}
	// Idempotent on queries without constant thresholds.
	q2 := testdb.AggQ1()
	pq2, orig2 := ParameterizeHaving(q2)
	if pq2 != q2 || orig2 != nil {
		t.Error("no-op expected for queries without HAVING constants")
	}
}

func TestAggBasicAgreeingQueries(t *testing.T) {
	p := Problem{Q1: testdb.AggQ1(), Q2: testdb.AggQ1(), DB: testdb.Example1DB()}
	if _, _, err := AggBasic(p, AggOptions{}); err == nil {
		t.Error("agreeing aggregate queries should error")
	}
}
