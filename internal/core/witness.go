package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/boolexpr"
	"repro/internal/engine"
	"repro/internal/minones"
	"repro/internal/pool"
	"repro/internal/ra"
	"repro/internal/relation"
)

// DefaultDelta is the default model budget Δ of Algorithm 1.
const DefaultDelta = 128

// Workers bounds the worker pool of the fan-out loops (Basic's
// per-provenance SAT loop, OptSigmaAll's per-tuple pushdown+solve loop).
// Each iteration is independent — it reads the shared database and builds
// its own CNF and solver — so the loops parallelize without locking; the
// reduction over per-iteration results runs serially in iteration order,
// keeping the chosen counterexample identical to the serial algorithms'.
// Values <= 1 keep the loops serial.
var Workers = pool.DefaultWorkers

// buildCNF encodes the how-provenance of the chosen tuple plus the
// foreign-key implications of Section 4.3 into CNF. It returns the builder,
// the SAT variables corresponding to base tuples (the counted variables of
// the min-ones objective), and the mapping back to tuple identifiers.
func buildCNF(prov *boolexpr.Expr, db *relation.Database, fks []relation.ForeignKey) (*boolexpr.CNFBuilder, []int, map[int]int, error) {
	b := boolexpr.NewCNFBuilder()
	b.Assert(prov)

	// Foreign keys: a kept child tuple requires (one of) its parents,
	// transitively. Adding implications can allocate new parent variables,
	// so iterate to a fixpoint.
	if len(fks) > 0 {
		parentMaps := make([]map[relation.TupleID][]relation.TupleID, len(fks))
		for i, fk := range fks {
			m, err := fk.ParentsOf(db)
			if err != nil {
				return nil, nil, nil, err
			}
			parentMaps[i] = m
		}
		processed := map[int]bool{}
		//lint:budgeted monotone fixpoint: each pass marks >=1 unprocessed base var processed, bounded by the CNF's variable count
		for {
			var pending []int
			for _, sv := range b.BaseVars() {
				id, _ := b.ExprVar(sv)
				if !processed[id] {
					pending = append(pending, id)
				}
			}
			if len(pending) == 0 {
				break
			}
			for _, id := range pending {
				processed[id] = true
				for _, m := range parentMaps {
					if parents, ok := m[relation.TupleID(id)]; ok {
						ps := make([]int, len(parents))
						for i, p := range parents {
							ps[i] = int(p)
						}
						b.AssertImplies(id, ps)
					}
				}
			}
		}
	}

	counted := b.BaseVars()
	varToID := make(map[int]int, len(counted))
	for _, sv := range counted {
		id, _ := b.ExprVar(sv)
		varToID[sv] = id
	}
	return b, counted, varToID, nil
}

func modelToIDs(m minones.Model, counted []int, varToID map[int]int) []int {
	var ids []int
	for _, sv := range counted {
		if m[sv] {
			ids = append(ids, varToID[sv])
		}
	}
	return ids
}

// provOfDiffTuples evaluates Q_a − Q_b with provenance annotation and
// returns, for each tuple of the plain difference, its how-provenance.
func provOfDiffTuples(qa, qb ra.Node, diff *relation.Relation, p Problem) ([]relation.Tuple, []*boolexpr.Expr, error) {
	if diff.Len() == 0 {
		return nil, nil, nil
	}
	ann, err := engine.EvalProvOpts(&ra.Diff{L: qa, R: qb}, p.DB, p.Params, p.engineOpts())
	if err != nil {
		return nil, nil, err
	}
	var tuples []relation.Tuple
	var provs []*boolexpr.Expr
	for _, t := range diff.Tuples {
		i := ann.Lookup(t)
		if i < 0 {
			return nil, nil, fmt.Errorf("core: difference tuple %v missing from annotated result", t)
		}
		tuples = append(tuples, t)
		provs = append(provs, ann.Anns[i])
	}
	return tuples, provs, nil
}

// Basic implements Algorithm 1 (the SAT-solver-based approach to SCP): for
// every tuple in the symmetric difference of the query results, enumerate up
// to delta models of its how-provenance with a SAT solver, and return the
// globally smallest witness found.
func Basic(p Problem, delta int) (*Counterexample, *Stats, error) {
	if delta <= 0 {
		delta = DefaultDelta
	}
	stats := &Stats{Algorithm: "Basic"}
	start := time.Now()
	if err := p.interrupted(); err != nil {
		return nil, nil, err
	}

	// One prepared evaluation (base scans shared between Q1 and Q2)
	// replaces the two independent Disagrees evaluations. Basic checks no
	// further candidates through the checker — the solver models it
	// verifies are witness-sized, where per-candidate Verify is cheapest —
	// so the retained per-operator state is released immediately rather
	// than pinned through the solve phase.
	t0 := time.Now()
	chk, err := newChecker(p)
	if err != nil {
		return nil, nil, err
	}
	chk.release()
	stats.RawEvalTime = time.Since(t0)
	if !chk.differs {
		return nil, nil, ErrQueriesAgree
	}
	if err := p.interrupted(); err != nil {
		return nil, nil, err
	}
	d12, d21 := chk.d12, chk.d21

	t0 = time.Now()
	tuples, provs, err := provOfDiffTuples(p.Q1, p.Q2, d12, p)
	if err != nil {
		return nil, nil, err
	}
	tuples2, provs2, err := provOfDiffTuples(p.Q2, p.Q1, d21, p)
	if err != nil {
		return nil, nil, err
	}
	tuples = append(tuples, tuples2...)
	provs = append(provs, provs2...)
	stats.ProvEvalTime = time.Since(t0)

	// Fan the per-provenance SAT solves out over the worker pool: each
	// iteration encodes and solves its own formula against the shared
	// read-only database. Results land in per-index slots and the best-
	// witness reduction below runs in index order, so the chosen
	// counterexample matches the serial loop's exactly. SolverTime is
	// accumulated per task and merged (the same convention as OptSigmaAll):
	// it reports aggregate solver work across workers and may exceed the
	// wall-clock TotalTime when the pool is parallel.
	fks := p.ForeignKeys()
	type solveResult struct {
		ids         []int
		found       bool
		unknown     bool
		modelsTried int
		solve       time.Duration
	}
	results := make([]solveResult, len(provs))
	err = pool.ForEach(Workers, len(provs), func(i int) error {
		if err := p.interrupted(); err != nil {
			return err
		}
		t0 := time.Now()
		b, counted, varToID, err := buildCNF(provs[i], p.DB, fks)
		if err != nil {
			return err
		}
		r := minones.Enumerate(b.NumVars, b.Clauses, counted, delta, p.solverOpts())
		res := &results[i]
		res.solve = time.Since(t0)
		res.modelsTried = r.ModelsTried
		switch r.Status {
		case minones.Infeasible:
			// Proven unsatisfiable: this tuple has no witness.
		case minones.Unknown:
			// Budget exhausted before any model: not proven unsatisfiable.
			res.unknown = true
		default:
			res.ids = modelToIDs(r.Model, counted, varToID)
			res.found = true
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	// Pick the winner by id-set size before materializing any database:
	// the ids are distinct (one per counted SAT variable), so len(res.ids)
	// is the subinstance size and only the chosen candidate pays for
	// construction.
	bestIdx := -1
	unknowns := 0
	for i, res := range results {
		stats.ModelsTried += res.modelsTried
		stats.SolverTime += res.solve
		if res.unknown {
			unknowns++
		}
		if !res.found {
			continue
		}
		if bestIdx < 0 || len(res.ids) < len(results[bestIdx].ids) {
			bestIdx = i
		}
	}
	var best *Counterexample
	if bestIdx >= 0 {
		sub, tids := subinstanceFromIDs(p.DB, results[bestIdx].ids)
		best = &Counterexample{DB: sub, IDs: tids, Witness: tuples[bestIdx]}
	}
	stats.TotalTime = time.Since(start)
	if best == nil {
		if err := p.interrupted(); err != nil {
			return nil, nil, err
		}
		if unknowns > 0 {
			return nil, nil, fmt.Errorf("core: solver budget exhausted on %d witness formulas before any model was found", unknowns)
		}
		return nil, nil, fmt.Errorf("core: no satisfiable witness found (unexpected for a valid instance)")
	}
	stats.WitnessSize = best.Size()
	if err := Verify(p, best); err != nil {
		// A budget expiry during the final verification is a budget
		// failure, not an algorithm bug.
		if errors.Is(err, ErrBudget) {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("core: Basic produced an invalid counterexample: %v", err)
	}
	return best, stats, nil
}

// OptSigma implements Algorithm 2 (the Optσ algorithm for SWP): pick one
// tuple t from Q1(D)\Q2(D) (or the reverse), push the selection on t's
// values down the tree of Q1 − Q2, compute the provenance of t only, and
// minimize the number of true variables with the optimizing solver.
func OptSigma(p Problem) (*Counterexample, *Stats, error) {
	stats := &Stats{Algorithm: "OptSigma"}
	start := time.Now()
	if err := p.interrupted(); err != nil {
		return nil, nil, err
	}

	t0 := time.Now()
	differs, d12, d21, err := p.disagrees(p.DB)
	if err != nil {
		return nil, nil, err
	}
	stats.RawEvalTime = time.Since(t0)
	if !differs {
		return nil, nil, ErrQueriesAgree
	}
	if err := p.interrupted(); err != nil {
		return nil, nil, err
	}

	qa, qb := p.Q1, p.Q2
	diff := d12
	if diff.Len() == 0 {
		qa, qb = p.Q2, p.Q1
		diff = d21
	}
	t := diff.Tuples[0]

	t0 = time.Now()
	pushed := PushDownTupleSelection(&ra.Diff{L: qa, R: qb}, t, p.DB)
	ann, err := engine.EvalProvOpts(pushed, p.DB, p.Params, p.engineOpts())
	if err != nil {
		return nil, nil, err
	}
	i := ann.Lookup(t)
	if i < 0 {
		return nil, nil, fmt.Errorf("core: tuple %v missing after selection pushdown", t)
	}
	prov := ann.Anns[i]
	stats.ProvEvalTime = time.Since(t0)
	if err := p.interrupted(); err != nil {
		return nil, nil, err
	}

	t0 = time.Now()
	b, counted, varToID, err := buildCNF(prov, p.DB, p.ForeignKeys())
	if err != nil {
		return nil, nil, err
	}
	r := minones.Minimize(b.NumVars, b.Clauses, counted, p.solverOpts())
	stats.SolverTime = time.Since(t0)
	stats.ModelsTried = r.ModelsTried
	stats.Optimal = r.Status == minones.Optimal
	if r.Status == minones.Infeasible {
		return nil, nil, fmt.Errorf("core: witness formula unsatisfiable (unexpected)")
	}
	if r.Status == minones.Unknown {
		if err := p.interrupted(); err != nil {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("core: solver budget exhausted before any model of the witness formula was found")
	}
	ids := modelToIDs(r.Model, counted, varToID)
	sub, tids := subinstanceFromIDs(p.DB, ids)
	ce := &Counterexample{DB: sub, IDs: tids, Witness: t}
	stats.WitnessSize = ce.Size()
	stats.TotalTime = time.Since(start)
	if err := Verify(p, ce); err != nil {
		// A budget expiry during the final verification is a budget
		// failure, not an algorithm bug.
		if errors.Is(err, ErrBudget) {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("core: OptSigma produced an invalid counterexample: %v", err)
	}
	return ce, stats, nil
}

// OptSigmaAll solves SCP exactly with the optimizing solver: it minimizes
// the witness of every tuple in the symmetric difference (each with
// selection pushdown) and returns the global optimum. This is the
// "solver-opt-all" series of Figure 4 — more expensive than OptSigma but,
// unlike it, guaranteed to reach the smallest counterexample overall.
func OptSigmaAll(p Problem) (*Counterexample, *Stats, error) {
	stats := &Stats{Algorithm: "OptSigmaAll"}
	start := time.Now()
	if err := p.interrupted(); err != nil {
		return nil, nil, err
	}

	// As in Basic: one shared-scan prepared evaluation for the base diffs,
	// retained state released (the per-tuple candidates below are verified
	// per-candidate, never through the checker).
	t0 := time.Now()
	chk, err := newChecker(p)
	if err != nil {
		return nil, nil, err
	}
	chk.release()
	stats.RawEvalTime = time.Since(t0)
	if !chk.differs {
		return nil, nil, ErrQueriesAgree
	}
	if err := p.interrupted(); err != nil {
		return nil, nil, err
	}
	d12, d21 := chk.d12, chk.d21
	// Flatten the per-side, per-tuple iteration space and fan it out over
	// the worker pool: every task pushes its tuple's selection down,
	// evaluates provenance, and runs its own optimizing solver against the
	// shared read-only database. ProvEvalTime/SolverTime are accumulated
	// per task and merged, so they report aggregate work across workers and
	// may exceed the wall-clock TotalTime when the pool is parallel.
	fks := p.ForeignKeys()
	type task struct {
		qa, qb ra.Node
		t      relation.Tuple
	}
	var tasks []task
	for _, s := range []struct {
		qa, qb ra.Node
		diff   *relation.Relation
	}{{p.Q1, p.Q2, d12}, {p.Q2, p.Q1, d21}} {
		for _, t := range s.diff.Tuples {
			tasks = append(tasks, task{s.qa, s.qb, t})
		}
	}
	type solveResult struct {
		ids         []int
		found       bool
		modelsTried int
		prov, solve time.Duration
	}
	results := make([]solveResult, len(tasks))
	err = pool.ForEach(Workers, len(tasks), func(i int) error {
		if err := p.interrupted(); err != nil {
			return err
		}
		tk := tasks[i]
		res := &results[i]
		t0 := time.Now()
		pushed := PushDownTupleSelection(&ra.Diff{L: tk.qa, R: tk.qb}, tk.t, p.DB)
		ann, err := engine.EvalProvOpts(pushed, p.DB, p.Params, p.engineOpts())
		if err != nil {
			return err
		}
		j := ann.Lookup(tk.t)
		res.prov = time.Since(t0)
		if j < 0 {
			return nil
		}
		t0 = time.Now()
		b, counted, varToID, err := buildCNF(ann.Anns[j], p.DB, fks)
		if err != nil {
			return err
		}
		r := minones.Minimize(b.NumVars, b.Clauses, counted, p.solverOpts())
		res.solve = time.Since(t0)
		res.modelsTried = r.ModelsTried
		if r.Status == minones.Infeasible || r.Status == minones.Unknown {
			return nil
		}
		res.ids = modelToIDs(r.Model, counted, varToID)
		res.found = true
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	// As in Basic: choose by id-set size first, build one database.
	bestIdx := -1
	for i, res := range results {
		stats.ProvEvalTime += res.prov
		stats.SolverTime += res.solve
		stats.ModelsTried += res.modelsTried
		if !res.found {
			continue
		}
		if bestIdx < 0 || len(res.ids) < len(results[bestIdx].ids) {
			bestIdx = i
		}
	}
	stats.TotalTime = time.Since(start)
	if bestIdx < 0 {
		if err := p.interrupted(); err != nil {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("core: no satisfiable witness found")
	}
	sub, tids := subinstanceFromIDs(p.DB, results[bestIdx].ids)
	best := &Counterexample{DB: sub, IDs: tids, Witness: tasks[bestIdx].t}
	stats.WitnessSize = best.Size()
	stats.Optimal = true
	if err := Verify(p, best); err != nil {
		// A budget expiry during the final verification is a budget
		// failure, not an algorithm bug.
		if errors.Is(err, ErrBudget) {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("core: OptSigmaAll produced an invalid counterexample: %v", err)
	}
	return best, stats, nil
}

// SolveWitnessStrategy exposes the Figure 5 experiment's strategies on a
// single witness formula: strategy "opt" uses the optimizing solver,
// "naive-M" enumerates up to M models. It returns the witness size and the
// models tried.
func SolveWitnessStrategy(p Problem, strategy string, m int) (int, int, error) {
	_, d12, d21, err := Disagrees(p.Q1, p.Q2, p.DB, p.Params)
	if err != nil {
		return 0, 0, err
	}
	qa, qb := p.Q1, p.Q2
	diff := d12
	if diff.Len() == 0 {
		qa, qb = p.Q2, p.Q1
		diff = d21
	}
	if diff.Len() == 0 {
		return 0, 0, ErrQueriesAgree
	}
	t := diff.Tuples[0]
	pushed := PushDownTupleSelection(&ra.Diff{L: qa, R: qb}, t, p.DB)
	ann, err := engine.EvalProv(pushed, p.DB, p.Params)
	if err != nil {
		return 0, 0, err
	}
	i := ann.Lookup(t)
	if i < 0 {
		return 0, 0, fmt.Errorf("core: tuple missing after pushdown")
	}
	b, counted, _, err := buildCNF(ann.Anns[i], p.DB, p.ForeignKeys())
	if err != nil {
		return 0, 0, err
	}
	var r minones.Result
	if strategy == "opt" {
		r = minones.Minimize(b.NumVars, b.Clauses, counted, p.solverOpts())
	} else {
		r = minones.Enumerate(b.NumVars, b.Clauses, counted, m, p.solverOpts())
	}
	if r.Status == minones.Infeasible {
		return 0, 0, fmt.Errorf("core: witness formula unsatisfiable")
	}
	if r.Status == minones.Unknown {
		return 0, 0, fmt.Errorf("core: solver budget exhausted before any model was found")
	}
	return r.Cost, r.ModelsTried, nil
}
