package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/boolexpr"
	"repro/internal/engine"
	"repro/internal/ra"
	"repro/internal/relation"
)

// fkClose extends a set of tuple ids with foreign-key parents, transitively,
// choosing the first parent when several share a key (Section 4.3 closure
// for the combinatorial algorithms; the solver-based algorithms encode the
// choice instead).
func fkClose(ids []int, db *relation.Database, fks []relation.ForeignKey) ([]int, error) {
	if len(fks) == 0 {
		// Sorted like the closure path below: callers fingerprint the
		// result (idsKey) and feed it to dedup maps, so passing map-order
		// input through unsorted made equal id sets look distinct.
		out := append([]int(nil), ids...)
		sort.Ints(out)
		return out, nil
	}
	parentMaps := make([]map[relation.TupleID][]relation.TupleID, len(fks))
	for i, fk := range fks {
		m, err := fk.ParentsOf(db)
		if err != nil {
			return nil, err
		}
		parentMaps[i] = m
	}
	in := map[int]bool{}
	queue := append([]int(nil), ids...)
	var out []int
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if in[id] {
			continue
		}
		in[id] = true
		out = append(out, id)
		for _, m := range parentMaps {
			if ps, ok := m[relation.TupleID(id)]; ok && len(ps) > 0 {
				queue = append(queue, int(ps[0]))
			}
		}
	}
	sort.Ints(out)
	return out, nil
}

// MonotoneSWP solves SWP for monotone (SPJU) queries in polynomial data
// complexity via the DNF algorithm of Theorem 6: compute the
// how-provenance of a differing tuple t with respect to the side that
// produces it, convert to DNF with absorption, and take the smallest
// minterm. Theorems 1 (SJ), 2 (SPU) and 5 (JU*) are special cases: for
// those classes the DNF is linear in the provenance size.
//
// Monotonicity of the other query guarantees t stays absent from it on
// every subinstance, so the minterm alone is a witness.
func MonotoneSWP(p Problem, maxTerms int) (*Counterexample, *Stats, error) {
	if maxTerms <= 0 {
		maxTerms = 1 << 16
	}
	c1, c2 := ra.Classify(p.Q1), ra.Classify(p.Q2)
	if !c1.Monotone() || !c2.Monotone() {
		return nil, nil, fmt.Errorf("core: MonotoneSWP requires monotone queries (got %s, %s)", c1, c2)
	}
	stats := &Stats{Algorithm: "MonotoneDNF"}
	start := time.Now()

	t0 := time.Now()
	differs, d12, d21, err := p.disagrees(p.DB)
	if err != nil {
		return nil, nil, err
	}
	stats.RawEvalTime = time.Since(t0)
	if !differs {
		return nil, nil, ErrQueriesAgree
	}
	qa := p.Q1
	diff := d12
	if diff.Len() == 0 {
		qa = p.Q2
		diff = d21
	}
	t := diff.Tuples[0]

	t0 = time.Now()
	pushed := PushDownTupleSelection(qa, t, p.DB)
	ann, err := engine.EvalProvOpts(pushed, p.DB, p.Params, p.engineOpts())
	if err != nil {
		return nil, nil, err
	}
	i := ann.Lookup(t)
	if i < 0 {
		return nil, nil, fmt.Errorf("core: tuple %v missing after pushdown", t)
	}
	prov := ann.Anns[i]
	stats.ProvEvalTime = time.Since(t0)

	t0 = time.Now()
	dnf, err := boolexpr.MonotoneDNF(prov, maxTerms)
	if err != nil {
		return nil, nil, err
	}
	smallest := dnf.Smallest()
	if smallest == nil {
		return nil, nil, fmt.Errorf("core: empty DNF (tuple has no witness)")
	}
	ids, err := fkClose([]int(smallest), p.DB, p.ForeignKeys())
	if err != nil {
		return nil, nil, err
	}
	stats.SolverTime = time.Since(t0)

	sub, tids := subinstanceFromIDs(p.DB, ids)
	ce := &Counterexample{DB: sub, IDs: tids, Witness: t}
	stats.WitnessSize = ce.Size()
	stats.Optimal = true
	stats.TotalTime = time.Since(start)
	if err := Verify(p, ce); err != nil {
		// A budget expiry during the final verification is a budget
		// failure, not an algorithm bug.
		if errors.Is(err, ErrBudget) {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("core: MonotoneSWP produced an invalid counterexample: %v", err)
	}
	return ce, stats, nil
}

// SPJUDStarSWP implements the Theorem 7 enumeration for SPJUD* queries
// (differences only above SPJU terms): enumerate, for each SPJU term q_i
// with t ∈ q_i(D), its minimal witnesses (plus the empty choice), take
// unions, and keep the smallest union on which the queries disagree.
// maxCombos bounds the enumeration; exceeding it returns an error (the
// procedure is polynomial in data complexity but exponential in the number
// of difference operators).
func SPJUDStarSWP(p Problem, maxCombos int) (*Counterexample, *Stats, error) {
	if maxCombos <= 0 {
		maxCombos = 1 << 14
	}
	if !ra.IsSPJUDStar(p.Q1) || !ra.IsSPJUDStar(p.Q2) {
		return nil, nil, fmt.Errorf("core: SPJUDStarSWP requires SPJUD* queries")
	}
	stats := &Stats{Algorithm: "SPJUDStar"}
	start := time.Now()

	// The checker's prepared evaluation is shared by the whole odometer
	// scan: base diffs here, candidate disagreement checks below.
	t0 := time.Now()
	chk, err := newChecker(p)
	if err != nil {
		return nil, nil, err
	}
	stats.RawEvalTime = time.Since(t0)
	if !chk.differs {
		return nil, nil, ErrQueriesAgree
	}
	if err := p.interrupted(); err != nil {
		return nil, nil, err
	}
	d12, d21 := chk.d12, chk.d21
	qa, qb := p.Q1, p.Q2
	diff := d12
	if diff.Len() == 0 {
		qa, qb = p.Q2, p.Q1
		diff = d21
	}
	t := diff.Tuples[0]
	whole := &ra.Diff{L: qa, R: qb}
	terms := ra.SPJUTerms(whole)

	// For every SPJU term containing t, collect its minimal witnesses.
	t0 = time.Now()
	var witnessSets [][][]int
	cat := engine.Catalog{DB: p.DB}
	for _, q := range terms {
		if err := p.interrupted(); err != nil {
			return nil, nil, err
		}
		// Union-compatibility: compare positionally via key.
		schema, err := ra.OutSchema(q, cat)
		if err != nil || schema.Arity() != len(t) {
			continue // monotone term never contains t on subinstances
		}
		pushed := PushDownTupleSelection(q, t, p.DB)
		// Counting-semiring cardinality pre-check: t ∈ q(D) iff the pushed
		// selection has nonempty support. The count pass costs a fraction
		// of the provenance pass it skips (no annotation expressions), so
		// it pays off whenever some terms don't produce t — the common
		// case, since t originates from specific SPJU terms.
		n, err := engine.CountDistinctOpts(pushed, p.DB, p.Params, p.engineOpts())
		if err != nil {
			return nil, nil, err
		}
		if n == 0 {
			continue
		}
		ann, err := engine.EvalProvOpts(pushed, p.DB, p.Params, p.engineOpts())
		if err != nil {
			return nil, nil, err
		}
		i := ann.Lookup(t)
		if i < 0 {
			continue
		}
		dnf, err := boolexpr.MonotoneDNF(ann.Anns[i], maxCombos)
		if err != nil {
			return nil, nil, err
		}
		set := make([][]int, 0, len(dnf)+1)
		set = append(set, nil) // the empty choice: drop this term's witness
		for _, m := range dnf {
			set = append(set, []int(m))
		}
		witnessSets = append(witnessSets, set)
	}
	stats.ProvEvalTime = time.Since(t0)

	nCombos := 1
	for _, s := range witnessSets {
		nCombos *= len(s)
		if nCombos > maxCombos {
			return nil, nil, fmt.Errorf("core: SPJUD* enumeration exceeds %d combinations", maxCombos)
		}
	}

	t0 = time.Now()
	// Enumerate every combination's (FK-closed) id union first, then check
	// them all with the batched accept-reject layer: one bitvector engine
	// pass per chunk of candidates instead of a fresh subinstance
	// evaluation per combination. Only candidates that both disagree and
	// improve on the current best are materialized as databases.
	var combos [][]int
	seen := map[string]bool{}
	var scratch []byte
	pick := make([]int, len(witnessSets))
	for {
		if err := p.interrupted(); err != nil {
			return nil, nil, err
		}
		// Build the union of the current picks.
		idSet := map[int]bool{}
		for i, s := range witnessSets {
			for _, id := range s[pick[i]] {
				idSet[id] = true
			}
		}
		if len(idSet) > 0 {
			ids := make([]int, 0, len(idSet))
			for id := range idSet {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			ids, err = fkClose(ids, p.DB, p.ForeignKeys())
			if err != nil {
				return nil, nil, err
			}
			// Distinct picks often close over the same id union; check each
			// union once (first occurrence keeps the tie-break order).
			scratch = idsKey(ids, scratch[:0])
			if !seen[string(scratch)] {
				seen[string(scratch)] = true
				combos = append(combos, ids)
			}
		}
		// Advance the odometer.
		i := 0
		for ; i < len(pick); i++ {
			pick[i]++
			if pick[i] < len(witnessSets[i]) {
				break
			}
			pick[i] = 0
		}
		if i == len(pick) {
			break
		}
	}
	disagree, err := disagreeOn(p, chk, combos)
	if err != nil {
		return nil, nil, err
	}
	// Smallest-first, ties in enumeration order — the same candidate the
	// incremental best-tracking loop used to settle on (fkClose returns
	// deduplicated ids, so len(ids) is the subinstance size).
	order := make([]int, len(combos))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return len(combos[order[a]]) < len(combos[order[b]]) })
	var best *Counterexample
	for _, i := range order {
		if !disagree[i] {
			continue
		}
		sub, tids := subinstanceFromIDs(p.DB, combos[i])
		cand := &Counterexample{DB: sub, IDs: tids, Witness: t}
		if Verify(p, cand) == nil {
			best = cand
			break
		}
	}
	stats.SolverTime = time.Since(t0)
	stats.TotalTime = time.Since(start)
	if best == nil {
		if err := p.interrupted(); err != nil {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("core: SPJUD* enumeration found no witness")
	}
	stats.WitnessSize = best.Size()
	stats.Optimal = true
	return best, stats, nil
}
