package core

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/raparser"
	"repro/internal/relation"
	"repro/internal/testdb"
)

// TestEnumerateSmallestExample2 validates the paper's Example 2 exactly:
// the running example has precisely four smallest counterexamples —
// S'={t1}, R'={t4,t5} for Mary, and S”={t3} with any two of Jesse's three
// CS courses {t9,t10,t11}.
func TestEnumerateSmallestExample2(t *testing.T) {
	p := example1Problem()
	ces, err := EnumerateSmallest(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(ces) != 4 {
		for _, ce := range ces {
			t.Logf("counterexample: %v", ce.IDs)
		}
		t.Fatalf("found %d smallest counterexamples, want 4 (Example 2)", len(ces))
	}
	want := map[string]bool{
		"1,4,5":   false,
		"3,9,10":  false,
		"3,9,11":  false,
		"3,10,11": false,
	}
	for _, ce := range ces {
		if ce.Size() != 3 {
			t.Errorf("counterexample size %d, want 3", ce.Size())
		}
		key := readableIDs(ce.IDs)
		if _, ok := want[key]; !ok {
			t.Errorf("unexpected counterexample %s", key)
		} else {
			want[key] = true
		}
		if err := Verify(p, ce); err != nil {
			t.Errorf("%s: %v", key, err)
		}
	}
	for k, found := range want {
		if !found {
			t.Errorf("missing smallest counterexample {%s}", k)
		}
	}
}

// readableIDs renders an id set as "1,4,5" (idsKey is now a binary
// encoding, unsuitable for test expectations).
func readableIDs(ids []relation.TupleID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(int(id))
	}
	return strings.Join(parts, ",")
}

// TestEnumerateSmallestIsomorphicWitnesses is the regression for the case
// fingerprint: two differing tuples whose witness formulas are structurally
// identical CNFs (here, single-variable formulas) over *different* base
// tuples must both be enumerated — the dedup key has to include the
// SAT-variable-to-tuple-id grounding, not just the clause structure.
func TestEnumerateSmallestIsomorphicWitnesses(t *testing.T) {
	db := relation.NewDatabase()
	db.CreateRelation("R", relation.NewSchema(relation.Attr("a", relation.KindInt)))
	db.Insert("R", relation.NewTuple(relation.Int(1)))
	db.Insert("R", relation.NewTuple(relation.Int(2)))
	q1 := raparser.MustParse("R")
	q2 := raparser.MustParse("select[a = 999](R)")
	ces, err := EnumerateSmallest(Problem{Q1: q1, Q2: q2, DB: db}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ces) != 2 {
		for _, ce := range ces {
			t.Logf("counterexample: %v", ce.IDs)
		}
		t.Fatalf("found %d smallest counterexamples, want 2 ({1} and {2})", len(ces))
	}
}

func TestEnumerateSmallestRespectsMax(t *testing.T) {
	p := example1Problem()
	ces, err := EnumerateSmallest(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ces) > 2 {
		t.Errorf("max=2 but got %d", len(ces))
	}
}

func TestEnumerateSmallestAgreeError(t *testing.T) {
	p := example1Problem()
	p.Q2 = p.Q1
	if _, err := EnumerateSmallest(p, 8); err == nil {
		t.Error("agreeing queries should error")
	}
}

func TestEnumerateSmallestWithFK(t *testing.T) {
	p := example1Problem()
	p.Constraints = testdb.Constraints()
	ces, err := EnumerateSmallest(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, ce := range ces {
		if err := Verify(p, ce); err != nil {
			t.Errorf("FK-constrained enumeration produced invalid counterexample: %v", err)
		}
	}
}
