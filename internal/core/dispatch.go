package core

import (
	"fmt"

	"repro/internal/ra"
)

// Explain dispatches to the appropriate algorithm for the query classes at
// hand, mirroring the end-to-end RATest pipeline of Section 6:
//
//   - aggregate queries → the Agg-Opt heuristic (Algorithm 3), falling back
//     to the provenance-based Agg-Basic when the heuristic does not apply;
//   - SPJUD queries → Optσ (Algorithm 2, the constraint-based solution).
//
// It returns the smallest counterexample found along with per-component
// statistics.
func Explain(p Problem) (*Counterexample, *Stats, error) {
	if err := p.interrupted(); err != nil {
		return nil, nil, err
	}
	c1, c2 := ra.Classify(p.Q1), ra.Classify(p.Q2)
	if c1.Aggregate || c2.Aggregate {
		if !c1.Aggregate || !c2.Aggregate {
			return nil, nil, fmt.Errorf("core: queries mix aggregate and non-aggregate classes (%s vs %s)", c1, c2)
		}
		ce, stats, err := AggOpt(p, AggOptions{})
		if err == nil {
			return ce, stats, nil
		}
		return AggBasic(p, AggOptions{})
	}
	return OptSigma(p)
}

// AlgorithmFor names the algorithm Explain would use, for diagnostics.
func AlgorithmFor(p Problem) string {
	c1, c2 := ra.Classify(p.Q1), ra.Classify(p.Q2)
	if c1.Aggregate || c2.Aggregate {
		return "Agg-Opt"
	}
	return "OptSigma"
}
