// Live-session benchmarks: the keystroke revision loop — a resident grading
// session absorbing a stream of single-tuple updates (delete+insert of a
// Registration row with a changed grade), re-grading after every one — run
// through the retained-state LiveSession (one ApplyDelta + Commit per
// revision) against re-preparing the delta state from scratch on every
// revision. This is the acceptance benchmark for the session subsystem
// (target: ≥20×); timings are exported to BENCH_session.json via the
// BENCH_SESSION_JSON env var.
package core_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/course"
	"repro/internal/engine"
	"repro/internal/relation"
)

// sessionWorkload is the benchmark input: the |D|=5000 course instance, the
// q4-vs-q6 disagreeing pair, and a fixed pseudo-random stream of 256
// single-tuple Registration updates (remove one row, insert it back with a
// different grade).
func sessionWorkload() (db *relation.Database, ups []core.SessionUpdate) {
	db = course.GenerateDB(5000, 7)
	var regIDs []relation.TupleID
	for _, id := range db.AllIDs() {
		if rel, _, _ := db.Lookup(id); rel == "Registration" {
			regIDs = append(regIDs, id)
		}
	}
	sort.Slice(regIDs, func(i, j int) bool { return regIDs[i] < regIDs[j] })
	rng := rand.New(rand.NewSource(11))
	for _, i := range rng.Perm(len(regIDs))[:256] {
		id := regIDs[i]
		_, t, _ := db.Lookup(id)
		nt := t.Clone()
		nt[3] = relation.Int(int64(40 + rng.Intn(61)))
		ups = append(ups, core.SessionUpdate{
			Remove: []relation.TupleID{id},
			Insert: []engine.Insert{{Rel: "Registration", Tuple: nt}},
		})
	}
	return db, ups
}

type sessionBenchRow struct {
	Revisions        int     `json:"revisions"`
	SessionNsPerOp   float64 `json:"session_ns_per_op"`
	ReprepareNsPerOp float64 `json:"reprepare_ns_per_op"`
	Speedup          float64 `json:"speedup"`
}

var sessionBenchRow256 = &sessionBenchRow{Revisions: 256}

// BenchmarkSession times the revision loop on a resident session: one
// NewLiveSession, then per revision one Update (ApplyDelta + Commit) and one
// Grade off the retained difference state.
func BenchmarkSession(b *testing.B) {
	db, ups := sessionWorkload()
	qs := course.Questions()
	q1, q2 := qs[3].Correct, qs[5].Correct
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := core.NewLiveSession(core.Problem{Q1: q1, Q2: q2, DB: db.Clone()})
		if err != nil {
			b.Fatal(err)
		}
		if !s.Incremental() {
			b.Fatal("course pair did not prepare incrementally")
		}
		for _, up := range ups {
			if _, err := s.Update(ctx, up); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Grade(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
	sessionBenchRow256.SessionNsPerOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
}

// BenchmarkSessionReprepare times the same revision loop without retained
// state: every revision is applied to the instance and the full delta state
// is re-prepared from scratch (the cost a stateless server pays per edit).
func BenchmarkSessionReprepare(b *testing.B) {
	db, ups := sessionWorkload()
	qs := course.Questions()
	q1, q2 := qs[3].Correct, qs[5].Correct
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := db.Clone()
		dead := map[relation.TupleID]bool{}
		for _, up := range ups {
			for _, id := range up.Remove {
				dead[id] = true
			}
			for _, ins := range up.Insert {
				cur.Insert(ins.Rel, ins.Tuple)
			}
			keep := map[relation.TupleID]bool{}
			for _, id := range cur.AllIDs() {
				if !dead[id] {
					keep[id] = true
				}
			}
			p, err := engine.PrepareDiff(q1, q2, cur.Subinstance(keep), nil, engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
			_ = p.Disagrees()
		}
	}
	sessionBenchRow256.ReprepareNsPerOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	if path := os.Getenv("BENCH_SESSION_JSON"); path != "" {
		row := *sessionBenchRow256
		if row.SessionNsPerOp > 0 {
			row.Speedup = row.ReprepareNsPerOp / row.SessionNsPerOp
		}
		out := map[string]any{
			"workload": "course q4-vs-q6 keystroke revision loop, |D|=5000, 256 single-tuple updates (delete+insert)",
			"results":  []sessionBenchRow{row},
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		fmt.Printf("session revision loop speedup: %.1fx\n", row.Speedup)
	}
}
