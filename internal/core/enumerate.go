package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/boolexpr"
	"repro/internal/engine"
	"repro/internal/minones"
	"repro/internal/ra"
	"repro/internal/relation"
)

// EnumerateSmallest finds up to max distinct smallest counterexamples for an
// SPJUD problem. Example 2 of the paper observes that the running example
// has several smallest counterexamples ({t1,t4,t5} plus three variants over
// Jesse's courses); this enumerates them all: it first determines the
// global optimum size k* across every differing tuple, then enumerates all
// witnesses of size k* with the SAT solver.
func EnumerateSmallest(p Problem, max int) ([]*Counterexample, error) {
	if max <= 0 {
		max = 64
	}
	differs, d12, d21, err := Disagrees(p.Q1, p.Q2, p.DB, p.Params)
	if err != nil {
		return nil, err
	}
	if !differs {
		return nil, fmt.Errorf("core: queries agree on D")
	}
	fks := p.ForeignKeys()

	type tupleCase struct {
		t      relation.Tuple
		cnf    [][]int
		nVars  int
		vars   []int
		varID  map[int]int
		optima int
	}
	var cases []tupleCase
	best := -1
	for _, side := range []struct {
		qa, qb ra.Node
		diff   *relation.Relation
	}{{p.Q1, p.Q2, d12}, {p.Q2, p.Q1, d21}} {
		for _, t := range side.diff.Tuples {
			prov, err := provOfPushedTuple(side.qa, side.qb, t, p)
			if err != nil {
				return nil, err
			}
			if prov == nil {
				continue
			}
			b, counted, varToID, err := buildCNF(prov, p.DB, fks)
			if err != nil {
				return nil, err
			}
			r := minones.Minimize(b.NumVars, b.Clauses, counted, minones.Options{})
			if r.Status == minones.Infeasible || r.Status == minones.Unknown {
				// Infeasible: no witness exists. Unknown: no model in
				// budget — either way there is no model to enumerate from.
				continue
			}
			if best < 0 || r.Cost < best {
				best = r.Cost
			}
			cases = append(cases, tupleCase{
				t: t, cnf: b.Clauses, nVars: b.NumVars, vars: counted, varID: varToID, optima: r.Cost,
			})
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("core: no witnesses found")
	}

	seen := map[string]bool{}
	var out []*Counterexample
	for _, c := range cases {
		if c.optima != best || len(out) >= max {
			continue
		}
		models := minones.EnumerateAtCost(c.nVars, c.cnf, c.vars, best, max, minones.Options{})
		for _, m := range models {
			ids := modelToIDs(m, c.vars, c.varID)
			sort.Ints(ids)
			key := idsKey(ids)
			if seen[key] {
				continue
			}
			seen[key] = true
			sub, tids := subinstanceFromIDs(p.DB, ids)
			ce := &Counterexample{DB: sub, IDs: tids, Witness: c.t}
			if Verify(p, ce) != nil {
				continue
			}
			out = append(out, ce)
			if len(out) >= max {
				break
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: enumeration found no verifying counterexamples")
	}
	return out, nil
}

func provOfPushedTuple(qa, qb ra.Node, t relation.Tuple, p Problem) (*boolexpr.Expr, error) {
	pushed := PushDownTupleSelection(&ra.Diff{L: qa, R: qb}, t, p.DB)
	ann, err := engine.EvalProv(pushed, p.DB, p.Params)
	if err != nil {
		return nil, err
	}
	i := ann.Lookup(t)
	if i < 0 {
		return nil, nil
	}
	return ann.Anns[i], nil
}

func idsKey(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprint(id)
	}
	return strings.Join(parts, ",")
}
