package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/boolexpr"
	"repro/internal/engine"
	"repro/internal/minones"
	"repro/internal/ra"
	"repro/internal/relation"
)

// EnumerateSmallest finds up to max distinct smallest counterexamples for an
// SPJUD problem. Example 2 of the paper observes that the running example
// has several smallest counterexamples ({t1,t4,t5} plus three variants over
// Jesse's courses); this enumerates them all: it first determines the
// global optimum size k* across every differing tuple, then enumerates all
// witnesses of size k* with the SAT solver.
//
// Candidate acceptance is batched: the SAT models of every witness case are
// decoded and deduplicated first, then verified together through
// VerifyBatch — one bitvector-semiring engine pass per ~64 candidates
// instead of a fresh subinstance evaluation each. Witness cases whose CNF
// duplicates an earlier case's are skipped outright (identical formulas
// enumerate identical models, which the id-set dedup would discard anyway),
// saving both the solver enumeration and the redundant Verify work.
func EnumerateSmallest(p Problem, max int) ([]*Counterexample, error) {
	if max <= 0 {
		max = 64
	}
	if err := p.interrupted(); err != nil {
		return nil, err
	}
	// One prepared evaluation serves the whole enumeration: its retained
	// state provides the base diffs here and answers the candidate
	// disagreement checks below (batched for witness-sized candidates,
	// delta-incremental for near-full ones).
	chk, err := newChecker(p)
	if err != nil {
		return nil, err
	}
	if !chk.differs {
		return nil, ErrQueriesAgree
	}
	if err := p.interrupted(); err != nil {
		return nil, err
	}
	d12, d21 := chk.d12, chk.d21
	fks := p.ForeignKeys()

	type tupleCase struct {
		t      relation.Tuple
		cnf    [][]int
		nVars  int
		vars   []int
		varID  map[int]int
		optima int
	}
	var cases []tupleCase
	best := -1
	seenCase := map[string]bool{}
	for _, side := range []struct {
		qa, qb ra.Node
		diff   *relation.Relation
	}{{p.Q1, p.Q2, d12}, {p.Q2, p.Q1, d21}} {
		for _, t := range side.diff.Tuples {
			if err := p.interrupted(); err != nil {
				return nil, err
			}
			prov, err := provOfPushedTuple(side.qa, side.qb, t, p)
			if err != nil {
				return nil, err
			}
			if prov == nil {
				continue
			}
			b, counted, varToID, err := buildCNF(prov, p.DB, fks)
			if err != nil {
				return nil, err
			}
			if key := cnfKey(b.Clauses, counted, varToID); seenCase[key] {
				continue
			} else {
				seenCase[key] = true
			}
			r := minones.Minimize(b.NumVars, b.Clauses, counted, p.solverOpts())
			if r.Status == minones.Infeasible || r.Status == minones.Unknown {
				// Infeasible: no witness exists. Unknown: no model in
				// budget — either way there is no model to enumerate from.
				continue
			}
			if best < 0 || r.Cost < best {
				best = r.Cost
			}
			cases = append(cases, tupleCase{
				t: t, cnf: b.Clauses, nVars: b.NumVars, vars: counted, varID: varToID, optima: r.Cost,
			})
		}
	}
	if best < 0 {
		// Distinguish "the budget cut every solve short" from a genuine
		// absence of witnesses, as the sibling algorithms do.
		if err := p.interrupted(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("core: no witnesses found")
	}

	// Collect every fresh candidate id-set across the optimal cases, then
	// verify them in one batch.
	type candidate struct {
		ids []int
		t   relation.Tuple
	}
	seen := map[string]bool{}
	var scratch []byte
	var pending []candidate
	for _, c := range cases {
		if c.optima != best {
			continue
		}
		if err := p.interrupted(); err != nil {
			return nil, err
		}
		models := minones.EnumerateAtCost(c.nVars, c.cnf, c.vars, best, max, p.solverOpts())
		for _, m := range models {
			ids := modelToIDs(m, c.vars, c.varID)
			sort.Ints(ids)
			scratch = idsKey(ids, scratch[:0])
			if seen[string(scratch)] {
				continue
			}
			seen[string(scratch)] = true
			pending = append(pending, candidate{ids: ids, t: c.t})
		}
	}
	idSets := make([][]int, len(pending))
	for i, c := range pending {
		idSets[i] = c.ids
	}
	ces, err := verifyBatchWith(p, chk, idSets)
	if err != nil {
		return nil, err
	}
	var out []*Counterexample
	for i, ce := range ces {
		if ce == nil {
			continue
		}
		ce.Witness = pending[i].t
		out = append(out, ce)
		if len(out) >= max {
			break
		}
	}
	if len(out) == 0 {
		if err := p.interrupted(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("core: enumeration found no verifying counterexamples")
	}
	return out, nil
}

func provOfPushedTuple(qa, qb ra.Node, t relation.Tuple, p Problem) (*boolexpr.Expr, error) {
	pushed := PushDownTupleSelection(&ra.Diff{L: qa, R: qb}, t, p.DB)
	ann, err := engine.EvalProvOpts(pushed, p.DB, p.Params, p.engineOpts())
	if err != nil {
		return nil, err
	}
	i := ann.Lookup(t)
	if i < 0 {
		return nil, nil
	}
	return ann.Anns[i], nil
}

// idsKey appends a compact binary encoding of the (sorted) id set to buf
// and returns the extended buffer. The previous implementation went through
// fmt.Sprint and strings.Join — two allocations per id on the enumeration
// hot path; this one allocates nothing (callers reuse the buffer and only
// the map's own string interning copies it, and only when the key is new).
func idsKey(ids []int, buf []byte) []byte {
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	return buf
}

// cnfKey fingerprints a grounded witness formula: the clauses, the counted
// variables, and — crucially — which base tuple each counted variable
// stands for. Two witness cases with equal keys enumerate models that
// decode to identical id sets, so the second case's solver work is pure
// redundancy. Clause/variable numbering is build-order dependent, and
// structurally isomorphic formulas over different base tuples (same
// clauses, different varToID grounding) decode to different witnesses, so
// the grounding must be part of the key.
func cnfKey(clauses [][]int, counted []int, varToID map[int]int) string {
	var buf []byte
	for _, c := range clauses {
		for _, lit := range c {
			buf = binary.AppendVarint(buf, int64(lit))
		}
		buf = append(buf, 0)
	}
	buf = append(buf, 1)
	for _, v := range counted {
		buf = binary.AppendVarint(buf, int64(v))
		buf = binary.AppendVarint(buf, int64(varToID[v]))
	}
	return string(buf)
}
