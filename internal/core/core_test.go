package core

import (
	"fmt"
	"testing"

	"repro/internal/ra"
	"repro/internal/raparser"
	"repro/internal/relation"
	"repro/internal/testdb"
)

func example1Problem() Problem {
	return Problem{Q1: testdb.Q1(), Q2: testdb.Q2(), DB: testdb.Example1DB()}
}

func TestOptSigmaExample1(t *testing.T) {
	// The paper's headline example: the smallest counterexample has 3
	// tuples (a CS student plus two of their CS registrations).
	p := example1Problem()
	ce, stats, err := OptSigma(p)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Size() != 3 {
		t.Fatalf("counterexample size = %d, want 3 (ids %v)", ce.Size(), ce.IDs)
	}
	if !stats.Optimal {
		t.Error("optimizer should prove optimality")
	}
	if err := Verify(p, ce); err != nil {
		t.Errorf("verification failed: %v", err)
	}
	// It must contain exactly 1 student and 2 registrations.
	if ce.DB.Relation("Student").Len() != 1 || ce.DB.Relation("Registration").Len() != 2 {
		t.Errorf("shape = %d students, %d registrations", ce.DB.Relation("Student").Len(), ce.DB.Relation("Registration").Len())
	}
}

func TestBasicExample1(t *testing.T) {
	p := example1Problem()
	ce, stats, err := Basic(p, 128)
	if err != nil {
		t.Fatal(err)
	}
	// Basic enumerates enough models on this toy instance to find the
	// optimum too (the paper found Basic reaches the optimum here).
	if ce.Size() != 3 {
		t.Errorf("Basic size = %d, want 3", ce.Size())
	}
	if stats.ModelsTried == 0 {
		t.Error("no models tried")
	}
}

func TestBasicNeverSmallerThanOptSigma(t *testing.T) {
	p := example1Problem()
	ceB, _, err := Basic(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	ceO, _, err := OptSigma(p)
	if err != nil {
		t.Fatal(err)
	}
	if ceB.Size() < ceO.Size() {
		t.Errorf("Basic (%d) beat the optimizer (%d)", ceB.Size(), ceO.Size())
	}
}

func TestOptSigmaWithForeignKeys(t *testing.T) {
	// With the Registration→Student FK, any witness keeping a registration
	// must keep the referenced student.
	p := example1Problem()
	p.Constraints = testdb.Constraints()
	ce, _, err := OptSigma(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, ce); err != nil {
		t.Fatalf("FK-constrained counterexample invalid: %v", err)
	}
	// Size is still 3: the student tuple was needed anyway.
	if ce.Size() != 3 {
		t.Errorf("size = %d, want 3", ce.Size())
	}
}

func TestForeignKeyForcesParent(t *testing.T) {
	// A query pair whose witness needs only a Registration tuple; the FK
	// must pull in the Student parent.
	db := testdb.Example1DB()
	q1 := raparser.MustParse("project[name](select[dept = 'CS'](Registration))")
	q2 := raparser.MustParse("project[name](select[dept = 'PHYS'](Registration))")
	p := Problem{Q1: q1, Q2: q2, DB: db, Constraints: testdb.Constraints()}
	ce, _, err := OptSigma(p)
	if err != nil {
		t.Fatal(err)
	}
	if ce.DB.Relation("Student").Len() != 1 {
		t.Errorf("FK should force the parent student, got %d students", ce.DB.Relation("Student").Len())
	}
	if ce.Size() != 2 {
		t.Errorf("size = %d, want 2 (registration + parent)", ce.Size())
	}
	// Without the FK, one registration tuple suffices.
	p2 := Problem{Q1: q1, Q2: q2, DB: db}
	ce2, _, err := OptSigma(p2)
	if err != nil {
		t.Fatal(err)
	}
	if ce2.Size() != 1 {
		t.Errorf("unconstrained size = %d, want 1", ce2.Size())
	}
}

func TestMonotoneSWP(t *testing.T) {
	db := testdb.Example1DB()
	// Q1 monotone: CS students; Q2 monotone: ECON-department students.
	q1 := raparser.MustParse("project[name](select[dept = 'CS'](Student join Registration))")
	q2 := raparser.MustParse("project[name](select[dept = 'PHYS'](Student join Registration))")
	p := Problem{Q1: q1, Q2: q2, DB: db}
	ce, stats, err := MonotoneSWP(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Size() != 2 {
		t.Errorf("size = %d, want 2 (student + registration)", ce.Size())
	}
	if !stats.Optimal {
		t.Error("DNF algorithm is exact")
	}
	// Agreement with the solver-based algorithm.
	ce2, _, err := OptSigma(p)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Size() != ce2.Size() {
		t.Errorf("DNF (%d) and OptSigma (%d) disagree", ce.Size(), ce2.Size())
	}
}

func TestMonotoneSWPRejectsNonMonotone(t *testing.T) {
	p := example1Problem() // Q1 contains difference
	if _, _, err := MonotoneSWP(p, 0); err == nil {
		t.Error("non-monotone query should be rejected")
	}
}

func TestSPJUDStarExample1(t *testing.T) {
	// Q1 and Q2 of Example 1 are SPJUD* (Q1 = q+ − q+, Q2 = q+).
	p := example1Problem()
	if !ra.IsSPJUDStar(p.Q1) || !ra.IsSPJUDStar(p.Q2) {
		t.Fatal("example queries should be SPJUD*")
	}
	ce, stats, err := SPJUDStarSWP(p, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Size() != 3 {
		t.Errorf("SPJUD* enumeration size = %d, want 3", ce.Size())
	}
	if !stats.Optimal {
		t.Error("enumeration is exact")
	}
}

func TestPushDownTupleSelection(t *testing.T) {
	db := testdb.Example1DB()
	q := testdb.Q2()
	tup := relation.NewTuple(relation.String("Mary"), relation.String("CS"))
	pushed := PushDownTupleSelection(q, tup, db)
	// The pushed tree must still produce Mary (and only rows matching her
	// values).
	s := pushed.String()
	if s == q.String() {
		t.Error("pushdown did not rewrite the tree")
	}
	// Selections must have been pushed below the projection.
	if _, ok := pushed.(*ra.Select); ok {
		t.Errorf("selection stayed at top: %s", s)
	}
}

func TestVerifyRejectsBogus(t *testing.T) {
	p := example1Problem()
	// Empty subinstance: queries agree (both empty).
	sub, ids := subinstanceFromIDs(p.DB, nil)
	ce := &Counterexample{DB: sub, IDs: ids}
	if err := Verify(p, ce); err == nil {
		t.Error("empty subinstance should fail verification")
	}
}

func TestDisagrees(t *testing.T) {
	p := example1Problem()
	d, d12, d21, err := Disagrees(p.Q1, p.Q2, p.DB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d {
		t.Fatal("queries must disagree")
	}
	if d12.Len() != 0 || d21.Len() != 2 {
		t.Errorf("d12=%d d21=%d, want 0 and 2", d12.Len(), d21.Len())
	}
	// A query disagrees with itself never.
	d, _, _, err = Disagrees(p.Q1, p.Q1, p.DB, nil)
	if err != nil || d {
		t.Error("query agrees with itself")
	}
}

func TestExplainDispatch(t *testing.T) {
	p := example1Problem()
	if AlgorithmFor(p) != "OptSigma" {
		t.Error("SPJUD should dispatch to OptSigma")
	}
	ce, stats, err := Explain(p)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Size() != 3 || stats.Algorithm != "OptSigma" {
		t.Errorf("size=%d algo=%s", ce.Size(), stats.Algorithm)
	}

	pa := Problem{Q1: testdb.AggQ1(), Q2: testdb.AggQ2(), DB: testdb.Example1DB()}
	if AlgorithmFor(pa) != "Agg-Opt" {
		t.Error("aggregates should dispatch to Agg-Opt")
	}
	ce, _, err = Explain(pa)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(pa, ce); err != nil {
		t.Errorf("aggregate counterexample invalid: %v", err)
	}
	// Mixing aggregate and non-aggregate is rejected.
	if _, _, err := Explain(Problem{Q1: testdb.AggQ1(), Q2: testdb.Q2(), DB: testdb.Example1DB()}); err == nil {
		t.Error("mixed classes should error")
	}
}

func TestAgreeingQueriesError(t *testing.T) {
	db := testdb.Example1DB()
	q := raparser.MustParse("project[name](Student)")
	p := Problem{Q1: q, Q2: q, DB: db}
	if _, _, err := OptSigma(p); err == nil {
		t.Error("agreeing queries should error")
	}
	if _, _, err := Basic(p, 8); err == nil {
		t.Error("agreeing queries should error (Basic)")
	}
}

func TestSolveWitnessStrategy(t *testing.T) {
	p := example1Problem()
	optSize, _, err := SolveWitnessStrategy(p, "opt", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{1, 16, 128} {
		size, tried, err := SolveWitnessStrategy(p, "naive", m)
		if err != nil {
			t.Fatal(err)
		}
		if size < optSize {
			t.Errorf("naive-%d (%d) beat opt (%d)", m, size, optSize)
		}
		if tried > m {
			t.Errorf("naive-%d tried %d models", m, tried)
		}
	}
}

// TestParallelWitnessSearchMatchesSerial: the fan-out loops of Basic and
// OptSigmaAll reduce per-index results in iteration order, so the chosen
// counterexample is identical to the serial algorithms'.
func TestParallelWitnessSearchMatchesSerial(t *testing.T) {
	saved := Workers
	t.Cleanup(func() { Workers = saved })
	p := example1Problem()

	Workers = 1
	ceBS, _, err := Basic(p, 128)
	if err != nil {
		t.Fatal(err)
	}
	ceAS, _, err := OptSigmaAll(p)
	if err != nil {
		t.Fatal(err)
	}
	Workers = 8
	for run := 0; run < 3; run++ {
		ceBP, _, err := Basic(p, 128)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(ceBP.IDs) != fmt.Sprint(ceBS.IDs) || !ceBP.Witness.Identical(ceBS.Witness) {
			t.Fatalf("Basic parallel ids %v witness %v, serial ids %v witness %v",
				ceBP.IDs, ceBP.Witness, ceBS.IDs, ceBS.Witness)
		}
		ceAP, _, err := OptSigmaAll(p)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(ceAP.IDs) != fmt.Sprint(ceAS.IDs) || !ceAP.Witness.Identical(ceAS.Witness) {
			t.Fatalf("OptSigmaAll parallel ids %v witness %v, serial ids %v witness %v",
				ceAP.IDs, ceAP.Witness, ceAS.IDs, ceAS.Witness)
		}
	}
}
