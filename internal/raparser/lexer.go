// Package raparser parses the textual relational algebra syntax used by
// RATest-style tools (the paper's Section 6 uses a similar RA interpreter):
//
//	project[name, major](select[dept = 'CS'](Student join Registration))
//	(q1 diff q2)
//	groupby[name; avg(grade) -> avg_grade](...)
//	select[cnt >= @numCS](groupby[name; count(*) -> cnt](...))
//
// Operators: select[pred], project[cols], rename[alias], groupby[cols; aggs],
// and the infix join / join[pred] / union / diff with standard precedence
// (join binds tightest, then union, then diff; all left-associative).
package raparser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokParam  // @name
	tokSymbol // punctuation / operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokString, text: s, pos: start})
		case c == '@':
			l.pos++
			id := l.lexIdent()
			if id == "" {
				return nil, fmt.Errorf("raparser: empty parameter name at %d", start)
			}
			l.toks = append(l.toks, token{kind: tokParam, text: id, pos: start})
		case unicode.IsDigit(rune(c)) || (c == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1])) && l.numericContext()):
			l.toks = append(l.toks, token{kind: tokNumber, text: l.lexNumber(), pos: start})
		case isIdentStart(c):
			l.toks = append(l.toks, token{kind: tokIdent, text: l.lexIdent(), pos: start})
		default:
			sym := l.lexSymbol()
			if sym == "" {
				return nil, fmt.Errorf("raparser: unexpected character %q at %d", c, start)
			}
			l.toks = append(l.toks, token{kind: tokSymbol, text: sym, pos: start})
		}
	}
}

// numericContext reports whether a '-' should start a negative number
// (i.e. the previous token is not an operand).
func (l *lexer) numericContext() bool {
	if len(l.toks) == 0 {
		return true
	}
	last := l.toks[len(l.toks)-1]
	switch last.kind {
	case tokIdent, tokNumber, tokString, tokParam:
		return false
	case tokSymbol:
		return last.text != ")" && last.text != "]"
	}
	return true
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '#' { // comment to end of line
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

func (l *lexer) lexString() (string, error) {
	// assumes src[pos] == '\''
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("raparser: unterminated string literal")
}

func (l *lexer) lexNumber() string {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1])) {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	return l.src[start:l.pos]
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) lexIdent() string {
	start := l.pos
	for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
		l.pos++
	}
	// Allow qualified names a.b (but not a trailing dot).
	if l.pos < len(l.src) && l.src[l.pos] == '.' && l.pos+1 < len(l.src) && isIdentStart(l.src[l.pos+1]) {
		l.pos++
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
	}
	return l.src[start:l.pos]
}

var symbols = []string{"->", "<=", ">=", "<>", "!=", "(", ")", "[", "]", ",", ";", "=", "<", ">", "+", "-", "*", "/"}

func (l *lexer) lexSymbol() string {
	rest := l.src[l.pos:]
	for _, s := range symbols {
		if strings.HasPrefix(rest, s) {
			l.pos += len(s)
			return s
		}
	}
	return ""
}
