package raparser

import (
	"strings"
	"testing"

	"repro/internal/ra"
	"repro/internal/relation"
)

func TestParseBaseRelation(t *testing.T) {
	n, err := Parse("Student")
	if err != nil {
		t.Fatal(err)
	}
	r, ok := n.(*ra.Rel)
	if !ok || r.Name != "Student" {
		t.Errorf("got %T %v", n, n)
	}
}

func TestParseSelectProject(t *testing.T) {
	n, err := Parse("project[name, major](select[dept = 'CS'](Student join Registration))")
	if err != nil {
		t.Fatal(err)
	}
	p, ok := n.(*ra.Project)
	if !ok {
		t.Fatalf("got %T", n)
	}
	if len(p.Cols) != 2 || p.Cols[0] != "name" {
		t.Errorf("cols = %v", p.Cols)
	}
	s, ok := p.In.(*ra.Select)
	if !ok {
		t.Fatalf("inner = %T", p.In)
	}
	j, ok := s.In.(*ra.Join)
	if !ok || j.Cond != nil {
		t.Errorf("join = %v", s.In)
	}
}

func TestParsePrecedence(t *testing.T) {
	// join binds tighter than union, union tighter than diff.
	n, err := Parse("A union B join C diff D")
	if err != nil {
		t.Fatal(err)
	}
	d, ok := n.(*ra.Diff)
	if !ok {
		t.Fatalf("top = %T", n)
	}
	u, ok := d.L.(*ra.Union)
	if !ok {
		t.Fatalf("left of diff = %T", d.L)
	}
	if _, ok := u.R.(*ra.Join); !ok {
		t.Fatalf("right of union = %T", u.R)
	}
}

func TestParseThetaJoin(t *testing.T) {
	n, err := Parse("rename[a](R) join[a.x = b.y] rename[b](S)")
	if err != nil {
		t.Fatal(err)
	}
	j, ok := n.(*ra.Join)
	if !ok || j.Cond == nil {
		t.Fatalf("got %T cond=%v", n, nil)
	}
	c, ok := j.Cond.(*ra.Cmp)
	if !ok || c.Op != ra.EQ {
		t.Errorf("cond = %v", j.Cond)
	}
}

func TestParseGroupBy(t *testing.T) {
	n, err := Parse("groupby[name; avg(grade) -> g, count(*) -> c, sum(grade)](R)")
	if err != nil {
		t.Fatal(err)
	}
	g, ok := n.(*ra.GroupBy)
	if !ok {
		t.Fatalf("got %T", n)
	}
	if len(g.GroupCols) != 1 || g.GroupCols[0] != "name" {
		t.Errorf("group cols = %v", g.GroupCols)
	}
	if len(g.Aggs) != 3 {
		t.Fatalf("aggs = %v", g.Aggs)
	}
	if g.Aggs[0].Func != ra.Avg || g.Aggs[0].As != "g" {
		t.Errorf("agg0 = %v", g.Aggs[0])
	}
	if g.Aggs[1].Func != ra.Count || g.Aggs[1].Attr != "" || g.Aggs[1].As != "c" {
		t.Errorf("agg1 = %v", g.Aggs[1])
	}
	if g.Aggs[2].As != "sum_grade" {
		t.Errorf("default name = %q", g.Aggs[2].As)
	}
}

func TestParseGroupByNoGroupCols(t *testing.T) {
	n, err := Parse("groupby[; count(*) -> c](R)")
	if err != nil {
		t.Fatal(err)
	}
	g := n.(*ra.GroupBy)
	if len(g.GroupCols) != 0 {
		t.Errorf("group cols = %v", g.GroupCols)
	}
}

func TestParsePredicates(t *testing.T) {
	n, err := Parse("select[a = 1 and (b > 2.5 or not c <> 'x') and d >= @p](R)")
	if err != nil {
		t.Fatal(err)
	}
	s := n.(*ra.Select)
	and, ok := s.Pred.(*ra.And)
	if !ok || len(and.Kids) != 3 {
		t.Fatalf("pred = %v", s.Pred)
	}
	if _, ok := and.Kids[1].(*ra.Or); !ok {
		t.Errorf("second kid = %T", and.Kids[1])
	}
	cmp := and.Kids[2].(*ra.Cmp)
	if _, ok := cmp.R.(*ra.Param); !ok {
		t.Errorf("param operand = %T", cmp.R)
	}
}

func TestParseArithmetic(t *testing.T) {
	n, err := Parse("select[a + b * 2 > 10](R)")
	if err != nil {
		t.Fatal(err)
	}
	cmp := n.(*ra.Select).Pred.(*ra.Cmp)
	add, ok := cmp.L.(*ra.Arith)
	if !ok || add.Op != '+' {
		t.Fatalf("lhs = %v", cmp.L)
	}
	mul, ok := add.R.(*ra.Arith)
	if !ok || mul.Op != '*' {
		t.Errorf("precedence broken: %v", add.R)
	}
}

func TestParseLiterals(t *testing.T) {
	n, err := Parse("select[a = -5 and b = 'it''s' and c = null and d = true](R)")
	if err != nil {
		t.Fatal(err)
	}
	and := n.(*ra.Select).Pred.(*ra.And)
	c0 := and.Kids[0].(*ra.Cmp).R.(*ra.Const)
	if !c0.Val.Identical(relation.Int(-5)) {
		t.Errorf("negative literal = %v", c0.Val)
	}
	c1 := and.Kids[1].(*ra.Cmp).R.(*ra.Const)
	if !c1.Val.Identical(relation.String("it's")) {
		t.Errorf("escaped string = %v", c1.Val)
	}
	c2 := and.Kids[2].(*ra.Cmp).R.(*ra.Const)
	if !c2.Val.IsNull() {
		t.Errorf("null literal = %v", c2.Val)
	}
}

func TestParseQualifiedNames(t *testing.T) {
	n, err := Parse("select[s.name = r1.name](rename[s](Student) cross rename[r1](Registration))")
	if err != nil {
		t.Fatal(err)
	}
	cmp := n.(*ra.Select).Pred.(*ra.Cmp)
	l := cmp.L.(*ra.AttrRef)
	if l.Name != "s.name" {
		t.Errorf("qualified ref = %q", l.Name)
	}
}

func TestParseComments(t *testing.T) {
	src := `# the correct query
	project[name](Student) # trailing comment
	`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select[",
		"project[]( R )",
		"select[a =](R)",
		"groupby[x; median(a)](R)",
		"project[a](R) extra",
		"select[a = 'unterminated](R)",
		"@",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	// String() output of a parsed tree reparses to an equal-shape tree.
	srcs := []string{
		"project[name, major](select[dept = 'CS'](Student join Registration))",
		"(A union B) diff project[x](C)",
		"groupby[name; count(*) -> c](select[g > 1](R))",
		"rename[s](Student) join[s.name = r.name] rename[r](Registration)",
	}
	for _, src := range srcs {
		n1, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		n2, err := Parse(n1.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", n1.String(), err)
		}
		if n1.String() != n2.String() {
			t.Errorf("round trip mismatch:\n%s\n%s", n1, n2)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("select[")
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	n, err := Parse("PROJECT[a](SELECT[x = 1](R UNION S))")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(n.String(), "union") {
		t.Errorf("parse = %s", n)
	}
}
