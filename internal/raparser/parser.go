package raparser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ra"
	"repro/internal/relation"
)

// Parse parses a relational algebra query.
func Parse(src string) (ra.Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("raparser: trailing input at %d: %q", p.peek().pos, p.peek().text)
	}
	return n, nil
}

// MustParse parses a query and panics on error; for tests and fixtures.
func MustParse(src string) ra.Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	if t.kind != kind {
		return false
	}
	if text == "" {
		return true
	}
	if kind == tokIdent {
		return strings.EqualFold(t.text, text)
	}
	return t.text == text
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		return token{}, fmt.Errorf("raparser: expected %q at %d, found %q", text, p.peek().pos, p.peek().text)
	}
	return p.next(), nil
}

// parseQuery := diff level (lowest precedence).
func (p *parser) parseQuery() (ra.Node, error) {
	left, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	for p.at(tokIdent, "diff") || p.at(tokIdent, "except") || p.at(tokIdent, "minus") {
		p.next()
		right, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		left = &ra.Diff{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnion() (ra.Node, error) {
	left, err := p.parseJoin()
	if err != nil {
		return nil, err
	}
	for p.at(tokIdent, "union") {
		p.next()
		right, err := p.parseJoin()
		if err != nil {
			return nil, err
		}
		left = &ra.Union{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseJoin() (ra.Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokIdent, "join") || p.at(tokIdent, "cross") {
		cross := p.at(tokIdent, "cross")
		p.next()
		var cond ra.Expr
		if !cross && p.at(tokSymbol, "[") {
			p.next()
			cond, err = p.parsePred()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, "]"); err != nil {
				return nil, err
			}
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if cross {
			// Cross product: theta join with constant-true condition.
			cond = &ra.Cmp{Op: ra.EQ, L: &ra.Const{Val: relation.Int(1)}, R: &ra.Const{Val: relation.Int(1)}}
		}
		left = &ra.Join{L: left, R: right, Cond: cond}
	}
	return left, nil
}

func (p *parser) parseUnary() (ra.Node, error) {
	t := p.peek()
	if t.kind == tokSymbol && t.text == "(" {
		p.next()
		n, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return n, nil
	}
	if t.kind != tokIdent {
		return nil, fmt.Errorf("raparser: expected operator or relation at %d, found %q", t.pos, t.text)
	}
	switch strings.ToLower(t.text) {
	case "select":
		p.next()
		if _, err := p.expect(tokSymbol, "["); err != nil {
			return nil, err
		}
		pred, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "]"); err != nil {
			return nil, err
		}
		in, err := p.parseParenQuery()
		if err != nil {
			return nil, err
		}
		return &ra.Select{Pred: pred, In: in}, nil
	case "project":
		p.next()
		if _, err := p.expect(tokSymbol, "["); err != nil {
			return nil, err
		}
		cols, err := p.parseCols()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "]"); err != nil {
			return nil, err
		}
		in, err := p.parseParenQuery()
		if err != nil {
			return nil, err
		}
		return &ra.Project{Cols: cols, In: in}, nil
	case "rename":
		p.next()
		if _, err := p.expect(tokSymbol, "["); err != nil {
			return nil, err
		}
		alias, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "]"); err != nil {
			return nil, err
		}
		in, err := p.parseParenQuery()
		if err != nil {
			return nil, err
		}
		return &ra.Rename{As: alias.text, In: in}, nil
	case "groupby":
		p.next()
		if _, err := p.expect(tokSymbol, "["); err != nil {
			return nil, err
		}
		var cols []string
		if !p.at(tokSymbol, ";") {
			var err error
			cols, err = p.parseCols()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokSymbol, ";"); err != nil {
			return nil, err
		}
		aggs, err := p.parseAggs()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "]"); err != nil {
			return nil, err
		}
		in, err := p.parseParenQuery()
		if err != nil {
			return nil, err
		}
		return &ra.GroupBy{GroupCols: cols, Aggs: aggs, In: in}, nil
	default:
		// Base relation reference.
		p.next()
		return &ra.Rel{Name: t.text}, nil
	}
}

func (p *parser) parseParenQuery() (ra.Node, error) {
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	n, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return n, nil
}

func (p *parser) parseCols() ([]string, error) {
	var cols []string
	for {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		cols = append(cols, t.text)
		if !p.at(tokSymbol, ",") {
			return cols, nil
		}
		p.next()
	}
}

func (p *parser) parseAggs() ([]ra.AggSpec, error) {
	var aggs []ra.AggSpec
	for {
		fn, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		f, ok := ra.ParseAggFunc(fn.text)
		if !ok {
			return nil, fmt.Errorf("raparser: unknown aggregate %q at %d", fn.text, fn.pos)
		}
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		attr := ""
		if p.at(tokSymbol, "*") {
			p.next()
		} else {
			t, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			attr = t.text
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		as := f.String()
		if attr != "" {
			as = f.String() + "_" + relation.BaseName(attr)
		}
		if p.at(tokSymbol, "->") {
			p.next()
			t, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			as = t.text
		}
		aggs = append(aggs, ra.AggSpec{Func: f, Attr: attr, As: as})
		if !p.at(tokSymbol, ",") {
			return aggs, nil
		}
		p.next()
	}
}

// Predicate grammar: or > and > not > comparison > additive > multiplicative.
func (p *parser) parsePred() (ra.Expr, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (ra.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []ra.Expr{left}
	for p.at(tokIdent, "or") {
		p.next()
		k, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &ra.Or{Kids: kids}, nil
}

func (p *parser) parseAnd() (ra.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	kids := []ra.Expr{left}
	for p.at(tokIdent, "and") {
		p.next()
		k, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &ra.And{Kids: kids}, nil
}

func (p *parser) parseNot() (ra.Expr, error) {
	if p.at(tokIdent, "not") {
		p.next()
		k, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ra.Not{Kid: k}, nil
	}
	if p.at(tokSymbol, "(") {
		// Could be a parenthesized predicate; try it and backtrack to an
		// arithmetic interpretation if a comparison operator follows.
		save := p.i
		p.next()
		inner, err := p.parsePred()
		if err == nil && p.at(tokSymbol, ")") {
			p.next()
			if !p.atCmpOp() && !p.atArithOp() {
				return inner, nil
			}
		}
		p.i = save
	}
	return p.parseCmp()
}

func (p *parser) atCmpOp() bool {
	t := p.peek()
	if t.kind != tokSymbol {
		return false
	}
	switch t.text {
	case "=", "<>", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *parser) atArithOp() bool {
	t := p.peek()
	if t.kind != tokSymbol {
		return false
	}
	switch t.text {
	case "+", "-", "*", "/":
		return true
	}
	return false
}

func (p *parser) parseCmp() (ra.Expr, error) {
	left, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	if !p.atCmpOp() {
		return left, nil
	}
	opTok := p.next()
	var op ra.CmpOp
	switch opTok.text {
	case "=":
		op = ra.EQ
	case "<>", "!=":
		op = ra.NE
	case "<":
		op = ra.LT
	case "<=":
		op = ra.LE
	case ">":
		op = ra.GT
	case ">=":
		op = ra.GE
	}
	right, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	return &ra.Cmp{Op: op, L: left, R: right}, nil
}

func (p *parser) parseSum() (ra.Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.at(tokSymbol, "+") || p.at(tokSymbol, "-") {
		op := p.next().text[0]
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &ra.Arith{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseTerm() (ra.Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.at(tokSymbol, "*") || p.at(tokSymbol, "/") {
		op := p.next().text[0]
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &ra.Arith{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseFactor() (ra.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("raparser: bad number %q at %d", t.text, t.pos)
			}
			return &ra.Const{Val: relation.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("raparser: bad number %q at %d", t.text, t.pos)
		}
		return &ra.Const{Val: relation.Int(i)}, nil
	case tokString:
		p.next()
		return &ra.Const{Val: relation.String(t.text)}, nil
	case tokParam:
		p.next()
		return &ra.Param{Name: t.text}, nil
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "null":
			p.next()
			return &ra.Const{Val: relation.Null()}, nil
		case "true":
			p.next()
			return &ra.Const{Val: relation.Bool(true)}, nil
		case "false":
			p.next()
			return &ra.Const{Val: relation.Bool(false)}, nil
		}
		p.next()
		return &ra.AttrRef{Name: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseSum()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("raparser: unexpected token %q at %d", t.text, t.pos)
}
