package sat

// varHeap is a max-heap of variables ordered by activity, with position
// tracking for decrease-key (activity only ever increases, which moves a
// variable up).
type varHeap struct {
	act  *[]float64
	heap []int
	pos  []int // var -> index in heap, -1 if absent
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{act: act}
}

func (h *varHeap) less(a, b int) bool {
	return (*h.act)[h.heap[a]] > (*h.act)[h.heap[b]]
}

func (h *varHeap) inHeap(v int) bool {
	return v < len(h.pos) && h.pos[v] >= 0
}

func (h *varHeap) insert(v int) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] >= 0 {
		return
	}
	h.pos[v] = len(h.heap)
	h.heap = append(h.heap, v)
	h.up(h.pos[v])
}

func (h *varHeap) removeMin() (int, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.pos[last] = 0
		h.down(0)
	}
	return v, true
}

// decrease re-sifts v upward after its activity increased (max-heap).
func (h *varHeap) decrease(v int) {
	if h.pos[v] >= 0 {
		h.up(h.pos[v])
	}
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	//lint:budgeted sift-down descends a finite binary heap, at most log(n) steps
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.heap) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.heap) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *varHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}
