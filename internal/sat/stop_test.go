package sat

import "testing"

// php builds the unsatisfiable pigeonhole clauses PHP(n+1, n): variable
// (i, j) means pigeon i sits in hole j.
func php(pigeons, holes int) (*Solver, int) {
	s := New()
	v := func(i, j int) int { return i*holes + j + 1 }
	s.EnsureVars(pigeons * holes)
	for i := 0; i < pigeons; i++ {
		c := make([]int, holes)
		for j := 0; j < holes; j++ {
			c[j] = v(i, j)
		}
		_ = s.AddClause(c...)
	}
	for j := 0; j < holes; j++ {
		for i := 0; i < pigeons; i++ {
			for k := i + 1; k < pigeons; k++ {
				_ = s.AddClause(-v(i, j), -v(k, j))
			}
		}
	}
	return s, pigeons * holes
}

// A Stop hook that fires must abort a hard solve with Unknown, and the
// solver must remain usable afterwards.
func TestStopHookAborts(t *testing.T) {
	s, _ := php(9, 8)
	polls := 0
	s.Stop = func() bool {
		polls++
		return true
	}
	if st := s.Solve(); st != Unknown {
		t.Fatalf("Solve with firing Stop = %v, want Unknown", st)
	}
	if polls == 0 {
		t.Fatal("Stop hook was never polled")
	}
	// Clearing the hook lets the same solver finish the proof.
	s.Stop = nil
	if st := s.Solve(); st != Unsat {
		t.Fatalf("Solve after clearing Stop = %v, want Unsat", st)
	}
}

// A Stop hook that never fires must not change the outcome.
func TestStopHookInert(t *testing.T) {
	s, _ := php(6, 5)
	s.Stop = func() bool { return false }
	if st := s.Solve(); st != Unsat {
		t.Fatalf("Solve with inert Stop = %v, want Unsat", st)
	}
}
