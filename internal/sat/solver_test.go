package sat

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	s := New()
	if st := s.Solve(); st != Sat {
		t.Fatalf("empty formula should be SAT, got %v", st)
	}
	if err := s.AddClause(1); err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("unit formula should be SAT, got %v", st)
	}
	if !s.Value(1) {
		t.Error("x1 should be true")
	}
}

func TestUnsatPair(t *testing.T) {
	s := New()
	if err := s.AddClause(1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClause(-1); err == nil {
		// AddClause may detect inconsistency immediately or at Solve.
		if st := s.Solve(); st != Unsat {
			t.Fatalf("x ∧ ¬x should be UNSAT, got %v", st)
		}
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	s := New()
	// x1, x1->x2, x2->x3, i.e. clauses (x1)(¬x1 x2)(¬x2 x3).
	check(t, s.AddClause(1))
	check(t, s.AddClause(-1, 2))
	check(t, s.AddClause(-2, 3))
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if !s.Value(1) || !s.Value(2) || !s.Value(3) {
		t.Error("chain should force all true")
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons into n holes is UNSAT. Classic CDCL stressor.
	for _, n := range []int{3, 4, 5, 6} {
		s := New()
		vr := func(p, h int) int { return p*n + h + 1 }
		for p := 0; p <= n; p++ {
			cl := make([]int, n)
			for h := 0; h < n; h++ {
				cl[h] = vr(p, h)
			}
			check(t, s.AddClause(cl...))
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					check(t, s.AddClause(-vr(p1, h), -vr(p2, h)))
				}
			}
		}
		if st := s.Solve(); st != Unsat {
			t.Fatalf("PHP(%d,%d) should be UNSAT, got %v", n+1, n, st)
		}
	}
}

func TestSatisfiablePigeonhole(t *testing.T) {
	// n pigeons into n holes is SAT.
	n := 6
	s := New()
	vr := func(p, h int) int { return p*n + h + 1 }
	for p := 0; p < n; p++ {
		cl := make([]int, n)
		for h := 0; h < n; h++ {
			cl[h] = vr(p, h)
		}
		check(t, s.AddClause(cl...))
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 < n; p1++ {
			for p2 := p1 + 1; p2 < n; p2++ {
				check(t, s.AddClause(-vr(p1, h), -vr(p2, h)))
			}
		}
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("PHP(%d,%d) should be SAT, got %v", n, n, st)
	}
	// Verify the model is a valid assignment.
	for p := 0; p < n; p++ {
		cnt := 0
		for h := 0; h < n; h++ {
			if s.Value(vr(p, h)) {
				cnt++
			}
		}
		if cnt < 1 {
			t.Errorf("pigeon %d unplaced", p)
		}
	}
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 300; trial++ {
		nVars := 4 + rng.Intn(8)
		nClauses := 2 + rng.Intn(nVars*4)
		clauses := make([][]int, nClauses)
		for i := range clauses {
			k := 1 + rng.Intn(3)
			cl := make([]int, k)
			for j := range cl {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl[j] = v
			}
			clauses[i] = cl
		}
		want := bruteForceSat(nVars, clauses)
		s := New()
		unsatAtAdd := false
		for _, cl := range clauses {
			if err := s.AddClause(cl...); err != nil {
				unsatAtAdd = true
				break
			}
		}
		var got bool
		if unsatAtAdd {
			got = false
		} else {
			st := s.Solve()
			got = st == Sat
			if st == Sat {
				// Verify model satisfies all clauses.
				for _, cl := range clauses {
					ok := false
					for _, l := range cl {
						v := l
						if v < 0 {
							v = -v
						}
						if (l > 0) == s.Value(v) {
							ok = true
							break
						}
					}
					if !ok {
						t.Fatalf("trial %d: model does not satisfy clause %v", trial, cl)
					}
				}
			}
		}
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v clauses=%v", trial, got, want, clauses)
		}
	}
}

func bruteForceSat(nVars int, clauses [][]int) bool {
	for mask := 0; mask < 1<<nVars; mask++ {
		ok := true
		for _, cl := range clauses {
			cok := false
			for _, l := range cl {
				v := l
				if v < 0 {
					v = -v
				}
				val := mask&(1<<(v-1)) != 0
				if (l > 0) == val {
					cok = true
					break
				}
			}
			if !cok {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestAssumptions(t *testing.T) {
	s := New()
	check(t, s.AddClause(1, 2))
	check(t, s.AddClause(-1, 3))
	if st := s.Solve(-2); st != Sat {
		t.Fatalf("assuming ¬x2 should be SAT, got %v", st)
	}
	if !s.Value(1) || !s.Value(3) {
		t.Error("¬x2 forces x1 and x3")
	}
	if st := s.Solve(-1, -2); st != Unsat {
		t.Fatalf("assuming ¬x1 ¬x2 should be UNSAT, got %v", st)
	}
	// Solver must remain usable after UNSAT-under-assumptions.
	if st := s.Solve(); st != Sat {
		t.Fatalf("formula itself is SAT, got %v", st)
	}
}

func TestIncrementalBlocking(t *testing.T) {
	// Enumerate all 3 models of (x1 ∨ x2) by blocking clauses.
	s := New()
	check(t, s.AddClause(1, 2))
	count := 0
	for s.Solve() == Sat {
		count++
		if count > 4 {
			t.Fatal("too many models")
		}
		block := []int{}
		for v := 1; v <= 2; v++ {
			if s.Value(v) {
				block = append(block, -v)
			} else {
				block = append(block, v)
			}
		}
		if err := s.AddClause(block...); err != nil {
			break
		}
	}
	if count != 3 {
		t.Errorf("model count = %d, want 3", count)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestLitEncoding(t *testing.T) {
	l := intLit(5)
	if litVar(l) != 4 || litSign(l) || extLit(l) != 5 {
		t.Error("positive literal roundtrip")
	}
	l = intLit(-5)
	if litVar(l) != 4 || !litSign(l) || extLit(l) != -5 {
		t.Error("negative literal roundtrip")
	}
	if negLit(intLit(3)) != intLit(-3) {
		t.Error("negation")
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	check(t, s.AddClause(1, -1))   // tautology: ignored
	check(t, s.AddClause(2, 2, 2)) // collapses to unit
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if !s.Value(2) {
		t.Error("x2 must be true")
	}
}

func TestMaxConflictsBudget(t *testing.T) {
	// A hard pigeonhole instance with a tiny budget should return Unknown.
	n := 8
	s := New()
	s.MaxConflicts = 10
	vr := func(p, h int) int { return p*n + h + 1 }
	for p := 0; p <= n; p++ {
		cl := make([]int, n)
		for h := 0; h < n; h++ {
			cl[h] = vr(p, h)
		}
		check(t, s.AddClause(cl...))
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				check(t, s.AddClause(-vr(p1, h), -vr(p2, h)))
			}
		}
	}
	if st := s.Solve(); st != Unknown {
		t.Fatalf("expected Unknown under tiny budget, got %v", st)
	}
}

func TestStatsAndStatus(t *testing.T) {
	s := New()
	check(t, s.AddClause(1, 2))
	s.Solve()
	_, d, _ := s.Stats()
	if d < 0 {
		t.Error("negative decisions")
	}
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Error("status strings")
	}
}

func check(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
