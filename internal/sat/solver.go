// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver with two-literal watching, VSIDS variable activity, phase saving,
// Luby restarts, first-UIP clause learning with minimization, learnt-clause
// database reduction, and incremental solving under assumptions.
//
// It is the stand-in for MiniSAT/Z3 in the paper's constraint-based
// algorithms (Section 4): the Basic algorithm enumerates models with
// blocking clauses, and the min-ones optimizer in package minones layers
// cardinality constraints on top of this solver.
//
// External interface: variables are positive integers 1..NumVars; a literal
// is +v or -v; a clause is a slice of literals (DIMACS convention).
package sat

import (
	"errors"
	"sort"

	"repro/internal/faults"
)

// Status is the result of a Solve call.
type Status int

// Solve outcomes.
const (
	// Unknown means the solver gave up (budget exhausted or interrupted).
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula (under the given assumptions) is unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// ErrInconsistent is returned by AddClause when the clause database becomes
// trivially unsatisfiable at the root level.
var ErrInconsistent = errors.New("sat: formula is inconsistent at root level")

type clause struct {
	lits     []int32 // internal literals
	activity float64
	learnt   bool
}

// internal literal encoding: variable v (0-based) => lit 2v (positive) or
// 2v+1 (negative).
func mkLit(v int, neg bool) int32 {
	l := int32(v << 1)
	if neg {
		l |= 1
	}
	return l
}
func negLit(l int32) int32 { return l ^ 1 }
func litVar(l int32) int   { return int(l >> 1) }
func litSign(l int32) bool { return l&1 == 1 } // true = negative
func extLit(l int32) int {
	v := litVar(l) + 1
	if litSign(l) {
		return -v
	}
	return v
}
func intLit(ext int) int32 {
	if ext > 0 {
		return mkLit(ext-1, false)
	}
	return mkLit(-ext-1, true)
}

type watcher struct {
	c       *clause
	blocker int32
}

const (
	lUndef int8 = 0
	lTrue  int8 = 1
	lFalse int8 = -1
)

// Solver is an incremental CDCL SAT solver. The zero value is not usable;
// create with New.
type Solver struct {
	clauses []*clause
	learnts []*clause
	watches [][]watcher // indexed by internal literal

	assigns  []int8 // per variable
	level    []int32
	reason   []*clause
	trail    []int32
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	claInc   float64
	heap     *varHeap
	phase    []int8 // saved polarity per var (lTrue = last assigned true)
	seen     []bool

	ok        bool
	model     []bool
	conflicts int64
	decisions int64
	propsN    int64

	// MaxConflicts, when > 0, bounds the total conflicts per Solve call;
	// exceeding it yields Unknown.
	MaxConflicts int64
	// Stop, when non-nil, is polled periodically during search (every
	// stopPollInterval conflicts and at every restart). Returning true
	// aborts the current Solve call with Unknown, leaving the solver
	// reusable. It is how callers thread wall-clock deadlines
	// (context.Context) into long-running solves without a solver-side
	// clock.
	Stop func() bool
}

// stopPollInterval bounds how many conflicts may pass between two Stop
// polls: small enough that a deadline is noticed within milliseconds on
// hard formulas, large enough that the poll is free on easy ones.
const stopPollInterval = 256

// New creates an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, claInc: 1, ok: true}
	s.heap = newVarHeap(&s.activity)
	return s
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NewVar allocates a fresh variable and returns its external index (1-based).
func (s *Solver) NewVar() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, lFalse)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.insert(v)
	return v + 1
}

// EnsureVars allocates variables so that NumVars >= n.
func (s *Solver) EnsureVars(n int) {
	for len(s.assigns) < n {
		s.NewVar()
	}
}

func (s *Solver) valueLit(l int32) int8 {
	v := s.assigns[litVar(l)]
	if v == lUndef {
		return lUndef
	}
	if litSign(l) {
		return -v
	}
	return v
}

// AddClause adds a clause of external literals. It returns ErrInconsistent
// if the database becomes unsatisfiable at the root level. Clauses may be
// added between Solve calls.
func (s *Solver) AddClause(extLits ...int) error {
	if !s.ok {
		return ErrInconsistent
	}
	s.cancelUntil(0)
	lits := make([]int32, 0, len(extLits))
	for _, e := range extLits {
		if e == 0 {
			return errors.New("sat: literal 0 is invalid")
		}
		v := e
		if v < 0 {
			v = -v
		}
		s.EnsureVars(v)
		lits = append(lits, intLit(e))
	}
	// Sort, dedup, detect tautology, drop root-false literals.
	sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })
	out := lits[:0]
	var prev int32 = -1
	for _, l := range lits {
		if l == prev {
			continue
		}
		if prev >= 0 && l == negLit(prev) && litVar(l) == litVar(prev) {
			return nil // tautology
		}
		switch s.valueLit(l) {
		case lTrue:
			return nil // already satisfied at root
		case lFalse:
			continue // drop falsified literal
		}
		out = append(out, l)
		prev = l
	}
	lits = out
	switch len(lits) {
	case 0:
		s.ok = false
		return ErrInconsistent
	case 1:
		s.uncheckedEnqueue(lits[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return ErrInconsistent
		}
		return nil
	}
	c := &clause{lits: lits}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return nil
}

func (s *Solver) attach(c *clause) {
	s.watches[negLit(c.lits[0])] = append(s.watches[negLit(c.lits[0])], watcher{c: c, blocker: c.lits[1]})
	s.watches[negLit(c.lits[1])] = append(s.watches[negLit(c.lits[1])], watcher{c: c, blocker: c.lits[0]})
}

func (s *Solver) detach(c *clause) {
	s.removeWatch(negLit(c.lits[0]), c)
	s.removeWatch(negLit(c.lits[1]), c)
}

func (s *Solver) removeWatch(l int32, c *clause) {
	ws := s.watches[l]
	for i := range ws {
		if ws[i].c == c {
			ws[i] = ws[len(ws)-1]
			s.watches[l] = ws[:len(ws)-1]
			return
		}
	}
}

func (s *Solver) uncheckedEnqueue(l int32, from *clause) {
	v := litVar(l)
	if litSign(l) {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[lvl]; i-- {
		l := s.trail[i]
		v := litVar(l)
		s.phase[v] = s.assigns[v]
		s.assigns[v] = lUndef
		s.reason[v] = nil
		if !s.heap.inHeap(v) {
			s.heap.insert(v)
		}
	}
	s.trail = s.trail[:s.trailLim[lvl]]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// propagate performs unit propagation; returns the conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.propsN++
		// Clauses are attached under the negation of their watched
		// literals, so watches[p] holds exactly the clauses in which a
		// watched literal just became false.
		falsified := negLit(p)
		ws := s.watches[p]
		j := 0
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.valueLit(w.blocker) == lTrue {
				ws[j] = w
				j++
				continue
			}
			c := w.c
			// Ensure falsified literal is lits[1].
			if c.lits[0] == falsified {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.valueLit(first) == lTrue {
				ws[j] = watcher{c: c, blocker: first}
				j++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[negLit(c.lits[1])] = append(s.watches[negLit(c.lits[1])], watcher{c: c, blocker: first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[j] = watcher{c: c, blocker: first}
			j++
			if s.valueLit(first) == lFalse {
				// Conflict: copy remaining watchers back and bail.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[p] = ws[:j]
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = ws[:j]
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (learnt[0] is the asserting literal) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]int32, int) {
	learnt := []int32{0} // reserve slot for asserting literal
	pathC := 0
	var p int32 = -1
	idx := len(s.trail) - 1
	var toClear []int
	//lint:budgeted 1-UIP resolution walks the finite trail once; search() polls Stop per conflict
	for {
		s.bumpClause(confl)
		for _, q := range confl.lits {
			if p != -1 && q == p {
				continue
			}
			v := litVar(q)
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				toClear = append(toClear, v)
				s.bumpVar(v)
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find next literal on trail to expand.
		for !s.seen[litVar(s.trail[idx])] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := litVar(p)
		confl = s.reason[v]
		s.seen[v] = false
		pathC--
		if pathC == 0 {
			break
		}
	}
	learnt[0] = negLit(p)

	// Clause minimization: drop literals implied by the rest of the clause.
	out := learnt[:1]
	for _, q := range learnt[1:] {
		if !s.redundant(q) {
			out = append(out, q)
		}
	}
	learnt = out

	// Compute backtrack level: max level among learnt[1:].
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[litVar(learnt[i])] > s.level[litVar(learnt[maxI])] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[litVar(learnt[1])])
	}
	for _, v := range toClear {
		s.seen[v] = false
	}
	return learnt, btLevel
}

// redundant reports whether literal q in a learnt clause is implied by the
// other marked literals (single-step self-subsumption).
func (s *Solver) redundant(q int32) bool {
	v := litVar(q)
	r := s.reason[v]
	if r == nil {
		return false
	}
	for _, l := range r.lits {
		u := litVar(l)
		if u == v {
			continue
		}
		if !s.seen[u] && s.level[u] > 0 {
			return false
		}
	}
	return true
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.heap.inHeap(v) {
		s.heap.decrease(v)
	}
}

func (s *Solver) bumpClause(c *clause) {
	if !c.learnt {
		return
	}
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, l := range s.learnts {
			l.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

const (
	varDecay = 0.95
	claDecay = 0.999
)

func (s *Solver) decayActivities() {
	s.varInc /= varDecay
	s.claInc /= claDecay
}

func (s *Solver) pickBranchVar() int {
	//lint:budgeted pops the finite activity heap until an unassigned var or empty; search() polls Stop per conflict
	for {
		v, ok := s.heap.removeMin()
		if !ok {
			return -1
		}
		if s.assigns[v] == lUndef {
			return v
		}
	}
}

// reduceDB removes the less active half of learnt clauses.
func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool { return s.learnts[i].activity > s.learnts[j].activity })
	keep := s.learnts[:0]
	lim := len(s.learnts) / 2
	for i, c := range s.learnts {
		if i < lim || s.locked(c) || len(c.lits) <= 2 {
			keep = append(keep, c)
		} else {
			s.detach(c)
		}
	}
	s.learnts = keep
}

func (s *Solver) locked(c *clause) bool {
	v := litVar(c.lits[0])
	return s.reason[v] == c && s.assigns[v] != lUndef
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	//lint:budgeted k grows until 2^k-1 >= i, so at most 63 iterations; pure arithmetic
	for k := int64(1); ; k++ {
		if i == (int64(1)<<k)-1 {
			return int64(1) << (k - 1)
		}
		if i < (int64(1)<<k)-1 {
			return luby(i - (int64(1) << (k - 1)) + 1)
		}
	}
}

// Solve searches for a model under the given external-literal assumptions.
// On Sat, the model is available via Model and Value.
func (s *Solver) Solve(assumptions ...int) Status {
	if !s.ok {
		return Unsat
	}
	s.cancelUntil(0)
	assume := make([]int32, len(assumptions))
	for i, e := range assumptions {
		v := e
		if v < 0 {
			v = -v
		}
		s.EnsureVars(v)
		assume[i] = intLit(e)
	}

	var restartN int64
	conflictsAtStart := s.conflicts
	maxLearnts := float64(len(s.clauses))/3 + 1000

	for {
		restartN++
		faults.Inject(faults.SATSolve)
		budget := luby(restartN) * 100
		st := s.search(assume, budget, &maxLearnts)
		if st != Unknown {
			return st
		}
		if s.MaxConflicts > 0 && s.conflicts-conflictsAtStart >= s.MaxConflicts {
			s.cancelUntil(0)
			return Unknown
		}
		if s.Stop != nil && s.Stop() {
			s.cancelUntil(0)
			return Unknown
		}
	}
}

// search runs CDCL until a result, a conflict budget is exhausted (Unknown,
// triggering a restart), or the assumption set is falsified (Unsat).
func (s *Solver) search(assume []int32, budget int64, maxLearnts *float64) Status {
	var conflictC int64
	for {
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			conflictC++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			// Never backtrack past the assumptions; if the asserting level
			// is within the assumption prefix, re-check assumptions after
			// jumping there.
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.bumpClause(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.decayActivities()
			if float64(len(s.learnts)) >= *maxLearnts {
				*maxLearnts *= 1.1
				s.reduceDB()
			}
			continue
		}
		if conflictC >= budget {
			s.cancelUntil(0)
			return Unknown
		}
		// Poll Stop on a conflict-count stride: restart budgets grow with the
		// luby sequence, so the per-restart poll in Solve alone would let a
		// hard formula run unchecked for long stretches late in the search.
		if s.Stop != nil && conflictC > 0 && conflictC%stopPollInterval == 0 && s.Stop() {
			s.cancelUntil(0)
			return Unknown
		}
		// All assumptions must be enqueued as pseudo-decisions first.
		if s.decisionLevel() < len(assume) {
			p := assume[s.decisionLevel()]
			switch s.valueLit(p) {
			case lTrue:
				// Already satisfied: open an empty decision level.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				// Assumptions are contradictory with the formula.
				s.cancelUntil(0)
				return Unsat
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.uncheckedEnqueue(p, nil)
			continue
		}
		v := s.pickBranchVar()
		if v < 0 {
			// Full model.
			s.model = make([]bool, len(s.assigns))
			for i, a := range s.assigns {
				s.model[i] = a == lTrue
			}
			s.cancelUntil(0)
			return Sat
		}
		s.decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(mkLit(v, s.phase[v] != lTrue), nil)
	}
}

// Value returns the model value of external variable v (1-based) from the
// last Sat result.
func (s *Solver) Value(v int) bool {
	if v-1 < len(s.model) {
		return s.model[v-1]
	}
	return false
}

// Model returns a copy of the last model as a map from external variable to
// value.
func (s *Solver) Model() []bool {
	out := make([]bool, len(s.model))
	copy(out, s.model)
	return out
}

// Stats reports cumulative (conflicts, decisions, propagations).
func (s *Solver) Stats() (conflicts, decisions, propagations int64) {
	return s.conflicts, s.decisions, s.propsN
}
