// Package eval is the compatibility facade over the unified execution
// engine (internal/engine), preserving the API of the original three
// evaluators:
//
//   - Eval: plain evaluation (the "raw query" of the experiments);
//   - EvalProv: how-provenance-annotated evaluation per Sections 2.3 and 6
//     of the paper (each output tuple carries a Boolean expression over the
//     base tuple identifiers);
//   - EvalAggProv: provenance for aggregate queries per Section 5.2
//     (symbolic aggregate values with guarded terms).
//
// Eval and EvalProv are instantiations of the engine's semiring-generic
// evaluator (engine.Set and engine.Why); EvalAggProv layers the symbolic
// aggregate machinery of Section 5 on top of the provenance instantiation.
// New code should import internal/engine directly.
package eval

import (
	"repro/internal/engine"
	"repro/internal/ra"
	"repro/internal/relation"
)

// ErrRowBudget is returned when a query's intermediate result exceeds
// engine.MaxIntermediateRows.
var ErrRowBudget = engine.ErrRowBudget

// Catalog adapts a Database to ra.Catalog.
type Catalog = engine.Catalog

// Eval evaluates a query over a database under set semantics. params binds
// the query's @-parameters (may be nil). The query is optimized (selection
// pushdown, hash equi-joins) before evaluation.
func Eval(q ra.Node, db *relation.Database, params map[string]relation.Value) (*relation.Relation, error) {
	return engine.Eval(q, db, params)
}

// Optimize rewrites a query for efficient evaluation without changing its
// set-semantics result or provenance annotations. It delegates to
// engine.Optimize.
func Optimize(n ra.Node, cat ra.Catalog) ra.Node {
	return engine.Optimize(n, cat)
}
