// Package eval executes relational algebra queries over database instances
// under set semantics, in three modes:
//
//   - Eval: plain evaluation (the "raw query" of the experiments);
//   - EvalProv: how-provenance-annotated evaluation per Sections 2.3 and 6
//     of the paper (each output tuple carries a Boolean expression over the
//     base tuple identifiers);
//   - EvalAggProv: provenance for aggregate queries per Section 5.2
//     (symbolic aggregate values with guarded terms).
package eval

import (
	"fmt"

	"repro/internal/ra"
	"repro/internal/relation"
)

// MaxIntermediateRows bounds the size of any intermediate join result.
// Queries exceeding it fail with ErrRowBudget instead of exhausting memory —
// the same pragmatic cut the paper applied ("we had to drop two overly
// complicated student queries that involved massive cross products").
var MaxIntermediateRows = 1_000_000

// ErrRowBudget is returned when a query's intermediate result exceeds
// MaxIntermediateRows.
var ErrRowBudget = fmt.Errorf("eval: intermediate result exceeds %d rows", MaxIntermediateRows)

// Catalog adapts a Database to ra.Catalog.
type Catalog struct{ DB *relation.Database }

// RelationSchema implements ra.Catalog.
func (c Catalog) RelationSchema(name string) (relation.Schema, bool) {
	r := c.DB.Relation(name)
	if r == nil {
		return relation.Schema{}, false
	}
	return r.Schema, true
}

// Eval evaluates a query over a database under set semantics. params binds
// the query's @-parameters (may be nil). The query is optimized (selection
// pushdown, hash equi-joins) before evaluation.
func Eval(q ra.Node, db *relation.Database, params map[string]relation.Value) (*relation.Relation, error) {
	return evalNode(Optimize(q, Catalog{DB: db}), db, params)
}

func evalNode(q ra.Node, db *relation.Database, params map[string]relation.Value) (*relation.Relation, error) {
	switch x := q.(type) {
	case *ra.Rel:
		r := db.Relation(x.Name)
		if r == nil {
			return nil, fmt.Errorf("eval: unknown relation %q", x.Name)
		}
		return r.Dedup(), nil
	case *ra.Select:
		in, err := evalNode(x.In, db, params)
		if err != nil {
			return nil, err
		}
		pred, err := ra.CompileExpr(x.Pred, in.Schema, params)
		if err != nil {
			return nil, err
		}
		out := relation.NewRelation("σ", in.Schema)
		for _, t := range in.Tuples {
			v, err := pred(t)
			if err != nil {
				return nil, err
			}
			if ra.Truthy(v) {
				out.Append(t)
			}
		}
		return out, nil
	case *ra.Project:
		in, err := evalNode(x.In, db, params)
		if err != nil {
			return nil, err
		}
		idxs, outSchema, err := projectPlan(x, in.Schema)
		if err != nil {
			return nil, err
		}
		out := relation.NewRelation("π", outSchema)
		seen := map[string]bool{}
		for _, t := range in.Tuples {
			p := t.Project(idxs)
			k := p.Key()
			if !seen[k] {
				seen[k] = true
				out.Append(p)
			}
		}
		return out, nil
	case *ra.Join:
		l, err := evalNode(x.L, db, params)
		if err != nil {
			return nil, err
		}
		r, err := evalNode(x.R, db, params)
		if err != nil {
			return nil, err
		}
		return joinRelations(l, r, x.Cond, params)
	case *ra.Union:
		l, err := evalNode(x.L, db, params)
		if err != nil {
			return nil, err
		}
		r, err := evalNode(x.R, db, params)
		if err != nil {
			return nil, err
		}
		if !l.Schema.UnionCompatible(r.Schema) {
			return nil, fmt.Errorf("eval: union of incompatible schemas %s, %s", l.Schema, r.Schema)
		}
		out := relation.NewRelation("∪", l.Schema)
		seen := map[string]bool{}
		for _, rel := range []*relation.Relation{l, r} {
			for _, t := range rel.Tuples {
				k := t.Key()
				if !seen[k] {
					seen[k] = true
					out.Append(t)
				}
			}
		}
		return out, nil
	case *ra.Diff:
		l, err := evalNode(x.L, db, params)
		if err != nil {
			return nil, err
		}
		r, err := evalNode(x.R, db, params)
		if err != nil {
			return nil, err
		}
		if !l.Schema.UnionCompatible(r.Schema) {
			return nil, fmt.Errorf("eval: difference of incompatible schemas %s, %s", l.Schema, r.Schema)
		}
		return l.SetDiff(r), nil
	case *ra.Rename:
		in, err := evalNode(x.In, db, params)
		if err != nil {
			return nil, err
		}
		out := relation.NewRelation(x.As, in.Schema.Qualify(x.As))
		out.Tuples = in.Tuples
		return out, nil
	case *ra.GroupBy:
		in, err := evalNode(x.In, db, params)
		if err != nil {
			return nil, err
		}
		return groupBy(x, in)
	}
	return nil, fmt.Errorf("eval: unknown node type %T", q)
}

func projectPlan(p *ra.Project, in relation.Schema) ([]int, relation.Schema, error) {
	idxs := make([]int, len(p.Cols))
	attrs := make([]relation.Attribute, len(p.Cols))
	for i, c := range p.Cols {
		j, err := in.Resolve(c)
		if err != nil {
			return nil, relation.Schema{}, err
		}
		idxs[i] = j
		attrs[i] = relation.Attribute{Name: c, Type: in.Attrs[j].Type}
	}
	return idxs, relation.Schema{Attrs: attrs}, nil
}

func joinRelations(l, r *relation.Relation, cond ra.Expr, params map[string]relation.Value) (*relation.Relation, error) {
	if cond == nil {
		return naturalJoin(l, r)
	}
	outSchema := l.Schema.Concat(r.Schema)
	lKeys, rKeys, residual := equiJoinPlan(cond, l.Schema, r.Schema)
	var pred ra.CompiledExpr
	if residual != nil {
		var err error
		pred, err = ra.CompileExpr(residual, outSchema, params)
		if err != nil {
			return nil, err
		}
	}
	out := relation.NewRelation("⋈", outSchema)
	emit := func(lt, rt relation.Tuple) error {
		t := lt.Concat(rt)
		if pred != nil {
			v, err := pred(t)
			if err != nil {
				return err
			}
			if !ra.Truthy(v) {
				return nil
			}
		}
		if out.Len() >= MaxIntermediateRows {
			return ErrRowBudget
		}
		out.Append(t)
		return nil
	}
	if len(lKeys) > 0 {
		// Hash join on the extracted equality keys.
		idx := make(map[string][]int, r.Len())
		for i, rt := range r.Tuples {
			k := rt.Project(rKeys)
			if hasNullValue(k) {
				continue
			}
			idx[k.Key()] = append(idx[k.Key()], i)
		}
		for _, lt := range l.Tuples {
			k := lt.Project(lKeys)
			if hasNullValue(k) {
				continue
			}
			for _, ri := range idx[k.Key()] {
				if err := emit(lt, r.Tuples[ri]); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}
	for _, lt := range l.Tuples {
		for _, rt := range r.Tuples {
			if err := emit(lt, rt); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func hasNullValue(t relation.Tuple) bool {
	for _, v := range t {
		if v.IsNull() {
			return true
		}
	}
	return false
}

func naturalJoin(l, r *relation.Relation) (*relation.Relation, error) {
	shared, rOnly := ra.NaturalJoinCols(l.Schema, r.Schema)
	attrs := make([]relation.Attribute, 0, len(l.Schema.Attrs)+len(rOnly))
	attrs = append(attrs, l.Schema.Attrs...)
	for _, j := range rOnly {
		attrs = append(attrs, r.Schema.Attrs[j])
	}
	out := relation.NewRelation("⋈", relation.Schema{Attrs: attrs})

	if len(shared) == 0 {
		// Cross product.
		if l.Len()*r.Len() > MaxIntermediateRows {
			return nil, ErrRowBudget
		}
		for _, lt := range l.Tuples {
			for _, rt := range r.Tuples {
				out.Append(lt.Concat(rt.Project(rOnly)))
			}
		}
		return out, nil
	}
	// Hash join on the shared columns.
	lCols := make([]int, len(shared))
	rCols := make([]int, len(shared))
	for i, p := range shared {
		lCols[i], rCols[i] = p[0], p[1]
	}
	idx := make(map[string][]int, r.Len())
	for i, rt := range r.Tuples {
		k := rt.Project(rCols).Key()
		idx[k] = append(idx[k], i)
	}
	for _, lt := range l.Tuples {
		key := lt.Project(lCols)
		// NULLs never join.
		hasNull := false
		for _, v := range key {
			if v.IsNull() {
				hasNull = true
				break
			}
		}
		if hasNull {
			continue
		}
		for _, ri := range idx[key.Key()] {
			if out.Len() >= MaxIntermediateRows {
				return nil, ErrRowBudget
			}
			out.Append(lt.Concat(r.Tuples[ri].Project(rOnly)))
		}
	}
	return out, nil
}

func groupBy(g *ra.GroupBy, in *relation.Relation) (*relation.Relation, error) {
	gIdx := make([]int, len(g.GroupCols))
	for i, c := range g.GroupCols {
		j, err := in.Schema.Resolve(c)
		if err != nil {
			return nil, err
		}
		gIdx[i] = j
	}
	aIdx := make([]int, len(g.Aggs))
	for i, a := range g.Aggs {
		if a.Attr == "" {
			if a.Func != ra.Count {
				return nil, fmt.Errorf("eval: %s requires an attribute", a.Func)
			}
			aIdx[i] = -1
			continue
		}
		j, err := in.Schema.Resolve(a.Attr)
		if err != nil {
			return nil, err
		}
		aIdx[i] = j
	}
	attrs := make([]relation.Attribute, 0, len(gIdx)+len(g.Aggs))
	for i, j := range gIdx {
		attrs = append(attrs, relation.Attribute{Name: g.GroupCols[i], Type: in.Schema.Attrs[j].Type})
	}
	for i, a := range g.Aggs {
		typ := relation.KindFloat
		if a.Func == ra.Count {
			typ = relation.KindInt
		} else if aIdx[i] >= 0 && (a.Func == ra.Sum || a.Func == ra.Min || a.Func == ra.Max) {
			typ = in.Schema.Attrs[aIdx[i]].Type
		}
		attrs = append(attrs, relation.Attribute{Name: a.As, Type: typ})
	}
	out := relation.NewRelation("γ", relation.Schema{Attrs: attrs})

	groups := map[string][]relation.Tuple{}
	var order []string
	keyTuples := map[string]relation.Tuple{}
	for _, t := range in.Tuples {
		k := t.Project(gIdx)
		ks := k.Key()
		if _, ok := groups[ks]; !ok {
			order = append(order, ks)
			keyTuples[ks] = k
		}
		groups[ks] = append(groups[ks], t)
	}
	for _, ks := range order {
		members := groups[ks]
		row := keyTuples[ks].Clone()
		for i, a := range g.Aggs {
			v, err := computeAgg(a.Func, aIdx[i], members)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out.Append(row)
	}
	return out, nil
}

func computeAgg(f ra.AggFunc, col int, members []relation.Tuple) (relation.Value, error) {
	if f == ra.Count {
		if col < 0 {
			return relation.Int(int64(len(members))), nil
		}
		n := 0
		for _, t := range members {
			if !t[col].IsNull() {
				n++
			}
		}
		return relation.Int(int64(n)), nil
	}
	var vals []relation.Value
	for _, t := range members {
		if !t[col].IsNull() {
			vals = append(vals, t[col])
		}
	}
	if len(vals) == 0 {
		return relation.Null(), nil
	}
	switch f {
	case ra.Sum, ra.Avg:
		acc := vals[0]
		for _, v := range vals[1:] {
			var err error
			acc, err = relation.Add(acc, v)
			if err != nil {
				return relation.Null(), err
			}
		}
		if f == ra.Sum {
			return acc, nil
		}
		return relation.Div(acc, relation.Int(int64(len(vals))))
	case ra.Min, ra.Max:
		best := vals[0]
		for _, v := range vals[1:] {
			c, ok := v.Compare(best)
			if !ok {
				return relation.Null(), fmt.Errorf("eval: incomparable values in %s", f)
			}
			if (f == ra.Min && c < 0) || (f == ra.Max && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return relation.Null(), fmt.Errorf("eval: unknown aggregate %v", f)
}
