package eval

import (
	"testing"

	"repro/internal/ra"
	"repro/internal/raparser"
	"repro/internal/relation"
	"repro/internal/testdb"
)

func mustEval(t *testing.T, src string, db *relation.Database) *relation.Relation {
	t.Helper()
	q, err := raparser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Eval(q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEvalBaseRelation(t *testing.T) {
	db := testdb.Example1DB()
	r := mustEval(t, "Student", db)
	if r.Len() != 3 {
		t.Errorf("Student len = %d", r.Len())
	}
}

func TestEvalSelectJoin(t *testing.T) {
	db := testdb.Example1DB()
	r := mustEval(t, "select[dept = 'CS'](Student join Registration)", db)
	// 6 CS registrations joined with their students.
	if r.Len() != 6 {
		t.Errorf("len = %d, want 6", r.Len())
	}
	if r.Schema.Arity() != 5 {
		t.Errorf("arity = %d, want 5", r.Schema.Arity())
	}
}

func TestEvalProjectDedups(t *testing.T) {
	db := testdb.Example1DB()
	r := mustEval(t, "project[dept](Registration)", db)
	if r.Len() != 2 {
		t.Errorf("distinct depts = %d, want 2", r.Len())
	}
}

func TestEvalExample1Results(t *testing.T) {
	// Figure 2 of the paper: Q1 returns {(John, ECON)}, Q2 returns all 3.
	db := testdb.Example1DB()
	r1, err := Eval(testdb.Q1(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != 1 || !r1.Tuples[0][0].Identical(relation.String("John")) {
		t.Errorf("Q1(D) = %v, want [(John, ECON)]", r1.Tuples)
	}
	r2, err := Eval(testdb.Q2(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 3 {
		t.Errorf("Q2(D) = %v, want 3 tuples", r2.Tuples)
	}
	diff := r2.SetDiff(r1)
	if diff.Len() != 2 {
		t.Errorf("Q2-Q1 = %v, want Mary and Jesse", diff.Tuples)
	}
}

func TestEvalUnionDiff(t *testing.T) {
	db := testdb.Example1DB()
	r := mustEval(t, "project[name](Student) union project[name](Registration)", db)
	if r.Len() != 3 {
		t.Errorf("union len = %d", r.Len())
	}
	r = mustEval(t, "project[name](Student) diff project[name](select[dept = 'ECON'](Registration))", db)
	if r.Len() != 1 || !r.Tuples[0][0].Identical(relation.String("Jesse")) {
		t.Errorf("diff = %v, want [Jesse]", r.Tuples)
	}
}

func TestEvalThetaJoinAndRename(t *testing.T) {
	db := testdb.Example1DB()
	r := mustEval(t, `project[s.name](select[r1.course <> r2.course and r1.dept = 'CS' and r2.dept = 'CS'
		and s.name = r1.name and s.name = r2.name](
		rename[s](Student) cross rename[r1](Registration) cross rename[r2](Registration)))`, db)
	// Students with >= 2 distinct CS courses: Mary, Jesse.
	if r.Len() != 2 {
		t.Errorf("multi-CS students = %v", r.Tuples)
	}
}

func TestEvalGroupByExample4(t *testing.T) {
	db := testdb.Example1DB()
	r, err := Eval(testdb.AggQ1(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"Mary": 87.5, "John": 90, "Jesse": 90}
	if r.Len() != 3 {
		t.Fatalf("groups = %v", r.Tuples)
	}
	for _, tup := range r.Tuples {
		name := tup[0].AsString()
		if got := tup[1].AsFloat(); got != want[name] {
			t.Errorf("avg(%s) = %v, want %v", name, got, want[name])
		}
	}
}

func TestEvalGroupByHaving(t *testing.T) {
	db := testdb.Example1DB()
	r, err := Eval(testdb.HavingQ1(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Only Jesse has >= 3 CS courses.
	if r.Len() != 1 || !r.Tuples[0][0].Identical(relation.String("Jesse")) {
		t.Errorf("having result = %v", r.Tuples)
	}
	r2, err := Eval(testdb.HavingQ2(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Without the dept filter, Mary (3 courses) also qualifies.
	if r2.Len() != 2 {
		t.Errorf("wrong-query result = %v", r2.Tuples)
	}
}

func TestEvalParameters(t *testing.T) {
	db := testdb.Example1DB()
	q := testdb.ParamQ1()
	r, err := Eval(q, db, map[string]relation.Value{"numCS": relation.Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Errorf("numCS=3: %v", r.Tuples)
	}
	r, err = Eval(q, db, map[string]relation.Value{"numCS": relation.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Errorf("numCS=1: %v", r.Tuples)
	}
	if _, err := Eval(q, db, nil); err == nil {
		t.Error("unbound parameter should error")
	}
}

func TestEvalAggFunctions(t *testing.T) {
	db := testdb.Example1DB()
	r := mustEval(t, "groupby[name; count(*) -> c, sum(grade) -> s, min(grade) -> mn, max(grade) -> mx](Registration)", db)
	byName := map[string]relation.Tuple{}
	for _, tup := range r.Tuples {
		byName[tup[0].AsString()] = tup
	}
	mary := byName["Mary"]
	if mary[1].AsInt() != 3 || mary[2].AsInt() != 270 || mary[3].AsInt() != 75 || mary[4].AsInt() != 100 {
		t.Errorf("Mary aggs = %v", mary)
	}
}

func TestEvalGroupByEmptyGroupCols(t *testing.T) {
	db := testdb.Example1DB()
	r := mustEval(t, "groupby[; count(*) -> c](Student)", db)
	if r.Len() != 1 || r.Tuples[0][0].AsInt() != 3 {
		t.Errorf("global count = %v", r.Tuples)
	}
}

func TestEvalAggNullHandling(t *testing.T) {
	db := relation.NewDatabase()
	db.CreateRelation("R", relation.NewSchema(
		relation.Attr("g", relation.KindString), relation.Attr("v", relation.KindInt)))
	db.Insert("R", relation.NewTuple(relation.String("a"), relation.Int(10)))
	db.Insert("R", relation.NewTuple(relation.String("a"), relation.Null()))
	r := mustEval(t, "groupby[g; count(v) -> c, avg(v) -> a](R)", db)
	if r.Tuples[0][1].AsInt() != 1 {
		t.Errorf("count skips NULL: %v", r.Tuples[0])
	}
	if r.Tuples[0][2].AsFloat() != 10 {
		t.Errorf("avg skips NULL: %v", r.Tuples[0])
	}
}

func TestEvalErrors(t *testing.T) {
	db := testdb.Example1DB()
	bad := []string{
		"Nope",
		"select[nope = 1](Student)",
		"project[nope](Student)",
		"Student union Registration",
		"Student diff Registration",
	}
	for _, src := range bad {
		q, err := raparser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Eval(q, db, nil); err == nil {
			t.Errorf("Eval(%q) should fail", src)
		}
	}
}

func TestEvalNullsDontJoin(t *testing.T) {
	db := relation.NewDatabase()
	db.CreateRelation("A", relation.NewSchema(relation.Attr("k", relation.KindString)))
	db.CreateRelation("B", relation.NewSchema(
		relation.Attr("k", relation.KindString), relation.Attr("v", relation.KindInt)))
	db.Insert("A", relation.NewTuple(relation.Null()))
	db.Insert("A", relation.NewTuple(relation.String("x")))
	db.Insert("B", relation.NewTuple(relation.Null(), relation.Int(1)))
	db.Insert("B", relation.NewTuple(relation.String("x"), relation.Int(2)))
	r := mustEval(t, "A join B", db)
	if r.Len() != 1 {
		t.Errorf("NULL keys must not join: %v", r.Tuples)
	}
}

func TestCatalogAdapter(t *testing.T) {
	db := testdb.Example1DB()
	cat := Catalog{DB: db}
	if _, ok := cat.RelationSchema("Student"); !ok {
		t.Error("Student should resolve")
	}
	if _, ok := cat.RelationSchema("Nope"); ok {
		t.Error("Nope should not resolve")
	}
	q := testdb.Q1()
	if _, err := ra.OutSchema(q, cat); err != nil {
		t.Errorf("schema inference on Q1: %v", err)
	}
}
