package eval

import (
	"testing"

	"repro/internal/boolexpr"
	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/smt"
	"repro/internal/testdb"
)

func TestAggProvExample4Structure(t *testing.T) {
	db := testdb.Example1DB()
	res, err := EvalAggProv(testdb.AggQ2(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 3 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
	mary := res.GroupByKey(relation.NewTuple(relation.String("Mary")))
	if mary == nil {
		t.Fatal("Mary group missing")
	}
	// Q2 (no dept filter): Mary's group has 3 member tuples.
	if mary.Size != 3 {
		t.Errorf("Mary group size = %d, want 3", mary.Size)
	}
	if len(mary.Aggs) != 1 || mary.Aggs[0].Func != ra.Avg {
		t.Fatalf("aggs = %v", mary.Aggs)
	}
	if len(mary.Aggs[0].Terms) != 3 {
		t.Errorf("avg terms = %d, want 3", len(mary.Aggs[0].Terms))
	}
	// With all tuples present the avg must be 90 = (100+75+95)/3.
	all := func(int) bool { return true }
	v, ok := mary.Aggs[0].Eval(all)
	if !ok || v != 90 {
		t.Errorf("avg = %v (%v), want 90", v, ok)
	}
	// Dropping t6 (the ECON course) gives 87.5, matching Q1's answer.
	no6 := func(id int) bool { return id != 6 }
	v, ok = mary.Aggs[0].Eval(no6)
	if !ok || v != 87.5 {
		t.Errorf("avg without t6 = %v, want 87.5", v)
	}
}

func TestAggProvExistence(t *testing.T) {
	db := testdb.Example1DB()
	res, err := EvalAggProv(testdb.AggQ1(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	mary := res.GroupByKey(relation.NewTuple(relation.String("Mary")))
	if mary == nil {
		t.Fatal("Mary group missing")
	}
	// Group exists iff t1 and at least one of t4, t5 (the CS courses).
	cases := []struct {
		ids  []int
		want bool
	}{
		{[]int{1, 4}, true},
		{[]int{1, 5}, true},
		{[]int{1, 6}, false}, // ECON course filtered by Q1
		{[]int{4, 5}, false}, // no student tuple
		{[]int{1}, false},
	}
	for _, c := range cases {
		set := map[int]bool{}
		for _, id := range c.ids {
			set[id] = true
		}
		got := mary.Exists.Eval(func(id int) bool { return set[id] })
		if got != c.want {
			t.Errorf("exists(%v) = %v, want %v", c.ids, got, c.want)
		}
	}
}

func TestAggProvHavingTranslation(t *testing.T) {
	db := testdb.Example1DB()
	res, err := EvalAggProv(testdb.HavingQ2(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	mary := res.GroupByKey(relation.NewTuple(relation.String("Mary")))
	if mary == nil {
		t.Fatal("Mary group missing")
	}
	// HAVING cnt >= 3: with all three registrations present it passes;
	// with only two it fails.
	all := func(int) bool { return true }
	if !smt.EvalFormula(mary.Presence(), all, nil) {
		t.Error("Mary should pass HAVING with all tuples")
	}
	no6 := func(id int) bool { return id != 6 }
	if smt.EvalFormula(mary.Presence(), no6, nil) {
		t.Error("Mary should fail HAVING with 2 courses")
	}
}

func TestAggProvParamStaysSymbolic(t *testing.T) {
	db := testdb.Example1DB()
	res, err := EvalAggProv(testdb.ParamQ2(), db, nil) // no binding for @numCS
	if err != nil {
		t.Fatal(err)
	}
	mary := res.GroupByKey(relation.NewTuple(relation.String("Mary")))
	all := func(int) bool { return true }
	// numCS = 3: passes (3 courses); numCS = 4: fails.
	if !smt.EvalFormula(mary.Presence(), all, map[string]float64{"numCS": 3}) {
		t.Error("numCS=3 should pass")
	}
	if smt.EvalFormula(mary.Presence(), all, map[string]float64{"numCS": 4}) {
		t.Error("numCS=4 should fail")
	}
}

func TestAggProvOutCols(t *testing.T) {
	db := testdb.Example1DB()
	res, err := EvalAggProv(testdb.AggQ1(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OutCols) != 2 {
		t.Fatalf("out cols = %v", res.OutCols)
	}
	if res.OutCols[0].IsAgg || !res.OutCols[1].IsAgg {
		t.Errorf("out cols = %v", res.OutCols)
	}
	if len(res.GroupKeyCols()) != 1 {
		t.Errorf("group key cols = %v", res.GroupKeyCols())
	}
}

func TestAggProvRejectsNonAggregate(t *testing.T) {
	db := testdb.Example1DB()
	if _, err := EvalAggProv(testdb.Q2(), db, nil); err == nil {
		t.Error("non-aggregate query should be rejected")
	}
}

func TestAggProvCountStar(t *testing.T) {
	db := testdb.Example1DB()
	q := &ra.GroupBy{GroupCols: []string{"name"},
		Aggs: []ra.AggSpec{{Func: ra.Count, As: "c"}},
		In:   &ra.Rel{Name: "Registration"}}
	res, err := EvalAggProv(q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	jesse := res.GroupByKey(relation.NewTuple(relation.String("Jesse")))
	if jesse == nil {
		t.Fatal("Jesse group missing")
	}
	v, ok := jesse.Aggs[0].Eval(func(int) bool { return true })
	if !ok || v != 3 {
		t.Errorf("count = %v", v)
	}
	// Count with nothing selected is 0 (defined), not NULL.
	v, ok = jesse.Aggs[0].Eval(func(int) bool { return false })
	if !ok || v != 0 {
		t.Errorf("empty count = %v ok=%v, want 0 true", v, ok)
	}
}

func TestAggProvAgainstConcreteSubinstances(t *testing.T) {
	// Exactness: for sampled subinstances, the symbolic aggregate equals
	// the concretely evaluated aggregate.
	db := testdb.Example1DB()
	res, err := EvalAggProv(testdb.AggQ2(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 16; mask++ {
		keep := map[relation.TupleID]bool{1: true, 2: true, 3: true}
		var ids []int
		for _, id := range []int{1, 2, 3} {
			ids = append(ids, id)
		}
		for b := 0; b < 4; b++ {
			if mask&(1<<b) != 0 {
				keep[relation.TupleID(4+b)] = true
				ids = append(ids, 4+b)
			}
		}
		sub := db.Subinstance(keep)
		conc, err := Eval(testdb.AggQ2(), sub, nil)
		if err != nil {
			t.Fatal(err)
		}
		concrete := map[string]float64{}
		for _, tup := range conc.Tuples {
			concrete[tup[0].AsString()] = tup[1].AsFloat()
		}
		assign := assignIDs(ids...)
		for _, g := range res.Groups {
			name := g.Key[0].AsString()
			v, ok := g.Aggs[0].Eval(assign)
			cv, inConc := concrete[name]
			exists := g.Exists.Eval(assign)
			if exists != inConc {
				t.Fatalf("mask %d: group %s existence mismatch (sym=%v conc=%v)", mask, name, exists, inConc)
			}
			if exists && ok && v != cv {
				t.Fatalf("mask %d: group %s avg mismatch (sym=%v conc=%v)", mask, name, v, cv)
			}
		}
	}
}

func TestGroupDisagreementViaPresence(t *testing.T) {
	// The Example 4 counterexample: a single ECON tuple (t6) makes Q2
	// return (Mary, 88) while Q1 returns nothing.
	db := testdb.Example1DB()
	r1, err := EvalAggProv(testdb.AggQ1(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := EvalAggProv(testdb.AggQ2(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	mary := relation.NewTuple(relation.String("Mary"))
	g1, g2 := r1.GroupByKey(mary), r2.GroupByKey(mary)
	assign := assignIDs(1, 6) // Mary + her ECON registration
	p1 := g1.Exists.Eval(assign)
	p2 := g2.Exists.Eval(assign)
	if p1 || !p2 {
		t.Errorf("with {t1,t6}: Q1 presence=%v Q2 presence=%v, want false/true", p1, p2)
	}
	_ = boolexpr.True() // keep boolexpr imported for future extensions
}
