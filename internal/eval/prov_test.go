package eval

import (
	"testing"

	"repro/internal/boolexpr"
	"repro/internal/ra"
	"repro/internal/raparser"
	"repro/internal/relation"
	"repro/internal/testdb"
)

// assignIDs builds an assignment where exactly the listed tuple ids are
// present.
func assignIDs(ids ...int) func(int) bool {
	set := map[int]bool{}
	for _, id := range ids {
		set[id] = true
	}
	return func(id int) bool { return set[id] }
}

func TestProvBaseAndJoin(t *testing.T) {
	db := testdb.Example1DB()
	q := raparser.MustParse("select[dept = 'CS'](Student join Registration)")
	ann, err := EvalProv(q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ann.Len() != 6 {
		t.Fatalf("len = %d", ann.Len())
	}
	// Each joined tuple's provenance is the conjunction of its sources,
	// e.g. (Mary, 216, ...) = t1 ∧ t4.
	for i, tup := range ann.Tuples {
		prov := ann.Provs[i]
		vars := prov.Vars()
		if len(vars) != 2 {
			t.Errorf("%v: prov %v should have 2 vars", tup, prov)
		}
	}
}

func TestProvExample1Equation1(t *testing.T) {
	// Prv_{Q2}(Mary, CS) = t1·(t4 + t5), Equation (1) of the paper.
	db := testdb.Example1DB()
	ann, err := EvalProv(testdb.Q2(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	i := ann.Lookup(relation.NewTuple(relation.String("Mary"), relation.String("CS")))
	if i < 0 {
		t.Fatal("Mary missing")
	}
	prov := ann.Provs[i]
	// Check logical equivalence with t1·(t4+t5) over the relevant vars.
	want := boolexpr.And(boolexpr.Var(1), boolexpr.Or(boolexpr.Var(4), boolexpr.Var(5)))
	for mask := 0; mask < 8; mask++ {
		ids := []int{}
		if mask&1 != 0 {
			ids = append(ids, 1)
		}
		if mask&2 != 0 {
			ids = append(ids, 4)
		}
		if mask&4 != 0 {
			ids = append(ids, 5)
		}
		a := assignIDs(ids...)
		if prov.Eval(a) != want.Eval(a) {
			t.Errorf("mismatch at %v: prov=%v", ids, prov)
		}
	}
}

func TestProvDifferenceExample21(t *testing.T) {
	// Example 2.1: Prv_{Q2−Q1}(Mary, CS) ≡ t1·t4·t5.
	db := testdb.Example1DB()
	q := &ra.Diff{L: testdb.Q2(), R: testdb.Q1()}
	ann, err := EvalProv(q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	i := ann.Lookup(relation.NewTuple(relation.String("Mary"), relation.String("CS")))
	if i < 0 {
		t.Fatal("Mary missing from annotated Q2−Q1")
	}
	prov := ann.Provs[i]
	// Mary's row needs t1, t4, t5 all present; check all assignments over
	// {t1,t4,t5} (other tuples absent — they don't affect Mary's row).
	for mask := 0; mask < 8; mask++ {
		var ids []int
		if mask&1 != 0 {
			ids = append(ids, 1)
		}
		if mask&2 != 0 {
			ids = append(ids, 4)
		}
		if mask&4 != 0 {
			ids = append(ids, 5)
		}
		got := prov.Eval(assignIDs(ids...))
		want := mask == 7
		if got != want {
			t.Errorf("ids=%v: prov=%v, want %v", ids, got, want)
		}
	}
}

func TestProvExactnessAgainstSubinstances(t *testing.T) {
	// Fundamental exactness property: for every subinstance D' and output
	// tuple t, Prv(t) evaluated on D' ⇔ t ∈ Q(D'). Exhaustive over a
	// reduced id space for tractability.
	db := testdb.Example1DB()
	queries := []string{
		"project[name, major](select[dept = 'CS'](Student join Registration))",
		"project[name](Student) diff project[name](select[dept = 'ECON'](Registration))",
		"project[name](select[grade >= 90](Registration)) union project[name](Student)",
	}
	for _, src := range queries {
		q := raparser.MustParse(src)
		ann, err := EvalProv(q, db, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Sample subinstances: single student + subsets of registrations 4..8.
		for mask := 0; mask < 64; mask++ {
			keep := map[relation.TupleID]bool{1: mask&32 != 0, 2: true, 3: false}
			var ids []int
			if mask&32 != 0 {
				ids = append(ids, 1)
			}
			ids = append(ids, 2)
			for b := 0; b < 5; b++ {
				if mask&(1<<b) != 0 {
					keep[relation.TupleID(4+b)] = true
					ids = append(ids, 4+b)
				}
			}
			sub := db.Subinstance(keep)
			res, err := Eval(q, sub, nil)
			if err != nil {
				t.Fatal(err)
			}
			inResult := map[string]bool{}
			for _, tup := range res.Tuples {
				inResult[tup.Key()] = true
			}
			assign := assignIDs(ids...)
			for i, tup := range ann.Tuples {
				if ann.Provs[i].Eval(assign) != inResult[tup.Key()] {
					t.Fatalf("%s: exactness violated for %v on ids %v (prov=%v, inResult=%v)",
						src, tup, ids, ann.Provs[i], inResult[tup.Key()])
				}
			}
			// Tuples in Q(D') must all appear in the annotated full result
			// (monotonicity of the annotated carrier set holds for these
			// queries).
			for _, tup := range res.Tuples {
				if ann.Lookup(tup) < 0 {
					t.Fatalf("%s: tuple %v in Q(D') missing from annotated Q(D)", src, tup)
				}
			}
		}
	}
}

func TestProvDedupMergesWithOr(t *testing.T) {
	db := testdb.Example1DB()
	// project[name] over Registration: Mary appears via t4, t5, t6.
	ann, err := EvalProv(raparser.MustParse("project[name](Registration)"), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	i := ann.Lookup(relation.NewTuple(relation.String("Mary")))
	if i < 0 {
		t.Fatal("Mary missing")
	}
	vars := ann.Provs[i].Vars()
	if len(vars) != 3 {
		t.Errorf("Mary's projection prov vars = %v, want t4,t5,t6", vars)
	}
}

func TestProvRejectsGroupBy(t *testing.T) {
	db := testdb.Example1DB()
	if _, err := EvalProv(testdb.AggQ1(), db, nil); err == nil {
		t.Error("EvalProv should reject aggregation")
	}
}

func TestProvRenamePreservesAnnotations(t *testing.T) {
	db := testdb.Example1DB()
	ann, err := EvalProv(raparser.MustParse("rename[s](Student)"), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ann.Schema.Attrs[0].Name != "s.name" {
		t.Errorf("schema = %v", ann.Schema)
	}
	if ann.Len() != 3 {
		t.Errorf("len = %d", ann.Len())
	}
}

func TestAnnRelRelation(t *testing.T) {
	db := testdb.Example1DB()
	ann, err := EvalProv(testdb.Q2(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := ann.Relation("q2")
	if r.Len() != ann.Len() || r.Name != "q2" {
		t.Error("Relation() mismatch")
	}
}
