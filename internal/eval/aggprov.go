package eval

import (
	"fmt"

	"repro/internal/boolexpr"
	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/smt"
)

// AggGroup is the symbolic provenance of one output group of an aggregate
// query (one row of Table 2 in the paper): an existence expression over the
// base tuple variables, symbolic aggregate values, and the symbolic HAVING
// condition for this group.
type AggGroup struct {
	// Key holds the group-by column values.
	Key relation.Tuple
	// Exists is the disjunction of the member tuples' how-provenance: the
	// group appears in the result iff Exists holds (and Having passes).
	Exists *boolexpr.Expr
	// Aggs are the symbolic aggregate values, parallel to the GroupBy's
	// AggSpecs.
	Aggs []*smt.AggValue
	// Having is the group's symbolic HAVING condition (⊤ if none).
	Having smt.Formula
	// Size is the number of member tuples of the group in the full input.
	Size int
}

// Presence returns the full symbolic condition for the group to appear in
// the query result: existence ∧ having.
func (g *AggGroup) Presence() smt.Formula {
	return smt.And(&smt.FProv{E: g.Exists}, g.Having)
}

// OutCol describes one output column of an aggregate query: either a
// group-by column (Idx into Key) or an aggregate (Idx into Aggs).
type OutCol struct {
	IsAgg bool
	Idx   int
}

// AggProvResult is the aggregate-provenance annotation of a query of the
// shape π? σ*(HAVING) γ(Q') (Section 5.2).
type AggProvResult struct {
	Spec    ra.TopAggregate
	Groups  []*AggGroup
	OutCols []OutCol

	byKey map[string]*AggGroup
}

// GroupByKey finds the group with the given key tuple, or nil.
func (r *AggProvResult) GroupByKey(key relation.Tuple) *AggGroup {
	return r.byKey[key.Key()]
}

// GroupKeyCols returns the indices of the output columns that are group-by
// columns (non-aggregates), in output order.
func (r *AggProvResult) GroupKeyCols() []OutCol {
	var out []OutCol
	for _, c := range r.OutCols {
		if !c.IsAgg {
			out = append(out, c)
		}
	}
	return out
}

// EvalAggProv computes aggregate provenance for a query of the supported
// shape. The query must match ra.MatchTopAggregate.
func EvalAggProv(q ra.Node, db *relation.Database, params map[string]relation.Value) (*AggProvResult, error) {
	spec, ok := ra.MatchTopAggregate(q)
	if !ok {
		return nil, fmt.Errorf("eval: query shape unsupported for aggregate provenance (want π? σ* γ(Q')): %s", q)
	}
	ann, err := EvalProv(spec.Inner, db, params)
	if err != nil {
		return nil, err
	}
	g := spec.Group
	gIdx := make([]int, len(g.GroupCols))
	for i, c := range g.GroupCols {
		j, err := ann.Schema.Resolve(c)
		if err != nil {
			return nil, err
		}
		gIdx[i] = j
	}
	aIdx := make([]int, len(g.Aggs))
	for i, a := range g.Aggs {
		if a.Attr == "" {
			if a.Func != ra.Count {
				return nil, fmt.Errorf("eval: %s requires an attribute", a.Func)
			}
			aIdx[i] = -1
			continue
		}
		j, err := ann.Schema.Resolve(a.Attr)
		if err != nil {
			return nil, err
		}
		aIdx[i] = j
	}

	// Group the annotated tuples.
	res := &AggProvResult{Spec: spec, byKey: map[string]*AggGroup{}}
	var order []string
	members := map[string][]int{}
	keys := map[string]relation.Tuple{}
	for i, t := range ann.Tuples {
		k := t.Project(gIdx)
		ks := k.Key()
		if _, ok := members[ks]; !ok {
			order = append(order, ks)
			keys[ks] = k
		}
		members[ks] = append(members[ks], i)
	}

	// Group-by output schema, used to translate HAVING predicates.
	gbSchema, err := ra.OutSchema(g, Catalog{DB: db})
	if err != nil {
		return nil, err
	}

	for _, ks := range order {
		grp := &AggGroup{Key: keys[ks], Size: len(members[ks])}
		var exists []*boolexpr.Expr
		grp.Aggs = make([]*smt.AggValue, len(g.Aggs))
		for ai := range g.Aggs {
			grp.Aggs[ai] = &smt.AggValue{Func: g.Aggs[ai].Func}
		}
		for _, mi := range members[ks] {
			prov := ann.Provs[mi]
			t := ann.Tuples[mi]
			exists = append(exists, prov)
			for ai := range g.Aggs {
				var v float64
				if aIdx[ai] < 0 {
					v = 1 // COUNT(*): every member contributes 1
				} else {
					val := t[aIdx[ai]]
					if val.IsNull() {
						continue // NULLs do not contribute to aggregates
					}
					if g.Aggs[ai].Func == ra.Count {
						v = 1 // COUNT(attr): each non-NULL value counts 1
					} else {
						if !val.IsNumeric() {
							return nil, fmt.Errorf("eval: aggregate %s over non-numeric value %v", g.Aggs[ai].Func, val)
						}
						v = val.AsFloat()
					}
				}
				grp.Aggs[ai].Terms = append(grp.Aggs[ai].Terms, smt.AggTerm{Guard: prov, Value: v})
			}
		}
		grp.Exists = boolexpr.Or(exists...)

		// Translate the HAVING predicates for this group.
		having := smt.Formula(&smt.FConst{Val: true})
		for _, sel := range spec.Havings {
			f, err := translateHaving(sel.Pred, gbSchema, g, grp, params)
			if err != nil {
				return nil, err
			}
			having = smt.And(having, f)
		}
		grp.Having = having
		res.Groups = append(res.Groups, grp)
		res.byKey[ks] = grp
	}

	// Output columns: projection over the group-by output, or all of it.
	if spec.Proj == nil {
		for i := range g.GroupCols {
			res.OutCols = append(res.OutCols, OutCol{IsAgg: false, Idx: i})
		}
		for i := range g.Aggs {
			res.OutCols = append(res.OutCols, OutCol{IsAgg: true, Idx: i})
		}
	} else {
		for _, c := range spec.Proj.Cols {
			j, err := gbSchema.Resolve(c)
			if err != nil {
				return nil, err
			}
			if j < len(g.GroupCols) {
				res.OutCols = append(res.OutCols, OutCol{IsAgg: false, Idx: j})
			} else {
				res.OutCols = append(res.OutCols, OutCol{IsAgg: true, Idx: j - len(g.GroupCols)})
			}
		}
	}
	return res, nil
}

// translateHaving converts a HAVING predicate over the group-by output
// schema into a symbolic smt formula for a specific group: group-column
// references become constants, aggregate-column references become symbolic
// aggregate operands.
func translateHaving(e ra.Expr, gbSchema relation.Schema, g *ra.GroupBy, grp *AggGroup, params map[string]relation.Value) (smt.Formula, error) {
	switch x := e.(type) {
	case *ra.And:
		out := smt.Formula(&smt.FConst{Val: true})
		for _, k := range x.Kids {
			f, err := translateHaving(k, gbSchema, g, grp, params)
			if err != nil {
				return nil, err
			}
			out = smt.And(out, f)
		}
		return out, nil
	case *ra.Or:
		out := smt.Formula(&smt.FConst{Val: false})
		for _, k := range x.Kids {
			f, err := translateHaving(k, gbSchema, g, grp, params)
			if err != nil {
				return nil, err
			}
			out = smt.Or(out, f)
		}
		return out, nil
	case *ra.Not:
		f, err := translateHaving(x.Kid, gbSchema, g, grp, params)
		if err != nil {
			return nil, err
		}
		return smt.Not(f), nil
	case *ra.Cmp:
		l, err := translateOperand(x.L, gbSchema, g, grp, params)
		if err != nil {
			return nil, err
		}
		r, err := translateOperand(x.R, gbSchema, g, grp, params)
		if err != nil {
			return nil, err
		}
		return &smt.FCmp{Op: x.Op, L: l, R: r}, nil
	}
	return nil, fmt.Errorf("eval: unsupported HAVING predicate %s", e)
}

func translateOperand(e ra.Expr, gbSchema relation.Schema, g *ra.GroupBy, grp *AggGroup, params map[string]relation.Value) (smt.Operand, error) {
	switch x := e.(type) {
	case *ra.Const:
		if !x.Val.IsNumeric() {
			return smt.Operand{}, fmt.Errorf("eval: non-numeric constant %v in HAVING", x.Val)
		}
		return smt.ConstOp(x.Val.AsFloat()), nil
	case *ra.Param:
		if v, ok := params[x.Name]; ok && v.IsNumeric() {
			// Bound parameter: treat as a constant unless parameterization
			// keeps it symbolic (the caller controls this by omitting the
			// binding).
			return smt.ConstOp(v.AsFloat()), nil
		}
		return smt.ParamOp(x.Name), nil
	case *ra.AttrRef:
		j, err := gbSchema.Resolve(x.Name)
		if err != nil {
			return smt.Operand{}, err
		}
		if j < len(g.GroupCols) {
			v := grp.Key[j]
			if !v.IsNumeric() {
				return smt.Operand{}, fmt.Errorf("eval: non-numeric group column %s in HAVING comparison", x.Name)
			}
			return smt.ConstOp(v.AsFloat()), nil
		}
		return smt.AggOp(grp.Aggs[j-len(g.GroupCols)]), nil
	}
	return smt.Operand{}, fmt.Errorf("eval: unsupported HAVING operand %s", e)
}
