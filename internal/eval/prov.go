package eval

import (
	"fmt"

	"repro/internal/boolexpr"
	"repro/internal/ra"
	"repro/internal/relation"
)

// AnnRel is a provenance-annotated relation: each tuple carries its Boolean
// how-provenance over base tuple identifiers (Section 2.3). Under set
// semantics, tuples are distinct and the annotation of a merged duplicate is
// the disjunction of its sources (the string_agg rewrite rule of Section 6).
type AnnRel struct {
	Schema relation.Schema
	Tuples []relation.Tuple
	Provs  []*boolexpr.Expr

	index map[string]int
}

// NewAnnRel creates an empty annotated relation with the given schema.
func NewAnnRel(schema relation.Schema) *AnnRel {
	return &AnnRel{Schema: schema, index: map[string]int{}}
}

// Add inserts a tuple with provenance, merging by disjunction if an
// identical tuple is already present.
func (a *AnnRel) Add(t relation.Tuple, prov *boolexpr.Expr) {
	k := t.Key()
	if i, ok := a.index[k]; ok {
		a.Provs[i] = boolexpr.Or(a.Provs[i], prov)
		return
	}
	a.index[k] = len(a.Tuples)
	a.Tuples = append(a.Tuples, t)
	a.Provs = append(a.Provs, prov)
}

// Len returns the number of distinct tuples.
func (a *AnnRel) Len() int { return len(a.Tuples) }

// Lookup returns the position of an identical tuple, or -1.
func (a *AnnRel) Lookup(t relation.Tuple) int {
	if i, ok := a.index[t.Key()]; ok {
		return i
	}
	return -1
}

// Relation strips annotations, returning a plain relation.
func (a *AnnRel) Relation(name string) *relation.Relation {
	out := relation.NewRelation(name, a.Schema)
	out.Tuples = append(out.Tuples, a.Tuples...)
	return out
}

// EvalProv evaluates a SPJUD query with how-provenance annotation. GroupBy
// nodes are rejected: aggregate queries go through EvalAggProv (Section 5).
// The query is optimized (selection pushdown, hash equi-joins) first; the
// rewrites preserve provenance annotations.
func EvalProv(q ra.Node, db *relation.Database, params map[string]relation.Value) (*AnnRel, error) {
	return evalProvNode(Optimize(q, Catalog{DB: db}), db, params)
}

func evalProvNode(q ra.Node, db *relation.Database, params map[string]relation.Value) (*AnnRel, error) {
	switch x := q.(type) {
	case *ra.Rel:
		r := db.Relation(x.Name)
		if r == nil {
			return nil, fmt.Errorf("eval: unknown relation %q", x.Name)
		}
		out := NewAnnRel(r.Schema)
		for i, t := range r.Tuples {
			id := r.ID(i)
			if id == relation.InvalidTupleID {
				return nil, fmt.Errorf("eval: relation %q has tuples without identifiers", x.Name)
			}
			out.Add(t, boolexpr.Var(int(id)))
		}
		return out, nil
	case *ra.Select:
		in, err := evalProvNode(x.In, db, params)
		if err != nil {
			return nil, err
		}
		pred, err := ra.CompileExpr(x.Pred, in.Schema, params)
		if err != nil {
			return nil, err
		}
		out := NewAnnRel(in.Schema)
		for i, t := range in.Tuples {
			v, err := pred(t)
			if err != nil {
				return nil, err
			}
			if ra.Truthy(v) {
				out.Add(t, in.Provs[i])
			}
		}
		return out, nil
	case *ra.Project:
		in, err := evalProvNode(x.In, db, params)
		if err != nil {
			return nil, err
		}
		idxs, outSchema, err := projectPlan(x, in.Schema)
		if err != nil {
			return nil, err
		}
		out := NewAnnRel(outSchema)
		for i, t := range in.Tuples {
			out.Add(t.Project(idxs), in.Provs[i])
		}
		return out, nil
	case *ra.Join:
		l, err := evalProvNode(x.L, db, params)
		if err != nil {
			return nil, err
		}
		r, err := evalProvNode(x.R, db, params)
		if err != nil {
			return nil, err
		}
		return joinProv(l, r, x.Cond, params)
	case *ra.Union:
		l, err := evalProvNode(x.L, db, params)
		if err != nil {
			return nil, err
		}
		r, err := evalProvNode(x.R, db, params)
		if err != nil {
			return nil, err
		}
		if !l.Schema.UnionCompatible(r.Schema) {
			return nil, fmt.Errorf("eval: union of incompatible schemas %s, %s", l.Schema, r.Schema)
		}
		out := NewAnnRel(l.Schema)
		for i, t := range l.Tuples {
			out.Add(t, l.Provs[i])
		}
		for i, t := range r.Tuples {
			out.Add(t, r.Provs[i])
		}
		return out, nil
	case *ra.Diff:
		l, err := evalProvNode(x.L, db, params)
		if err != nil {
			return nil, err
		}
		r, err := evalProvNode(x.R, db, params)
		if err != nil {
			return nil, err
		}
		if !l.Schema.UnionCompatible(r.Schema) {
			return nil, fmt.Errorf("eval: difference of incompatible schemas %s, %s", l.Schema, r.Schema)
		}
		// Section 6 difference rule: Prv(t) = PrvL(t) ∧ ¬PrvR(t) if t ∈ R,
		// else PrvL(t). All tuples of L are retained (their presence in the
		// difference depends on the chosen subinstance).
		out := NewAnnRel(l.Schema)
		for i, t := range l.Tuples {
			if j := r.Lookup(t); j >= 0 {
				out.Add(t, boolexpr.And(l.Provs[i], boolexpr.Not(r.Provs[j])))
			} else {
				out.Add(t, l.Provs[i])
			}
		}
		return out, nil
	case *ra.Rename:
		in, err := evalProvNode(x.In, db, params)
		if err != nil {
			return nil, err
		}
		out := NewAnnRel(in.Schema.Qualify(x.As))
		out.Tuples = in.Tuples
		out.Provs = in.Provs
		out.index = in.index
		return out, nil
	case *ra.GroupBy:
		return nil, fmt.Errorf("eval: how-provenance does not support aggregation; use EvalAggProv")
	}
	return nil, fmt.Errorf("eval: unknown node type %T", q)
}

func joinProv(l, r *AnnRel, cond ra.Expr, params map[string]relation.Value) (*AnnRel, error) {
	if cond != nil {
		outSchema := l.Schema.Concat(r.Schema)
		lKeys, rKeys, residual := equiJoinPlan(cond, l.Schema, r.Schema)
		var pred ra.CompiledExpr
		if residual != nil {
			var err error
			pred, err = ra.CompileExpr(residual, outSchema, params)
			if err != nil {
				return nil, err
			}
		}
		out := NewAnnRel(outSchema)
		emit := func(li, ri int) error {
			t := l.Tuples[li].Concat(r.Tuples[ri])
			if pred != nil {
				v, err := pred(t)
				if err != nil {
					return err
				}
				if !ra.Truthy(v) {
					return nil
				}
			}
			if out.Len() >= MaxIntermediateRows {
				return ErrRowBudget
			}
			out.Add(t, boolexpr.And(l.Provs[li], r.Provs[ri]))
			return nil
		}
		if len(lKeys) > 0 {
			idx := make(map[string][]int, r.Len())
			for i, rt := range r.Tuples {
				k := rt.Project(rKeys)
				if hasNullValue(k) {
					continue
				}
				idx[k.Key()] = append(idx[k.Key()], i)
			}
			for i, lt := range l.Tuples {
				k := lt.Project(lKeys)
				if hasNullValue(k) {
					continue
				}
				for _, ri := range idx[k.Key()] {
					if err := emit(i, ri); err != nil {
						return nil, err
					}
				}
			}
			return out, nil
		}
		for i := range l.Tuples {
			for j := range r.Tuples {
				if err := emit(i, j); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}
	shared, rOnly := ra.NaturalJoinCols(l.Schema, r.Schema)
	attrs := make([]relation.Attribute, 0, len(l.Schema.Attrs)+len(rOnly))
	attrs = append(attrs, l.Schema.Attrs...)
	for _, j := range rOnly {
		attrs = append(attrs, r.Schema.Attrs[j])
	}
	out := NewAnnRel(relation.Schema{Attrs: attrs})
	if len(shared) == 0 {
		if l.Len()*r.Len() > MaxIntermediateRows {
			return nil, ErrRowBudget
		}
		for i, lt := range l.Tuples {
			for j, rt := range r.Tuples {
				out.Add(lt.Concat(rt.Project(rOnly)), boolexpr.And(l.Provs[i], r.Provs[j]))
			}
		}
		return out, nil
	}
	lCols := make([]int, len(shared))
	rCols := make([]int, len(shared))
	for i, p := range shared {
		lCols[i], rCols[i] = p[0], p[1]
	}
	idx := make(map[string][]int, r.Len())
	for i, rt := range r.Tuples {
		idx[rt.Project(rCols).Key()] = append(idx[rt.Project(rCols).Key()], i)
	}
	for i, lt := range l.Tuples {
		key := lt.Project(lCols)
		hasNull := false
		for _, v := range key {
			if v.IsNull() {
				hasNull = true
				break
			}
		}
		if hasNull {
			continue
		}
		for _, ri := range idx[key.Key()] {
			out.Add(lt.Concat(r.Tuples[ri].Project(rOnly)), boolexpr.And(l.Provs[i], r.Provs[ri]))
		}
	}
	return out, nil
}
