package eval

import (
	"repro/internal/boolexpr"
	"repro/internal/engine"
	"repro/internal/ra"
	"repro/internal/relation"
)

// AnnRel is a provenance-annotated relation: each tuple carries its Boolean
// how-provenance over base tuple identifiers (Section 2.3). Under set
// semantics, tuples are distinct and the annotation of a merged duplicate is
// the disjunction of its sources (the string_agg rewrite rule of Section 6).
//
// It is a compatibility wrapper over engine.ProvRel; the two share tuple
// and annotation storage.
type AnnRel struct {
	Schema relation.Schema
	Tuples []relation.Tuple
	Provs  []*boolexpr.Expr

	index map[string]int
}

// NewAnnRel creates an empty annotated relation with the given schema.
func NewAnnRel(schema relation.Schema) *AnnRel {
	return &AnnRel{Schema: schema, index: map[string]int{}}
}

// fromEngine wraps an engine provenance result without copying: the tuple
// slice, annotation slice and hash index are shared.
func fromEngine(r *engine.ProvRel) *AnnRel {
	return &AnnRel{Schema: r.Schema, Tuples: r.Tuples, Provs: r.Anns, index: r.Index()}
}

// Add inserts a tuple with provenance, merging by disjunction if an
// identical tuple is already present.
func (a *AnnRel) Add(t relation.Tuple, prov *boolexpr.Expr) {
	k := t.Key()
	if i, ok := a.index[k]; ok {
		a.Provs[i] = boolexpr.Or(a.Provs[i], prov)
		return
	}
	a.index[k] = len(a.Tuples)
	a.Tuples = append(a.Tuples, t)
	a.Provs = append(a.Provs, prov)
}

// Len returns the number of distinct tuples.
func (a *AnnRel) Len() int { return len(a.Tuples) }

// Lookup returns the position of an identical tuple, or -1. It is a hash
// probe, not a scan.
func (a *AnnRel) Lookup(t relation.Tuple) int {
	if i, ok := a.index[t.Key()]; ok {
		return i
	}
	return -1
}

// Relation strips annotations, returning a plain relation.
func (a *AnnRel) Relation(name string) *relation.Relation {
	out := relation.NewRelation(name, a.Schema)
	out.Tuples = append(out.Tuples, a.Tuples...)
	return out
}

// EvalProv evaluates a SPJUD query with how-provenance annotation. GroupBy
// nodes are rejected: aggregate queries go through EvalAggProv (Section 5).
// The query is optimized (selection pushdown, hash equi-joins) first; the
// rewrites preserve provenance annotations.
func EvalProv(q ra.Node, db *relation.Database, params map[string]relation.Value) (*AnnRel, error) {
	r, err := engine.EvalProv(q, db, params)
	if err != nil {
		return nil, err
	}
	return fromEngine(r), nil
}
