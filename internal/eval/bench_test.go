package eval

import (
	"testing"

	"repro/internal/ra"
	"repro/internal/raparser"
	"repro/internal/relation"
	"repro/internal/testdb"
)

func benchDB(n int) *relation.Database {
	db := relation.NewDatabase()
	db.CreateRelation("L", relation.NewSchema(
		relation.Attr("k", relation.KindInt), relation.Attr("a", relation.KindInt)))
	db.CreateRelation("R", relation.NewSchema(
		relation.Attr("k", relation.KindInt), relation.Attr("b", relation.KindInt)))
	for i := 0; i < n; i++ {
		db.Insert("L", relation.NewTuple(relation.Int(int64(i%97)), relation.Int(int64(i))))
		db.Insert("R", relation.NewTuple(relation.Int(int64(i%97)), relation.Int(int64(i))))
	}
	return db
}

func BenchmarkNaturalHashJoin(b *testing.B) {
	db := benchDB(2000)
	q := raparser.MustParse("L join R")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(q, db, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThetaEquiJoin(b *testing.B) {
	db := benchDB(2000)
	q := raparser.MustParse("rename[x](L) join[x.k = y.k and x.a < y.b] rename[y](R)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(q, db, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProvenanceEvaluation(b *testing.B) {
	db := testdb.Example1DB()
	q := &ra.Diff{L: testdb.Q2(), R: testdb.Q1()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalProv(q, db, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggProvenance(b *testing.B) {
	db := testdb.Example1DB()
	q := testdb.HavingQ2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalAggProv(q, db, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupBy(b *testing.B) {
	db := benchDB(5000)
	q := raparser.MustParse("groupby[k; count(*) -> c, sum(a) -> s, avg(a) -> m](L)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(q, db, nil); err != nil {
			b.Fatal(err)
		}
	}
}
