package smt

import (
	"testing"

	"repro/internal/boolexpr"
	"repro/internal/ra"
)

func v(id int) *boolexpr.Expr { return boolexpr.Var(id) }

func assignSet(ids ...int) func(int) bool {
	m := map[int]bool{}
	for _, id := range ids {
		m[id] = true
	}
	return func(id int) bool { return m[id] }
}

func TestAggValueEval(t *testing.T) {
	avg := &AggValue{Func: ra.Avg, Terms: []AggTerm{
		{Guard: v(1), Value: 100},
		{Guard: v(2), Value: 80},
	}}
	if x, ok := avg.Eval(assignSet(1, 2)); !ok || x != 90 {
		t.Errorf("avg = %v %v", x, ok)
	}
	if x, ok := avg.Eval(assignSet(1)); !ok || x != 100 {
		t.Errorf("avg one = %v %v", x, ok)
	}
	if _, ok := avg.Eval(assignSet()); ok {
		t.Error("empty avg should be undefined")
	}

	cnt := &AggValue{Func: ra.Count, Terms: []AggTerm{{Guard: v(1), Value: 1}, {Guard: v(2), Value: 1}}}
	if x, ok := cnt.Eval(assignSet()); !ok || x != 0 {
		t.Errorf("empty count = %v %v, want 0 true", x, ok)
	}

	sum := &AggValue{Func: ra.Sum, Terms: []AggTerm{{Guard: v(1), Value: 3}, {Guard: v(2), Value: -4}}}
	if x, ok := sum.Eval(assignSet(1, 2)); !ok || x != -1 {
		t.Errorf("sum = %v", x)
	}

	mn := &AggValue{Func: ra.Min, Terms: []AggTerm{{Guard: v(1), Value: 5}, {Guard: v(2), Value: 2}}}
	if x, _ := mn.Eval(assignSet(1, 2)); x != 2 {
		t.Errorf("min = %v", x)
	}
	mx := &AggValue{Func: ra.Max, Terms: []AggTerm{{Guard: v(1), Value: 5}, {Guard: v(2), Value: 2}}}
	if x, _ := mx.Eval(assignSet(1, 2)); x != 5 {
		t.Errorf("max = %v", x)
	}
}

func TestAggValueGuardsAreExprs(t *testing.T) {
	// Guards may be conjunctions (join provenance), e.g. t1∧t4.
	a := &AggValue{Func: ra.Sum, Terms: []AggTerm{
		{Guard: boolexpr.And(v(1), v(4)), Value: 10},
		{Guard: boolexpr.And(v(1), v(5)), Value: 20},
	}}
	if x, ok := a.Eval(assignSet(1, 4)); !ok || x != 10 {
		t.Errorf("guarded sum = %v", x)
	}
	if _, ok := a.Eval(assignSet(4, 5)); ok {
		t.Error("no student tuple: undefined")
	}
}

func TestBoundsSoundness(t *testing.T) {
	// Property: for every completion of a partial assignment, the true
	// aggregate value must lie within Bounds().
	agg := &AggValue{Func: ra.Avg, Terms: []AggTerm{
		{Guard: v(1), Value: 10}, {Guard: v(2), Value: 50}, {Guard: v(3), Value: 90},
	}}
	partial := func(id int) boolexpr.TriState {
		if id == 1 {
			return boolexpr.TriTrue
		}
		return boolexpr.TriUnknown
	}
	iv := agg.Bounds(partial)
	for mask := 0; mask < 4; mask++ {
		ids := []int{1}
		if mask&1 != 0 {
			ids = append(ids, 2)
		}
		if mask&2 != 0 {
			ids = append(ids, 3)
		}
		x, ok := agg.Eval(assignSet(ids...))
		if !ok {
			continue
		}
		if x < iv.Lo-1e-9 || x > iv.Hi+1e-9 {
			t.Errorf("value %v outside bounds [%v,%v]", x, iv.Lo, iv.Hi)
		}
	}
	if iv.MayBeUndef || iv.MustBeUndef {
		t.Error("guard t1 is sure: not undefined")
	}
}

func TestFormulaConstructors(t *testing.T) {
	tr, fa := &FConst{Val: true}, &FConst{Val: false}
	if And(tr, tr).(*FConst).Val != true {
		t.Error("And(T,T)")
	}
	if And(tr, fa).(*FConst).Val != false {
		t.Error("And(T,F)")
	}
	if Or(fa, fa).(*FConst).Val != false {
		t.Error("Or(F,F)")
	}
	if Or(fa, tr).(*FConst).Val != true {
		t.Error("Or(F,T)")
	}
	if Not(tr).(*FConst).Val != false {
		t.Error("Not(T)")
	}
	p := &FProv{E: v(1)}
	if And(tr, p) != Formula(p) {
		t.Error("And(T,p) should collapse to p")
	}
	if Not(Not(p)) != Formula(p) {
		t.Error("double negation")
	}
}

func TestSolveSimpleProv(t *testing.T) {
	// t1 ∧ (t4 ∨ t5): minimum 2 tuples.
	f := &FProv{E: boolexpr.And(v(1), boolexpr.Or(v(4), v(5)))}
	r := Solve(Problem{Formula: f})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if r.Cost != 2 {
		t.Errorf("cost = %d, want 2", r.Cost)
	}
	if !r.Assign[1] {
		t.Error("t1 must be chosen")
	}
}

func TestSolveInfeasible(t *testing.T) {
	f := And(&FProv{E: v(1)}, &FProv{E: boolexpr.Not(v(1))})
	r := Solve(Problem{Formula: f})
	if r.Status != Infeasible {
		t.Errorf("status = %v", r.Status)
	}
}

func TestSolveAggregateDifference(t *testing.T) {
	// Example 4 shape: Q1's avg (CS only: t4,t5 guarded by t1) vs Q2's avg
	// (t4,t5,t6 guarded by t1). Disagreement formula: presence XOR or value
	// difference. The optimum is {t1, t6}: group exists in Q2 only... or
	// rather both exist but differ. Check minimal cost 2.
	g1Exists := boolexpr.And(v(1), boolexpr.Or(v(4), v(5)))
	g2Exists := boolexpr.And(v(1), boolexpr.Or(v(4), v(5), v(6)))
	avg1 := &AggValue{Func: ra.Avg, Terms: []AggTerm{
		{Guard: boolexpr.And(v(1), v(4)), Value: 100},
		{Guard: boolexpr.And(v(1), v(5)), Value: 75},
	}}
	avg2 := &AggValue{Func: ra.Avg, Terms: []AggTerm{
		{Guard: boolexpr.And(v(1), v(4)), Value: 100},
		{Guard: boolexpr.And(v(1), v(5)), Value: 75},
		{Guard: boolexpr.And(v(1), v(6)), Value: 95},
	}}
	p1 := &FProv{E: g1Exists}
	p2 := &FProv{E: g2Exists}
	f := Or(
		And(p1, Not(p2)),
		And(Not(p1), p2),
		And(p1, p2, &FCmp{Op: ra.NE, L: AggOp(avg1), R: AggOp(avg2)}),
	)
	r := Solve(Problem{Formula: f})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if r.Cost != 2 {
		t.Fatalf("cost = %d, want 2 (e.g. {t1,t6})", r.Cost)
	}
	if !r.Assign[1] || !r.Assign[6] {
		t.Errorf("expected {t1,t6}, got %v", r.Assign)
	}
	// Verify the model satisfies the formula exactly.
	if !EvalFormula(f, func(id int) bool { return r.Assign[id] }, nil) {
		t.Error("model does not satisfy formula")
	}
}

func TestSolveWithParams(t *testing.T) {
	// HAVING count >= @p with two guarded members; presence differs when
	// the parameter admits the smaller group. Minimal: 1 tuple with p=1.
	cnt1 := &AggValue{Func: ra.Count, Terms: []AggTerm{{Guard: v(1), Value: 1}}}
	cnt2 := &AggValue{Func: ra.Count, Terms: []AggTerm{{Guard: v(1), Value: 1}, {Guard: v(2), Value: 1}}}
	p1 := And(&FProv{E: v(1)}, &FCmp{Op: ra.GE, L: AggOp(cnt1), R: ParamOp("p")})
	p2 := And(&FProv{E: boolexpr.Or(v(1), v(2))}, &FCmp{Op: ra.GE, L: AggOp(cnt2), R: ParamOp("p")})
	f := Or(And(p1, Not(p2)), And(Not(p1), p2))
	r := Solve(Problem{
		Formula: f,
		Params:  []ParamSpec{{Name: "p", Candidates: []float64{1, 2, 3}}},
	})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if r.Cost != 1 {
		t.Fatalf("cost = %d, want 1", r.Cost)
	}
	// t2 alone with p=1: group2 count=1 passes, group1 absent. Or t1,t2
	// with p=2... minimal is t2 with p=1 or p=2? With only t2: cnt2=1,
	// exists2 true; cnt1 undefined & exists1 false. p=1 → p2 passes, p1
	// fails → disagreement with one tuple.
	if r.Params["p"] == 0 {
		t.Errorf("param not chosen: %v", r.Params)
	}
}

func TestSolveCostPruning(t *testing.T) {
	// 10 independent vars, formula requires any 1: optimum is 1 even with
	// a tight node budget (pruning makes it easy).
	kids := make([]*boolexpr.Expr, 10)
	for i := range kids {
		kids[i] = v(i + 1)
	}
	f := &FProv{E: boolexpr.Or(kids...)}
	r := Solve(Problem{Formula: f, MaxNodes: 100000})
	if r.Status != Optimal || r.Cost != 1 {
		t.Errorf("status=%v cost=%d", r.Status, r.Cost)
	}
}

func TestSolveBudgetExhaustion(t *testing.T) {
	// A formula over many vars with a tiny node budget: Unknown or
	// Feasible, never a wrong Optimal claim.
	kids := make([]*boolexpr.Expr, 24)
	for i := range kids {
		kids[i] = boolexpr.And(v(2*i+1), v(2*i+2))
	}
	f := &FProv{E: boolexpr.And(boolexpr.Or(kids[:12]...), boolexpr.Or(kids[12:]...))}
	r := Solve(Problem{Formula: f, MaxNodes: 10})
	if r.Status == Optimal {
		t.Errorf("tiny budget cannot prove optimality, got %v (cost %d)", r.Status, r.Cost)
	}
}

func TestCompareIntervalsViaFormulas(t *testing.T) {
	mkCnt := func(ids ...int) *AggValue {
		a := &AggValue{Func: ra.Count}
		for _, id := range ids {
			a.Terms = append(a.Terms, AggTerm{Guard: v(id), Value: 1})
		}
		return a
	}
	for _, op := range []ra.CmpOp{ra.EQ, ra.NE, ra.LT, ra.LE, ra.GT, ra.GE} {
		f := &FCmp{Op: op, L: AggOp(mkCnt(1, 2)), R: ConstOp(1)}
		// Exhaustively: formula evaluation must match the concrete
		// comparison for all assignments.
		for mask := 0; mask < 4; mask++ {
			var ids []int
			if mask&1 != 0 {
				ids = append(ids, 1)
			}
			if mask&2 != 0 {
				ids = append(ids, 2)
			}
			cnt := float64(len(ids))
			var want bool
			switch op {
			case ra.EQ:
				want = cnt == 1
			case ra.NE:
				want = cnt != 1
			case ra.LT:
				want = cnt < 1
			case ra.LE:
				want = cnt <= 1
			case ra.GT:
				want = cnt > 1
			case ra.GE:
				want = cnt >= 1
			}
			if got := EvalFormula(f, assignSet(ids...), nil); got != want {
				t.Errorf("%s with count=%v: got %v want %v", op, cnt, got, want)
			}
		}
	}
}

func TestFormulaVarsAndParams(t *testing.T) {
	a := &AggValue{Func: ra.Sum, Terms: []AggTerm{{Guard: boolexpr.And(v(3), v(7)), Value: 1}}}
	f := And(&FProv{E: v(1)}, &FCmp{Op: ra.GE, L: AggOp(a), R: ParamOp("x")}, Not(&FProv{E: v(2)}))
	vars := FormulaVars(f)
	if len(vars) != 4 {
		t.Errorf("vars = %v", vars)
	}
	ps := FormulaParams(f)
	if len(ps) != 1 || ps[0] != "x" {
		t.Errorf("params = %v", ps)
	}
}

func TestFormulaStrings(t *testing.T) {
	f := Or(And(&FProv{E: v(1)}, Not(&FProv{E: v(2)})),
		&FCmp{Op: ra.GE, L: ParamOp("p"), R: ConstOp(3)})
	s := f.String()
	if s == "" {
		t.Error("empty String")
	}
	if (&FConst{Val: true}).String() != "⊤" {
		t.Error("const string")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" {
		t.Error("status strings")
	}
}

func TestUndefComparisonsAreFalse(t *testing.T) {
	// SQL semantics: comparing an undefined (empty-group) aggregate is
	// false, even for NE.
	avg := &AggValue{Func: ra.Avg, Terms: []AggTerm{{Guard: v(1), Value: 50}}}
	f := &FCmp{Op: ra.NE, L: AggOp(avg), R: ConstOp(10)}
	if EvalFormula(f, assignSet(), nil) {
		t.Error("NE with undefined aggregate should be false")
	}
	if !EvalFormula(f, assignSet(1), nil) {
		t.Error("50 != 10 should be true")
	}
}
