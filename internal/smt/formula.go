// Package smt solves the constraint problems that Section 5 of the paper
// sends to an optimizing SMT solver: Boolean tuple-presence variables
// combined with symbolic aggregate values (provenance for aggregates,
// Amsterdamer et al.), comparison atoms over those values, and integer
// parameters (the smallest parameterized counterexample problem, Def. 3).
//
// The solver is a branch-and-bound search over the tuple variables that
// minimizes the number of variables set to true, with three-valued
// formula evaluation and interval bounds on aggregate values for pruning.
// Parameters with finite candidate domains are searched exhaustively in an
// outer loop.
package smt

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/boolexpr"
	"repro/internal/ra"
)

// AggTerm is one potential contribution to an aggregate value: if Guard is
// true under the tuple assignment, Value participates in the aggregate.
// This realizes the t4 ⊗ 100 +AVG t5 ⊗ 75 annotations of Table 2.
type AggTerm struct {
	Guard *boolexpr.Expr
	Value float64
}

// AggValue is a symbolic aggregate over guarded terms.
type AggValue struct {
	Func  ra.AggFunc
	Terms []AggTerm
}

// Eval computes the aggregate under a full assignment. ok is false when no
// guard is satisfied (empty group: the aggregate is undefined/NULL).
func (a *AggValue) Eval(assign func(int) bool) (float64, bool) {
	sum, cnt := 0.0, 0
	mn, mx := math.Inf(1), math.Inf(-1)
	//lint:budgeted leaf evaluation over the aggregate's fixed term list; the search loop polls Stop per node (solve.go eval)
	for _, t := range a.Terms {
		if !t.Guard.Eval(assign) {
			continue
		}
		cnt++
		sum += t.Value
		if t.Value < mn {
			mn = t.Value
		}
		if t.Value > mx {
			mx = t.Value
		}
	}
	if cnt == 0 {
		if a.Func == ra.Count {
			return 0, true // COUNT of an empty selection is 0, not NULL
		}
		return 0, false
	}
	switch a.Func {
	case ra.Count:
		return float64(cnt), true
	case ra.Sum:
		return sum, true
	case ra.Avg:
		return sum / float64(cnt), true
	case ra.Min:
		return mn, true
	case ra.Max:
		return mx, true
	}
	return 0, false
}

// Interval is a numeric range with emptiness information for pruning.
type Interval struct {
	Lo, Hi float64
	// MayBeUndef / MustBeUndef track whether the aggregate can / must be
	// undefined (empty group) under completions of the partial assignment.
	MayBeUndef  bool
	MustBeUndef bool
}

// Bounds computes a conservative interval of possible aggregate values
// under the three-valued partial assignment.
func (a *AggValue) Bounds(assign func(int) boolexpr.TriState) Interval {
	sureCnt, maybeCnt := 0, 0
	sureSum := 0.0
	posMaybe, negMaybe := 0.0, 0.0
	sureMin, sureMax := math.Inf(1), math.Inf(-1)
	allMin, allMax := math.Inf(1), math.Inf(-1)
	//lint:budgeted leaf bounds pass over the aggregate's fixed term list; the search loop polls Stop per node (solve.go eval)
	for _, t := range a.Terms {
		v := t.Guard.EvalTri(assign)
		if v == boolexpr.TriFalse {
			continue
		}
		if t.Value < allMin {
			allMin = t.Value
		}
		if t.Value > allMax {
			allMax = t.Value
		}
		if v == boolexpr.TriTrue {
			sureCnt++
			sureSum += t.Value
			if t.Value < sureMin {
				sureMin = t.Value
			}
			if t.Value > sureMax {
				sureMax = t.Value
			}
		} else {
			maybeCnt++
			if t.Value > 0 {
				posMaybe += t.Value
			} else {
				negMaybe += t.Value
			}
		}
	}
	iv := Interval{
		MayBeUndef:  sureCnt == 0,
		MustBeUndef: sureCnt == 0 && maybeCnt == 0,
	}
	switch a.Func {
	case ra.Count:
		iv.Lo, iv.Hi = float64(sureCnt), float64(sureCnt+maybeCnt)
		iv.MayBeUndef, iv.MustBeUndef = false, false // COUNT is always defined
	case ra.Sum:
		iv.Lo, iv.Hi = sureSum+negMaybe, sureSum+posMaybe
	case ra.Avg:
		// The average of any nonempty subset lies within the value range.
		iv.Lo, iv.Hi = allMin, allMax
	case ra.Min:
		iv.Lo = allMin
		if sureCnt > 0 {
			iv.Hi = sureMin
		} else {
			iv.Hi = allMax
		}
	case ra.Max:
		iv.Hi = allMax
		if sureCnt > 0 {
			iv.Lo = sureMax
		} else {
			iv.Lo = allMin
		}
	}
	return iv
}

// Vars returns the tuple variables referenced by the aggregate's guards,
// sorted. Callers feed the order into search heuristics (Solve's
// frequency tie-break), so it must not depend on map iteration order.
func (a *AggValue) Vars() []int {
	set := map[int]bool{}
	for _, t := range a.Terms {
		for _, v := range t.Guard.Vars() {
			set[v] = true
		}
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func (a *AggValue) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = fmt.Sprintf("[%s]⊗%g", t.Guard, t.Value)
	}
	return fmt.Sprintf("%s(%s)", a.Func, strings.Join(parts, " + "))
}

// OperandKind discriminates comparison operands.
type OperandKind uint8

// Operand kinds.
const (
	OpConst OperandKind = iota
	OpParam
	OpAgg
)

// Operand is one side of a comparison atom: a constant, an integer
// parameter, or a symbolic aggregate value.
type Operand struct {
	Kind  OperandKind
	Const float64
	Param string
	Agg   *AggValue
}

// ConstOp builds a constant operand.
func ConstOp(v float64) Operand { return Operand{Kind: OpConst, Const: v} }

// ParamOp builds a parameter operand.
func ParamOp(name string) Operand { return Operand{Kind: OpParam, Param: name} }

// AggOp builds an aggregate operand.
func AggOp(a *AggValue) Operand { return Operand{Kind: OpAgg, Agg: a} }

func (o Operand) String() string {
	switch o.Kind {
	case OpConst:
		return fmt.Sprintf("%g", o.Const)
	case OpParam:
		return "@" + o.Param
	case OpAgg:
		return o.Agg.String()
	}
	return "?"
}

// Formula is a Boolean combination of tuple-provenance expressions and
// comparison atoms over aggregate values.
type Formula interface {
	fmt.Stringer
}

// FConst is a constant formula.
type FConst struct{ Val bool }

func (f *FConst) String() string {
	if f.Val {
		return "⊤"
	}
	return "⊥"
}

// FProv asserts a Boolean provenance expression over tuple variables.
type FProv struct{ E *boolexpr.Expr }

func (f *FProv) String() string { return f.E.String() }

// FCmp is a comparison atom L op R.
type FCmp struct {
	Op   ra.CmpOp
	L, R Operand
}

func (f *FCmp) String() string { return fmt.Sprintf("(%s %s %s)", f.L, f.Op, f.R) }

// FAnd is a conjunction.
type FAnd struct{ Kids []Formula }

func (f *FAnd) String() string { return "(and " + joinF(f.Kids) + ")" }

// FOr is a disjunction.
type FOr struct{ Kids []Formula }

func (f *FOr) String() string { return "(or " + joinF(f.Kids) + ")" }

// FNot is a negation.
type FNot struct{ Kid Formula }

func (f *FNot) String() string { return "(not " + f.Kid.String() + ")" }

func joinF(fs []Formula) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return strings.Join(parts, " ")
}

// And builds a conjunction, flattening and simplifying constants.
func And(fs ...Formula) Formula {
	kids := make([]Formula, 0, len(fs))
	for _, f := range fs {
		if f == nil {
			continue
		}
		if c, ok := f.(*FConst); ok {
			if !c.Val {
				return &FConst{Val: false}
			}
			continue
		}
		if a, ok := f.(*FAnd); ok {
			kids = append(kids, a.Kids...)
			continue
		}
		kids = append(kids, f)
	}
	switch len(kids) {
	case 0:
		return &FConst{Val: true}
	case 1:
		return kids[0]
	}
	return &FAnd{Kids: kids}
}

// Or builds a disjunction, flattening and simplifying constants.
func Or(fs ...Formula) Formula {
	kids := make([]Formula, 0, len(fs))
	for _, f := range fs {
		if f == nil {
			continue
		}
		if c, ok := f.(*FConst); ok {
			if c.Val {
				return &FConst{Val: true}
			}
			continue
		}
		if o, ok := f.(*FOr); ok {
			kids = append(kids, o.Kids...)
			continue
		}
		kids = append(kids, f)
	}
	switch len(kids) {
	case 0:
		return &FConst{Val: false}
	case 1:
		return kids[0]
	}
	return &FOr{Kids: kids}
}

// Not builds a negation with constant simplification.
func Not(f Formula) Formula {
	if c, ok := f.(*FConst); ok {
		return &FConst{Val: !c.Val}
	}
	if n, ok := f.(*FNot); ok {
		return n.Kid
	}
	return &FNot{Kid: f}
}

// FormulaVars returns the distinct tuple variables referenced anywhere in
// the formula, sorted. Solve orders its branching variables by frequency
// with a stable sort over this slice, so an unsorted (map-order) result
// made tie-broken search paths — and budget-bounded outcomes —
// nondeterministic run-to-run.
func FormulaVars(f Formula) []int {
	set := map[int]bool{}
	collectVars(f, set)
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func collectVars(f Formula, set map[int]bool) {
	switch x := f.(type) {
	case *FConst:
	case *FProv:
		for _, v := range x.E.Vars() {
			set[v] = true
		}
	case *FCmp:
		for _, o := range []Operand{x.L, x.R} {
			if o.Kind == OpAgg {
				for _, v := range o.Agg.Vars() {
					set[v] = true
				}
			}
		}
	case *FAnd:
		for _, k := range x.Kids {
			collectVars(k, set)
		}
	case *FOr:
		for _, k := range x.Kids {
			collectVars(k, set)
		}
	case *FNot:
		collectVars(x.Kid, set)
	}
}

// FormulaParams returns the distinct parameter names referenced in the
// formula.
func FormulaParams(f Formula) []string {
	set := map[string]bool{}
	var out []string
	var walk func(Formula)
	walk = func(g Formula) {
		switch x := g.(type) {
		case *FCmp:
			for _, o := range []Operand{x.L, x.R} {
				if o.Kind == OpParam && !set[o.Param] {
					set[o.Param] = true
					out = append(out, o.Param)
				}
			}
		case *FAnd:
			for _, k := range x.Kids {
				walk(k)
			}
		case *FOr:
			for _, k := range x.Kids {
				walk(k)
			}
		case *FNot:
			walk(x.Kid)
		}
	}
	walk(f)
	return out
}
