package smt

import (
	"math"
	"sort"

	"repro/internal/boolexpr"
	"repro/internal/faults"
	"repro/internal/ra"
)

// Status reports the outcome of a Solve call.
type Status int

// Outcomes.
const (
	// Infeasible: the formula has no model under any parameter setting.
	Infeasible Status = iota
	// Optimal: the returned model provably minimizes the cost.
	Optimal
	// Feasible: a model was found but the node budget expired before the
	// search completed.
	Feasible
	// Unknown: no model found and the budget expired.
	Unknown
)

func (s Status) String() string {
	switch s {
	case Infeasible:
		return "infeasible"
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	}
	return "unknown"
}

// ParamSpec is an integer parameter with a finite candidate domain.
type ParamSpec struct {
	Name       string
	Candidates []float64
}

// Problem is a min-ones instance over tuple variables with aggregate atoms.
type Problem struct {
	Formula Formula
	// CostVars are the variables whose true-count is minimized. Defaults
	// to all formula variables when empty.
	CostVars []int
	// Params are parameter domains searched exhaustively; combinations are
	// capped at MaxParamCombos.
	Params []ParamSpec
	// MaxNodes bounds the total branch-and-bound nodes (0 = default 2e6).
	MaxNodes int64
	// MaxParamCombos caps the parameter grid (0 = default 512).
	MaxParamCombos int
	// Stop, when non-nil, is polled periodically during the search;
	// returning true aborts it, reporting Unknown (or Feasible with the
	// best assignment found so far). Callers use it to enforce wall-clock
	// deadlines.
	Stop func() bool
}

// Result is the outcome of Solve.
type Result struct {
	Status Status
	Assign map[int]bool
	Params map[string]float64
	Cost   int
	Nodes  int64
}

// Solve minimizes the number of cost variables set to true subject to the
// formula, searching parameter combinations exhaustively.
func Solve(p Problem) Result {
	vars := p.CostVars
	if len(vars) == 0 {
		vars = FormulaVars(p.Formula)
	}
	costSet := make(map[int]bool, len(vars))
	for _, v := range vars {
		costSet[v] = true
	}
	allVars := FormulaVars(p.Formula)
	for _, v := range allVars {
		if !costSet[v] {
			vars = append(vars, v)
		}
	}
	// Order variables by frequency of occurrence (most constrained first).
	freq := varFrequency(p.Formula)
	sort.SliceStable(vars, func(i, j int) bool { return freq[vars[i]] > freq[vars[j]] })

	maxNodes := p.MaxNodes
	if maxNodes == 0 {
		maxNodes = 2_000_000
	}
	combos := paramCombos(p.Params, p.MaxParamCombos)

	best := Result{Status: Infeasible, Cost: math.MaxInt}
	complete := true
	var nodes int64
	for _, combo := range combos {
		faults.Inject(faults.SMTSolve)
		s := &searcher{
			formula:  p.Formula,
			vars:     vars,
			costSet:  costSet,
			assign:   make(map[int]int8, len(vars)),
			params:   combo,
			maxNodes: maxNodes,
			bestCost: best.Cost,
			stop:     p.Stop,
		}
		s.nodes = nodes
		s.search(0, 0)
		nodes = s.nodes
		if s.best != nil && s.bestCost < best.Cost {
			best.Assign = s.best
			best.Cost = s.bestCost
			best.Params = combo
		}
		if s.budgetHit {
			complete = false
		}
		if nodes >= maxNodes {
			complete = false
			break
		}
		// A fired Stop hook is permanent (deadlines don't un-expire):
		// don't start the remaining parameter combos just to have each
		// burn ~a poll stride of nodes before noticing.
		if p.Stop != nil && p.Stop() {
			complete = false
			break
		}
	}
	best.Nodes = nodes
	if best.Assign == nil {
		if complete {
			best.Status = Infeasible
		} else {
			best.Status = Unknown
		}
		best.Cost = 0
		return best
	}
	if complete {
		best.Status = Optimal
	} else {
		best.Status = Feasible
	}
	return best
}

type searcher struct {
	formula   Formula
	vars      []int
	costSet   map[int]bool
	assign    map[int]int8 // -1 false, +1 true; absent = unassigned
	params    map[string]float64
	nodes     int64
	maxNodes  int64
	best      map[int]bool
	bestCost  int
	budgetHit bool
	stop      func() bool
}

func (s *searcher) triAssign(v int) boolexpr.TriState {
	switch s.assign[v] {
	case 1:
		return boolexpr.TriTrue
	case -1:
		return boolexpr.TriFalse
	}
	return boolexpr.TriUnknown
}

func (s *searcher) search(i, cost int) {
	if s.nodes >= s.maxNodes {
		s.budgetHit = true
		return
	}
	// Poll the caller's stop hook on a node stride (same Unknown/Feasible
	// reporting as the node budget, so deadline aborts are never mistaken
	// for infeasibility proofs).
	if s.stop != nil && s.nodes%1024 == 0 && s.stop() {
		s.budgetHit = true
		return
	}
	s.nodes++
	if cost >= s.bestCost {
		return
	}
	switch evalFormulaTri(s.formula, s.triAssign, s.params) {
	case boolexpr.TriFalse:
		return
	case boolexpr.TriTrue:
		// Any completion works; all-false completion has cost `cost`.
		s.record(cost)
		return
	}
	if i >= len(s.vars) {
		// Fully assigned yet still Unknown should not happen; treat as
		// unsatisfied to stay sound.
		return
	}
	v := s.vars[i]
	// Prefer false (cheaper) first.
	s.assign[v] = -1
	s.search(i+1, cost)
	s.assign[v] = 1
	nc := cost
	if s.costSet[v] {
		nc++
	}
	s.search(i+1, nc)
	delete(s.assign, v)
}

func (s *searcher) record(cost int) {
	if cost >= s.bestCost {
		return
	}
	m := make(map[int]bool, len(s.vars))
	for _, v := range s.vars {
		m[v] = s.assign[v] == 1
	}
	s.best = m
	s.bestCost = cost
}

// evalFormulaTri evaluates the formula under a partial assignment.
func evalFormulaTri(f Formula, assign func(int) boolexpr.TriState, params map[string]float64) boolexpr.TriState {
	switch x := f.(type) {
	case *FConst:
		if x.Val {
			return boolexpr.TriTrue
		}
		return boolexpr.TriFalse
	case *FProv:
		return x.E.EvalTri(assign)
	case *FCmp:
		return evalCmpTri(x, assign, params)
	case *FAnd:
		r := boolexpr.TriTrue
		for _, k := range x.Kids {
			v := evalFormulaTri(k, assign, params)
			if v == boolexpr.TriFalse {
				return boolexpr.TriFalse
			}
			if v == boolexpr.TriUnknown {
				r = boolexpr.TriUnknown
			}
		}
		return r
	case *FOr:
		r := boolexpr.TriFalse
		for _, k := range x.Kids {
			v := evalFormulaTri(k, assign, params)
			if v == boolexpr.TriTrue {
				return boolexpr.TriTrue
			}
			if v == boolexpr.TriUnknown {
				r = boolexpr.TriUnknown
			}
		}
		return r
	case *FNot:
		return boolexpr.Not3(evalFormulaTri(x.Kid, assign, params))
	}
	return boolexpr.TriUnknown
}

func operandInterval(o Operand, assign func(int) boolexpr.TriState, params map[string]float64) Interval {
	switch o.Kind {
	case OpConst:
		return Interval{Lo: o.Const, Hi: o.Const}
	case OpParam:
		v, ok := params[o.Param]
		if !ok {
			// Unbound parameter: unconstrained value.
			return Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
		}
		return Interval{Lo: v, Hi: v}
	case OpAgg:
		return o.Agg.Bounds(assign)
	}
	return Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
}

// evalCmpTri compares two operand intervals in three-valued logic. An
// undefined aggregate (empty group, NULL) makes any comparison false, per
// SQL semantics.
func evalCmpTri(c *FCmp, assign func(int) boolexpr.TriState, params map[string]float64) boolexpr.TriState {
	li := operandInterval(c.L, assign, params)
	ri := operandInterval(c.R, assign, params)
	if li.MustBeUndef || ri.MustBeUndef {
		return boolexpr.TriFalse
	}
	v := compareIntervals(c.Op, li, ri)
	if (li.MayBeUndef || ri.MayBeUndef) && v == boolexpr.TriTrue {
		// Could still become undefined → false.
		return boolexpr.TriUnknown
	}
	return v
}

const eps = 1e-9

func compareIntervals(op ra.CmpOp, l, r Interval) boolexpr.TriState {
	switch op {
	case ra.EQ:
		if l.Lo == l.Hi && r.Lo == r.Hi {
			if approxEq(l.Lo, r.Lo) {
				return boolexpr.TriTrue
			}
			return boolexpr.TriFalse
		}
		if l.Hi < r.Lo-eps || r.Hi < l.Lo-eps {
			return boolexpr.TriFalse
		}
		return boolexpr.TriUnknown
	case ra.NE:
		return boolexpr.Not3(compareIntervals(ra.EQ, l, r))
	case ra.LT:
		if l.Hi < r.Lo-eps {
			return boolexpr.TriTrue
		}
		if l.Lo >= r.Hi-eps {
			return boolexpr.TriFalse
		}
		return boolexpr.TriUnknown
	case ra.LE:
		if l.Hi <= r.Lo+eps {
			return boolexpr.TriTrue
		}
		if l.Lo > r.Hi+eps {
			return boolexpr.TriFalse
		}
		return boolexpr.TriUnknown
	case ra.GT:
		return compareIntervals(ra.LT, r, l)
	case ra.GE:
		return compareIntervals(ra.LE, r, l)
	}
	return boolexpr.TriUnknown
}

func approxEq(a, b float64) bool {
	d := math.Abs(a - b)
	if d <= eps {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= eps*m
}

// EvalFormula evaluates the formula exactly under a full assignment and
// parameter values. It is used to verify candidate counterexamples.
func EvalFormula(f Formula, assign func(int) bool, params map[string]float64) bool {
	tri := evalFormulaTri(f, func(v int) boolexpr.TriState {
		if assign(v) {
			return boolexpr.TriTrue
		}
		return boolexpr.TriFalse
	}, params)
	return tri == boolexpr.TriTrue
}

func varFrequency(f Formula) map[int]int {
	freq := map[int]int{}
	var walk func(Formula)
	count := func(e *boolexpr.Expr) {
		for _, v := range e.Vars() {
			freq[v]++
		}
	}
	walk = func(g Formula) {
		switch x := g.(type) {
		case *FProv:
			count(x.E)
		case *FCmp:
			for _, o := range []Operand{x.L, x.R} {
				if o.Kind == OpAgg {
					for _, t := range o.Agg.Terms {
						count(t.Guard)
					}
				}
			}
		case *FAnd:
			for _, k := range x.Kids {
				walk(k)
			}
		case *FOr:
			for _, k := range x.Kids {
				walk(k)
			}
		case *FNot:
			walk(x.Kid)
		}
	}
	walk(f)
	return freq
}

func paramCombos(specs []ParamSpec, cap int) []map[string]float64 {
	if cap == 0 {
		cap = 512
	}
	combos := []map[string]float64{{}}
	for _, spec := range specs {
		cands := spec.Candidates
		var next []map[string]float64
		for _, c := range combos {
			for _, v := range cands {
				m := make(map[string]float64, len(c)+1)
				for k, x := range c {
					m[k] = x
				}
				m[spec.Name] = v
				next = append(next, m)
				if len(next) >= cap {
					break
				}
			}
			if len(next) >= cap {
				break
			}
		}
		combos = next
	}
	return combos
}
