package smt

import (
	"sort"
	"testing"

	"repro/internal/boolexpr"
	"repro/internal/ra"
)

// Solve orders its branching variables with a stable frequency sort over
// FormulaVars, so ties keep the slice's order. These are the regressions
// for the bug where FormulaVars and AggValue.Vars returned map-iteration
// order, which made tie-broken search paths — and with them
// budget-bounded outcomes — differ run-to-run.

func TestFormulaVarsSorted(t *testing.T) {
	// Enough variables that map-iteration order is essentially never
	// ascending by accident, across several trials.
	for trial := 0; trial < 20; trial++ {
		var kids []Formula
		for i := 40; i > 0; i-- {
			kids = append(kids, &FProv{E: boolexpr.Var(i * 3)})
		}
		agg := &AggValue{Func: ra.Sum, Terms: []AggTerm{
			{Guard: boolexpr.And(boolexpr.Var(7), boolexpr.Var(2)), Value: 1},
			{Guard: boolexpr.Var(121), Value: 2},
		}}
		kids = append(kids, &FCmp{Op: ra.GE, L: AggOp(agg), R: ConstOp(0)})
		vars := FormulaVars(Or(kids...))
		if !sort.IntsAreSorted(vars) {
			t.Fatalf("trial %d: FormulaVars not sorted: %v", trial, vars)
		}
	}
}

func TestAggValueVarsSorted(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		var terms []AggTerm
		for i := 50; i > 0; i-- {
			terms = append(terms, AggTerm{Guard: boolexpr.Var(i * 2), Value: float64(i)})
		}
		a := &AggValue{Func: ra.Count, Terms: terms}
		vars := a.Vars()
		if !sort.IntsAreSorted(vars) {
			t.Fatalf("trial %d: AggValue.Vars not sorted: %v", trial, vars)
		}
		if len(vars) != 50 {
			t.Fatalf("trial %d: expected 50 distinct vars, got %d", trial, len(vars))
		}
	}
}
