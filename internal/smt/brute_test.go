package smt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/boolexpr"
	"repro/internal/ra"
)

// randomFormula builds a small random formula over nVars tuple variables
// mixing provenance leaves and aggregate comparison atoms.
func randomFormula(rng *rand.Rand, nVars int) Formula {
	randProv := func() *boolexpr.Expr {
		n := 1 + rng.Intn(3)
		kids := make([]*boolexpr.Expr, n)
		for i := range kids {
			v := boolexpr.Var(1 + rng.Intn(nVars))
			if rng.Intn(4) == 0 {
				kids[i] = boolexpr.Not(v)
			} else {
				kids[i] = v
			}
		}
		if rng.Intn(2) == 0 {
			return boolexpr.And(kids...)
		}
		return boolexpr.Or(kids...)
	}
	randAgg := func() *AggValue {
		fns := []ra.AggFunc{ra.Count, ra.Sum, ra.Avg, ra.Min, ra.Max}
		a := &AggValue{Func: fns[rng.Intn(len(fns))]}
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			a.Terms = append(a.Terms, AggTerm{
				Guard: boolexpr.Var(1 + rng.Intn(nVars)),
				Value: float64(rng.Intn(10)),
			})
		}
		return a
	}
	var leaf func(depth int) Formula
	leaf = func(depth int) Formula {
		if depth == 0 || rng.Intn(3) == 0 {
			if rng.Intn(2) == 0 {
				return &FProv{E: randProv()}
			}
			ops := []ra.CmpOp{ra.EQ, ra.NE, ra.LT, ra.LE, ra.GT, ra.GE}
			return &FCmp{
				Op: ops[rng.Intn(len(ops))],
				L:  AggOp(randAgg()),
				R:  ConstOp(float64(rng.Intn(8))),
			}
		}
		n := 2
		kids := make([]Formula, n)
		for i := range kids {
			kids[i] = leaf(depth - 1)
		}
		switch rng.Intn(3) {
		case 0:
			return And(kids...)
		case 1:
			return Or(kids...)
		default:
			return Not(And(kids...))
		}
	}
	return leaf(2)
}

// bruteMinOnes enumerates all assignments and returns the minimum number of
// true variables in a satisfying one, or -1.
func bruteMinOnes(f Formula, nVars int) int {
	best := -1
	for mask := 0; mask < 1<<nVars; mask++ {
		assign := func(id int) bool { return mask&(1<<(id-1)) != 0 }
		if !EvalFormula(f, assign, nil) {
			continue
		}
		ones := 0
		for v := 0; v < nVars; v++ {
			if mask&(1<<v) != 0 {
				ones++
			}
		}
		if best < 0 || ones < best {
			best = ones
		}
	}
	return best
}

// TestSolveMatchesBruteForce is the core soundness/optimality property of
// the aggregate solver: on random formulas it must agree exactly with
// exhaustive search.
func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2019))
	for trial := 0; trial < 300; trial++ {
		nVars := 3 + rng.Intn(6)
		f := randomFormula(rng, nVars)
		want := bruteMinOnes(f, nVars)
		costVars := make([]int, nVars)
		for i := range costVars {
			costVars[i] = i + 1
		}
		r := Solve(Problem{Formula: f, CostVars: costVars})
		if want < 0 {
			if r.Status != Infeasible {
				t.Fatalf("trial %d: want infeasible, got %v (cost %d)\nformula: %s", trial, r.Status, r.Cost, f)
			}
			continue
		}
		if r.Status != Optimal {
			t.Fatalf("trial %d: status %v, want optimal\nformula: %s", trial, r.Status, f)
		}
		if r.Cost != want {
			t.Fatalf("trial %d: cost %d, want %d\nformula: %s", trial, r.Cost, want, f)
		}
		// The returned assignment must actually satisfy the formula.
		if !EvalFormula(f, func(id int) bool { return r.Assign[id] }, nil) {
			t.Fatalf("trial %d: model does not satisfy formula %s", trial, f)
		}
	}
}

// TestSolveParamsMatchBruteForce checks parameter search against brute
// force over the (assignment × parameter) grid.
func TestSolveParamsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		nVars := 3 + rng.Intn(4)
		cnt := &AggValue{Func: ra.Count}
		for v := 1; v <= nVars; v++ {
			cnt.Terms = append(cnt.Terms, AggTerm{Guard: boolexpr.Var(v), Value: 1})
		}
		ops := []ra.CmpOp{ra.EQ, ra.GE, ra.GT, ra.LE}
		f := And(
			&FCmp{Op: ops[rng.Intn(len(ops))], L: AggOp(cnt), R: ParamOp("p")},
			&FProv{E: boolexpr.Var(1 + rng.Intn(nVars))},
		)
		cands := []float64{0, 1, 2, 3}
		want := math.MaxInt
		feasible := false
		for mask := 0; mask < 1<<nVars; mask++ {
			for _, pv := range cands {
				assign := func(id int) bool { return mask&(1<<(id-1)) != 0 }
				if EvalFormula(f, assign, map[string]float64{"p": pv}) {
					ones := 0
					for v := 0; v < nVars; v++ {
						if mask&(1<<v) != 0 {
							ones++
						}
					}
					if ones < want {
						want = ones
					}
					feasible = true
				}
			}
		}
		r := Solve(Problem{Formula: f, Params: []ParamSpec{{Name: "p", Candidates: cands}}})
		if !feasible {
			if r.Status != Infeasible {
				t.Fatalf("trial %d: want infeasible, got %v", trial, r.Status)
			}
			continue
		}
		if r.Status != Optimal || r.Cost != want {
			t.Fatalf("trial %d: got %v cost=%d, want optimal cost=%d (formula %s)", trial, r.Status, r.Cost, want, f)
		}
	}
}
