package study

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/mutation"
	"repro/internal/ra"
)

func TestDBGenerates(t *testing.T) {
	db := DB(20, 1)
	for _, name := range []string{"Drinker", "Bar", "Beer", "Frequents", "Serves", "Likes"} {
		if r := db.Relation(name); r == nil || r.Len() == 0 {
			t.Errorf("%s missing or empty", name)
		}
	}
}

func TestProblemsEvaluate(t *testing.T) {
	db := DB(30, 2)
	for _, p := range Problems() {
		r, err := eval.Eval(p.Correct, db, nil)
		if err != nil {
			t.Fatalf("(%s): %v", p.ID, err)
		}
		_ = r
	}
}

func TestProblemBSemantics(t *testing.T) {
	db := DB(0, 1) // just the named drinkers/bars/beers
	pb := Problems()[0]
	r, err := eval.Eval(pb.Correct, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every returned drinker must frequent a bar serving Corona.
	serves := map[string]bool{}
	sv := db.Relation("Serves")
	for _, tup := range sv.Tuples {
		if tup[1].AsString() == "Corona" {
			serves[tup[0].AsString()] = true
		}
	}
	freq := db.Relation("Frequents")
	valid := map[string]bool{}
	for _, tup := range freq.Tuples {
		if serves[tup[1].AsString()] {
			valid[tup[0].AsString()] = true
		}
	}
	for _, tup := range r.Tuples {
		if !valid[tup[0].AsString()] {
			t.Errorf("drinker %s should not be in the answer", tup[0])
		}
	}
	if r.Len() != len(valid) {
		t.Errorf("answer size %d, want %d", r.Len(), len(valid))
	}
}

func TestRATestOnStudyProblem(t *testing.T) {
	// End-to-end: a mutated wrong answer to problem (e) gets a small
	// counterexample, as students experienced.
	db := DB(25, 3)
	var pe Problem
	for _, p := range Problems() {
		if p.ID == "e" {
			pe = p
		}
	}
	tried := 0
	for _, m := range mutation.Mutants(pe.Correct) {
		if tried >= 3 {
			break
		}
		differs, _, _, err := core.Disagrees(pe.Correct, m.Query, db, nil)
		if err != nil || !differs {
			continue
		}
		tried++
		prob := core.Problem{Q1: pe.Correct, Q2: m.Query, DB: db}
		ce, _, err := core.OptSigma(prob)
		if err != nil {
			t.Errorf("mutant %q: %v", m.Desc, err)
			continue
		}
		if ce.Size() > 8 {
			t.Errorf("mutant %q: counterexample has %d tuples", m.Desc, ce.Size())
		}
	}
	if tried == 0 {
		t.Skip("no discoverable mutants on this instance")
	}
}

func TestSimulateShape(t *testing.T) {
	c := Simulate(170, 2018)
	if len(c.Students) != 170 {
		t.Fatal("cohort size")
	}
	usage := c.UsageStats()
	if len(usage) != 5 {
		t.Fatalf("usage rows = %d, want 5 (problems b,d,e,g,i)", len(usage))
	}
	// Problem (i) — the hardest — must take the most attempts.
	byID := map[string]UsageRow{}
	for _, r := range usage {
		byID[r.Problem] = r
	}
	if byID["i"].AvgAttempts <= byID["b"].AvgAttempts {
		t.Errorf("(i) attempts (%v) should exceed (b) attempts (%v)",
			byID["i"].AvgAttempts, byID["b"].AvgAttempts)
	}
	if byID["i"].Users == 0 || byID["b"].Users == 0 {
		t.Error("no users recorded")
	}
}

func TestSimulateTable5Shape(t *testing.T) {
	c := Simulate(170, 2018)
	rows := c.ScoreComparison()
	byID := map[string]ScoreRow{}
	for _, r := range rows {
		byID[r.Problem] = r
	}
	// Easy problems: both groups near 100. Hard problems: users better.
	if byID["b"].MeanUser < 90 || byID["b"].MeanNonUser < 85 {
		t.Errorf("(b) scores too low: %+v", byID["b"])
	}
	for _, hard := range []string{"g", "i"} {
		r := byID[hard]
		if r.MeanUser <= r.MeanNonUser {
			t.Errorf("(%s): users (%v) should outscore non-users (%v)", hard, r.MeanUser, r.MeanNonUser)
		}
	}
}

func TestSimulateTransferEffect(t *testing.T) {
	c := Simulate(170, 2018)
	rows := c.TransferAnalysis()
	var no, yes TransferRow
	for _, r := range rows {
		switch r.Group {
		case "no":
			no = r
		case "yes":
			yes = r
		}
	}
	// Users of RATest on (i) improve on (i) and on the similar (h) ...
	if yes.MeanI <= no.MeanI {
		t.Errorf("(i): yes %v <= no %v", yes.MeanI, no.MeanI)
	}
	if yes.MeanH <= no.MeanH {
		t.Errorf("(h): yes %v <= no %v", yes.MeanH, no.MeanH)
	}
	// ... but not on the dissimilar (j): difference within noise.
	if d := yes.MeanJ - no.MeanJ; d > 8 || d < -8 {
		t.Errorf("(j) should show no transfer, delta = %v", d)
	}
	// Procrastinators (1 day) do worse than early birds (5-7 days) on (i).
	var early, late TransferRow
	for _, r := range rows {
		switch r.Group {
		case Start5to7Days.String():
			early = r
		case Start1Day.String():
			late = r
		}
	}
	if early.MeanI <= late.MeanI {
		t.Errorf("procrastinator effect missing: early %v <= late %v", early.MeanI, late.MeanI)
	}
}

func TestSurveyShape(t *testing.T) {
	c := Simulate(170, 2018)
	rows := c.Survey(99)
	if len(rows) != 2 {
		t.Fatal("2 survey questions expected")
	}
	for _, r := range rows {
		total := 0
		for _, n := range r.Counts {
			total += n
		}
		if total == 0 {
			t.Error("empty survey")
		}
		pos := float64(r.Counts[0]+r.Counts[1]) / float64(total)
		if pos < 0.5 {
			t.Errorf("%q: positive fraction %v too low", r.Question, pos)
		}
	}
}

func TestFormatReport(t *testing.T) {
	c := Simulate(50, 1)
	rep := c.FormatReport(1)
	for _, want := range []string{"Figure 8", "Table 5", "Figure 9", "Figure 10"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestProblemClassifications(t *testing.T) {
	// The assignment forbids aggregates: every problem must be SPJUD.
	for _, p := range Problems() {
		if ra.Classify(p.Correct).Aggregate {
			t.Errorf("(%s) uses aggregation", p.ID)
		}
	}
}
