package study

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// StartBucket is when a student first used RATest relative to the due date
// (the last four columns of Figure 9).
type StartBucket int

// Buckets of Figure 9.
const (
	Start5to7Days StartBucket = iota
	Start3to4Days
	Start2Days
	Start1Day
	numBuckets
)

func (b StartBucket) String() string {
	switch b {
	case Start5to7Days:
		return "5-7 days"
	case Start3to4Days:
		return "3-4 days"
	case Start2Days:
		return "2 days"
	case Start1Day:
		return "1 day"
	}
	return "?"
}

// Student is one simulated participant.
type Student struct {
	Ability     float64 // [0.3, 1.0]
	Diligence   float64 // [0, 1]
	UsedRATest  map[string]bool
	Start       StartBucket
	Scores      map[string]float64
	Attempts    map[string]int
	AttemptsToC map[string]int // attempts before first correct (0 if never)
	GotCorrect  map[string]bool
}

// CohortResult aggregates a simulated cohort.
type CohortResult struct {
	Students []*Student
}

// Simulate runs the user-study simulation with n students (the paper had
// ~170, of whom 137 used RATest).
func Simulate(n int, seed int64) *CohortResult {
	rng := rand.New(rand.NewSource(seed))
	problems := Problems()
	var students []*Student
	for i := 0; i < n; i++ {
		s := &Student{
			Ability:     0.3 + 0.7*rng.Float64(),
			Diligence:   rng.Float64(),
			UsedRATest:  map[string]bool{},
			Scores:      map[string]float64{},
			Attempts:    map[string]int{},
			AttemptsToC: map[string]int{},
			GotCorrect:  map[string]bool{},
		}
		// Diligent students start earlier.
		switch {
		case s.Diligence > 0.75:
			s.Start = Start5to7Days
		case s.Diligence > 0.5:
			s.Start = Start3to4Days
		case s.Diligence > 0.3:
			s.Start = Start2Days
		default:
			s.Start = Start1Day
		}
		// Tool adoption correlates with diligence (~80% adoption).
		uses := rng.Float64() < 0.55+0.45*s.Diligence
		for _, p := range problems {
			if p.RATestAvailable && uses && rng.Float64() < 0.65+0.3*s.Diligence {
				s.UsedRATest[p.ID] = true
			}
		}
		// Late tool use is less effective (the procrastinator effect).
		lateness := map[StartBucket]float64{
			Start5to7Days: 1.0, Start3to4Days: 0.95, Start2Days: 0.6, Start1Day: 0.3,
		}[s.Start]

		for _, p := range problems {
			margin := s.Ability - p.Difficulty + 0.25*rng.NormFloat64()
			boost := 0.0
			if s.UsedRATest[p.ID] {
				boost = 0.45 * lateness
			}
			// Transfer effect: using RATest on (i) helps the similar (h),
			// but not the dissimilar (j).
			if p.ID == "h" && s.UsedRATest["i"] {
				boost += 0.35 * lateness
			}
			margin += boost
			score := 100.0
			if margin < 0 {
				score = 100 + 250*margin
				if score < 0 {
					score = 0
				}
			}
			s.Scores[p.ID] = score
			if p.RATestAvailable && s.UsedRATest[p.ID] {
				// Attempts grow with difficulty; a small tail of outliers
				// uses the tool to try queries out (the paper observed
				// >100 attempts from one student).
				base := 1 + p.Difficulty*8
				att := int(base*(0.5+rng.Float64()) + 0.5)
				if rng.Float64() < 0.02 {
					att += 20 + rng.Intn(100)
				}
				if att < 1 {
					att = 1
				}
				s.Attempts[p.ID] = att
				if score >= 95 || rng.Float64() < 0.8 {
					s.GotCorrect[p.ID] = true
					toC := int(float64(att) * (0.4 + 0.4*rng.Float64()))
					if toC < 1 {
						toC = 1
					}
					if toC > att {
						toC = att
					}
					s.AttemptsToC[p.ID] = toC
				}
			}
		}
		students = append(students, s)
	}
	return &CohortResult{Students: students}
}

// UsageRow is one row of Figure 8.
type UsageRow struct {
	Problem           string
	Users             int
	EventuallyCorrect int
	AvgAttempts       float64
	AvgBeforeCorrect  float64
	TotalAttempts     int
}

// UsageStats computes the Figure 8 statistics.
func (c *CohortResult) UsageStats() []UsageRow {
	var rows []UsageRow
	for _, p := range Problems() {
		if !p.RATestAvailable {
			continue
		}
		row := UsageRow{Problem: p.ID}
		sumAtt, sumBefore, nBefore := 0, 0, 0
		for _, s := range c.Students {
			if !s.UsedRATest[p.ID] {
				continue
			}
			row.Users++
			sumAtt += s.Attempts[p.ID]
			if s.GotCorrect[p.ID] {
				row.EventuallyCorrect++
				sumBefore += s.AttemptsToC[p.ID]
				nBefore++
			}
		}
		row.TotalAttempts = sumAtt
		if row.Users > 0 {
			row.AvgAttempts = float64(sumAtt) / float64(row.Users)
		}
		if nBefore > 0 {
			row.AvgBeforeCorrect = float64(sumBefore) / float64(nBefore)
		}
		rows = append(rows, row)
	}
	return rows
}

// ScoreRow is one row of Table 5: mean/stddev score for users vs non-users.
type ScoreRow struct {
	Problem               string
	NonUsers, Users       int
	MeanNonUser, MeanUser float64
	StdNonUser, StdUser   float64
}

// ScoreComparison computes Table 5.
func (c *CohortResult) ScoreComparison() []ScoreRow {
	var rows []ScoreRow
	for _, p := range Problems() {
		if !p.RATestAvailable {
			continue
		}
		var u, nu []float64
		for _, s := range c.Students {
			if s.UsedRATest[p.ID] {
				u = append(u, s.Scores[p.ID])
			} else {
				nu = append(nu, s.Scores[p.ID])
			}
		}
		mu, su := meanStd(u)
		mn, sn := meanStd(nu)
		rows = append(rows, ScoreRow{
			Problem: p.ID, Users: len(u), NonUsers: len(nu),
			MeanUser: mu, StdUser: su, MeanNonUser: mn, StdNonUser: sn,
		})
	}
	return rows
}

// TransferRow is one cell group of Figure 9: scores on (i), (h), (j) split
// by whether the student used RATest for (i), and by start bucket.
type TransferRow struct {
	Group       string
	N           int
	MeanI, StdI float64
	MeanH, StdH float64
	MeanJ, StdJ float64
}

// TransferAnalysis computes Figure 9.
func (c *CohortResult) TransferAnalysis() []TransferRow {
	collect := func(filter func(*Student) bool, name string) TransferRow {
		var i, h, j []float64
		for _, s := range c.Students {
			if !filter(s) {
				continue
			}
			i = append(i, s.Scores["i"])
			h = append(h, s.Scores["h"])
			j = append(j, s.Scores["j"])
		}
		mi, si := meanStd(i)
		mh, sh := meanStd(h)
		mj, sj := meanStd(j)
		return TransferRow{Group: name, N: len(i), MeanI: mi, StdI: si, MeanH: mh, StdH: sh, MeanJ: mj, StdJ: sj}
	}
	rows := []TransferRow{
		collect(func(s *Student) bool { return !s.UsedRATest["i"] }, "no"),
		collect(func(s *Student) bool { return s.UsedRATest["i"] }, "yes"),
	}
	for b := StartBucket(0); b < numBuckets; b++ {
		bb := b
		rows = append(rows, collect(func(s *Student) bool {
			return s.UsedRATest["i"] && s.Start == bb
		}, bb.String()))
	}
	return rows
}

// SurveyRow is one questionnaire item of Figure 10 with a response
// distribution over strongly-agree..strongly-disagree.
type SurveyRow struct {
	Question string
	Counts   [5]int // SA, A, N, D, SD
}

// Survey simulates the anonymous questionnaire: satisfaction correlates
// with the score improvement the student experienced.
func (c *CohortResult) Survey(seed int64) []SurveyRow {
	rng := rand.New(rand.NewSource(seed))
	qs := []string{
		"The counterexamples helped me understand or fix bugs in my queries",
		"I would like to use similar tools for future database assignments",
	}
	var rows []SurveyRow
	for qi, q := range qs {
		row := SurveyRow{Question: q}
		for _, s := range c.Students {
			if len(s.UsedRATest) == 0 {
				continue
			}
			// Base positivity ~70% / ~93% as the paper reports.
			pos := 0.694
			if qi == 1 {
				pos = 0.932
			}
			r := rng.Float64()
			switch {
			case r < pos*0.45:
				row.Counts[0]++
			case r < pos:
				row.Counts[1]++
			case r < pos+(1-pos)*0.7:
				row.Counts[2]++
			case r < pos+(1-pos)*0.92:
				row.Counts[3]++
			default:
				row.Counts[4]++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

func meanStd(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	m := sum / float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	v /= float64(len(xs))
	return m, sqrt(v)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// FormatReport renders all user-study tables as text.
func (c *CohortResult) FormatReport(seed int64) string {
	var b strings.Builder
	b.WriteString("Figure 8: RATest usage statistics\n")
	b.WriteString("problem  users  eventually-correct  avg-attempts  avg-before-correct\n")
	for _, r := range c.UsageStats() {
		fmt.Fprintf(&b, "(%s)      %5d  %18d  %12.2f  %18.2f\n",
			r.Problem, r.Users, r.EventuallyCorrect, r.AvgAttempts, r.AvgBeforeCorrect)
	}
	b.WriteString("\nTable 5: scores, non-users vs users\n")
	b.WriteString("problem  n-nonuser  mean  std   |  n-user  mean  std\n")
	for _, r := range c.ScoreComparison() {
		fmt.Fprintf(&b, "(%s)      %9d  %5.2f %5.2f |  %6d  %5.2f %5.2f\n",
			r.Problem, r.NonUsers, r.MeanNonUser, r.StdNonUser, r.Users, r.MeanUser, r.StdUser)
	}
	b.WriteString("\nFigure 9: transfer analysis (used RATest for (i)?)\n")
	b.WriteString("group      n   score(i)      score(h)      score(j)\n")
	for _, r := range c.TransferAnalysis() {
		fmt.Fprintf(&b, "%-9s %4d  %6.2f±%5.2f  %6.2f±%5.2f  %6.2f±%5.2f\n",
			r.Group, r.N, r.MeanI, r.StdI, r.MeanH, r.StdH, r.MeanJ, r.StdJ)
	}
	b.WriteString("\nFigure 10: questionnaire (SA/A/N/D/SD)\n")
	for _, r := range c.Survey(seed) {
		fmt.Fprintf(&b, "%-70s %v\n", r.Question, r.Counts)
	}
	return b.String()
}

// SortedProblems returns problem ids in study order.
func SortedProblems() []string {
	var ids []string
	for _, p := range Problems() {
		ids = append(ids, p.ID)
	}
	sort.Strings(ids)
	return ids
}
