// Package study reproduces the user-study infrastructure of Section 8: the
// beers/bars/drinkers homework database (six tables), the studied problems
// (b), (d), (e), (g), (h), (i), (j) as relational algebra queries (basic RA
// only — no aggregates, per the assignment rules), and a stochastic student
// simulator that regenerates the shape of Figures 8–10 and Table 5.
//
// The original study observed 170 real students; a simulation cannot
// replicate human subjects, so the simulator encodes the paper's reported
// effect structure — tool users improve on hard problems, the improvement
// transfers to the similar problem (h) but not the dissimilar (j), and
// procrastinators do worse — with calibrated noise. EXPERIMENTS.md
// documents this substitution.
package study

import (
	"fmt"
	"math/rand"

	"repro/internal/ra"
	"repro/internal/raparser"
	"repro/internal/relation"
)

// DB generates a beers/bars/drinkers instance. size scales the number of
// drinkers/bars/beers (the hidden auto-grader instance used size ≈ 50;
// the student sample was tiny).
func DB(size int, seed int64) *relation.Database {
	rng := rand.New(rand.NewSource(seed))
	db := relation.NewDatabase()
	db.CreateRelation("Drinker", relation.NewSchema(
		relation.Attr("name", relation.KindString),
		relation.Attr("addr", relation.KindString)))
	db.CreateRelation("Bar", relation.NewSchema(
		relation.Attr("name", relation.KindString),
		relation.Attr("addr", relation.KindString)))
	db.CreateRelation("Beer", relation.NewSchema(
		relation.Attr("name", relation.KindString),
		relation.Attr("brewer", relation.KindString)))
	db.CreateRelation("Frequents", relation.NewSchema(
		relation.Attr("drinker", relation.KindString),
		relation.Attr("bar", relation.KindString),
		relation.Attr("times_a_week", relation.KindInt)))
	db.CreateRelation("Serves", relation.NewSchema(
		relation.Attr("bar", relation.KindString),
		relation.Attr("beer", relation.KindString),
		relation.Attr("price", relation.KindFloat)))
	db.CreateRelation("Likes", relation.NewSchema(
		relation.Attr("drinker", relation.KindString),
		relation.Attr("beer", relation.KindString)))

	drinkers := []string{"Ben", "Dan", "Amy", "Coy", "Eve"}
	bars := []string{"JJ Pub", "Satisfaction", "Talk of the Town", "The Edge"}
	beers := []string{"Corona", "Budweiser", "Dixie", "Erdinger", "Amstel"}
	for i := 0; i < size; i++ {
		drinkers = append(drinkers, fmt.Sprintf("d%03d", i))
		if i%2 == 0 {
			bars = append(bars, fmt.Sprintf("bar%03d", i))
		}
		if i%3 == 0 {
			beers = append(beers, fmt.Sprintf("beer%03d", i))
		}
	}
	for _, d := range drinkers {
		db.Insert("Drinker", relation.NewTuple(relation.String(d), relation.String("addr "+d)))
	}
	for _, b := range bars {
		db.Insert("Bar", relation.NewTuple(relation.String(b), relation.String("addr "+b)))
	}
	for _, b := range beers {
		db.Insert("Beer", relation.NewTuple(relation.String(b), relation.String("brewer "+b)))
	}
	type pair struct{ a, b string }
	freq := map[pair]bool{}
	for _, d := range drinkers {
		n := 1 + rng.Intn(3)
		for j := 0; j < n; j++ {
			b := bars[rng.Intn(len(bars))]
			if freq[pair{d, b}] {
				continue
			}
			freq[pair{d, b}] = true
			db.Insert("Frequents", relation.NewTuple(
				relation.String(d), relation.String(b), relation.Int(int64(1+rng.Intn(7)))))
		}
	}
	serves := map[pair]bool{}
	for _, b := range bars {
		n := 1 + rng.Intn(4)
		for j := 0; j < n; j++ {
			be := beers[rng.Intn(len(beers))]
			if serves[pair{b, be}] {
				continue
			}
			serves[pair{b, be}] = true
			db.Insert("Serves", relation.NewTuple(
				relation.String(b), relation.String(be), relation.Float(float64(2+rng.Intn(8))+0.5)))
		}
	}
	likes := map[pair]bool{}
	for _, d := range drinkers {
		n := 1 + rng.Intn(3)
		for j := 0; j < n; j++ {
			be := beers[rng.Intn(len(beers))]
			if likes[pair{d, be}] {
				continue
			}
			likes[pair{d, be}] = true
			db.Insert("Likes", relation.NewTuple(relation.String(d), relation.String(be)))
		}
	}
	return db
}

// Problem is one of the studied homework problems.
type Problem struct {
	ID      string
	Text    string
	Correct ra.Node
	// RATestAvailable marks the 5 problems for which the tool was offered.
	RATestAvailable bool
	// Difficulty in [0,1] calibrates the simulator.
	Difficulty float64
}

// Problems returns the studied problems. (g) and (i) are the challenging
// ones (self-join + difference; double difference).
func Problems() []Problem {
	return []Problem{
		{ID: "b", RATestAvailable: true, Difficulty: 0.10,
			Text: "drinkers who frequent any bar serving Corona",
			Correct: raparser.MustParse(`project[drinker](
				Frequents join[bar = s.bar] rename[s](select[beer = 'Corona'](Serves)))`)},
		{ID: "d", RATestAvailable: true, Difficulty: 0.15,
			Text: "drinkers who frequent both JJ Pub and Satisfaction",
			Correct: raparser.MustParse(`project[a.drinker](
				rename[a](select[bar = 'JJ Pub'](Frequents))
				join[a.drinker = b.drinker]
				rename[b](select[bar = 'Satisfaction'](Frequents)))`)},
		{ID: "e", RATestAvailable: true, Difficulty: 0.30,
			Text: "bars frequented by either Ben or Dan, but not both",
			Correct: raparser.MustParse(`
				(project[bar](select[drinker = 'Ben'](Frequents)) union project[bar](select[drinker = 'Dan'](Frequents)))
				diff
				project[a.bar](rename[a](select[drinker = 'Ben'](Frequents))
					join[a.bar = b.bar] rename[b](select[drinker = 'Dan'](Frequents)))`)},
		{ID: "g", RATestAvailable: true, Difficulty: 0.60,
			Text: "for each bar, the drinker who frequents it the greatest number of times",
			Correct: raparser.MustParse(`project[bar, drinker](Frequents)
				diff
				project[a.bar, a.drinker](
					rename[a](Frequents) join[a.bar = b.bar and a.times_a_week < b.times_a_week] rename[b](Frequents))`)},
		{ID: "h", RATestAvailable: false, Difficulty: 0.70,
			Text: "drinkers who frequent only bars that serve some beer they like",
			Correct: raparser.MustParse(`project[drinker](Frequents)
				diff
				project[drinker](Frequents diff
					project[f.drinker, f.bar, f.times_a_week](
						rename[f](Frequents)
						join[f.bar = s.bar] rename[s](Serves)
						join[s.beer = l.beer and f.drinker = l.drinker] rename[l](Likes)))`)},
		{ID: "i", RATestAvailable: true, Difficulty: 0.85,
			Text: "drinkers who frequent only bars that serve only beers they like (two differences)",
			// bad(d, bar): the bar serves some beer d does not like.
			// answer = frequenting drinkers − drinkers with a bad bar.
			Correct: raparser.MustParse(`project[drinker](Frequents)
				diff
				project[f.drinker](
					project[f.drinker, f.bar, s.beer](
						rename[f](Frequents) join[f.bar = s.bar] rename[s](Serves))
					diff
					project[f.drinker, f.bar, s.beer](
						rename[f](Frequents) join[f.bar = s.bar] rename[s](Serves)
						join[f.drinker = l.drinker and s.beer = l.beer] rename[l](Likes)))`)},
		{ID: "j", RATestAvailable: false, Difficulty: 0.80,
			Text: "pairs (bar1, bar2) where bar1's beers are a proper subset of bar2's",
			// subAB = pairs with beers(a) ⊆ beers(b); proper = subAB minus
			// its own transpose (which removes equal-set pairs).
			Correct: raparser.MustParse(`
				((project[a.bar, b.bar](rename[a](project[bar](Serves)) cross rename[b](project[bar](Serves)))
				  diff
				  project[a.bar, b.bar](
					(rename[a](project[bar, beer](Serves)) cross rename[b](project[bar](Serves)))
					diff
					project[a.bar, a.beer, b.bar](
						rename[a](project[bar, beer](Serves)) join[a.beer = b.beer] rename[b](project[bar, beer](Serves))))))
				diff
				project[b.bar, a.bar](
				 (project[a.bar, b.bar](rename[a](project[bar](Serves)) cross rename[b](project[bar](Serves)))
				  diff
				  project[a.bar, b.bar](
					(rename[a](project[bar, beer](Serves)) cross rename[b](project[bar](Serves)))
					diff
					project[a.bar, a.beer, b.bar](
						rename[a](project[bar, beer](Serves)) join[a.beer = b.beer] rename[b](project[bar, beer](Serves))))))`)},
	}
}
