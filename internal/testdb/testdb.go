// Package testdb provides the paper's running example (Example 1, Figure 1)
// as a reusable fixture: the Student/Registration instance, the correct
// query Q1 ("students registered for exactly one CS course"), the wrong
// query Q2 ("one or more CS courses"), and the aggregate variants of
// Examples 4–6. It is shared by tests, examples, and benchmarks.
package testdb

import (
	"repro/internal/ra"
	"repro/internal/raparser"
	"repro/internal/relation"
)

// Example1DB builds the Figure 1 instance. Tuple identifiers follow the
// paper: t1..t3 are Student tuples, t4..t11 Registration tuples.
func Example1DB() *relation.Database {
	db := relation.NewDatabase()
	db.CreateRelation("Student", relation.NewSchema(
		relation.Attr("name", relation.KindString),
		relation.Attr("major", relation.KindString),
	))
	db.CreateRelation("Registration", relation.NewSchema(
		relation.Attr("name", relation.KindString),
		relation.Attr("course", relation.KindString),
		relation.Attr("dept", relation.KindString),
		relation.Attr("grade", relation.KindInt),
	))
	students := [][2]string{{"Mary", "CS"}, {"John", "ECON"}, {"Jesse", "CS"}}
	for _, s := range students {
		db.Insert("Student", relation.NewTuple(relation.String(s[0]), relation.String(s[1])))
	}
	regs := []struct {
		name, course, dept string
		grade              int64
	}{
		{"Mary", "216", "CS", 100},
		{"Mary", "230", "CS", 75},
		{"Mary", "208D", "ECON", 95},
		{"John", "316", "CS", 90},
		{"John", "208D", "ECON", 88},
		{"Jesse", "216", "CS", 95},
		{"Jesse", "316", "CS", 90},
		{"Jesse", "330", "CS", 85},
	}
	for _, r := range regs {
		db.Insert("Registration", relation.NewTuple(
			relation.String(r.name), relation.String(r.course), relation.String(r.dept), relation.Int(r.grade)))
	}
	return db
}

// Constraints returns the natural constraints of the example schema.
func Constraints() []relation.Constraint {
	return []relation.Constraint{
		relation.Key{Relation: "Student", Attrs: []string{"name"}},
		relation.Key{Relation: "Registration", Attrs: []string{"name", "course"}},
		relation.ForeignKey{ChildRel: "Registration", ChildAttrs: []string{"name"},
			ParentRel: "Student", ParentAttrs: []string{"name"}},
	}
}

// Q1 is the correct query of Example 1: students registered for exactly one
// CS course.
func Q1() ra.Node {
	return raparser.MustParse(`
		project[name, major](select[dept = 'CS'](Student join Registration))
		diff
		project[s.name, s.major](
			select[s.name = r1.name and s.name = r2.name and r1.course <> r2.course
			       and r1.dept = 'CS' and r2.dept = 'CS']
			(rename[s](Student) cross rename[r1](Registration) cross rename[r2](Registration)))
	`)
}

// Q2 is the wrong query of Example 1: students registered for one or more
// CS courses.
func Q2() ra.Node {
	return raparser.MustParse(`project[name, major](select[dept = 'CS'](Student join Registration))`)
}

// AggQ1 is the correct aggregate query of Example 4: per-student average
// grade over CS courses only.
func AggQ1() ra.Node {
	return raparser.MustParse(`groupby[name; avg(grade) -> avg_grade](
		project[name, course, grade](select[dept = 'CS'](Student join Registration)))`)
}

// AggQ2 is the wrong aggregate query of Example 4: forgets the department
// filter.
func AggQ2() ra.Node {
	return raparser.MustParse(`groupby[name; avg(grade) -> avg_grade](
		project[name, course, grade](Student join Registration))`)
}

// HavingQ1 is the Example 5 correct query: average CS grade of students with
// at least 3 CS courses.
func HavingQ1() ra.Node {
	return raparser.MustParse(`select[cnt >= 3](groupby[name; avg(grade) -> avg_grade, count(course) -> cnt](
		project[name, course, grade](select[dept = 'CS'](Student join Registration))))`)
}

// HavingQ2 is the Example 5 wrong query (no department filter).
func HavingQ2() ra.Node {
	return raparser.MustParse(`select[cnt >= 3](groupby[name; avg(grade) -> avg_grade, count(course) -> cnt](
		project[name, course, grade](Student join Registration)))`)
}

// ParamQ1 and ParamQ2 are the Example 6 parameterized queries (@numCS).
func ParamQ1() ra.Node {
	return raparser.MustParse(`select[cnt >= @numCS](groupby[name; avg(grade) -> avg_grade, count(course) -> cnt](
		project[name, course, grade](select[dept = 'CS'](Student join Registration))))`)
}

// ParamQ2 is the wrong Example 6 query.
func ParamQ2() ra.Node {
	return raparser.MustParse(`select[cnt >= @numCS](groupby[name; avg(grade) -> avg_grade, count(course) -> cnt](
		project[name, course, grade](Student join Registration)))`)
}
