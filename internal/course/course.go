// Package course reproduces the workload of the paper's first experiment
// (Section 7.1): a relational algebra assignment over a university
// registration schema. It provides a deterministic data generator at the
// paper's sizes (1k–100k tuples), the 8 assignment questions as correct RA
// queries, and a bank of wrong queries produced by query mutation.
//
// The original experiment used 141 real student submissions; those are not
// available, so the bank substitutes mutation-generated queries exhibiting
// the same error classes the paper reports (different selection conditions,
// incorrect use of difference, incorrect projection placement).
package course

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mutation"
	"repro/internal/pool"
	"repro/internal/ra"
	"repro/internal/raparser"
	"repro/internal/relation"
)

var (
	majors = []string{"CS", "ECON", "MATH", "PHYS", "HIST"}
	depts  = []string{"CS", "ECON", "MATH", "PHYS", "HIST"}
)

// GenerateDB builds a Student/Registration instance with approximately
// numTuples total tuples (the |D| of Table 3), deterministically from the
// seed. Roughly 1/5 of the tuples are students; each student registers for
// 1–8 courses with CS over-represented (as in a database course's test
// instance).
func GenerateDB(numTuples int, seed int64) *relation.Database {
	rng := rand.New(rand.NewSource(seed))
	db := relation.NewDatabase()
	db.CreateRelation("Student", relation.NewSchema(
		relation.Attr("name", relation.KindString),
		relation.Attr("major", relation.KindString)))
	db.CreateRelation("Registration", relation.NewSchema(
		relation.Attr("name", relation.KindString),
		relation.Attr("course", relation.KindString),
		relation.Attr("dept", relation.KindString),
		relation.Attr("grade", relation.KindInt)))

	nStudents := numTuples / 5
	if nStudents < 3 {
		nStudents = 3
	}
	type regKey struct{ s, c string }
	seen := map[regKey]bool{}
	total := nStudents
	for i := 0; i < nStudents; i++ {
		name := fmt.Sprintf("s%05d", i)
		db.Insert("Student", relation.NewTuple(
			relation.String(name), relation.String(majors[rng.Intn(len(majors))])))
	}
	for i := 0; total < numTuples; i = (i + 1) % nStudents {
		name := fmt.Sprintf("s%05d", i)
		dept := depts[rng.Intn(len(depts))]
		if rng.Intn(3) == 0 {
			dept = "CS" // CS courses over-represented
		}
		course := fmt.Sprintf("%s%03d", dept, 100+rng.Intn(400)*2)
		if seen[regKey{name, course}] {
			continue
		}
		seen[regKey{name, course}] = true
		// Grades cluster in 60–100; failing grades (< 60) are rare corner
		// cases that only large instances are likely to cover — this is
		// what makes more wrong queries discoverable as |D| grows
		// (Table 3).
		grade := 60 + rng.Intn(41)
		if rng.Intn(400) == 0 {
			grade = 40 + rng.Intn(20)
		}
		db.Insert("Registration", relation.NewTuple(
			relation.String(name), relation.String(course), relation.String(dept), relation.Int(int64(grade))))
		total++
	}
	return db
}

// Constraints returns the schema's integrity constraints.
func Constraints() []relation.Constraint {
	return []relation.Constraint{
		relation.Key{Relation: "Student", Attrs: []string{"name"}},
		relation.Key{Relation: "Registration", Attrs: []string{"name", "course"}},
		relation.ForeignKey{ChildRel: "Registration", ChildAttrs: []string{"name"},
			ParentRel: "Student", ParentAttrs: []string{"name"}},
	}
}

// Question is one assignment problem with its reference solution.
type Question struct {
	ID      string
	Text    string
	Correct ra.Node
}

// Questions returns the 8 assignment questions, spanning the difficulty
// range of the paper's assignment (simple SPJ through multi-difference
// universal quantification).
func Questions() []Question {
	return []Question{
		{ID: "q1", Text: "students registered for some CS course",
			Correct: raparser.MustParse(`project[name, major](select[dept = 'CS'](Student join Registration))`)},
		{ID: "q2", Text: "students with some grade of at least 90",
			Correct: raparser.MustParse(`project[name, major](select[grade >= 90](Student join Registration))`)},
		{ID: "q3", Text: "students registered in both CS and ECON courses",
			Correct: raparser.MustParse(`project[name, major](select[dept = 'CS'](Student join Registration))
				diff (project[name, major](select[dept = 'CS'](Student join Registration))
				      diff project[name, major](select[dept = 'ECON'](Student join Registration)))`)},
		{ID: "q4", Text: "students registered in CS but not ECON",
			Correct: raparser.MustParse(`project[name, major](select[dept = 'CS'](Student join Registration))
				diff project[name, major](select[dept = 'ECON'](Student join Registration))`)},
		{ID: "q5", Text: "students registered for exactly one CS course",
			Correct: raparser.MustParse(`project[name, major](select[dept = 'CS'](Student join Registration))
				diff
				project[s.name, s.major](
					select[s.name = r1.name and s.name = r2.name and r1.course <> r2.course
					       and r1.dept = 'CS' and r2.dept = 'CS']
					(rename[s](Student) cross rename[r1](Registration) cross rename[r2](Registration)))`)},
		{ID: "q6", Text: "students who registered only for CS courses (and at least one)",
			Correct: raparser.MustParse(`project[name, major](select[dept = 'CS'](Student join Registration))
				diff project[name, major](select[dept <> 'CS'](Student join Registration))`)},
		{ID: "q7", Text: "pairs of distinct students who both scored at least 90 in a shared course",
			Correct: raparser.MustParse(`project[a.name, b.name](
				select[a.course = b.course and a.name < b.name and a.grade >= 90 and b.grade >= 90]
				(rename[a](Registration) cross rename[b](Registration)))`)},
		{ID: "q8", Text: "students whose every grade is at least 60 (with some registration)",
			Correct: raparser.MustParse(`project[name, major](Student join Registration)
				diff project[name, major](select[grade < 60](Student join Registration))`)},
	}
}

// WrongQuery is one entry of the wrong-query bank.
type WrongQuery struct {
	Question string
	Desc     string
	Query    ra.Node
}

// WrongQueryBank generates mutation-based wrong queries for every question,
// keeping only mutants that (a) still type-check against the schema and (b)
// are not obviously identical to the correct query. perQuestion bounds the
// number kept per question.
func WrongQueryBank(db *relation.Database, perQuestion int) []WrongQuery {
	cat := engine.Catalog{DB: db}
	var bank []WrongQuery
	for _, q := range Questions() {
		correctSchema, err := ra.OutSchema(q.Correct, cat)
		if err != nil {
			continue
		}
		n := 0
		seen := map[string]bool{q.Correct.String(): true}
		for _, m := range mutation.Mutants(q.Correct) {
			if n >= perQuestion {
				break
			}
			key := m.Query.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			s, err := ra.OutSchema(m.Query, cat)
			if err != nil || !s.UnionCompatible(correctSchema) {
				continue
			}
			// Drop mutants that cannot be evaluated within the row budget
			// (massive cross products — the paper dropped such student
			// queries too).
			if _, err := engine.Eval(m.Query, db, nil); err != nil {
				continue
			}
			bank = append(bank, WrongQuery{Question: q.ID, Desc: m.Desc, Query: m.Query})
			n++
		}
	}
	return bank
}

// DiscoveredWrong counts how many bank queries are discovered (produce a
// different result from the correct query) on the given instance — the
// Table 3 measurement — and returns the set of discovered queries.
//
// Every per-query evaluation is independent (the engine shares no mutable
// state across evaluations and the database is read-only), so both the
// reference evaluations and the bank sweep fan out over the worker pool.
// Discovery flags land in per-index slots and the result is assembled in
// bank order, so the output order is deterministic and identical to the
// serial sweep's.
func DiscoveredWrong(db *relation.Database, bank []WrongQuery) ([]WrongQuery, error) {
	qs := Questions()
	refs := make([]*relation.Relation, len(qs))
	if err := pool.ForEach(pool.DefaultWorkers, len(qs), func(i int) error {
		r, err := engine.Eval(qs[i].Correct, db, nil)
		refs[i] = r
		return err
	}); err != nil {
		return nil, err
	}
	results := map[string]*relation.Relation{}
	for i, q := range qs {
		results[q.ID] = refs[i]
	}
	discovered := make([]bool, len(bank))
	_ = pool.ForEach(pool.DefaultWorkers, len(bank), func(i int) error {
		r, err := engine.Eval(bank[i].Query, db, nil)
		if err != nil {
			return nil // mutant invalid on this instance: not discovered
		}
		discovered[i] = !r.SetEqual(results[bank[i].Question])
		return nil
	})
	var found []WrongQuery
	for i, w := range bank {
		if discovered[i] {
			found = append(found, w)
		}
	}
	return found, nil
}

// Explained pairs a discovered wrong query with the smallest
// counterexamples that demonstrate the mistake — the feedback a grader
// would attach to the submission.
type Explained struct {
	Wrong WrongQuery
	// CEs are up to maxEach smallest counterexamples; empty when the
	// enumeration could not produce one within its solver budget.
	CEs []*core.Counterexample
}

// ExplainDiscovered runs the grading sweep end to end: discover the bank
// queries that differ from their reference solution on db, then enumerate
// up to maxEach smallest counterexamples for each discovered query.
// Candidate verification inside the enumeration goes through one prepared
// delta-incremental evaluation per (correct, wrong) pair, which also backs
// the batched bitvector-semiring accept/reject checks; queries whose
// enumeration exhausts its solver budget fall back to the solver-free
// greedy shrink (core.ShrinkGreedy), so a discovered mistake still ships
// with a 1-minimal counterexample. The per-query enumerations fan out over
// the worker pool with deterministic output order.
func ExplainDiscovered(db *relation.Database, bank []WrongQuery, maxEach int) ([]Explained, error) {
	found, err := DiscoveredWrong(db, bank)
	if err != nil {
		return nil, err
	}
	correct := map[string]ra.Node{}
	for _, q := range Questions() {
		correct[q.ID] = q.Correct
	}
	out := make([]Explained, len(found))
	ferr := pool.ForEach(pool.DefaultWorkers, len(found), func(i int) error {
		w := found[i]
		out[i] = Explained{Wrong: w}
		p := core.Problem{Q1: correct[w.Question], Q2: w.Query, DB: db, Constraints: Constraints()}
		ces, err := core.EnumerateSmallest(p, maxEach)
		if err != nil {
			// No enumerable witness (solver budget exhausted, ...): fall back
			// to the greedy delta-incremental shrink, which needs no solver.
			// If even that fails, grade without a counterexample.
			if ce, _, serr := core.ShrinkGreedy(p); serr == nil {
				out[i].CEs = []*core.Counterexample{ce}
			}
			return nil
		}
		out[i].CEs = ces
		return nil
	})
	if ferr != nil {
		return nil, ferr
	}
	return out, nil
}
