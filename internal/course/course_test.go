package course

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/pool"
	"repro/internal/relation"
)

func TestGenerateDBSizes(t *testing.T) {
	for _, n := range []int{100, 1000, 4000} {
		db := GenerateDB(n, 1)
		if db.Size() < n || db.Size() > n+1 {
			t.Errorf("GenerateDB(%d) size = %d", n, db.Size())
		}
	}
}

func TestGenerateDBDeterministic(t *testing.T) {
	a := GenerateDB(500, 3)
	b := GenerateDB(500, 3)
	if a.Size() != b.Size() {
		t.Fatal("nondeterministic size")
	}
	for i, tup := range a.Relation("Registration").Tuples {
		if !tup.Identical(b.Relation("Registration").Tuples[i]) {
			t.Fatal("nondeterministic tuples")
		}
	}
}

func TestGeneratedConstraintsHold(t *testing.T) {
	db := GenerateDB(2000, 11)
	if err := relation.ValidateAll(db, Constraints()); err != nil {
		t.Fatalf("constraints violated: %v", err)
	}
}

func TestQuestionsEvaluate(t *testing.T) {
	db := GenerateDB(1000, 1)
	for _, q := range Questions() {
		r, err := eval.Eval(q.Correct, db, nil)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if r.Len() == 0 {
			t.Errorf("%s returned no rows on 1k instance", q.ID)
		}
	}
}

func TestWrongQueryBank(t *testing.T) {
	db := GenerateDB(1000, 1)
	bank := WrongQueryBank(db, 25)
	if len(bank) < 8*5 {
		t.Fatalf("bank too small: %d", len(bank))
	}
	perQ := map[string]int{}
	for _, w := range bank {
		perQ[w.Question]++
		if w.Query == nil || w.Desc == "" {
			t.Error("incomplete bank entry")
		}
	}
	for _, q := range Questions() {
		if perQ[q.ID] == 0 {
			t.Errorf("no mutants for %s", q.ID)
		}
	}
}

func TestDiscoveredWrongGrowsWithSize(t *testing.T) {
	// The Table 3 effect: larger instances discover at least as many wrong
	// queries.
	ref := GenerateDB(4000, 1)
	bank := WrongQueryBank(ref, 25)
	small := GenerateDB(200, 1)
	big := GenerateDB(4000, 1)
	dSmall, err := DiscoveredWrong(small, bank)
	if err != nil {
		t.Fatal(err)
	}
	dBig, err := DiscoveredWrong(big, bank)
	if err != nil {
		t.Fatal(err)
	}
	// Discovery is statistically (not strictly) monotone in |D| — the
	// instances are independently generated, not nested. Allow slack.
	if len(dBig) < len(dSmall)-3 {
		t.Errorf("big instance discovered notably fewer: %d < %d", len(dBig), len(dSmall))
	}
	if len(dBig) == 0 {
		t.Fatal("no wrong queries discovered at 4k")
	}
}

func TestExplainWorksOnBankSamples(t *testing.T) {
	db := GenerateDB(800, 2)
	bank := WrongQueryBank(db, 4)
	discovered, err := DiscoveredWrong(db, bank)
	if err != nil {
		t.Fatal(err)
	}
	if len(discovered) == 0 {
		t.Fatal("nothing discovered")
	}
	questions := map[string]Question{}
	for _, q := range Questions() {
		questions[q.ID] = q
	}
	checked := 0
	for _, w := range discovered {
		if checked >= 6 {
			break
		}
		p := core.Problem{Q1: questions[w.Question].Correct, Q2: w.Query, DB: db,
			Constraints: Constraints()}
		ce, _, err := core.OptSigma(p)
		if err != nil {
			t.Errorf("%s (%s): %v", w.Question, w.Desc, err)
			continue
		}
		if err := core.Verify(p, ce); err != nil {
			t.Errorf("%s (%s): invalid counterexample: %v", w.Question, w.Desc, err)
		}
		if ce.Size() > 10 {
			t.Errorf("%s (%s): counterexample has %d tuples", w.Question, w.Desc, ce.Size())
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no counterexamples checked")
	}
}

func TestExplainDiscoveredSweep(t *testing.T) {
	db := GenerateDB(400, 2)
	bank := WrongQueryBank(db, 2)
	explained, err := ExplainDiscovered(db, bank, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(explained) == 0 {
		t.Fatal("nothing discovered")
	}
	questions := map[string]Question{}
	for _, q := range Questions() {
		questions[q.ID] = q
	}
	withCE := 0
	for _, e := range explained {
		p := core.Problem{Q1: questions[e.Wrong.Question].Correct, Q2: e.Wrong.Query,
			DB: db, Constraints: Constraints()}
		for _, ce := range e.CEs {
			if err := core.Verify(p, ce); err != nil {
				t.Errorf("%s (%s): invalid counterexample: %v", e.Wrong.Question, e.Wrong.Desc, err)
			}
		}
		if len(e.CEs) > 4 {
			t.Errorf("%s: %d counterexamples, want <= 4", e.Wrong.Question, len(e.CEs))
		}
		if len(e.CEs) > 0 {
			withCE++
		}
	}
	if withCE == 0 {
		t.Fatal("no discovered query got a counterexample")
	}
}

func TestDiscoveredWrongParallelDeterministic(t *testing.T) {
	saved := pool.DefaultWorkers
	t.Cleanup(func() { pool.DefaultWorkers = saved })

	db := GenerateDB(1500, 1)
	bank := WrongQueryBank(db, 4)
	if len(bank) == 0 {
		t.Fatal("empty bank")
	}
	pool.DefaultWorkers = 1
	serial, err := DiscoveredWrong(db, bank)
	if err != nil {
		t.Fatal(err)
	}
	pool.DefaultWorkers = 8
	for run := 0; run < 3; run++ {
		par, err := DiscoveredWrong(db, bank)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("run %d: parallel found %d, serial %d", run, len(par), len(serial))
		}
		for i := range par {
			if par[i].Question != serial[i].Question || par[i].Desc != serial[i].Desc ||
				par[i].Query.String() != serial[i].Query.String() {
				t.Fatalf("run %d: output order diverged at %d: %s/%s vs %s/%s",
					run, i, par[i].Question, par[i].Desc, serial[i].Question, serial[i].Desc)
			}
		}
	}
}
