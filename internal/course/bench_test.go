package course

import (
	"testing"

	"repro/internal/pool"
)

// BenchmarkDiscoveredWrong measures the grading sweep — the Table 3 inner
// loop — serial vs fanned out over the worker pool (the parallel series
// only wins wall-clock on a multi-core runner).
func BenchmarkDiscoveredWrong(b *testing.B) {
	db := GenerateDB(10_000, 1)
	bank := WrongQueryBank(db, 8)
	saved := pool.DefaultWorkers
	b.Cleanup(func() { pool.DefaultWorkers = saved })
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", saved},
	} {
		b.Run(bc.name, func(b *testing.B) {
			pool.DefaultWorkers = bc.workers
			for i := 0; i < b.N; i++ {
				if _, err := DiscoveredWrong(db, bank); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
