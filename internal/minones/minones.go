// Package minones solves the min-ones satisfiability problem of Section 4
// of the paper: given a Boolean formula in CNF and a set of counted
// variables, find a satisfying assignment with the fewest counted variables
// set to true.
//
// Two strategies mirror the paper's experiments (Figure 5):
//
//   - Minimize is the "Opt" strategy: it plays the role of the Z3/νZ
//     optimizing solver, layering an incremental totalizer cardinality
//     bound over the CDCL solver and descending until unsatisfiability.
//   - Enumerate is the "Naive-M" strategy of Algorithm 1 (Basic): it asks
//     the SAT solver for up to M models, blocking each counted projection,
//     and keeps the smallest.
package minones

import (
	"sort"

	"repro/internal/sat"
)

// Status reports the outcome of a minimization or enumeration.
type Status int

// Outcomes.
const (
	// Infeasible means the formula provably has no model at all.
	Infeasible Status = iota
	// Optimal means the returned model provably minimizes the counted ones.
	Optimal
	// Feasible means a model was found but optimality was not proven
	// within the configured budget.
	Feasible
	// Unknown means the conflict budget was exhausted before any model was
	// found or unsatisfiability was proven. Unlike Infeasible, the formula
	// may well have models; callers must not report it as unsatisfiable.
	Unknown
)

func (s Status) String() string {
	switch s {
	case Infeasible:
		return "infeasible"
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Unknown:
		return "unknown"
	}
	return "?"
}

// Model maps external SAT variables to truth values.
type Model map[int]bool

// Count returns the number of counted variables true in the model.
func (m Model) Count(counted []int) int {
	n := 0
	for _, v := range counted {
		if m[v] {
			n++
		}
	}
	return n
}

// Options configure the solvers.
type Options struct {
	// MaxConflictsPerCall bounds each SAT call; 0 means unbounded.
	MaxConflictsPerCall int64
	// Stop, when non-nil, is polled by the underlying SAT solver; returning
	// true aborts the in-flight call, which then reports Unknown (or the
	// best model found so far, for the iterative strategies). Callers use it
	// to enforce wall-clock deadlines.
	Stop func() bool
}

// newSolver builds a SAT solver configured with the options' budgets.
func newSolver(opt Options) *sat.Solver {
	s := sat.New()
	s.MaxConflicts = opt.MaxConflictsPerCall
	s.Stop = opt.Stop
	return s
}

// Result is the outcome of Minimize or Enumerate.
type Result struct {
	Status Status
	// Model is the best model found (restricted to all allocated vars).
	Model Model
	// Cost is the number of counted variables true in Model.
	Cost int
	// ModelsTried counts SAT models examined.
	ModelsTried int
}

// Minimize finds a model of the clauses minimizing the number of counted
// variables set to true (the Opt strategy). numVars must cover every
// variable in clauses and counted.
func Minimize(numVars int, clauses [][]int, counted []int, opt Options) Result {
	s := newSolver(opt)
	s.EnsureVars(numVars)
	for _, c := range clauses {
		if err := s.AddClause(c...); err != nil {
			return Result{Status: Infeasible}
		}
	}
	st := s.Solve()
	if st == sat.Unsat {
		return Result{Status: Infeasible}
	}
	if st == sat.Unknown {
		return Result{Status: Unknown}
	}
	best := snapshot(s, numVars)
	bestCost := best.Count(counted)
	tried := 1

	if bestCost > 0 && len(counted) > 1 {
		outs := addTotalizer(s, counted)
		for bestCost > 0 {
			// Require fewer than bestCost counted ones: outs[k-1] means
			// "at least k true", so forbid outs[bestCost-1].
			if err := s.AddClause(-outs[bestCost-1]); err != nil {
				return Result{Status: Optimal, Model: best, Cost: bestCost, ModelsTried: tried}
			}
			st = s.Solve()
			if st == sat.Unsat {
				return Result{Status: Optimal, Model: best, Cost: bestCost, ModelsTried: tried}
			}
			if st == sat.Unknown {
				return Result{Status: Feasible, Model: best, Cost: bestCost, ModelsTried: tried}
			}
			tried++
			best = snapshot(s, numVars)
			bestCost = best.Count(counted)
		}
	} else if bestCost == 1 && len(counted) == 1 {
		if err := s.AddClause(-counted[0]); err == nil && s.Solve() == sat.Sat {
			best = snapshot(s, numVars)
			bestCost = 0
			tried++
		}
	}
	return Result{Status: Optimal, Model: best, Cost: bestCost, ModelsTried: tried}
}

// Enumerate implements the Naive-M strategy: find up to maxModels models,
// blocking each projection onto the counted variables, and return the one
// with the fewest counted trues. Status is Optimal when enumeration
// exhausted all counted projections before hitting maxModels.
func Enumerate(numVars int, clauses [][]int, counted []int, maxModels int, opt Options) Result {
	s := newSolver(opt)
	s.EnsureVars(numVars)
	for _, c := range clauses {
		if err := s.AddClause(c...); err != nil {
			return Result{Status: Infeasible}
		}
	}
	var best Model
	bestCost := 0
	tried := 0
	for tried < maxModels {
		st := s.Solve()
		if st == sat.Unsat {
			if best == nil {
				return Result{Status: Infeasible}
			}
			return Result{Status: Optimal, Model: best, Cost: bestCost, ModelsTried: tried}
		}
		if st == sat.Unknown {
			break
		}
		tried++
		m := snapshot(s, numVars)
		c := m.Count(counted)
		if best == nil || c < bestCost {
			best, bestCost = m, c
		}
		// Block this projection onto the counted variables.
		block := make([]int, 0, len(counted))
		for _, v := range counted {
			if m[v] {
				block = append(block, -v)
			} else {
				block = append(block, v)
			}
		}
		if len(block) == 0 {
			break
		}
		if err := s.AddClause(block...); err != nil {
			return Result{Status: Optimal, Model: best, Cost: bestCost, ModelsTried: tried}
		}
	}
	if best == nil {
		// The loop exited without a model and without an unsatisfiability
		// proof (conflict budget exhausted, or maxModels <= 0): the formula's
		// status is genuinely undetermined.
		return Result{Status: Unknown, ModelsTried: tried}
	}
	return Result{Status: Feasible, Model: best, Cost: bestCost, ModelsTried: tried}
}

// EnumerateAtCost enumerates up to maxModels distinct counted-projections
// of models whose counted cost is exactly `cost` (which should be the known
// optimum: the totalizer bound makes the solver reject anything larger, and
// nothing smaller exists if cost is optimal).
func EnumerateAtCost(numVars int, clauses [][]int, counted []int, cost, maxModels int, opt Options) []Model {
	s := newSolver(opt)
	s.EnsureVars(numVars)
	for _, c := range clauses {
		if err := s.AddClause(c...); err != nil {
			return nil
		}
	}
	if cost < len(counted) && len(counted) > 1 {
		outs := addTotalizer(s, counted)
		if cost < len(outs) {
			// Forbid "at least cost+1 true".
			if err := s.AddClause(-outs[cost]); err != nil {
				return nil
			}
		}
	}
	var out []Model
	for len(out) < maxModels {
		if s.Solve() != sat.Sat {
			return out
		}
		m := snapshot(s, numVars)
		if m.Count(counted) == cost {
			out = append(out, m)
		}
		block := make([]int, 0, len(counted))
		for _, v := range counted {
			if m[v] {
				block = append(block, -v)
			} else {
				block = append(block, v)
			}
		}
		if len(block) == 0 || s.AddClause(block...) != nil {
			return out
		}
	}
	return out
}

func snapshot(s *sat.Solver, numVars int) Model {
	m := make(Model, numVars)
	for v := 1; v <= numVars; v++ {
		m[v] = s.Value(v)
	}
	return m
}

// addTotalizer builds a totalizer (Bailleux–Boudaoud) over the given
// variables and returns output variables outs where outs[k-1] is implied
// whenever at least k of the inputs are true. Only the input→output
// direction is encoded, which suffices for at-most-k enforcement via unit
// clauses ¬outs[k-1].
func addTotalizer(s *sat.Solver, vars []int) []int {
	lits := make([]int, len(vars))
	copy(lits, vars)
	sort.Ints(lits)
	return buildTot(s, lits)
}

func buildTot(s *sat.Solver, lits []int) []int {
	if len(lits) == 1 {
		return []int{lits[0]}
	}
	mid := len(lits) / 2
	a := buildTot(s, lits[:mid])
	b := buildTot(s, lits[mid:])
	n := len(a) + len(b)
	out := make([]int, n)
	for i := range out {
		out[i] = s.NewVar()
	}
	// a_i ∧ b_j → out_{i+j} for i+j >= 1, with a_0 = b_0 = true implicit.
	for i := 0; i <= len(a); i++ {
		for j := 0; j <= len(b); j++ {
			if i+j == 0 {
				continue
			}
			clause := make([]int, 0, 3)
			if i > 0 {
				clause = append(clause, -a[i-1])
			}
			if j > 0 {
				clause = append(clause, -b[j-1])
			}
			clause = append(clause, out[i+j-1])
			// Ignoring the error is safe: the database cannot become
			// inconsistent from implication clauses over fresh variables.
			_ = s.AddClause(clause...)
		}
	}
	return out
}
