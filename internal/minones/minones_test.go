package minones

import (
	"math/rand"
	"testing"
)

func TestMinimizeSimple(t *testing.T) {
	// (x1 ∨ x2) ∧ (x2 ∨ x3): minimum ones = 1 (x2).
	clauses := [][]int{{1, 2}, {2, 3}}
	r := Minimize(3, clauses, []int{1, 2, 3}, Options{})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if r.Cost != 1 {
		t.Errorf("cost = %d, want 1", r.Cost)
	}
	if !r.Model[2] {
		t.Errorf("expected x2 true, model = %v", r.Model)
	}
}

func TestMinimizeZero(t *testing.T) {
	// (¬x1 ∨ x2): all-false works, minimum = 0.
	r := Minimize(2, [][]int{{-1, 2}}, []int{1, 2}, Options{})
	if r.Status != Optimal || r.Cost != 0 {
		t.Errorf("status=%v cost=%d, want optimal 0", r.Status, r.Cost)
	}
}

func TestMinimizeInfeasible(t *testing.T) {
	r := Minimize(1, [][]int{{1}, {-1}}, []int{1}, Options{})
	if r.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", r.Status)
	}
}

func TestMinimizeSingleCountedVar(t *testing.T) {
	// x1 forced true.
	r := Minimize(1, [][]int{{1}}, []int{1}, Options{})
	if r.Status != Optimal || r.Cost != 1 {
		t.Errorf("forced var: status=%v cost=%d", r.Status, r.Cost)
	}
	// x1 free: minimum 0.
	r = Minimize(2, [][]int{{1, 2}}, []int{1}, Options{})
	if r.Status != Optimal || r.Cost != 0 {
		t.Errorf("free var: status=%v cost=%d", r.Status, r.Cost)
	}
}

func TestMinimizeProvenanceExample(t *testing.T) {
	// The paper's Example 3: Prv = t3·(t9t10 + t9t11 + t10t11) needs 3 ones.
	// Encode DNF with Tseitin-style aux vars manually:
	// y1 = t9∧t10, y2 = t9∧t11, y3 = t10∧t11, assert t3 ∧ (y1∨y2∨y3).
	// vars: t3=1 t9=2 t10=3 t11=4 y1=5 y2=6 y3=7
	clauses := [][]int{
		{1},
		{5, 6, 7},
		{-5, 2}, {-5, 3},
		{-6, 2}, {-6, 4},
		{-7, 3}, {-7, 4},
	}
	r := Minimize(7, clauses, []int{1, 2, 3, 4}, Options{})
	if r.Status != Optimal || r.Cost != 3 {
		t.Errorf("status=%v cost=%d, want optimal 3", r.Status, r.Cost)
	}
	if !r.Model[1] {
		t.Error("t3 must be in the witness")
	}
}

func TestMinimizeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		nVars := 3 + rng.Intn(6)
		nClauses := 1 + rng.Intn(10)
		clauses := make([][]int, nClauses)
		for i := range clauses {
			k := 1 + rng.Intn(3)
			cl := make([]int, k)
			for j := range cl {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl[j] = v
			}
			clauses[i] = cl
		}
		counted := []int{}
		for v := 1; v <= nVars; v++ {
			counted = append(counted, v)
		}
		want, feasible := bruteMinOnes(nVars, clauses)
		r := Minimize(nVars, clauses, counted, Options{})
		if !feasible {
			if r.Status != Infeasible {
				t.Fatalf("trial %d: want infeasible, got %v", trial, r.Status)
			}
			continue
		}
		if r.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, r.Status)
		}
		if r.Cost != want {
			t.Fatalf("trial %d: cost %d, want %d (clauses=%v)", trial, r.Cost, want, clauses)
		}
	}
}

func bruteMinOnes(nVars int, clauses [][]int) (int, bool) {
	best := -1
	for mask := 0; mask < 1<<nVars; mask++ {
		ok := true
		for _, cl := range clauses {
			cok := false
			for _, l := range cl {
				v := l
				if v < 0 {
					v = -v
				}
				val := mask&(1<<(v-1)) != 0
				if (l > 0) == val {
					cok = true
					break
				}
			}
			if !cok {
				ok = false
				break
			}
		}
		if ok {
			ones := 0
			for v := 0; v < nVars; v++ {
				if mask&(1<<v) != 0 {
					ones++
				}
			}
			if best < 0 || ones < best {
				best = ones
			}
		}
	}
	return best, best >= 0
}

func TestEnumerateFindsAllProjections(t *testing.T) {
	// (x1 ∨ x2): projections on {x1,x2} are 11, 10, 01 → 3 models.
	r := Enumerate(2, [][]int{{1, 2}}, []int{1, 2}, 100, Options{})
	if r.Status != Optimal {
		t.Errorf("status = %v, want optimal (exhausted)", r.Status)
	}
	if r.ModelsTried != 3 {
		t.Errorf("models tried = %d, want 3", r.ModelsTried)
	}
	if r.Cost != 1 {
		t.Errorf("best cost = %d, want 1", r.Cost)
	}
}

func TestEnumerateBudget(t *testing.T) {
	// Enumerating with M=1 keeps the first (arbitrary) model: Feasible.
	r := Enumerate(3, [][]int{{1, 2, 3}}, []int{1, 2, 3}, 1, Options{})
	if r.Status != Feasible {
		t.Errorf("status = %v, want feasible", r.Status)
	}
	if r.ModelsTried != 1 {
		t.Errorf("tried = %d", r.ModelsTried)
	}
}

func TestEnumerateInfeasible(t *testing.T) {
	r := Enumerate(1, [][]int{{1}, {-1}}, []int{1}, 10, Options{})
	if r.Status != Infeasible {
		t.Errorf("status = %v", r.Status)
	}
}

func TestEnumerateNeverBeatsMinimize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		nVars := 3 + rng.Intn(5)
		nClauses := 1 + rng.Intn(8)
		clauses := make([][]int, nClauses)
		for i := range clauses {
			k := 1 + rng.Intn(3)
			cl := make([]int, k)
			for j := range cl {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl[j] = v
			}
			clauses[i] = cl
		}
		counted := []int{}
		for v := 1; v <= nVars; v++ {
			counted = append(counted, v)
		}
		opt := Minimize(nVars, clauses, counted, Options{})
		for _, m := range []int{1, 4, 16} {
			naive := Enumerate(nVars, clauses, counted, m, Options{})
			if opt.Status == Infeasible {
				if naive.Status != Infeasible {
					t.Fatalf("trial %d: disagreement on feasibility", trial)
				}
				continue
			}
			if naive.Status == Infeasible {
				t.Fatalf("trial %d: naive infeasible but opt found model", trial)
			}
			if naive.Cost < opt.Cost {
				t.Fatalf("trial %d: naive-%d beat optimizer (%d < %d)", trial, m, naive.Cost, opt.Cost)
			}
		}
	}
}

func TestModelCount(t *testing.T) {
	m := Model{1: true, 2: false, 3: true}
	if m.Count([]int{1, 2, 3}) != 2 {
		t.Error("Count")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Feasible.String() != "feasible" {
		t.Error("status strings")
	}
}

// pigeonhole builds the PHP(pigeons, holes) clauses: pigeon i in hole j is
// variable i*holes+j+1. Unsatisfiable when pigeons > holes, and any CDCL
// refutation requires conflicts, so a tiny conflict budget forces the
// solver to give up with sat.Unknown.
func pigeonhole(pigeons, holes int) (numVars int, clauses [][]int) {
	v := func(i, j int) int { return i*holes + j + 1 }
	for i := 0; i < pigeons; i++ {
		var c []int
		for j := 0; j < holes; j++ {
			c = append(c, v(i, j))
		}
		clauses = append(clauses, c)
	}
	for j := 0; j < holes; j++ {
		for i := 0; i < pigeons; i++ {
			for k := i + 1; k < pigeons; k++ {
				clauses = append(clauses, []int{-v(i, j), -v(k, j)})
			}
		}
	}
	return pigeons * holes, clauses
}

// TestBudgetExhaustionIsUnknownNotInfeasible is the regression for the
// status-conflation bug: a Solve that merely ran out of conflict budget
// used to be reported as Infeasible, making callers claim "witness formula
// unsatisfiable" for formulas that were never proven unsat.
func TestBudgetExhaustionIsUnknownNotInfeasible(t *testing.T) {
	nv, clauses := pigeonhole(6, 5)
	counted := make([]int, nv)
	for i := range counted {
		counted[i] = i + 1
	}
	tiny := Options{MaxConflictsPerCall: 1}

	r := Minimize(nv, clauses, counted, tiny)
	if r.Status != Unknown {
		t.Errorf("Minimize under budget: status = %v, want unknown", r.Status)
	}
	r = Enumerate(nv, clauses, counted, 8, tiny)
	if r.Status != Unknown {
		t.Errorf("Enumerate under budget: status = %v, want unknown", r.Status)
	}

	// Unbounded, the same formula is provably infeasible.
	r = Minimize(nv, clauses, counted, Options{})
	if r.Status != Infeasible {
		t.Errorf("Minimize unbounded: status = %v, want infeasible", r.Status)
	}
	r = Enumerate(nv, clauses, counted, 8, Options{})
	if r.Status != Infeasible {
		t.Errorf("Enumerate unbounded: status = %v, want infeasible", r.Status)
	}

	// A satisfiable instance under the same tiny budget must never be
	// reported infeasible either (it may be solved, or come back unknown).
	nv, clauses = pigeonhole(5, 5)
	counted = counted[:nv]
	if r := Minimize(nv, clauses, counted, tiny); r.Status == Infeasible {
		t.Error("Minimize reported a satisfiable formula infeasible under budget")
	}
	if r := Enumerate(nv, clauses, counted, 8, tiny); r.Status == Infeasible {
		t.Error("Enumerate reported a satisfiable formula infeasible under budget")
	}
}
