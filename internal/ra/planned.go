package ra

import (
	"fmt"
	"strings"
)

// This file defines the physical join nodes the cost-based planner emits.
// The parser never produces them: they exist so a reordered join region can
// be expressed positionally, independent of attribute names (a reordered
// concatenation can make name-based resolution ambiguous, e.g. in
// self-joins). The planner guarantees the invariants documented on each
// node; the evaluator trusts them.

// EquiJoin is a positional hash equi-join: L ⋈ R on L[LKeys[i]] = R[RKeys[i]]
// for every i, producing the concatenated tuple. Every equality the original
// region enforced appears as a key pair at the lowest join of the reordered
// tree where both columns are available (they are always on opposite sides
// there), so key lists fully capture the original constraint set. NULLs
// never compare equal (SQL equality semantics).
type EquiJoin struct {
	L, R         Node
	LKeys, RKeys []int
}

// Children implements Node.
func (j *EquiJoin) Children() []Node { return []Node{j.L, j.R} }

func (j *EquiJoin) String() string {
	keys := make([]string, len(j.LKeys))
	for i := range j.LKeys {
		keys[i] = fmt.Sprintf("%d=%d", j.LKeys[i], j.RKeys[i])
	}
	return fmt.Sprintf("(%s equijoin[%s] %s)", j.L, strings.Join(keys, ","), j.R)
}

// Semi is a positional hash semi-join L ⋉ R: the subset of L with at least
// one R partner on L[LKeys[i]] = R[RKeys[i]]. The output schema is L's and
// every surviving tuple keeps its annotation untouched — a Semi node only
// filters, it never ⊗-multiplies, which is what makes the Yannakakis
// reduction annotation-preserving for every semiring. Left tuples with a
// NULL in any key column are dropped: they can never survive the eventual
// equi-join on the same columns.
type Semi struct {
	L, R         Node
	LKeys, RKeys []int
}

// Children implements Node.
func (s *Semi) Children() []Node { return []Node{s.L, s.R} }

func (s *Semi) String() string {
	keys := make([]string, len(s.LKeys))
	for i := range s.LKeys {
		keys[i] = fmt.Sprintf("%d=%d", s.LKeys[i], s.RKeys[i])
	}
	return fmt.Sprintf("(%s semijoin[%s] %s)", s.L, strings.Join(keys, ","), s.R)
}

// Permute is a positional projection In[Idxs[0]], In[Idxs[1]], ... restoring
// the column order (and schema) the original, unreordered join region
// produced. Unlike Project it resolves nothing by name. The planner emits it
// only with Idxs chosen so that dropped columns are join-enforced equal to
// kept ones, making the mapping injective on the join output; the evaluator
// still ⊕-merges defensively.
type Permute struct {
	In   Node
	Idxs []int
}

// Children implements Node.
func (p *Permute) Children() []Node { return []Node{p.In} }

func (p *Permute) String() string {
	idxs := make([]string, len(p.Idxs))
	for i, j := range p.Idxs {
		idxs[i] = fmt.Sprint(j)
	}
	return fmt.Sprintf("permute[%s](%s)", strings.Join(idxs, ","), p.In)
}
