package ra

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Expr is a scalar expression over a tuple: attribute references, constants,
// parameters (the @p symbols of Section 5.3.1), comparisons, Boolean
// connectives, and arithmetic.
type Expr interface {
	fmt.Stringer
}

// AttrRef references an attribute by (possibly qualified) name.
type AttrRef struct{ Name string }

func (a *AttrRef) String() string { return a.Name }

// Const is a literal value.
type Const struct{ Val relation.Value }

func (c *Const) String() string { return c.Val.Quote() }

// Param is a named query parameter (e.g. @numCS).
type Param struct{ Name string }

func (p *Param) String() string { return "@" + p.Name }

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the operator's surface syntax.
func (o CmpOp) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// Negate returns the complement operator.
func (o CmpOp) Negate() CmpOp {
	switch o {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	}
	return o
}

// Cmp is a comparison L op R.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

func (c *Cmp) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }

// And is a conjunction of predicates.
type And struct{ Kids []Expr }

func (a *And) String() string { return joinExprs(a.Kids, " and ") }

// Or is a disjunction of predicates.
type Or struct{ Kids []Expr }

func (o *Or) String() string { return "(" + joinExprs(o.Kids, " or ") + ")" }

// Not is a negated predicate.
type Not struct{ Kid Expr }

func (n *Not) String() string { return fmt.Sprintf("not (%s)", n.Kid) }

// Arith is an arithmetic expression L op R with op one of + - * /.
type Arith struct {
	Op   byte
	L, R Expr
}

func (a *Arith) String() string { return fmt.Sprintf("(%s %c %s)", a.L, a.Op, a.R) }

func joinExprs(es []Expr, sep string) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, sep)
}

// Eq builds the common equality comparison between two attributes.
func Eq(l, r string) Expr { return &Cmp{Op: EQ, L: &AttrRef{Name: l}, R: &AttrRef{Name: r}} }

// EqConst builds attr = value.
func EqConst(attr string, v relation.Value) Expr {
	return &Cmp{Op: EQ, L: &AttrRef{Name: attr}, R: &Const{Val: v}}
}

// CompiledExpr evaluates a bound expression against a tuple.
type CompiledExpr func(t relation.Tuple) (relation.Value, error)

// CompileExpr binds attribute references to positions in schema and
// substitutes parameters, returning an evaluator. Unbound parameters are an
// error.
func CompileExpr(e Expr, schema relation.Schema, params map[string]relation.Value) (CompiledExpr, error) {
	switch x := e.(type) {
	case *AttrRef:
		i, err := schema.Resolve(x.Name)
		if err != nil {
			return nil, err
		}
		return func(t relation.Tuple) (relation.Value, error) { return t[i], nil }, nil
	case *Const:
		v := x.Val
		return func(relation.Tuple) (relation.Value, error) { return v, nil }, nil
	case *Param:
		v, ok := params[x.Name]
		if !ok {
			return nil, fmt.Errorf("ra: unbound parameter @%s", x.Name)
		}
		return func(relation.Tuple) (relation.Value, error) { return v, nil }, nil
	case *Cmp:
		l, err := CompileExpr(x.L, schema, params)
		if err != nil {
			return nil, err
		}
		r, err := CompileExpr(x.R, schema, params)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(t relation.Tuple) (relation.Value, error) {
			lv, err := l(t)
			if err != nil {
				return relation.Null(), err
			}
			rv, err := r(t)
			if err != nil {
				return relation.Null(), err
			}
			return compareValues(op, lv, rv), nil
		}, nil
	case *And:
		kids, err := compileAll(x.Kids, schema, params)
		if err != nil {
			return nil, err
		}
		return func(t relation.Tuple) (relation.Value, error) {
			for _, k := range kids {
				v, err := k(t)
				if err != nil {
					return relation.Null(), err
				}
				if !Truthy(v) {
					return relation.Bool(false), nil
				}
			}
			return relation.Bool(true), nil
		}, nil
	case *Or:
		kids, err := compileAll(x.Kids, schema, params)
		if err != nil {
			return nil, err
		}
		return func(t relation.Tuple) (relation.Value, error) {
			for _, k := range kids {
				v, err := k(t)
				if err != nil {
					return relation.Null(), err
				}
				if Truthy(v) {
					return relation.Bool(true), nil
				}
			}
			return relation.Bool(false), nil
		}, nil
	case *Not:
		k, err := CompileExpr(x.Kid, schema, params)
		if err != nil {
			return nil, err
		}
		return func(t relation.Tuple) (relation.Value, error) {
			v, err := k(t)
			if err != nil {
				return relation.Null(), err
			}
			return relation.Bool(!Truthy(v)), nil
		}, nil
	case *Arith:
		l, err := CompileExpr(x.L, schema, params)
		if err != nil {
			return nil, err
		}
		r, err := CompileExpr(x.R, schema, params)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(t relation.Tuple) (relation.Value, error) {
			lv, err := l(t)
			if err != nil {
				return relation.Null(), err
			}
			rv, err := r(t)
			if err != nil {
				return relation.Null(), err
			}
			switch op {
			case '+':
				return relation.Add(lv, rv)
			case '-':
				return relation.Sub(lv, rv)
			case '*':
				return relation.Mul(lv, rv)
			case '/':
				return relation.Div(lv, rv)
			}
			return relation.Null(), fmt.Errorf("ra: unknown arithmetic operator %c", op)
		}, nil
	}
	return nil, fmt.Errorf("ra: unknown expression type %T", e)
}

func compileAll(es []Expr, schema relation.Schema, params map[string]relation.Value) ([]CompiledExpr, error) {
	out := make([]CompiledExpr, len(es))
	for i, e := range es {
		c, err := CompileExpr(e, schema, params)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

func compareValues(op CmpOp, l, r relation.Value) relation.Value {
	switch op {
	case EQ:
		return relation.Bool(l.Equal(r))
	case NE:
		if l.IsNull() || r.IsNull() {
			return relation.Bool(false)
		}
		return relation.Bool(!l.Equal(r))
	}
	c, ok := l.Compare(r)
	if !ok {
		return relation.Bool(false)
	}
	switch op {
	case LT:
		return relation.Bool(c < 0)
	case LE:
		return relation.Bool(c <= 0)
	case GT:
		return relation.Bool(c > 0)
	case GE:
		return relation.Bool(c >= 0)
	}
	return relation.Bool(false)
}

// Truthy reports whether a predicate result counts as true (SQL-style:
// NULL/unknown is false).
func Truthy(v relation.Value) bool {
	return v.Kind() == relation.KindBool && v.AsBool()
}

// CollectParams returns the distinct parameter names used anywhere in a
// query, in first-use order.
func CollectParams(n Node) []string {
	var out []string
	seen := map[string]bool{}
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *Param:
			if !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, x.Name)
			}
		case *Cmp:
			walkExpr(x.L)
			walkExpr(x.R)
		case *And:
			for _, k := range x.Kids {
				walkExpr(k)
			}
		case *Or:
			for _, k := range x.Kids {
				walkExpr(k)
			}
		case *Not:
			walkExpr(x.Kid)
		case *Arith:
			walkExpr(x.L)
			walkExpr(x.R)
		}
	}
	Walk(n, func(x Node) {
		switch q := x.(type) {
		case *Select:
			walkExpr(q.Pred)
		case *Join:
			if q.Cond != nil {
				walkExpr(q.Cond)
			}
		}
	})
	return out
}
