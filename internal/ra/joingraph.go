package ra

import (
	"repro/internal/relation"
)

// This file flattens a maximal conjunctive join region — a subtree built
// entirely of Join nodes — into hypergraph form for the cost-based planner:
// the region's leaf inputs, the equality constraints its natural- and
// theta-join conditions impose, and the mapping from the region's original
// output columns into the flattened column space. Anything the flattener
// cannot express as pure equi-join constraints (residual θ-predicates,
// cross products) makes it bail, and the planner keeps the original tree.

// JoinLeaf is one non-Join input of a flattened join region. Off is the
// global id of the leaf's first column: the region's global column space is
// the concatenation of all leaf schemas in left-to-right discovery order.
type JoinLeaf struct {
	Node   Node
	Schema relation.Schema
	Off    int
}

// JoinGraph is a join region in hypergraph form. Eqs holds every equality
// the original tree enforces, as pairs of global column ids; Out lists the
// global columns of the region's original output schema, in order (natural
// joins drop shared right-side columns, so Out is generally a strict subset
// of the global space).
type JoinGraph struct {
	Leaves []JoinLeaf
	Cols   []relation.Attribute
	Eqs    [][2]int
	Out    []int
}

// LeafOf returns the index of the leaf owning a global column.
func (g *JoinGraph) LeafOf(col int) int {
	for i := len(g.Leaves) - 1; i >= 0; i-- {
		if col >= g.Leaves[i].Off {
			return i
		}
	}
	return -1
}

// FlattenJoin flattens the maximal join region rooted at j. ok is false
// when the region is not a pure conjunctive equi-join component: a join
// condition with a non-equality (or not attribute-to-attribute, or
// ambiguous) conjunct, or a cross product (a natural join with no shared
// attributes, or a theta join with no extractable key pair — including the
// vacuous 1=1 condition the optimizer leaves after distributing every
// conjunct). The flattening mirrors EquiJoinPlan and NaturalJoinCols
// exactly, so the constraint set is identical to what the unplanned
// evaluator would enforce join-node by join-node.
func FlattenJoin(j *Join, cat Catalog) (*JoinGraph, bool) {
	g := &JoinGraph{}
	out, ok := g.flatten(j, cat)
	if !ok {
		return nil, false
	}
	g.Out = out
	return g, true
}

func (g *JoinGraph) flatten(n Node, cat Catalog) ([]int, bool) {
	j, isJoin := n.(*Join)
	if !isJoin {
		schema, err := OutSchema(n, cat)
		if err != nil {
			return nil, false
		}
		off := len(g.Cols)
		g.Cols = append(g.Cols, schema.Attrs...)
		g.Leaves = append(g.Leaves, JoinLeaf{Node: n, Schema: schema, Off: off})
		out := make([]int, schema.Arity())
		for i := range out {
			out[i] = off + i
		}
		return out, true
	}
	lOut, ok := g.flatten(j.L, cat)
	if !ok {
		return nil, false
	}
	rOut, ok := g.flatten(j.R, cat)
	if !ok {
		return nil, false
	}
	lSchema := g.schemaAt(lOut)
	rSchema := g.schemaAt(rOut)
	if j.Cond == nil {
		shared, rOnly := NaturalJoinCols(lSchema, rSchema)
		if len(shared) == 0 {
			return nil, false // cross product
		}
		for _, p := range shared {
			g.Eqs = append(g.Eqs, [2]int{lOut[p[0]], rOut[p[1]]})
		}
		out := append([]int(nil), lOut...)
		for _, ri := range rOnly {
			out = append(out, rOut[ri])
		}
		return out, true
	}
	eqs := 0
	for _, p := range andConjuncts(j.Cond) {
		c, isCmp := p.(*Cmp)
		if !isCmp || c.Op != EQ {
			return nil, false
		}
		la, lok := c.L.(*AttrRef)
		rb, rok := c.R.(*AttrRef)
		if !lok || !rok {
			return nil, false
		}
		// Same orientation logic as EquiJoinPlan: each attribute must
		// resolve on exactly one side.
		li, lerr := lSchema.Resolve(la.Name)
		ri, rerr := rSchema.Resolve(rb.Name)
		if lerr == nil && rerr == nil && !resolvesInSchema(rb.Name, lSchema) && !resolvesInSchema(la.Name, rSchema) {
			g.Eqs = append(g.Eqs, [2]int{lOut[li], rOut[ri]})
			eqs++
			continue
		}
		li2, lerr2 := lSchema.Resolve(rb.Name)
		ri2, rerr2 := rSchema.Resolve(la.Name)
		if lerr2 == nil && rerr2 == nil && !resolvesInSchema(la.Name, lSchema) && !resolvesInSchema(rb.Name, rSchema) {
			g.Eqs = append(g.Eqs, [2]int{lOut[li2], rOut[ri2]})
			eqs++
			continue
		}
		return nil, false
	}
	if eqs == 0 {
		return nil, false // cross product (e.g. the vacuous 1=1 condition)
	}
	return append(append([]int(nil), lOut...), rOut...), true
}

// schemaAt materializes the schema of a subregion output given its global
// column ids.
func (g *JoinGraph) schemaAt(cols []int) relation.Schema {
	attrs := make([]relation.Attribute, len(cols))
	for i, c := range cols {
		attrs[i] = g.Cols[c]
	}
	return relation.Schema{Attrs: attrs}
}

// andConjuncts flattens a predicate into its top-level conjuncts.
func andConjuncts(e Expr) []Expr {
	if a, ok := e.(*And); ok {
		var out []Expr
		for _, k := range a.Kids {
			out = append(out, andConjuncts(k)...)
		}
		return out
	}
	return []Expr{e}
}

func resolvesInSchema(name string, s relation.Schema) bool {
	_, err := s.Resolve(name)
	return err == nil
}
