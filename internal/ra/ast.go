// Package ra defines the relational algebra of the paper — SPJUD operators
// extended with grouping/aggregation (Section 2) — together with the scalar
// predicate language, schema inference, and the query classification used by
// the complexity dichotomy of Section 3 (Table 1).
package ra

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Node is a relational algebra operator tree.
type Node interface {
	fmt.Stringer
	// Children returns the operator's inputs, left to right.
	Children() []Node
}

// Catalog resolves base relation schemas during schema inference.
type Catalog interface {
	RelationSchema(name string) (relation.Schema, bool)
}

// Rel is a base relation reference.
type Rel struct{ Name string }

// Children implements Node.
func (r *Rel) Children() []Node { return nil }
func (r *Rel) String() string   { return r.Name }

// Select is σ_pred(In).
type Select struct {
	Pred Expr
	In   Node
}

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.In} }
func (s *Select) String() string   { return fmt.Sprintf("select[%s](%s)", s.Pred, s.In) }

// Project is π_cols(In) under set semantics (duplicates removed).
type Project struct {
	Cols []string
	In   Node
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.In} }
func (p *Project) String() string {
	return fmt.Sprintf("project[%s](%s)", strings.Join(p.Cols, ", "), p.In)
}

// Join is a theta join L ⋈_cond R; a nil Cond makes it a natural join on
// attributes with identical names (a cross product when there are none).
type Join struct {
	L, R Node
	Cond Expr
}

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.L, j.R} }
func (j *Join) String() string {
	if j.Cond == nil {
		return fmt.Sprintf("(%s join %s)", j.L, j.R)
	}
	return fmt.Sprintf("(%s join[%s] %s)", j.L, j.Cond, j.R)
}

// Union is L ∪ R under set semantics.
type Union struct{ L, R Node }

// Children implements Node.
func (u *Union) Children() []Node { return []Node{u.L, u.R} }
func (u *Union) String() string   { return fmt.Sprintf("(%s union %s)", u.L, u.R) }

// Diff is the set difference L − R.
type Diff struct{ L, R Node }

// Children implements Node.
func (d *Diff) Children() []Node { return []Node{d.L, d.R} }
func (d *Diff) String() string   { return fmt.Sprintf("(%s diff %s)", d.L, d.R) }

// Rename is ρ_as(In): every attribute x becomes as.x.
type Rename struct {
	As string
	In Node
}

// Children implements Node.
func (r *Rename) Children() []Node { return []Node{r.In} }
func (r *Rename) String() string   { return fmt.Sprintf("rename[%s](%s)", r.As, r.In) }

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Aggregate functions. Count with an empty Attr counts rows of the group.
const (
	Count AggFunc = iota
	Sum
	Avg
	Min
	Max
)

// String returns the SQL spelling of the aggregate.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	}
	return "?"
}

// ParseAggFunc parses an aggregate function name.
func ParseAggFunc(s string) (AggFunc, bool) {
	switch strings.ToLower(s) {
	case "count":
		return Count, true
	case "sum":
		return Sum, true
	case "avg":
		return Avg, true
	case "min":
		return Min, true
	case "max":
		return Max, true
	}
	return 0, false
}

// AggSpec is one aggregate column: Func(Attr) AS As. Attr may be empty for
// Count (count rows).
type AggSpec struct {
	Func AggFunc
	Attr string
	As   string
}

func (a AggSpec) String() string {
	arg := a.Attr
	if arg == "" {
		arg = "*"
	}
	return fmt.Sprintf("%s(%s)->%s", a.Func, arg, a.As)
}

// GroupBy is γ_{GroupCols; Aggs}(In). With empty GroupCols it produces a
// single group over the whole input (if nonempty).
type GroupBy struct {
	GroupCols []string
	Aggs      []AggSpec
	In        Node
}

// Children implements Node.
func (g *GroupBy) Children() []Node { return []Node{g.In} }
func (g *GroupBy) String() string {
	parts := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		parts[i] = a.String()
	}
	return fmt.Sprintf("groupby[%s; %s](%s)", strings.Join(g.GroupCols, ", "), strings.Join(parts, ", "), g.In)
}

// OutSchema infers the output schema of a query against a catalog.
func OutSchema(n Node, cat Catalog) (relation.Schema, error) {
	switch q := n.(type) {
	case *Rel:
		s, ok := cat.RelationSchema(q.Name)
		if !ok {
			return relation.Schema{}, fmt.Errorf("ra: unknown relation %q", q.Name)
		}
		return s, nil
	case *Select:
		return OutSchema(q.In, cat)
	case *Project:
		in, err := OutSchema(q.In, cat)
		if err != nil {
			return relation.Schema{}, err
		}
		idxs := make([]int, len(q.Cols))
		for i, c := range q.Cols {
			j, err := in.Resolve(c)
			if err != nil {
				return relation.Schema{}, err
			}
			idxs[i] = j
		}
		out := in.Project(idxs)
		// Projection exposes the written column names.
		for i := range out.Attrs {
			out.Attrs[i].Name = q.Cols[i]
		}
		return out, nil
	case *Join:
		l, err := OutSchema(q.L, cat)
		if err != nil {
			return relation.Schema{}, err
		}
		r, err := OutSchema(q.R, cat)
		if err != nil {
			return relation.Schema{}, err
		}
		if q.Cond != nil {
			return l.Concat(r), nil
		}
		// Natural join: keep left schema plus right attrs not shared.
		_, rOnly := NaturalJoinCols(l, r)
		attrs := make([]relation.Attribute, 0, len(l.Attrs)+len(rOnly))
		attrs = append(attrs, l.Attrs...)
		for _, j := range rOnly {
			attrs = append(attrs, r.Attrs[j])
		}
		return relation.Schema{Attrs: attrs}, nil
	case *Union:
		l, err := OutSchema(q.L, cat)
		if err != nil {
			return relation.Schema{}, err
		}
		r, err := OutSchema(q.R, cat)
		if err != nil {
			return relation.Schema{}, err
		}
		if !l.UnionCompatible(r) {
			return relation.Schema{}, fmt.Errorf("ra: union of incompatible schemas %s and %s", l, r)
		}
		return l, nil
	case *Diff:
		l, err := OutSchema(q.L, cat)
		if err != nil {
			return relation.Schema{}, err
		}
		r, err := OutSchema(q.R, cat)
		if err != nil {
			return relation.Schema{}, err
		}
		if !l.UnionCompatible(r) {
			return relation.Schema{}, fmt.Errorf("ra: difference of incompatible schemas %s and %s", l, r)
		}
		return l, nil
	case *Rename:
		in, err := OutSchema(q.In, cat)
		if err != nil {
			return relation.Schema{}, err
		}
		return in.Qualify(q.As), nil
	case *EquiJoin:
		l, err := OutSchema(q.L, cat)
		if err != nil {
			return relation.Schema{}, err
		}
		r, err := OutSchema(q.R, cat)
		if err != nil {
			return relation.Schema{}, err
		}
		return l.Concat(r), nil
	case *Semi:
		return OutSchema(q.L, cat)
	case *Permute:
		in, err := OutSchema(q.In, cat)
		if err != nil {
			return relation.Schema{}, err
		}
		for _, j := range q.Idxs {
			if j < 0 || j >= in.Arity() {
				return relation.Schema{}, fmt.Errorf("ra: permute index %d out of range for schema %s", j, in)
			}
		}
		return in.Project(q.Idxs), nil
	case *GroupBy:
		in, err := OutSchema(q.In, cat)
		if err != nil {
			return relation.Schema{}, err
		}
		attrs := make([]relation.Attribute, 0, len(q.GroupCols)+len(q.Aggs))
		for _, c := range q.GroupCols {
			j, err := in.Resolve(c)
			if err != nil {
				return relation.Schema{}, err
			}
			attrs = append(attrs, relation.Attribute{Name: c, Type: in.Attrs[j].Type})
		}
		for _, a := range q.Aggs {
			typ := relation.KindFloat
			switch a.Func {
			case Count:
				typ = relation.KindInt
			case Sum, Min, Max:
				if a.Attr != "" {
					j, err := in.Resolve(a.Attr)
					if err != nil {
						return relation.Schema{}, err
					}
					typ = in.Attrs[j].Type
				}
			}
			attrs = append(attrs, relation.Attribute{Name: a.As, Type: typ})
		}
		return relation.Schema{Attrs: attrs}, nil
	}
	return relation.Schema{}, fmt.Errorf("ra: unknown node type %T", n)
}

// NaturalJoinCols returns the index pairs of shared attribute names
// (left index, right index) and the right-side indices that are not shared.
func NaturalJoinCols(l, r relation.Schema) (shared [][2]int, rOnly []int) {
	for j, ra := range r.Attrs {
		if i := l.IndexExact(ra.Name); i >= 0 {
			shared = append(shared, [2]int{i, j})
		} else {
			rOnly = append(rOnly, j)
		}
	}
	return shared, rOnly
}

// Walk visits every node of the tree in pre-order.
func Walk(n Node, fn func(Node)) {
	fn(n)
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}

// BaseRelations returns the distinct base relation names referenced by a
// query, in first-use order.
func BaseRelations(n Node) []string {
	var out []string
	seen := map[string]bool{}
	Walk(n, func(x Node) {
		if r, ok := x.(*Rel); ok && !seen[r.Name] {
			seen[r.Name] = true
			out = append(out, r.Name)
		}
	})
	return out
}
