package ra

import "strings"

// Class describes which operator classes a query uses, matching the
// SPJUDA taxonomy of Sections 2–3.
type Class struct {
	Select    bool
	Project   bool
	Join      bool
	Union     bool
	Diff      bool
	Aggregate bool
}

// Classify computes the operator classes used by a query. Rename is
// transparent (pure attribute relabeling).
func Classify(n Node) Class {
	var c Class
	Walk(n, func(x Node) {
		switch x.(type) {
		case *Select:
			c.Select = true
		case *Project:
			c.Project = true
		case *Join:
			c.Join = true
		case *Union:
			c.Union = true
		case *Diff:
			c.Diff = true
		case *GroupBy:
			c.Aggregate = true
		}
	})
	return c
}

// String renders the class in the paper's abbreviation style (e.g. "SPJ",
// "SPJUD", "SPJUDA").
func (c Class) String() string {
	var b strings.Builder
	if c.Select {
		b.WriteByte('S')
	}
	if c.Project {
		b.WriteByte('P')
	}
	if c.Join {
		b.WriteByte('J')
	}
	if c.Union {
		b.WriteByte('U')
	}
	if c.Diff {
		b.WriteByte('D')
	}
	if c.Aggregate {
		b.WriteByte('A')
	}
	if b.Len() == 0 {
		return "R"
	}
	return b.String()
}

// Monotone reports whether the query is monotone (no difference, no
// aggregation): D' ⊆ D implies Q(D') ⊆ Q(D).
func (c Class) Monotone() bool { return !c.Diff && !c.Aggregate }

// IsJUStar reports whether the query is in the JU* class of Theorem 5: all
// unions appear after (above) all joins, i.e. no Union occurs in the
// subtree of any Join.
func IsJUStar(n Node) bool {
	ok := true
	Walk(n, func(x Node) {
		if j, isJoin := x.(*Join); isJoin {
			Walk(j, func(y Node) {
				if y != j {
					if _, isU := y.(*Union); isU {
						ok = false
					}
				}
			})
		}
	})
	return ok
}

// IsSPJUDStar reports whether the query is in the SPJUD* class of Theorem 7:
// the grammar Q → q+ | Q − Q where q+ is an SPJU query. Equivalently, no
// Diff node occurs below a non-Diff operator (Rename above Diff is allowed
// since it is transparent relabeling).
func IsSPJUDStar(n Node) bool {
	ok := true
	var walk func(x Node, diffAllowed bool)
	walk = func(x Node, diffAllowed bool) {
		switch q := x.(type) {
		case *Diff:
			if !diffAllowed {
				ok = false
			}
			walk(q.L, diffAllowed)
			walk(q.R, diffAllowed)
		case *Rename:
			walk(q.In, diffAllowed)
		default:
			for _, c := range x.Children() {
				walk(c, false)
			}
		}
	}
	walk(n, true)
	return ok
}

// SPJUTerms decomposes an SPJUD* query into its SPJU leaves and the nested
// difference structure: it returns the list of q+ terms in the order they
// appear in the nested difference expression. For a plain SPJU query it
// returns the query itself.
func SPJUTerms(n Node) []Node {
	switch q := n.(type) {
	case *Diff:
		return append(SPJUTerms(q.L), SPJUTerms(q.R)...)
	case *Rename:
		terms := SPJUTerms(q.In)
		if len(terms) == 1 && terms[0] == q.In {
			return []Node{n}
		}
		return terms
	default:
		return []Node{n}
	}
}

// Metrics quantifies query complexity for the Figure 3 experiment.
type Metrics struct {
	Operators int // total operator count (excluding base relation leaves)
	Diffs     int // number of difference operators
	Height    int // height of the operator tree
	Joins     int
	Relations int // base relation references (with multiplicity)
}

// ComputeMetrics derives the complexity metrics of a query.
func ComputeMetrics(n Node) Metrics {
	var m Metrics
	var height func(Node) int
	height = func(x Node) int {
		switch x.(type) {
		case *Rel:
			m.Relations++
			return 0
		case *Diff:
			m.Diffs++
			m.Operators++
		case *Join:
			m.Joins++
			m.Operators++
		default:
			m.Operators++
		}
		h := 0
		for _, c := range x.Children() {
			if ch := height(c); ch > h {
				h = ch
			}
		}
		return h + 1
	}
	m.Height = height(n)
	return m
}

// TopAggregate matches queries of the shape the aggregate algorithms of
// Section 5 support: optional Project over optional HAVING-Select over a
// GroupBy whose input is aggregate-free. It returns the decomposition or
// ok=false.
type TopAggregate struct {
	Proj    *Project // may be nil
	Havings []*Select
	Group   *GroupBy
	Inner   Node // the pre-aggregation query Q'
}

// MatchTopAggregate decomposes a query of the form π? σ* γ (Q') where Q' has
// no aggregation. Select layers between the projection and the group-by are
// HAVING predicates.
func MatchTopAggregate(n Node) (TopAggregate, bool) {
	var out TopAggregate
	cur := n
	if p, ok := cur.(*Project); ok {
		out.Proj = p
		cur = p.In
	}
	for {
		s, ok := cur.(*Select)
		if !ok {
			break
		}
		out.Havings = append(out.Havings, s)
		cur = s.In
	}
	g, ok := cur.(*GroupBy)
	if !ok {
		return TopAggregate{}, false
	}
	if Classify(g.In).Aggregate {
		return TopAggregate{}, false
	}
	out.Group = g
	out.Inner = g.In
	return out, true
}
