package ra

import (
	"testing"

	"repro/internal/relation"
)

type mapCatalog map[string]relation.Schema

func (m mapCatalog) RelationSchema(name string) (relation.Schema, bool) {
	s, ok := m[name]
	return s, ok
}

func exampleCatalog() mapCatalog {
	return mapCatalog{
		"Student": relation.NewSchema(
			relation.Attr("name", relation.KindString),
			relation.Attr("major", relation.KindString)),
		"Registration": relation.NewSchema(
			relation.Attr("name", relation.KindString),
			relation.Attr("course", relation.KindString),
			relation.Attr("dept", relation.KindString),
			relation.Attr("grade", relation.KindInt)),
	}
}

func TestOutSchemaBasics(t *testing.T) {
	cat := exampleCatalog()
	q := &Project{Cols: []string{"name", "major"},
		In: &Select{Pred: EqConst("dept", relation.String("CS")),
			In: &Join{L: &Rel{Name: "Student"}, R: &Rel{Name: "Registration"}}}}
	s, err := OutSchema(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 2 || s.Attrs[0].Name != "name" || s.Attrs[1].Name != "major" {
		t.Errorf("schema = %v", s)
	}
}

func TestOutSchemaNaturalJoin(t *testing.T) {
	cat := exampleCatalog()
	q := &Join{L: &Rel{Name: "Student"}, R: &Rel{Name: "Registration"}}
	s, err := OutSchema(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	// name, major + course, dept, grade (shared name merged).
	if s.Arity() != 5 {
		t.Errorf("natural join arity = %d, want 5: %v", s.Arity(), s)
	}
}

func TestOutSchemaRename(t *testing.T) {
	cat := exampleCatalog()
	q := &Rename{As: "s", In: &Rel{Name: "Student"}}
	s, err := OutSchema(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if s.Attrs[0].Name != "s.name" {
		t.Errorf("rename schema = %v", s)
	}
	// Renamed relations share no attribute names: natural join = cross.
	q2 := &Join{L: q, R: &Rename{As: "r", In: &Rel{Name: "Student"}}}
	s2, err := OutSchema(q2, cat)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Arity() != 4 {
		t.Errorf("cross arity = %d", s2.Arity())
	}
}

func TestOutSchemaUnionErrors(t *testing.T) {
	cat := exampleCatalog()
	q := &Union{L: &Rel{Name: "Student"}, R: &Rel{Name: "Registration"}}
	if _, err := OutSchema(q, cat); err == nil {
		t.Error("union of incompatible schemas should error")
	}
	if _, err := OutSchema(&Rel{Name: "Nope"}, cat); err == nil {
		t.Error("unknown relation should error")
	}
}

func TestOutSchemaGroupBy(t *testing.T) {
	cat := exampleCatalog()
	q := &GroupBy{GroupCols: []string{"name"},
		Aggs: []AggSpec{{Func: Avg, Attr: "grade", As: "avg_grade"}, {Func: Count, As: "cnt"}},
		In:   &Rel{Name: "Registration"}}
	s, err := OutSchema(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 3 {
		t.Fatalf("schema = %v", s)
	}
	if s.Attrs[1].Name != "avg_grade" || s.Attrs[1].Type != relation.KindFloat {
		t.Errorf("avg col = %v", s.Attrs[1])
	}
	if s.Attrs[2].Type != relation.KindInt {
		t.Errorf("count col = %v", s.Attrs[2])
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		q    Node
		want string
	}{
		{&Rel{Name: "R"}, "R"},
		{&Select{Pred: EqConst("a", relation.Int(1)), In: &Rel{Name: "R"}}, "S"},
		{&Project{Cols: []string{"a"}, In: &Join{L: &Rel{Name: "R"}, R: &Rel{Name: "S"}}}, "PJ"},
		{&Diff{L: &Rel{Name: "R"}, R: &Rel{Name: "S"}}, "D"},
		{&GroupBy{GroupCols: nil, Aggs: []AggSpec{{Func: Count, As: "c"}}, In: &Rel{Name: "R"}}, "A"},
	}
	for _, c := range cases {
		if got := Classify(c.q).String(); got != c.want {
			t.Errorf("Classify(%s) = %s, want %s", c.q, got, c.want)
		}
	}
	if !Classify(&Rel{Name: "R"}).Monotone() {
		t.Error("base relation is monotone")
	}
	if Classify(&Diff{L: &Rel{Name: "R"}, R: &Rel{Name: "S"}}).Monotone() {
		t.Error("difference is not monotone")
	}
}

func TestIsJUStar(t *testing.T) {
	r, s := &Rel{Name: "R"}, &Rel{Name: "S"}
	// Union above join: JU*.
	if !IsJUStar(&Union{L: &Join{L: r, R: s}, R: r}) {
		t.Error("union above join should be JU*")
	}
	// Union below join: not JU*.
	if IsJUStar(&Join{L: &Union{L: r, R: s}, R: r}) {
		t.Error("union below join should not be JU*")
	}
}

func TestIsSPJUDStar(t *testing.T) {
	r, s := &Rel{Name: "R"}, &Rel{Name: "S"}
	// Nested top-level differences: SPJUD*.
	q := &Diff{L: &Diff{L: r, R: s}, R: &Project{Cols: []string{"a"}, In: r}}
	if !IsSPJUDStar(q) {
		t.Error("nested top differences should be SPJUD*")
	}
	// Difference below a projection: not SPJUD*.
	q2 := &Project{Cols: []string{"a"}, In: &Diff{L: r, R: s}}
	if IsSPJUDStar(q2) {
		t.Error("difference below projection is not SPJUD*")
	}
	// Plain SPJU is trivially SPJUD*.
	if !IsSPJUDStar(&Join{L: r, R: s}) {
		t.Error("SPJU is SPJUD*")
	}
}

func TestSPJUTerms(t *testing.T) {
	r, s, u := &Rel{Name: "R"}, &Rel{Name: "S"}, &Rel{Name: "U"}
	q := &Diff{L: &Diff{L: r, R: s}, R: u}
	terms := SPJUTerms(q)
	if len(terms) != 3 {
		t.Fatalf("terms = %d, want 3", len(terms))
	}
	if terms[0] != Node(r) || terms[1] != Node(s) || terms[2] != Node(u) {
		t.Error("wrong term order")
	}
}

func TestComputeMetrics(t *testing.T) {
	r, s := &Rel{Name: "R"}, &Rel{Name: "S"}
	q := &Diff{
		L: &Project{Cols: []string{"a"}, In: &Join{L: r, R: s}},
		R: &Select{Pred: EqConst("a", relation.Int(1)), In: r},
	}
	m := ComputeMetrics(q)
	if m.Operators != 4 {
		t.Errorf("Operators = %d, want 4", m.Operators)
	}
	if m.Diffs != 1 || m.Joins != 1 || m.Relations != 3 {
		t.Errorf("metrics = %+v", m)
	}
	// Leaves have height 0; the deepest chain is Diff→Project→Join→Rel.
	if m.Height != 3 {
		t.Errorf("Height = %d, want 3", m.Height)
	}
}

func TestMatchTopAggregate(t *testing.T) {
	g := &GroupBy{GroupCols: []string{"name"},
		Aggs: []AggSpec{{Func: Count, As: "cnt"}}, In: &Rel{Name: "Registration"}}
	hav := &Select{Pred: &Cmp{Op: GE, L: &AttrRef{Name: "cnt"}, R: &Const{Val: relation.Int(3)}}, In: g}
	proj := &Project{Cols: []string{"name"}, In: hav}
	spec, ok := MatchTopAggregate(proj)
	if !ok {
		t.Fatal("should match")
	}
	if spec.Proj != proj || len(spec.Havings) != 1 || spec.Group != g {
		t.Error("wrong decomposition")
	}
	// Aggregate inside the inner query: no match.
	g2 := &GroupBy{GroupCols: []string{"name"}, Aggs: []AggSpec{{Func: Count, As: "c"}}, In: g}
	if _, ok := MatchTopAggregate(g2); ok {
		t.Error("nested aggregation should not match")
	}
	if _, ok := MatchTopAggregate(&Rel{Name: "R"}); ok {
		t.Error("non-aggregate should not match")
	}
}

func TestCompileExprComparisons(t *testing.T) {
	schema := relation.NewSchema(relation.Attr("a", relation.KindInt), relation.Attr("b", relation.KindString))
	tup := relation.NewTuple(relation.Int(5), relation.String("x"))
	cases := []struct {
		e    Expr
		want bool
	}{
		{&Cmp{Op: EQ, L: &AttrRef{Name: "a"}, R: &Const{Val: relation.Int(5)}}, true},
		{&Cmp{Op: NE, L: &AttrRef{Name: "a"}, R: &Const{Val: relation.Int(5)}}, false},
		{&Cmp{Op: LT, L: &AttrRef{Name: "a"}, R: &Const{Val: relation.Int(6)}}, true},
		{&Cmp{Op: GE, L: &AttrRef{Name: "a"}, R: &Const{Val: relation.Float(5.0)}}, true},
		{&Cmp{Op: EQ, L: &AttrRef{Name: "b"}, R: &Const{Val: relation.String("x")}}, true},
		{&And{Kids: []Expr{
			&Cmp{Op: GT, L: &AttrRef{Name: "a"}, R: &Const{Val: relation.Int(1)}},
			&Cmp{Op: EQ, L: &AttrRef{Name: "b"}, R: &Const{Val: relation.String("x")}}}}, true},
		{&Or{Kids: []Expr{
			&Cmp{Op: GT, L: &AttrRef{Name: "a"}, R: &Const{Val: relation.Int(99)}},
			&Cmp{Op: EQ, L: &AttrRef{Name: "b"}, R: &Const{Val: relation.String("x")}}}}, true},
		{&Not{Kid: &Cmp{Op: EQ, L: &AttrRef{Name: "a"}, R: &Const{Val: relation.Int(5)}}}, false},
		{&Cmp{Op: GT, L: &Arith{Op: '+', L: &AttrRef{Name: "a"}, R: &Const{Val: relation.Int(1)}},
			R: &Const{Val: relation.Int(5)}}, true},
	}
	for _, c := range cases {
		f, err := CompileExpr(c.e, schema, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.e, err)
		}
		v, err := f(tup)
		if err != nil {
			t.Fatalf("%s: %v", c.e, err)
		}
		if Truthy(v) != c.want {
			t.Errorf("%s = %v, want %v", c.e, v, c.want)
		}
	}
}

func TestCompileExprNullSemantics(t *testing.T) {
	schema := relation.NewSchema(relation.Attr("a", relation.KindInt))
	tup := relation.NewTuple(relation.Null())
	for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
		f, err := CompileExpr(&Cmp{Op: op, L: &AttrRef{Name: "a"}, R: &Const{Val: relation.Int(1)}}, schema, nil)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := f(tup)
		if Truthy(v) {
			t.Errorf("NULL %s 1 should not be truthy", op)
		}
	}
}

func TestCompileExprParams(t *testing.T) {
	schema := relation.NewSchema(relation.Attr("a", relation.KindInt))
	e := &Cmp{Op: GE, L: &AttrRef{Name: "a"}, R: &Param{Name: "p"}}
	if _, err := CompileExpr(e, schema, nil); err == nil {
		t.Error("unbound parameter should error")
	}
	f, err := CompileExpr(e, schema, map[string]relation.Value{"p": relation.Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := f(relation.NewTuple(relation.Int(5)))
	if !Truthy(v) {
		t.Error("5 >= @p(3) should hold")
	}
}

func TestCollectParams(t *testing.T) {
	q := &Select{
		Pred: &And{Kids: []Expr{
			&Cmp{Op: GE, L: &AttrRef{Name: "a"}, R: &Param{Name: "x"}},
			&Cmp{Op: LT, L: &AttrRef{Name: "b"}, R: &Param{Name: "y"}},
		}},
		In: &Select{Pred: &Cmp{Op: EQ, L: &AttrRef{Name: "c"}, R: &Param{Name: "x"}}, In: &Rel{Name: "R"}},
	}
	ps := CollectParams(q)
	if len(ps) != 2 || ps[0] != "x" || ps[1] != "y" {
		t.Errorf("CollectParams = %v", ps)
	}
}

func TestCmpOpNegate(t *testing.T) {
	pairs := map[CmpOp]CmpOp{EQ: NE, NE: EQ, LT: GE, LE: GT, GT: LE, GE: LT}
	for op, want := range pairs {
		if op.Negate() != want {
			t.Errorf("%s.Negate() = %s, want %s", op, op.Negate(), want)
		}
	}
}

func TestParseAggFunc(t *testing.T) {
	for _, s := range []string{"count", "SUM", "Avg", "min", "MAX"} {
		if _, ok := ParseAggFunc(s); !ok {
			t.Errorf("ParseAggFunc(%q) failed", s)
		}
	}
	if _, ok := ParseAggFunc("median"); ok {
		t.Error("median should not parse")
	}
}

func TestBaseRelations(t *testing.T) {
	r, s := &Rel{Name: "R"}, &Rel{Name: "S"}
	q := &Join{L: r, R: &Join{L: s, R: r}}
	names := BaseRelations(q)
	if len(names) != 2 || names[0] != "R" || names[1] != "S" {
		t.Errorf("BaseRelations = %v", names)
	}
}

func TestNodeStrings(t *testing.T) {
	q := &Diff{
		L: &Project{Cols: []string{"a"}, In: &Rel{Name: "R"}},
		R: &Union{L: &Rel{Name: "S"}, R: &Rename{As: "x", In: &Rel{Name: "T"}}},
	}
	s := q.String()
	for _, want := range []string{"project[a](R)", "union", "rename[x](T)", "diff"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
