// Package pool provides the bounded worker pool shared by the parallel
// fan-out loops: the engine's partitioned physical operators, the core
// witness-search loops (Basic, OptSigmaAll), course grading, and the
// experiment driver. Every fan-out is an index space [0, n) whose
// iterations share no mutable state; callers collect results into
// per-index slots, so output order — and therefore observable behavior —
// stays deterministic regardless of scheduling.
//
// The pool is also the process's panic-isolation boundary: a panic in a
// fan-out body is recovered inside the worker, converted into a
// *PanicError carrying the index and stack, and returned from ForEach like
// any other error — it never kills the process or strands the remaining
// workers. Goroutines in this package and internal/server are spawned only
// through Go, the recover-wrapping helper (enforced by the gorecover
// analyzer in ratestlint).
package pool

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
)

// DefaultWorkers is the parallelism the fan-out loops use unless a caller
// picks its own: one worker per available CPU. Tests override it to force
// serial or oversubscribed execution.
var DefaultWorkers = runtime.GOMAXPROCS(0)

// PanicError is a panic recovered at the pool's isolation boundary: the
// panic value, the stack captured at the recovery point, and the fan-out
// index whose body panicked (-1 for a goroutine not bound to an index).
// It travels up the call chain as an ordinary error — errors.As-able — so
// the serving layer can convert it into a structured 500 and log the stack
// without the process dying.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: panic in fan-out index %d: %v", e.Index, e.Value)
}

// Protect runs fn(i), converting a panic into a *PanicError carrying i.
func Protect(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// Go launches fn on its own goroutine under panic isolation: a panic in fn
// is recovered and handed to onPanic as a *PanicError (onPanic may be nil
// to discard it) instead of crashing the process. It is the approved way
// to spawn goroutines in this package and internal/server; the gorecover
// analyzer flags raw go statements there.
func Go(fn func(), onPanic func(*PanicError)) {
	//lint:gorecover this is the spawn helper itself; the deferred recover below is the wrapper every other goroutine routes through
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if onPanic != nil {
					onPanic(&PanicError{Index: -1, Value: r, Stack: debug.Stack()})
				}
			}
		}()
		fn()
	}()
}

// ForEach runs fn(i) for i in [0, n), spreading the calls over at most
// workers goroutines (serial when workers <= 1 or n <= 1). Iterations are
// claimed in index order. Once any call fails, remaining unstarted calls
// are skipped and ForEach returns the lowest-indexed error among the calls
// that ran. With a single failing index the reported error is therefore
// deterministic; when several indices would fail, which of them ran before
// the stop flag was observed can depend on scheduling.
//
// A panicking fn is equivalent to fn returning a *PanicError for its
// index: the panic is recovered inside the worker (the worker keeps its
// goroutine, the WaitGroup stays balanced, no slot leaks), the remaining
// workers wind down through the shared stop flag, and the first panic
// surfaces as ForEach's error. Callers that cannot propagate an error may
// re-panic it in their own goroutine.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	// The fault-injection point and panic recovery wrap every iteration on
	// both the serial and parallel paths, so the contract is uniform.
	run := func(i int) error {
		return Protect(i, func(i int) error {
			faults.Inject(faults.PoolWorker)
			return fn(i)
		})
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next int64 = -1
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		Go(func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := run(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}, nil) // run recovers per iteration; the worker loop itself cannot panic
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
