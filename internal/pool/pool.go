// Package pool provides the bounded worker pool shared by the parallel
// fan-out loops: the engine's partitioned physical operators, the core
// witness-search loops (Basic, OptSigmaAll), course grading, and the
// experiment driver. Every fan-out is an index space [0, n) whose
// iterations share no mutable state; callers collect results into
// per-index slots, so output order — and therefore observable behavior —
// stays deterministic regardless of scheduling.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the parallelism the fan-out loops use unless a caller
// picks its own: one worker per available CPU. Tests override it to force
// serial or oversubscribed execution.
var DefaultWorkers = runtime.GOMAXPROCS(0)

// ForEach runs fn(i) for i in [0, n), spreading the calls over at most
// workers goroutines (serial when workers <= 1 or n <= 1). Iterations are
// claimed in index order. Once any call fails, remaining unstarted calls
// are skipped and ForEach returns the lowest-indexed error among the calls
// that ran. With a single failing index the reported error is therefore
// deterministic; when several indices would fail, which of them ran before
// the stop flag was observed can depend on scheduling.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next int64 = -1
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
