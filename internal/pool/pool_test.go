package pool

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 100
		hits := make([]int32, n)
		err := ForEach(workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachReturnsLowestIndexedError(t *testing.T) {
	want := errors.New("boom")
	// Indices 30 and 60 fail; whichever calls ran, the reported error must
	// be the lowest-indexed one among them (deterministically 30 once both
	// have run, and never a fabricated error).
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 100, func(i int) error {
			if i == 30 || i == 60 {
				return fmt.Errorf("%w at %d", want, i)
			}
			return nil
		})
		if err == nil || !errors.Is(err, want) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	if err := ForEach(8, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := ForEach(8, 1, func(i int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("single-element fan-out never ran")
	}
}

func TestForEachStopsAfterFailure(t *testing.T) {
	// After a failure, unstarted calls are skipped: with one worker the
	// loop must stop at the first error.
	var ran int32
	err := ForEach(1, 100, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if ran != 4 {
		t.Fatalf("ran %d calls, want 4", ran)
	}
}
