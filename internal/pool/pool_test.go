package pool

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 100
		hits := make([]int32, n)
		err := ForEach(workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachReturnsLowestIndexedError(t *testing.T) {
	want := errors.New("boom")
	// Indices 30 and 60 fail; whichever calls ran, the reported error must
	// be the lowest-indexed one among them (deterministically 30 once both
	// have run, and never a fabricated error).
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 100, func(i int) error {
			if i == 30 || i == 60 {
				return fmt.Errorf("%w at %d", want, i)
			}
			return nil
		})
		if err == nil || !errors.Is(err, want) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	if err := ForEach(8, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := ForEach(8, 1, func(i int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("single-element fan-out never ran")
	}
}

func TestForEachStopsAfterFailure(t *testing.T) {
	// After a failure, unstarted calls are skipped: with one worker the
	// loop must stop at the first error.
	var ran int32
	err := ForEach(1, 100, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if ran != 4 {
		t.Fatalf("ran %d calls, want 4", ran)
	}
}

// A panicking worker must not deadlock the fan-out or kill the process:
// the first panic comes back as a *PanicError carrying the index, all
// workers wind down, and ForEach returns.
func TestForEachPanicPropagatesAsError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var ran int32
		err := ForEach(workers, 50, func(i int) error {
			atomic.AddInt32(&ran, 1)
			if i == 7 {
				panic(fmt.Sprintf("worker %d exploded", i))
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 7 {
			t.Fatalf("workers=%d: panic index = %d, want 7", workers, pe.Index)
		}
		if pe.Value != "worker 7 exploded" {
			t.Fatalf("workers=%d: panic value = %v", workers, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: no stack captured", workers)
		}
	}
}

// With several panicking indices the reported error is the lowest-indexed
// one among the calls that ran, like ordinary errors.
func TestForEachPanicLowestIndexWins(t *testing.T) {
	err := ForEach(1, 100, func(i int) error {
		if i == 20 || i == 60 {
			panic(i)
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 20 {
		t.Fatalf("err = %v, want *PanicError at index 20", err)
	}
}

// A panic must not strand the remaining workers: a full-width fan-out
// where one index panics still terminates with every worker accounted for
// (this test hangs, not fails, on a deadlock).
func TestForEachPanicNoDeadlock(t *testing.T) {
	done := make(chan error, 1)
	Go(func() {
		done <- ForEach(4, 200, func(i int) error {
			if i%37 == 3 {
				panic("boom")
			}
			return nil
		})
	}, nil)
	select {
	case err := <-done:
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("err = %v, want *PanicError", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ForEach deadlocked after a worker panic")
	}
}

func TestProtect(t *testing.T) {
	if err := Protect(3, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	want := errors.New("plain")
	if err := Protect(3, func(i int) error { return want }); !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
	err := Protect(3, func(i int) error { panic("bang") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 3 || pe.Value != "bang" {
		t.Fatalf("err = %v", err)
	}
}

func TestGoDeliversPanic(t *testing.T) {
	ch := make(chan *PanicError, 1)
	Go(func() { panic("in goroutine") }, func(pe *PanicError) { ch <- pe })
	select {
	case pe := <-ch:
		if pe.Value != "in goroutine" || pe.Index != -1 {
			t.Fatalf("PanicError = %+v", pe)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("panic never delivered")
	}
}
