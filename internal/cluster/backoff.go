package cluster

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Retry pacing: exponential backoff with full jitter — the wait before
// retry k is uniform in (0, min(cap, base·2^(k-1))]. Full jitter
// decorrelates retry storms: when a worker crash fails many requests at
// once, fixed or equal-jitter backoff re-synchronizes them into waves that
// hammer the surviving replicas in lockstep, while full jitter spreads
// them evenly over the window. This helper is the repo's only sanctioned
// retry wait; the nakedretry analyzer bans raw time.Sleep everywhere else.
type backoff struct {
	base time.Duration
	cap  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

func newBackoff(base, cap time.Duration, seed int64) *backoff {
	return &backoff{base: base, cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// delay returns the jittered wait before the attempt following `attempt`
// completed tries (1-based).
func (b *backoff) delay(attempt int) time.Duration {
	ceil := b.base
	for i := 1; i < attempt && ceil < b.cap; i++ {
		ceil *= 2
	}
	if ceil > b.cap {
		ceil = b.cap
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Duration(b.rng.Int63n(int64(ceil))) + 1
}

// sleep waits d or until ctx is done, whichever comes first, reporting the
// context error if the wait was cut short. Timer-based so a canceled
// request never sits out a backoff window.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
