package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

const (
	refQ   = `project[name, major](select[dept = 'CS'](Student join Registration))`
	wrongQ = `project[name, major](Student join Registration)`
)

func courseSpec(size int) server.InstanceSpec {
	return server.InstanceSpec{Kind: "course", Size: size, Seed: 1}
}

// served reports whether a response is a successfully served explanation
// (small course instances make refQ/wrongQ agree, larger ones differ).
func served(code int, status string) bool {
	return code == http.StatusOK && (status == server.StatusOK || status == server.StatusAgree)
}

// syncBuffer is a goroutine-safe bytes.Buffer for audit capture.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// newWorker spins up one real worker replica over HTTP.
func newWorker(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// newFrontend builds a Frontend with test-friendly defaults (health
// checking and hedging off unless the test opts in) and serves it.
func newFrontend(t *testing.T, cfg Config) (*Frontend, *httptest.Server) {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = -1
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = -1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.IDPrefix == "" {
		cfg.IDPrefix = "test"
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = f.Close() })
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(ts.Close)
	return f, ts
}

func postJSON(t *testing.T, url string, body any, into any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp
}

// --- ring ---

func TestRingDistributionAndStability(t *testing.T) {
	workers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1, r2 := newRing(workers), newRing(workers)
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("course:%d:1", i)
		s1, s2 := r1.successors(key), r2.successors(key)
		if len(s1) != 3 {
			t.Fatalf("successors(%q) = %v, want 3 distinct workers", key, s1)
		}
		seen := map[int]bool{}
		for _, w := range s1 {
			if seen[w] {
				t.Fatalf("successors(%q) repeats worker %d: %v", key, w, s1)
			}
			seen[w] = true
		}
		if s1[0] != s2[0] {
			t.Fatalf("owner of %q differs across identical rings: %d vs %d", key, s1[0], s2[0])
		}
		counts[s1[0]]++
	}
	for w, c := range counts {
		// With 64 vnodes each worker should own a healthy share; 10% is a
		// loose floor that only a broken hash would miss.
		if c < 300 {
			t.Fatalf("worker %d owns %d/3000 keys; distribution is badly skewed: %v", w, c, counts)
		}
	}
}

func TestRingSingleWorker(t *testing.T) {
	r := newRing([]string{"http://only:1"})
	if s := r.successors("anything"); len(s) != 1 || s[0] != 0 {
		t.Fatalf("successors = %v, want [0]", s)
	}
}

// --- breaker ---

func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(2, 50*time.Millisecond)
	now := time.Now()
	if !b.allow(now) || b.stateName() != "closed" {
		t.Fatal("new breaker must be closed and allowing")
	}
	b.failure(now)
	if !b.allow(now) {
		t.Fatal("one failure under threshold must not open the breaker")
	}
	b.failure(now)
	if b.allow(now) || b.stateName() != "open" {
		t.Fatalf("threshold failures must open the breaker (state %s)", b.stateName())
	}
	// Cooldown elapses: exactly one half-open probe is admitted.
	later := now.Add(60 * time.Millisecond)
	if !b.allow(later) {
		t.Fatal("cooldown elapsed: the half-open probe must be admitted")
	}
	if b.stateName() != "half_open" {
		t.Fatalf("state = %s, want half_open", b.stateName())
	}
	if b.allow(later) {
		t.Fatal("second caller during the half-open probe must be rejected")
	}
	// Probe fails: re-open for another cooldown.
	b.failure(later)
	if b.allow(later.Add(10 * time.Millisecond)) {
		t.Fatal("failed probe must re-open the breaker")
	}
	// Next probe succeeds: closed again.
	again := later.Add(70 * time.Millisecond)
	if !b.allow(again) {
		t.Fatal("second cooldown elapsed: probe must be admitted")
	}
	b.success()
	if b.stateName() != "closed" || !b.allow(again) {
		t.Fatal("successful probe must close the breaker")
	}
}

func TestBreakerReset(t *testing.T) {
	b := newBreaker(1, time.Hour)
	b.failure(time.Now())
	if b.allow(time.Now()) {
		t.Fatal("breaker should be open")
	}
	b.reset()
	if !b.allow(time.Now()) || b.stateName() != "closed" {
		t.Fatal("reset must force-close the breaker")
	}
}

// --- backoff ---

func TestBackoffBoundsAndDeterminism(t *testing.T) {
	b1 := newBackoff(10*time.Millisecond, 80*time.Millisecond, 42)
	b2 := newBackoff(10*time.Millisecond, 80*time.Millisecond, 42)
	ceil := []time.Duration{10, 20, 40, 80, 80, 80}
	for attempt := 1; attempt <= len(ceil); attempt++ {
		d1, d2 := b1.delay(attempt), b2.delay(attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed gave %v vs %v", attempt, d1, d2)
		}
		if d1 <= 0 || d1 > ceil[attempt-1]*time.Millisecond {
			t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d1, ceil[attempt-1]*time.Millisecond)
		}
	}
}

// --- config plumbing ---

func TestNormalizeWorkerURL(t *testing.T) {
	cases := map[string]string{
		"localhost:9001":         "http://localhost:9001",
		"http://host:1/":         "http://host:1",
		" https://host:2/ ":      "https://host:2",
		"http://bare.example":    "http://bare.example",
		"10.0.0.7:8080":          "http://10.0.0.7:8080",
		"http://trail.example//": "http://trail.example",
	}
	for in, want := range cases {
		if got := normalizeWorkerURL(in); got != want {
			t.Errorf("normalizeWorkerURL(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNewRequiresWorkers(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no workers must fail")
	}
}

// --- routing ---

// Requests naming the same generated instance must all land on the ring
// owner: that is the cache-affinity property sharding exists for.
func TestRouteAffinity(t *testing.T) {
	w1, ts1 := newWorker(t, server.Config{})
	w2, ts2 := newWorker(t, server.Config{})
	_, fts := newFrontend(t, Config{Workers: []string{ts1.URL, ts2.URL}})

	for i := 0; i < 4; i++ {
		var resp server.ExplainResponse
		r := postJSON(t, fts.URL+"/explain", server.ExplainRequest{
			Q1: refQ, Q2: wrongQ, Instance: courseSpec(300),
		}, &resp)
		if !served(r.StatusCode, resp.Status) {
			t.Fatalf("explain via frontend = %d / %q (%s)", r.StatusCode, resp.Status, resp.Error)
		}
		if r.Header.Get(server.HeaderRequestID) == "" {
			t.Fatal("frontend response is missing the request-id header")
		}
	}
	s1, s2 := workerExplainCount(t, ts1.URL), workerExplainCount(t, ts2.URL)
	if s1+s2 != 4 {
		t.Fatalf("workers served %d+%d explains, want 4 total", s1, s2)
	}
	if s1 != 0 && s2 != 0 {
		t.Fatalf("same instance key split across workers (%d vs %d); affinity routing is broken", s1, s2)
	}
	_ = w1
	_ = w2
}

// Inline instances are request-private, so they round-robin instead of
// hashing: both workers must see traffic.
func TestInlineRoundRobin(t *testing.T) {
	_, ts1 := newWorker(t, server.Config{})
	_, ts2 := newWorker(t, server.Config{})
	_, fts := newFrontend(t, Config{Workers: []string{ts1.URL, ts2.URL}})

	data := "relation S(a: int)\n1\n2\n\nrelation T(a: int)\n1\n"
	for i := 0; i < 4; i++ {
		var resp server.ExplainResponse
		r := postJSON(t, fts.URL+"/explain", server.ExplainRequest{
			Q1: "S", Q2: "T", Instance: server.InstanceSpec{Kind: "inline", Data: data},
		}, &resp)
		if r.StatusCode != http.StatusOK || resp.Status != server.StatusOK {
			t.Fatalf("inline explain via frontend = %d / %q (%s)", r.StatusCode, resp.Status, resp.Error)
		}
	}
	s1, s2 := workerExplainCount(t, ts1.URL), workerExplainCount(t, ts2.URL)
	if s1 != 2 || s2 != 2 {
		t.Fatalf("inline requests split %d/%d, want 2/2 round-robin", s1, s2)
	}
}

func workerExplainCount(t *testing.T, url string) int64 {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Requests map[string]int64 `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats.Requests["explain"]
}

// --- failover ---

// A dead worker in the set must be invisible to clients: the frontend
// retries the next replica.
func TestFailoverAroundDeadWorker(t *testing.T) {
	_, live := newWorker(t, server.Config{})
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // now a conn-refused address

	_, fts := newFrontend(t, Config{
		Workers:     []string{dead.URL, live.URL},
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		BackoffCap:  4 * time.Millisecond,
	})
	for size := 100; size <= 400; size += 100 {
		var resp server.ExplainResponse
		r := postJSON(t, fts.URL+"/explain", server.ExplainRequest{
			Q1: refQ, Q2: wrongQ, Instance: courseSpec(size),
		}, &resp)
		if !served(r.StatusCode, resp.Status) {
			t.Fatalf("size %d: explain with a dead replica = %d / %q (%s)", size, r.StatusCode, resp.Status, resp.Error)
		}
	}
}

// A gracefully draining worker refuses with 503/draining; the frontend
// must fail over without punishing its breaker (drain is not a fault).
func TestFailoverAroundDrainingWorker(t *testing.T) {
	w1, ts1 := newWorker(t, server.Config{})
	_, ts2 := newWorker(t, server.Config{})
	f, fts := newFrontend(t, Config{
		Workers:     []string{ts1.URL, ts2.URL},
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		BackoffCap:  4 * time.Millisecond,
	})
	w1.BeginDrain()
	for size := 100; size <= 400; size += 100 {
		var resp server.ExplainResponse
		r := postJSON(t, fts.URL+"/explain", server.ExplainRequest{
			Q1: refQ, Q2: wrongQ, Instance: courseSpec(size),
		}, &resp)
		if !served(r.StatusCode, resp.Status) {
			t.Fatalf("size %d: explain with a draining replica = %d / %q (%s)", size, r.StatusCode, resp.Status, resp.Error)
		}
	}
	for _, wk := range f.workers {
		if wk.breaker.stateName() != "closed" {
			t.Fatalf("worker %s breaker = %s; graceful drain must not trip breakers", wk.url, wk.breaker.stateName())
		}
	}
}

// A truncated worker response (connection died mid-body) is a lost answer:
// retried, never forwarded as garbage.
func TestTruncatedResponseRetries(t *testing.T) {
	truncated := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok","counterexa`) // cut mid-field
	}))
	t.Cleanup(truncated.Close)
	_, live := newWorker(t, server.Config{})

	_, fts := newFrontend(t, Config{
		Workers:     []string{truncated.URL, live.URL},
		MaxAttempts: 4,
		BackoffBase: time.Millisecond,
		BackoffCap:  4 * time.Millisecond,
	})
	for size := 100; size <= 300; size += 100 {
		var resp server.ExplainResponse
		r := postJSON(t, fts.URL+"/explain", server.ExplainRequest{
			Q1: refQ, Q2: wrongQ, Instance: courseSpec(size),
		}, &resp)
		if !served(r.StatusCode, resp.Status) {
			t.Fatalf("size %d: explain with a truncating replica = %d / %q (%s)", size, r.StatusCode, resp.Status, resp.Error)
		}
	}
}

// When every attempt fails, the client still gets a structured 503 with
// Retry-After, not a dropped connection.
func TestUnavailableIsStructured(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	_, fts := newFrontend(t, Config{
		Workers:     []string{dead.URL},
		MaxAttempts: 2,
		BackoffBase: time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
	})
	var resp server.ExplainResponse
	r := postJSON(t, fts.URL+"/explain", server.ExplainRequest{
		Q1: refQ, Q2: wrongQ, Instance: courseSpec(100),
	}, &resp)
	if r.StatusCode != http.StatusServiceUnavailable || resp.Status != server.StatusUnavailable {
		t.Fatalf("all-dead cluster = %d / %q, want 503 / unavailable", r.StatusCode, resp.Status)
	}
	if r.Header.Get("Retry-After") == "" || resp.RetryAfterS < 1 {
		t.Fatalf("unavailable response must carry Retry-After (header %q, body %d)", r.Header.Get("Retry-After"), resp.RetryAfterS)
	}
}

// A request whose budget dies mid-failover reports budget_exceeded — the
// same structured shape as a worker-side budget expiry.
func TestBudgetExceededDuringFailover(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	_, fts := newFrontend(t, Config{
		Workers:     []string{dead.URL},
		MaxAttempts: 50,
		BackoffBase: 40 * time.Millisecond,
		BackoffCap:  40 * time.Millisecond,
	})
	var resp server.ExplainResponse
	r := postJSON(t, fts.URL+"/explain", server.ExplainRequest{
		Q1: refQ, Q2: wrongQ, Instance: courseSpec(100), TimeoutMS: 60,
	}, &resp)
	if r.StatusCode != http.StatusOK || resp.Status != server.StatusBudgetExceeded {
		t.Fatalf("budget death mid-failover = %d / %q (%s), want 200 / budget_exceeded", r.StatusCode, resp.Status, resp.Error)
	}
}

// --- hedging ---

// A stalled first replica must not hold the response hostage: after
// HedgeAfter the frontend races a second replica and the fast answer wins.
func TestHedgedRequestBeatsStraggler(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // stalled mid-explain until the test ends
	}))
	t.Cleanup(slow.Close)
	// Registered after slow.Close so it runs first (LIFO): the stalled
	// handler must be released before Close can wait it out.
	t.Cleanup(func() { close(release) })
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"agree","elapsed_ms":1}`)
	}))
	t.Cleanup(fast.Close)

	f, fts := newFrontend(t, Config{
		// Inline (empty-instance) requests round-robin from worker 0, so the
		// first attempt deterministically hits the stalled replica.
		Workers:     []string{slow.URL, fast.URL},
		MaxAttempts: 3,
		HedgeAfter:  20 * time.Millisecond,
	})
	start := time.Now()
	var resp server.ExplainResponse
	r := postJSON(t, fts.URL+"/explain", server.ExplainRequest{Q1: "S", Q2: "S"}, &resp)
	if r.StatusCode != http.StatusOK || resp.Status != server.StatusAgree {
		t.Fatalf("hedged request = %d / %q (%s), want the fast replica's agree", r.StatusCode, resp.Status, resp.Error)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedged answer took %v; the straggler was not covered", elapsed)
	}
	if f.hedges.Load() == 0 {
		t.Fatal("no hedge was launched")
	}
}

// --- fairness + lifecycle at the frontend ---

func TestTenantFairnessEnforcedAtFrontend(t *testing.T) {
	_, ts1 := newWorker(t, server.Config{}) // worker runs with no limiter
	_, fts := newFrontend(t, Config{
		Workers:    []string{ts1.URL},
		TenantRate: 0.01, TenantBurst: 1,
	})
	var first server.ExplainResponse
	r := postJSON(t, fts.URL+"/explain", server.ExplainRequest{
		Q1: refQ, Q2: refQ, Instance: courseSpec(100), Tenant: "alice",
	}, &first)
	if r.StatusCode != http.StatusOK || first.Status != server.StatusAgree {
		t.Fatalf("first request = %d / %q (%s)", r.StatusCode, first.Status, first.Error)
	}
	var second server.ExplainResponse
	r = postJSON(t, fts.URL+"/explain", server.ExplainRequest{
		Q1: refQ, Q2: refQ, Instance: courseSpec(100), Tenant: "alice",
	}, &second)
	if r.StatusCode != http.StatusTooManyRequests || second.Status != server.StatusShed {
		t.Fatalf("over-rate request = %d / %q, want 429 / shed from the frontend", r.StatusCode, second.Status)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Fatal("shed response must carry Retry-After")
	}
	// A different tenant is unaffected.
	var other server.ExplainResponse
	r = postJSON(t, fts.URL+"/explain", server.ExplainRequest{
		Q1: refQ, Q2: refQ, Instance: courseSpec(100), Tenant: "bob",
	}, &other)
	if r.StatusCode != http.StatusOK || other.Status != server.StatusAgree {
		t.Fatalf("other tenant = %d / %q (%s); fairness must be per-tenant", r.StatusCode, other.Status, other.Error)
	}
}

func TestFrontendDrain(t *testing.T) {
	_, ts1 := newWorker(t, server.Config{})
	f, fts := newFrontend(t, Config{Workers: []string{ts1.URL}})

	var health map[string]any
	resp, err := http.Get(fts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health["state"] != "ready" {
		t.Fatalf("ready healthz = %d / %v", resp.StatusCode, health["state"])
	}

	f.BeginDrain()
	var refused server.ExplainResponse
	r := postJSON(t, fts.URL+"/explain", server.ExplainRequest{
		Q1: refQ, Q2: refQ, Instance: courseSpec(100),
	}, &refused)
	if r.StatusCode != http.StatusServiceUnavailable || refused.Status != server.StatusDraining {
		t.Fatalf("draining frontend = %d / %q, want 503 / draining", r.StatusCode, refused.Status)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Fatal("draining response must carry Retry-After")
	}
	// Readiness fails, liveness still passes.
	resp, err = http.Get(fts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readiness = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(fts.URL + "/healthz?probe=live")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining liveness = %d, want 200", resp.StatusCode)
	}
}

// --- health checking ---

// Consecutive failed readiness probes eject a worker; consecutive
// successes re-admit it with a clean breaker.
func TestHealthEjectionAndReadmission(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok","state":"ready"}`)
	}))
	t.Cleanup(flaky.Close)

	f, _ := newFrontend(t, Config{
		Workers:        []string{flaky.URL},
		HealthInterval: 10 * time.Millisecond,
		EjectAfter:     2,
		ReadmitAfter:   2,
	})
	waitFor := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if f.workers[0].ejected.Load() == want {
				return
			}
			time.Sleep(2 * time.Millisecond) //lint:nakedretry test poll for the health loop's next tick, bounded by the deadline above
		}
		t.Fatalf("worker never became %s", what)
	}
	healthy.Store(false)
	waitFor(true, "ejected")
	if f.ejections.Load() == 0 {
		t.Fatal("ejection counter did not move")
	}
	healthy.Store(true)
	waitFor(false, "re-admitted")
	if f.readmissions.Load() == 0 {
		t.Fatal("readmission counter did not move")
	}
	if f.workers[0].breaker.stateName() != "closed" {
		t.Fatal("re-admission must reset the breaker")
	}
}

// --- headers / audit propagation ---

// The frontend's request id must surface in the worker's audit log with
// the attempt number, and in the response headers.
func TestRequestIDPropagation(t *testing.T) {
	var workerLog syncBuffer
	_, ts1 := newWorker(t, server.Config{AuditWriter: &workerLog})
	var feLog syncBuffer
	_, fts := newFrontend(t, Config{Workers: []string{ts1.URL}, AuditWriter: &feLog})

	var resp server.ExplainResponse
	r := postJSON(t, fts.URL+"/explain", server.ExplainRequest{
		Q1: refQ, Q2: wrongQ, Instance: courseSpec(200),
	}, &resp)
	reqID := r.Header.Get(server.HeaderRequestID)
	if reqID == "" {
		t.Fatal("response is missing the frontend request id")
	}
	if r.Header.Get(server.HeaderAttempt) != "1" {
		t.Fatalf("attempt header = %q, want 1", r.Header.Get(server.HeaderAttempt))
	}

	wes, err := server.ReadAuditLog(bytes.NewReader(workerLog.bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(wes) != 1 || wes[0].RequestID != reqID || wes[0].Attempt != 1 {
		t.Fatalf("worker audit entry = %+v, want request id %s attempt 1", wes, reqID)
	}
	if wes[0].Role != "" {
		t.Fatalf("worker entries must not carry the frontend role (got %q)", wes[0].Role)
	}
	fes, err := server.ReadAuditLog(bytes.NewReader(feLog.bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(fes) != 1 || fes[0].RequestID != reqID || fes[0].Role != server.RoleFrontend {
		t.Fatalf("frontend audit entry = %+v, want role frontend, request id %s", fes, reqID)
	}
	if fes[0].Worker == "" || fes[0].Request == nil {
		t.Fatalf("frontend entry must name the serving worker and carry the request payload: %+v", fes[0])
	}
	if fes[0].Status != wes[0].Status || fes[0].CESize != wes[0].CESize {
		t.Fatalf("frontend outcome (%s/%d) disagrees with worker outcome (%s/%d)",
			fes[0].Status, fes[0].CESize, wes[0].Status, wes[0].CESize)
	}
}
