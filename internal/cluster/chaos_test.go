package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/course"
	"repro/internal/faults"
	"repro/internal/server"
)

func withFaults(t *testing.T, seed int64, rules map[faults.Point]faults.Rule) *faults.Plan {
	t.Helper()
	plan := faults.NewPlan(seed, rules)
	faults.Enable(plan)
	t.Cleanup(faults.Disable)
	return plan
}

// TestChaosFailoverStorm is the cluster acceptance test: a 100-request
// storm through a 3-worker frontend under seeded network and worker
// faults — injected connection failures, mid-body stalls, response
// truncation, worker handler panics — plus one worker hard-killed partway
// through. It must hold the PR's acceptance bar:
//
//   - zero non-structured failures: every response is valid JSON with a
//     known status, and every one is a served answer (ok/agree), never an
//     error, 500, or dropped connection;
//   - every request is answered exactly once: 100 responses, 100 distinct
//     frontend-assigned request ids, one frontend audit entry each;
//   - every ok counterexample verifies against a locally generated copy of
//     its instance;
//   - the joined frontend + worker audit logs replay with 0 mismatches.
func TestChaosFailoverStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos storm is slow; skipped with -short")
	}

	// Note the effective rates: dial fires once per attempt, but body/
	// truncate fire once per body *read*, of which one response makes
	// several — their Every values are deliberately softer.
	plan := withFaults(t, 7, map[faults.Point]faults.Rule{
		// Network faults on the frontend→worker path.
		faults.ClusterDial:     {ErrorEvery: 15},
		faults.ClusterTruncate: {ErrorEvery: 60},
		faults.ClusterBody:     {StallEvery: 10, Stall: 10 * time.Millisecond},
		// Worker-side: handler panics (recovered into 500s, retried by the
		// frontend on another replica).
		faults.Handler: {PanicEvery: 15},
	})

	// Three real workers. Degradation thresholds are raised out of reach so
	// every served answer is full-fidelity and therefore replayable.
	highCfg := server.Config{
		MaxConcurrent:          8,
		DegradeClampQueue:      1000,
		DegradeSolverFreeQueue: 2000,
		DegradeShedQueue:       4000,
	}
	var workerLogs [3]syncBuffer
	var workerTS [3]*httptest.Server
	for i := 0; i < 3; i++ {
		cfg := highCfg
		cfg.AuditWriter = &workerLogs[i]
		_, ts := newWorker(t, cfg)
		workerTS[i] = ts
	}

	var feLog syncBuffer
	_, fts := newFrontend(t, Config{
		Workers:       []string{workerTS[0].URL, workerTS[1].URL, workerTS[2].URL},
		MaxAttempts:   8,
		MaxConcurrent: 8,
		BackoffBase:   2 * time.Millisecond,
		BackoffCap:    20 * time.Millisecond,
		// A worker hard-killed mid-storm should drop out of routing after a
		// few failures and stay out: low threshold, storm-long cooldown.
		BreakerThreshold: 3,
		BreakerCooldown:  30 * time.Second,
		AuditWriter:      &feLog,
		// Hedging off: the storm asserts exact attempt accounting; hedge
		// coverage has its own test.
	})

	const (
		totalRequests = 100
		concurrency   = 6
		killAt        = 40 // hard-kill a worker after this many requests
	)
	sizes := []int{200, 300, 400, 500}

	type outcome struct {
		idx      int
		code     int
		reqID    string
		attempts string
		size     int
		kind     string // "explain-diff", "explain-same", "grade"
		resp     server.GradeResponse
	}
	results := make([]outcome, totalRequests)
	var killOnce sync.Once
	var launched atomic.Int64
	idxCh := make(chan int)
	var wg sync.WaitGroup
	client := &http.Client{}
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				if launched.Add(1) == killAt {
					// Hard-kill: sever every open connection, then shut the
					// listener down in the background (Close waits for
					// in-flight handlers, which the storm must not).
					killOnce.Do(func() {
						workerTS[1].CloseClientConnections()
						go workerTS[1].Close()
					})
				}
				size := sizes[idx%len(sizes)]
				var body any
				var path, kind string
				switch idx % 3 {
				case 0:
					path, kind = "/explain", "explain-diff"
					body = server.ExplainRequest{Q1: refQ, Q2: wrongQ, Instance: courseSpec(size), Tenant: fmt.Sprintf("t%d", idx%5)}
				case 1:
					path, kind = "/explain", "explain-same"
					body = server.ExplainRequest{Q1: refQ, Q2: refQ, Instance: courseSpec(size), Tenant: fmt.Sprintf("t%d", idx%5)}
				default:
					path, kind = "/grade", "grade"
					body = server.GradeRequest{Question: "q1", Q: wrongQ, Instance: courseSpec(size), Tenant: fmt.Sprintf("t%d", idx%5)}
				}
				b, err := json.Marshal(body)
				if err != nil {
					t.Errorf("request %d: marshal: %v", idx, err)
					continue
				}
				resp, err := client.Post(fts.URL+path, "application/json", bytes.NewReader(b))
				if err != nil {
					t.Errorf("request %d: transport-level failure (non-structured!): %v", idx, err)
					continue
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("request %d: reading response (non-structured!): %v", idx, err)
					continue
				}
				o := outcome{
					idx:      idx,
					code:     resp.StatusCode,
					reqID:    resp.Header.Get(server.HeaderRequestID),
					attempts: resp.Header.Get(server.HeaderAttempt),
					size:     size,
					kind:     kind,
				}
				if err := json.Unmarshal(raw, &o.resp); err != nil {
					t.Errorf("request %d: non-JSON response body (non-structured!): %v: %.200s", idx, err, raw)
					continue
				}
				results[idx] = o
			}
		}()
	}
	for i := 0; i < totalRequests; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Every request answered exactly once, with a served structured outcome.
	seenIDs := map[string]bool{}
	retried := 0
	var oks []outcome
	for _, o := range results {
		if !served(o.code, o.resp.Status) {
			t.Fatalf("request %d (%s, size %d): %d / %q (%s) — a fault leaked to the client",
				o.idx, o.kind, o.size, o.code, o.resp.Status, o.resp.Error)
		}
		if o.reqID == "" {
			t.Fatalf("request %d: missing frontend request id", o.idx)
		}
		if seenIDs[o.reqID] {
			t.Fatalf("request id %s answered twice", o.reqID)
		}
		seenIDs[o.reqID] = true
		if o.attempts != "1" {
			retried++
		}
		if o.resp.Status == server.StatusOK {
			if o.resp.Counterexample == nil || o.resp.Counterexample.Size == 0 {
				t.Fatalf("request %d: ok without a counterexample", o.idx)
			}
			oks = append(oks, o)
		}
		if o.kind == "grade" && o.resp.Status == server.StatusOK && o.resp.Grade != "fail" {
			t.Fatalf("request %d: wrong query graded %q, want fail", o.idx, o.resp.Grade)
		}
	}
	if len(seenIDs) != totalRequests {
		t.Fatalf("%d distinct request ids for %d requests", len(seenIDs), totalRequests)
	}
	if len(oks) == 0 {
		t.Fatal("storm produced no counterexamples; nothing was really tested")
	}

	// The chaos actually happened: network faults fired and failover ran.
	if plan.Fired(faults.ClusterDial) == 0 || plan.Fired(faults.ClusterTruncate) == 0 {
		t.Fatalf("injected network faults never fired (dial %d, truncate %d)",
			plan.Fired(faults.ClusterDial), plan.Fired(faults.ClusterTruncate))
	}
	if retried == 0 {
		t.Fatal("no request needed a retry; the storm exercised nothing")
	}

	// Never an unverified counterexample, even under chaos: check every ok
	// answer against a locally generated copy of its instance.
	q1 := ratest.MustParseQuery(refQ)
	q2w := ratest.MustParseQuery(wrongQ)
	dbs := map[int]*ratest.Database{}
	for _, o := range oks {
		db, ok := dbs[o.size]
		if !ok {
			db = course.GenerateDB(o.size, 1)
			dbs[o.size] = db
		}
		keep := map[ratest.TupleID]bool{}
		for _, id := range o.resp.Counterexample.IDs {
			keep[ratest.TupleID(id)] = true
		}
		sub := db.Subinstance(keep)
		eq, err := ratest.Equivalent(q1, q2w, sub, nil)
		if err != nil {
			t.Fatalf("verifying storm counterexample: %v", err)
		}
		if eq {
			t.Fatalf("unverified counterexample survived the storm: ids %v agree on the size-%d instance",
				o.resp.Counterexample.IDs, o.size)
		}
	}

	// Frontend audit log: one entry per request, all role=frontend, ids
	// matching what clients saw.
	faults.Disable()
	fes, err := server.ReadAuditLog(bytes.NewReader(feLog.bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(fes) != totalRequests {
		t.Fatalf("frontend audit log has %d entries, want %d", len(fes), totalRequests)
	}
	for _, e := range fes {
		if e.Role != server.RoleFrontend || !seenIDs[e.RequestID] {
			t.Fatalf("frontend audit entry %+v: bad role or unknown request id", e)
		}
	}

	// The joined frontend + worker logs replay with 0 mismatches: every
	// deterministic frontend outcome is join-verified against a worker
	// entry sharing its request id, and every worker outcome re-executes
	// to the same answer.
	logs := []io.Reader{bytes.NewReader(feLog.bytes())}
	for i := range workerLogs {
		logs = append(logs, bytes.NewReader(workerLogs[i].bytes()))
	}
	replaySrv, err := server.New(highCfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := server.ReplayLogs(logs, replaySrv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatched != 0 {
		t.Fatalf("joined replay: %d mismatches: %v", rep.Mismatched, rep.Errors)
	}
	if rep.Joined == 0 {
		t.Fatal("joined replay verified nothing; the frontend/worker join is broken")
	}
	t.Logf("storm: %d served (%d ok, %d retried), faults dial=%d truncate=%d stall=%d panic=%d; replay joined=%d matched=%d skipped=%d",
		totalRequests, len(oks), retried,
		plan.Fired(faults.ClusterDial), plan.Fired(faults.ClusterTruncate),
		plan.Fired(faults.ClusterBody), plan.Fired(faults.Handler),
		rep.Joined, rep.Matched, rep.Skipped)
}
