package cluster

import (
	"sync"
	"time"
)

// Per-worker circuit breaker. Closed passes everything; Threshold
// consecutive failures open it, and an open breaker rejects the worker
// from routing for Cooldown. After the cooldown the breaker goes
// half-open and admits exactly one probe request at a time: a success
// closes it, a failure re-opens it for another cooldown. Breakers stop a
// dead worker from eating one timeout per attempt out of every request's
// budget; the active health checker (health.go) is the slower, cheaper
// signal that re-admits it for good.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    int // breakerClosed/Open/HalfOpen
	fails    int
	openedAt time.Time
	probing  bool
}

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may be routed to this worker now. In
// half-open state the single probe slot is claimed by the caller that gets
// true; it must report the outcome via success or failure.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	case breakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// success records a served request: the breaker closes and forgets.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
}

// failure records a breaker-relevant failure (connection error, panic 500,
// per-try timeout).
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.openedAt = now
		return
	}
	b.fails++
	if b.state == breakerClosed && b.fails >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
	}
}

// reset force-closes the breaker (health-check re-admission).
func (b *breaker) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
}

// stateName reports the breaker state for /stats.
func (b *breaker) stateName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	}
	return "closed"
}
