package cluster

import (
	"fmt"
	"sort"
)

// Consistent-hash ring: each worker owns vnodesPerWorker points on a
// uint64 circle, a key hashes to a point, and its owner is the first
// worker clockwise. Adding or removing one worker moves only ~1/n of the
// keyspace, so generated instances and their planned-query LRU entries
// stay hot on a stable owner across most topology changes. successors()
// additionally yields the failover order: the distinct workers clockwise
// from the owner, which is what retry attempt k routes to.
const vnodesPerWorker = 64

type ringPoint struct {
	hash   uint64
	worker int
}

type ring struct {
	points []ringPoint // sorted by hash
	n      int
}

func newRing(workers []string) *ring {
	r := &ring{n: len(workers)}
	for i, w := range workers {
		for v := 0; v < vnodesPerWorker; v++ {
			r.points = append(r.points, ringPoint{hash: fnv64(fmt.Sprintf("%s#%d", w, v)), worker: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].worker < r.points[b].worker
	})
	return r
}

// successors returns every worker index in ring order starting at the
// key's owner: successors(key)[0] is the stable shard owner, [1:] the
// failover order.
func (r *ring) successors(key string) []int {
	h := fnv64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	for k := 0; k < len(r.points) && len(out) < r.n; k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			out = append(out, p.worker)
		}
	}
	return out
}

func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
