package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/faults"
	"repro/internal/server"
)

// maxWorkerBody caps how much of a worker response the frontend will
// buffer (counterexamples are bounded but can be large).
const maxWorkerBody = 64 << 20

// tryResult is one attempt's classified outcome. outcomeFinal results are
// forwarded to the client verbatim; outcomeRetry results are safe to retry
// on another replica because no worker can have served the request twice:
// either it never ran (dial failure, drain refusal) or its answer was lost
// (timeout, truncation, panic 500 — explain/grade are read-only, so a
// duplicate execution is harmless).
type tryOutcome int

const (
	outcomeRetry tryOutcome = iota
	outcomeFinal
)

type tryResult struct {
	worker     int
	attempt    int
	outcome    tryOutcome
	status     int
	body       []byte
	degraded   string
	retryAfter string
	err        error
}

// faultReader threads a worker response body through the network fault
// points: cluster.body stalls mid-read (a frozen worker holding the
// connection open) and cluster.truncate kills the read mid-body (a
// connection dying before the response completes).
type faultReader struct{ r io.Reader }

func (fr *faultReader) Read(p []byte) (int, error) {
	faults.Inject(faults.ClusterBody)
	if err := faults.InjectErr(faults.ClusterTruncate); err != nil {
		return 0, err
	}
	return fr.r.Read(p)
}

// try runs one attempt against worker wi under a per-try deadline and
// classifies the outcome. Breaker accounting happens here: worker faults
// (connection errors, per-try timeouts, panic 500s, truncated bodies,
// non-draining 503s) count as failures; any answer a healthy worker could
// give — every 200 including budget_exceeded, every 4xx including 429
// shed — counts as a success. Graceful drain 503s are retried without
// punishing the breaker, and nothing is recorded once the parent request
// context is done (a budget expiry or a hedge winner's cancel says nothing
// about this worker).
func (f *Frontend) try(ctx context.Context, wi int, path string, payload []byte, tenant, reqID string, attempt int, perTry time.Duration) tryResult {
	w := f.workers[wi]
	res := tryResult{worker: wi, attempt: attempt, outcome: outcomeRetry}
	fail := func(err error, punish bool) tryResult {
		res.err = err
		if ctx.Err() != nil {
			return res
		}
		if punish {
			w.breaker.failure(time.Now())
		}
		return res
	}

	if err := faults.InjectErr(faults.ClusterDial); err != nil {
		return fail(fmt.Errorf("dialing worker %s: %w", w.url, err), true)
	}
	tctx, cancel := context.WithTimeout(ctx, perTry)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodPost, w.url+path, bytes.NewReader(payload))
	if err != nil {
		return fail(err, false)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.HeaderRequestID, reqID)
	req.Header.Set(server.HeaderAttempt, strconv.Itoa(attempt))
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fail(fmt.Errorf("worker %s: %w", w.url, err), true)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(&faultReader{r: resp.Body}, maxWorkerBody))
	if err != nil {
		return fail(fmt.Errorf("reading worker %s response: %w", w.url, err), true)
	}
	res.status = resp.StatusCode
	res.body = body
	res.degraded = resp.Header.Get(server.HeaderDegraded)
	res.retryAfter = resp.Header.Get("Retry-After")

	switch {
	case resp.StatusCode == http.StatusOK, resp.StatusCode/100 == 4:
		// Every 200 (ok, agree, budget_exceeded) and every 4xx (malformed
		// request, unknown question, 429 shed) is a deliberate answer from a
		// live worker: final, never retried. A body that is not complete
		// JSON, though, means the connection died mid-response — the answer
		// is lost and the attempt retries.
		if !json.Valid(body) {
			return fail(fmt.Errorf("worker %s: truncated response body (%d bytes)", w.url, len(body)), true)
		}
		w.breaker.success()
		res.outcome = outcomeFinal
		return res
	case resp.StatusCode == http.StatusServiceUnavailable:
		if workerStatusOf(body) == server.StatusDraining {
			// Graceful shutdown refusal: exactly what failover exists for,
			// and not a fault — the breaker is not punished, so the worker
			// re-admits cleanly if it comes back.
			res.err = fmt.Errorf("worker %s is draining", w.url)
			return res
		}
		return fail(fmt.Errorf("worker %s: unexpected 503: %s", w.url, firstLine(body)), true)
	case resp.StatusCode == http.StatusInternalServerError:
		// A recovered worker panic. The worker stayed up (panic isolation)
		// but this request crashed mid-search; rerunning it on another
		// replica is safe and usually succeeds (seeded fault injection and
		// data-independent panics don't follow the request).
		return fail(fmt.Errorf("worker %s: panic 500: %s", w.url, firstLine(body)), true)
	default:
		return fail(fmt.Errorf("worker %s: unexpected status %d", w.url, resp.StatusCode), true)
	}
}

// workerStatusOf extracts the structured status field from a worker
// response body ("" when the body isn't a structured response).
func workerStatusOf(body []byte) string {
	var probe struct {
		Status string `json:"status"`
	}
	_ = json.Unmarshal(body, &probe)
	return probe.Status
}

func firstLine(body []byte) string {
	if i := bytes.IndexByte(body, '\n'); i >= 0 {
		body = body[:i]
	}
	if len(body) > 200 {
		body = body[:200]
	}
	return string(body)
}
