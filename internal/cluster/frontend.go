package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/pool"
	"repro/internal/server"
)

// Config tunes a Frontend. Workers is required; the zero value of
// everything else is usable and Normalize fills in the defaults below.
type Config struct {
	// Workers are the worker replica base URLs (host:port is accepted and
	// gets http:// prepended). The set is fixed for the frontend's lifetime.
	Workers []string

	// MaxAttempts bounds the tries (including the first and any hedge) one
	// request may spend across replicas (default 3).
	MaxAttempts int
	// MaxConcurrent bounds proxied requests in flight; further requests
	// queue in the tenant-fair admission queue. The frontend only shuttles
	// bytes, so the default is 4× the worker-side pool parallelism.
	MaxConcurrent int
	// DefaultTimeout / MaxTimeout bound the per-request wall-clock budget
	// exactly like the worker server (defaults 10s / 60s); the frontend
	// enforces them so retries and hedges always fit a known envelope.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// TryTimeout caps a single attempt; 0 means each try may use the whole
	// remaining budget (the worker's own budget machinery then produces a
	// structured budget_exceeded before the HTTP deadline fires, and
	// hedging covers stalled workers). Set it when fast failover matters
	// more than letting slow-but-alive workers finish.
	TryTimeout time.Duration
	// MaxBodyBytes caps a client request body (default 8 MiB).
	MaxBodyBytes int64

	// BreakerThreshold consecutive failures open a worker's circuit
	// breaker for BreakerCooldown, after which a single half-open probe
	// decides (defaults 5 and 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Retry pacing: exponential backoff with full jitter from BackoffBase
	// doubling up to BackoffCap (defaults 25ms, 1s).
	BackoffBase time.Duration
	BackoffCap  time.Duration

	// HedgeAfter is how long the first attempt may run before a hedged
	// second attempt starts on another replica. 0 derives it from the
	// latency EWMA (2× the typical request); negative disables hedging.
	// A hedge only launches when the remaining budget exceeds twice the
	// delay, so hedging never burns a budget that could not absorb it.
	HedgeAfter time.Duration

	// HealthInterval paces the active health checker (default 500ms;
	// negative disables it). EjectAfter consecutive failed readiness
	// probes eject a worker from routing; ReadmitAfter consecutive
	// successes re-admit it and reset its breaker (defaults 3 and 2).
	HealthInterval time.Duration
	EjectAfter     int
	ReadmitAfter   int

	// TenantRate/TenantBurst enable per-tenant token-bucket rate limiting
	// at the frontend (0 disables). Workers behind a frontend should run
	// with their own limiter off: fairness is enforced exactly once, here,
	// where the whole cluster's traffic is visible.
	TenantRate  float64
	TenantBurst int

	// AuditPath appends a JSONL audit record per proxied outcome;
	// AuditWriter overrides it (tests). Entries carry Role "frontend" and
	// join with worker entries on the request id in -replay.
	AuditPath   string
	AuditWriter io.Writer

	// Seed drives backoff jitter (0 = time-derived). IDPrefix namespaces
	// the frontend-assigned request ids (default derived from the pid).
	Seed     int64
	IDPrefix string
}

// Normalize fills unset fields with their defaults.
func (c Config) Normalize() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4 * pool.DefaultWorkers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = time.Second
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 2
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
	if c.IDPrefix == "" {
		c.IDPrefix = fmt.Sprintf("fe%d", os.Getpid())
	}
	return c
}

// worker is one replica: its base URL, circuit breaker, and the health
// checker's ejection flag.
type worker struct {
	url     string
	breaker *breaker
	ejected atomic.Bool
}

// Frontend is the stateless routing tier: it holds no instance or plan
// caches, only the routing ring, per-worker breakers, the tenant-fairness
// gates, and its audit log. Losing a frontend loses nothing but open
// connections.
type Frontend struct {
	cfg       Config
	workers   []*worker
	ring      *ring
	rr        atomic.Uint64
	limiter   *server.TenantLimiter
	admission *server.FairQueue
	audit     *server.AuditSink
	client    *http.Client
	backoff   *backoff
	reqSeq    atomic.Uint64
	started   time.Time

	// Lifecycle (mirrors the worker server: ready → draining, with a
	// hard-cancel fanned out to in-flight requests).
	state      atomic.Int32
	hardCtx    context.Context
	hardCancel context.CancelFunc

	// Health checker plumbing.
	healthCancel context.CancelFunc
	healthDone   chan struct{}

	// latEWMA holds math.Float64bits of the served-latency EWMA (ms).
	latEWMA atomic.Uint64

	// Counters (atomics: /stats reads them while handlers write).
	explainReqs   atomic.Int64
	gradeReqs     atomic.Int64
	served        atomic.Int64
	retries       atomic.Int64
	hedges        atomic.Int64
	failOpen      atomic.Int64
	unavailable   atomic.Int64
	budgetLocal   atomic.Int64
	shed          atomic.Int64
	drainRefused  atomic.Int64
	rateLimited   atomic.Int64
	ejections     atomic.Int64
	readmissions  atomic.Int64
	panicsCovered atomic.Int64
	inFlight      atomic.Int64
	waiting       atomic.Int64
}

// New builds a Frontend and starts its health checker. It fails on an
// empty worker set or an unopenable audit path.
func New(cfg Config) (*Frontend, error) {
	cfg = cfg.Normalize()
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster frontend needs at least one worker")
	}
	urls := make([]string, len(cfg.Workers))
	for i, u := range cfg.Workers {
		urls[i] = normalizeWorkerURL(u)
	}
	audit, err := server.NewAuditSink(cfg.AuditPath, cfg.AuditWriter)
	if err != nil {
		return nil, err
	}
	hardCtx, hardCancel := context.WithCancel(context.Background())
	f := &Frontend{
		cfg:       cfg,
		ring:      newRing(urls),
		limiter:   server.NewTenantLimiter(cfg.TenantRate, cfg.TenantBurst),
		admission: server.NewFairQueue(cfg.MaxConcurrent),
		audit:     audit,
		backoff:   newBackoff(cfg.BackoffBase, cfg.BackoffCap, cfg.Seed),
		started:   time.Now(),
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     30 * time.Second,
		}},
		hardCtx:    hardCtx,
		hardCancel: hardCancel,
	}
	for _, u := range urls {
		f.workers = append(f.workers, &worker{
			url:     u,
			breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		})
	}
	f.startHealth()
	return f, nil
}

func normalizeWorkerURL(u string) string {
	u = strings.TrimRight(strings.TrimSpace(u), "/")
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}

// Handler returns the frontend's HTTP routing table, panic-isolated like
// the worker server's.
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/explain", f.wrap("/explain", func(w http.ResponseWriter, r *http.Request) {
		f.explainReqs.Add(1)
		f.proxy(w, r, "/explain")
	}))
	mux.HandleFunc("/grade", f.wrap("/grade", func(w http.ResponseWriter, r *http.Request) {
		f.gradeReqs.Add(1)
		f.proxy(w, r, "/grade")
	}))
	mux.HandleFunc("/healthz", f.wrap("/healthz", f.handleHealthz))
	mux.HandleFunc("/stats", f.wrap("/stats", f.handleStats))
	return mux
}

func (f *Frontend) wrap(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				f.panicsCovered.Add(1)
				f.audit.Append(&server.AuditEntry{
					Role:       server.RoleFrontend,
					Endpoint:   endpoint,
					HTTPStatus: http.StatusInternalServerError,
					Status:     server.StatusError,
					Error:      "panic recovered in frontend handler",
					Panic:      fmt.Sprint(rec),
					Stack:      string(debug.Stack()),
				})
				writeJSON(w, http.StatusInternalServerError, &server.ExplainResponse{
					Status: server.StatusError,
					Error:  fmt.Sprintf("internal error (recovered): %v", rec),
				})
			}
		}()
		h(w, r)
	}
}

// proxy is the full frontend request path: fairness gates, routing,
// resilient forwarding, response relay, audit.
func (f *Frontend) proxy(w http.ResponseWriter, r *http.Request, path string) {
	start := time.Now()
	if r.Method != http.MethodPost {
		f.refuse(w, nil, path, "", "", http.StatusMethodNotAllowed, server.StatusError, 0,
			fmt.Sprintf("%s requires POST", path), start)
		return
	}
	payload, err := io.ReadAll(http.MaxBytesReader(w, r.Body, f.cfg.MaxBodyBytes))
	if err != nil {
		f.refuse(w, nil, path, "", "", http.StatusBadRequest, server.StatusError, 0,
			fmt.Sprintf("reading request body: %v", err), start)
		return
	}
	// The frontend peeks at just the routing- and fairness-relevant fields;
	// full validation (unknown fields, required fields) is the worker's job
	// so the two tiers cannot disagree about what a valid request is.
	var probe struct {
		Tenant    string              `json:"tenant"`
		TimeoutMS int64               `json:"timeout_ms"`
		Instance  server.InstanceSpec `json:"instance"`
	}
	_ = json.Unmarshal(payload, &probe)
	tenant := server.TenantOf(probe.Tenant, r.Header.Get("X-Tenant"))

	// Lifecycle gate.
	if f.Draining() {
		f.drainRefused.Add(1)
		f.refuse(w, payload, path, tenant, "", http.StatusServiceUnavailable, server.StatusDraining,
			f.retryAfterS(), "frontend is draining; retry against another frontend", start)
		return
	}
	// Tenant fairness, enforced exactly once for the whole cluster.
	if ok, wait := f.limiter.Allow(tenant, time.Now()); !ok {
		f.rateLimited.Add(1)
		f.shed.Add(1)
		f.refuse(w, payload, path, tenant, "", http.StatusTooManyRequests, server.StatusShed,
			int(wait/time.Second)+1, fmt.Sprintf("tenant %q is over its request rate; retry later", tenant), start)
		return
	}

	budget := f.budget(probe.TimeoutMS)
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()
	unbind := context.AfterFunc(f.hardCtx, cancel)
	defer unbind()

	f.waiting.Add(1)
	admitted := f.admission.Acquire(ctx, tenant)
	f.waiting.Add(-1)
	if !admitted {
		f.budgetLocal.Add(1)
		f.refuse(w, payload, path, tenant, "", http.StatusOK, server.StatusBudgetExceeded, 0,
			fmt.Sprintf("request spent its %v budget queued for admission", budget), start)
		return
	}
	f.inFlight.Add(1)
	defer func() {
		f.inFlight.Add(-1)
		f.admission.Release()
	}()

	reqID := fmt.Sprintf("%s-%06d", f.cfg.IDPrefix, f.reqSeq.Add(1))
	order := f.route(path, probe.Instance)
	res, attempts := f.forward(ctx, order, path, payload, tenant, reqID)
	if attempts > 1 {
		f.retries.Add(int64(attempts - 1))
	}

	switch {
	case res.outcome == outcomeFinal:
		f.serve(w, res, path, payload, tenant, reqID, attempts, start)
	case ctx.Err() != nil:
		// The budget ran out mid-failover: same structured outcome as a
		// worker-side budget expiry, so clients see one shape either way.
		f.budgetLocal.Add(1)
		f.refuse(w, payload, path, tenant, reqID, http.StatusOK, server.StatusBudgetExceeded, 0,
			fmt.Sprintf("request budget elapsed after %d attempt(s): %v", attempts, res.err), start)
	default:
		f.unavailable.Add(1)
		detail := "no worker replica available"
		if res.err != nil {
			detail = res.err.Error()
		}
		f.refuse(w, payload, path, tenant, reqID, http.StatusServiceUnavailable, server.StatusUnavailable,
			f.retryAfterS(), fmt.Sprintf("all %d attempt(s) failed; last: %s", attempts, detail), start)
	}
}

// route returns the candidate worker order for a request: ring successors
// of the instance cache key for shareable instances (cache affinity +
// deterministic failover), round-robin for request-private inline
// instances. The order is extended cyclically so MaxAttempts can exceed
// the replica count — transient faults on a small cluster retry on the
// same worker rather than giving up.
func (f *Frontend) route(path string, spec server.InstanceSpec) []int {
	key := spec.CacheKey()
	if key == "" && path == "/grade" && spec.Kind == "" {
		// grade defaults an empty instance to the course workload; route by
		// the same default so all default-instance grading shares one owner.
		key = (server.InstanceSpec{Kind: "course", Size: 1000, Seed: 1}).CacheKey()
	}
	n := len(f.workers)
	var base []int
	if key != "" {
		base = f.ring.successors(key)
	} else {
		start := int(f.rr.Add(1)-1) % n
		for i := 0; i < n; i++ {
			base = append(base, (start+i)%n)
		}
	}
	order := make([]int, 0, f.cfg.MaxAttempts)
	for i := 0; len(order) < f.cfg.MaxAttempts; i++ {
		order = append(order, base[i%len(base)])
	}
	return order
}

// pick chooses the next candidate from order[*next:]: the first worker
// that is neither health-ejected nor breaker-denied. When every remaining
// candidate is rejected the frontend fails open to the next one in order —
// with the whole cluster marked bad, refusing to try anything would turn a
// partial outage into a total one.
func (f *Frontend) pick(order []int, next *int) int {
	now := time.Now()
	for i := *next; i < len(order); i++ {
		wi := order[i]
		wk := f.workers[wi]
		if wk.ejected.Load() || !wk.breaker.allow(now) {
			continue
		}
		order[i], order[*next] = order[*next], order[i]
		*next++
		return wi
	}
	if *next < len(order) {
		wi := order[*next]
		*next++
		f.failOpen.Add(1)
		return wi
	}
	return -1
}

// forward drives the attempt loop: launch a try, race its result against
// the hedge timer and the request deadline, back off between sequential
// retries, and return the first final result (or the last retryable one
// when attempts/budget run out).
func (f *Frontend) forward(ctx context.Context, order []int, path string, payload []byte, tenant, reqID string) (tryResult, int) {
	deadline, _ := ctx.Deadline()
	resCh := make(chan tryResult, f.cfg.MaxAttempts+1)
	attempts, next, outstanding := 0, 0, 0

	launch := func() bool {
		if attempts >= f.cfg.MaxAttempts {
			return false
		}
		perTry := f.perTry(deadline)
		if perTry <= 0 {
			return false
		}
		wi := f.pick(order, &next)
		if wi < 0 {
			return false
		}
		attempts++
		a := attempts
		pool.Go(func() {
			resCh <- f.try(ctx, wi, path, payload, tenant, reqID, a, perTry)
		}, nil)
		outstanding++
		return true
	}

	if !launch() {
		return tryResult{err: fmt.Errorf("no worker replica admissible")}, attempts
	}

	// Arm the hedge only when the budget could absorb a second pass.
	var hedgeC <-chan time.Time
	if d := f.hedgeDelay(); d > 0 && f.cfg.MaxAttempts > 1 && time.Until(deadline) > 2*d {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}

	var last tryResult
	for {
		select {
		case res := <-resCh:
			outstanding--
			if res.outcome == outcomeFinal {
				return res, attempts
			}
			last = res
			if outstanding > 0 {
				continue // a hedge partner is still running; wait it out
			}
			if ctx.Err() != nil || attempts >= f.cfg.MaxAttempts {
				return last, attempts
			}
			if err := sleep(ctx, f.backoff.delay(attempts)); err != nil {
				return last, attempts
			}
			if !launch() {
				return last, attempts
			}
		case <-hedgeC:
			hedgeC = nil
			if outstanding == 1 && launch() {
				f.hedges.Add(1)
			}
		case <-ctx.Done():
			// Outstanding tries see the same cancellation and drain into the
			// buffered channel; nothing leaks.
			return last, attempts
		}
	}
}

// perTry derives one attempt's deadline from the remaining budget,
// optionally capped by TryTimeout.
func (f *Frontend) perTry(deadline time.Time) time.Duration {
	remaining := time.Until(deadline)
	if f.cfg.TryTimeout > 0 && f.cfg.TryTimeout < remaining {
		return f.cfg.TryTimeout
	}
	return remaining
}

// hedgeDelay returns how long the first attempt may run before hedging
// (0 disables). The adaptive default is twice the served-latency EWMA: a
// request beyond 2× typical is a straggler worth covering.
func (f *Frontend) hedgeDelay() time.Duration {
	if f.cfg.HedgeAfter < 0 {
		return 0
	}
	if f.cfg.HedgeAfter > 0 {
		return f.cfg.HedgeAfter
	}
	ewma := f.latency()
	if ewma <= 0 {
		return f.cfg.DefaultTimeout / 10
	}
	d := time.Duration(2 * ewma * float64(time.Millisecond))
	if d < 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	return d
}

// serve relays a final worker response to the client and audits it.
func (f *Frontend) serve(w http.ResponseWriter, res tryResult, path string, payload []byte, tenant, reqID string, attempts int, start time.Time) {
	f.served.Add(1)
	elapsed := msSince(start)
	f.observeLatency(elapsed)

	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set(server.HeaderRequestID, reqID)
	h.Set(server.HeaderAttempt, strconv.Itoa(attempts))
	if res.degraded != "" {
		h.Set(server.HeaderDegraded, res.degraded)
	}
	if res.retryAfter != "" {
		h.Set("Retry-After", res.retryAfter)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)

	// Project the worker's structured response into the frontend audit
	// entry; its deterministic fields are what -replay join-verifies
	// against the worker's own entry for the same request id.
	var parsed struct {
		Status         string         `json:"status"`
		Grade          string         `json:"grade"`
		Degraded       string         `json:"degraded"`
		Error          string         `json:"error"`
		Counterexample *server.CEJSON `json:"counterexample"`
	}
	_ = json.Unmarshal(res.body, &parsed)
	e := &server.AuditEntry{
		Role:       server.RoleFrontend,
		Endpoint:   path,
		Tenant:     tenant,
		RequestID:  reqID,
		Attempt:    attempts,
		Worker:     f.workers[res.worker].url,
		HTTPStatus: res.status,
		Status:     parsed.Status,
		Grade:      parsed.Grade,
		Degraded:   parsed.Degraded,
		Error:      parsed.Error,
		ElapsedMS:  elapsed,
	}
	if ce := parsed.Counterexample; ce != nil {
		e.CESize = ce.Size
		e.CEIDs = ce.IDs
		e.Witness = ce.Witness
	}
	attachRequest(e, path, payload)
	f.audit.Append(e)
}

// refuse writes a frontend-originated structured response (drain, shed,
// local budget expiry, unavailability, malformed transport) and audits it.
func (f *Frontend) refuse(w http.ResponseWriter, payload []byte, path, tenant, reqID string, httpStatus int, status string, retryAfterS int, errMsg string, start time.Time) {
	elapsed := msSince(start)
	if retryAfterS > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterS))
	}
	if reqID != "" {
		w.Header().Set(server.HeaderRequestID, reqID)
	}
	writeJSON(w, httpStatus, &server.ExplainResponse{
		Status:      status,
		RetryAfterS: retryAfterS,
		ElapsedMS:   elapsed,
		Error:       errMsg,
	})
	e := &server.AuditEntry{
		Role:       server.RoleFrontend,
		Endpoint:   path,
		Tenant:     tenant,
		RequestID:  reqID,
		HTTPStatus: httpStatus,
		Status:     status,
		Error:      errMsg,
		ElapsedMS:  elapsed,
	}
	attachRequest(e, path, payload)
	f.audit.Append(e)
}

// attachRequest parses the raw payload back into the typed request so the
// frontend's audit entries are self-contained for replay (a frontend log
// alone can still be re-run when the worker logs are lost).
func attachRequest(e *server.AuditEntry, path string, payload []byte) {
	if len(payload) == 0 {
		return
	}
	if path == "/grade" {
		var gr server.GradeRequest
		if json.Unmarshal(payload, &gr) == nil {
			e.GradeRequest = &gr
		}
		return
	}
	var er server.ExplainRequest
	if json.Unmarshal(payload, &er) == nil {
		e.Request = &er
	}
}

// budget clamps a requested timeout to the frontend's bounds.
func (f *Frontend) budget(timeoutMS int64) time.Duration {
	d := f.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > f.cfg.MaxTimeout {
		d = f.cfg.MaxTimeout
	}
	return d
}

// Latency EWMA (α=0.2), CAS on the float bits — same scheme as the worker
// server's degradation signal.
func (f *Frontend) observeLatency(ms float64) {
	const alpha = 0.2
	for {
		old := f.latEWMA.Load()
		cur := math.Float64frombits(old)
		next := ms
		if old != 0 {
			next = alpha*ms + (1-alpha)*cur
		}
		if f.latEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

func (f *Frontend) latency() float64 { return math.Float64frombits(f.latEWMA.Load()) }

// retryAfterS estimates when retrying is worthwhile from the latency EWMA
// and queue depth, mirroring the worker server's adaptive Retry-After.
func (f *Frontend) retryAfterS() int {
	ewma := f.latency()
	if ewma <= 0 {
		ewma = float64(f.cfg.DefaultTimeout.Milliseconds()) / 4
	}
	waiting := float64(f.waiting.Load())
	s := int(math.Ceil(ewma * (waiting + 1) / float64(f.cfg.MaxConcurrent) / 1000))
	if s < 1 {
		return 1
	}
	if s > 60 {
		return 60
	}
	return s
}

// Lifecycle. A frontend is born ready; BeginDrain moves it to draining
// (new requests get 503 + Retry-After, in-flight proxies finish),
// CancelInFlight budget-cancels stragglers, Close stops the health
// checker and closes the audit log.
const (
	stateReady int32 = iota
	stateDraining
)

// StateName reports the lifecycle state for /healthz and /stats.
func (f *Frontend) StateName() string {
	if f.state.Load() == stateDraining {
		return "draining"
	}
	return "ready"
}

// Draining reports whether the frontend has stopped admitting work.
func (f *Frontend) Draining() bool { return f.state.Load() == stateDraining }

// BeginDrain stops admitting new requests; in-flight proxies keep their
// budgets. Safe to call more than once.
func (f *Frontend) BeginDrain() { f.state.Store(stateDraining) }

// CancelInFlight budget-cancels every in-flight proxied request.
func (f *Frontend) CancelInFlight() { f.hardCancel() }

// InFlight reports currently proxied requests (drain sequencing).
func (f *Frontend) InFlight() int64 { return f.inFlight.Load() }

// Close stops the health checker and closes the audit log. Call after the
// HTTP listener has shut down.
func (f *Frontend) Close() error {
	if f.healthCancel != nil {
		f.healthCancel()
		<-f.healthDone
	}
	return f.audit.Close()
}

func (f *Frontend) handleHealthz(w http.ResponseWriter, r *http.Request) {
	state := f.StateName()
	var ws []map[string]any
	for _, wk := range f.workers {
		ws = append(ws, map[string]any{
			"url":     wk.url,
			"breaker": wk.breaker.stateName(),
			"ejected": wk.ejected.Load(),
		})
	}
	body := map[string]any{
		"status":   "ok",
		"role":     "frontend",
		"state":    state,
		"workers":  ws,
		"uptime_s": time.Since(f.started).Seconds(),
	}
	code := http.StatusOK
	if state == "draining" {
		body["status"] = "draining"
		if r.URL.Query().Get("probe") != "live" {
			code = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, code, body)
}

func (f *Frontend) handleStats(w http.ResponseWriter, r *http.Request) {
	auditSeq, auditDropped := f.audit.Counters()
	breakers := map[string]string{}
	ejected := map[string]bool{}
	for _, wk := range f.workers {
		breakers[wk.url] = wk.breaker.stateName()
		ejected[wk.url] = wk.ejected.Load()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"role":     "frontend",
		"uptime_s": time.Since(f.started).Seconds(),
		"state":    f.StateName(),
		"requests": map[string]int64{
			"explain": f.explainReqs.Load(),
			"grade":   f.gradeReqs.Load(),
		},
		"responses": map[string]int64{
			"served":          f.served.Load(),
			"unavailable":     f.unavailable.Load(),
			"budget_exceeded": f.budgetLocal.Load(),
			"shed":            f.shed.Load(),
			"draining":        f.drainRefused.Load(),
		},
		"resilience": map[string]int64{
			"retries":          f.retries.Load(),
			"hedges":           f.hedges.Load(),
			"fail_open_picks":  f.failOpen.Load(),
			"ejections":        f.ejections.Load(),
			"readmissions":     f.readmissions.Load(),
			"rate_limited":     f.rateLimited.Load(),
			"panics_recovered": f.panicsCovered.Load(),
		},
		"breakers": breakers,
		"ejected":  ejected,
		"admission": map[string]int64{
			"limit":     int64(f.cfg.MaxConcurrent),
			"in_flight": f.inFlight.Load(),
			"waiting":   f.waiting.Load(),
		},
		"latency_ewma_ms": f.latency(),
		"audit": map[string]int64{
			"entries": auditSeq,
			"dropped": auditDropped,
		},
	})
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Microseconds()) / 1000 }
