// Package cluster is the stateless frontend of a sharded ratestd
// deployment: it terminates client requests, enforces tenant fairness
// exactly once, and routes /explain and /grade to a fixed set of worker
// replicas (plain ratestd processes) behind a resilience layer, so that
// worker crashes, stalls and partitions never surface to students as
// anything but a structured response.
//
// # Routing
//
// Requests naming a generated (course/TPC-H) instance are routed by
// consistent hash of the instance cache key, so each instance — and the
// plan-LRU entries keyed against it — stays hot on one stable owner
// instead of being regenerated on every replica. Requests carrying inline
// instances are request-private on any worker and route round-robin.
// Failover follows the ring: attempt k goes to the k-th distinct successor
// of the owner.
//
// # Resilience
//
// Every attempt runs under a per-try timeout derived from the request's
// remaining budget. Safe failures — connection errors, 503 draining,
// worker panic 500s, truncated/unparseable responses, per-try timeouts —
// are retried on the next replica with exponential backoff and full
// jitter; 200s (including budget_exceeded) and 429 shed are final and
// never retried. Each worker has a circuit breaker (closed → open after
// consecutive failures → half-open single-probe after a cooldown), an
// active health checker probes readiness and ejects/readmits outliers,
// and a budget-aware hedged second attempt covers stragglers: when the
// first try exceeds a latency-EWMA-derived delay and enough budget
// remains, a second try starts on another replica and the first result
// wins.
//
// The frontend itself keeps the PR 8 serving guarantees: panic-isolated
// handlers, drain on SIGTERM (503 + Retry-After, in-flight requests
// finish, stragglers budget-cancel), structured errors for every outcome,
// and an audit log whose entries join with the workers' logs on the
// frontend-assigned X-Ratest-Request-Id for cluster-wide replay
// verification (ratestd -replay frontend.jsonl,worker1.jsonl,...).
//
// Fault injection: the transport threads every proxied request through
// the faults package's network points (cluster.dial, cluster.body,
// cluster.truncate), so the seeded chaos machinery drives the whole
// frontend→worker path. See docs/OPERATIONS.md for the topology runbook.
package cluster
