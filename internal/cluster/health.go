package cluster

import (
	"context"
	"io"
	"net/http"
	"time"

	"repro/internal/pool"
)

// Active health checking: a background loop probes every worker's
// readiness endpoint each HealthInterval. EjectAfter consecutive failures
// eject the worker from routing entirely — unlike the breaker, which is
// fed by (and costs) real requests, ejection is decided on probe traffic
// alone, so a dead worker stops receiving even breaker half-open probes.
// ReadmitAfter consecutive successes re-admit it and reset its breaker,
// giving a restarted worker a clean slate. A draining worker fails its
// readiness probe (503) by design, so drain leads to ejection and the
// frontend stops routing there well before the process exits.
func (f *Frontend) startHealth() {
	if f.cfg.HealthInterval < 0 {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	f.healthCancel = cancel
	f.healthDone = make(chan struct{})
	pool.Go(func() {
		defer close(f.healthDone)
		t := time.NewTicker(f.cfg.HealthInterval)
		defer t.Stop()
		fails := make([]int, len(f.workers))
		oks := make([]int, len(f.workers))
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
			for i, wk := range f.workers {
				if f.probe(ctx, wk.url) {
					fails[i] = 0
					oks[i]++
					if wk.ejected.Load() && oks[i] >= f.cfg.ReadmitAfter {
						wk.ejected.Store(false)
						wk.breaker.reset()
						f.readmissions.Add(1)
					}
				} else {
					oks[i] = 0
					fails[i]++
					if !wk.ejected.Load() && fails[i] >= f.cfg.EjectAfter {
						wk.ejected.Store(true)
						f.ejections.Add(1)
					}
				}
			}
		}
	}, nil)
}

// probe runs one readiness check: 200 from GET /healthz means the worker
// is up and not draining.
func (f *Frontend) probe(ctx context.Context, url string) bool {
	pctx, cancel := context.WithTimeout(ctx, f.cfg.HealthInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
