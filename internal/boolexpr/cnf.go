package boolexpr

import (
	"fmt"
	"sort"
)

// CNFBuilder accumulates clauses in the DIMACS-style convention used by the
// SAT solver: variables are positive integers, a literal is +v or -v, a
// clause is a list of literals. It maps expression variable ids to SAT
// variables and allocates fresh auxiliary (Tseitin) variables.
type CNFBuilder struct {
	NumVars int
	Clauses [][]int

	varOf  map[int]int // expression var id -> SAT var
	exprOf map[int]int // SAT var -> expression var id (base vars only)
}

// NewCNFBuilder returns an empty builder.
func NewCNFBuilder() *CNFBuilder {
	return &CNFBuilder{varOf: make(map[int]int), exprOf: make(map[int]int)}
}

// VarFor returns the SAT variable representing expression variable id,
// allocating one on first use.
func (b *CNFBuilder) VarFor(id int) int {
	if v, ok := b.varOf[id]; ok {
		return v
	}
	v := b.Fresh()
	b.varOf[id] = v
	b.exprOf[v] = id
	return v
}

// HasVar reports whether expression variable id has been allocated.
func (b *CNFBuilder) HasVar(id int) bool { _, ok := b.varOf[id]; return ok }

// ExprVar maps a SAT variable back to its expression variable id. ok is
// false for auxiliary Tseitin variables.
func (b *CNFBuilder) ExprVar(satVar int) (int, bool) {
	id, ok := b.exprOf[satVar]
	return id, ok
}

// BaseVars returns the SAT variables corresponding to expression variables
// (excluding Tseitin auxiliaries), in ascending order. The order matters:
// it fixes the clause order of downstream encodings (foreign-key
// implications, cardinality bounds), and CDCL search is sensitive to clause
// order — iterating the map directly made witness search nondeterministic
// across runs.
func (b *CNFBuilder) BaseVars() []int {
	out := make([]int, 0, len(b.varOf))
	for _, v := range b.varOf {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Fresh allocates a new SAT variable.
func (b *CNFBuilder) Fresh() int {
	b.NumVars++
	return b.NumVars
}

// AddClause appends a clause.
func (b *CNFBuilder) AddClause(lits ...int) {
	c := make([]int, len(lits))
	copy(c, lits)
	b.Clauses = append(b.Clauses, c)
}

// Assert adds clauses forcing e to be true, using Tseitin transformation
// with memoization over the expression DAG.
func (b *CNFBuilder) Assert(e *Expr) {
	memo := make(map[*Expr]int)
	lit := b.tseitin(e, memo)
	b.AddClause(lit)
}

// AssertImplies adds clauses for (a -> b) where a and b are expression
// variable ids; used for foreign-key constraints (Section 4.3).
func (b *CNFBuilder) AssertImplies(a int, bs []int) {
	clause := make([]int, 0, len(bs)+1)
	clause = append(clause, -b.VarFor(a))
	for _, p := range bs {
		clause = append(clause, b.VarFor(p))
	}
	b.AddClause(clause...)
}

// tseitin returns a literal equivalent to e, adding defining clauses.
func (b *CNFBuilder) tseitin(e *Expr, memo map[*Expr]int) int {
	if lit, ok := memo[e]; ok {
		return lit
	}
	var lit int
	switch e.Op {
	case OpTrue:
		v := b.Fresh()
		b.AddClause(v)
		lit = v
	case OpFalse:
		v := b.Fresh()
		b.AddClause(-v)
		lit = v
	case OpVar:
		lit = b.VarFor(e.X)
	case OpNot:
		lit = -b.tseitin(e.Kids[0], memo)
	case OpAnd:
		kids := make([]int, len(e.Kids))
		for i, k := range e.Kids {
			kids[i] = b.tseitin(k, memo)
		}
		x := b.Fresh()
		long := make([]int, 0, len(kids)+1)
		long = append(long, x)
		for _, k := range kids {
			b.AddClause(-x, k)
			long = append(long, -k)
		}
		b.AddClause(long...)
		lit = x
	case OpOr:
		kids := make([]int, len(e.Kids))
		for i, k := range e.Kids {
			kids[i] = b.tseitin(k, memo)
		}
		x := b.Fresh()
		long := make([]int, 0, len(kids)+1)
		long = append(long, -x)
		for _, k := range kids {
			b.AddClause(x, -k)
			long = append(long, k)
		}
		b.AddClause(long...)
		lit = x
	default:
		panic(fmt.Sprintf("boolexpr: unknown op %d", e.Op))
	}
	memo[e] = lit
	return lit
}
