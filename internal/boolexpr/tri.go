package boolexpr

// TriState is three-valued logic used for partial-assignment evaluation.
type TriState int8

// Three-valued truth values.
const (
	TriFalse   TriState = -1
	TriUnknown TriState = 0
	TriTrue    TriState = 1
)

// Not3 negates a TriState.
func Not3(t TriState) TriState { return -t }

// EvalTri evaluates e under a partial assignment; assign returns TriUnknown
// for unassigned variables. The result is TriUnknown only when the truth
// value genuinely depends on unassigned variables (up to the usual
// three-valued approximation, which never claims True/False incorrectly).
func (e *Expr) EvalTri(assign func(id int) TriState) TriState {
	memo := make(map[*Expr]TriState)
	return evalTriMemo(e, assign, memo)
}

func evalTriMemo(e *Expr, assign func(int) TriState, memo map[*Expr]TriState) TriState {
	if v, ok := memo[e]; ok {
		return v
	}
	var r TriState
	switch e.Op {
	case OpTrue:
		r = TriTrue
	case OpFalse:
		r = TriFalse
	case OpVar:
		r = assign(e.X)
	case OpNot:
		r = Not3(evalTriMemo(e.Kids[0], assign, memo))
	case OpAnd:
		r = TriTrue
		for _, k := range e.Kids {
			v := evalTriMemo(k, assign, memo)
			if v == TriFalse {
				r = TriFalse
				break
			}
			if v == TriUnknown {
				r = TriUnknown
			}
		}
	case OpOr:
		r = TriFalse
		for _, k := range e.Kids {
			v := evalTriMemo(k, assign, memo)
			if v == TriTrue {
				r = TriTrue
				break
			}
			if v == TriUnknown {
				r = TriUnknown
			}
		}
	}
	memo[e] = r
	return r
}
