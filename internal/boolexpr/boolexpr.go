// Package boolexpr implements the Boolean how-provenance expressions of
// Section 2.3 of the paper: variables annotate base tuples, joins combine
// annotations with conjunction, projections/unions with disjunction, and
// difference contributes negation. It supports evaluation, simplification,
// monotone DNF with absorption (the Theorem 6 algorithm), and Tseitin CNF
// construction for the SAT solver.
package boolexpr

import (
	"fmt"
	"sort"
	"strings"
)

// Op is the node type of an expression.
type Op uint8

// Expression node kinds.
const (
	OpFalse Op = iota
	OpTrue
	OpVar
	OpNot
	OpAnd
	OpOr
)

// Expr is an immutable Boolean expression over integer-identified variables
// (tuple identifiers). Construct with the package functions; shared
// subexpressions are represented by shared pointers, which the algorithms
// exploit via memoization.
type Expr struct {
	Op   Op
	X    int // variable id when Op == OpVar
	Kids []*Expr
}

var (
	trueExpr  = &Expr{Op: OpTrue}
	falseExpr = &Expr{Op: OpFalse}
)

// True returns the constant true expression.
func True() *Expr { return trueExpr }

// False returns the constant false expression.
func False() *Expr { return falseExpr }

// Var returns the expression for variable id.
func Var(id int) *Expr { return &Expr{Op: OpVar, X: id} }

// Not returns the negation of e, simplifying double negation and constants.
func Not(e *Expr) *Expr {
	switch e.Op {
	case OpTrue:
		return falseExpr
	case OpFalse:
		return trueExpr
	case OpNot:
		return e.Kids[0]
	}
	return &Expr{Op: OpNot, Kids: []*Expr{e}}
}

// And returns the conjunction of es, flattening nested conjunctions and
// simplifying constants.
func And(es ...*Expr) *Expr { return nary(OpAnd, es) }

// Or returns the disjunction of es, flattening nested disjunctions and
// simplifying constants.
func Or(es ...*Expr) *Expr { return nary(OpOr, es) }

func nary(op Op, es []*Expr) *Expr {
	identity, absorbing := trueExpr, falseExpr
	if op == OpOr {
		identity, absorbing = falseExpr, trueExpr
	}
	kids := make([]*Expr, 0, len(es))
	for _, e := range es {
		if e == nil || e == identity {
			continue
		}
		if e == absorbing {
			return absorbing
		}
		if e.Op == op {
			kids = append(kids, e.Kids...)
			continue
		}
		kids = append(kids, e)
	}
	switch len(kids) {
	case 0:
		return identity
	case 1:
		return kids[0]
	}
	return &Expr{Op: op, Kids: kids}
}

// IsConst reports whether e is the constant true or false.
func (e *Expr) IsConst() bool { return e.Op == OpTrue || e.Op == OpFalse }

// Eval evaluates e under the assignment, memoizing shared subexpressions.
func (e *Expr) Eval(assign func(id int) bool) bool {
	memo := make(map[*Expr]bool)
	return evalMemo(e, assign, memo)
}

func evalMemo(e *Expr, assign func(int) bool, memo map[*Expr]bool) bool {
	if v, ok := memo[e]; ok {
		return v
	}
	var r bool
	switch e.Op {
	case OpTrue:
		r = true
	case OpFalse:
		r = false
	case OpVar:
		r = assign(e.X)
	case OpNot:
		r = !evalMemo(e.Kids[0], assign, memo)
	case OpAnd:
		r = true
		for _, k := range e.Kids {
			if !evalMemo(k, assign, memo) {
				r = false
				break
			}
		}
	case OpOr:
		r = false
		for _, k := range e.Kids {
			if evalMemo(k, assign, memo) {
				r = true
				break
			}
		}
	}
	memo[e] = r
	return r
}

// Vars returns the sorted set of variable ids occurring in e.
func (e *Expr) Vars() []int {
	set := make(map[int]bool)
	seen := make(map[*Expr]bool)
	var walk func(*Expr)
	walk = func(x *Expr) {
		if seen[x] {
			return
		}
		seen[x] = true
		if x.Op == OpVar {
			set[x.X] = true
		}
		for _, k := range x.Kids {
			walk(k)
		}
	}
	walk(e)
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Size returns the number of nodes in the expression DAG (shared nodes
// counted once).
func (e *Expr) Size() int {
	seen := make(map[*Expr]bool)
	var walk func(*Expr) int
	walk = func(x *Expr) int {
		if seen[x] {
			return 0
		}
		seen[x] = true
		n := 1
		for _, k := range x.Kids {
			n += walk(k)
		}
		return n
	}
	return walk(e)
}

// IsMonotone reports whether e contains no negation.
func (e *Expr) IsMonotone() bool {
	seen := make(map[*Expr]bool)
	var walk func(*Expr) bool
	walk = func(x *Expr) bool {
		if seen[x] {
			return true
		}
		seen[x] = true
		if x.Op == OpNot {
			return false
		}
		for _, k := range x.Kids {
			if !walk(k) {
				return false
			}
		}
		return true
	}
	return walk(e)
}

// String renders the expression with the paper's conventions: conjunction by
// juxtaposition-like "·", disjunction by "+", negation by "¬".
func (e *Expr) String() string {
	switch e.Op {
	case OpTrue:
		return "⊤"
	case OpFalse:
		return "⊥"
	case OpVar:
		return fmt.Sprintf("t%d", e.X)
	case OpNot:
		return "¬" + parenIf(e.Kids[0], OpNot)
	case OpAnd:
		parts := make([]string, len(e.Kids))
		for i, k := range e.Kids {
			parts[i] = parenIf(k, OpAnd)
		}
		return strings.Join(parts, "·")
	case OpOr:
		parts := make([]string, len(e.Kids))
		for i, k := range e.Kids {
			parts[i] = k.String()
		}
		return strings.Join(parts, " + ")
	}
	return "?"
}

func parenIf(e *Expr, ctx Op) string {
	if e.Op == OpOr || (ctx == OpNot && e.Op == OpAnd) {
		return "(" + e.String() + ")"
	}
	return e.String()
}
