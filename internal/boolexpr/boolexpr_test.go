package boolexpr

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func assignFrom(m map[int]bool) func(int) bool {
	return func(id int) bool { return m[id] }
}

func TestConstructorsSimplify(t *testing.T) {
	a, b := Var(1), Var(2)
	if And() != True() {
		t.Error("empty And should be True")
	}
	if Or() != False() {
		t.Error("empty Or should be False")
	}
	if And(a) != a || Or(b) != b {
		t.Error("single-child And/Or should collapse")
	}
	if And(a, False()) != False() {
		t.Error("And with False should be False")
	}
	if Or(a, True()) != True() {
		t.Error("Or with True should be True")
	}
	if Not(Not(a)) != a {
		t.Error("double negation should collapse")
	}
	if Not(True()) != False() || Not(False()) != True() {
		t.Error("constant negation")
	}
	// Flattening.
	e := And(And(a, b), Var(3))
	if e.Op != OpAnd || len(e.Kids) != 3 {
		t.Errorf("And flattening failed: %v", e)
	}
}

func TestEval(t *testing.T) {
	// The running example: Prv(r2) = t1·(t4 + t5)
	e := And(Var(1), Or(Var(4), Var(5)))
	cases := []struct {
		m    map[int]bool
		want bool
	}{
		{map[int]bool{1: true, 4: true}, true},
		{map[int]bool{1: true, 5: true}, true},
		{map[int]bool{1: true}, false},
		{map[int]bool{4: true, 5: true}, false},
	}
	for _, c := range cases {
		if got := e.Eval(assignFrom(c.m)); got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestEvalWithNegation(t *testing.T) {
	// Example 2.1: Prv_{Q2-Q1}(r2) = φ1 · ¬(φ1 · ¬φ2) with
	// φ1 = t1(t4+t5), φ2 = t1 t4 t5 — simplifies to t1 t4 t5.
	phi1 := And(Var(1), Or(Var(4), Var(5)))
	phi2 := And(Var(1), Var(4), Var(5))
	e := And(phi1, Not(And(phi1, Not(phi2))))
	// Should be equivalent to t1 ∧ t4 ∧ t5 on all assignments.
	want := And(Var(1), Var(4), Var(5))
	for mask := 0; mask < 8; mask++ {
		m := map[int]bool{1: mask&1 != 0, 4: mask&2 != 0, 5: mask&4 != 0}
		if e.Eval(assignFrom(m)) != want.Eval(assignFrom(m)) {
			t.Errorf("mismatch at %v", m)
		}
	}
}

func TestVarsAndSize(t *testing.T) {
	e := And(Var(3), Or(Var(1), Var(3)), Not(Var(7)))
	vars := e.Vars()
	want := []int{1, 3, 7}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Errorf("Vars = %v, want %v", vars, want)
		}
	}
	if e.Size() == 0 {
		t.Error("Size should be positive")
	}
}

func TestIsMonotone(t *testing.T) {
	if !And(Var(1), Or(Var(2), Var(3))).IsMonotone() {
		t.Error("positive expr should be monotone")
	}
	if And(Var(1), Not(Var(2))).IsMonotone() {
		t.Error("negated expr is not monotone")
	}
}

func TestMonotoneDNF(t *testing.T) {
	// t1·(t4 + t5) => {t1,t4}, {t1,t5}
	e := And(Var(1), Or(Var(4), Var(5)))
	d, err := MonotoneDNF(e, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 {
		t.Fatalf("DNF = %v", d)
	}
	sm := d.Smallest()
	if len(sm) != 2 {
		t.Errorf("Smallest = %v", sm)
	}
}

func TestMonotoneDNFAbsorption(t *testing.T) {
	// a + a·b should absorb to a.
	e := Or(Var(1), And(Var(1), Var(2)))
	d, err := MonotoneDNF(e, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 1 || len(d[0]) != 1 || d[0][0] != 1 {
		t.Errorf("absorption failed: %v", d)
	}
}

func TestMonotoneDNFRejectsNegation(t *testing.T) {
	if _, err := MonotoneDNF(Not(Var(1)), 10); err == nil {
		t.Error("negation should be rejected")
	}
}

func TestMonotoneDNFBudget(t *testing.T) {
	// (a1+b1)(a2+b2)...(an+bn) has 2^n minterms.
	var kids []*Expr
	for i := 0; i < 20; i++ {
		kids = append(kids, Or(Var(2*i), Var(2*i+1)))
	}
	if _, err := MonotoneDNF(And(kids...), 100); !errors.Is(err, ErrDNFTooLarge) {
		t.Errorf("expected ErrDNFTooLarge, got %v", err)
	}
}

func TestMonotoneDNFEquivalenceProperty(t *testing.T) {
	// DNF must be logically equivalent to the original expression.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		e := randomMonotone(rng, 3, 6)
		d, err := MonotoneDNF(e, 100000)
		if err != nil {
			continue
		}
		for mask := 0; mask < 64; mask++ {
			assign := func(id int) bool { return mask&(1<<id) != 0 }
			dnfVal := false
			for _, m := range d {
				all := true
				for _, v := range m {
					if !assign(v) {
						all = false
						break
					}
				}
				if all {
					dnfVal = true
					break
				}
			}
			if e.Eval(assign) != dnfVal {
				t.Fatalf("trial %d: DNF not equivalent at mask %b\nexpr=%v\ndnf=%v", trial, mask, e, d)
			}
		}
	}
}

func randomMonotone(rng *rand.Rand, depth, nvars int) *Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		return Var(rng.Intn(nvars))
	}
	n := 2 + rng.Intn(2)
	kids := make([]*Expr, n)
	for i := range kids {
		kids[i] = randomMonotone(rng, depth-1, nvars)
	}
	if rng.Intn(2) == 0 {
		return And(kids...)
	}
	return Or(kids...)
}

func TestEvalTri(t *testing.T) {
	e := And(Var(1), Or(Var(2), Var(3)))
	tri := func(m map[int]TriState) TriState {
		return e.EvalTri(func(id int) TriState { return m[id] })
	}
	if got := tri(map[int]TriState{1: TriFalse}); got != TriFalse {
		t.Errorf("t1=false should decide False, got %v", got)
	}
	if got := tri(map[int]TriState{1: TriTrue, 2: TriTrue}); got != TriTrue {
		t.Errorf("t1,t2 true should decide True, got %v", got)
	}
	if got := tri(map[int]TriState{1: TriTrue}); got != TriUnknown {
		t.Errorf("t1 true alone should be Unknown, got %v", got)
	}
	if got := Not(Var(1)).EvalTri(func(int) TriState { return TriUnknown }); got != TriUnknown {
		t.Errorf("¬unknown should be Unknown, got %v", got)
	}
}

func TestEvalTriConsistentWithEval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomMonotone(rng, 3, 5)
		if rng.Intn(2) == 0 {
			e = Not(e)
		}
		m := map[int]bool{}
		for i := 0; i < 5; i++ {
			m[i] = rng.Intn(2) == 0
		}
		tri := e.EvalTri(func(id int) TriState {
			if m[id] {
				return TriTrue
			}
			return TriFalse
		})
		want := TriFalse
		if e.Eval(assignFrom(m)) {
			want = TriTrue
		}
		return tri == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	e := And(Var(1), Or(Var(4), Var(5)))
	s := e.String()
	if s != "t1·(t4 + t5)" {
		t.Errorf("String = %q", s)
	}
	if Not(Var(2)).String() != "¬t2" {
		t.Errorf("Not String = %q", Not(Var(2)).String())
	}
	if True().String() != "⊤" || False().String() != "⊥" {
		t.Error("constant rendering")
	}
}

func TestCNFBuilderTseitinEquisatisfiable(t *testing.T) {
	// For random expressions, every model of the CNF restricted to base
	// vars must satisfy the expression, and if the expression is
	// satisfiable the CNF must be too (checked by brute force).
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		e := randomExpr(rng, 3, 4)
		b := NewCNFBuilder()
		b.Assert(e)

		// Brute-force the CNF over all variables.
		n := b.NumVars
		if n > 16 {
			continue
		}
		cnfSat := false
		var satisfyingBase map[int]bool
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			for _, cl := range b.Clauses {
				cok := false
				for _, l := range cl {
					v := l
					if v < 0 {
						v = -v
					}
					val := mask&(1<<(v-1)) != 0
					if (l > 0) == val {
						cok = true
						break
					}
				}
				if !cok {
					ok = false
					break
				}
			}
			if ok {
				cnfSat = true
				satisfyingBase = map[int]bool{}
				for id := 0; id < 4; id++ {
					if b.HasVar(id) {
						v := b.VarFor(id)
						satisfyingBase[id] = mask&(1<<(v-1)) != 0
					}
				}
				break
			}
		}
		// Brute-force the expression.
		exprSat := false
		for mask := 0; mask < 16; mask++ {
			if e.Eval(func(id int) bool { return mask&(1<<id) != 0 }) {
				exprSat = true
				break
			}
		}
		if cnfSat != exprSat {
			t.Fatalf("trial %d: CNF sat=%v, expr sat=%v for %v", trial, cnfSat, exprSat, e)
		}
		if cnfSat {
			if !e.Eval(assignFrom(satisfyingBase)) {
				t.Fatalf("trial %d: CNF model does not satisfy expr %v (base=%v)", trial, e, satisfyingBase)
			}
		}
	}
}

func randomExpr(rng *rand.Rand, depth, nvars int) *Expr {
	if depth == 0 || rng.Intn(4) == 0 {
		v := Var(rng.Intn(nvars))
		if rng.Intn(2) == 0 {
			return Not(v)
		}
		return v
	}
	n := 2 + rng.Intn(2)
	kids := make([]*Expr, n)
	for i := range kids {
		kids[i] = randomExpr(rng, depth-1, nvars)
	}
	switch rng.Intn(3) {
	case 0:
		return And(kids...)
	case 1:
		return Or(kids...)
	default:
		return Not(And(kids...))
	}
}

func TestCNFBuilderImplies(t *testing.T) {
	b := NewCNFBuilder()
	b.Assert(Var(10))
	b.AssertImplies(10, []int{20})
	// Clauses: root(var10), (¬v10 ∨ v20).
	v10, v20 := b.VarFor(10), b.VarFor(20)
	found := false
	for _, cl := range b.Clauses {
		if len(cl) == 2 && ((cl[0] == -v10 && cl[1] == v20) || (cl[1] == -v10 && cl[0] == v20)) {
			found = true
		}
	}
	if !found {
		t.Error("implication clause missing")
	}
	if _, ok := b.ExprVar(v10); !ok {
		t.Error("ExprVar should map base var")
	}
	if len(b.BaseVars()) != 2 {
		t.Errorf("BaseVars = %v", b.BaseVars())
	}
}
