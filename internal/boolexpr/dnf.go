package boolexpr

import (
	"errors"
	"sort"
)

// ErrDNFTooLarge is returned when DNF construction exceeds the term budget.
var ErrDNFTooLarge = errors.New("boolexpr: DNF exceeds term budget")

// Minterm is a conjunction of variables (a monotone DNF term), stored as a
// sorted, duplicate-free slice of variable ids.
type Minterm []int

// DNF is a disjunction of minterms.
type DNF []Minterm

// MonotoneDNF converts a negation-free expression to DNF with absorption
// (supersets of other minterms are dropped). maxTerms bounds the number of
// terms kept at any point during construction; exceeding it returns
// ErrDNFTooLarge. This realizes the Theorem 6 algorithm: for bounded-size
// SPJU queries the DNF is polynomial and its smallest minterm is the
// smallest witness.
func MonotoneDNF(e *Expr, maxTerms int) (DNF, error) {
	if !e.IsMonotone() {
		return nil, errors.New("boolexpr: MonotoneDNF requires a negation-free expression")
	}
	memo := make(map[*Expr]DNF)
	return dnfRec(e, maxTerms, memo)
}

func dnfRec(e *Expr, maxTerms int, memo map[*Expr]DNF) (DNF, error) {
	if d, ok := memo[e]; ok {
		return d, nil
	}
	var out DNF
	switch e.Op {
	case OpFalse:
		out = DNF{}
	case OpTrue:
		out = DNF{Minterm{}}
	case OpVar:
		out = DNF{Minterm{e.X}}
	case OpOr:
		acc := DNF{}
		for _, k := range e.Kids {
			d, err := dnfRec(k, maxTerms, memo)
			if err != nil {
				return nil, err
			}
			acc = append(acc, d...)
			if len(acc) > 4*maxTerms {
				acc = absorb(acc)
				if len(acc) > maxTerms {
					return nil, ErrDNFTooLarge
				}
			}
		}
		out = absorb(acc)
	case OpAnd:
		acc := DNF{Minterm{}}
		for _, k := range e.Kids {
			d, err := dnfRec(k, maxTerms, memo)
			if err != nil {
				return nil, err
			}
			next := make(DNF, 0, len(acc)*len(d))
			for _, a := range acc {
				for _, b := range d {
					next = append(next, mergeMinterm(a, b))
					if len(next) > 4*maxTerms {
						next = absorb(next)
						if len(next) > maxTerms {
							return nil, ErrDNFTooLarge
						}
					}
				}
			}
			acc = absorb(next)
		}
		out = acc
	default:
		return nil, errors.New("boolexpr: unexpected negation in monotone DNF")
	}
	if len(out) > maxTerms {
		return nil, ErrDNFTooLarge
	}
	memo[e] = out
	return out, nil
}

func mergeMinterm(a, b Minterm) Minterm {
	out := make(Minterm, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// absorb removes minterms that are supersets of other minterms, and exact
// duplicates.
func absorb(d DNF) DNF {
	sort.Slice(d, func(i, j int) bool {
		if len(d[i]) != len(d[j]) {
			return len(d[i]) < len(d[j])
		}
		return lessInts(d[i], d[j])
	})
	kept := make(DNF, 0, len(d))
	for _, m := range d {
		sub := false
		for _, k := range kept {
			if isSubset(k, m) {
				sub = true
				break
			}
		}
		if !sub {
			kept = append(kept, m)
		}
	}
	return kept
}

func isSubset(a, b Minterm) bool {
	if len(a) > len(b) {
		return false
	}
	i := 0
	for _, x := range b {
		if i < len(a) && a[i] == x {
			i++
		}
	}
	return i == len(a)
}

func lessInts(a, b []int) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Smallest returns the minterm with the fewest variables, or nil for an
// empty (unsatisfiable) DNF.
func (d DNF) Smallest() Minterm {
	var best Minterm
	for _, m := range d {
		if best == nil || len(m) < len(best) {
			best = m
		}
	}
	return best
}
