package tpch

import (
	"fmt"

	"repro/internal/ra"
	"repro/internal/raparser"
)

// QuerySet is a benchmark query with its correct RA form and two wrong
// variants, mirroring the paper's setup ("we intentionally made two wrong
// queries for each query, of which the errors include different selection
// conditions, incorrect use of difference, and incorrect position of
// projection").
type QuerySet struct {
	Name    string
	Correct ra.Node
	Wrong   []ra.Node
}

// Q4 is the order-priority-checking query: per order priority, the number
// of orders placed in a 3-month window with at least one lineitem received
// after its commit date.
func Q4() QuerySet {
	correct := raparser.MustParse(`
		groupby[o_orderpriority; count(*) -> order_count](
			project[o_orderkey, o_orderpriority](
				select[o_orderdate >= 820 and o_orderdate < 910](orders)
				join[o_orderkey = l_orderkey]
				project[l_orderkey](select[l_commitdate < l_receiptdate](lineitem))))`)
	// W1: different selection condition — forgets the lateness filter, so
	// every order with any lineitem counts.
	w1 := raparser.MustParse(`
		groupby[o_orderpriority; count(*) -> order_count](
			project[o_orderkey, o_orderpriority](
				select[o_orderdate >= 820 and o_orderdate < 910](orders)
				join[o_orderkey = l_orderkey]
				project[l_orderkey](lineitem)))`)
	// W2: wrong comparison direction on the lateness filter.
	w2 := raparser.MustParse(`
		groupby[o_orderpriority; count(*) -> order_count](
			project[o_orderkey, o_orderpriority](
				select[o_orderdate >= 820 and o_orderdate < 910](orders)
				join[o_orderkey = l_orderkey]
				project[l_orderkey](select[l_commitdate > l_receiptdate](lineitem))))`)
	return QuerySet{Name: "Q4", Correct: correct, Wrong: []ra.Node{w1, w2}}
}

// Q16 is the parts/supplier relationship query: per (brand, type, size),
// the number of distinct suppliers that can supply such parts, excluding a
// brand and suppliers with complaints. Set semantics makes count(...) a
// distinct count.
func Q16() QuerySet {
	inner := `project[p_brand, p_type, p_size, ps_suppkey](
		select[p_brand <> 'Brand#11' and p_size <= 25](part)
		join[p_partkey = ps_partkey] partsupp)`
	bad := `project[p_brand, p_type, p_size, ps_suppkey](
		(select[p_brand <> 'Brand#11' and p_size <= 25](part)
		 join[p_partkey = ps_partkey] partsupp)
		join[ps_suppkey = s_suppkey]
		project[s_suppkey](select[s_comment = 'Customer Complaints'](supplier)))`
	correct := raparser.MustParse(fmt.Sprintf(
		`groupby[p_brand, p_type, p_size; count(ps_suppkey) -> supplier_cnt]((%s) diff (%s))`, inner, bad))
	// W1: incorrect use of difference — forgets to exclude complaint
	// suppliers.
	w1 := raparser.MustParse(fmt.Sprintf(
		`groupby[p_brand, p_type, p_size; count(ps_suppkey) -> supplier_cnt](%s)`, inner))
	// W2: different selection condition — excludes the wrong brand.
	innerWrong := `project[p_brand, p_type, p_size, ps_suppkey](
		select[p_brand <> 'Brand#21' and p_size <= 25](part)
		join[p_partkey = ps_partkey] partsupp)`
	w2 := raparser.MustParse(fmt.Sprintf(
		`groupby[p_brand, p_type, p_size; count(ps_suppkey) -> supplier_cnt]((%s) diff (%s))`, innerWrong, bad))
	return QuerySet{Name: "Q16", Correct: correct, Wrong: []ra.Node{w1, w2}}
}

// Q18 is the large-volume-customer query: customers and orders whose total
// lineitem quantity exceeds a threshold (the HAVING predicate the
// parameterization experiment of Figure 7 targets).
func Q18() QuerySet {
	correct := raparser.MustParse(`
		select[total_qty > 150](
			groupby[c_name, o_orderkey; sum(l_quantity) -> total_qty](
				project[c_name, o_orderkey, l_quantity, l_linenumber](
					customer join[c_custkey = o_custkey] orders
					join[o_orderkey = l_orderkey] lineitem)))`)
	// W1: different selection condition — only counts bulk lineitems, so
	// totals are under-reported.
	w1 := raparser.MustParse(`
		select[total_qty > 150](
			groupby[c_name, o_orderkey; sum(l_quantity) -> total_qty](
				project[c_name, o_orderkey, l_quantity, l_linenumber](
					customer join[c_custkey = o_custkey] orders
					join[o_orderkey = l_orderkey] select[l_quantity >= 10](lineitem))))`)
	// W2: restricts to finished orders — drops open orders from the total.
	w2 := raparser.MustParse(`
		select[total_qty > 150](
			groupby[c_name, o_orderkey; sum(l_quantity) -> total_qty](
				project[c_name, o_orderkey, l_quantity, l_linenumber](
					customer join[c_custkey = o_custkey] select[o_orderstatus = 'F'](orders)
					join[o_orderkey = l_orderkey] lineitem)))`)
	return QuerySet{Name: "Q18", Correct: correct, Wrong: []ra.Node{w1, w2}}
}

// q21Inner builds the pre-aggregation query of our RA form of Q21:
// (supplier, orderkey) pairs where the supplier was late on a
// multi-supplier finished order and no other supplier in the same order was
// late.
func q21Inner(withOnlyLate, multiSupplier bool) string {
	late := `project[l_suppkey, l_orderkey](select[l_receiptdate > l_commitdate](lineitem))`
	// Pairs restricted to finished orders.
	lateF := fmt.Sprintf(`project[l_suppkey, l_orderkey](
		(%s) join[l_orderkey = o_orderkey]
		project[o_orderkey](select[o_orderstatus = 'F'](orders)))`, late)
	if multiSupplier {
		// Orders involving at least two distinct suppliers.
		multi := `project[a.l_orderkey](
			rename[a](project[l_suppkey, l_orderkey](lineitem))
			join[a.l_orderkey = b.l_orderkey and a.l_suppkey <> b.l_suppkey]
			rename[b](project[l_suppkey, l_orderkey](lineitem)))`
		lateF = fmt.Sprintf(`project[l_suppkey, l_orderkey](
			(%s) join[l_orderkey = m.l_orderkey] rename[m](%s))`, lateF, multi)
	}
	if !withOnlyLate {
		return lateF
	}
	// Remove pairs where some other supplier in the order was also late.
	othersLate := fmt.Sprintf(`project[x.l_suppkey, x.l_orderkey](
		rename[x](%s)
		join[x.l_orderkey = y.l_orderkey and x.l_suppkey <> y.l_suppkey]
		rename[y](project[l_suppkey, l_orderkey](select[l_receiptdate > l_commitdate](lineitem))))`, lateF)
	return fmt.Sprintf("(%s) diff (%s)", lateF, othersLate)
}

// Q21 is the suppliers-who-kept-orders-waiting query.
func Q21() QuerySet {
	shape := `groupby[s_name; count(*) -> numwait](
		project[s_name, l_orderkey](
			supplier join[s_suppkey = l_suppkey] (%s)))`
	correct := raparser.MustParse(fmt.Sprintf(shape, q21Inner(true, true)))
	// W1: incorrect use of difference — forgets "no other supplier was
	// late".
	w1 := raparser.MustParse(fmt.Sprintf(shape, q21Inner(false, true)))
	// W2: forgets the multi-supplier requirement.
	w2 := raparser.MustParse(fmt.Sprintf(shape, q21Inner(true, false)))
	return QuerySet{Name: "Q21", Correct: correct, Wrong: []ra.Node{w1, w2}}
}

// Q21S is the paper's modified Q21 with an additional selection on the
// aggregate value at the top of the query tree.
func Q21S() QuerySet {
	base := Q21()
	wrap := func(n ra.Node) ra.Node {
		return raparser.MustParse(fmt.Sprintf("select[numwait >= 2](%s)", n))
	}
	return QuerySet{
		Name:    "Q21-S",
		Correct: wrap(base.Correct),
		Wrong:   []ra.Node{wrap(base.Wrong[0]), wrap(base.Wrong[1])},
	}
}

// All returns the benchmark query sets in the paper's order.
func All() []QuerySet {
	return []QuerySet{Q4(), Q16(), Q18(), Q21(), Q21S()}
}
