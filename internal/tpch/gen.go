// Package tpch provides a deterministic TPC-H-style data generator and the
// relational algebra forms of the benchmark queries used in the paper's
// aggregate experiments (Section 7.2): Q4, Q16, Q18, Q21, and the modified
// Q21-S with an extra selection on the aggregate. For each query it also
// provides two deliberately wrong variants with the error classes the paper
// injected: different selection conditions, incorrect use of difference,
// and incorrect position of projection.
//
// The paper ran at scale factor 1 on SQL Server; this in-memory
// reproduction uses a row-count scale where Scale(sf) generates sf × the
// official table cardinalities. The harness sweeps sf; the query structure
// (multi-way joins, semijoin/antijoin via difference, group sizes
// proportional to scale) is preserved.
package tpch

import (
	"math/rand"

	"repro/internal/relation"
)

// Cardinalities at scale factor 1 (official TPC-H).
const (
	baseCustomers = 150000
	baseOrders    = 1500000
	baseLineitems = 6000000
	baseSuppliers = 10000
	baseParts     = 200000
	basePartsupp  = 800000
)

var (
	nations    = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	regions    = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	brands     = []string{"Brand#11", "Brand#12", "Brand#13", "Brand#21", "Brand#22", "Brand#23", "Brand#31", "Brand#32", "Brand#33", "Brand#41"}
	types      = []string{"STANDARD ANODIZED", "SMALL PLATED", "MEDIUM POLISHED", "LARGE BURNISHED", "ECONOMY BRUSHED", "PROMO TIN"}
	statuses   = []string{"F", "O", "P"}
)

// Generate builds a TPC-H instance with sf × the official cardinalities,
// deterministically from the seed. Dates are encoded as integer day
// numbers; day 0 is 1992-01-01, and the 7-year order window spans days
// [0, 2557).
func Generate(sf float64, seed int64) *relation.Database {
	rng := rand.New(rand.NewSource(seed))
	db := relation.NewDatabase()

	db.CreateRelation("region", relation.NewSchema(
		relation.Attr("r_regionkey", relation.KindInt),
		relation.Attr("r_name", relation.KindString)))
	for i, r := range regions {
		db.Insert("region", relation.NewTuple(relation.Int(int64(i)), relation.String(r)))
	}

	db.CreateRelation("nation", relation.NewSchema(
		relation.Attr("n_nationkey", relation.KindInt),
		relation.Attr("n_name", relation.KindString),
		relation.Attr("n_regionkey", relation.KindInt)))
	for i, n := range nations {
		db.Insert("nation", relation.NewTuple(
			relation.Int(int64(i)), relation.String(n), relation.Int(int64(i%len(regions)))))
	}

	nSupp := scaled(baseSuppliers, sf, 3)
	db.CreateRelation("supplier", relation.NewSchema(
		relation.Attr("s_suppkey", relation.KindInt),
		relation.Attr("s_name", relation.KindString),
		relation.Attr("s_nationkey", relation.KindInt),
		relation.Attr("s_comment", relation.KindString)))
	for i := 1; i <= nSupp; i++ {
		comment := "ok"
		if rng.Intn(8) == 0 {
			comment = "Customer Complaints"
		}
		db.Insert("supplier", relation.NewTuple(
			relation.Int(int64(i)),
			relation.String(suppName(i)),
			relation.Int(int64(rng.Intn(len(nations)))),
			relation.String(comment)))
	}

	nPart := scaled(baseParts, sf, 4)
	db.CreateRelation("part", relation.NewSchema(
		relation.Attr("p_partkey", relation.KindInt),
		relation.Attr("p_brand", relation.KindString),
		relation.Attr("p_type", relation.KindString),
		relation.Attr("p_size", relation.KindInt)))
	for i := 1; i <= nPart; i++ {
		db.Insert("part", relation.NewTuple(
			relation.Int(int64(i)),
			relation.String(brands[rng.Intn(len(brands))]),
			relation.String(types[rng.Intn(len(types))]),
			relation.Int(int64(1+rng.Intn(50)))))
	}

	nPS := scaled(basePartsupp, sf, 6)
	db.CreateRelation("partsupp", relation.NewSchema(
		relation.Attr("ps_partkey", relation.KindInt),
		relation.Attr("ps_suppkey", relation.KindInt),
		relation.Attr("ps_availqty", relation.KindInt)))
	seenPS := map[[2]int]bool{}
	for len(seenPS) < nPS {
		pk := 1 + rng.Intn(nPart)
		sk := 1 + rng.Intn(nSupp)
		if seenPS[[2]int{pk, sk}] {
			continue
		}
		seenPS[[2]int{pk, sk}] = true
		db.Insert("partsupp", relation.NewTuple(
			relation.Int(int64(pk)), relation.Int(int64(sk)), relation.Int(int64(1+rng.Intn(9999)))))
	}

	nCust := scaled(baseCustomers, sf, 5)
	db.CreateRelation("customer", relation.NewSchema(
		relation.Attr("c_custkey", relation.KindInt),
		relation.Attr("c_name", relation.KindString),
		relation.Attr("c_nationkey", relation.KindInt)))
	for i := 1; i <= nCust; i++ {
		db.Insert("customer", relation.NewTuple(
			relation.Int(int64(i)), relation.String(custName(i)), relation.Int(int64(rng.Intn(len(nations))))))
	}

	nOrd := scaled(baseOrders, sf, 8)
	db.CreateRelation("orders", relation.NewSchema(
		relation.Attr("o_orderkey", relation.KindInt),
		relation.Attr("o_custkey", relation.KindInt),
		relation.Attr("o_orderstatus", relation.KindString),
		relation.Attr("o_orderdate", relation.KindInt),
		relation.Attr("o_orderpriority", relation.KindString)))
	orderDates := make([]int, nOrd+1)
	for i := 1; i <= nOrd; i++ {
		date := rng.Intn(2557)
		orderDates[i] = date
		db.Insert("orders", relation.NewTuple(
			relation.Int(int64(i)),
			relation.Int(int64(1+rng.Intn(nCust))),
			relation.String(statuses[rng.Intn(len(statuses))]),
			relation.Int(int64(date)),
			relation.String(priorities[rng.Intn(len(priorities))])))
	}

	db.CreateRelation("lineitem", relation.NewSchema(
		relation.Attr("l_orderkey", relation.KindInt),
		relation.Attr("l_linenumber", relation.KindInt),
		relation.Attr("l_suppkey", relation.KindInt),
		relation.Attr("l_partkey", relation.KindInt),
		relation.Attr("l_quantity", relation.KindInt),
		relation.Attr("l_commitdate", relation.KindInt),
		relation.Attr("l_receiptdate", relation.KindInt)))
	perOrder := float64(baseLineitems) / float64(baseOrders)
	for o := 1; o <= nOrd; o++ {
		n := 1 + rng.Intn(int(2*perOrder))
		for ln := 1; ln <= n; ln++ {
			commit := orderDates[o] + 30 + rng.Intn(60)
			receipt := commit - 10 + rng.Intn(40) // ~25% late (receipt > commit)
			db.Insert("lineitem", relation.NewTuple(
				relation.Int(int64(o)),
				relation.Int(int64(ln)),
				relation.Int(int64(1+rng.Intn(nSupp))),
				relation.Int(int64(1+rng.Intn(nPart))),
				relation.Int(int64(1+rng.Intn(50))),
				relation.Int(int64(commit)),
				relation.Int(int64(receipt))))
		}
	}
	return db
}

func scaled(base int, sf float64, min int) int {
	n := int(float64(base) * sf)
	if n < min {
		n = min
	}
	return n
}

func suppName(i int) string { return "Supplier#" + pad9(i) }
func custName(i int) string { return "Customer#" + pad9(i) }

func pad9(i int) string {
	s := ""
	for d := 100000000; d >= 1; d /= 10 {
		s += string(rune('0' + (i/d)%10))
	}
	return s
}

// Constraints returns the TPC-H referential constraints relevant to the
// experiment queries.
func Constraints() []relation.Constraint {
	return []relation.Constraint{
		relation.Key{Relation: "orders", Attrs: []string{"o_orderkey"}},
		relation.Key{Relation: "customer", Attrs: []string{"c_custkey"}},
		relation.Key{Relation: "supplier", Attrs: []string{"s_suppkey"}},
		relation.Key{Relation: "part", Attrs: []string{"p_partkey"}},
		relation.Key{Relation: "lineitem", Attrs: []string{"l_orderkey", "l_linenumber"}},
		relation.ForeignKey{ChildRel: "orders", ChildAttrs: []string{"o_custkey"},
			ParentRel: "customer", ParentAttrs: []string{"c_custkey"}},
		relation.ForeignKey{ChildRel: "lineitem", ChildAttrs: []string{"l_orderkey"},
			ParentRel: "orders", ParentAttrs: []string{"o_orderkey"}},
		relation.ForeignKey{ChildRel: "lineitem", ChildAttrs: []string{"l_suppkey"},
			ParentRel: "supplier", ParentAttrs: []string{"s_suppkey"}},
		relation.ForeignKey{ChildRel: "partsupp", ChildAttrs: []string{"ps_partkey"},
			ParentRel: "part", ParentAttrs: []string{"p_partkey"}},
		relation.ForeignKey{ChildRel: "partsupp", ChildAttrs: []string{"ps_suppkey"},
			ParentRel: "supplier", ParentAttrs: []string{"s_suppkey"}},
	}
}
