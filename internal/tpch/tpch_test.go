package tpch

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/ra"
	"repro/internal/relation"
)

const testSF = 0.0008

func testDB(t *testing.T) *relation.Database {
	t.Helper()
	return Generate(testSF, 1)
}

func TestGenerateCardinalities(t *testing.T) {
	db := testDB(t)
	if db.Relation("region").Len() != 5 || db.Relation("nation").Len() != 25 {
		t.Error("region/nation sizes")
	}
	nOrd := db.Relation("orders").Len()
	nLi := db.Relation("lineitem").Len()
	if nOrd < 100 {
		t.Errorf("orders = %d, too small", nOrd)
	}
	// Lineitems average ~4 per order.
	if nLi < 2*nOrd {
		t.Errorf("lineitem/order ratio off: %d/%d", nLi, nOrd)
	}
	for _, name := range []string{"supplier", "part", "partsupp", "customer"} {
		if db.Relation(name).Len() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.0005, 7)
	b := Generate(0.0005, 7)
	if a.Size() != b.Size() {
		t.Fatal("sizes differ across runs with same seed")
	}
	ra1 := a.Relation("lineitem")
	rb1 := b.Relation("lineitem")
	for i := range ra1.Tuples {
		if !ra1.Tuples[i].Identical(rb1.Tuples[i]) {
			t.Fatal("tuples differ")
		}
	}
	c := Generate(0.0005, 8)
	if c.Relation("lineitem").Tuples[0].Identical(ra1.Tuples[0]) &&
		c.Relation("lineitem").Tuples[1].Identical(ra1.Tuples[1]) &&
		c.Relation("lineitem").Tuples[2].Identical(ra1.Tuples[2]) {
		t.Error("different seeds produced identical prefixes")
	}
}

func TestConstraintsHold(t *testing.T) {
	db := testDB(t)
	if err := relation.ValidateAll(db, Constraints()); err != nil {
		t.Fatalf("generated instance violates constraints: %v", err)
	}
}

func TestAllQueriesEvaluate(t *testing.T) {
	db := testDB(t)
	for _, qs := range All() {
		r, err := eval.Eval(qs.Correct, db, nil)
		if err != nil {
			t.Fatalf("%s correct: %v", qs.Name, err)
		}
		if qs.Name != "Q21-S" && r.Len() == 0 {
			t.Errorf("%s returned no rows at sf=%v", qs.Name, testSF)
		}
		for i, w := range qs.Wrong {
			if _, err := eval.Eval(w, db, nil); err != nil {
				t.Fatalf("%s wrong[%d]: %v", qs.Name, i, err)
			}
		}
	}
}

func TestWrongVariantsDisagree(t *testing.T) {
	// Like the paper's Table 3 observation, some mutants need a larger
	// instance to be discovered: escalate the scale until each disagrees.
	scales := []float64{testSF, 0.003}
	dbs := map[float64]*relation.Database{}
	for _, qs := range All() {
		for i, w := range qs.Wrong {
			found := false
			for _, sf := range scales {
				db, ok := dbs[sf]
				if !ok {
					db = Generate(sf, 1)
					dbs[sf] = db
				}
				differs, _, _, err := core.Disagrees(qs.Correct, w, db, nil)
				if err != nil {
					t.Fatalf("%s wrong[%d]: %v", qs.Name, i, err)
				}
				if differs {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s wrong[%d] agrees with the correct query at all scales", qs.Name, i)
			}
		}
	}
}

func TestQueriesMatchAggregateShape(t *testing.T) {
	for _, qs := range All() {
		if _, ok := ra.MatchTopAggregate(qs.Correct); !ok {
			t.Errorf("%s does not match the supported aggregate shape", qs.Name)
		}
		c := ra.Classify(qs.Correct)
		if !c.Aggregate {
			t.Errorf("%s is not an aggregate query", qs.Name)
		}
	}
}

func TestAggOptFindsCounterexamples(t *testing.T) {
	db := Generate(0.0004, 3)
	for _, qs := range All() {
		for i, w := range qs.Wrong {
			p := core.Problem{Q1: qs.Correct, Q2: w, DB: db}
			differs, _, _, err := core.Disagrees(qs.Correct, w, db, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !differs {
				continue // too small to expose this mutant; skip
			}
			ce, stats, err := core.AggOpt(p, core.AggOptions{})
			if err != nil {
				t.Errorf("%s wrong[%d]: AggOpt failed: %v", qs.Name, i, err)
				continue
			}
			if err := core.Verify(p, ce); err != nil {
				t.Errorf("%s wrong[%d]: invalid counterexample: %v", qs.Name, i, err)
			}
			if ce.Size() > 25 {
				t.Errorf("%s wrong[%d]: counterexample unexpectedly large: %d tuples", qs.Name, i, ce.Size())
			}
			if ce.Size() >= db.Size() {
				t.Errorf("%s wrong[%d]: no shrinkage", qs.Name, i)
			}
			_ = stats
		}
	}
}

func TestQ18Parameterization(t *testing.T) {
	// The Figure 7 experiment: parameterizing Q18's HAVING threshold
	// shrinks the counterexample substantially.
	db := Generate(0.0006, 5)
	q18 := Q18()
	p := core.Problem{Q1: q18.Correct, Q2: q18.Wrong[0], DB: db}
	differs, _, _, err := core.Disagrees(p.Q1, p.Q2, db, nil)
	if err != nil || !differs {
		t.Skip("instance too small to expose the Q18 mutant")
	}
	ceFixed, _, err := core.AggOpt(p, core.AggOptions{})
	if err != nil {
		t.Fatalf("AggOpt: %v", err)
	}
	if err := core.Verify(p, ceFixed); err != nil {
		t.Fatal(err)
	}
	if ceFixed.Params == nil {
		t.Error("AggOpt should have parameterized the HAVING threshold")
	}
}

func TestPad9(t *testing.T) {
	if pad9(42) != "000000042" {
		t.Errorf("pad9(42) = %q", pad9(42))
	}
}
