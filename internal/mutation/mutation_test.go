package mutation

import (
	"testing"

	"repro/internal/ra"
	"repro/internal/raparser"
)

func TestMutantsOfSelect(t *testing.T) {
	q := raparser.MustParse("select[dept = 'CS' and grade >= 90](R)")
	ms := Mutants(q)
	if len(ms) == 0 {
		t.Fatal("no mutants")
	}
	descs := map[string]bool{}
	for _, m := range ms {
		descs[m.Desc] = true
		if m.Query == nil {
			t.Fatal("nil mutant")
		}
	}
	if !descs["dropped selection"] {
		t.Error("missing dropped-selection mutant")
	}
	// Dropping a conjunct and operator swaps must appear.
	foundDrop, foundOp := false, false
	for d := range descs {
		if len(d) > 7 && d[:7] == "dropped" && d != "dropped selection" {
			foundDrop = true
		}
		if len(d) > 10 && d[:10] == "comparison" {
			foundOp = true
		}
	}
	if !foundDrop || !foundOp {
		t.Errorf("mutant classes missing: %v", descs)
	}
}

func TestMutantsOfDiff(t *testing.T) {
	q := raparser.MustParse("project[a](R) diff project[a](S)")
	ms := Mutants(q)
	var dropped, swapped, union bool
	for _, m := range ms {
		switch m.Desc {
		case "incorrect use of difference: dropped subtrahend":
			dropped = true
			if _, ok := m.Query.(*ra.Project); !ok {
				t.Error("dropped-subtrahend mutant should be the left operand")
			}
		case "incorrect use of difference: swapped operands":
			swapped = true
		case "difference replaced by union":
			union = true
		}
	}
	if !dropped || !swapped || !union {
		t.Error("difference mutants missing")
	}
}

func TestMutantsPreserveOriginal(t *testing.T) {
	q := raparser.MustParse("select[x = 1](R)")
	orig := q.String()
	ms := Mutants(q)
	if q.String() != orig {
		t.Error("mutation modified the original query")
	}
	for _, m := range ms {
		if m.Query.String() == orig && m.Desc != "" {
			// A mutant may coincidentally equal the original only if the
			// mutation is a no-op, which these single-point mutations are
			// not.
			t.Errorf("mutant %q equals original", m.Desc)
		}
	}
}

func TestConstantPerturbation(t *testing.T) {
	q := raparser.MustParse("select[grade >= 90](R)")
	ms := Mutants(q)
	found := false
	for _, m := range ms {
		if s, ok := m.Query.(*ra.Select); ok {
			if c, ok := s.Pred.(*ra.Cmp); ok {
				if k, ok := c.R.(*ra.Const); ok && k.Val.String() == "91" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("missing constant+1 perturbation")
	}
}

func TestAggregateMutants(t *testing.T) {
	q := raparser.MustParse("groupby[g; avg(v) -> a](R)")
	ms := Mutants(q)
	found := false
	for _, m := range ms {
		if g, ok := m.Query.(*ra.GroupBy); ok && g.Aggs[0].Func == ra.Sum {
			found = true
			if g.Aggs[0].As != "a" {
				t.Error("agg alias must be preserved for union compatibility")
			}
		}
	}
	if !found {
		t.Error("missing avg→sum mutant")
	}
}

func TestUnionMutants(t *testing.T) {
	q := raparser.MustParse("project[a](R) union project[a](S)")
	ms := Mutants(q)
	if len(ms) < 2 {
		t.Fatalf("expected branch-drop mutants, got %d", len(ms))
	}
}

func TestNestedMutationDepth(t *testing.T) {
	// Mutants must reach deep into the tree.
	q := raparser.MustParse("project[a](select[x = 1](R join S))")
	ms := Mutants(q)
	foundDeep := false
	for _, m := range ms {
		if m.Desc == "dropped selection" {
			foundDeep = true
		}
	}
	if !foundDeep {
		t.Error("mutation did not reach nested select")
	}
}
