// Package mutation generates plausible wrong queries from a correct query
// by single-point mutations, in the spirit of XData's query mutants
// (Chandra et al.) and matching the error classes the paper observed in
// student submissions (Section 7.2): changed or dropped selection
// conditions, incorrect use of difference, swapped operands, and damaged
// join conditions. The mutants populate the wrong-query bank used by the
// course experiments (Table 3, Table 4, Figures 3–5).
package mutation

import (
	"fmt"

	"repro/internal/ra"
	"repro/internal/relation"
)

// Mutant is a wrong-query candidate with a description of the injected
// error.
type Mutant struct {
	Query ra.Node
	Desc  string
}

// Mutants enumerates single-point mutants of a query. The result preserves
// the output schema (mutations never touch projection lists), so every
// mutant is union-compatible with the original.
func Mutants(q ra.Node) []Mutant {
	return mutateNode(q)
}

// mutateNode returns all single-point mutants of the subtree rooted at n.
func mutateNode(n ra.Node) []Mutant {
	var out []Mutant
	switch x := n.(type) {
	case *ra.Rel:
		// no local mutants
	case *ra.Select:
		for _, m := range mutateExpr(x.Pred) {
			out = append(out, Mutant{Query: &ra.Select{Pred: m.expr, In: x.In}, Desc: m.desc})
		}
		out = append(out, Mutant{Query: x.In, Desc: "dropped selection"})
		for _, m := range mutateNode(x.In) {
			out = append(out, Mutant{Query: &ra.Select{Pred: x.Pred, In: m.Query}, Desc: m.Desc})
		}
	case *ra.Project:
		for _, m := range mutateNode(x.In) {
			out = append(out, Mutant{Query: &ra.Project{Cols: x.Cols, In: m.Query}, Desc: m.Desc})
		}
	case *ra.Rename:
		for _, m := range mutateNode(x.In) {
			out = append(out, Mutant{Query: &ra.Rename{As: x.As, In: m.Query}, Desc: m.Desc})
		}
	case *ra.Join:
		if x.Cond != nil {
			for _, m := range mutateExpr(x.Cond) {
				out = append(out, Mutant{Query: &ra.Join{L: x.L, R: x.R, Cond: m.expr}, Desc: "join condition: " + m.desc})
			}
		}
		for _, m := range mutateNode(x.L) {
			out = append(out, Mutant{Query: &ra.Join{L: m.Query, R: x.R, Cond: x.Cond}, Desc: m.Desc})
		}
		for _, m := range mutateNode(x.R) {
			out = append(out, Mutant{Query: &ra.Join{L: x.L, R: m.Query, Cond: x.Cond}, Desc: m.Desc})
		}
	case *ra.Union:
		out = append(out,
			Mutant{Query: x.L, Desc: "dropped right union branch"},
			Mutant{Query: x.R, Desc: "dropped left union branch"})
		for _, m := range mutateNode(x.L) {
			out = append(out, Mutant{Query: &ra.Union{L: m.Query, R: x.R}, Desc: m.Desc})
		}
		for _, m := range mutateNode(x.R) {
			out = append(out, Mutant{Query: &ra.Union{L: x.L, R: m.Query}, Desc: m.Desc})
		}
	case *ra.Diff:
		out = append(out,
			Mutant{Query: x.L, Desc: "incorrect use of difference: dropped subtrahend"},
			Mutant{Query: &ra.Diff{L: x.R, R: x.L}, Desc: "incorrect use of difference: swapped operands"},
			Mutant{Query: &ra.Union{L: x.L, R: x.R}, Desc: "difference replaced by union"})
		for _, m := range mutateNode(x.L) {
			out = append(out, Mutant{Query: &ra.Diff{L: m.Query, R: x.R}, Desc: m.Desc})
		}
		for _, m := range mutateNode(x.R) {
			out = append(out, Mutant{Query: &ra.Diff{L: x.L, R: m.Query}, Desc: m.Desc})
		}
	case *ra.GroupBy:
		for i, a := range x.Aggs {
			if alt, ok := altAgg(a.Func); ok {
				aggs := append([]ra.AggSpec(nil), x.Aggs...)
				aggs[i] = ra.AggSpec{Func: alt, Attr: a.Attr, As: a.As}
				out = append(out, Mutant{
					Query: &ra.GroupBy{GroupCols: x.GroupCols, Aggs: aggs, In: x.In},
					Desc:  fmt.Sprintf("aggregate %s changed to %s", a.Func, alt)})
			}
		}
		for _, m := range mutateNode(x.In) {
			out = append(out, Mutant{Query: &ra.GroupBy{GroupCols: x.GroupCols, Aggs: x.Aggs, In: m.Query}, Desc: m.Desc})
		}
	}
	return out
}

func altAgg(f ra.AggFunc) (ra.AggFunc, bool) {
	switch f {
	case ra.Avg:
		return ra.Sum, true
	case ra.Sum:
		return ra.Avg, true
	case ra.Min:
		return ra.Max, true
	case ra.Max:
		return ra.Min, true
	}
	return 0, false
}

type exprMut struct {
	expr ra.Expr
	desc string
}

// mutateExpr returns single-point mutants of a predicate.
func mutateExpr(e ra.Expr) []exprMut {
	var out []exprMut
	switch x := e.(type) {
	case *ra.Cmp:
		for _, op := range altOps(x.Op) {
			out = append(out, exprMut{
				expr: &ra.Cmp{Op: op, L: x.L, R: x.R},
				desc: fmt.Sprintf("comparison %s changed to %s", x.Op, op)})
		}
		if c, ok := x.R.(*ra.Const); ok {
			for _, v := range perturb(c.Val) {
				out = append(out, exprMut{
					expr: &ra.Cmp{Op: x.Op, L: x.L, R: &ra.Const{Val: v}},
					desc: fmt.Sprintf("constant %s changed to %s", c.Val, v)})
			}
		}
	case *ra.And:
		for i := range x.Kids {
			kids := make([]ra.Expr, 0, len(x.Kids)-1)
			kids = append(kids, x.Kids[:i]...)
			kids = append(kids, x.Kids[i+1:]...)
			var dropped ra.Expr
			if len(kids) == 1 {
				dropped = kids[0]
			} else {
				dropped = &ra.And{Kids: kids}
			}
			out = append(out, exprMut{expr: dropped, desc: fmt.Sprintf("dropped conjunct %q", x.Kids[i])})
		}
		for i, k := range x.Kids {
			for _, m := range mutateExpr(k) {
				kids := append([]ra.Expr(nil), x.Kids...)
				kids[i] = m.expr
				out = append(out, exprMut{expr: &ra.And{Kids: kids}, desc: m.desc})
			}
		}
	case *ra.Or:
		for i, k := range x.Kids {
			for _, m := range mutateExpr(k) {
				kids := append([]ra.Expr(nil), x.Kids...)
				kids[i] = m.expr
				out = append(out, exprMut{expr: &ra.Or{Kids: kids}, desc: m.desc})
			}
		}
		out = append(out, exprMut{expr: &ra.And{Kids: x.Kids}, desc: "or weakened to and"})
	case *ra.Not:
		out = append(out, exprMut{expr: x.Kid, desc: "dropped negation"})
		for _, m := range mutateExpr(x.Kid) {
			out = append(out, exprMut{expr: &ra.Not{Kid: m.expr}, desc: m.desc})
		}
	}
	return out
}

func altOps(op ra.CmpOp) []ra.CmpOp {
	switch op {
	case ra.EQ:
		return []ra.CmpOp{ra.NE}
	case ra.NE:
		return []ra.CmpOp{ra.EQ}
	case ra.LT:
		return []ra.CmpOp{ra.LE, ra.GT}
	case ra.LE:
		return []ra.CmpOp{ra.LT, ra.GE}
	case ra.GT:
		return []ra.CmpOp{ra.GE, ra.LT}
	case ra.GE:
		return []ra.CmpOp{ra.GT, ra.LE}
	}
	return nil
}

func perturb(v relation.Value) []relation.Value {
	switch v.Kind() {
	case relation.KindInt:
		i := v.AsInt()
		return []relation.Value{relation.Int(i + 1), relation.Int(i - 1), relation.Int(i + 10)}
	case relation.KindFloat:
		f := v.AsFloat()
		return []relation.Value{relation.Float(f + 1), relation.Float(f * 1.1)}
	}
	return nil
}
