// Package faults is the repo's deterministic fault-injection harness: a
// seeded plan of panics and stalls fired at named injection points compiled
// permanently into the hot layers (no build tags — the disabled fast path
// is one atomic pointer load). The chaos test suite and the CI chaos-smoke
// job enable a plan, drive the server, and assert the fault-tolerance
// invariants: the process survives every injected panic with its caches
// intact, never returns an unverified counterexample, and never hangs.
//
// Determinism: every point keeps a hit counter, and whether hit n fires is
// a pure function of (seed, point, n) — a splitmix64 hash — so a fixed
// workload replays the same fault set run after run. Under concurrency the
// hit numbers are claimed atomically; the set of firing hits is fixed even
// though which request draws a firing hit may vary with scheduling.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Point names an injection site.
type Point string

// The compiled-in injection points.
const (
	// PoolWorker fires inside every pool.ForEach iteration, in the worker
	// goroutine, under the pool's panic isolation.
	PoolWorker Point = "pool.worker"
	// EngineEval fires at every engine evaluation entry (RunOpts), i.e.
	// once per (sub)query evaluation.
	EngineEval Point = "engine.eval"
	// SATSolve fires at every SAT restart boundary (sat.Solver.Solve).
	SATSolve Point = "sat.solve"
	// SMTSolve fires before every SMT parameter-combo search (smt.Solve).
	SMTSolve Point = "smt.solve"
	// InstanceGen fires before the server generates a course/TPC-H
	// instance (cache misses only), modeling slow or crashing generation.
	InstanceGen Point = "server.instance"
	// Handler fires at the top of every wrapped server HTTP handler.
	Handler Point = "server.handler"

	// Network-level points, fired inside the cluster frontend's worker
	// transport so the seeded chaos machinery can fault the frontend →
	// worker path without real network damage.

	// ClusterDial fires before each proxied worker request is sent; an
	// error rule there models a refused/reset connection (the worker is
	// gone before a byte moves).
	ClusterDial Point = "cluster.dial"
	// ClusterBody fires on every response-body read chunk; a stall rule
	// there models a worker that freezes mid-response.
	ClusterBody Point = "cluster.body"
	// ClusterTruncate fires on every response-body read chunk; an error
	// rule there models the connection dying mid-body (the frontend sees a
	// truncated, unparseable response).
	ClusterTruncate Point = "cluster.truncate"
)

// Points lists every compiled-in injection point, for spec validation.
var Points = []Point{PoolWorker, EngineEval, SATSolve, SMTSolve, InstanceGen, Handler, ClusterDial, ClusterBody, ClusterTruncate}

// Rule configures one point's faults. A zero rule never fires.
type Rule struct {
	// PanicEvery > 0 makes ~1/PanicEvery of the point's hits panic with an
	// InjectedPanic value (PanicEvery == 1 panics on every hit).
	PanicEvery int64
	// StallEvery > 0 makes ~1/StallEvery of the point's hits sleep for
	// Stall before continuing.
	StallEvery int64
	// Stall is the stall duration (default 10ms when StallEvery fires).
	Stall time.Duration
	// ErrorEvery > 0 makes ~1/ErrorEvery of the point's hits return an
	// ErrInjected-wrapped error from InjectErr (points whose callers use
	// plain Inject never observe it).
	ErrorEvery int64
}

// InjectedPanic is the value every injected panic carries, so recovery
// layers and tests can tell injected faults from real bugs.
type InjectedPanic struct {
	Point Point
	N     int64 // 1-based hit number at the point
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("faults: injected panic at %s (hit %d)", p.Point, p.N)
}

// Plan is an enabled fault plan: a seed plus per-point rules. Construct
// with NewPlan or ParseSpec, then Enable it.
type Plan struct {
	seed  int64
	rules map[Point]Rule
	hits  map[Point]*atomic.Int64
	fired map[Point]*atomic.Int64
}

// NewPlan builds a plan from per-point rules.
func NewPlan(seed int64, rules map[Point]Rule) *Plan {
	p := &Plan{
		seed:  seed,
		rules: make(map[Point]Rule, len(rules)),
		hits:  make(map[Point]*atomic.Int64, len(rules)),
		fired: make(map[Point]*atomic.Int64, len(rules)),
	}
	for pt, r := range rules {
		if r.StallEvery > 0 && r.Stall <= 0 {
			r.Stall = 10 * time.Millisecond
		}
		p.rules[pt] = r
		p.hits[pt] = new(atomic.Int64)
		p.fired[pt] = new(atomic.Int64)
	}
	return p
}

// Hits returns how many times the point has been reached since Enable.
func (p *Plan) Hits(pt Point) int64 {
	if c := p.hits[pt]; c != nil {
		return c.Load()
	}
	return 0
}

// Fired returns how many faults (panics + stalls) the point has fired.
func (p *Plan) Fired(pt Point) int64 {
	if c := p.fired[pt]; c != nil {
		return c.Load()
	}
	return 0
}

// active is the enabled plan; nil means fault injection is off (the
// default, and the only state production processes run in).
var active atomic.Pointer[Plan]

// Enable installs the plan at every injection point. Passing nil disables.
func Enable(p *Plan) { active.Store(p) }

// Disable turns fault injection off.
func Disable() { active.Store(nil) }

// Enabled reports whether a plan is installed.
func Enabled() bool { return active.Load() != nil }

// Inject is the injection point: a no-op unless a plan with a rule for pt
// is enabled, in which case the seeded schedule may panic (with an
// InjectedPanic value) or stall. Callers place it where a real fault could
// strike: worker loops, evaluation entries, solver restart boundaries.
func Inject(pt Point) {
	p := active.Load()
	if p == nil {
		return
	}
	r, ok := p.rules[pt]
	if !ok {
		return
	}
	n := p.hits[pt].Add(1)
	if r.StallEvery > 0 && fires(p.seed, pt, n, r.StallEvery, 0x5741) {
		p.fired[pt].Add(1)
		time.Sleep(r.Stall) //lint:nakedretry deliberate injected stall; bounded by the rule's Stall duration, not a retry wait
	}
	if r.PanicEvery > 0 && fires(p.seed, pt, n, r.PanicEvery, 0x9e3779) {
		p.fired[pt].Add(1)
		panic(InjectedPanic{Point: pt, N: n})
	}
}

// ErrInjected marks every error returned by InjectErr, so transport layers
// and tests can tell injected network faults from real ones with errors.Is.
var ErrInjected = errors.New("faults: injected network fault")

// InjectErr is the injection point for layers that fail with an error
// rather than a panic — the cluster transport's network faults. Stall and
// panic rules apply exactly as in Inject; an error rule may then make the
// hit return a synthetic ErrInjected-wrapped failure that the caller
// surfaces as it would a real connection error.
func InjectErr(pt Point) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	r, ok := p.rules[pt]
	if !ok {
		return nil
	}
	n := p.hits[pt].Add(1)
	if r.StallEvery > 0 && fires(p.seed, pt, n, r.StallEvery, 0x5741) {
		p.fired[pt].Add(1)
		time.Sleep(r.Stall) //lint:nakedretry deliberate injected stall; bounded by the rule's Stall duration, not a retry wait
	}
	if r.PanicEvery > 0 && fires(p.seed, pt, n, r.PanicEvery, 0x9e3779) {
		p.fired[pt].Add(1)
		panic(InjectedPanic{Point: pt, N: n})
	}
	if r.ErrorEvery > 0 && fires(p.seed, pt, n, r.ErrorEvery, 0x77a1) {
		p.fired[pt].Add(1)
		return fmt.Errorf("%w at %s (hit %d)", ErrInjected, pt, n)
	}
	return nil
}

// fires decides hit n at pt deterministically: hash(seed, pt, n, kind)
// lands in the 1/every acceptance band. every == 1 always fires.
func fires(seed int64, pt Point, n, every, kind int64) bool {
	if every == 1 {
		return true
	}
	h := uint64(seed) ^ fnv64(string(pt)) ^ uint64(kind)
	h = splitmix64(h + uint64(n))
	return h%uint64(every) == 0
}

func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ParseSpec parses the CLI fault specification: comma-separated directives
//
//	panic:<point>:<every>
//	stall:<point>:<every>[:<duration>]
//	error:<point>:<every>
//
// e.g. "panic:pool.worker:7,stall:engine.eval:13:20ms,error:cluster.dial:5".
// Empty spec means no plan (nil, nil).
func ParseSpec(spec string, seed int64) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	valid := make(map[Point]bool, len(Points))
	for _, pt := range Points {
		valid[pt] = true
	}
	rules := map[Point]Rule{}
	for _, dir := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(dir), ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("faults: directive %q: want kind:point:every[:duration]", dir)
		}
		kind, pt := parts[0], Point(parts[1])
		if !valid[pt] {
			return nil, fmt.Errorf("faults: unknown point %q (want one of %s)", parts[1], pointList())
		}
		every, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil || every < 1 {
			return nil, fmt.Errorf("faults: directive %q: every must be a positive integer", dir)
		}
		r := rules[pt]
		switch kind {
		case "panic":
			if len(parts) != 3 {
				return nil, fmt.Errorf("faults: directive %q: panic takes no duration", dir)
			}
			r.PanicEvery = every
		case "error":
			if len(parts) != 3 {
				return nil, fmt.Errorf("faults: directive %q: error takes no duration", dir)
			}
			r.ErrorEvery = every
		case "stall":
			r.StallEvery = every
			if len(parts) == 4 {
				d, err := time.ParseDuration(parts[3])
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("faults: directive %q: bad stall duration", dir)
				}
				r.Stall = d
			} else if len(parts) != 3 {
				return nil, fmt.Errorf("faults: directive %q: want stall:point:every[:duration]", dir)
			}
		default:
			return nil, fmt.Errorf("faults: unknown fault kind %q (want panic or stall)", kind)
		}
		rules[pt] = r
	}
	return NewPlan(seed, rules), nil
}

func pointList() string {
	names := make([]string, len(Points))
	for i, pt := range Points {
		names[i] = string(pt)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
